class AESCipher {
    void setKey(Key key) throws Exception {
        Cipher c = Cipher.getInstance("DES");
        c.init(Cipher.ENCRYPT_MODE, key);
    }
}
