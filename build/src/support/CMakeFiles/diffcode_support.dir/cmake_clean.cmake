file(REMOVE_RECURSE
  "CMakeFiles/diffcode_support.dir/Hungarian.cpp.o"
  "CMakeFiles/diffcode_support.dir/Hungarian.cpp.o.d"
  "CMakeFiles/diffcode_support.dir/JsonWriter.cpp.o"
  "CMakeFiles/diffcode_support.dir/JsonWriter.cpp.o.d"
  "CMakeFiles/diffcode_support.dir/StringUtils.cpp.o"
  "CMakeFiles/diffcode_support.dir/StringUtils.cpp.o.d"
  "CMakeFiles/diffcode_support.dir/TablePrinter.cpp.o"
  "CMakeFiles/diffcode_support.dir/TablePrinter.cpp.o.d"
  "libdiffcode_support.a"
  "libdiffcode_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/diffcode_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
