//===- scan/Scanner.cpp ----------------------------------------------------===//

#include "scan/Scanner.h"

#include "rules/BuiltinRules.h"
#include "support/ThreadPool.h"

#include <atomic>
#include <chrono>
#include <tuple>

using namespace diffcode;
using namespace diffcode::scan;

namespace {

core::PipelineConfig pipelineConfigFrom(const ScanConfig &Config) {
  core::PipelineConfig Out;
  // The scanner parallelizes at project granularity; the facade itself
  // runs serially inside each scan task.
  Out.Threads = 1;
  Out.Limits.Parse = Config.Limits.Parse;
  Out.Limits.Analysis = Config.Limits.Analysis;
  return Out;
}

std::uint64_t fnv1a(std::string_view S, std::uint64_t H) {
  for (unsigned char C : S) {
    H ^= C;
    H *= 0x100000001b3ull;
  }
  return H;
}

} // namespace

bool Scanner::UnitKey::operator<(const UnitKey &O) const {
  return std::tie(H1, H2, Len, Refine) < std::tie(O.H1, O.H2, O.Len, O.Refine);
}

Scanner::Scanner(const apimodel::CryptoApiModel &Api, ScanConfig Config)
    : Scanner(Api, std::move(Config), rules::elicitedRules()) {}

Scanner::Scanner(const apimodel::CryptoApiModel &Api, ScanConfig Config,
                 std::vector<rules::Rule> Rules)
    : Config(std::move(Config)),
      Rules(rules::CompiledRuleSet::compile(
          std::move(Rules), std::make_shared<rules::ScanSymbols>())),
      System(Api, pipelineConfigFrom(this->Config)) {}

std::size_t Scanner::cachedUnits() const {
  std::lock_guard<std::mutex> Lock(CacheMutex);
  return Cache.size();
}

std::shared_ptr<const Scanner::UnitEntry>
Scanner::digest(std::string_view Code, bool Refine, bool UseCache,
                java::AstContext &Ctx, std::uint64_t &Hits,
                std::uint64_t &Misses) const {
  UnitKey Key;
  if (UseCache) {
    Key.H1 = fnv1a(Code, 0xcbf29ce484222325ull);
    Key.H2 = fnv1a(Code, 0x84222325cbf29ce4ull);
    Key.Len = Code.size();
    Key.Refine = Refine;
    std::lock_guard<std::mutex> Lock(CacheMutex);
    auto It = Cache.find(Key);
    if (It != Cache.end()) {
      ++Hits;
      return It->second;
    }
  }
  ++Misses;
  auto Entry = std::make_shared<UnitEntry>();
  core::DiffCode::SourceAnalysis SA = System.analyzeSourceChecked(Code, Ctx);
  Entry->Facts = rules::digestUnit(SA.Result, *Rules.symbols(), Refine);
  Entry->Status = SA.Status;
  Entry->Detail = std::move(SA.Detail);
  if (UseCache) {
    std::lock_guard<std::mutex> Lock(CacheMutex);
    // A racing miss on the same content may have stored first; keep the
    // incumbent so every holder shares one entry (both are identical —
    // the digest is content-pure).
    return Cache.emplace(Key, Entry).first->second;
  }
  return Entry;
}

ScanReport Scanner::scan(const ScanRequest &Request) const {
  return scan(Request, nullptr);
}

ScanReport Scanner::scan(const ScanRequest &Request, ScanSink *Sink) const {
  const std::size_t N = Request.Projects.size();
  ScanReport Report;
  Report.Symbols = Rules.symbols();
  Report.Projects.resize(N);

  // Resolve the rule filter against the compiled set, preserving the
  // set's order (so verdict order never depends on the filter's).
  const std::vector<rules::CompiledRule> &Compiled = Rules.compiled();
  std::vector<std::uint32_t> Selected;
  const std::vector<std::uint32_t> *Filter = nullptr;
  if (!Request.RuleFilter.empty()) {
    for (std::uint32_t I = 0; I < Compiled.size(); ++I) {
      const std::string &Id = Compiled[I].Source->Id;
      for (const std::string &Want : Request.RuleFilter)
        if (Want == Id) {
          Selected.push_back(I);
          break;
        }
    }
    Filter = &Selected;
  }

  obs::Observer *Obs = Config.Metrics;
  obs::Registry *Reg = Obs ? &Obs->Metrics : nullptr;
  obs::Span ScanSpan(Obs ? &Obs->Trace : nullptr, "scan");

  // Injected faults are a function of the per-project fault scope; a
  // content-keyed cache would replay one project's faults into another,
  // so campaigns always digest fresh.
  const bool UseCache = Config.CacheUnits && !Config.Faults.enabled();
  std::atomic<std::uint64_t> CacheHits{0}, CacheMisses{0};

  // Sequenced reorder buffer: workers complete in any order, the sink
  // sees strictly ascending indices.
  std::mutex EmitMutex;
  std::size_t NextEmit = 0;
  std::vector<char> Done(N, 0);
  auto Complete = [&](std::size_t I) {
    if (!Sink)
      return;
    std::lock_guard<std::mutex> Lock(EmitMutex);
    Done[I] = 1;
    while (NextEmit < N && Done[NextEmit]) {
      Sink->onProject(NextEmit, Report.Projects[NextEmit]);
      ++NextEmit;
    }
  };

  auto ScanOne = [&](std::size_t I) {
    const corpus::Project &P = *Request.Projects[I];
    ProjectScanRecord Rec;
    Rec.Project = P.Name;
    Rec.Units = static_cast<unsigned>(P.Files.size());
    std::uint64_t Hits = 0, Misses = 0;
    try {
      java::AstContext Ctx; // arena reused across the project's units
      std::vector<std::shared_ptr<const UnitEntry>> Entries;
      Entries.reserve(P.Files.size());
      for (unsigned U = 0; U < P.Files.size(); ++U) {
        support::throwIfFault(support::FaultSite::ScanProject, U);
        Entries.push_back(digest(P.Files[U].Code, Request.Refine, UseCache,
                                 Ctx, Hits, Misses));
      }
      std::vector<const rules::UnitScanFacts *> Units;
      Units.reserve(Entries.size());
      for (const std::shared_ptr<const UnitEntry> &Entry : Entries) {
        Units.push_back(&Entry->Facts);
        if (Entry->Status > Rec.Status) {
          Rec.Status = Entry->Status;
          Rec.Detail = Entry->Detail;
        }
      }
      Rec.Report =
          rules::evaluateProject(Rules, Units, P.Meta, Request.Refine, Filter);
    } catch (const std::exception &E) {
      // Per-project containment: one poisoned project degrades its own
      // record (empty report), never the scan.
      Rec.Status = core::ChangeStatus::AnalysisThrow;
      Rec.Detail = E.what();
      Rec.Report = rules::ProjectReport();
      Rec.Report.Symbols = Rules.symbols();
    }
    CacheHits.fetch_add(Hits, std::memory_order_relaxed);
    CacheMisses.fetch_add(Misses, std::memory_order_relaxed);
    return Rec;
  };

  unsigned Threads =
      std::min<unsigned>(support::resolveThreads(Config.Threads),
                         std::max<std::size_t>(N, 1));
  support::ThreadPool Pool(Threads, /*CollectStats=*/Obs != nullptr);
  Pool.parallelForChunked(N, 1, [&](std::size_t Begin, std::size_t Stop) {
    for (std::size_t I = Begin; I < Stop; ++I) {
      // Scope key = project index: an armed plan hits the same projects
      // at any thread count.
      support::FaultScope Scope(&Config.Faults, I);
      if (!Obs) {
        Report.Projects[I] = ScanOne(I);
      } else {
        obs::Span S(&Obs->Trace, "scanProject");
        auto T0 = std::chrono::steady_clock::now();
        Report.Projects[I] = ScanOne(I);
        Report.Projects[I].WallNanos = static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - T0)
                .count());
      }
      Complete(I);
    }
  });

  // Serial fold of the per-project records into corpus totals.
  if (Filter)
    for (std::uint32_t Idx : *Filter)
      Report.Rules.push_back({Compiled[Idx].Id, 0, 0, 0, 0});
  else
    for (const rules::CompiledRule &R : Compiled)
      Report.Rules.push_back({R.Id, 0, 0, 0, 0});
  std::uint64_t TotalUnits = 0;
  for (const ProjectScanRecord &Rec : Report.Projects) {
    ++Report.StatusCounts[static_cast<unsigned>(Rec.Status)];
    TotalUnits += Rec.Units;
    if (Rec.Report.anyMatch())
      ++Report.ProjectsWithViolation;
    const std::vector<rules::RuleVerdict> &Verdicts = Rec.Report.verdicts();
    // Contained failures carry an empty verdict list; everything else
    // has exactly one verdict per scanned rule, in rule-set order.
    for (std::size_t J = 0; J < Verdicts.size(); ++J) {
      RuleTotal &T = Report.Rules[J];
      T.Applicable += Verdicts[J].Applicable ? 1 : 0;
      T.Matched += Verdicts[J].Matched ? 1 : 0;
      T.Violations += Verdicts[J].Violations.size();
      T.Suppressed += Verdicts[J].Suppressed;
    }
  }

  if (Obs) {
    obs::Registry &R = *Reg;
    R.counter("scan.projects").add(N);
    R.counter("scan.units").add(TotalUnits);
    R.counter("scan.violating").add(Report.ProjectsWithViolation);
    for (unsigned I = 0; I < core::NumChangeStatuses; ++I)
      if (Report.StatusCounts[I])
        R.counter(std::string("scan.status.") +
                  core::changeStatusName(static_cast<core::ChangeStatus>(I)))
            .add(Report.StatusCounts[I]);
    for (const RuleTotal &T : Report.Rules) {
      std::string Prefix = "scan.rule." + Report.text(T.Rule);
      R.counter(Prefix + ".applicable").add(T.Applicable);
      R.counter(Prefix + ".matched").add(T.Matched);
      R.counter(Prefix + ".violations").add(T.Violations);
      R.counter(Prefix + ".suppressed").add(T.Suppressed);
    }
    // Cache traffic and latency depend on scheduling: PerRun.
    R.counter("scan.unit_cache_hits", obs::Unit::None, obs::Stability::PerRun)
        .add(CacheHits.load(std::memory_order_relaxed));
    R.counter("scan.unit_cache_misses", obs::Unit::None,
              obs::Stability::PerRun)
        .add(CacheMisses.load(std::memory_order_relaxed));
    auto &Wall = R.histogram("scan.project_wall_ns", obs::Unit::Nanoseconds,
                             obs::Stability::PerRun);
    for (const ProjectScanRecord &Rec : Report.Projects)
      Wall.record(Rec.WallNanos);
    support::ThreadPool::Stats PS = Pool.statsSnapshot();
    R.counter("threadpool.batches").add(PS.Batches);
    R.counter("threadpool.chunks", obs::Unit::None, obs::Stability::PerRun)
        .add(PS.Chunks);
    R.counter("threadpool.queue_wait_ns", obs::Unit::Nanoseconds,
              obs::Stability::PerRun)
        .add(PS.QueueWaitNs);
    R.gauge("threadpool.threads", obs::Unit::None, obs::Stability::PerRun)
        .set(Pool.threadCount());
    auto &Busy = R.histogram("threadpool.worker_busy_ns",
                             obs::Unit::Nanoseconds, obs::Stability::PerRun);
    for (std::uint64_t Ns : PS.WorkerBusyNs)
      Busy.record(Ns);
    Report.Metrics = Obs->summarize();
  }
  return Report;
}
