//===- scan/Scanner.h - Streaming corpus-scale rule scanner ----------------===//
//
// Part of the DiffCode project, a reproduction of "Inferring Crypto API
// Rules from Code Changes" (PLDI'18).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The demand-driven scanner pipeline behind `diffcode_cli scan` and the
/// service's Scan request: CryptoChecker's semantics (Section 6.4) scaled
/// to whole corpora. One Scanner instance owns a compiled rule set
/// (rules/RuleCompiler.h), an analysis facade, and a warm content-hash
/// cache of digested units; scan() fans projects out over a
/// support::ThreadPool with per-project fault containment (the PR 2
/// ChangeStatus taxonomy: one poisoned project degrades its own record,
/// never the scan), and completed projects stream to an optional
/// ScanSink in deterministic project order through a sequenced reorder
/// buffer — the streamed bytes are byte-identical to serializing the
/// final ScanReport, at any thread count.
///
/// Determinism contract: the report (and the streamed record sequence)
/// is a pure function of (projects, rule set, Refine, Limits, fault
/// plan) — never of Threads, CacheUnits, Metrics, or scheduling. The
/// unit cache is keyed purely by file content (+ the refine bit) and is
/// bypassed entirely while a fault campaign is armed, because injected
/// faults depend on the per-project fault scope that content keys
/// cannot see.
///
//===----------------------------------------------------------------------===//

#ifndef DIFFCODE_SCAN_SCANNER_H
#define DIFFCODE_SCAN_SCANNER_H

#include "core/DiffCode.h"
#include "corpus/RepoModel.h"
#include "rules/RuleCompiler.h"

#include <array>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace diffcode {
namespace scan {

/// Engine knobs, mirroring core::PipelineConfig's grouped shape. Every
/// knob here is an *engine* property (how the scan runs), fixed for the
/// Scanner's lifetime; per-run properties (which projects, which rules,
/// refinement) live on ScanRequest.
struct ScanConfig {
  /// Worker threads for the per-project scan stage; each project is
  /// independent, so results are deterministic regardless
  /// (support::resolveThreads semantics, 0 = one per hardware thread).
  unsigned Threads = 1;

  /// Deterministic frontend/interpreter budgets applied to every
  /// digested unit (0 = unlimited).
  struct LimitsGroup {
    java::ParseLimits Parse;
    analysis::AnalysisOptions Analysis;
  };
  LimitsGroup Limits;

  /// Share digested units across projects and scan() calls through a
  /// content-hash cache. Synthetic and mined corpora repeat generated
  /// files heavily, so this is the scanner's dominant throughput lever;
  /// purely an engine knob — hit or miss, the digest is identical.
  bool CacheUnits = true;

  /// Observability sink; null keeps every instrumentation site at one
  /// pointer test. Must outlive the Scanner calls that use it.
  obs::Observer *Metrics = nullptr;

  /// Fault-injection campaign (testing only). Armed plans install a
  /// per-project FaultScope (scope key = project index) and disable the
  /// unit cache for the run.
  support::FaultPlan Faults;
};

/// One scan invocation: which projects, which rules, whether to refine.
struct ScanRequest {
  /// Projects to scan, in report order. Borrowed; must outlive scan().
  std::vector<const corpus::Project *> Projects;

  /// Rule ids to evaluate ("R8", "T3", ...); empty = the scanner's full
  /// rule set. Unknown ids select nothing (callers warn as they see
  /// fit). Verdict order follows the scanner's rule-set order, not the
  /// filter's.
  std::vector<std::string> RuleFilter;

  /// Run the demand-driven refinement pass (rules/RuleCompiler.h) on
  /// matched rules. Off by default: refine-off output is byte-identical
  /// to the batch CryptoChecker path.
  bool Refine = false;
};

/// One scanned project: its report plus how the analysis went. Status
/// is the worst per-unit outcome (core::ChangeStatus severity order); a
/// throw escaping a unit is contained per project as AnalysisThrow with
/// an empty report.
struct ProjectScanRecord {
  std::string Project;
  core::ChangeStatus Status = core::ChangeStatus::Ok;
  std::string Detail; ///< First diagnostic at the worst severity.
  unsigned Units = 0;
  rules::ProjectReport Report;
  /// Wall time of the project's scan task; only populated on observed
  /// runs and never serialized (reports stay thread-count identical).
  std::uint64_t WallNanos = 0;
};

/// Corpus-wide totals for one rule, in rule-set order.
struct RuleTotal {
  support::LabelId Rule = rules::ScanSymbols::None;
  std::uint64_t Applicable = 0;
  std::uint64_t Matched = 0;
  std::uint64_t Violations = 0;
  std::uint64_t Suppressed = 0;
};

/// The whole-scan result.
struct ScanReport {
  std::vector<ProjectScanRecord> Projects;
  /// Projects per final status, indexed by core::ChangeStatus.
  std::array<unsigned, core::NumChangeStatuses> StatusCounts{};
  unsigned ProjectsWithViolation = 0;
  std::vector<RuleTotal> Rules;
  /// The table every symbol in this report resolves through.
  std::shared_ptr<const rules::ScanSymbols> Symbols;
  /// Frozen metrics of an observed run; empty otherwise.
  obs::RunSummary Metrics;

  const std::string &text(support::LabelId Id) const {
    return Symbols->text(Id);
  }
};

/// Streaming consumer of scan results. onProject is called exactly once
/// per project, in strict ascending index order (a sequenced reorder
/// buffer serializes out-of-order completions), never concurrently.
class ScanSink {
public:
  virtual ~ScanSink() = default;
  virtual void onProject(std::size_t Index, const ProjectScanRecord &Record) = 0;
};

/// The scanner. Construction compiles the rule set and configures the
/// analysis facade; instances are immutable apart from the internal unit
/// cache (thread-safe), so a warm scanner can serve many scan() calls —
/// the service holds one per session.
class Scanner {
public:
  /// Scans with the full elicited rule set R1-R13.
  explicit Scanner(const apimodel::CryptoApiModel &Api,
                   ScanConfig Config = ScanConfig());
  Scanner(const apimodel::CryptoApiModel &Api, ScanConfig Config,
          std::vector<rules::Rule> Rules);

  const ScanConfig &config() const { return Config; }
  const rules::CompiledRuleSet &rules() const { return Rules; }

  /// Runs one scan. With \p Sink, completed project records additionally
  /// stream out in deterministic order as the scan progresses.
  ScanReport scan(const ScanRequest &Request) const;
  ScanReport scan(const ScanRequest &Request, ScanSink *Sink) const;

  /// Digested units currently cached (tests / capacity planning).
  std::size_t cachedUnits() const;

private:
  struct UnitEntry {
    rules::UnitScanFacts Facts;
    core::ChangeStatus Status = core::ChangeStatus::Ok;
    std::string Detail;
  };
  /// Content key: dual 64-bit FNV-1a + length (+ the refine bit, since
  /// refined digests carry per-execution event lists).
  struct UnitKey {
    std::uint64_t H1 = 0, H2 = 0, Len = 0;
    bool Refine = false;
    bool operator<(const UnitKey &O) const;
  };

  std::shared_ptr<const UnitEntry> digest(std::string_view Code, bool Refine,
                                          bool UseCache, java::AstContext &Ctx,
                                          std::uint64_t &Hits,
                                          std::uint64_t &Misses) const;

  ScanConfig Config;
  rules::CompiledRuleSet Rules;
  core::DiffCode System;

  mutable std::mutex CacheMutex;
  mutable std::map<UnitKey, std::shared_ptr<const UnitEntry>> Cache;
};

} // namespace scan
} // namespace diffcode

#endif // DIFFCODE_SCAN_SCANNER_H
