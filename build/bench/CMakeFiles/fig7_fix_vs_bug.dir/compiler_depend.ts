# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fig7_fix_vs_bug.
