//===- bench/micro_clustering.cpp - Clustering engine speedup --------------===//
//
// Part of the DiffCode project, a reproduction of "Inferring Crypto API
// Rules from Code Changes" (PLDI'18).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Measures the parallel clustering engine (memoised distance cache +
/// threaded matrix + nearest-neighbor-chain agglomeration) against the
/// seed's serial path (uncached usageDist matrix + O(n^3) naive
/// agglomeration) on a synthetic usage-change corpus, verifies the two
/// dendrograms are identical, and emits one JSON object so the driver can
/// scrape the speedup.
///
///   micro_clustering [n] [threads] [seed]     (defaults: 500 8 42)
///
//===----------------------------------------------------------------------===//

#include "cluster/Distance.h"
#include "cluster/DistanceCache.h"
#include "cluster/HierarchicalClustering.h"
#include "support/JsonWriter.h"
#include "support/Rng.h"
#include "support/ThreadPool.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

using namespace diffcode;
using namespace diffcode::analysis;
using namespace diffcode::cluster;
using namespace diffcode::usage;

namespace {

/// Small crypto-flavoured vocabulary so the corpus has realistic label
/// repetition (which is exactly what the memoised cache exploits).
FeaturePath randomPath(Rng &R) {
  static const char *Roots[] = {"Cipher", "MessageDigest", "SecureRandom",
                                "KeyGenerator"};
  static const char *Methods[] = {
      "Cipher.getInstance/1",       "Cipher.init/3",
      "Cipher.doFinal/1",           "MessageDigest.getInstance/1",
      "MessageDigest.update/1",     "SecureRandom.setSeed/1",
      "KeyGenerator.getInstance/1", "KeyGenerator.init/1"};
  static const char *Strings[] = {"AES",     "AES/CBC/PKCS5Padding",
                                  "AES/GCM/NoPadding", "DES",
                                  "DES/ECB/PKCS5Padding", "RSA",
                                  "SHA-1",   "SHA-256", "MD5"};
  FeaturePath Path = {NodeLabel::root(Roots[R.index(4)])};
  for (std::size_t Depth = 0, N = R.range(1, 3); Depth < N; ++Depth)
    Path.push_back(NodeLabel::method(Methods[R.index(8)]));
  if (R.chance(0.75)) {
    unsigned Index = static_cast<unsigned>(R.range(1, 3));
    if (R.chance(0.7))
      Path.push_back(
          NodeLabel::arg(Index, AbstractValue::strConst(Strings[R.index(9)])));
    else
      Path.push_back(NodeLabel::arg(Index, AbstractValue::byteArrayTop()));
  }
  return Path;
}

std::vector<UsageChange> randomCorpus(std::uint64_t Seed, std::size_t Size) {
  static support::Interner Table;
  Rng R(Seed);
  std::vector<UsageChange> Changes;
  Changes.reserve(Size);
  for (std::size_t C = 0; C < Size; ++C) {
    std::vector<FeaturePath> Removed, Added;
    for (std::size_t I = 0, N = R.range(0, 3); I < N; ++I)
      Removed.push_back(randomPath(R));
    for (std::size_t I = 0, N = R.range(0, 3); I < N; ++I)
      Added.push_back(randomPath(R));
    Changes.push_back(UsageChange::intern(Table, "Cipher", Removed, Added));
  }
  return Changes;
}

double millisSince(std::chrono::steady_clock::time_point Start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - Start)
      .count();
}

bool sameTree(const Dendrogram &A, const Dendrogram &B) {
  if (A.leafCount() != B.leafCount() || A.nodes().size() != B.nodes().size() ||
      A.root() != B.root())
    return false;
  for (std::size_t I = 0; I < A.nodes().size(); ++I) {
    const Dendrogram::Node &X = A.nodes()[I];
    const Dendrogram::Node &Y = B.nodes()[I];
    if (X.Left != Y.Left || X.Right != Y.Right || X.Item != Y.Item ||
        X.Height != Y.Height)
      return false;
  }
  return true;
}

} // namespace

int main(int argc, char **argv) {
  long long NArg = argc > 1 ? std::atoll(argv[1]) : 500;
  int ThreadsArg = argc > 2 ? std::atoi(argv[2]) : 8;
  if (NArg < 0 || ThreadsArg < 0) {
    std::fprintf(stderr, "usage: micro_clustering [n >= 0] [threads >= 0] "
                         "[seed]   (defaults: 500 8 42)\n");
    return 2;
  }
  std::size_t N = static_cast<std::size_t>(NArg);
  unsigned Threads = static_cast<unsigned>(ThreadsArg);
  std::uint64_t Seed = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 42;

  std::vector<UsageChange> Changes = randomCorpus(Seed, N);

  // Baseline: the seed's serial path — every usageDist call recomputes
  // label similarities and path matchings from scratch, then the O(n^3)
  // naive agglomeration.
  auto BaselineStart = std::chrono::steady_clock::now();
  std::vector<double> BaselineMatrix = pairwiseDistanceMatrix(
      N,
      [&](std::size_t I, std::size_t J) {
        return usageDist(Changes[I], Changes[J]);
      },
      nullptr);
  double BaselineMatrixMs = millisSince(BaselineStart);
  Dendrogram BaselineTree = agglomerateDistanceMatrix(
      N, std::move(BaselineMatrix), ClusteringOptions::Algorithm::Naive);
  double BaselineMs = millisSince(BaselineStart);

  // Engine: interned labels + memoised similarity tables, threaded matrix,
  // nearest-neighbor-chain agglomeration. Staged here exactly like
  // clusterUsageChanges so the JSON can attribute the time.
  auto EngineStart = std::chrono::steady_clock::now();
  support::ThreadPool Pool(Threads);
  UsageDistCache Cache(Changes, &Pool);
  double CacheMs = millisSince(EngineStart);
  std::vector<double> EngineMatrix = pairwiseDistanceMatrix(
      N, [&](std::size_t I, std::size_t J) { return Cache(I, J); }, &Pool);
  double EngineMatrixMs = millisSince(EngineStart) - CacheMs;
  Dendrogram EngineTree = agglomerateDistanceMatrix(
      N, std::move(EngineMatrix), ClusteringOptions::Algorithm::NNChain);
  double EngineMs = millisSince(EngineStart);

  bool Identical = sameTree(BaselineTree, EngineTree);
  double Speedup = EngineMs > 0.0 ? BaselineMs / EngineMs : 0.0;

  JsonWriter W;
  W.beginObject();
  W.key("bench").value("micro_clustering");
  W.key("n").value(static_cast<std::uint64_t>(N));
  W.key("threads").value(static_cast<std::uint64_t>(Threads));
  W.key("seed").value(Seed);
  W.key("serial_naive_ms").value(BaselineMs);
  W.key("serial_matrix_ms").value(BaselineMatrixMs);
  W.key("engine_ms").value(EngineMs);
  W.key("engine_cache_ms").value(CacheMs);
  W.key("engine_matrix_ms").value(EngineMatrixMs);
  W.key("speedup").value(Speedup);
  W.key("identical_dendrograms").value(Identical);
  W.endObject();
  std::printf("%s\n", W.take().c_str());

  if (!Identical) {
    std::fprintf(stderr,
                 "FAIL: engine dendrogram differs from serial naive oracle\n");
    return 1;
  }
  return 0;
}
