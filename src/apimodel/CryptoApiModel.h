//===- apimodel/CryptoApiModel.h - Java Crypto API signatures -------------===//
//
// Part of the DiffCode project, a reproduction of "Inferring Crypto API
// Rules from Code Changes" (PLDI'18).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A declarative model of the Java Cryptography Architecture surface the
/// analysis understands: class names, method signatures, factory methods,
/// and API integer constants (e.g. Cipher.ENCRYPT_MODE). The analyzer
/// consults this model to type API call results and to resolve qualified
/// constants; it never executes any cryptography.
///
/// The model also distinguishes the six *target* classes of the paper's
/// case study (Figure 5) from auxiliary classes such as Mac and
/// KeyGenerator that appear in rules (e.g. R13).
///
//===----------------------------------------------------------------------===//

#ifndef DIFFCODE_APIMODEL_CRYPTOAPIMODEL_H
#define DIFFCODE_APIMODEL_CRYPTOAPIMODEL_H

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace diffcode {
namespace apimodel {

/// One method of an API class. Constructors use the JVM-style name
/// "<init>". Overloads are distinguished by arity only — sufficient for
/// the JCA subset where no two same-arity overloads differ in ways the
/// abstraction can observe.
struct ApiMethod {
  std::string ClassName;
  std::string Name;
  std::vector<std::string> ParamTypes;
  std::string ReturnType; ///< "void", a base type, or an API class name.
  bool IsStatic = false;
  /// True when the call yields a fresh instance of ClassName (constructors
  /// and getInstance-style factories) — these create abstract objects.
  bool IsFactory = false;

  unsigned arity() const {
    return static_cast<unsigned>(ParamTypes.size());
  }

  /// Signature string used as a DAG node label, e.g.
  /// "Cipher.getInstance/1".
  std::string signature() const;
};

/// One API class with its methods and integer constants.
struct ApiClass {
  std::string Name;
  bool IsTarget = false;
  std::vector<ApiMethod> Methods;
  std::unordered_map<std::string, std::int64_t> IntConstants;
};

/// The whole modeled API. Immutable after construction; the analysis
/// shares one instance.
class CryptoApiModel {
public:
  /// The Java Crypto API model used throughout the paper reproduction.
  static const CryptoApiModel &javaCryptoApi();

  /// Looks up a class by unqualified name; null when unknown.
  const ApiClass *lookupClass(std::string_view Name) const;

  /// Looks up a method by class, name, and arity; falls back to the
  /// closest arity when no exact overload exists (partial programs often
  /// call overloads the model elides). Null when the class has no method
  /// of that name.
  const ApiMethod *lookupMethod(std::string_view ClassName,
                                std::string_view MethodName,
                                unsigned Arity) const;

  /// Resolves `ClassName.ConstName` (e.g. Cipher.ENCRYPT_MODE).
  std::optional<std::int64_t> lookupConstant(std::string_view ClassName,
                                             std::string_view ConstName) const;

  /// True for the six target classes of the case study (Figure 5).
  bool isTargetClass(std::string_view Name) const;

  /// The target class names in Figure 5 order.
  const std::vector<std::string> &targetClasses() const {
    return Targets;
  }

  /// Registers a class (used by the builder and by tests extending the
  /// model).
  void addClass(ApiClass Class);

private:
  std::unordered_map<std::string, ApiClass> Classes;
  std::vector<std::string> Targets;
};

} // namespace apimodel
} // namespace diffcode

#endif // DIFFCODE_APIMODEL_CRYPTOAPIMODEL_H
