//===- apimodel/TlsApiModel.cpp --------------------------------------------===//

#include "apimodel/TlsApiModel.h"

using namespace diffcode::apimodel;

namespace {

ApiMethod method(std::string ClassName, std::string Name,
                 std::vector<std::string> Params, std::string Ret,
                 bool IsStatic, bool IsFactory) {
  ApiMethod M;
  M.ClassName = std::move(ClassName);
  M.Name = std::move(Name);
  M.ParamTypes = std::move(Params);
  M.ReturnType = std::move(Ret);
  M.IsStatic = IsStatic;
  M.IsFactory = IsFactory;
  return M;
}

CryptoApiModel buildTlsApi() {
  CryptoApiModel Model;

  {
    ApiClass C;
    C.Name = "SSLContext";
    C.IsTarget = true;
    C.Methods = {
        method("SSLContext", "getInstance", {"String"}, "SSLContext", true,
               true),
        method("SSLContext", "getInstance", {"String", "String"},
               "SSLContext", true, true),
        method("SSLContext", "init",
               {"KeyManager[]", "TrustManager[]", "SecureRandom"}, "void",
               false, false),
        method("SSLContext", "getSocketFactory", {}, "SSLSocketFactory",
               false, false),
        method("SSLContext", "getDefault", {}, "SSLContext", true, true),
    };
    Model.addClass(std::move(C));
  }
  {
    ApiClass C;
    C.Name = "SSLSocketFactory";
    C.IsTarget = true;
    C.Methods = {
        method("SSLSocketFactory", "getDefault", {}, "SSLSocketFactory",
               true, true),
        method("SSLSocketFactory", "createSocket",
               {"String", "int"}, "Socket", false, false),
    };
    Model.addClass(std::move(C));
  }
  {
    ApiClass C;
    C.Name = "HttpsURLConnection";
    C.Methods = {
        method("HttpsURLConnection", "setDefaultHostnameVerifier",
               {"HostnameVerifier"}, "void", true, false),
        method("HttpsURLConnection", "setDefaultSSLSocketFactory",
               {"SSLSocketFactory"}, "void", true, false),
        method("HttpsURLConnection", "setHostnameVerifier",
               {"HostnameVerifier"}, "void", false, false),
    };
    Model.addClass(std::move(C));
  }
  for (const char *Name :
       {"KeyManager", "TrustManager", "HostnameVerifier", "Socket"}) {
    ApiClass C;
    C.Name = Name;
    Model.addClass(std::move(C));
  }
  return Model;
}

} // namespace

const CryptoApiModel &diffcode::apimodel::javaTlsApi() {
  static const CryptoApiModel Model = buildTlsApi();
  return Model;
}
