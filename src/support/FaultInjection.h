//===- support/FaultInjection.h - Deterministic fault injection ------------===//
//
// Part of the DiffCode project, a reproduction of "Inferring Crypto API
// Rules from Code Changes" (PLDI'18).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Seeded fault injection for pipeline resilience testing. The corpus
/// pipeline must survive the worst file in 11k+ mined commits, so the
/// fault-containment layer (core/DiffCode) is exercised by deliberately
/// throwing from deep inside the analysis stack and asserting that every
/// run still yields a complete, deterministic CorpusReport.
///
/// Determinism contract: whether a fault fires at a given point is a pure
/// function of (plan seed, scope key, site, site key) — never of wall
/// clock, thread identity, or call order. The scope key is installed per
/// unit of contained work (one code change, one per-class clustering run)
/// and the site key is stable data supplied by the injection point (token
/// index, remaining fuel, matrix shape). Identical inputs therefore fault
/// identically on every thread count, which is what lets the differential
/// harness compare fault-injected runs byte-for-byte.
///
/// Injection points are compiled into production code but reduce to one
/// thread_local pointer test when no plan is installed.
///
//===----------------------------------------------------------------------===//

#ifndef DIFFCODE_SUPPORT_FAULTINJECTION_H
#define DIFFCODE_SUPPORT_FAULTINJECTION_H

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <string>

namespace diffcode {
namespace support {

/// Places in the pipeline that can be told to fail. Sites before
/// ProcKill are in-process (an armed point throws FaultInjected and the
/// containment boundary turns it into a structured ChangeStatus); the
/// Proc* sites are process-level and only exist inside exec/ worker
/// subprocesses, where firing means the *process itself* misbehaves —
/// dies, hangs, starts slowly, or corrupts its result stream — and the
/// supervisor's watchdog/retry machinery is what gets exercised.
enum class FaultSite : unsigned {
  Parser,          ///< javaast::Parser expression recursion.
  Interpreter,     ///< analysis::Engine statement execution.
  Hungarian,       ///< support::solveAssignment entry.
  Clustering,      ///< cluster agglomeration merge step.
  ServiceHash,     ///< service cache keying: collapses the primary content
                   ///< hash to a constant so every entry collides; the
                   ///< session must still discriminate via its secondary
                   ///< hash + length key (an in-process site: firing
                   ///< degrades cache selectivity, never correctness).
  ScanProject,     ///< rule scanner per-unit digest inside one project
                   ///< scan task (scan/Scanner); firing exercises the
                   ///< scanner's per-project containment boundary.
  ProcKill,        ///< exec worker raises SIGKILL mid-unit (crash).
  ProcHang,        ///< exec worker sleeps past the unit deadline.
  ProcSlowStart,   ///< exec worker delays its startup handshake.
  ProcFrameCorrupt,///< exec worker corrupts/truncates a result frame.
  ProcOomExit,     ///< exec worker takes its out-of-memory exit path.
};

/// Number of FaultSite enumerators (for mask building / iteration).
inline constexpr unsigned NumFaultSites = 11;

/// First process-level site (sites >= this only fire inside exec
/// workers; in-process pipeline runs never evaluate them).
inline constexpr unsigned FirstProcFaultSite =
    static_cast<unsigned>(FaultSite::ProcKill);

/// Bit for \p Site in FaultPlan::SiteMask.
constexpr std::uint32_t faultSiteBit(FaultSite Site) {
  return 1u << static_cast<unsigned>(Site);
}

/// Human-readable site name ("parser", "interpreter", ...).
const char *faultSiteName(FaultSite Site);

/// Per-site tally of a campaign's activity: how many armed injection
/// points were evaluated and how many fired. Atomic so every pipeline
/// thread can report into one shared block; plain data (no obs/
/// dependency — the support layer sits below obs), copied into the
/// metrics registry by core after a run.
struct FaultStats {
  std::atomic<std::uint64_t> Evaluated[NumFaultSites] = {};
  std::atomic<std::uint64_t> Fired[NumFaultSites] = {};

  std::uint64_t evaluated(FaultSite Site) const {
    return Evaluated[static_cast<unsigned>(Site)].load(
        std::memory_order_relaxed);
  }
  std::uint64_t fired(FaultSite Site) const {
    return Fired[static_cast<unsigned>(Site)].load(std::memory_order_relaxed);
  }
  std::uint64_t totalFired() const {
    std::uint64_t N = 0;
    for (unsigned I = 0; I < NumFaultSites; ++I)
      N += Fired[I].load(std::memory_order_relaxed);
    return N;
  }
};

/// A fault-injection campaign: which sites may fail, how often, under
/// which seed. Rate 0 (the default) disables every injection point; a
/// default-constructed plan is exactly a production run.
struct FaultPlan {
  std::uint64_t Seed = 0;
  /// Probability in [0, 1] that an armed injection point fires.
  double Rate = 0.0;
  /// Which sites are armed; defaults to all.
  std::uint32_t SiteMask = (1u << NumFaultSites) - 1;
  /// Optional campaign tally; when set, faultPoint counts every armed
  /// evaluation and fire into it. Does not affect fault decisions, so a
  /// counted campaign stays byte-identical to an uncounted one.
  FaultStats *Stats = nullptr;

  bool enabled() const { return Rate > 0.0; }
  bool armed(FaultSite Site) const {
    return enabled() && (SiteMask & faultSiteBit(Site)) != 0;
  }
};

/// The exception an injection point throws. Deliberately derived from
/// std::runtime_error: containment code must treat it like any other
/// analysis failure, not special-case it.
struct FaultInjected : std::runtime_error {
  FaultSite Site;
  explicit FaultInjected(FaultSite Site)
      : std::runtime_error(std::string("injected fault at ") +
                           faultSiteName(Site)),
        Site(Site) {}
};

/// The thread's active campaign: plan + the scope key of the unit of work
/// being processed. Copyable so ThreadPool can forward the caller's
/// context into its workers (parallel sections inside a scoped unit then
/// fault identically to the serial run).
struct FaultContext {
  const FaultPlan *Plan = nullptr;
  std::uint64_t ScopeKey = 0;

  /// The calling thread's current context (empty when none installed).
  static FaultContext current();
};

/// RAII: installs a fault context on this thread for one unit of
/// contained work. Pass Plan = nullptr (or a disabled plan) for a
/// production run; the guard then only saves/restores the slot.
class FaultScope {
public:
  FaultScope(const FaultPlan *Plan, std::uint64_t ScopeKey);
  explicit FaultScope(const FaultContext &Ctx)
      : FaultScope(Ctx.Plan, Ctx.ScopeKey) {}
  ~FaultScope();

  FaultScope(const FaultScope &) = delete;
  FaultScope &operator=(const FaultScope &) = delete;

private:
  FaultContext Saved;
};

/// True when the current thread context says \p Site should fail for the
/// stable \p Key. Pure in (seed, scope, site, key); false when no plan is
/// installed.
bool faultPoint(FaultSite Site, std::uint64_t Key);

/// Convenience: throws FaultInjected when faultPoint fires.
inline void throwIfFault(FaultSite Site, std::uint64_t Key) {
  if (faultPoint(Site, Key))
    throw FaultInjected(Site);
}

/// Stable 64-bit mix (splitmix64 finalizer); exposed for callers that
/// need to fold structured data into a site key.
std::uint64_t faultMix(std::uint64_t X);

} // namespace support
} // namespace diffcode

#endif // DIFFCODE_SUPPORT_FAULTINJECTION_H
