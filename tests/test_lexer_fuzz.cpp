//===- tests/test_lexer_fuzz.cpp - Seeded lexer fuzzing --------------------===//
//
// Seeded random-byte and mutation fuzzing for the table-driven lexer.
// Two oracles on every input: the retained seed scanner
// (javaast/ReferenceLexer) must produce a byte-identical token stream and
// diagnostics, and the parser under tiny ParseLimits must stay inside its
// budget (nullptr unit + budgetExceeded, never a crash or hang). The
// suite is sharded so a failure names the shard — and therefore the seed
// range — that produced it; scripts/check.sh --asan additionally runs
// this binary under AddressSanitizer to surface out-of-bounds reads the
// differential check alone cannot see.
//
//===----------------------------------------------------------------------===//

#include "corpus/Scenario.h"
#include "javaast/Lexer.h"
#include "javaast/Parser.h"
#include "javaast/ReferenceLexer.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>

using namespace diffcode;
using namespace diffcode::java;

namespace {

std::string sampleSource(unsigned Seed) {
  Rng R(Seed);
  corpus::ScenarioInstance Inst;
  Inst.Kind =
      static_cast<corpus::ScenarioKind>(Seed % corpus::NumScenarioKinds);
  Inst.Details = corpus::drawDetails(Inst.Kind, R);
  Inst.Details.Secure = Seed % 2 == 0;
  Inst.StyleSeed = Seed * 31 + 7;
  Inst.ClassName = "Fuzz";
  return renderScenario(Inst, "com.example.fuzz");
}

std::string mutateBytes(std::string Text, Rng &R, int Edits) {
  for (int Edit = 0; Edit < Edits; ++Edit) {
    std::size_t Pos = R.index(Text.size());
    char Byte = static_cast<char>(R.range(0, 255));
    switch (R.range(0, 2)) {
    case 0:
      Text[Pos] = Byte;
      break;
    case 1:
      Text.erase(Pos, 1);
      break;
    default:
      Text.insert(Pos, 1, Byte);
      break;
    }
    if (Text.empty())
      Text = "x";
  }
  return Text;
}

std::string randomBytes(Rng &R, std::size_t Len) {
  std::string Out;
  Out.reserve(Len);
  for (std::size_t I = 0; I < Len; ++I)
    Out += static_cast<char>(R.range(0, 255));
  return Out;
}

std::string diagsToString(const DiagnosticsEngine &Diags) {
  std::ostringstream Os;
  for (const Diagnostic &D : Diags.all())
    Os << (D.Level == DiagLevel::Error ? "error|" : "warning|") << D.str()
       << "\n";
  Os << "budget=" << (Diags.budgetExceeded() ? 1 : 0);
  return Os.str();
}

/// The core fuzz oracle: both lexers over \p Source must agree on every
/// token (kind, spelling, line/column/offset) and every diagnostic.
void expectAgreement(const std::string &Source) {
  DiagnosticsEngine NewDiags, RefDiags;
  Lexer NewLex(Source, NewDiags);
  ReferenceLexer RefLex(Source, RefDiags);
  TokenStream NewStream = NewLex.lexAll();
  TokenStream RefStream = RefLex.lexAll();
  ASSERT_GE(NewStream.size(), 1u); // at least EndOfFile
  ASSERT_EQ(NewStream.size(), RefStream.size());
  for (std::size_t I = 0; I < NewStream.size(); ++I) {
    const Token &A = NewStream[I];
    const Token &B = RefStream[I];
    ASSERT_EQ(A.Kind, B.Kind) << "token " << I;
    ASSERT_EQ(A.Text, B.Text) << "token " << I;
    ASSERT_EQ(A.Loc.Line, B.Loc.Line) << "token " << I;
    ASSERT_EQ(A.Loc.Column, B.Loc.Column) << "token " << I;
    ASSERT_EQ(A.Loc.Offset, B.Loc.Offset) << "token " << I;
  }
  ASSERT_EQ(NewStream.back().Kind, TokenKind::EndOfFile);
  ASSERT_EQ(diagsToString(NewDiags), diagsToString(RefDiags));
}

/// Budget containment: parsing \p Source under deliberately tiny limits
/// must either succeed inside the budget or return nullptr with
/// budgetExceeded() set — and do the same thing when run twice.
void expectBudgetContainment(const std::string &Source) {
  ParseLimits Tiny;
  Tiny.MaxTokens = 64;
  Tiny.MaxNestingDepth = 6;

  auto RunOnce = [&Source, &Tiny](bool &GotUnit) {
    AstContext Ctx;
    DiagnosticsEngine Diags;
    CompilationUnit *Unit = parseJava(Source, Ctx, Diags, Tiny);
    GotUnit = Unit != nullptr;
    EXPECT_EQ(Unit == nullptr, Diags.budgetExceeded());
    return diagsToString(Diags);
  };

  bool FirstGotUnit = false, SecondGotUnit = false;
  std::string First = RunOnce(FirstGotUnit);
  std::string Second = RunOnce(SecondGotUnit);
  EXPECT_EQ(FirstGotUnit, SecondGotUnit) << "nondeterministic budget trip";
  EXPECT_EQ(First, Second) << "nondeterministic diagnostics";
}

} // namespace

//===----------------------------------------------------------------------===//
// Random bytes: the full 0-255 range, lengths 0..512.
//===----------------------------------------------------------------------===//

class RandomByteFuzz : public ::testing::TestWithParam<int> {};

TEST_P(RandomByteFuzz, LexersAgreeOnArbitraryBytes) {
  Rng R(static_cast<unsigned>(GetParam()) * 2654435761u + 17);
  for (int Case = 0; Case < 300; ++Case) {
    std::string Source = randomBytes(R, R.range(0, 512));
    SCOPED_TRACE("shard " + std::to_string(GetParam()) + " case " +
                 std::to_string(Case));
    expectAgreement(Source);
    if (HasFatalFailure())
      return;
  }
}

TEST_P(RandomByteFuzz, BudgetContainsArbitraryBytes) {
  Rng R(static_cast<unsigned>(GetParam()) * 40503u + 5);
  for (int Case = 0; Case < 60; ++Case) {
    std::string Source = randomBytes(R, R.range(0, 384));
    SCOPED_TRACE("shard " + std::to_string(GetParam()) + " case " +
                 std::to_string(Case));
    expectBudgetContainment(Source);
    if (HasFatalFailure())
      return;
  }
}

INSTANTIATE_TEST_SUITE_P(Shards, RandomByteFuzz, ::testing::Range(0, 8));

//===----------------------------------------------------------------------===//
// Mutants: realistic Java warped by random byte edits.
//===----------------------------------------------------------------------===//

class MutantLexerFuzz : public ::testing::TestWithParam<int> {};

TEST_P(MutantLexerFuzz, LexersAgreeOnMutants) {
  unsigned Shard = static_cast<unsigned>(GetParam());
  Rng R(Shard * 1099511628211ull + 3);
  for (int Case = 0; Case < 40; ++Case) {
    std::string Source = mutateBytes(sampleSource(Shard % 16), R,
                                     static_cast<int>(R.range(1, 24)));
    SCOPED_TRACE("shard " + std::to_string(Shard) + " case " +
                 std::to_string(Case));
    expectAgreement(Source);
    if (HasFatalFailure())
      return;
  }
}

TEST_P(MutantLexerFuzz, BudgetContainsMutants) {
  unsigned Shard = static_cast<unsigned>(GetParam());
  Rng R(Shard * 6364136223846793005ull + 11);
  for (int Case = 0; Case < 12; ++Case) {
    std::string Source = mutateBytes(sampleSource(Shard % 16), R,
                                     static_cast<int>(R.range(1, 16)));
    SCOPED_TRACE("shard " + std::to_string(Shard) + " case " +
                 std::to_string(Case));
    expectBudgetContainment(Source);
    if (HasFatalFailure())
      return;
  }
}

INSTANTIATE_TEST_SUITE_P(Shards, MutantLexerFuzz, ::testing::Range(0, 10));

//===----------------------------------------------------------------------===//
// Adversarial hand-built inputs aimed at the scanner fast paths.
//===----------------------------------------------------------------------===//

TEST(LexerFuzzDirected, SwarBoundaryIdentifiers) {
  // Identifiers placed so the 8-byte SWAR window straddles every stop
  // byte class and the buffer end at every alignment.
  static const char StopBytes[] = " +.\"'\x01\x7f\xc3(";
  for (std::size_t Lead = 0; Lead < 17; ++Lead)
    for (std::size_t IdLen = 1; IdLen < 20; ++IdLen)
      for (char Stop : StopBytes) {
        std::string Source(Lead, ' ');
        Source.append(IdLen, 'a');
        if (Stop != '\0')
          Source += Stop;
        SCOPED_TRACE("lead " + std::to_string(Lead) + " len " +
                     std::to_string(IdLen) + " stop " +
                     std::to_string(static_cast<int>(Stop)));
        expectAgreement(Source);
        if (Test::HasFatalFailure())
          return;
      }
}

TEST(LexerFuzzDirected, IdentifierRunsToBufferEnd) {
  // No trailing stop byte at all: the SWAR tail loop must not read past
  // the buffer (ASan leg verifies the memory claim).
  for (std::size_t Len = 1; Len < 40; ++Len) {
    std::string Source(Len, '_');
    Source[0] = 'a';
    expectAgreement(Source);
    if (Test::HasFatalFailure())
      return;
  }
}

TEST(LexerFuzzDirected, StringFastPathStops) {
  // Strings whose first interesting byte is each of the StringStop class
  // members, at varying distances from the opening quote.
  static const char Stops[] = {'"', '\\', '\n'};
  for (char Stop : Stops)
    for (std::size_t Dist = 0; Dist < 12; ++Dist) {
      std::string Source = "\"" + std::string(Dist, 'x');
      Source += Stop;
      Source += "rest\" tail";
      expectAgreement(Source);
      if (Test::HasFatalFailure())
        return;
    }
}
