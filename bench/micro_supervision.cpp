//===- bench/micro_supervision.cpp - Supervised vs in-process throughput --===//
//
// Part of the DiffCode project, a reproduction of "Inferring Crypto API
// Rules from Code Changes" (PLDI'18).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The cost of crash/hang/OOM containment: the per-change analysis stage
/// run through exec/Supervisor's forked worker pool versus the in-process
/// thread pool, at matched parallelism. Interleaved min-of-N timing (the
/// standard noise filter for a shared machine), like micro_pipeline's
/// observability guard.
///
/// Self-verifying:
///
///   * byte-identity: the supervised full-pipeline report equals the
///     in-process report byte for byte (the engine's core contract);
///   * a clean supervised run does no supervision work — zero retries,
///     bisections, restarts, deadline kills, or terminal statuses;
///   * overhead: supervised CPU time (getrusage, self + reaped children)
///     at 4 workers stays within 10% of the in-process stage at 4
///     threads (one retry with more reps before failing).
///
/// The guard is on CPU time, not wall time, deliberately. Wall time on a
/// small or shared host swings far more than the 10% bar between runs of
/// identical work (scheduling quanta, page cache, the CI harness
/// itself), while CPU time is far stabler; and CPU time is the honest
/// cost metric — it charges every containment cycle the supervisor
/// burns (fork, pipe codec, def streaming, remap) even when idle cores
/// would hide it behind wall-clock overlap. On hardware with real
/// parallelism a CPU ratio under the bar implies the wall ratio is too,
/// so the stricter gate subsumes the weaker one. Wall-clock numbers are
/// still measured and reported in the JSON, just not gated.
///
/// The gated statistic is the *lower quartile of per-rep ratios*, each
/// ratio taken from one back-to-back (in-process, supervised) pair
/// after one discarded warmup pair. The two halves of a pair run
/// milliseconds apart and so share whatever noise epoch the host is
/// in; their ratio cancels it. A ratio of global minima does not — the
/// two minima can land in different epochs and the comparison inherits
/// the full swing, which on this class of host exceeds the bar on its
/// own. Host interference only ever *inflates* CPU time, so the quiet
/// pairs are the faithful ones and a low quantile reads them while
/// staying robust to a single lucky pair (which a min-of-pairs is
/// not); the median is reported alongside for context. Global minima
/// are still what the JSON throughput numbers report.
///
/// Measurement parallelism is min(4, hardware width). Forcing four
/// CPU-bound worker *processes* onto fewer cores measures the kernel's
/// cost of time-slicing distinct address spaces (TLB and cache churn on
/// every quantum — 10-20% here, and proportional to runtime), not the
/// supervision machinery; the same four workloads as *threads* share
/// one address space and dodge that tax, so the comparison stops being
/// about containment at all. That cost vanishes when cores >= workers,
/// which is where the 4-way number is meaningful — so the bench runs
/// 4-way wherever the hardware can, and at the hardware's own width
/// (typically 1v1) below that. The byte-identity check still runs the
/// full 4-worker pool: correctness must hold at any worker count.
///
///   micro_supervision [projects] [seed] [out.json]   (defaults: 32 42
///                                                     BENCH_supervision.json)
///
//===----------------------------------------------------------------------===//

#include "core/DiffCode.h"
#include "core/ReportWriter.h"
#include "corpus/CorpusGenerator.h"
#include "corpus/Miner.h"
#include "exec/Supervisor.h"
#include "support/JsonWriter.h"
#include "support/ThreadPool.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <sys/resource.h>
#include <vector>

using namespace diffcode;
using namespace diffcode::core;

namespace {

constexpr unsigned RequestedParallelism = 4;
constexpr double OverheadBar = 1.10;

const apimodel::CryptoApiModel &api() {
  return apimodel::CryptoApiModel::javaCryptoApi();
}

std::uint64_t nanosSince(std::chrono::steady_clock::time_point Start) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - Start)
          .count());
}

/// Total CPU nanoseconds this process and its reaped children have
/// burned (user + system). The supervisor reaps every worker before
/// superviseChanges returns, so a delta across a supervised run charges
/// the full pool.
std::uint64_t cpuNowNs() {
  auto Sum = [](const rusage &R) {
    auto Tv = [](const timeval &T) {
      return static_cast<std::uint64_t>(T.tv_sec) * 1000000000ull +
             static_cast<std::uint64_t>(T.tv_usec) * 1000ull;
    };
    return Tv(R.ru_utime) + Tv(R.ru_stime);
  };
  rusage Self{}, Children{};
  getrusage(RUSAGE_SELF, &Self);
  getrusage(RUSAGE_CHILDREN, &Children);
  return Sum(Self) + Sum(Children);
}

struct SideSample {
  std::uint64_t WallNs = ~std::uint64_t(0);
  std::uint64_t CpuNs = ~std::uint64_t(0);
};

struct OverheadSample {
  SideSample InProc;
  SideSample Supervised;
  std::vector<double> PairCpuRatios; ///< One per back-to-back rep pair.
  double cpuRatioQuantile(double Q) const {
    std::vector<double> R = PairCpuRatios;
    std::sort(R.begin(), R.end());
    if (R.empty())
      return 0.0;
    std::size_t I = static_cast<std::size_t>(Q * static_cast<double>(R.size()));
    return R[std::min(I, R.size() - 1)];
  }
  double cpuRatioLowerQuartile() const { return cpuRatioQuantile(0.25); }
  double cpuRatioMedian() const { return cpuRatioQuantile(0.5); }
  double wallRatio() const {
    return static_cast<double>(Supervised.WallNs) /
           static_cast<double>(InProc.WallNs);
  }
};

/// One alternating sweep: \p Reps back-to-back (in-process, supervised)
/// pairs. Each pair yields one CPU ratio; per-side wall/CPU minima are
/// tracked independently for the throughput numbers.
void measure(const DiffCode &System, const PipelineRequest &InProc,
             const PipelineRequest &Supervised, unsigned Reps,
             std::size_t &Sink, OverheadSample &Sample) {
  auto Run = [&](auto &&Stage, SideSample &Side) {
    std::uint64_t CpuStart = cpuNowNs();
    auto Start = std::chrono::steady_clock::now();
    Sink += Stage();
    std::uint64_t WallNs = nanosSince(Start);
    std::uint64_t CpuNs = cpuNowNs() - CpuStart;
    if (WallNs < Side.WallNs)
      Side.WallNs = WallNs;
    if (CpuNs < Side.CpuNs)
      Side.CpuNs = CpuNs;
    return CpuNs;
  };
  for (unsigned Rep = 0; Rep < Reps; ++Rep) {
    std::uint64_t InCpu =
        Run([&] { return System.analyzeChanges(InProc).size(); },
            Sample.InProc);
    std::uint64_t SupCpu =
        Run([&] { return exec::superviseChanges(System, Supervised).size(); },
            Sample.Supervised);
    Sample.PairCpuRatios.push_back(static_cast<double>(SupCpu) /
                                   static_cast<double>(InCpu));
  }
}

} // namespace

int main(int argc, char **argv) {
  long long Projects = argc > 1 ? std::atoll(argv[1]) : 32;
  if (Projects <= 0) {
    std::fprintf(stderr,
                 "usage: micro_supervision [projects > 0] [seed] [out.json]"
                 "   (defaults: 32 42 BENCH_supervision.json)\n");
    return 2;
  }
  std::uint64_t Seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 42;
  const char *OutPath = argc > 3 ? argv[3] : "BENCH_supervision.json";

  corpus::CorpusOptions Opts;
  Opts.NumProjects = static_cast<unsigned>(Projects);
  Opts.Seed = Seed;
  corpus::Corpus C = corpus::CorpusGenerator(Opts).generate();
  corpus::Miner M(api());
  std::vector<const corpus::CodeChange *> Mined = M.mine(C);
  unsigned Parallelism =
      std::min(RequestedParallelism, support::resolveThreads(0));
  std::fprintf(stderr,
               "supervision bench: %lld projects (seed %llu), %zu mined "
               "changes, %u-way (%u requested)\n",
               Projects, static_cast<unsigned long long>(Seed), Mined.size(),
               Parallelism, RequestedParallelism);

  PipelineConfig SysOpts;
  SysOpts.Threads = Parallelism;
  DiffCode System(api(), SysOpts);

  PipelineRequest InProc;
  InProc.Changes = Mined;
  InProc.TargetClasses = api().targetClasses();

  PipelineRequest Supervised = InProc;
  Supervised.Exec.Mode = ExecutionMode::Supervised;
  Supervised.Exec.Workers = Parallelism;

  // The correctness checks always exercise the full requested pool —
  // worker count must never change the report.
  PipelineRequest FullPool = Supervised;
  FullPool.Exec.Workers = RequestedParallelism;

  //===--------------------------------------------------------------------===//
  // Byte-identity + clean-run bookkeeping
  //===--------------------------------------------------------------------===//

  std::string InProcJson = corpusReportToJson(System.run(InProc));
  exec::SupervisionStats Stats;
  std::vector<ChangeRecord> SupRecords =
      exec::superviseChanges(System, FullPool, &Stats);
  std::string SupervisedJson =
      corpusReportToJson(System.run(FullPool));
  bool ByteIdentical = !InProcJson.empty() && InProcJson == SupervisedJson;

  std::uint64_t TerminalTotal = 0;
  for (std::uint64_t N : Stats.TerminalStatus)
    TerminalTotal += N;
  bool CleanRun = SupRecords.size() == Mined.size() && Stats.Retries == 0 &&
                  Stats.Bisections == 0 && Stats.WorkerRestarts == 0 &&
                  Stats.DeadlineKills == 0 && Stats.InlineFallbacks == 0 &&
                  TerminalTotal == 0;

  //===--------------------------------------------------------------------===//
  // Throughput: interleaved min-of-N, one retry
  //===--------------------------------------------------------------------===//

  std::size_t Sink = 0; // keeps the stage runs observable
  {
    // One discarded warmup pair: the first supervised run after the
    // correctness section faults in the fork/pipe paths cold.
    OverheadSample Warmup;
    measure(System, InProc, Supervised, 1, Sink, Warmup);
  }
  unsigned Reps = 7;
  OverheadSample Sample;
  measure(System, InProc, Supervised, Reps, Sink, Sample);
  bool OverheadOk = Sample.cpuRatioLowerQuartile() < OverheadBar;
  if (!OverheadOk) {
    unsigned More = 15;
    std::fprintf(stderr,
                 "  p25 cpu ratio %.4f over bar, extending by %u reps\n",
                 Sample.cpuRatioLowerQuartile(), More);
    // Every pair samples the same quantity: extend the collection
    // rather than discarding the first pass.
    measure(System, InProc, Supervised, More, Sink, Sample);
    Reps += More;
    OverheadOk = Sample.cpuRatioLowerQuartile() < OverheadBar;
  }

  double ChangesPerSecInProc =
      Mined.empty() ? 0.0 : Mined.size() / (Sample.InProc.WallNs / 1e9);
  double ChangesPerSecSupervised =
      Mined.empty() ? 0.0 : Mined.size() / (Sample.Supervised.WallNs / 1e9);
  std::fprintf(stderr,
               "  in-process cpu %8.2f ms wall %8.2f ms (%7.0f changes/s)\n"
               "  supervised cpu %8.2f ms wall %8.2f ms (%7.0f changes/s)\n"
               "  pair cpu ratio p25 %.4f (gated) median %.4f  min-wall "
               "ratio %.4f (reported)\n",
               Sample.InProc.CpuNs / 1e6, Sample.InProc.WallNs / 1e6,
               ChangesPerSecInProc, Sample.Supervised.CpuNs / 1e6,
               Sample.Supervised.WallNs / 1e6, ChangesPerSecSupervised,
               Sample.cpuRatioLowerQuartile(), Sample.cpuRatioMedian(),
               Sample.wallRatio());

  //===--------------------------------------------------------------------===//
  // Report
  //===--------------------------------------------------------------------===//

  JsonWriter W;
  W.beginObject();
  W.key("bench").value("micro_supervision");
  W.key("projects").value(static_cast<std::uint64_t>(Projects));
  W.key("seed").value(Seed);
  W.key("changes").value(static_cast<std::uint64_t>(Mined.size()));
  W.key("parallelism").value(static_cast<std::uint64_t>(Parallelism));
  W.key("parallelism_requested")
      .value(static_cast<std::uint64_t>(RequestedParallelism));
  W.key("reps").value(static_cast<std::uint64_t>(Reps));
  W.key("inproc_cpu_ns_min").value(Sample.InProc.CpuNs);
  W.key("supervised_cpu_ns_min").value(Sample.Supervised.CpuNs);
  W.key("inproc_wall_ns_min").value(Sample.InProc.WallNs);
  W.key("supervised_wall_ns_min").value(Sample.Supervised.WallNs);
  W.key("inproc_changes_per_sec").value(ChangesPerSecInProc);
  W.key("supervised_changes_per_sec").value(ChangesPerSecSupervised);
  W.key("overhead_cpu_ratio_p25").value(Sample.cpuRatioLowerQuartile());
  W.key("overhead_cpu_ratio_median").value(Sample.cpuRatioMedian());
  W.key("overhead_wall_ratio").value(Sample.wallRatio());
  W.key("overhead_bar").value(OverheadBar);
  W.key("supervision").beginObject();
  W.key("units_dispatched").value(Stats.UnitsDispatched);
  W.key("frames_received").value(Stats.FramesReceived);
  W.key("bytes_received").value(Stats.BytesReceived);
  W.key("worker_restarts").value(Stats.WorkerRestarts);
  W.key("retries").value(Stats.Retries);
  W.key("bisections").value(Stats.Bisections);
  W.key("deadline_kills").value(Stats.DeadlineKills);
  W.key("inline_fallbacks").value(Stats.InlineFallbacks);
  W.endObject();
  W.key("byte_identical").value(ByteIdentical);
  W.key("clean_run_no_supervision_work").value(CleanRun);
  W.key("overhead_ok").value(OverheadOk);
  bool Pass = ByteIdentical && CleanRun && OverheadOk;
  W.key("pass").value(Pass);
  W.endObject();

  std::string Json = W.take();
  std::printf("%s\n", Json.c_str());
  std::ofstream Out(OutPath);
  if (Out)
    Out << Json << "\n";
  else
    std::fprintf(stderr, "warning: cannot write %s\n", OutPath);

  if (!ByteIdentical)
    std::fprintf(stderr, "FAIL: supervised report differs from in-process\n");
  if (!CleanRun)
    std::fprintf(stderr, "FAIL: a clean run did supervision work\n");
  if (!OverheadOk)
    std::fprintf(stderr,
                 "FAIL: supervised p25 cpu overhead ratio %.4f >= %.2f\n",
                 Sample.cpuRatioLowerQuartile(), OverheadBar);
  std::fprintf(stderr, "  %s\n", Pass ? "PASS" : "FAIL");
  return Pass ? 0 : 1;
}
