file(REMOVE_RECURSE
  "CMakeFiles/diffcode_corpus.dir/CorpusGenerator.cpp.o"
  "CMakeFiles/diffcode_corpus.dir/CorpusGenerator.cpp.o.d"
  "CMakeFiles/diffcode_corpus.dir/CorpusIO.cpp.o"
  "CMakeFiles/diffcode_corpus.dir/CorpusIO.cpp.o.d"
  "CMakeFiles/diffcode_corpus.dir/Miner.cpp.o"
  "CMakeFiles/diffcode_corpus.dir/Miner.cpp.o.d"
  "CMakeFiles/diffcode_corpus.dir/Scenario.cpp.o"
  "CMakeFiles/diffcode_corpus.dir/Scenario.cpp.o.d"
  "libdiffcode_corpus.a"
  "libdiffcode_corpus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/diffcode_corpus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
