//===- tests/test_abstract_value.cpp - Figure-3 domain tests ---------------===//

#include "analysis/AbstractValue.h"

#include <gtest/gtest.h>

using namespace diffcode::analysis;

TEST(AbstractValue, LabelsMatchPaperNotation) {
  EXPECT_EQ(AbstractValue::intConst(42).label(), "42");
  EXPECT_EQ(AbstractValue::intConst(1, "ENCRYPT_MODE").label(),
            "ENCRYPT_MODE");
  EXPECT_EQ(AbstractValue::intTop().label(), "⊤int");
  EXPECT_EQ(AbstractValue::strConst("AES/CBC").label(), "AES/CBC");
  EXPECT_EQ(AbstractValue::strTop().label(), "⊤str");
  EXPECT_EQ(AbstractValue::byteConst().label(), "constbyte");
  EXPECT_EQ(AbstractValue::byteTop().label(), "⊤byte");
  EXPECT_EQ(AbstractValue::byteArrayConst().label(), "constbyte[]");
  EXPECT_EQ(AbstractValue::byteArrayTop().label(), "⊤byte[]");
  EXPECT_EQ(AbstractValue::intArrayTop().label(), "⊤int[]");
  EXPECT_EQ(AbstractValue::null().label(), "null");
  EXPECT_EQ(AbstractValue::object(3, "Cipher").label(), "Cipher");
  EXPECT_EQ(AbstractValue::topObject("Secret").label(), "Secret");
}

TEST(AbstractValue, IntArrayConstKeepsElements) {
  AbstractValue V = AbstractValue::intArrayConst({1, 2, 3});
  EXPECT_EQ(V.label(), "[1,2,3]");
  EXPECT_EQ(V.intElements().size(), 3u);
}

TEST(AbstractValue, ConstancyClassification) {
  EXPECT_TRUE(AbstractValue::intConst(5).isConstant());
  EXPECT_TRUE(AbstractValue::strConst("x").isConstant());
  EXPECT_TRUE(AbstractValue::byteArrayConst().isConstant());
  EXPECT_TRUE(AbstractValue::unknownConst().isConstant());
  EXPECT_TRUE(AbstractValue::null().isConstant());
  EXPECT_FALSE(AbstractValue::intTop().isConstant());
  EXPECT_FALSE(AbstractValue::byteArrayTop().isConstant());
  EXPECT_FALSE(AbstractValue::unknown().isConstant());
  EXPECT_FALSE(AbstractValue::object(0, "Cipher").isConstant());
  EXPECT_FALSE(AbstractValue::topObject("Key").isConstant());
}

TEST(AbstractValue, EqualityRespectsContent) {
  EXPECT_EQ(AbstractValue::intConst(1), AbstractValue::intConst(1));
  EXPECT_NE(AbstractValue::intConst(1), AbstractValue::intConst(2));
  // A symbolic constant differs from a bare one with the same value: the
  // paper's labels distinguish ENCRYPT_MODE from 1.
  EXPECT_NE(AbstractValue::intConst(1, "ENCRYPT_MODE"),
            AbstractValue::intConst(1));
  EXPECT_EQ(AbstractValue::strConst("AES"), AbstractValue::strConst("AES"));
  EXPECT_NE(AbstractValue::strConst("AES"), AbstractValue::strConst("DES"));
  EXPECT_EQ(AbstractValue::object(2, "Cipher"),
            AbstractValue::object(2, "Cipher"));
  EXPECT_NE(AbstractValue::object(2, "Cipher"),
            AbstractValue::object(3, "Cipher"));
  EXPECT_EQ(AbstractValue::topObject("Key"), AbstractValue::topObject("Key"));
  EXPECT_NE(AbstractValue::topObject("Key"),
            AbstractValue::topObject("Cipher"));
  EXPECT_NE(AbstractValue::intTop(), AbstractValue::strTop());
}

TEST(AbstractValueJoin, IdenticalValuesJoinToThemselves) {
  AbstractValue V = AbstractValue::strConst("AES");
  EXPECT_EQ(AbstractValue::join(V, V), V);
}

TEST(AbstractValueJoin, SameDomainDifferentValuesWiden) {
  EXPECT_EQ(AbstractValue::join(AbstractValue::intConst(1),
                                AbstractValue::intConst(2)),
            AbstractValue::intTop());
  EXPECT_EQ(AbstractValue::join(AbstractValue::strConst("a"),
                                AbstractValue::strConst("b")),
            AbstractValue::strTop());
  EXPECT_EQ(AbstractValue::join(AbstractValue::byteArrayConst(),
                                AbstractValue::byteArrayTop()),
            AbstractValue::byteArrayTop());
}

TEST(AbstractValueJoin, CrossDomainWidensToUnknown) {
  EXPECT_EQ(AbstractValue::join(AbstractValue::intConst(1),
                                AbstractValue::strConst("x"))
                .kind(),
            AVKind::Unknown);
}

TEST(AbstractValueJoin, ObjectsOfSameTypeJoinToTopObject) {
  AbstractValue A = AbstractValue::object(0, "Cipher");
  AbstractValue B = AbstractValue::object(1, "Cipher");
  AbstractValue J = AbstractValue::join(A, B);
  EXPECT_EQ(J.kind(), AVKind::TopObject);
  EXPECT_EQ(J.typeName(), "Cipher");
}

TEST(AbstractValueJoin, ObjectsOfDifferentTypesJoinToUnknown) {
  EXPECT_EQ(AbstractValue::join(AbstractValue::object(0, "Cipher"),
                                AbstractValue::object(1, "Mac"))
                .kind(),
            AVKind::Unknown);
}

TEST(AbstractValueJoin, CommutativeOnSamples) {
  std::vector<AbstractValue> Samples = {
      AbstractValue::unknown(),        AbstractValue::unknownConst(),
      AbstractValue::null(),           AbstractValue::intConst(7),
      AbstractValue::intTop(),         AbstractValue::strConst("AES"),
      AbstractValue::byteArrayConst(), AbstractValue::byteArrayTop(),
      AbstractValue::object(1, "Cipher"), AbstractValue::topObject("Key")};
  for (const AbstractValue &A : Samples)
    for (const AbstractValue &B : Samples)
      EXPECT_EQ(AbstractValue::join(A, B), AbstractValue::join(B, A))
          << A.label() << " vs " << B.label();
}

TEST(AbstractValueJoin, Idempotent) {
  std::vector<AbstractValue> Samples = {
      AbstractValue::intConst(7), AbstractValue::strTop(),
      AbstractValue::byteArrayConst(), AbstractValue::topObject("Key")};
  for (const AbstractValue &A : Samples)
    EXPECT_EQ(AbstractValue::join(A, A), A);
}
