//===- tests/test_lexer.cpp - Java lexer unit tests ------------------------===//

#include "javaast/Lexer.h"

#include <gtest/gtest.h>

using namespace diffcode::java;

namespace {

TokenStream lex(std::string_view Source) {
  DiagnosticsEngine Diags;
  Lexer L(Source, Diags);
  return L.lexAll();
}

TokenStream lexExpectErrors(std::string_view Source,
                            DiagnosticsEngine &Diags) {
  Lexer L(Source, Diags);
  return L.lexAll();
}

} // namespace

TEST(Lexer, EmptyInput) {
  TokenStream Tokens = lex("");
  ASSERT_EQ(Tokens.size(), 1u);
  EXPECT_EQ(Tokens[0].Kind, TokenKind::EndOfFile);
}

TEST(Lexer, Identifiers) {
  TokenStream Tokens = lex("foo _bar $baz a1b2");
  ASSERT_EQ(Tokens.size(), 5u);
  for (int I = 0; I < 4; ++I)
    EXPECT_EQ(Tokens[I].Kind, TokenKind::Identifier);
  EXPECT_EQ(Tokens[0].Text, "foo");
  EXPECT_EQ(Tokens[1].Text, "_bar");
  EXPECT_EQ(Tokens[2].Text, "$baz");
  EXPECT_EQ(Tokens[3].Text, "a1b2");
}

TEST(Lexer, Keywords) {
  TokenStream Tokens = lex("class if else while new return try");
  EXPECT_EQ(Tokens[0].Kind, TokenKind::KwClass);
  EXPECT_EQ(Tokens[1].Kind, TokenKind::KwIf);
  EXPECT_EQ(Tokens[2].Kind, TokenKind::KwElse);
  EXPECT_EQ(Tokens[3].Kind, TokenKind::KwWhile);
  EXPECT_EQ(Tokens[4].Kind, TokenKind::KwNew);
  EXPECT_EQ(Tokens[5].Kind, TokenKind::KwReturn);
  EXPECT_EQ(Tokens[6].Kind, TokenKind::KwTry);
}

TEST(Lexer, KeywordPrefixIsIdentifier) {
  TokenStream Tokens = lex("classy ifx news");
  EXPECT_EQ(Tokens[0].Kind, TokenKind::Identifier);
  EXPECT_EQ(Tokens[1].Kind, TokenKind::Identifier);
  EXPECT_EQ(Tokens[2].Kind, TokenKind::Identifier);
}

TEST(Lexer, IntLiterals) {
  TokenStream Tokens = lex("0 42 0x1F 123L");
  EXPECT_EQ(Tokens[0].Kind, TokenKind::IntLiteral);
  EXPECT_EQ(Tokens[0].Text, "0");
  EXPECT_EQ(Tokens[1].Text, "42");
  EXPECT_EQ(Tokens[2].Kind, TokenKind::IntLiteral);
  EXPECT_EQ(Tokens[2].Text, "0x1F");
  EXPECT_EQ(Tokens[3].Kind, TokenKind::LongLiteral);
}

TEST(Lexer, FloatLiteralLexedAsNumber) {
  TokenStream Tokens = lex("3.14f 2.5");
  EXPECT_EQ(Tokens[0].Kind, TokenKind::IntLiteral);
  EXPECT_EQ(Tokens[0].Text, "3.14f");
  EXPECT_EQ(Tokens[1].Text, "2.5");
}

TEST(Lexer, StringLiteralDecodesEscapes) {
  TokenStream Tokens = lex(R"("a\nb\"c\\d")");
  ASSERT_EQ(Tokens[0].Kind, TokenKind::StringLiteral);
  EXPECT_EQ(Tokens[0].Text, "a\nb\"c\\d");
}

TEST(Lexer, StringLiteralPlain) {
  TokenStream Tokens = lex("\"AES/CBC/PKCS5Padding\"");
  ASSERT_EQ(Tokens[0].Kind, TokenKind::StringLiteral);
  EXPECT_EQ(Tokens[0].Text, "AES/CBC/PKCS5Padding");
}

TEST(Lexer, CharLiteral) {
  TokenStream Tokens = lex("'x' '\\n' '\\''");
  EXPECT_EQ(Tokens[0].Kind, TokenKind::CharLiteral);
  EXPECT_EQ(Tokens[0].Text, "x");
  EXPECT_EQ(Tokens[1].Text, "\n");
  EXPECT_EQ(Tokens[2].Text, "'");
}

TEST(Lexer, UnicodeEscape) {
  TokenStream Tokens = lex(R"("A")");
  EXPECT_EQ(Tokens[0].Text, "A");
}

TEST(Lexer, LineCommentsSkipped) {
  TokenStream Tokens = lex("a // comment with * and /\nb");
  ASSERT_EQ(Tokens.size(), 3u);
  EXPECT_EQ(Tokens[0].Text, "a");
  EXPECT_EQ(Tokens[1].Text, "b");
}

TEST(Lexer, BlockCommentsSkipped) {
  TokenStream Tokens = lex("a /* multi\nline\ncomment */ b");
  ASSERT_EQ(Tokens.size(), 3u);
  EXPECT_EQ(Tokens[1].Text, "b");
}

TEST(Lexer, UnterminatedBlockCommentDiagnosed) {
  DiagnosticsEngine Diags;
  lexExpectErrors("a /* never closed", Diags);
  EXPECT_TRUE(Diags.hasErrors());
}

TEST(Lexer, UnterminatedStringDiagnosed) {
  DiagnosticsEngine Diags;
  lexExpectErrors("\"open\n", Diags);
  EXPECT_TRUE(Diags.hasErrors());
}

TEST(Lexer, OperatorsAndPunctuation) {
  TokenStream Tokens =
      lex("{ } ( ) [ ] ; , . == != <= >= && || += -= ++ -- << >> ...");
  std::vector<TokenKind> Expected = {
      TokenKind::LBrace,     TokenKind::RBrace,       TokenKind::LParen,
      TokenKind::RParen,     TokenKind::LBracket,     TokenKind::RBracket,
      TokenKind::Semi,       TokenKind::Comma,        TokenKind::Dot,
      TokenKind::EqualEqual, TokenKind::NotEqual,     TokenKind::LessEqual,
      TokenKind::GreaterEqual, TokenKind::AmpAmp,     TokenKind::PipePipe,
      TokenKind::PlusAssign, TokenKind::MinusAssign,  TokenKind::PlusPlus,
      TokenKind::MinusMinus, TokenKind::Shl,          TokenKind::Shr,
      TokenKind::Ellipsis};
  ASSERT_GE(Tokens.size(), Expected.size());
  for (std::size_t I = 0; I < Expected.size(); ++I)
    EXPECT_EQ(Tokens[I].Kind, Expected[I]) << "token " << I;
}

TEST(Lexer, MaximalMunch) {
  // `a+++b` lexes as a ++ + b.
  TokenStream Tokens = lex("a+++b");
  EXPECT_EQ(Tokens[0].Kind, TokenKind::Identifier);
  EXPECT_EQ(Tokens[1].Kind, TokenKind::PlusPlus);
  EXPECT_EQ(Tokens[2].Kind, TokenKind::Plus);
  EXPECT_EQ(Tokens[3].Kind, TokenKind::Identifier);
}

TEST(Lexer, TracksLineAndColumn) {
  TokenStream Tokens = lex("a\n  b");
  EXPECT_EQ(Tokens[0].Loc.Line, 1u);
  EXPECT_EQ(Tokens[0].Loc.Column, 1u);
  EXPECT_EQ(Tokens[1].Loc.Line, 2u);
  EXPECT_EQ(Tokens[1].Loc.Column, 3u);
}

TEST(Lexer, UnknownCharacterDiagnosed) {
  DiagnosticsEngine Diags;
  TokenStream Tokens = lexExpectErrors("a # b", Diags);
  EXPECT_TRUE(Diags.hasErrors());
  // Lexing continues past the bad character.
  EXPECT_EQ(Tokens.back().Kind, TokenKind::EndOfFile);
  EXPECT_EQ(Tokens[2].Text, "b");
}

TEST(Lexer, AnnotationAt) {
  TokenStream Tokens = lex("@Override");
  EXPECT_EQ(Tokens[0].Kind, TokenKind::At);
  EXPECT_EQ(Tokens[1].Kind, TokenKind::Identifier);
}

TEST(Lexer, LineOffsetTableHandlesCrlfAndUnicodeEscapes) {
  // CRLF line endings: '\r' counts one column like any byte; only '\n'
  // starts a new line. The \u escape inside the string consumes source
  // bytes without producing them, so following tokens must still get
  // their location from the raw buffer offsets.
  std::string_view Source = "a\r\nbb \"x\\u0041y\" c\r\n  d";
  TokenStream Tokens = lex(Source);
  ASSERT_EQ(Tokens.size(), 6u); // five tokens + EOF
  EXPECT_EQ(Tokens[0].Loc, (SourceLocation{1, 1, 0}));   // a
  EXPECT_EQ(Tokens[1].Loc, (SourceLocation{2, 1, 3}));   // bb
  EXPECT_EQ(Tokens[2].Loc, (SourceLocation{2, 4, 6}));   // string
  EXPECT_EQ(Tokens[2].Text, "xAy");
  EXPECT_EQ(Tokens[3].Loc, (SourceLocation{2, 15, 17})); // c
  EXPECT_EQ(Tokens[4].Loc, (SourceLocation{3, 3, 22}));  // d
  // SourceLocation::operator== ignores Offset; check it explicitly.
  EXPECT_EQ(Tokens[0].Loc.Offset, 0u);
  EXPECT_EQ(Tokens[1].Loc.Offset, 3u);
  EXPECT_EQ(Tokens[2].Loc.Offset, 6u);
  EXPECT_EQ(Tokens[3].Loc.Offset, 17u);
  EXPECT_EQ(Tokens[4].Loc.Offset, 22u);
}

TEST(Lexer, MultiLineStringEscapeKeepsFollowingLocations) {
  // A backslash-newline inside a string consumes the newline; the line
  // table must still place later tokens correctly.
  TokenStream Tokens = lex("\"a\\\nb\" x");
  ASSERT_EQ(Tokens.size(), 3u);
  EXPECT_EQ(Tokens[0].Kind, TokenKind::StringLiteral);
  EXPECT_EQ(Tokens[0].Text, "a\nb");
  EXPECT_EQ(Tokens[1].Text, "x");
  EXPECT_EQ(Tokens[1].Loc, (SourceLocation{2, 4, 7}));
}

TEST(TokenNames, CoverCommonKinds) {
  EXPECT_EQ(tokenKindName(TokenKind::Identifier), "identifier");
  EXPECT_EQ(tokenKindName(TokenKind::KwClass), "'class'");
  EXPECT_EQ(tokenKindName(TokenKind::LBrace), "'{'");
  EXPECT_EQ(tokenKindName(TokenKind::EndOfFile), "end of file");
}

TEST(Keywords, LookupRoundTrip) {
  EXPECT_EQ(lookupKeyword("class"), TokenKind::KwClass);
  EXPECT_EQ(lookupKeyword("synchronized"), TokenKind::KwSynchronized);
  EXPECT_EQ(lookupKeyword("notakeyword"), TokenKind::Identifier);
  EXPECT_EQ(lookupKeyword(""), TokenKind::Identifier);
}
