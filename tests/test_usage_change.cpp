//===- tests/test_usage_change.cpp - Diff & pairing tests (Section 3.5) ----===//

#include "usage/UsageChange.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <random>

using namespace diffcode;
using namespace diffcode::analysis;
using namespace diffcode::usage;

namespace {

/// One shared table per test binary: append-only, so tests cannot
/// interfere with each other through it.
support::Interner &table() {
  static support::Interner Table;
  return Table;
}

NodeLabel rootL(const char *T) { return NodeLabel::root(T); }
NodeLabel methodL(const char *Sig) { return NodeLabel::method(Sig); }
NodeLabel strArg(unsigned I, const char *V) {
  return NodeLabel::arg(I, AbstractValue::strConst(V));
}

/// Builds a Cipher DAG with a getInstance(algo) and optional extra event.
UsageDag cipherDag(const char *Algo, bool WithIv = false) {
  ObjectTable Objects;
  UsageLog Log;
  unsigned Enc = Objects.getOrCreate({13, 1, 0}, "Cipher");
  Log[Enc].push_back(
      {"Cipher.getInstance/1", {AbstractValue::strConst(Algo)}});
  std::vector<AbstractValue> InitArgs = {
      AbstractValue::intConst(1, "ENCRYPT_MODE"),
      AbstractValue::topObject("Key")};
  if (WithIv)
    InitArgs.push_back(AbstractValue::topObject("IvParameterSpec"));
  Log[Enc].push_back(
      {"Cipher.init/" + std::to_string(InitArgs.size()), InitArgs});
  return UsageDag::build(Objects, Log, Enc);
}

std::vector<std::string> strs(const std::vector<FeaturePath> &Paths) {
  std::vector<std::string> Out;
  for (const FeaturePath &P : Paths)
    Out.push_back(pathToString(P));
  std::sort(Out.begin(), Out.end());
  return Out;
}

std::vector<support::PathId> intern(const std::vector<FeaturePath> &Paths) {
  std::vector<support::PathId> Ids;
  for (const FeaturePath &P : Paths)
    Ids.push_back(table().path(P));
  return Ids;
}

/// The pre-interning quadratic reference implementation of Shortest(P),
/// kept verbatim as the property-test oracle for the linear-pass
/// elimination.
std::vector<FeaturePath> shortestPathsQuadratic(
    const std::vector<FeaturePath> &Paths) {
  auto IsStrictPrefix = [](const FeaturePath &A, const FeaturePath &B) {
    if (A.size() >= B.size())
      return false;
    return std::equal(A.begin(), A.end(), B.begin());
  };
  std::vector<FeaturePath> Out;
  for (const FeaturePath &Candidate : Paths) {
    bool HasPrefix = false;
    for (const FeaturePath &Other : Paths)
      if (IsStrictPrefix(Other, Candidate)) {
        HasPrefix = true;
        break;
      }
    if (!HasPrefix)
      Out.push_back(Candidate);
  }
  return Out;
}

} // namespace

//===----------------------------------------------------------------------===//
// Shortest-paths
//===----------------------------------------------------------------------===//

TEST(ShortestPaths, RemovesExtensionsOfKeptPaths) {
  FeaturePath AB = {rootL("T"), methodL("T.a")};
  FeaturePath ABC = {rootL("T"), methodL("T.a"), strArg(1, "x")};
  FeaturePath BC = {methodL("T.b"), strArg(1, "y")};
  std::vector<support::PathId> Result =
      shortestPaths(intern({AB, ABC, BC}), table());
  ASSERT_EQ(Result.size(), 2u);
  EXPECT_TRUE(std::find(Result.begin(), Result.end(), table().path(AB)) !=
              Result.end());
  EXPECT_TRUE(std::find(Result.begin(), Result.end(), table().path(BC)) !=
              Result.end());
}

TEST(ShortestPaths, IdenticalPathsAreNotPrefixesOfEachOther) {
  FeaturePath P = {rootL("T"), methodL("T.a")};
  std::vector<support::PathId> Result =
      shortestPaths(intern({P, P}), table());
  EXPECT_EQ(Result.size(), 2u); // strict prefix only — duplicates survive
}

TEST(ShortestPaths, EmptyInput) {
  EXPECT_TRUE(shortestPaths({}, table()).empty());
}

TEST(ShortestPaths, PreservesInputOrder) {
  FeaturePath A = {rootL("T"), methodL("T.z")};
  FeaturePath B = {rootL("T"), methodL("T.a")};
  FeaturePath C = {methodL("T.m"), strArg(1, "v")};
  std::vector<support::PathId> In = intern({A, B, C});
  std::vector<support::PathId> Result = shortestPaths(In, table());
  EXPECT_EQ(Result, In); // nothing eliminated -> order untouched
}

TEST(ShortestPaths, LinearPassMatchesQuadraticReference) {
  // Property test for the sort-then-eliminate rewrite: random path
  // multisets (shared prefixes, duplicates, varying depths) must produce
  // exactly the quadratic oracle's survivor multiset, in input order.
  std::mt19937 Rng(20260805);
  const char *Methods[] = {"T.a", "T.ab", "T.b", "T.init", "T.doFinal"};
  const char *Values[] = {"x", "xy", "AES", "AES/GCM", ""};
  for (int Round = 0; Round < 200; ++Round) {
    std::vector<FeaturePath> Paths;
    std::size_t N = Rng() % 12;
    for (std::size_t I = 0; I < N; ++I) {
      FeaturePath P = {rootL("T")};
      std::size_t Depth = Rng() % 4;
      for (std::size_t D = 0; D < Depth; ++D) {
        P.push_back(methodL(Methods[Rng() % 5]));
        if (Rng() % 2)
          P.push_back(strArg(1 + Rng() % 2, Values[Rng() % 5]));
      }
      Paths.push_back(std::move(P));
      // Occasionally duplicate or extend an earlier path to force the
      // prefix/duplicate corner cases.
      if (!Paths.empty() && Rng() % 3 == 0) {
        FeaturePath Copy = Paths[Rng() % Paths.size()];
        if (Rng() % 2)
          Copy.push_back(methodL(Methods[Rng() % 5]));
        Paths.push_back(std::move(Copy));
      }
    }

    std::vector<FeaturePath> Expected = shortestPathsQuadratic(Paths);
    std::vector<support::PathId> Actual =
        shortestPaths(intern(Paths), table());
    ASSERT_EQ(Actual.size(), Expected.size()) << "round " << Round;
    for (std::size_t I = 0; I < Actual.size(); ++I)
      EXPECT_EQ(table().materialize(Actual[I]), Expected[I])
          << "round " << Round << " survivor " << I;
  }
}

//===----------------------------------------------------------------------===//
// diffDags
//===----------------------------------------------------------------------===//

TEST(DiffDags, IdenticalDagsYieldEmptyChange) {
  UsageDag A = cipherDag("AES");
  UsageDag B = cipherDag("AES");
  UsageChange Change = diffDags(A, B, table());
  EXPECT_TRUE(Change.isEmpty());
  EXPECT_EQ(Change.TypeName, "Cipher");
}

TEST(DiffDags, AlgorithmSwapProducesMinimalFeatures) {
  UsageChange Change =
      diffDags(cipherDag("AES"), cipherDag("AES/CBC", true), table());
  std::vector<std::string> Removed = strs(Change.removedPaths());
  std::vector<std::string> Added = strs(Change.addedPaths());
  ASSERT_EQ(Removed.size(), 1u);
  EXPECT_EQ(Removed[0], "Cipher Cipher.getInstance arg1:AES");
  ASSERT_EQ(Added.size(), 2u);
  EXPECT_EQ(Added[0], "Cipher Cipher.getInstance arg1:AES/CBC");
  EXPECT_EQ(Added[1], "Cipher Cipher.init arg3:IvParameterSpec");
}

TEST(DiffDags, AgainstEmptyIsPureAddition) {
  UsageChange Change =
      diffDags(UsageDag::emptyFor("Cipher"), cipherDag("AES"), table());
  EXPECT_TRUE(Change.Removed.empty());
  EXPECT_FALSE(Change.Added.empty());
  // The shortest added paths start at the method level (the root is
  // shared).
  for (const FeaturePath &P : Change.addedPaths())
    EXPECT_EQ(P.size(), 2u);
}

TEST(DiffDags, SymmetricSwapReversesFeatureSets) {
  UsageDag A = cipherDag("AES"), B = cipherDag("DES");
  UsageChange Fwd = diffDags(A, B, table());
  UsageChange Bwd = diffDags(B, A, table());
  EXPECT_EQ(Fwd.Removed, Bwd.Added);
  EXPECT_EQ(Fwd.Added, Bwd.Removed);
}

TEST(UsageChange, SameFeaturesIgnoresOrigin) {
  UsageChange A = diffDags(cipherDag("AES"), cipherDag("DES"), table());
  UsageChange B = A;
  B.Origin = "elsewhere";
  EXPECT_TRUE(A.sameFeatures(B));
  UsageChange C = diffDags(cipherDag("AES"), cipherDag("RC4"), table());
  EXPECT_FALSE(A.sameFeatures(C));
}

TEST(UsageChange, SameFeaturesAcrossDistinctInterners) {
  // Two pipelines, two tables: id values differ (intern order does), but
  // sameFeatures must still compare the underlying label structure.
  support::Interner Other;
  // Skew Other's id assignment relative to the shared table.
  Other.path({methodL("T.skew"), strArg(1, "skew")});
  UsageChange A = diffDags(cipherDag("AES"), cipherDag("DES"), table());
  UsageChange B = diffDags(cipherDag("AES"), cipherDag("DES"), Other);
  B.Origin = "elsewhere";
  EXPECT_TRUE(A.sameFeatures(B));
  EXPECT_TRUE(B.sameFeatures(A));
  UsageChange C = diffDags(cipherDag("AES"), cipherDag("RC4"), Other);
  EXPECT_FALSE(A.sameFeatures(C));
}

TEST(UsageChange, StrRendersSignedPaths) {
  UsageChange Change = diffDags(cipherDag("AES"), cipherDag("DES"), table());
  std::string Text = Change.str();
  EXPECT_NE(Text.find("- Cipher Cipher.getInstance arg1:AES"),
            std::string::npos);
  EXPECT_NE(Text.find("+ Cipher Cipher.getInstance arg1:DES"),
            std::string::npos);
}

TEST(UsageChange, InternFactoryRoundTrips) {
  FeaturePath R = {rootL("Cipher"), methodL("Cipher.getInstance/1"),
                   strArg(1, "AES")};
  FeaturePath A = {rootL("Cipher"), methodL("Cipher.getInstance/1"),
                   strArg(1, "AES/GCM")};
  UsageChange Change =
      UsageChange::intern(table(), "Cipher", {R}, {A}, "p@c1");
  EXPECT_EQ(Change.TypeName, "Cipher");
  EXPECT_EQ(Change.Origin, "p@c1");
  ASSERT_EQ(Change.removedPaths().size(), 1u);
  EXPECT_EQ(Change.removedPaths()[0], R);
  ASSERT_EQ(Change.addedPaths().size(), 1u);
  EXPECT_EQ(Change.addedPaths()[0], A);
  EXPECT_EQ(Change.pathString(Change.Removed[0]), pathToString(R));
}

//===----------------------------------------------------------------------===//
// pairDags
//===----------------------------------------------------------------------===//

TEST(PairDags, MatchesMostSimilarDags) {
  std::vector<UsageDag> Old, New;
  Old.push_back(cipherDag("AES"));
  Old.push_back(cipherDag("DES"));
  // New order reversed; the matcher must recover the correspondence.
  New.push_back(cipherDag("DES"));
  New.push_back(cipherDag("AES"));
  auto Pairs = pairDags(Old, New);
  ASSERT_EQ(Pairs.size(), 2u);
  for (auto [O, N] : Pairs) {
    ASSERT_NE(O, static_cast<std::size_t>(-1));
    ASSERT_NE(N, static_cast<std::size_t>(-1));
    EXPECT_DOUBLE_EQ(dagDistance(Old[O], New[N]), 0.0);
  }
}

TEST(PairDags, PadsWhenCountsDiffer) {
  std::vector<UsageDag> Old;
  Old.push_back(cipherDag("AES"));
  std::vector<UsageDag> New;
  New.push_back(cipherDag("AES"));
  New.push_back(cipherDag("DES"));
  auto Pairs = pairDags(Old, New);
  ASSERT_EQ(Pairs.size(), 2u);
  unsigned Unmatched = 0;
  for (auto [O, N] : Pairs)
    if (O == static_cast<std::size_t>(-1))
      ++Unmatched;
  EXPECT_EQ(Unmatched, 1u);
}

TEST(PairDags, EmptyInputs) {
  EXPECT_TRUE(pairDags({}, {}).empty());
  std::vector<UsageDag> One;
  One.push_back(cipherDag("AES"));
  EXPECT_EQ(pairDags(One, {}).size(), 1u);
  EXPECT_EQ(pairDags({}, One).size(), 1u);
}

//===----------------------------------------------------------------------===//
// deriveUsageChanges
//===----------------------------------------------------------------------===//

TEST(DeriveUsageChanges, RefactoringYieldsEmptyChanges) {
  std::vector<UsageDag> Old, New;
  Old.push_back(cipherDag("AES"));
  New.push_back(cipherDag("AES"));
  std::vector<UsageChange> Changes =
      deriveUsageChanges(Old, New, "Cipher", table());
  ASSERT_EQ(Changes.size(), 1u);
  EXPECT_TRUE(Changes[0].isEmpty());
}

TEST(DeriveUsageChanges, AdditionAndFixDistinguished) {
  std::vector<UsageDag> Old, New;
  Old.push_back(cipherDag("AES"));
  New.push_back(cipherDag("AES/GCM", true)); // the fix
  New.push_back(cipherDag("RC4"));           // a brand-new usage
  std::vector<UsageChange> Changes =
      deriveUsageChanges(Old, New, "Cipher", table());
  ASSERT_EQ(Changes.size(), 2u);
  unsigned Fixes = 0, Adds = 0;
  for (const UsageChange &C : Changes) {
    if (!C.Removed.empty() && !C.Added.empty())
      ++Fixes;
    if (C.Removed.empty() && !C.Added.empty())
      ++Adds;
  }
  EXPECT_EQ(Fixes, 1u);
  EXPECT_EQ(Adds, 1u);
}

TEST(DeriveUsageChanges, RemovalDetected) {
  std::vector<UsageDag> Old;
  Old.push_back(cipherDag("AES"));
  std::vector<UsageChange> Changes =
      deriveUsageChanges(Old, {}, "Cipher", table());
  ASSERT_EQ(Changes.size(), 1u);
  EXPECT_FALSE(Changes[0].Removed.empty());
  EXPECT_TRUE(Changes[0].Added.empty());
}
