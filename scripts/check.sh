#!/usr/bin/env bash
# Tier-1 verification: configure, build, and run the test suite, then the
# observability overhead guard (bench/micro_pipeline --verify-overhead,
# asserting an observed analyzeChanges stays within 5% of an unobserved
# one). Extra arguments pass through to ctest, e.g.
#   scripts/check.sh -L tier1
#   scripts/check.sh -L differential
#   scripts/check.sh -L metrics
#
# --asan (opt-in): build into build-asan/ with AddressSanitizer +
# UndefinedBehaviorSanitizer, aborting on the first report. Also drives
# one traced CLI pipeline run (--metrics --trace-out) so the span/metrics
# paths get a sanitized pass, and re-runs the lexer fuzz suite
# (test_lexer_fuzz) so the mutation corpus executes under the
# sanitizers; the overhead guard is skipped (sanitizer timings are
# meaningless). The regular build/ directory is untouched, so a
# sanitizer sweep never invalidates the incremental tier-1 build.
#   scripts/check.sh --asan -L tier1
#
# --bench-sharding (opt-in): after the test suite, run the sharded
# clustering sweep at paper scale (bench/micro_sharding). Self-verifying
# — non-zero exit on a determinism or memory-budget violation — and
# leaves BENCH_sharding.json in the build directory.
#   scripts/check.sh --bench-sharding -L tier1
#
# --bench-interning (opt-in): after the test suite, run the interned
# data-model sweep (bench/micro_interning) at n in {1k, 5k, 10k}.
# Self-verifying — non-zero exit if the interned model saves less than
# 2x resident bytes per change or the warmed cache is slower than the
# string-space metric — and leaves BENCH_interning.json in the build
# directory.
#   scripts/check.sh --bench-interning -L tier1
#
# --bench-faults (opt-in): after the test suite, run the fault-campaign
# sweep (bench/micro_faults): per-ChangeStatus counts vs wall time across
# fault rates and sites, read from metrics snapshots. Self-verifying —
# non-zero exit on an incomplete report, a nondeterministic campaign, or
# metrics that disagree with the health block — and leaves
# BENCH_faults.json in the build directory.
#   scripts/check.sh --bench-faults -L tier1
#
# --bench-lexer (opt-in): after the test suite, run the front-end scanner
# sweep (bench/micro_lexer): table-driven lexer vs the retained seed
# scanner over the concatenated corpus stream, with each timing taken in
# a forked child so neither scanner inherits the other's heap state.
# Self-verifying — non-zero exit if the two scanners are not
# byte-identical on every corpus source or the corpus-stream speedup
# falls below 5x — and leaves BENCH_lexer.json in the build directory.
#   scripts/check.sh --bench-lexer -L tier1
#
# --bench-incremental (opt-in): after the test suite, run the service
# append-vs-cold-batch guard (bench/micro_incremental) at n=10k.
# Self-verifying — non-zero exit if the warmed session's snapshot is not
# byte-identical to the cold batch report or the single-commit append
# speedup falls below 5x — and leaves BENCH_incremental.json in the
# build directory.
#   scripts/check.sh --bench-incremental -L tier1
#
# --bench-scan (opt-in): after the test suite, run the streaming rule
# scanner guard (bench/micro_scan) at 5x the Fig-10 corpus.
# Self-verifying — non-zero exit if the streamed scan report is not
# byte-identical to the serial CryptoChecker loop at 1/2/8 threads, the
# warm-scan speedup falls below 3x, the per-rule counters are missing
# from the metrics snapshot, or refinement widens a verdict — and leaves
# BENCH_scan.json in the build directory.
#   scripts/check.sh --bench-scan -L tier1
#
# --chaos (opt-in): after the regular suite, run the seeded chaos
# campaign (ctest -L chaos): workers that crash, hang, OOM-exit, start
# slowly, and corrupt result streams, asserting deterministic per-status
# counts and zero coordinator crashes; then the supervision throughput
# guard (bench/micro_supervision, asserting supervised execution stays
# byte-identical to in-process and within 10% of its CPU time at
# min(4, hardware-width) workers; leaves BENCH_supervision.json in the
# build directory); then a stitched-trace validation: two supervised
# traced CLI runs (2 and 4 workers) whose traces must be schema-valid,
# show at least two pid lanes, and agree on the per-change span count
# (span-count invariance — worker scheduling must not lose spans).
#   scripts/check.sh --chaos -L tier1
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR=build
CMAKE_ARGS=()
CTEST_ARGS=()
ASAN=0
BENCH_SHARDING=0
BENCH_INTERNING=0
BENCH_FAULTS=0
BENCH_LEXER=0
BENCH_INCREMENTAL=0
BENCH_SCAN=0
CHAOS=0
for arg in "$@"; do
  if [[ "$arg" == "--asan" ]]; then
    ASAN=1
    BUILD_DIR=build-asan
    CMAKE_ARGS+=(
      -DCMAKE_BUILD_TYPE=RelWithDebInfo
      "-DCMAKE_CXX_FLAGS=-fsanitize=address,undefined -fno-sanitize-recover=all"
    )
  elif [[ "$arg" == "--bench-sharding" ]]; then
    BENCH_SHARDING=1
  elif [[ "$arg" == "--bench-interning" ]]; then
    BENCH_INTERNING=1
  elif [[ "$arg" == "--bench-faults" ]]; then
    BENCH_FAULTS=1
  elif [[ "$arg" == "--bench-lexer" ]]; then
    BENCH_LEXER=1
  elif [[ "$arg" == "--bench-incremental" ]]; then
    BENCH_INCREMENTAL=1
  elif [[ "$arg" == "--bench-scan" ]]; then
    BENCH_SCAN=1
  elif [[ "$arg" == "--chaos" ]]; then
    CHAOS=1
  else
    CTEST_ARGS+=("$arg")
  fi
done

cmake -B "$BUILD_DIR" -S . ${CMAKE_ARGS[@]+"${CMAKE_ARGS[@]}"}
cmake --build "$BUILD_DIR" -j"$(nproc)"
cd "$BUILD_DIR"
ctest --output-on-failure -j"$(nproc)" ${CTEST_ARGS[@]+"${CTEST_ARGS[@]}"}

if [[ "$ASAN" == "1" ]]; then
  echo "== traced pipeline under sanitizers =="
  ./examples/diffcode_cli pipeline ../tests/data/smoke_corpus \
    --metrics --trace-out=trace_asan.json > /dev/null
  echo "== supervised traced pipeline under sanitizers =="
  # The cross-process telemetry path (worker observers, Telemetry frames,
  # coordinator stitch/merge) under the sanitizers.
  ./examples/diffcode_cli pipeline ../tests/data/smoke_corpus \
    --workers 2 --metrics --trace-out=trace_asan_supervised.json > /dev/null
  echo "== supervised execution differential under sanitizers =="
  ./tests/test_supervised_exec
  echo "== lexer fuzz suite under sanitizers =="
  ./tests/test_lexer_fuzz
  echo "== service round-trip under sanitizers =="
  # One full serve/connect cycle over a UNIX socket: ingest the smoke
  # corpus, query, snapshot, shut down. `wait` surfaces the daemon's
  # exit code, so a sanitizer report on either side fails the sweep.
  SOCK="${TMPDIR:-/tmp}/diffcoded_asan_$$.sock"
  rm -f "$SOCK"
  # --metrics so the live-introspection path (StatsReq) runs too: the
  # `--query metrics` round-trip below must return the daemon's summary.
  ./examples/diffcoded "$SOCK" --threads 2 --metrics &
  SERVE_PID=$!
  for _ in $(seq 1 100); do [[ -S "$SOCK" ]] && break; sleep 0.1; done
  ./examples/diffcode_cli connect "$SOCK" \
    --ingest ../tests/data/smoke_corpus \
    --query health --query stats --query metrics --snapshot --shutdown \
    > /dev/null
  wait "$SERVE_PID"
  rm -f "$SOCK"
  echo "== rule scan under sanitizers =="
  # One refined scan through the streaming pipeline (parse, digest,
  # refinement, reorder buffer, report writer) so the scan layer gets a
  # sanitized pass too. The smoke file violates R5/R7 by design, so the
  # expected exit code under --fail-on-violation is 1.
  SCAN_RC=0
  ./examples/diffcode_cli scan --json --refine --fail-on-violation \
    ../tests/data/smoke_corpus/projA/commits/c0001/new.java > /dev/null \
    || SCAN_RC=$?
  if [[ "$SCAN_RC" != "1" ]]; then
    echo "scan --fail-on-violation exited $SCAN_RC, expected 1" >&2
    exit 1
  fi
else
  echo "== observability overhead guard (bench/micro_pipeline) =="
  ./bench/micro_pipeline --verify-overhead
fi

if [[ "$BENCH_SHARDING" == "1" ]]; then
  echo "== sharded clustering sweep (bench/micro_sharding) =="
  ./bench/micro_sharding 10000 42 BENCH_sharding.json
fi

if [[ "$BENCH_INTERNING" == "1" ]]; then
  echo "== interned data model sweep (bench/micro_interning) =="
  ./bench/micro_interning 10000 42 BENCH_interning.json
fi

if [[ "$BENCH_FAULTS" == "1" ]]; then
  echo "== fault-campaign sweep (bench/micro_faults) =="
  ./bench/micro_faults 120 42 BENCH_faults.json
fi

if [[ "$BENCH_LEXER" == "1" ]]; then
  echo "== front-end scanner sweep (bench/micro_lexer) =="
  ./bench/micro_lexer 120 42 BENCH_lexer.json
fi

if [[ "$BENCH_INCREMENTAL" == "1" ]]; then
  echo "== service incremental-append guard (bench/micro_incremental) =="
  ./bench/micro_incremental 10000 42 BENCH_incremental.json
fi

if [[ "$BENCH_SCAN" == "1" ]]; then
  echo "== streaming rule scanner guard (bench/micro_scan) =="
  ./bench/micro_scan 600 42 BENCH_scan.json
fi

if [[ "$CHAOS" == "1" ]]; then
  echo "== seeded chaos campaign (ctest -L chaos) =="
  ctest --output-on-failure -j"$(nproc)" -L chaos
  echo "== supervision throughput guard (bench/micro_supervision) =="
  ./bench/micro_supervision 32 42 BENCH_supervision.json
  echo "== stitched supervised trace validation =="
  # Two supervised traced runs at different worker counts: both traces
  # must be schema-valid with worker lanes present, and the per-change
  # span count must not depend on how units were scheduled.
  for W in 2 4; do
    ./examples/diffcode_cli pipeline ../tests/data/smoke_corpus \
      --workers "$W" --metrics --trace-out="trace_chaos_w$W.json" > /dev/null
    grep -q '"traceEvents":\[' "trace_chaos_w$W.json"
    grep -q '"ph":"X"' "trace_chaos_w$W.json"
    PIDS=$(grep -o '"pid":[0-9]*' "trace_chaos_w$W.json" | sort -u | wc -l)
    if [[ "$PIDS" -lt 2 ]]; then
      echo "trace_chaos_w$W.json: expected >=2 pid lanes, got $PIDS" >&2
      exit 1
    fi
  done
  SPANS2=$(grep -o '"name":"processChange"' trace_chaos_w2.json | wc -l)
  SPANS4=$(grep -o '"name":"processChange"' trace_chaos_w4.json | wc -l)
  if [[ "$SPANS2" != "$SPANS4" || "$SPANS2" == "0" ]]; then
    echo "span-count invariance violated: $SPANS2 (2 workers) vs $SPANS4 (4 workers)" >&2
    exit 1
  fi
  echo "stitched traces OK: $SPANS2 per-change spans on both worker counts"
fi
