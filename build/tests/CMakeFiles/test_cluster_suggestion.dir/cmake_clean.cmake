file(REMOVE_RECURSE
  "CMakeFiles/test_cluster_suggestion.dir/test_cluster_suggestion.cpp.o"
  "CMakeFiles/test_cluster_suggestion.dir/test_cluster_suggestion.cpp.o.d"
  "test_cluster_suggestion"
  "test_cluster_suggestion.pdb"
  "test_cluster_suggestion[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cluster_suggestion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
