//===- tests/test_sharded_clustering.cpp - Shard-and-merge engine tests ----===//
//
// The sharded clustering engine (cluster/ShardedClustering.h) carries
// three contracts:
//
//   1. partitionIntoShards is a deterministic partition — disjoint,
//      covering, cap-respecting, canonically ordered;
//   2. a single shard (MaxShardSize == 0, or a cap the corpus fits
//      under) is byte-identical to the dense engine;
//   3. genuinely sharded runs are deterministic at any thread count,
//      structurally sound (every leaf once, monotone heights), and
//      agree with the dense engine's flat clusters at the default cut
//      within the bound documented in DESIGN.md.
//
//===----------------------------------------------------------------------===//

#include "cluster/ShardedClustering.h"

#include "cluster/DistanceCache.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

using namespace diffcode;
using namespace diffcode::analysis;
using namespace diffcode::cluster;
using namespace diffcode::usage;

namespace {

support::Interner &table() {
  static support::Interner Table;
  return Table;
}

/// Random feature path over a small crypto vocabulary (same shape as the
/// differential harness in test_clustering_equivalence.cpp), so shard
/// keys collide realistically and tied distances are common.
FeaturePath randomPath(Rng &R) {
  static const char *Roots[] = {"Cipher", "MessageDigest", "SecureRandom"};
  static const char *Methods[] = {"Cipher.getInstance/1", "Cipher.init/3",
                                  "Cipher.doFinal/1",
                                  "MessageDigest.getInstance/1",
                                  "SecureRandom.setSeed/1"};
  static const char *Strings[] = {"AES", "AES/CBC/PKCS5Padding",
                                  "AES/GCM/NoPadding", "DES", "SHA-1",
                                  "SHA-256"};
  FeaturePath Path = {NodeLabel::root(Roots[R.index(3)])};
  Path.push_back(NodeLabel::method(Methods[R.index(5)]));
  if (R.chance(0.7)) {
    unsigned Index = static_cast<unsigned>(R.range(1, 3));
    if (R.chance(0.6))
      Path.push_back(
          NodeLabel::arg(Index, AbstractValue::strConst(Strings[R.index(6)])));
    else
      Path.push_back(NodeLabel::arg(Index, AbstractValue::byteArrayTop()));
  }
  return Path;
}

std::vector<UsageChange> randomCorpus(unsigned Seed, std::size_t Size) {
  Rng R(Seed * 7919u + 31);
  std::vector<UsageChange> Changes;
  Changes.reserve(Size);
  for (std::size_t C = 0; C < Size; ++C) {
    std::vector<FeaturePath> Removed, Added;
    for (std::size_t I = 0, N = R.range(0, 3); I < N; ++I)
      Removed.push_back(randomPath(R));
    for (std::size_t I = 0, N = R.range(0, 3); I < N; ++I)
      Added.push_back(randomPath(R));
    Changes.push_back(UsageChange::intern(table(), "Cipher", Removed, Added));
  }
  return Changes;
}

/// Render a shard key back to the method-name tuple it abstracts, for
/// readable assertions.
std::vector<std::string> keyTexts(const std::vector<support::LabelId> &Key) {
  std::vector<std::string> Out;
  for (support::LabelId Id : Key)
    Out.push_back(table().labelAt(Id).Text);
  return Out;
}

void expectIdenticalTrees(const Dendrogram &A, const Dendrogram &B) {
  ASSERT_EQ(A.leafCount(), B.leafCount());
  ASSERT_EQ(A.nodes().size(), B.nodes().size());
  EXPECT_EQ(A.root(), B.root());
  for (std::size_t I = 0; I < A.nodes().size(); ++I) {
    const Dendrogram::Node &X = A.nodes()[I];
    const Dendrogram::Node &Y = B.nodes()[I];
    EXPECT_EQ(X.Left, Y.Left) << "node " << I;
    EXPECT_EQ(X.Right, Y.Right) << "node " << I;
    EXPECT_EQ(X.Item, Y.Item) << "node " << I;
    EXPECT_EQ(X.Height, Y.Height) << "node " << I; // exact, not approximate
  }
}

/// Fraction of item pairs on which two flat clusterings agree about
/// co-assignment (Rand index).
double pairAgreement(const std::vector<std::vector<std::size_t>> &A,
                     const std::vector<std::vector<std::size_t>> &B,
                     std::size_t N) {
  std::vector<std::size_t> LabelA(N), LabelB(N);
  for (std::size_t C = 0; C < A.size(); ++C)
    for (std::size_t Item : A[C])
      LabelA[Item] = C;
  for (std::size_t C = 0; C < B.size(); ++C)
    for (std::size_t Item : B[C])
      LabelB[Item] = C;
  std::size_t Agree = 0, Pairs = 0;
  for (std::size_t I = 0; I < N; ++I)
    for (std::size_t J = I + 1; J < N; ++J) {
      ++Pairs;
      Agree += (LabelA[I] == LabelA[J]) == (LabelB[I] == LabelB[J]);
    }
  return Pairs == 0 ? 1.0 : static_cast<double>(Agree) / Pairs;
}

ClusteringOptions shardedOpts(std::size_t MaxShardSize, unsigned Threads) {
  ClusteringOptions Opts;
  Opts.Sharding.Enabled = true;
  Opts.Sharding.MaxShardSize = MaxShardSize;
  Opts.Sharding.Threads = Threads;
  return Opts;
}

} // namespace

//===----------------------------------------------------------------------===//
// Shard keys
//===----------------------------------------------------------------------===//

TEST(ShardKey, FirstRemovedPathMethodLabels) {
  UsageChange Change = UsageChange::intern(
      table(), "Cipher",
      {{NodeLabel::root("Cipher"), NodeLabel::method("Cipher.getInstance/1"),
        NodeLabel::method("Cipher.init/3")},
       {NodeLabel::root("Cipher"), NodeLabel::method("Cipher.doFinal/1")}},
      {});
  // NodeLabel::method stores the bare name (arity split off), so the
  // canopy key is over method names — now as interned label ids.
  EXPECT_EQ(keyTexts(shardKey(Change, 1)),
            std::vector<std::string>{"Cipher.getInstance"});
  EXPECT_EQ(keyTexts(shardKey(Change, 2)),
            (std::vector<std::string>{"Cipher.getInstance", "Cipher.init"}));
  // Depth beyond the available labels just stops early.
  EXPECT_EQ(shardKey(Change, 8), shardKey(Change, 2));
}

TEST(ShardKey, FallsBackToAddedThenEmpty) {
  UsageChange AddedOnly = UsageChange::intern(
      table(), "Cipher", {},
      {{NodeLabel::root("Cipher"), NodeLabel::method("Cipher.init/3")}});
  EXPECT_EQ(keyTexts(shardKey(AddedOnly, 1)),
            std::vector<std::string>{"Cipher.init"});

  UsageChange Empty = UsageChange::intern(table(), "Cipher", {}, {});
  EXPECT_TRUE(shardKey(Empty, 1).empty());
  EXPECT_TRUE(shardKey(AddedOnly, 0).empty());
}

//===----------------------------------------------------------------------===//
// Partitioning
//===----------------------------------------------------------------------===//

class ShardPartition : public ::testing::TestWithParam<int> {};

TEST_P(ShardPartition, IsADisjointCoveringCappedPartition) {
  unsigned Seed = static_cast<unsigned>(GetParam());
  std::size_t Size = 40 + (Seed * 67) % 200;
  std::vector<UsageChange> Changes = randomCorpus(Seed, Size);

  ShardingOptions Opts;
  Opts.MaxShardSize = 16 + (Seed % 4) * 16;
  std::vector<std::vector<std::size_t>> Shards =
      partitionIntoShards(Changes, Opts);

  std::vector<bool> Seen(Size, false);
  std::size_t PrevFront = 0;
  for (std::size_t S = 0; S < Shards.size(); ++S) {
    const std::vector<std::size_t> &Shard = Shards[S];
    ASSERT_FALSE(Shard.empty());
    EXPECT_LE(Shard.size(), Opts.MaxShardSize);
    EXPECT_TRUE(std::is_sorted(Shard.begin(), Shard.end()));
    if (S > 0)
      EXPECT_GT(Shard.front(), PrevFront); // min-item shard order
    PrevFront = Shard.front();
    for (std::size_t Item : Shard) {
      ASSERT_LT(Item, Size);
      EXPECT_FALSE(Seen[Item]) << "item " << Item << " in two shards";
      Seen[Item] = true;
    }
  }
  EXPECT_TRUE(std::all_of(Seen.begin(), Seen.end(), [](bool B) { return B; }));
}

INSTANTIATE_TEST_SUITE_P(Seeds, ShardPartition, ::testing::Range(0, 6));

TEST(ShardPartition, UnlimitedCapYieldsOneShard) {
  std::vector<UsageChange> Changes = randomCorpus(3, 60);
  ShardingOptions Opts;
  Opts.MaxShardSize = 0;
  std::vector<std::vector<std::size_t>> Shards =
      partitionIntoShards(Changes, Opts);
  ASSERT_EQ(Shards.size(), 1u);
  EXPECT_EQ(Shards[0].size(), 60u);
  for (std::size_t I = 0; I < 60; ++I)
    EXPECT_EQ(Shards[0][I], I);
}

TEST(ShardPartition, EmptyCorpus) {
  EXPECT_TRUE(partitionIntoShards({}, ShardingOptions()).empty());
}

//===----------------------------------------------------------------------===//
// Single shard == dense engine, byte for byte
//===----------------------------------------------------------------------===//

TEST(ShardedClustering, UnlimitedShardSizeIsByteIdentical) {
  for (unsigned Seed : {0u, 1u, 2u}) {
    std::vector<UsageChange> Changes = randomCorpus(Seed, 80 + Seed * 40);
    Dendrogram Dense = clusterUsageChanges(Changes);
    ShardingStats Stats;
    Dendrogram Sharded = clusterUsageChangesSharded(
        Changes, shardedOpts(/*MaxShardSize=*/0, /*Threads=*/4), &Stats);
    expectIdenticalTrees(Dense, Sharded);
    EXPECT_EQ(Stats.NumShards, 1u);
    EXPECT_EQ(Stats.LargestShard, Changes.size());
  }
}

TEST(ShardedClustering, CapAboveCorpusSizeIsByteIdentical) {
  std::vector<UsageChange> Changes = randomCorpus(5, 100);
  Dendrogram Dense = clusterUsageChanges(Changes);
  Dendrogram Sharded = clusterUsageChangesSharded(
      Changes, shardedOpts(/*MaxShardSize=*/4096, /*Threads=*/2));
  expectIdenticalTrees(Dense, Sharded);
}

TEST(ShardedClustering, DisabledSwitchDispatchesToDenseEngine) {
  std::vector<UsageChange> Changes = randomCorpus(7, 64);
  ClusteringOptions Plain;  // Sharding.Enabled defaults to false
  ClusteringOptions Armed = shardedOpts(/*MaxShardSize=*/16, /*Threads=*/2);
  // clusterUsageChanges dispatches on the switch: armed differs in
  // engine, disabled is the dense path regardless of the other knobs.
  ClusteringOptions DisarmedKnobs = Armed;
  DisarmedKnobs.Sharding.Enabled = false;
  expectIdenticalTrees(clusterUsageChanges(Changes, Plain),
                       clusterUsageChanges(Changes, DisarmedKnobs));
}

//===----------------------------------------------------------------------===//
// Sharded runs: determinism and structural soundness
//===----------------------------------------------------------------------===//

TEST(ShardedClustering, DeterministicAcrossThreadCounts) {
  std::vector<UsageChange> Changes = randomCorpus(11, 180);
  ShardingStats S1;
  Dendrogram T1 = clusterUsageChangesSharded(
      Changes, shardedOpts(/*MaxShardSize=*/24, /*Threads=*/1), &S1);
  EXPECT_GT(S1.NumShards, 1u) << "corpus too small to exercise sharding";
  for (unsigned Threads : {2u, 8u}) {
    ShardingStats SN;
    Dendrogram TN = clusterUsageChangesSharded(
        Changes, shardedOpts(/*MaxShardSize=*/24, Threads), &SN);
    expectIdenticalTrees(T1, TN);
    EXPECT_EQ(S1.NumShards, SN.NumShards);
    EXPECT_EQ(S1.Representatives, SN.Representatives);
  }
}

TEST(ShardedClustering, EveryLeafOnceAndHeightsMonotone) {
  std::vector<UsageChange> Changes = randomCorpus(13, 150);
  Dendrogram Tree = clusterUsageChangesSharded(
      Changes, shardedOpts(/*MaxShardSize=*/20, /*Threads=*/4));
  ASSERT_EQ(Tree.leafCount(), Changes.size());
  ASSERT_EQ(Tree.nodes().size(), 2 * Changes.size() - 1);

  // Parents never sit below their children (heights clamp at the merge).
  for (const Dendrogram::Node &Node : Tree.nodes()) {
    if (Node.isLeaf())
      continue;
    EXPECT_GE(Node.Height, Tree.nodes()[Node.Left].Height);
    EXPECT_GE(Node.Height, Tree.nodes()[Node.Right].Height);
  }

  // The root's single flat cluster covers every item exactly once.
  std::vector<std::vector<std::size_t>> All = Tree.cut(1.0);
  std::set<std::size_t> Items;
  std::size_t Total = 0;
  for (const std::vector<std::size_t> &Cluster : All) {
    Total += Cluster.size();
    Items.insert(Cluster.begin(), Cluster.end());
  }
  EXPECT_EQ(Total, Changes.size());
  EXPECT_EQ(Items.size(), Changes.size());
}

TEST(ShardedClustering, StatsReportShardsAndPeakMemory) {
  std::vector<UsageChange> Changes = randomCorpus(17, 160);
  ShardingStats Stats;
  clusterUsageChangesSharded(Changes,
                             shardedOpts(/*MaxShardSize=*/16, /*Threads=*/2),
                             &Stats);
  EXPECT_GT(Stats.NumShards, 1u);
  EXPECT_LE(Stats.LargestShard, 16u);
  EXPECT_GT(Stats.Representatives, 0u);
  EXPECT_GT(Stats.PeakMatrixBytes, 0u);
  // The whole point: far below the dense n^2 matrix.
  EXPECT_LT(Stats.PeakMatrixBytes,
            Changes.size() * Changes.size() * sizeof(double));
}

//===----------------------------------------------------------------------===//
// Merge quality: flat clusters at the pipeline cut vs the dense engine
//===----------------------------------------------------------------------===//

class ShardedVsDense : public ::testing::TestWithParam<int> {};

TEST_P(ShardedVsDense, PairAgreementAtDefaultCut) {
  unsigned Seed = static_cast<unsigned>(GetParam());
  std::size_t Size = 120 + (Seed * 97) % 120;
  std::vector<UsageChange> Changes = randomCorpus(Seed, Size);

  Dendrogram Dense = clusterUsageChanges(Changes);
  Dendrogram Sharded = clusterUsageChangesSharded(
      Changes, shardedOpts(/*MaxShardSize=*/32, /*Threads=*/4));

  double Agreement =
      pairAgreement(Dense.cut(0.4), Sharded.cut(0.4), Changes.size());
  // DESIGN.md "Sharding and the stage API" documents the 0.9 bound:
  // within-shard structure is exact and cross-shard linkage is a lower
  // bound, so disagreement is confined to clusters the key split apart.
  EXPECT_GE(Agreement, 0.9) << "seed " << Seed << " size " << Size;
}

INSTANTIATE_TEST_SUITE_P(Seeds, ShardedVsDense, ::testing::Range(0, 5));
