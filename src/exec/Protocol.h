//===- exec/Protocol.h - Coordinator/worker message codecs -----------------===//
//
// Part of the DiffCode project, a reproduction of "Inferring Crypto API
// Rules from Code Changes" (PLDI'18).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The message layer on top of exec/Wire.h framing: what the coordinator
/// and its worker subprocesses actually say to each other.
///
/// Coordinator -> worker:
///   Work      one unit: (unit id, attempt, global change indices)
///   Shutdown  drain and _exit(0)
///
/// Worker -> coordinator:
///   Hello     startup handshake (protocol version, trace epoch)
///   LabelDef  one newly interned NodeLabel (worker-local id order)
///   PathDef   one newly interned path (worker-local label ids)
///   Result    one ChangeRecord (worker-local path ids)
///   Telemetry completed spans + cumulative metrics snapshot (observed
///             workers only; coalesced with the per-unit writes)
///   UnitDone  unit complete (unit id)
///
/// The interned data model does not ship id values across processes —
/// ids are assignment-order dependent and never comparable across
/// interners — with one fork()-shaped exception: a forked worker
/// inherits the parent interner via copy-on-write, so every id below
/// the table's fork-time high-water mark ("the base") means exactly the
/// same thing in both processes. Hello carries the worker's base
/// (label count, path count); the worker interns on top of its
/// inherited copy and streams *definitions* only for entries above the
/// base (dense, in id order, labels before the paths that reference
/// them, defs before the results that reference them). The coordinator
/// keeps a per-worker IdRemap — identity below the base, worker-local
/// id -> parent-interner id above it — rebuilt on every respawn (a
/// respawned worker forks from the current, larger table, so its base
/// moves up and it streams even less). A base of zero degrades to full
/// def streaming, which is what a future exec()-spawned worker with no
/// shared ancestry would use. Results decoded through the remap are
/// structurally identical to in-process records, which is what keeps
/// supervised reports byte-identical.
///
/// Every decoder is defensive: unknown ids, out-of-order defs, trailing
/// payload bytes, or truncation all return false and the supervisor
/// treats the worker as poisoned (kill, restart, retry the unit).
///
//===----------------------------------------------------------------------===//

#ifndef DIFFCODE_EXEC_PROTOCOL_H
#define DIFFCODE_EXEC_PROTOCOL_H

#include "core/DiffCode.h"
#include "exec/Wire.h"
#include "obs/Metrics.h"
#include "obs/Trace.h"
#include "support/Interner.h"

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace diffcode {
namespace exec {

/// Protocol frame types (Wire frame header's `type` field).
enum class FrameType : std::uint32_t {
  Hello = 1,
  Work = 2,
  Shutdown = 3,
  LabelDef = 4,
  PathDef = 5,
  Result = 6,
  UnitDone = 7,
  Telemetry = 8,
};

/// Bumped whenever any payload layout changes; Hello carries it and the
/// coordinator refuses a mismatched worker (impossible with fork(), but
/// cheap insurance against a future exec()-based spawn path).
/// v2: Hello gained the worker's inherited interner base counts.
/// v3: Hello gained the worker's trace epoch; Telemetry frame added.
inline constexpr std::uint32_t ProtocolVersion = 3;

/// Distinguished exit code a worker takes when it cannot allocate
/// (set_new_handler under RLIMIT_AS, or the ProcOomExit chaos site).
/// The supervisor maps it to ChangeStatus::WorkerOom.
inline constexpr int OomExitCode = 86;

/// One dispatched batch of changes, identified by global indices into
/// PipelineRequest::Changes. Attempt counts singleton retries (bisected
/// halves restart at 0 — they are new units with a fresh identity).
struct WorkUnit {
  std::uint64_t Id = 0;
  std::uint32_t Attempt = 0;
  std::vector<std::uint64_t> Indices;
};

/// Hello carries the protocol version plus the worker's interner base:
/// the label/path counts of the table it inherited at fork time. Ids
/// below the base need no defs — they are the parent's own ids.
/// TraceEpochNs is the worker tracer's epoch as absolute CLOCK_MONOTONIC
/// nanoseconds (obs::Tracer::epochSteadyNs), 0 when the worker runs
/// unobserved; the coordinator subtracts its own epoch to get the
/// per-incarnation offset that aligns Telemetry span timestamps into
/// the coordinator's timeline.
std::string encodeHello(std::uint32_t BaseLabels, std::uint32_t BasePaths,
                        std::uint64_t TraceEpochNs);
bool decodeHello(std::string_view Payload, std::uint32_t &BaseLabels,
                 std::uint32_t &BasePaths, std::uint64_t &TraceEpochNs);

std::string encodeWork(const WorkUnit &Unit);
bool decodeWork(std::string_view Payload, WorkUnit &Out);

std::string encodeUnitDone(std::uint64_t UnitId);
bool decodeUnitDone(std::string_view Payload, std::uint64_t &UnitId);

/// One completed worker span as shipped over the wire. StartNs is in
/// the *worker* tracer's timeline; the coordinator applies the Hello
/// epoch offset before ingesting. Tid is the worker's own small lane
/// id (lanes are per-pid in trace_event, so no remapping is needed).
struct TelemetrySpan {
  std::string Name;
  std::uint64_t StartNs = 0;
  std::uint64_t DurNs = 0;
  std::uint32_t Tid = 0;
};

/// Decoded Telemetry frame: the spans completed since the worker's
/// previous telemetry flush (delta) plus the worker registry's full
/// snapshot at send time (cumulative — the coordinator keeps only the
/// latest per incarnation and merges at the end of the run).
struct TelemetryFrame {
  std::uint32_t Incarnation = 0;
  std::vector<TelemetrySpan> Spans;
  obs::Snapshot Metrics;

  /// Stale-incarnation guard: frames are stamped with the incarnation
  /// the worker was spawned as; anything else is dropped, never merged.
  bool staleFor(std::uint32_t CurrentIncarnation) const {
    return Incarnation != CurrentIncarnation;
  }
};

/// Serializes one telemetry flush. \p Spans come straight from the
/// worker tracer (obs::Tracer::eventsFrom); the Pid field is not
/// carried — the coordinator stamps the pid it forked.
std::string encodeTelemetry(std::uint32_t Incarnation,
                            const std::vector<obs::Tracer::Event> &Spans,
                            const obs::Snapshot &Metrics);

/// Appends the Telemetry frame to \p Out, reusing \p Scratch — the
/// worker's coalesced per-unit write path (rides the same writev as the
/// unit's Results and UnitDone, so the clean path costs no extra
/// syscall).
void appendTelemetry(std::string &Out, WireWriter &Scratch,
                     std::uint32_t Incarnation,
                     const std::vector<obs::Tracer::Event> &Spans,
                     const obs::Snapshot &Metrics);

/// Decodes one Telemetry payload. Defensive like every other decoder:
/// truncation, trailing bytes, out-of-range kind/unit/stability bytes,
/// non-ascending metric names, or out-of-range/non-ascending histogram
/// bucket indices all return false (the supervisor poisons the worker).
bool decodeTelemetry(std::string_view Payload, TelemetryFrame &Out);

/// Worker side: incremental interner-definition streaming. The worker's
/// interner is append-only and single-threaded, so everything past the
/// last flushed high-water mark is new; one flush() appends a LabelDef
/// frame per new label then a PathDef frame per new path (in that order
/// — paths only reference already-interned labels). Construction
/// records the current counts as the base: everything already in the
/// table (the fork-inherited state) is never streamed. Construct
/// against an empty interner to stream everything.
class DefSender {
public:
  explicit DefSender(const support::Interner &Table)
      : Table(Table), LabelsSent(Table.labelCount()),
        PathsSent(Table.pathCount()), BaseLabels(LabelsSent),
        BasePaths(PathsSent) {}

  /// The construction-time counts — what Hello advertises.
  std::uint32_t baseLabels() const {
    return static_cast<std::uint32_t>(BaseLabels);
  }
  std::uint32_t basePaths() const {
    return static_cast<std::uint32_t>(BasePaths);
  }

  /// Appends encoded def frames for everything interned since the last
  /// flush to \p Out.
  void flush(std::string &Out);

private:
  const support::Interner &Table;
  std::size_t LabelsSent = 0;
  std::size_t PathsSent = 0;
  std::size_t BaseLabels = 0;
  std::size_t BasePaths = 0;
};

/// Coordinator side: one worker incarnation's id translation table.
/// Worker ids below the Hello-advertised base are the parent's own ids
/// (fork-inherited, identity mapping); defs above the base arrive dense
/// and in order, so the rest is a plain vector: Labels[workerLabelId -
/// BaseLabels] is the parent-interner id. Default-constructed (base 0)
/// it is the full-streaming remap the pre-fork-aware protocol used.
struct IdRemap {
  std::uint32_t BaseLabels = 0;
  std::uint32_t BasePaths = 0;
  std::vector<support::LabelId> Labels;
  std::vector<support::PathId> Paths;

  /// Decodes one LabelDef / PathDef payload and extends the table,
  /// interning into \p Table. False on any protocol violation
  /// (non-dense id, unknown label reference, malformed payload).
  bool applyLabelDef(std::string_view Payload, support::Interner &Table);
  bool applyPathDef(std::string_view Payload, support::Interner &Table);

  /// Resolves a worker-local label/path id to a parent id; false when
  /// the id is neither inherited nor defined.
  bool mapLabel(std::uint32_t Local, support::LabelId &Out) const {
    if (Local < BaseLabels) {
      Out = Local;
      return true;
    }
    if (Local - BaseLabels >= Labels.size())
      return false;
    Out = Labels[Local - BaseLabels];
    return true;
  }
  bool mapPath(std::uint32_t Local, support::PathId &Out) const {
    if (Local < BasePaths) {
      Out = Local;
      return true;
    }
    if (Local - BasePaths >= Paths.size())
      return false;
    Out = Paths[Local - BasePaths];
    return true;
  }
};

/// Serializes one ChangeRecord with worker-local path ids (the worker's
/// DefSender has already streamed the defs they resolve through).
/// WallNanos is deliberately not carried: it is PerRun — never part of
/// the byte-compared report surface. Observed workers ship their wall
/// times through the Telemetry frame instead, keeping Result payloads
/// identical whether or not observability is on.
std::string encodeResult(std::uint64_t ChangeIndex,
                         const core::ChangeRecord &Record);

/// Appends the Result frame to \p Out, reusing \p Scratch for the
/// payload — the worker's per-change encode path (one call per change;
/// the temporaries encodeResult allocates would be pure churn there).
void appendResult(std::string &Out, WireWriter &Scratch,
                  std::uint64_t ChangeIndex, const core::ChangeRecord &Record);

/// Decodes one Result payload, remapping worker path ids through
/// \p Remap into \p Table and stamping UsageChange::Table. False on any
/// malformed or unresolvable payload.
bool decodeResult(std::string_view Payload, const IdRemap &Remap,
                  support::Interner &Table, std::uint64_t &ChangeIndex,
                  core::ChangeRecord &Out);

} // namespace exec
} // namespace diffcode

#endif // DIFFCODE_EXEC_PROTOCOL_H
