file(REMOVE_RECURSE
  "CMakeFiles/diffcode_core.dir/DiffCode.cpp.o"
  "CMakeFiles/diffcode_core.dir/DiffCode.cpp.o.d"
  "CMakeFiles/diffcode_core.dir/Filters.cpp.o"
  "CMakeFiles/diffcode_core.dir/Filters.cpp.o.d"
  "CMakeFiles/diffcode_core.dir/ReportWriter.cpp.o"
  "CMakeFiles/diffcode_core.dir/ReportWriter.cpp.o.d"
  "libdiffcode_core.a"
  "libdiffcode_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/diffcode_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
