# Empty dependencies file for test_apimodel.
# This may be replaced when dependencies are built.
