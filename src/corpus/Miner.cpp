//===- corpus/Miner.cpp ----------------------------------------------------===//

#include "corpus/Miner.h"

using namespace diffcode;
using namespace diffcode::corpus;

Miner::Miner(const apimodel::CryptoApiModel &Api, MinerOptions Opts)
    : Api(Api), Opts(Opts) {}

bool Miner::touchesTargetClass(const CodeChange &Change) const {
  for (const std::string &Target : Api.targetClasses())
    if (Change.OldCode.find(Target) != std::string::npos ||
        Change.NewCode.find(Target) != std::string::npos)
      return true;
  return false;
}

std::vector<const CodeChange *> Miner::mineProject(const Project &P) const {
  std::vector<const CodeChange *> Out;
  if (P.History.size() < Opts.MinCommitsPerProject)
    return Out;
  for (const CodeChange &Change : P.History)
    if (touchesTargetClass(Change))
      Out.push_back(&Change);
  return Out;
}

std::vector<const CodeChange *> Miner::mine(const Corpus &C) const {
  std::vector<const CodeChange *> Out;
  for (const Project &P : C.Projects) {
    std::vector<const CodeChange *> Mined = mineProject(P);
    Out.insert(Out.end(), Mined.begin(), Mined.end());
  }
  return Out;
}
