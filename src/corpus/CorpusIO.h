//===- corpus/CorpusIO.h - Corpus persistence ------------------------------===//
//
// Part of the DiffCode project, a reproduction of "Inferring Crypto API
// Rules from Code Changes" (PLDI'18).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reads and writes corpora as plain directory trees, so the pipeline can
/// run over *real* mined histories (exported from git) as easily as over
/// generated ones. Layout:
///
///   <root>/<project>/project.meta          key=value metadata
///   <root>/<project>/head/<File.java>      HEAD state
///   <root>/<project>/commits/c<NNNN>/      one directory per commit
///       kind.txt                           ground-truth kind (optional)
///       file.txt                           changed file name
///       old.java / new.java                the two versions
///
/// Exporting a git history into this layout is a one-liner per commit:
///   git show <rev>^:<path> > old.java ; git show <rev>:<path> > new.java
///
//===----------------------------------------------------------------------===//

#ifndef DIFFCODE_CORPUS_CORPUSIO_H
#define DIFFCODE_CORPUS_CORPUSIO_H

#include "corpus/RepoModel.h"

#include <optional>
#include <string>

namespace diffcode {
namespace corpus {

/// Writes \p C under \p RootDir (created if missing). Returns false and
/// sets \p Error on I/O failure.
bool writeCorpus(const Corpus &C, const std::string &RootDir,
                 std::string *Error = nullptr);

/// Loads a corpus from \p RootDir; nullopt (with \p Error) on failure.
/// Unknown files are ignored; missing optional pieces default sensibly.
std::optional<Corpus> readCorpus(const std::string &RootDir,
                                 std::string *Error = nullptr);

} // namespace corpus
} // namespace diffcode

#endif // DIFFCODE_CORPUS_CORPUSIO_H
