//===- analysis/AbstractInterpreter.cpp ------------------------------------===//

#include "analysis/AbstractInterpreter.h"

#include "javaast/AstVisitor.h"
#include "support/Casting.h"
#include "support/FaultInjection.h"

#include <algorithm>
#include <cassert>
#include <cerrno>
#include <cstdlib>
#include <optional>
#include <set>
#include <unordered_map>
#include <unordered_set>

using namespace diffcode;
using namespace diffcode::analysis;
using namespace diffcode::java;

UsageLog AnalysisResult::mergedLog() const {
  UsageLog Merged;
  for (const UsageLog &Log : Executions)
    for (const auto &[ObjId, Events] : Log)
      for (const UsageEvent &Event : Events) {
        std::vector<UsageEvent> &Dest = Merged[ObjId];
        if (std::find(Dest.begin(), Dest.end(), Event) == Dest.end())
          Dest.push_back(Event);
      }
  return Merged;
}

namespace {

using BaseAbstraction = AnalysisOptions::BaseAbstraction;

/// Mutable state of one abstract execution path.
struct ExecState {
  std::unordered_map<std::string, AbstractValue> Locals;
  /// Declared types of locals, so later assignments coerce into the
  /// declared domain (e.g. `byte[] b; b = unknown()` must become Tbyte[]).
  std::unordered_map<std::string, java::TypeRef> LocalTypes;
  std::map<std::pair<unsigned, std::string>, AbstractValue> Fields;
  std::unordered_map<std::string, AbstractValue> Statics;
  UsageLog Log;
  bool Returned = false;
  AbstractValue RetValue;
};

/// Call context for one method being interpreted.
struct Frame {
  const ClassDecl *CurrentClass = nullptr;
  AbstractValue ThisVal; ///< Object value, or Null inside static code.
  unsigned Depth = 0;
  std::vector<const MethodDecl *> CallStack;
};

/// The actual interpreter engine (one per analyze() call).
class Engine {
public:
  Engine(const apimodel::CryptoApiModel &Api, const AnalysisOptions &Opts)
      : Api(Api), Opts(Opts) {}

  AnalysisResult run(const CompilationUnit *Unit);

private:
  // --- program indexing --------------------------------------------------
  void indexClasses(const ClassDecl *Class);
  void collectCallTargets(const AstNode *Node);
  std::vector<std::pair<const ClassDecl *, const MethodDecl *>>
  findEntryMethods() const;

  const ClassDecl *lookupProgramClass(const std::string &Name) const {
    auto It = ProgramClasses.find(Name);
    return It == ProgramClasses.end() ? nullptr : It->second;
  }
  const MethodDecl *lookupProgramMethod(const ClassDecl *Class,
                                        const std::string &Name,
                                        std::size_t Arity) const;
  const FieldDecl *lookupField(const ClassDecl *Class,
                               const std::string &Name) const;

  /// Resolves an expression that syntactically denotes a class (NameExpr
  /// or dotted package path); returns the unqualified class name or
  /// nullopt when the expression is a value.
  std::optional<std::string> exprAsTypeName(const Expr *E,
                                            const ExecState &State,
                                            const Frame &F) const;

  // --- abstraction helpers -----------------------------------------------
  AbstractValue literalInt(std::int64_t V, std::string Symbol = {}) const;
  AbstractValue literalStr(std::string V) const;
  AbstractValue coerce(AbstractValue V, const TypeRef &Type) const;
  AbstractValue returnTypeToValue(const std::string &TypeName) const;

  // --- event recording ---------------------------------------------------
  void record(ExecState &State, unsigned ObjId, const std::string &Sig,
              const std::vector<AbstractValue> &Args);
  void recordOnObjectArgs(ExecState &State, const std::string &Sig,
                          const std::vector<AbstractValue> &Args);

  // --- statement interpretation -------------------------------------------
  void execStmt(const Stmt *S, std::vector<ExecState> &States, Frame &F);
  void execStmtList(const std::vector<Stmt *> &Stmts,
                    std::vector<ExecState> &States, Frame &F);
  void capStates(std::vector<ExecState> &States) const;
  static ExecState joinStates(const ExecState &A, const ExecState &B);

  // --- expression evaluation ----------------------------------------------
  AbstractValue evalExpr(const Expr *E, ExecState &State, Frame &F);
  AbstractValue evalCall(const MethodCallExpr *Call, ExecState &State,
                         Frame &F);
  AbstractValue evalNewObject(const NewObjectExpr *New, ExecState &State,
                              Frame &F);
  AbstractValue evalNewArray(const NewArrayExpr *New, ExecState &State,
                             Frame &F);
  AbstractValue evalArrayInit(const ArrayInitExpr *Init, ExecState &State,
                              Frame &F);
  AbstractValue evalBinary(const BinaryExpr *Bin, ExecState &State, Frame &F);
  AbstractValue evalFieldAccess(const FieldAccessExpr *Access,
                                ExecState &State, Frame &F);
  AbstractValue evalName(const NameExpr *Name, ExecState &State, Frame &F);
  void assignTo(const Expr *Lhs, AbstractValue Value, ExecState &State,
                Frame &F);

  AbstractValue applyApiCall(ExecState &State, const apimodel::ApiMethod *M,
                             const AbstractValue *Receiver,
                             const std::vector<AbstractValue> &Args,
                             SourceLocation Loc);
  AbstractValue evalStringMethod(const std::string &Name,
                                 const AbstractValue &Receiver,
                                 const std::vector<AbstractValue> &Args);
  AbstractValue unknownCallResult(const AbstractValue *Receiver,
                                  const std::vector<AbstractValue> &Args);
  std::optional<AbstractValue>
  evalKnownStaticCall(const std::string &ClassName, const std::string &Name,
                      const std::vector<AbstractValue> &Args);
  AbstractValue inlineCall(const MethodDecl *M, const ClassDecl *Class,
                           AbstractValue ThisVal,
                           const std::vector<AbstractValue> &Args,
                           ExecState &State, Frame &F);
  void initializeFields(const ClassDecl *Class, unsigned ThisId,
                        ExecState &State, Frame &F);

  /// True while the object budget still allows tracking a new allocation
  /// site; records the budget hit otherwise.
  bool objectBudgetLeft() {
    if (Opts.MaxObjects != 0 && Objects.size() >= Opts.MaxObjects) {
      Stats.ObjectBudgetHit = true;
      return false;
    }
    return true;
  }

  const apimodel::CryptoApiModel &Api;
  const AnalysisOptions &Opts;

  ObjectTable Objects;
  AnalysisStats Stats;
  std::unordered_map<std::string, const ClassDecl *> ProgramClasses;
  std::unordered_set<std::string> CalledMethodNames;
  std::unordered_set<std::string> InstantiatedClassNames;
  unsigned Fuel = 0;
};

//===----------------------------------------------------------------------===//
// Indexing and entry discovery
//===----------------------------------------------------------------------===//

void Engine::indexClasses(const ClassDecl *Class) {
  ProgramClasses.emplace(Class->Name, Class);
  for (const ClassDecl *Nested : Class->NestedClasses)
    indexClasses(Nested);
}

// Collect the names of invoked methods and instantiated classes; used
// for name-based entry discovery.
namespace detail {
class CallTargetCollector final : public AstVisitor {
public:
  CallTargetCollector(std::unordered_set<std::string> &Called,
                      std::unordered_set<std::string> &Instantiated)
      : Called(Called), Instantiated(Instantiated) {}

protected:
  bool visitCall(const MethodCallExpr &Call) override {
    Called.insert(Call.Name);
    return true;
  }
  bool visitNewObject(const NewObjectExpr &New) override {
    Instantiated.insert(New.Type.baseName());
    return true;
  }

private:
  std::unordered_set<std::string> &Called;
  std::unordered_set<std::string> &Instantiated;
};
} // namespace detail

void Engine::collectCallTargets(const AstNode *Node) {
  detail::CallTargetCollector Collector(CalledMethodNames,
                                        InstantiatedClassNames);
  Collector.walk(Node);
}

std::vector<std::pair<const ClassDecl *, const MethodDecl *>>
Engine::findEntryMethods() const {
  std::vector<std::pair<const ClassDecl *, const MethodDecl *>> Entries;
  for (const auto &[Name, Class] : ProgramClasses) {
    std::size_t Before = Entries.size();
    for (const MethodDecl *Method : Class->Methods) {
      if (!Method->Body)
        continue;
      bool Called = Method->IsConstructor
                        ? InstantiatedClassNames.count(Class->Name) != 0
                        : CalledMethodNames.count(Method->Name) != 0;
      if (!Called || Method->Name == "main")
        Entries.emplace_back(Class, Method);
    }
    // Everything is called from somewhere (cycles / helper-only classes):
    // fall back to analyzing every method so allocation sites are still
    // reached — but not for instantiated classes, whose code is driven by
    // inlining from the instantiating entries.
    if (Entries.size() == Before &&
        InstantiatedClassNames.count(Class->Name) == 0) {
      for (const MethodDecl *Method : Class->Methods)
        if (Method->Body)
          Entries.emplace_back(Class, Method);
    }
  }
  // Deterministic order: by class name, then declaration order.
  std::sort(Entries.begin(), Entries.end(), [](const auto &A, const auto &B) {
    if (A.first->Name != B.first->Name)
      return A.first->Name < B.first->Name;
    return A.second->getLoc().Line < B.second->getLoc().Line;
  });
  return Entries;
}

const MethodDecl *Engine::lookupProgramMethod(const ClassDecl *Class,
                                              const std::string &Name,
                                              std::size_t Arity) const {
  const MethodDecl *Best = nullptr;
  std::size_t BestGap = SIZE_MAX;
  for (const MethodDecl *Method : Class->Methods) {
    if (Method->Name != Name || !Method->Body)
      continue;
    std::size_t Have = Method->Params.size();
    std::size_t Gap = Have > Arity ? Have - Arity : Arity - Have;
    if (Gap < BestGap) {
      BestGap = Gap;
      Best = Method;
    }
  }
  if (Best)
    return Best;
  // Follow the (single-level) superclass chain within the unit.
  if (!Class->SuperClass.empty())
    if (const ClassDecl *Super = lookupProgramClass(Class->SuperClass))
      if (Super != Class)
        return lookupProgramMethod(Super, Name, Arity);
  return nullptr;
}

const FieldDecl *Engine::lookupField(const ClassDecl *Class,
                                     const std::string &Name) const {
  for (const FieldDecl *Field : Class->Fields)
    if (Field->Name == Name)
      return Field;
  if (!Class->SuperClass.empty())
    if (const ClassDecl *Super = lookupProgramClass(Class->SuperClass))
      if (Super != Class)
        return lookupField(Super, Name);
  return nullptr;
}

std::optional<std::string> Engine::exprAsTypeName(const Expr *E,
                                                  const ExecState &State,
                                                  const Frame &F) const {
  if (const auto *Name = dyn_cast<NameExpr>(E)) {
    // A name shadowed by a local or a field is a value, not a type.
    if (State.Locals.count(Name->Name))
      return std::nullopt;
    if (F.CurrentClass && lookupField(F.CurrentClass, Name->Name))
      return std::nullopt;
    if (Api.lookupClass(Name->Name) || lookupProgramClass(Name->Name))
      return Name->Name;
    // Heuristic: capitalized unknown names act as (unmodeled) classes so
    // `Hex.decodeHex(...)` resolves as a static call.
    if (!Name->Name.empty() && std::isupper(Name->Name[0]))
      return Name->Name;
    return std::nullopt;
  }
  if (const auto *Access = dyn_cast<FieldAccessExpr>(E)) {
    // Dotted path `javax.crypto.Cipher`: the last segment is the class if
    // it is known; only accept when the prefix looks like a package
    // (lowercase identifiers).
    const Expr *Cur = Access->Base;
    bool PackagePrefix = true;
    while (const auto *Inner = dyn_cast<FieldAccessExpr>(Cur)) {
      if (Inner->Name.empty() || std::isupper(Inner->Name[0]))
        PackagePrefix = false;
      Cur = Inner->Base;
    }
    if (const auto *Root = dyn_cast<NameExpr>(Cur)) {
      if (!Root->Name.empty() && std::isupper(Root->Name[0]))
        PackagePrefix = false;
      if (PackagePrefix &&
          (Api.lookupClass(Access->Name) || lookupProgramClass(Access->Name)))
        return Access->Name;
    }
    return std::nullopt;
  }
  return std::nullopt;
}

//===----------------------------------------------------------------------===//
// Abstraction helpers
//===----------------------------------------------------------------------===//

AbstractValue Engine::literalInt(std::int64_t V, std::string Symbol) const {
  if (Opts.Abstraction == BaseAbstraction::AllTop)
    return AbstractValue::intTop();
  return AbstractValue::intConst(V, std::move(Symbol));
}

AbstractValue Engine::literalStr(std::string V) const {
  if (Opts.Abstraction == BaseAbstraction::AllTop)
    return AbstractValue::strTop();
  return AbstractValue::strConst(std::move(V));
}

static bool isByteLikeName(const std::string &Name) {
  return Name == "byte" || Name == "char";
}

static bool isIntLikeName(const std::string &Name) {
  return Name == "int" || Name == "long" || Name == "short" ||
         Name == "boolean" || Name == "double" || Name == "float";
}

AbstractValue Engine::coerce(AbstractValue V, const TypeRef &Type) const {
  if (V.kind() == AVKind::Null)
    return V;
  const std::string &Name = Type.Name;

  if (Type.isArray() && isByteLikeName(Name)) {
    switch (V.kind()) {
    case AVKind::ByteArrayConst:
    case AVKind::ByteArrayTop:
      return V;
    case AVKind::IntArrayConst:
      if (Opts.Abstraction == BaseAbstraction::KeepAllConstants)
        return V; // ablation: keep element values for byte arrays too
      return AbstractValue::byteArrayConst();
    case AVKind::StrConst:
    case AVKind::UnknownConst:
      return AbstractValue::byteArrayConst();
    default:
      return V.isConstant() ? AbstractValue::byteArrayConst()
                            : AbstractValue::byteArrayTop();
    }
  }
  if (Type.isArray() && Name == "int")
    return V.kind() == AVKind::IntArrayConst ? V
                                             : AbstractValue::intArrayTop();
  if (Type.isArray() && Name == "String")
    return V.kind() == AVKind::StrArrayConst ? V
                                             : AbstractValue::strArrayTop();
  if (Type.isArray()) // arrays of objects: keep object identity if any
    return V.isObjectLike() ? V : AbstractValue::unknown();

  if (isByteLikeName(Name))
    return V.isConstant() ? AbstractValue::byteConst()
                          : AbstractValue::byteTop();
  if (isIntLikeName(Name)) {
    if (V.kind() == AVKind::IntConst)
      return V;
    return AbstractValue::intTop();
  }
  if (Name == "String") {
    if (V.kind() == AVKind::StrConst || V.kind() == AVKind::StrTop)
      return V;
    return AbstractValue::strTop();
  }
  if (Name == "void" || Name == "<error>" || Name.empty())
    return V;

  // Object types: keep tracked objects, otherwise an unknown-allocation
  // object of the declared type (Tobj labeled by the static type).
  if (V.isObjectLike())
    return V;
  return AbstractValue::topObject(Type.baseName());
}

AbstractValue Engine::returnTypeToValue(const std::string &TypeName) const {
  if (TypeName == "void")
    return AbstractValue::unknown();
  if (TypeName == "byte[]" || TypeName == "char[]")
    return AbstractValue::byteArrayTop();
  if (TypeName == "int" || TypeName == "long")
    return AbstractValue::intTop();
  if (TypeName == "String")
    return AbstractValue::strTop();
  return AbstractValue::topObject(TypeName);
}

//===----------------------------------------------------------------------===//
// Event recording
//===----------------------------------------------------------------------===//

void Engine::record(ExecState &State, unsigned ObjId, const std::string &Sig,
                    const std::vector<AbstractValue> &Args) {
  std::vector<UsageEvent> &Events = State.Log[ObjId];
  if (Events.size() >= 256)
    return; // safety cap; real usages are tiny
  Events.push_back({Sig, Args});
}

void Engine::recordOnObjectArgs(ExecState &State, const std::string &Sig,
                                const std::vector<AbstractValue> &Args) {
  for (const AbstractValue &Arg : Args)
    if (Arg.isTrackedObject())
      record(State, Arg.objectId(), Sig, Args);
}

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

ExecState Engine::joinStates(const ExecState &A, const ExecState &B) {
  ExecState Out = A;
  for (const auto &[Name, Val] : B.Locals) {
    auto It = Out.Locals.find(Name);
    if (It == Out.Locals.end())
      Out.Locals.emplace(Name, Val);
    else
      It->second = AbstractValue::join(It->second, Val);
  }
  for (const auto &[Name, Type] : B.LocalTypes)
    Out.LocalTypes.emplace(Name, Type);
  for (const auto &[Key, Val] : B.Fields) {
    auto It = Out.Fields.find(Key);
    if (It == Out.Fields.end())
      Out.Fields.emplace(Key, Val);
    else
      It->second = AbstractValue::join(It->second, Val);
  }
  for (const auto &[Key, Val] : B.Statics) {
    auto It = Out.Statics.find(Key);
    if (It == Out.Statics.end())
      Out.Statics.emplace(Key, Val);
    else
      It->second = AbstractValue::join(It->second, Val);
  }
  for (const auto &[ObjId, Events] : B.Log) {
    std::vector<UsageEvent> &Dest = Out.Log[ObjId];
    for (const UsageEvent &Event : Events)
      if (std::find(Dest.begin(), Dest.end(), Event) == Dest.end())
        Dest.push_back(Event);
  }
  Out.Returned = A.Returned && B.Returned;
  Out.RetValue = AbstractValue::join(A.RetValue, B.RetValue);
  return Out;
}

void Engine::capStates(std::vector<ExecState> &States) const {
  if (States.size() <= Opts.MaxStatesPerEntry)
    return;
  // Fold the surplus into the last kept slot so no execution's events are
  // lost, only their path-separation.
  ExecState Folded = States[Opts.MaxStatesPerEntry - 1];
  for (std::size_t I = Opts.MaxStatesPerEntry; I < States.size(); ++I)
    Folded = joinStates(Folded, States[I]);
  States.resize(Opts.MaxStatesPerEntry);
  States.back() = std::move(Folded);
}

void Engine::execStmtList(const std::vector<Stmt *> &Stmts,
                          std::vector<ExecState> &States, Frame &F) {
  for (const Stmt *S : Stmts)
    execStmt(S, States, F);
}

void Engine::execStmt(const Stmt *S, std::vector<ExecState> &States,
                      Frame &F) {
  if (Fuel == 0) {
    Stats.FuelExhausted = true;
    return;
  }
  --Fuel;
  support::throwIfFault(support::FaultSite::Interpreter, Fuel);

  switch (S->getKind()) {
  case NodeKind::BlockStmt:
    execStmtList(cast<Block>(S)->Stmts, States, F);
    return;
  case NodeKind::EmptyStmt:
  case NodeKind::BreakStmt:
  case NodeKind::ContinueStmt:
    return;
  case NodeKind::LocalVarDeclStmt: {
    const auto *Decl = cast<LocalVarDeclStmt>(S);
    for (ExecState &State : States) {
      if (State.Returned)
        continue;
      AbstractValue Init = Decl->Init
                               ? evalExpr(Decl->Init, State, F)
                               : coerce(AbstractValue::unknown(), Decl->Type);
      State.Locals[Decl->Name] = coerce(std::move(Init), Decl->Type);
      State.LocalTypes[Decl->Name] = Decl->Type;
    }
    return;
  }
  case NodeKind::ExprStmt:
    for (ExecState &State : States)
      if (!State.Returned)
        evalExpr(cast<ExprStmt>(S)->E, State, F);
    return;
  case NodeKind::ReturnStmt: {
    const auto *Ret = cast<ReturnStmt>(S);
    for (ExecState &State : States) {
      if (State.Returned)
        continue;
      if (Ret->Value)
        State.RetValue = evalExpr(Ret->Value, State, F);
      State.Returned = true;
    }
    return;
  }
  case NodeKind::ThrowStmt:
    for (ExecState &State : States) {
      if (State.Returned)
        continue;
      evalExpr(cast<ThrowStmt>(S)->Value, State, F);
      State.Returned = true;
    }
    return;
  case NodeKind::IfStmt: {
    const auto *If = cast<IfStmt>(S);
    // Partition states by the abstract condition value: a constant
    // condition prunes the dead branch (precision for `if (DEBUG)`-style
    // flags); unknown conditions fork.
    std::vector<ExecState> ThenStates, ElseStates, PassThrough;
    for (ExecState &State : States) {
      if (State.Returned) {
        PassThrough.push_back(std::move(State));
        continue;
      }
      AbstractValue Cond = evalExpr(If->Cond, State, F);
      if (Cond.kind() == AVKind::IntConst) {
        (Cond.intValue() != 0 ? ThenStates : ElseStates)
            .push_back(std::move(State));
      } else {
        ThenStates.push_back(State);
        ElseStates.push_back(std::move(State));
      }
    }
    execStmt(If->Then, ThenStates, F);
    if (If->Else)
      execStmt(If->Else, ElseStates, F);
    States = std::move(PassThrough);
    States.insert(States.end(), std::make_move_iterator(ThenStates.begin()),
                  std::make_move_iterator(ThenStates.end()));
    States.insert(States.end(), std::make_move_iterator(ElseStates.begin()),
                  std::make_move_iterator(ElseStates.end()));
    capStates(States);
    return;
  }
  case NodeKind::WhileStmt: {
    const auto *While = cast<WhileStmt>(S);
    for (ExecState &State : States)
      if (!State.Returned)
        evalExpr(While->Cond, State, F);
    // 0 or 1 abstract iterations.
    std::vector<ExecState> OnceStates = States;
    execStmt(While->Body, OnceStates, F);
    States.insert(States.end(), std::make_move_iterator(OnceStates.begin()),
                  std::make_move_iterator(OnceStates.end()));
    capStates(States);
    return;
  }
  case NodeKind::DoStmt: {
    const auto *Do = cast<DoStmt>(S);
    // Body runs at least once.
    execStmt(Do->Body, States, F);
    for (ExecState &State : States)
      if (!State.Returned)
        evalExpr(Do->Cond, State, F);
    return;
  }
  case NodeKind::ForStmt: {
    const auto *For = cast<ForStmt>(S);
    if (For->Init)
      execStmt(For->Init, States, F);
    for (ExecState &State : States) {
      if (State.Returned)
        continue;
      if (For->Cond)
        evalExpr(For->Cond, State, F);
    }
    std::vector<ExecState> OnceStates = States;
    execStmt(For->Body, OnceStates, F);
    for (ExecState &State : OnceStates) {
      if (State.Returned)
        continue;
      if (For->Update)
        evalExpr(For->Update, State, F);
    }
    States.insert(States.end(), std::make_move_iterator(OnceStates.begin()),
                  std::make_move_iterator(OnceStates.end()));
    capStates(States);
    return;
  }
  case NodeKind::TryStmt: {
    const auto *Try = cast<TryStmt>(S);
    execStmt(Try->Body, States, F);
    // Each catch clause forks an execution that additionally runs the
    // handler with the exception bound to an unknown object.
    std::vector<ExecState> WithCatches;
    for (const CatchClause &Clause : Try->Catches) {
      std::vector<ExecState> CatchStates = States;
      for (ExecState &State : CatchStates) {
        State.Returned = false; // the exception preempted the return
        if (!Clause.Name.empty() && !Clause.Types.empty())
          State.Locals[Clause.Name] =
              AbstractValue::topObject(Clause.Types.front().baseName());
      }
      execStmt(Clause.Body, CatchStates, F);
      WithCatches.insert(WithCatches.end(),
                         std::make_move_iterator(CatchStates.begin()),
                         std::make_move_iterator(CatchStates.end()));
    }
    States.insert(States.end(), std::make_move_iterator(WithCatches.begin()),
                  std::make_move_iterator(WithCatches.end()));
    capStates(States);
    if (Try->Finally)
      execStmt(Try->Finally, States, F);
    return;
  }
  default:
    assert(false && "unhandled statement kind");
  }
}

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

AbstractValue Engine::evalExpr(const Expr *E, ExecState &State, Frame &F) {
  if (Fuel == 0) {
    Stats.FuelExhausted = true;
    return AbstractValue::unknown();
  }
  --Fuel;

  switch (E->getKind()) {
  case NodeKind::IntLiteralExpr:
    return literalInt(cast<IntLiteralExpr>(E)->Value);
  case NodeKind::LongLiteralExpr:
    return literalInt(cast<LongLiteralExpr>(E)->Value);
  case NodeKind::StringLiteralExpr:
    return literalStr(cast<StringLiteralExpr>(E)->Value);
  case NodeKind::CharLiteralExpr:
    return Opts.Abstraction == BaseAbstraction::AllTop
               ? AbstractValue::byteTop()
               : AbstractValue::byteConst();
  case NodeKind::BoolLiteralExpr:
    return literalInt(cast<BoolLiteralExpr>(E)->Value ? 1 : 0);
  case NodeKind::NullLiteralExpr:
    return AbstractValue::null();
  case NodeKind::ThisExpr:
    return F.ThisVal;
  case NodeKind::NameExpr:
    return evalName(cast<NameExpr>(E), State, F);
  case NodeKind::FieldAccessExpr:
    return evalFieldAccess(cast<FieldAccessExpr>(E), State, F);
  case NodeKind::MethodCallExpr:
    return evalCall(cast<MethodCallExpr>(E), State, F);
  case NodeKind::NewObjectExpr:
    return evalNewObject(cast<NewObjectExpr>(E), State, F);
  case NodeKind::NewArrayExpr:
    return evalNewArray(cast<NewArrayExpr>(E), State, F);
  case NodeKind::ArrayInitExpr:
    return evalArrayInit(cast<ArrayInitExpr>(E), State, F);
  case NodeKind::ArrayAccessExpr: {
    const auto *Access = cast<ArrayAccessExpr>(E);
    AbstractValue Base = evalExpr(Access->Base, State, F);
    AbstractValue Index = evalExpr(Access->Index, State, F);
    switch (Base.kind()) {
    case AVKind::IntArrayConst: {
      const auto &Elems = Base.intElements();
      if (Index.kind() == AVKind::IntConst && Index.intValue() >= 0 &&
          static_cast<std::size_t>(Index.intValue()) < Elems.size())
        return AbstractValue::intConst(Elems[Index.intValue()]);
      return AbstractValue::intTop();
    }
    case AVKind::StrArrayConst: {
      const auto &Elems = Base.strElements();
      if (Index.kind() == AVKind::IntConst && Index.intValue() >= 0 &&
          static_cast<std::size_t>(Index.intValue()) < Elems.size())
        return AbstractValue::strConst(Elems[Index.intValue()]);
      return AbstractValue::strTop();
    }
    case AVKind::IntArrayTop:
      return AbstractValue::intTop();
    case AVKind::StrArrayTop:
      return AbstractValue::strTop();
    case AVKind::ByteArrayConst:
      return AbstractValue::byteConst();
    case AVKind::ByteArrayTop:
      return AbstractValue::byteTop();
    default:
      return AbstractValue::unknown();
    }
  }
  case NodeKind::AssignExpr: {
    const auto *Assign = cast<AssignExpr>(E);
    AbstractValue Rhs = evalExpr(Assign->Rhs, State, F);
    if (Assign->Op != AssignOp::Assign) {
      // Compound assignment folds through the old value (keeps string
      // concatenation constants alive).
      AbstractValue Old = evalExpr(Assign->Lhs, State, F);
      if (Assign->Op == AssignOp::AddAssign &&
          (Old.kind() == AVKind::StrConst || Rhs.kind() == AVKind::StrConst) &&
          Old.isConstant() && Rhs.isConstant()) {
        Rhs = AbstractValue::strConst(Old.label() + Rhs.label());
      } else if (Old.kind() == AVKind::IntConst &&
                 Rhs.kind() == AVKind::IntConst) {
        std::int64_t Result = Assign->Op == AssignOp::AddAssign
                                  ? Old.intValue() + Rhs.intValue()
                                  : Old.intValue() - Rhs.intValue();
        Rhs = AbstractValue::intConst(Result);
      } else {
        Rhs = AbstractValue::join(Old, Rhs);
      }
    }
    assignTo(Assign->Lhs, Rhs, State, F);
    return Rhs;
  }
  case NodeKind::BinaryExpr:
    return evalBinary(cast<BinaryExpr>(E), State, F);
  case NodeKind::UnaryExpr: {
    const auto *Unary = cast<UnaryExpr>(E);
    AbstractValue V = evalExpr(Unary->Operand, State, F);
    switch (Unary->Op) {
    case UnaryOp::Neg:
      if (V.kind() == AVKind::IntConst)
        return AbstractValue::intConst(-V.intValue());
      return AbstractValue::intTop();
    case UnaryOp::Not:
      if (V.kind() == AVKind::IntConst)
        return AbstractValue::intConst(V.intValue() == 0 ? 1 : 0);
      return AbstractValue::intTop();
    case UnaryOp::BitNot:
      if (V.kind() == AVKind::IntConst)
        return AbstractValue::intConst(~V.intValue());
      return AbstractValue::intTop();
    case UnaryOp::PreInc:
    case UnaryOp::PreDec: {
      AbstractValue NewVal =
          V.kind() == AVKind::IntConst
              ? AbstractValue::intConst(V.intValue() +
                                        (Unary->Op == UnaryOp::PreInc ? 1
                                                                      : -1))
              : AbstractValue::intTop();
      assignTo(Unary->Operand, NewVal, State, F);
      return NewVal;
    }
    }
    return AbstractValue::unknown();
  }
  case NodeKind::CastExpr: {
    const auto *Cast = cast<CastExpr>(E);
    return coerce(evalExpr(Cast->Operand, State, F), Cast->Type);
  }
  case NodeKind::ConditionalExpr: {
    const auto *Cond = cast<ConditionalExpr>(E);
    AbstractValue C = evalExpr(Cond->Cond, State, F);
    // A constant condition selects one arm (and suppresses the other
    // arm's side effects), matching the If-statement pruning.
    if (C.kind() == AVKind::IntConst)
      return evalExpr(C.intValue() != 0 ? Cond->TrueExpr : Cond->FalseExpr,
                      State, F);
    AbstractValue T = evalExpr(Cond->TrueExpr, State, F);
    AbstractValue Fv = evalExpr(Cond->FalseExpr, State, F);
    return AbstractValue::join(T, Fv);
  }
  case NodeKind::InstanceofExpr:
    evalExpr(cast<InstanceofExpr>(E)->Operand, State, F);
    return AbstractValue::intTop();
  default:
    assert(false && "unhandled expression kind");
    return AbstractValue::unknown();
  }
}

AbstractValue Engine::evalName(const NameExpr *Name, ExecState &State,
                               Frame &F) {
  auto Local = State.Locals.find(Name->Name);
  if (Local != State.Locals.end())
    return Local->second;

  if (F.CurrentClass) {
    if (const FieldDecl *Field = lookupField(F.CurrentClass, Name->Name)) {
      if (Field->Modifiers & ModStatic) {
        std::string Key = F.CurrentClass->Name + "." + Field->Name;
        auto It = State.Statics.find(Key);
        if (It != State.Statics.end())
          return It->second;
        return coerce(AbstractValue::unknown(), Field->Type);
      }
      if (F.ThisVal.isTrackedObject()) {
        auto It = State.Fields.find({F.ThisVal.objectId(), Name->Name});
        if (It != State.Fields.end())
          return It->second;
      }
      return coerce(AbstractValue::unknown(), Field->Type);
    }
  }
  return AbstractValue::unknown();
}

AbstractValue Engine::evalFieldAccess(const FieldAccessExpr *Access,
                                      ExecState &State, Frame &F) {
  // Class-qualified constant or static field.
  if (auto TypeName = exprAsTypeName(Access->Base, State, F)) {
    if (auto Const = Api.lookupConstant(*TypeName, Access->Name))
      return literalInt(*Const, Access->Name);
    if (const ClassDecl *Class = lookupProgramClass(*TypeName)) {
      if (const FieldDecl *Field = lookupField(Class, Access->Name)) {
        std::string Key = Class->Name + "." + Field->Name;
        auto It = State.Statics.find(Key);
        if (It != State.Statics.end())
          return It->second;
        return coerce(AbstractValue::unknown(), Field->Type);
      }
    }
    return AbstractValue::unknown();
  }

  AbstractValue Base = evalExpr(Access->Base, State, F);
  if (Access->Name == "length") {
    switch (Base.kind()) {
    case AVKind::IntArrayConst:
      return AbstractValue::intConst(
          static_cast<std::int64_t>(Base.intElements().size()));
    case AVKind::StrArrayConst:
      return AbstractValue::intConst(
          static_cast<std::int64_t>(Base.strElements().size()));
    case AVKind::IntArrayTop:
    case AVKind::StrArrayTop:
    case AVKind::ByteArrayConst:
    case AVKind::ByteArrayTop:
      return AbstractValue::intTop();
    default:
      break;
    }
  }
  if (Base.isTrackedObject()) {
    auto It = State.Fields.find({Base.objectId(), Access->Name});
    if (It != State.Fields.end())
      return It->second;
    if (const ClassDecl *Class =
            lookupProgramClass(Objects.get(Base.objectId()).TypeName))
      if (const FieldDecl *Field = lookupField(Class, Access->Name))
        return coerce(AbstractValue::unknown(), Field->Type);
  }
  return AbstractValue::unknown();
}

void Engine::assignTo(const Expr *Lhs, AbstractValue Value, ExecState &State,
                      Frame &F) {
  if (const auto *Name = dyn_cast<NameExpr>(Lhs)) {
    auto Local = State.Locals.find(Name->Name);
    if (Local != State.Locals.end()) {
      auto DeclType = State.LocalTypes.find(Name->Name);
      Local->second = DeclType != State.LocalTypes.end()
                          ? coerce(std::move(Value), DeclType->second)
                          : std::move(Value);
      return;
    }
    if (F.CurrentClass) {
      if (const FieldDecl *Field = lookupField(F.CurrentClass, Name->Name)) {
        Value = coerce(std::move(Value), Field->Type);
        if (Field->Modifiers & ModStatic) {
          State.Statics[F.CurrentClass->Name + "." + Field->Name] =
              std::move(Value);
        } else if (F.ThisVal.isTrackedObject()) {
          State.Fields[{F.ThisVal.objectId(), Name->Name}] = std::move(Value);
        }
        return;
      }
    }
    State.Locals[Name->Name] = std::move(Value);
    return;
  }
  if (const auto *Access = dyn_cast<FieldAccessExpr>(Lhs)) {
    if (auto TypeName = exprAsTypeName(Access->Base, State, F)) {
      if (const ClassDecl *Class = lookupProgramClass(*TypeName)) {
        if (const FieldDecl *Field = lookupField(Class, Access->Name))
          State.Statics[Class->Name + "." + Field->Name] =
              coerce(std::move(Value), Field->Type);
      }
      return;
    }
    AbstractValue Base = evalExpr(Access->Base, State, F);
    if (Base.isTrackedObject())
      State.Fields[{Base.objectId(), Access->Name}] = std::move(Value);
    return;
  }
  if (const auto *Access = dyn_cast<ArrayAccessExpr>(Lhs)) {
    // Element store: a write of a non-constant degrades the whole array.
    AbstractValue Base = evalExpr(Access->Base, State, F);
    evalExpr(Access->Index, State, F);
    if (!Value.isConstant()) {
      AbstractValue Degraded;
      switch (Base.kind()) {
      case AVKind::ByteArrayConst:
        Degraded = AbstractValue::byteArrayTop();
        break;
      case AVKind::IntArrayConst:
        Degraded = AbstractValue::intArrayTop();
        break;
      case AVKind::StrArrayConst:
        Degraded = AbstractValue::strArrayTop();
        break;
      default:
        return;
      }
      assignTo(Access->Base, Degraded, State, F);
    }
    return;
  }
  // Other l-values (casts, calls) — evaluate for effects and drop.
  evalExpr(Lhs, State, F);
}

AbstractValue Engine::evalBinary(const BinaryExpr *Bin, ExecState &State,
                                 Frame &F) {
  AbstractValue L = evalExpr(Bin->Lhs, State, F);
  AbstractValue R = evalExpr(Bin->Rhs, State, F);

  if (Bin->Op == BinaryOp::Add) {
    // Java string concatenation folds constants.
    bool Stringy =
        L.kind() == AVKind::StrConst || R.kind() == AVKind::StrConst ||
        L.kind() == AVKind::StrTop || R.kind() == AVKind::StrTop;
    if (Stringy) {
      if ((L.kind() == AVKind::StrConst || L.kind() == AVKind::IntConst) &&
          (R.kind() == AVKind::StrConst || R.kind() == AVKind::IntConst))
        return AbstractValue::strConst(L.label() + R.label());
      return AbstractValue::strTop();
    }
  }

  if (L.kind() == AVKind::IntConst && R.kind() == AVKind::IntConst) {
    std::int64_t A = L.intValue(), B = R.intValue();
    switch (Bin->Op) {
    case BinaryOp::Add:
      return AbstractValue::intConst(A + B);
    case BinaryOp::Sub:
      return AbstractValue::intConst(A - B);
    case BinaryOp::Mul:
      return AbstractValue::intConst(A * B);
    case BinaryOp::Div:
      return B == 0 ? AbstractValue::intTop() : AbstractValue::intConst(A / B);
    case BinaryOp::Rem:
      return B == 0 ? AbstractValue::intTop() : AbstractValue::intConst(A % B);
    case BinaryOp::Lt:
      return AbstractValue::intConst(A < B);
    case BinaryOp::Gt:
      return AbstractValue::intConst(A > B);
    case BinaryOp::Le:
      return AbstractValue::intConst(A <= B);
    case BinaryOp::Ge:
      return AbstractValue::intConst(A >= B);
    case BinaryOp::Eq:
      return AbstractValue::intConst(A == B);
    case BinaryOp::Ne:
      return AbstractValue::intConst(A != B);
    case BinaryOp::And:
      return AbstractValue::intConst(A != 0 && B != 0);
    case BinaryOp::Or:
      return AbstractValue::intConst(A != 0 || B != 0);
    case BinaryOp::BitAnd:
      return AbstractValue::intConst(A & B);
    case BinaryOp::BitOr:
      return AbstractValue::intConst(A | B);
    case BinaryOp::BitXor:
      return AbstractValue::intConst(A ^ B);
    case BinaryOp::Shl:
      return AbstractValue::intConst(A << (B & 63));
    case BinaryOp::Shr:
      return AbstractValue::intConst(A >> (B & 63));
    }
  }
  return AbstractValue::intTop();
}

AbstractValue Engine::evalArrayInit(const ArrayInitExpr *Init,
                                    ExecState &State, Frame &F) {
  std::vector<std::int64_t> Ints;
  std::vector<std::string> Strs;
  bool AllInt = true, AllStr = true, AllConst = true;
  for (const Expr *Elem : Init->Elements) {
    AbstractValue V = evalExpr(Elem, State, F);
    AllConst = AllConst && V.isConstant();
    if (V.kind() == AVKind::IntConst)
      Ints.push_back(V.intValue());
    else if (V.kind() == AVKind::ByteConst)
      Ints.push_back(0); // byte constants carry no value under Figure 3
    else
      AllInt = false;
    if (V.kind() == AVKind::StrConst)
      Strs.push_back(V.strValue());
    else
      AllStr = false;
  }
  if (Opts.Abstraction == BaseAbstraction::AllTop)
    return AbstractValue::unknown();
  if (AllInt)
    return AbstractValue::intArrayConst(std::move(Ints));
  if (AllStr)
    return AbstractValue::strArrayConst(std::move(Strs));
  return AllConst ? AbstractValue::unknownConst() : AbstractValue::unknown();
}

AbstractValue Engine::evalNewArray(const NewArrayExpr *New, ExecState &State,
                                   Frame &F) {
  for (const Expr *Dim : New->DimExprs)
    evalExpr(Dim, State, F);
  AbstractValue Init = New->Init
                           ? evalExpr(New->Init, State, F)
                           : AbstractValue::unknownConst(); // zero-filled
  TypeRef ElemType = New->ElemType; // carries array dims
  if (ElemType.ArrayDims == 0)
    ElemType.ArrayDims = 1;
  return coerce(std::move(Init), ElemType);
}

AbstractValue Engine::applyApiCall(ExecState &State,
                                   const apimodel::ApiMethod *M,
                                   const AbstractValue *Receiver,
                                   const std::vector<AbstractValue> &Args,
                                   SourceLocation Loc) {
  std::string Sig = M->signature();
  if (M->IsFactory) {
    if (!objectBudgetLeft()) {
      recordOnObjectArgs(State, Sig, Args);
      return AbstractValue::topObject(M->ClassName);
    }
    unsigned ObjId = Objects.getOrCreate(Loc, M->ClassName);
    record(State, ObjId, Sig, Args);
    recordOnObjectArgs(State, Sig, Args);
    return AbstractValue::object(ObjId, M->ClassName);
  }
  if (Receiver && Receiver->isTrackedObject())
    record(State, Receiver->objectId(), Sig, Args);
  recordOnObjectArgs(State, Sig, Args);
  return returnTypeToValue(M->ReturnType);
}

AbstractValue Engine::evalStringMethod(const std::string &Name,
                                       const AbstractValue &Receiver,
                                       const std::vector<AbstractValue> &Args) {
  bool ConstRecv = Receiver.kind() == AVKind::StrConst;
  if (Name == "getBytes" || Name == "toCharArray")
    return ConstRecv ? AbstractValue::byteArrayConst()
                     : AbstractValue::byteArrayTop();
  if (Name == "length")
    return ConstRecv ? AbstractValue::intConst(static_cast<std::int64_t>(
                           Receiver.strValue().size()))
                     : AbstractValue::intTop();
  if (Name == "toUpperCase" || Name == "toLowerCase" || Name == "trim" ||
      Name == "intern") {
    if (!ConstRecv)
      return AbstractValue::strTop();
    std::string S = Receiver.strValue();
    if (Name == "toUpperCase")
      for (char &C : S)
        C = static_cast<char>(std::toupper(static_cast<unsigned char>(C)));
    else if (Name == "toLowerCase")
      for (char &C : S)
        C = static_cast<char>(std::tolower(static_cast<unsigned char>(C)));
    return AbstractValue::strConst(std::move(S));
  }
  if (Name == "substring" && ConstRecv && !Args.empty() &&
      Args[0].kind() == AVKind::IntConst) {
    const std::string &S = Receiver.strValue();
    std::int64_t Start = Args[0].intValue();
    std::int64_t End = Args.size() > 1 && Args[1].kind() == AVKind::IntConst
                           ? Args[1].intValue()
                           : static_cast<std::int64_t>(S.size());
    if (Start >= 0 && End >= Start &&
        End <= static_cast<std::int64_t>(S.size()))
      return AbstractValue::strConst(S.substr(Start, End - Start));
    return AbstractValue::strTop();
  }
  if (Name == "equals" || Name == "equalsIgnoreCase" || Name == "contains" ||
      Name == "startsWith" || Name == "endsWith" || Name == "isEmpty")
    return AbstractValue::intTop();
  if (Name == "concat") {
    if (ConstRecv && !Args.empty() && Args[0].kind() == AVKind::StrConst)
      return AbstractValue::strConst(Receiver.strValue() +
                                     Args[0].strValue());
    return AbstractValue::strTop();
  }
  return AbstractValue::strTop();
}

std::optional<AbstractValue>
Engine::evalKnownStaticCall(const std::string &ClassName,
                            const std::string &Name,
                            const std::vector<AbstractValue> &Args) {
  auto Arg = [&](std::size_t I) -> const AbstractValue * {
    return I < Args.size() ? &Args[I] : nullptr;
  };

  if (ClassName == "Integer" || ClassName == "Long" ||
      ClassName == "Short" || ClassName == "Byte") {
    if ((Name == "parseInt" || Name == "parseLong" || Name == "valueOf" ||
         Name == "parseShort" || Name == "parseByte") &&
        Arg(0) && Arg(0)->kind() == AVKind::StrConst) {
      errno = 0;
      char *End = nullptr;
      const std::string &Text = Arg(0)->strValue();
      long long Value = std::strtoll(Text.c_str(), &End, 10);
      if (End && *End == '\0' && !Text.empty() && errno == 0)
        return AbstractValue::intConst(Value);
      return AbstractValue::intTop();
    }
    if (Name == "toString" && Arg(0) && Arg(0)->kind() == AVKind::IntConst)
      return AbstractValue::strConst(std::to_string(Arg(0)->intValue()));
  }

  if (ClassName == "String" && Name == "valueOf" && Arg(0)) {
    if (Arg(0)->kind() == AVKind::IntConst)
      return AbstractValue::strConst(Arg(0)->symbol().empty()
                                         ? std::to_string(Arg(0)->intValue())
                                         : Arg(0)->label());
    if (Arg(0)->kind() == AVKind::StrConst)
      return *Arg(0);
    return AbstractValue::strTop();
  }

  if (ClassName == "Math" && Arg(0) &&
      Arg(0)->kind() == AVKind::IntConst) {
    std::int64_t A = Arg(0)->intValue();
    if (Name == "abs")
      return AbstractValue::intConst(A < 0 ? -A : A);
    if ((Name == "min" || Name == "max") && Arg(1) &&
        Arg(1)->kind() == AVKind::IntConst) {
      std::int64_t B = Arg(1)->intValue();
      return AbstractValue::intConst(Name == "min" ? std::min(A, B)
                                                   : std::max(A, B));
    }
  }
  return std::nullopt;
}

AbstractValue
Engine::unknownCallResult(const AbstractValue *Receiver,
                          const std::vector<AbstractValue> &Args) {
  bool AllConst = !Receiver || Receiver->isConstant();
  for (const AbstractValue &Arg : Args)
    AllConst = AllConst && Arg.isConstant();
  return AllConst ? AbstractValue::unknownConst() : AbstractValue::unknown();
}

void Engine::initializeFields(const ClassDecl *Class, unsigned ThisId,
                              ExecState &State, Frame &F) {
  for (const FieldDecl *Field : Class->Fields) {
    AbstractValue Value = Field->Init
                              ? evalExpr(Field->Init, State, F)
                              : coerce(AbstractValue::unknown(), Field->Type);
    Value = coerce(std::move(Value), Field->Type);
    if (Field->Modifiers & ModStatic)
      State.Statics[Class->Name + "." + Field->Name] = std::move(Value);
    else
      State.Fields[{ThisId, Field->Name}] = std::move(Value);
  }
}

AbstractValue Engine::inlineCall(const MethodDecl *M, const ClassDecl *Class,
                                 AbstractValue ThisVal,
                                 const std::vector<AbstractValue> &Args,
                                 ExecState &State, Frame &F) {
  assert(M->Body && "inlineCall requires a body");
  if (F.Depth >= Opts.MaxInlineDepth ||
      std::find(F.CallStack.begin(), F.CallStack.end(), M) !=
          F.CallStack.end())
    return returnTypeToValue(M->ReturnType.baseName());

  // Fresh locals for the callee; caller locals restored afterwards.
  auto SavedLocals = std::move(State.Locals);
  auto SavedLocalTypes = std::move(State.LocalTypes);
  State.Locals.clear();
  State.LocalTypes.clear();
  for (std::size_t I = 0; I < M->Params.size(); ++I) {
    AbstractValue Arg = I < Args.size()
                            ? Args[I]
                            : coerce(AbstractValue::unknown(),
                                     M->Params[I].Type);
    State.Locals[M->Params[I].Name] =
        coerce(std::move(Arg), M->Params[I].Type);
    State.LocalTypes[M->Params[I].Name] = M->Params[I].Type;
  }

  Frame Callee;
  Callee.CurrentClass = Class;
  Callee.ThisVal = std::move(ThisVal);
  Callee.Depth = F.Depth + 1;
  Callee.CallStack = F.CallStack;
  Callee.CallStack.push_back(M);

  // Branches inside an inlined call join rather than fork (see header).
  std::vector<ExecState> States;
  States.push_back(std::move(State));
  execStmt(M->Body, States, Callee);
  ExecState Joined = std::move(States.front());
  for (std::size_t I = 1; I < States.size(); ++I)
    Joined = joinStates(Joined, States[I]);

  AbstractValue Ret = Joined.RetValue;
  Joined.Returned = false;
  Joined.RetValue = AbstractValue::unknown();
  Joined.Locals = std::move(SavedLocals);
  Joined.LocalTypes = std::move(SavedLocalTypes);
  State = std::move(Joined);
  return Ret;
}

AbstractValue Engine::evalNewObject(const NewObjectExpr *New, ExecState &State,
                                    Frame &F) {
  std::vector<AbstractValue> Args;
  Args.reserve(New->Args.size());
  for (const Expr *Arg : New->Args)
    Args.push_back(evalExpr(Arg, State, F));

  std::string TypeName = New->Type.baseName();

  // Past the object budget every allocation degrades to an untracked top
  // object: no new usage set, but argument labels survive.
  if (!objectBudgetLeft()) {
    recordOnObjectArgs(State,
                       TypeName + ".<init>/" + std::to_string(Args.size()),
                       Args);
    return AbstractValue::topObject(TypeName);
  }

  // API class constructor.
  if (const apimodel::ApiClass *ApiClass = Api.lookupClass(TypeName)) {
    const apimodel::ApiMethod *Ctor = Api.lookupMethod(
        TypeName, "<init>", static_cast<unsigned>(Args.size()));
    if (Ctor)
      return applyApiCall(State, Ctor, nullptr, Args, New->getLoc());
    // Known class without a modeled constructor: still track the site.
    unsigned ObjId = Objects.getOrCreate(New->getLoc(), ApiClass->Name);
    record(State, ObjId, TypeName + ".<init>/" + std::to_string(Args.size()),
           Args);
    recordOnObjectArgs(State, TypeName + ".<init>/" +
                                  std::to_string(Args.size()),
                       Args);
    return AbstractValue::object(ObjId, ApiClass->Name);
  }

  // Program-defined class: allocate, run field initializers, inline ctor.
  if (const ClassDecl *Class = lookupProgramClass(TypeName)) {
    unsigned ObjId = Objects.getOrCreate(New->getLoc(), TypeName);
    AbstractValue Obj = AbstractValue::object(ObjId, TypeName);
    initializeFields(Class, ObjId, State, F);
    if (const MethodDecl *Ctor =
            lookupProgramMethod(Class, Class->Name, Args.size()))
      if (Ctor->IsConstructor && Ctor->Body)
        inlineCall(Ctor, Class, Obj, Args, State, F);
    return Obj;
  }

  // Unknown library class: track the site so argument relationships (e.g.
  // a SecretKeySpec passed to an unknown wrapper) keep their labels.
  unsigned ObjId = Objects.getOrCreate(New->getLoc(), TypeName);
  std::string Sig = TypeName + ".<init>/" + std::to_string(Args.size());
  record(State, ObjId, Sig, Args);
  recordOnObjectArgs(State, Sig, Args);
  return AbstractValue::object(ObjId, TypeName);
}

AbstractValue Engine::evalCall(const MethodCallExpr *Call, ExecState &State,
                               Frame &F) {
  // Constructor delegation.
  if (!Call->Base && (Call->Name == "this" || Call->Name == "super")) {
    std::vector<AbstractValue> Args;
    for (const Expr *Arg : Call->Args)
      Args.push_back(evalExpr(Arg, State, F));
    if (Call->Name == "this" && F.CurrentClass) {
      if (const MethodDecl *Ctor = lookupProgramMethod(
              F.CurrentClass, F.CurrentClass->Name, Args.size()))
        if (Ctor->IsConstructor && Ctor->Body)
          return inlineCall(Ctor, F.CurrentClass, F.ThisVal, Args, State, F);
    }
    if (Call->Name == "super" && F.CurrentClass &&
        !F.CurrentClass->SuperClass.empty()) {
      if (const ClassDecl *Super =
              lookupProgramClass(F.CurrentClass->SuperClass))
        if (const MethodDecl *Ctor =
                lookupProgramMethod(Super, Super->Name, Args.size()))
          if (Ctor->IsConstructor && Ctor->Body)
            return inlineCall(Ctor, Super, F.ThisVal, Args, State, F);
    }
    return AbstractValue::unknown();
  }

  // Static call via a class-denoting expression.
  std::optional<std::string> StaticClass;
  if (Call->Base)
    StaticClass = exprAsTypeName(Call->Base, State, F);

  std::vector<AbstractValue> Args;
  AbstractValue Receiver;
  [[maybe_unused]] bool HaveReceiver = false;
  if (Call->Base && !StaticClass) {
    Receiver = evalExpr(Call->Base, State, F);
    HaveReceiver = true;
  }
  Args.reserve(Call->Args.size());
  for (const Expr *Arg : Call->Args)
    Args.push_back(evalExpr(Arg, State, F));

  auto HandleRandomizedArg = [&](const apimodel::ApiMethod *M) {
    // SecureRandom.nextBytes(buf) fills its argument with fresh entropy —
    // the buffer is no longer a program constant.
    if (M->ClassName == "SecureRandom" && M->Name == "nextBytes" &&
        !Call->Args.empty())
      assignTo(Call->Args.front(), AbstractValue::byteArrayTop(), State, F);
  };

  if (StaticClass) {
    if (Api.lookupClass(*StaticClass)) {
      if (const apimodel::ApiMethod *M =
              Api.lookupMethod(*StaticClass, Call->Name,
                               static_cast<unsigned>(Args.size()))) {
        HandleRandomizedArg(M);
        return applyApiCall(State, M, nullptr, Args, Call->getLoc());
      }
      return unknownCallResult(nullptr, Args);
    }
    if (const ClassDecl *Class = lookupProgramClass(*StaticClass)) {
      if (const MethodDecl *M =
              lookupProgramMethod(Class, Call->Name, Args.size()))
        return inlineCall(M, Class, AbstractValue::null(), Args, State, F);
      return unknownCallResult(nullptr, Args);
    }
    // Well-known JDK statics fold constants (`Integer.parseInt("1000")`
    // commonly feeds iteration counts); everything else follows the
    // unknown-call rule (Hex, Base64, Arrays, ...).
    if (auto Known = evalKnownStaticCall(*StaticClass, Call->Name, Args))
      return *Known;
    return unknownCallResult(nullptr, Args);
  }

  if (!Call->Base) {
    // Unqualified: method of the current class.
    if (F.CurrentClass)
      if (const MethodDecl *M =
              lookupProgramMethod(F.CurrentClass, Call->Name, Args.size()))
        return inlineCall(M, F.CurrentClass, F.ThisVal, Args, State, F);
    return unknownCallResult(nullptr, Args);
  }

  assert(HaveReceiver && "instance call must have evaluated its receiver");

  // String receivers get the built-in string semantics.
  if (Receiver.kind() == AVKind::StrConst || Receiver.kind() == AVKind::StrTop)
    return evalStringMethod(Call->Name, Receiver, Args);

  if (Receiver.isTrackedObject()) {
    const AbstractObject &Obj = Objects.get(Receiver.objectId());
    if (Api.lookupClass(Obj.TypeName)) {
      if (const apimodel::ApiMethod *M =
              Api.lookupMethod(Obj.TypeName, Call->Name,
                               static_cast<unsigned>(Args.size()))) {
        HandleRandomizedArg(M);
        return applyApiCall(State, M, &Receiver, Args, Call->getLoc());
      }
      // Unmodeled method of a modeled class: synthesize a signature so
      // the feature is not lost.
      std::string Sig =
          Obj.TypeName + "." + Call->Name + "/" + std::to_string(Args.size());
      record(State, Receiver.objectId(), Sig, Args);
      recordOnObjectArgs(State, Sig, Args);
      return unknownCallResult(&Receiver, Args);
    }
    if (const ClassDecl *Class = lookupProgramClass(Obj.TypeName)) {
      if (const MethodDecl *M =
              lookupProgramMethod(Class, Call->Name, Args.size()))
        return inlineCall(M, Class, Receiver, Args, State, F);
      return unknownCallResult(&Receiver, Args);
    }
    // Unknown library object (tracked for labeling): record the call.
    std::string Sig =
        Obj.TypeName + "." + Call->Name + "/" + std::to_string(Args.size());
    record(State, Receiver.objectId(), Sig, Args);
    recordOnObjectArgs(State, Sig, Args);
    return unknownCallResult(&Receiver, Args);
  }

  if (Receiver.kind() == AVKind::TopObject) {
    // Calls on unknown-allocation objects: type the result via the model
    // when possible; no usage is recorded (Tobj has no usage set).
    if (const apimodel::ApiMethod *M =
            Api.lookupMethod(Receiver.typeName(), Call->Name,
                             static_cast<unsigned>(Args.size()))) {
      HandleRandomizedArg(M);
      recordOnObjectArgs(State, M->signature(), Args);
      return returnTypeToValue(M->ReturnType);
    }
    return unknownCallResult(&Receiver, Args);
  }

  return unknownCallResult(&Receiver, Args);
}

//===----------------------------------------------------------------------===//
// Driver
//===----------------------------------------------------------------------===//

AnalysisResult Engine::run(const CompilationUnit *Unit) {
  for (const ClassDecl *Class : Unit->Types)
    indexClasses(Class);
  collectCallTargets(Unit);

  AnalysisResult Result;
  for (const auto &[Class, Method] : findEntryMethods()) {
    Fuel = Opts.Fuel;
    ++Stats.Entries;

    ExecState Initial;
    Frame F;
    F.CurrentClass = Class;
    F.CallStack.push_back(Method);

    // Materialize a `this` instance (also for static entries, so field
    // initializers with allocation sites are analyzed exactly once per
    // entry). Past the object budget the entry runs without a tracked
    // receiver — degraded but deterministic.
    if (objectBudgetLeft()) {
      unsigned ThisId = Objects.getOrCreate(Class->getLoc(), Class->Name);
      F.ThisVal = (Method->Modifiers & ModStatic)
                      ? AbstractValue::null()
                      : AbstractValue::object(ThisId, Class->Name);
      initializeFields(Class, ThisId, Initial, F);
    } else {
      F.ThisVal = (Method->Modifiers & ModStatic)
                      ? AbstractValue::null()
                      : AbstractValue::topObject(Class->Name);
    }

    for (const ParamDecl &Param : Method->Params) {
      Initial.Locals[Param.Name] =
          coerce(AbstractValue::unknown(), Param.Type);
      Initial.LocalTypes[Param.Name] = Param.Type;
    }

    std::vector<ExecState> States;
    States.push_back(std::move(Initial));
    execStmt(Method->Body, States, F);
    Stats.StepsUsed += Opts.Fuel - Fuel;

    for (ExecState &State : States)
      if (!State.Log.empty())
        Result.Executions.push_back(std::move(State.Log));
  }
  Stats.ObjectsTracked = Objects.size();
  Result.Objects = std::move(Objects);
  Result.Stats = Stats;
  return Result;
}

} // namespace

AbstractInterpreter::AbstractInterpreter(const apimodel::CryptoApiModel &Api,
                                         AnalysisOptions Opts)
    : Api(Api), Opts(Opts) {}

AnalysisResult AbstractInterpreter::analyze(const CompilationUnit *Unit) {
  Engine E(Api, Opts);
  return E.run(Unit);
}
