//===- tests/test_printer.cpp - AstPrinter round-trip tests ----------------===//

#include "javaast/AstPrinter.h"
#include "javaast/Parser.h"

#include "corpus/Scenario.h"

#include <gtest/gtest.h>

using namespace diffcode;
using namespace diffcode::java;

namespace {

std::string printOf(std::string_view Source, bool *HadErrors = nullptr) {
  AstContext Ctx;
  DiagnosticsEngine Diags;
  CompilationUnit *Unit = parseJava(Source, Ctx, Diags);
  if (HadErrors)
    *HadErrors = Diags.hasErrors();
  AstPrinter Printer;
  return Printer.print(Unit);
}

/// print(parse(print(parse(S)))) == print(parse(S)) — the printer output
/// is a fixed point of the frontend.
void expectRoundTrip(std::string_view Source) {
  bool Errors1 = false, Errors2 = false;
  std::string Once = printOf(Source, &Errors1);
  EXPECT_FALSE(Errors1) << Source;
  std::string Twice = printOf(Once, &Errors2);
  EXPECT_FALSE(Errors2) << Once;
  EXPECT_EQ(Once, Twice);
}

} // namespace

TEST(Printer, SimpleClass) {
  std::string Out = printOf("class A { int x = 1; }");
  EXPECT_NE(Out.find("class A {"), std::string::npos);
  EXPECT_NE(Out.find("int x = 1;"), std::string::npos);
}

TEST(Printer, EscapesStrings) {
  std::string Out =
      printOf("class A { String s = \"a\\\"b\\\\c\\n\"; }");
  EXPECT_NE(Out.find("\\\""), std::string::npos);
  EXPECT_NE(Out.find("\\\\"), std::string::npos);
  EXPECT_NE(Out.find("\\n"), std::string::npos);
}

TEST(Printer, RoundTripStatements) {
  expectRoundTrip(
      "class A { void m(int n) { int x = 0; "
      "if (x < n) { x = x + 1; } else { x = 0; } "
      "while (x > 0) x--; "
      "for (int i = 0; i < n; i++) use(i); "
      "do { x = x + 2; } while (x < 5); "
      "try { risky(); } catch (Exception e) { log(e); } finally { done(); } "
      "return; } }");
}

TEST(Printer, RoundTripExpressions) {
  expectRoundTrip(
      "class A { int m(int a, int b) { "
      "int c = a * (b + 2) - -a % 3; "
      "boolean d = a < b && b <= c || !(a == b); "
      "int[] arr = new int[] { 1, 2, 3 }; "
      "arr[0] = arr[1]; "
      "String s = \"x\" + a + helper(b, c); "
      "Object o = (Object) s; "
      "int e = d ? a : b; "
      "return c + e; } }");
}

TEST(Printer, RoundTripCryptoUsage) {
  expectRoundTrip(
      "import javax.crypto.Cipher;\n"
      "class A { Cipher enc; "
      "void setKey(Key key, String iv) throws Exception { "
      "byte[] ivBytes = Hex.decodeHex(iv.toCharArray()); "
      "IvParameterSpec ivSpec = new IvParameterSpec(ivBytes); "
      "enc = Cipher.getInstance(\"AES/CBC/PKCS5Padding\"); "
      "enc.init(Cipher.ENCRYPT_MODE, key, ivSpec); } }");
}

TEST(Printer, RoundTripFieldsAndModifiers) {
  expectRoundTrip("public final class A extends B implements C {\n"
                  "  private static final String ALGO = \"AES\";\n"
                  "  protected byte[] buf;\n"
                  "  public A(int n) { buf = new byte[n]; }\n"
                  "}");
}

TEST(Printer, RoundTripNestedClass) {
  expectRoundTrip("class A { int x; class Inner { int y; void m() { y = 1; } "
                  "} void n() { x = 2; } }");
}

TEST(Printer, PrintExprStandalone) {
  AstContext Ctx;
  DiagnosticsEngine Diags;
  CompilationUnit *Unit =
      parseJava("class A { int x = 1 + 2 * 3; }", Ctx, Diags);
  AstPrinter Printer;
  std::string Out = Printer.printExpr(Unit->Types[0]->Fields[0]->Init);
  EXPECT_EQ(Out, "1 + (2 * 3)");
}

//===----------------------------------------------------------------------===//
// Property: every generated scenario parses cleanly and round-trips.
//===----------------------------------------------------------------------===//

struct ScenarioCase {
  unsigned KindIndex;
  bool Secure;
  unsigned StyleSeed;
};

class ScenarioRoundTrip : public ::testing::TestWithParam<ScenarioCase> {};

TEST_P(ScenarioRoundTrip, ParsesCleanAndRoundTrips) {
  ScenarioCase Case = GetParam();
  Rng R(Case.StyleSeed * 1337 + Case.KindIndex);
  corpus::ScenarioInstance Inst;
  Inst.Kind = static_cast<corpus::ScenarioKind>(Case.KindIndex);
  Inst.Details = corpus::drawDetails(Inst.Kind, R);
  Inst.Details.Secure = Case.Secure;
  Inst.StyleSeed = Case.StyleSeed * 7919 + 13;
  Inst.ClassName = "Sample";
  std::string Source = renderScenario(Inst, "com.example.test");

  bool Errors = false;
  std::string Printed = printOf(Source, &Errors);
  EXPECT_FALSE(Errors) << Source;
  EXPECT_FALSE(Printed.empty());
  expectRoundTrip(Source);
}

static std::vector<ScenarioCase> allScenarioCases() {
  std::vector<ScenarioCase> Cases;
  for (unsigned Kind = 0; Kind < corpus::NumScenarioKinds; ++Kind)
    for (bool Secure : {false, true})
      for (unsigned Seed : {1u, 2u, 3u})
        Cases.push_back({Kind, Secure, Seed});
  return Cases;
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, ScenarioRoundTrip, ::testing::ValuesIn(allScenarioCases()),
    [](const ::testing::TestParamInfo<ScenarioCase> &Info) {
      std::string Name = corpus::scenarioName(
          static_cast<corpus::ScenarioKind>(Info.param.KindIndex));
      for (char &C : Name)
        if (C == '-')
          C = '_';
      return Name + (Info.param.Secure ? "_secure_" : "_insecure_") +
             std::to_string(Info.param.StyleSeed);
    });
