# Empty compiler generated dependencies file for fig9_rule_catalog.
# This may be replaced when dependencies are built.
