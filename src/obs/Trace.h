//===- obs/Trace.h - Span-based tracing with Chrome trace_event output -----===//
//
// Part of the DiffCode project, a reproduction of "Inferring Crypto API
// Rules from Code Changes" (PLDI'18).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The tracing half of the observability layer: RAII \ref Span objects
/// record (name, start, duration) events into a \ref Tracer, which can
/// render them either as Chrome `trace_event` JSON (load the file in
/// chrome://tracing or Perfetto) or aggregate them into a per-stage
/// timing table.
///
/// Span names must be string literals (or otherwise outlive the tracer):
/// spans store the `const char *`, never copy, so entering a span is two
/// clock reads plus one short mutex-protected vector push on exit.
/// Foreign events ingested from other processes (\ref recordForeign)
/// arrive with wire-decoded names instead; those are interned into a
/// tracer-owned pool so the `const char *` contract still holds.
///
/// Cross-process stitching: every event carries a `Pid` lane (the
/// recording process), emitted as `pid` in the trace_event JSON so
/// Chrome/Perfetto render one lane per process. Workers ship completed
/// spans back over the exec wire; the coordinator aligns their
/// timestamps to its own epoch (both processes share CLOCK_MONOTONIC,
/// and the worker's absolute epoch travels in the Hello frame) and
/// ingests them with the worker's OS pid.
///
/// Determinism contract: raw events carry wall-clock timestamps and the
/// registration order of threads, both run-dependent, so the raw trace is
/// PerRun by construction. \ref Tracer::aggregate() sorts by name and
/// sums, so the *set of stage names and per-stage span counts* is
/// deterministic for a fixed pipeline input; the differential harness
/// compares exactly that projection.
///
//===----------------------------------------------------------------------===//

#ifndef DIFFCODE_OBS_TRACE_H
#define DIFFCODE_OBS_TRACE_H

#include <chrono>
#include <cstdint>
#include <mutex>
#include <set>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

namespace diffcode {
namespace obs {

/// Collects completed span events from any thread.
class Tracer {
public:
  /// One completed span.
  struct Event {
    const char *Name = nullptr;
    std::uint64_t StartNs = 0; ///< Nanoseconds since the tracer's epoch.
    std::uint64_t DurNs = 0;
    std::uint32_t Tid = 0; ///< Small per-tracer thread id (per-Pid lane).
    std::uint32_t Pid = 0; ///< OS pid of the recording process.
  };

  /// One row of the aggregated per-stage table.
  struct StageTotal {
    std::string Name;
    std::uint64_t Spans = 0;
    std::uint64_t TotalNs = 0;
  };

  Tracer();
  Tracer(const Tracer &) = delete;
  Tracer &operator=(const Tracer &) = delete;

  /// Nanoseconds since the tracer's construction (the trace epoch).
  std::uint64_t now() const;

  /// The trace epoch as absolute CLOCK_MONOTONIC nanoseconds. Two
  /// tracers on the same machine can align their timelines by offsetting
  /// event timestamps with the difference of their epochs — this is the
  /// value the exec Hello frame carries across the fork boundary.
  std::uint64_t epochSteadyNs() const;

  /// Records one completed span; called by Span's destructor.
  void record(const char *Name, std::uint64_t StartNs, std::uint64_t DurNs);

  /// Ingests one completed span from another process. \p StartNs must
  /// already be expressed in *this* tracer's timeline (the caller applies
  /// the epoch offset); \p Tid is the foreign process's own lane id and
  /// \p Pid its OS pid. The name is copied into a tracer-owned pool.
  void recordForeign(std::string_view Name, std::uint64_t StartNs,
                     std::uint64_t DurNs, std::uint32_t Tid,
                     std::uint32_t Pid);

  std::size_t eventCount() const;

  /// Copies events [Begin, eventCount()) — the worker-side telemetry
  /// shipper's "everything since the last flush" cursor read.
  std::vector<Event> eventsFrom(std::size_t Begin) const;

  /// Name-sorted totals: span count and summed duration per stage name.
  std::vector<StageTotal> aggregate() const;

  /// The collected events as a Chrome `trace_event` JSON document
  /// (complete "X" phase events; ts/dur in microseconds). Events are
  /// ordered by (ts, pid, tid, name) so the document is stable for a
  /// fixed event set.
  std::string traceJson() const;

private:
  std::uint32_t tidForThisThread();

  std::chrono::steady_clock::time_point Epoch;
  std::uint32_t SelfPid; ///< Stamped on locally recorded events.
  mutable std::mutex Mutex;
  std::vector<Event> Events;
  std::vector<std::thread::id> ThreadIds; ///< Index = small tid.
  /// Owned storage for foreign span names (set nodes never move, so the
  /// c_str stays valid for the tracer's lifetime; duplicates dedupe).
  std::set<std::string, std::less<>> ForeignNames;
};

/// RAII span: times the enclosing scope into \p T. A null tracer makes
/// the span a no-op — callers can unconditionally open spans and pay
/// nothing when observability is off.
class Span {
public:
  Span(Tracer *T, const char *Name)
      : T(T), Name(Name), StartNs(T ? T->now() : 0) {}
  Span(const Span &) = delete;
  Span &operator=(const Span &) = delete;
  ~Span() {
    if (T)
      T->record(Name, StartNs, T->now() - StartNs);
  }

private:
  Tracer *T;
  const char *Name;
  std::uint64_t StartNs;
};

} // namespace obs
} // namespace diffcode

#endif // DIFFCODE_OBS_TRACE_H
