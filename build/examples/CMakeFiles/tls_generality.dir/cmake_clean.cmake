file(REMOVE_RECURSE
  "CMakeFiles/tls_generality.dir/tls_generality.cpp.o"
  "CMakeFiles/tls_generality.dir/tls_generality.cpp.o.d"
  "tls_generality"
  "tls_generality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tls_generality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
