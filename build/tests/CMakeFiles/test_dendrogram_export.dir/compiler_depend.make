# Empty compiler generated dependencies file for test_dendrogram_export.
# This may be replaced when dependencies are built.
