//===- core/DiffCode.cpp ---------------------------------------------------===//

#include "core/DiffCode.h"

#include "cluster/ShardedClustering.h"
#include "exec/Supervisor.h"
#include "javaast/Parser.h"
#include "obs/Observer.h"
#include "support/ThreadPool.h"

#include <algorithm>
#include <chrono>
#include <exception>
#include <set>

using namespace diffcode;
using namespace diffcode::core;

const char *core::changeStatusName(ChangeStatus Status) {
  switch (Status) {
  case ChangeStatus::Ok:
    return "ok";
  case ChangeStatus::Degraded:
    return "degraded";
  case ChangeStatus::ParseError:
    return "parse-error";
  case ChangeStatus::BudgetExceeded:
    return "budget-exceeded";
  case ChangeStatus::AnalysisThrow:
    return "analysis-throw";
  case ChangeStatus::WorkerCrash:
    return "worker-crash";
  case ChangeStatus::WorkerTimeout:
    return "worker-timeout";
  case ChangeStatus::WorkerOom:
    return "worker-oom";
  }
  return "unknown";
}

bool core::changeStatusFromName(std::string_view Name, ChangeStatus &Out) {
  for (std::size_t I = 0; I < NumChangeStatuses; ++I) {
    ChangeStatus Status = static_cast<ChangeStatus>(I);
    if (Name == changeStatusName(Status)) {
      Out = Status;
      return true;
    }
  }
  return false;
}

std::size_t CorpusHealth::troubled() const {
  std::size_t N = 0;
  for (std::size_t I = 1; I < NumChangeStatuses; ++I)
    N += StatusCounts[I];
  return N;
}

void core::computeCorpusHealth(CorpusReport &Report, std::size_t MaxOffenders) {
  CorpusHealth Health;
  for (const ChangeRecord &Record : Report.Changes)
    ++Health.StatusCounts[static_cast<std::size_t>(Record.Status)];
  for (const ClassReport &Class : Report.PerClass)
    if (!Class.ClusteringError.empty())
      ++Health.ClusteringFailures;

  for (const ChangeRecord &Record : Report.Changes)
    if (Record.StepsUsed > 0)
      Health.WorstOffenders.push_back(WorstOffender{
          Record.Origin, Record.StepsUsed, Record.Status, Record.WallNanos});
  std::sort(Health.WorstOffenders.begin(), Health.WorstOffenders.end(),
            [](const WorstOffender &A, const WorstOffender &B) {
              if (A.Steps != B.Steps)
                return A.Steps > B.Steps;
              return A.Origin < B.Origin;
            });
  if (Health.WorstOffenders.size() > MaxOffenders)
    Health.WorstOffenders.resize(MaxOffenders);
  Report.Health = Health;
}

DiffCode::DiffCode(const apimodel::CryptoApiModel &Api)
    : DiffCode(Api, PipelineConfig()) {}

DiffCode::DiffCode(const apimodel::CryptoApiModel &Api, PipelineConfig Config)
    : Api(Api), Config(Config),
      DefaultLabels(std::make_shared<support::Interner>()) {}

support::Interner &DiffCode::internerFor(const PipelineRequest &Request) const {
  return Request.Labels ? *Request.Labels : *DefaultLabels;
}

DiffCode::SourceAnalysis
DiffCode::analyzeSourceChecked(std::string_view Source) const {
  java::AstContext Ctx;
  return analyzeSourceChecked(Source, Ctx);
}

DiffCode::SourceAnalysis
DiffCode::analyzeSourceChecked(std::string_view Source,
                               java::AstContext &Ctx) const {
  SourceAnalysis Out;
  if (Source.empty())
    return Out;
  Ctx.reset();
  java::DiagnosticsEngine Diags;
  java::CompilationUnit *Unit =
      java::parseJava(Source, Ctx, Diags, Config.Limits.Parse);
  auto FirstError = [&Diags]() -> std::string {
    for (const java::Diagnostic &D : Diags.all())
      if (D.Level == java::DiagLevel::Error)
        return D.str();
    return "unknown parse failure";
  };
  if (!Unit) {
    Out.Status = Diags.budgetExceeded() ? ChangeStatus::BudgetExceeded
                                        : ChangeStatus::ParseError;
    Out.Detail = FirstError();
    return Out;
  }
  analysis::AbstractInterpreter Interp(Api, Config.Limits.Analysis);
  Out.Result = Interp.analyze(Unit);
  if (Out.Result.Stats.anyBudgetHit()) {
    Out.Status = ChangeStatus::BudgetExceeded;
    Out.Detail = Out.Result.Stats.FuelExhausted ? "interpreter fuel exhausted"
                                                : "abstract-object cap hit";
  } else if (Diags.hasErrors()) {
    Out.Status = ChangeStatus::Degraded;
    Out.Detail = FirstError();
  }
  return Out;
}

std::vector<usage::UsageDag>
DiffCode::dagsForClass(const analysis::AnalysisResult &Result,
                       const std::string &TargetClass) const {
  std::vector<usage::UsageDag> Dags;
  std::set<std::string> Seen;
  for (const analysis::UsageLog &Log : Result.Executions) {
    for (const auto &[ObjId, Events] : Log) {
      if (Events.empty())
        continue;
      if (Result.Objects.get(ObjId).TypeName != TargetClass)
        continue;
      usage::UsageDag Dag =
          usage::UsageDag::build(Result.Objects, Log, ObjId, Config.Limits.DagDepth);
      if (Seen.insert(Dag.canonicalString()).second)
        Dags.push_back(std::move(Dag));
    }
  }
  return Dags;
}

std::vector<usage::UsageChange>
DiffCode::usageChangesFor(const corpus::CodeChange &Change,
                          const std::string &TargetClass) const {
  java::AstContext Ctx; // shared across both versions (reset in between)
  analysis::AnalysisResult OldResult =
      analyzeSourceChecked(Change.OldCode, Ctx).Result;
  analysis::AnalysisResult NewResult =
      analyzeSourceChecked(Change.NewCode, Ctx).Result;
  std::vector<usage::UsageChange> Changes = usage::deriveUsageChanges(
      dagsForClass(OldResult, TargetClass), dagsForClass(NewResult, TargetClass),
      TargetClass, *DefaultLabels);
  for (usage::UsageChange &C : Changes)
    C.Origin = Change.origin();
  return Changes;
}

ChangeRecord DiffCode::processChange(
    const corpus::CodeChange &Change,
    const std::vector<std::string> &TargetClasses,
    const std::vector<const rules::Rule *> &ClassifyWith) const {
  return processChange(Change, TargetClasses, ClassifyWith, *DefaultLabels);
}

ChangeRecord DiffCode::processChange(
    const corpus::CodeChange &Change,
    const std::vector<std::string> &TargetClasses,
    const std::vector<const rules::Rule *> &ClassifyWith,
    support::Interner &Table) const {
  return processChange(Change, TargetClasses, ClassifyWith, Table, nullptr);
}

ChangeRecord DiffCode::processChange(
    const corpus::CodeChange &Change,
    const std::vector<std::string> &TargetClasses,
    const std::vector<const rules::Rule *> &ClassifyWith,
    support::Interner &Table, obs::Registry *Reg) const {
  ChangeRecord Record;
  Record.Origin = Change.origin();
  Record.GroundTruthKind = Change.Kind;

  try {
    java::AstContext Ctx; // shared across both versions (reset in between)
    SourceAnalysis Old = analyzeSourceChecked(Change.OldCode, Ctx);
    SourceAnalysis New = analyzeSourceChecked(Change.NewCode, Ctx);

    // Worst of the two versions wins; keep the detail of the losing side.
    const SourceAnalysis &Worst = New.Status > Old.Status ? New : Old;
    Record.Status = Worst.Status;
    Record.StatusDetail = Worst.Detail;
    Record.StepsUsed =
        Old.Result.Stats.StepsUsed + New.Result.Stats.StepsUsed;

    if (Reg) {
      // All of these are pure functions of the change's source text, so
      // they stay in the deterministic snapshot projection.
      auto &Steps = Reg->histogram("analysis.steps_per_version");
      auto &Entries = Reg->histogram("analysis.entries_per_version");
      auto &Objects = Reg->histogram("analysis.objects_per_version");
      for (const SourceAnalysis *Side : {&Old, &New}) {
        Steps.record(Side->Result.Stats.StepsUsed);
        Entries.record(Side->Result.Stats.Entries);
        Objects.record(Side->Result.Stats.ObjectsTracked);
      }
      Reg->counter("analysis.steps_total").add(Record.StepsUsed);
      Reg->counter("analysis.fuel_exhausted")
          .add(unsigned(Old.Result.Stats.FuelExhausted) +
               unsigned(New.Result.Stats.FuelExhausted));
      Reg->counter("analysis.object_budget_hits")
          .add(unsigned(Old.Result.Stats.ObjectBudgetHit) +
               unsigned(New.Result.Stats.ObjectBudgetHit));
    }

    for (const std::string &TargetClass : TargetClasses) {
      std::vector<usage::UsageChange> Changes = usage::deriveUsageChanges(
          dagsForClass(Old.Result, TargetClass),
          dagsForClass(New.Result, TargetClass), TargetClass, Table);
      for (usage::UsageChange &C : Changes)
        C.Origin = Record.Origin;
      if (Reg && !Changes.empty())
        Reg->counter("usage.changes").add(Changes.size());
      if (!Changes.empty())
        Record.PerClass.emplace(TargetClass, std::move(Changes));
    }

    if (!ClassifyWith.empty()) {
      rules::UnitFacts OldFacts = rules::UnitFacts::from(Old.Result);
      rules::UnitFacts NewFacts = rules::UnitFacts::from(New.Result);
      for (const rules::Rule *R : ClassifyWith)
        Record.Classification.emplace(
            R->Id, rules::classifyChange(*R, OldFacts, NewFacts));
    }
  } catch (const std::exception &E) {
    // Containment: this change contributes nothing, but its slot in the
    // report survives with a structured status — the rest of the corpus
    // is unaffected.
    Record.PerClass.clear();
    Record.Classification.clear();
    Record.Status = ChangeStatus::AnalysisThrow;
    Record.StatusDetail = E.what();
    Record.StepsUsed = 0;
  } catch (...) {
    Record.PerClass.clear();
    Record.Classification.clear();
    Record.Status = ChangeStatus::AnalysisThrow;
    Record.StatusDetail = "unknown exception";
    Record.StepsUsed = 0;
  }
  return Record;
}

std::vector<ChangeRecord>
DiffCode::analyzeChanges(const PipelineRequest &Request) const {
  std::vector<ChangeRecord> Records(Request.Changes.size());

  // Each change is independent; workers claim indices from the pool's
  // shared cursor and write into their own slot, so the result order
  // (and therefore every downstream number) is identical to the serial
  // run for any thread count.
  unsigned Threads =
      std::min<unsigned>(support::resolveThreads(Config.Threads),
                         std::max<std::size_t>(Request.Changes.size(), 1));
  // Workers intern into one shared table concurrently; id *values* are
  // therefore scheduling dependent, which is fine — everything downstream
  // is id-value independent (support/Interner.h, determinism contract).
  support::Interner &Table = internerFor(Request);
  obs::Observer *Obs = Request.Metrics;
  obs::Registry *Reg = Obs ? &Obs->Metrics : nullptr;
  support::ThreadPool Pool(Threads, /*CollectStats=*/Obs != nullptr);
  Pool.parallelForChunked(
      Request.Changes.size(), 1, [&](std::size_t Begin, std::size_t Stop) {
        for (std::size_t I = Begin; I < Stop; ++I) {
          // Scope key = change index, so an armed fault plan hits the
          // same changes whether one thread or sixteen claim the work.
          support::FaultScope Scope(&Config.Faults, I);
          if (!Obs) {
            Records[I] = processChange(*Request.Changes[I],
                                       Request.TargetClasses,
                                       Request.ClassifyWith, Table);
            continue;
          }
          obs::Span S(&Obs->Trace, "processChange");
          auto T0 = std::chrono::steady_clock::now();
          Records[I] = processChange(*Request.Changes[I],
                                     Request.TargetClasses,
                                     Request.ClassifyWith, Table, Reg);
          Records[I].WallNanos = std::uint64_t(
              std::chrono::duration_cast<std::chrono::nanoseconds>(
                  std::chrono::steady_clock::now() - T0)
                  .count());
        }
      });
  if (Obs) {
    // Pool utilization. Everything except the batch count depends on
    // scheduling (chunk claims, wall time), hence PerRun.
    support::ThreadPool::Stats PS = Pool.statsSnapshot();
    auto &R = *Reg;
    R.counter("threadpool.batches").add(PS.Batches);
    R.counter("threadpool.chunks", obs::Unit::None, obs::Stability::PerRun)
        .add(PS.Chunks);
    R.counter("threadpool.queue_wait_ns", obs::Unit::Nanoseconds,
              obs::Stability::PerRun)
        .add(PS.QueueWaitNs);
    R.gauge("threadpool.threads", obs::Unit::None, obs::Stability::PerRun)
        .set(Pool.threadCount());
    auto &Busy = R.histogram("threadpool.worker_busy_ns",
                             obs::Unit::Nanoseconds, obs::Stability::PerRun);
    for (std::uint64_t Ns : PS.WorkerBusyNs)
      Busy.record(Ns);
  }
  return Records;
}

ClassReport DiffCode::filterClass(const std::vector<ChangeRecord> &Records,
                                  const std::string &TargetClass) const {
  ClassReport ClassOut;
  ClassOut.TargetClass = TargetClass;
  for (const ChangeRecord &Record : Records) {
    auto It = Record.PerClass.find(TargetClass);
    if (It == Record.PerClass.end())
      continue;
    ClassOut.AllChanges.insert(ClassOut.AllChanges.end(), It->second.begin(),
                               It->second.end());
  }
  ClassOut.Filtered = applyFilters(ClassOut.AllChanges);
  return ClassOut;
}

void DiffCode::clusterClass(ClassReport &Class) const {
  Class.Tree = cluster::Dendrogram();
  Class.ClusteringError.clear();
  Class.Sharding = cluster::ShardingStats();
  if (Class.Filtered.Kept.empty())
    return;
  // Scope key = class-name hash (FNV-1a), distinct from any change
  // index scope so campaigns can target clustering alone.
  std::uint64_t ClassKey = 0xcbf29ce484222325ull;
  for (char C : Class.TargetClass)
    ClassKey = (ClassKey ^ static_cast<unsigned char>(C)) * 0x100000001b3ull;
  support::FaultScope Scope(&Config.Faults, ClassKey);
  cluster::ClusteringOptions Engine = Config.clusteringOptions();
  try {
    if (Engine.Sharding.Enabled)
      Class.Tree = cluster::clusterUsageChangesSharded(
          Class.Filtered.Kept, Engine, &Class.Sharding);
    else
      Class.Tree = cluster::clusterUsageChanges(Class.Filtered.Kept, Engine);
  } catch (const std::exception &E) {
    Class.Tree = cluster::Dendrogram();
    Class.Sharding = cluster::ShardingStats();
    Class.ClusteringError = E.what();
  }
}

/// Folds one class's filter attrition and clustering shape into the
/// metrics registry. Counters accumulate across classes; shard sizes go
/// into one corpus-wide histogram.
static void recordClassMetrics(obs::Registry &R, const ClassReport &Class) {
  const FilterResult &F = Class.Filtered;
  R.counter("filter.input").add(F.Total);
  R.counter("filter.after_fsame").add(F.AfterSame);
  R.counter("filter.after_fadd").add(F.AfterAdd);
  R.counter("filter.after_frem").add(F.AfterRem);
  R.counter("filter.after_fdup").add(F.AfterDup);
  R.counter("cluster.leaves").add(Class.Tree.leafCount());
  if (!Class.ClusteringError.empty())
    R.counter("cluster.failures").add(1);
  const cluster::ShardingStats &Sh = Class.Sharding;
  if (Sh.NumShards > 0) {
    R.counter("cluster.shards").add(Sh.NumShards);
    R.counter("cluster.representatives").add(Sh.Representatives);
    auto &Sizes = R.histogram("cluster.shard_size");
    for (std::size_t Size : Sh.ShardSizes)
      Sizes.record(Size);
    // Concurrent per-shard matrices make the high-water mark
    // scheduling-dependent.
    R.gauge("cluster.peak_matrix_bytes", obs::Unit::Bytes,
            obs::Stability::PerRun)
        .max(std::int64_t(Sh.PeakMatrixBytes));
  }
}

CorpusReport DiffCode::run(const PipelineRequest &Request) const {
  PipelineRequest Effective = Request;
  if (Effective.Exec == ExecutionPolicy())
    Effective.Exec = Config.Exec;
  if (!Effective.Metrics)
    Effective.Metrics = Config.Metrics;
  if (Effective.Exec.Mode == ExecutionMode::Supervised)
    return runPipelineFrom(Effective, [&, this] {
      return exec::superviseChanges(*this, Effective);
    });
  return runPipelineFrom(Effective,
                         [&, this] { return analyzeChanges(Effective); });
}

CorpusReport DiffCode::runPipelineFrom(
    const PipelineRequest &Request,
    const std::function<std::vector<ChangeRecord>()> &Analyze) const {
  CorpusReport Report;
  Report.Labels = Request.Labels ? Request.Labels : DefaultLabels;
  obs::Observer *Obs = Request.Metrics;
  obs::Tracer *T = Obs ? &Obs->Trace : nullptr;
  {
    obs::Span Whole(T, "pipeline");
    {
      obs::Span S(T, "analyzeChanges");
      Report.Changes = Analyze();
    }
    for (const std::string &TargetClass : Request.TargetClasses) {
      ClassReport ClassOut;
      {
        obs::Span S(T, "filterClass");
        ClassOut = filterClass(Report.Changes, TargetClass);
      }
      if (Request.BuildDendrograms) {
        obs::Span S(T, "clusterClass");
        clusterClass(ClassOut);
      }
      if (Obs)
        recordClassMetrics(Obs->Metrics, ClassOut);
      Report.PerClass.push_back(std::move(ClassOut));
    }
    {
      obs::Span S(T, "computeCorpusHealth");
      computeCorpusHealth(Report);
    }
  }
  if (Obs) {
    auto &R = Obs->Metrics;
    R.counter("pipeline.changes").add(Report.Changes.size());
    R.counter("pipeline.classes").add(Report.PerClass.size());
    for (std::size_t I = 0; I < NumChangeStatuses; ++I)
      R.counter(std::string("pipeline.status.") +
                changeStatusName(static_cast<ChangeStatus>(I)))
          .add(Report.Health.StatusCounts[I]);
    R.counter("pipeline.clustering_failures")
        .add(Report.Health.ClusteringFailures);
    if (const support::FaultStats *FS = Config.Faults.Stats) {
      // A poisoned batch can abort mid-loop, so how many armed points
      // were even reached depends on scheduling: PerRun.
      for (unsigned I = 0; I < support::NumFaultSites; ++I) {
        auto Site = static_cast<support::FaultSite>(I);
        R.counter(std::string("faults.evaluated.") +
                      support::faultSiteName(Site),
                  obs::Unit::None, obs::Stability::PerRun)
            .add(FS->evaluated(Site));
        R.counter(std::string("faults.fired.") + support::faultSiteName(Site),
                  obs::Unit::None, obs::Stability::PerRun)
            .add(FS->fired(Site));
      }
    }
    Report.Metrics = Obs->summarize();
  }
  return Report;
}
