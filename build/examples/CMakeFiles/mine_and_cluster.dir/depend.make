# Empty dependencies file for mine_and_cluster.
# This may be replaced when dependencies are built.
