file(REMOVE_RECURSE
  "CMakeFiles/fig3_fig5_model_tables.dir/fig3_fig5_model_tables.cpp.o"
  "CMakeFiles/fig3_fig5_model_tables.dir/fig3_fig5_model_tables.cpp.o.d"
  "fig3_fig5_model_tables"
  "fig3_fig5_model_tables.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_fig5_model_tables.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
