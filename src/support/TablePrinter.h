//===- support/TablePrinter.h - Aligned console tables --------------------===//
//
// Part of the DiffCode project, a reproduction of "Inferring Crypto API
// Rules from Code Changes" (PLDI'18).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Minimal fixed-width table renderer used by the benchmark harnesses to
/// print the paper's figures as console tables.
///
//===----------------------------------------------------------------------===//

#ifndef DIFFCODE_SUPPORT_TABLEPRINTER_H
#define DIFFCODE_SUPPORT_TABLEPRINTER_H

#include <ostream>
#include <string>
#include <vector>

namespace diffcode {

/// Collects rows of cells and renders them with per-column alignment.
/// The first added row is treated as the header.
class TablePrinter {
public:
  explicit TablePrinter(std::vector<std::string> Header);

  /// Appends a data row; short rows are padded with empty cells.
  void addRow(std::vector<std::string> Cells);

  /// Renders the table to \p OS with a separator under the header.
  void print(std::ostream &OS) const;

private:
  std::vector<std::vector<std::string>> Rows;
  std::size_t NumCols;
};

} // namespace diffcode

#endif // DIFFCODE_SUPPORT_TABLEPRINTER_H
