//===- tests/test_visitor.cpp - AstVisitor tests ---------------------------===//

#include "javaast/AstVisitor.h"
#include "javaast/Parser.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

using namespace diffcode;
using namespace diffcode::java;

namespace {

struct Parsed {
  AstContext Ctx;
  DiagnosticsEngine Diags;
  CompilationUnit *Unit = nullptr;
};

std::unique_ptr<Parsed> parse(std::string_view Source) {
  auto P = std::make_unique<Parsed>();
  P->Unit = parseJava(Source, P->Ctx, P->Diags);
  EXPECT_FALSE(P->Diags.hasErrors());
  return P;
}

/// Records everything it sees.
class RecordingVisitor : public AstVisitor {
public:
  std::vector<std::string> Calls;
  std::vector<std::string> News;
  std::set<std::string> Names;
  unsigned Classes = 0, Methods = 0, Fields = 0, Stmts = 0, Exprs = 0,
           Literals = 0;

protected:
  bool visitClass(const ClassDecl &) override {
    ++Classes;
    return true;
  }
  bool visitMethod(const MethodDecl &) override {
    ++Methods;
    return true;
  }
  bool visitField(const FieldDecl &) override {
    ++Fields;
    return true;
  }
  bool visitStmt(const Stmt &) override {
    ++Stmts;
    return true;
  }
  bool visitExpr(const Expr &) override {
    ++Exprs;
    return true;
  }
  bool visitCall(const MethodCallExpr &Call) override {
    Calls.push_back(Call.Name);
    return true;
  }
  bool visitNewObject(const NewObjectExpr &New) override {
    News.push_back(New.Type.baseName());
    return true;
  }
  bool visitName(const NameExpr &Name) override {
    Names.insert(Name.Name);
    return true;
  }
  bool visitLiteral(const Expr &) override {
    ++Literals;
    return true;
  }
};

} // namespace

TEST(AstVisitor, WalksWholeProgram) {
  auto P = parse(
      "class A { int x = 1; "
      "void m(byte[] b) throws Exception { "
      "Cipher c = Cipher.getInstance(\"AES\"); "
      "c.init(Cipher.ENCRYPT_MODE, new SecretKeySpec(b, \"AES\")); "
      "if (x > 0) { helper(x); } } "
      "void helper(int n) { } "
      "class Inner { int y; } }");
  RecordingVisitor V;
  V.walk(P->Unit);
  EXPECT_EQ(V.Classes, 2u);
  EXPECT_EQ(V.Methods, 2u);
  EXPECT_EQ(V.Fields, 2u); // x and y
  ASSERT_EQ(V.Calls.size(), 3u);
  EXPECT_EQ(V.Calls[0], "getInstance");
  EXPECT_EQ(V.Calls[1], "init");
  EXPECT_EQ(V.Calls[2], "helper");
  ASSERT_EQ(V.News.size(), 1u);
  EXPECT_EQ(V.News[0], "SecretKeySpec");
  EXPECT_TRUE(V.Names.count("x"));
  EXPECT_TRUE(V.Names.count("b"));
  EXPECT_GT(V.Literals, 0u);
  EXPECT_GT(V.Stmts, 3u);
  EXPECT_GT(V.Exprs, 5u);
}

TEST(AstVisitor, NullAndEmptyAreSafe) {
  RecordingVisitor V;
  V.walk(nullptr);
  auto P = parse("");
  V.walk(P->Unit);
  EXPECT_EQ(V.Classes, 0u);
}

TEST(AstVisitor, PruningStopsDescent) {
  class PruningVisitor : public AstVisitor {
  public:
    unsigned CallsSeen = 0;

  protected:
    bool visitMethod(const MethodDecl &M) override {
      return M.Name != "skipped"; // do not descend into `skipped`
    }
    bool visitCall(const MethodCallExpr &) override {
      ++CallsSeen;
      return true;
    }
  };
  auto P = parse("class A { void skipped() { a(); b(); } "
                 "void kept() { c(); } }");
  PruningVisitor V;
  V.walk(P->Unit);
  EXPECT_EQ(V.CallsSeen, 1u);
}

TEST(AstVisitor, CallArgumentsVisited) {
  auto P = parse("class A { void m() { outer(inner(1), 2); } }");
  RecordingVisitor V;
  V.walk(P->Unit);
  ASSERT_EQ(V.Calls.size(), 2u);
  EXPECT_EQ(V.Calls[0], "outer"); // preorder
  EXPECT_EQ(V.Calls[1], "inner");
}

TEST(AstVisitor, WalksAllStatementForms) {
  auto P = parse(
      "class A { void m(int n) { "
      "for (int i = 0; i < n; i++) { use(i); } "
      "while (n > 0) { n--; } "
      "do { n++; } while (n < 5); "
      "try { risky(); } catch (Exception e) { log(e); } finally { done(); } "
      "switch (n) { case 1: one(); break; default: other(); } "
      "throw new Error(); } }");
  RecordingVisitor V;
  V.walk(P->Unit);
  std::set<std::string> CallSet(V.Calls.begin(), V.Calls.end());
  for (const char *Name :
       {"use", "risky", "log", "done", "one", "other"})
    EXPECT_TRUE(CallSet.count(Name)) << Name;
  EXPECT_EQ(V.News.size(), 1u); // new Error()
}

TEST(AstVisitor, WalkStartingAtSubtree) {
  auto P = parse("class A { void m() { a(); } void n() { b(); } }");
  RecordingVisitor V;
  V.walk(P->Unit->Types[0]->Methods[1]); // only n()
  ASSERT_EQ(V.Calls.size(), 1u);
  EXPECT_EQ(V.Calls[0], "b");
}
