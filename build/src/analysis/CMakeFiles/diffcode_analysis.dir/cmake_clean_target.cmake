file(REMOVE_RECURSE
  "libdiffcode_analysis.a"
)
