//===- rules/CryptoChecker.h - The CryptoChecker tool (Section 6.4) --------===//
//
// Part of the DiffCode project, a reproduction of "Inferring Crypto API
// Rules from Code Changes" (PLDI'18).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// CryptoChecker evaluates a rule set against whole projects (sets of
/// analyzed compilation units) and reports, per rule, applicability and
/// matches plus the concrete violating allocation sites — the data behind
/// Figure 10.
///
//===----------------------------------------------------------------------===//

#ifndef DIFFCODE_RULES_CRYPTOCHECKER_H
#define DIFFCODE_RULES_CRYPTOCHECKER_H

#include "rules/Rule.h"

#include <string>
#include <vector>

namespace diffcode {
namespace rules {

/// One concrete violation: which rule, where.
struct Violation {
  std::string RuleId;
  std::string TypeName;
  std::string SiteLabel; ///< "l<line>" of the violating allocation site.
  unsigned UnitIndex = 0;
};

/// Per-rule project verdict.
struct RuleVerdict {
  std::string RuleId;
  bool Applicable = false;
  bool Matched = false;
  std::vector<Violation> Violations;
};

/// Whole-project report.
struct ProjectReport {
  std::vector<RuleVerdict> Verdicts;

  bool anyMatch() const {
    for (const RuleVerdict &V : Verdicts)
      if (V.Matched)
        return true;
    return false;
  }
};

/// The checker: a rule set applied to analyzed projects.
class CryptoChecker {
public:
  /// Uses the full elicited rule set R1-R13 by default.
  CryptoChecker();
  explicit CryptoChecker(std::vector<Rule> Rules);

  const std::vector<Rule> &rules() const { return Rules; }

  /// Checks one project (a set of analyzed units plus metadata).
  ProjectReport checkProject(const std::vector<UnitFacts> &Units,
                             const ProjectMetadata &Meta =
                                 ProjectMetadata()) const;

private:
  /// Collects the violating sites of a matched rule (positive clauses
  /// only; negated clauses have no site to report).
  std::vector<Violation>
  collectViolations(const Rule &R, const std::vector<UnitFacts> &Units) const;

  std::vector<Rule> Rules;
};

} // namespace rules
} // namespace diffcode

#endif // DIFFCODE_RULES_CRYPTOCHECKER_H
