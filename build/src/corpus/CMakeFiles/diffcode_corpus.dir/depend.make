# Empty dependencies file for diffcode_corpus.
# This may be replaced when dependencies are built.
