# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_support[1]_include.cmake")
include("/root/repo/build/tests/test_lexer[1]_include.cmake")
include("/root/repo/build/tests/test_parser[1]_include.cmake")
include("/root/repo/build/tests/test_printer[1]_include.cmake")
include("/root/repo/build/tests/test_apimodel[1]_include.cmake")
include("/root/repo/build/tests/test_abstract_value[1]_include.cmake")
include("/root/repo/build/tests/test_interpreter[1]_include.cmake")
include("/root/repo/build/tests/test_usage_dag[1]_include.cmake")
include("/root/repo/build/tests/test_usage_change[1]_include.cmake")
include("/root/repo/build/tests/test_distance[1]_include.cmake")
include("/root/repo/build/tests/test_clustering[1]_include.cmake")
include("/root/repo/build/tests/test_filters[1]_include.cmake")
include("/root/repo/build/tests/test_rules[1]_include.cmake")
include("/root/repo/build/tests/test_classifier[1]_include.cmake")
include("/root/repo/build/tests/test_corpus[1]_include.cmake")
include("/root/repo/build/tests/test_diffcode_integration[1]_include.cmake")
include("/root/repo/build/tests/test_tls_generality[1]_include.cmake")
include("/root/repo/build/tests/test_cluster_suggestion[1]_include.cmake")
include("/root/repo/build/tests/test_json[1]_include.cmake")
include("/root/repo/build/tests/test_scenarios[1]_include.cmake")
include("/root/repo/build/tests/test_dendrogram_export[1]_include.cmake")
include("/root/repo/build/tests/test_visitor[1]_include.cmake")
include("/root/repo/build/tests/test_corpus_io[1]_include.cmake")
include("/root/repo/build/tests/test_interpreter_strings[1]_include.cmake")
include("/root/repo/build/tests/test_robustness[1]_include.cmake")
include("/root/repo/build/tests/test_printer_statements[1]_include.cmake")
include("/root/repo/build/tests/test_misc_coverage[1]_include.cmake")
