# Empty compiler generated dependencies file for test_printer_statements.
# This may be replaced when dependencies are built.
