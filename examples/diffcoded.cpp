//===- examples/diffcoded.cpp - The incremental analysis daemon ------------===//
//
// Part of the DiffCode project, a reproduction of "Inferring Crypto API
// Rules from Code Changes" (PLDI'18).
//
//===----------------------------------------------------------------------===//
//
// The long-lived service front end (DESIGN.md "Service mode and the
// session API"):
//
//   diffcoded <socket-path> [--threads <n>] [--max-cached <n>]
//             [--metrics] [--trace-out=<file>]
//
// binds a UNIX socket, keeps one AnalysisSession alive, and answers
// framed Ingest/Query/Snapshot/Shutdown requests until a client asks it
// to stop. Clients are `diffcode_cli connect <socket-path> ...` or
// anything speaking service/Protocol.h over the socket. Connections are
// served sequentially — the session's incremental caches are the point,
// not concurrency — so a corpus streamed in commit-sized ingests
// re-analyzes only what each commit touched.
//
// --metrics runs the daemon observed: session counters accumulate and
// `diffcode_cli connect <socket> --query metrics` introspects the live
// snapshot without disturbing the session. --trace-out=<file> (implies
// --metrics) flushes the span trace as Chrome trace_event JSON when the
// daemon shuts down.
//
//===----------------------------------------------------------------------===//

#include "service/Server.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

using namespace diffcode;

int main(int argc, char **argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: diffcoded <socket-path> [--threads <n>] "
                 "[--max-cached <n>]\n"
                 "                 [--metrics] [--trace-out=<file>]\n");
    return 2;
  }
  std::string SocketPath = argv[1];
  service::SessionOptions Opts;
  Opts.Config.Threads = 0; // one analysis worker per hardware thread
  bool Metrics = false;
  std::string TraceOut;
  for (int I = 2; I < argc; ++I) {
    if (std::strcmp(argv[I], "--threads") == 0 && I + 1 < argc) {
      Opts.Config.Threads =
          static_cast<unsigned>(std::strtoul(argv[++I], nullptr, 10));
    } else if (std::strcmp(argv[I], "--max-cached") == 0 && I + 1 < argc) {
      Opts.MaxCachedChanges = std::strtoull(argv[++I], nullptr, 10);
    } else if (std::strcmp(argv[I], "--metrics") == 0) {
      Metrics = true;
    } else if (std::strncmp(argv[I], "--trace-out=", 12) == 0) {
      TraceOut = argv[I] + 12;
      if (TraceOut.empty()) {
        std::fprintf(stderr, "error: --trace-out needs a file\n");
        return 2;
      }
      Metrics = true;
    } else {
      std::fprintf(stderr, "error: unknown flag %s\n", argv[I]);
      return 2;
    }
  }

  // Must outlive the Server: ingests record into it, StatsReq reads it.
  obs::Observer Obs;
  if (Metrics)
    Opts.Metrics = &Obs;

  std::string Error;
  int ListenFd = service::listenUnix(SocketPath, &Error);
  if (ListenFd < 0) {
    std::fprintf(stderr, "error: %s\n", Error.c_str());
    return 1;
  }
  service::Server S(apimodel::CryptoApiModel::javaCryptoApi(),
                    std::move(Opts));
  std::fprintf(stderr, "diffcoded: serving on %s\n", SocketPath.c_str());
  int Code = service::serveUnix(S, ListenFd);
  std::remove(SocketPath.c_str());
  if (!TraceOut.empty()) {
    std::ofstream Out(TraceOut);
    if (!Out) {
      std::fprintf(stderr, "error: cannot write %s\n", TraceOut.c_str());
      return 1;
    }
    Out << Obs.Trace.traceJson() << '\n';
    std::fprintf(stderr, "diffcoded: trace written to %s (%zu events)\n",
                 TraceOut.c_str(), Obs.Trace.eventCount());
  }
  return Code;
}
