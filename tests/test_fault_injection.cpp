//===- tests/test_fault_injection.cpp - Pipeline fault containment ---------===//
//
// The differential harness for the fault-isolation layer:
//
//   * a disabled fault plan reproduces today's pipeline output bit for
//     bit (the injection points are free when unarmed);
//   * an armed campaign still yields a complete CorpusReport — every
//     mined change keeps its slot, failures become structured statuses,
//     and the result is byte-identical at any thread count;
//   * changes the campaign did not hit are byte-identical to the clean
//     run, i.e. containment is really per change.
//
//===----------------------------------------------------------------------===//

#include "core/DiffCode.h"
#include "core/ReportWriter.h"
#include "corpus/CorpusGenerator.h"
#include "corpus/Miner.h"
#include "support/FaultInjection.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

using namespace diffcode;
using namespace diffcode::core;

namespace {

const apimodel::CryptoApiModel &api() {
  return apimodel::CryptoApiModel::javaCryptoApi();
}

/// Shared corpus + clean baseline, built once for the whole suite.
struct Env {
  corpus::Corpus C;
  std::vector<const corpus::CodeChange *> Mined;
  CorpusReport Baseline;
  std::string BaselineJson;
};

const Env &env() {
  static Env *E = [] {
    Env *Out = new Env;
    corpus::CorpusOptions Opts;
    Opts.Seed = 61;
    Opts.NumProjects = 8;
    Out->C = corpus::CorpusGenerator(Opts).generate();
    corpus::Miner M(api());
    Out->Mined = M.mine(Out->C);
    Out->Baseline = DiffCode(api()).run(
        {.Changes = Out->Mined, .TargetClasses = api().targetClasses()});
    Out->BaselineJson = corpusReportToJson(Out->Baseline);
    return Out;
  }();
  return *E;
}

CorpusReport runWithPlan(const support::FaultPlan &Plan, unsigned Threads,
                         unsigned ClusterThreads = 1) {
  PipelineConfig Opts;
  Opts.Threads = Threads;
  Opts.Clustering.Threads = ClusterThreads;
  Opts.Faults = Plan;
  return DiffCode(api(), Opts).run(
      {.Changes = env().Mined, .TargetClasses = api().targetClasses()});
}

} // namespace

TEST(FaultHarness, DisabledPlanIsBitIdenticalToBaseline) {
  // Rate 0 means "production run" no matter what seed/mask say.
  support::FaultPlan Plan;
  Plan.Seed = 99;
  Plan.Rate = 0.0;
  for (unsigned Threads : {1u, 4u})
    EXPECT_EQ(env().BaselineJson, corpusReportToJson(runWithPlan(
                                      Plan, Threads, Threads)));
  EXPECT_EQ(env().Baseline.Health.troubled() +
                env().Baseline.Health.count(ChangeStatus::Ok),
            env().Baseline.Changes.size());
}

TEST(FaultHarness, ArmedCampaignYieldsCompleteDeterministicReport) {
  support::FaultPlan Plan;
  Plan.Seed = 77;
  Plan.Rate = 0.001;

  CorpusReport Serial = runWithPlan(Plan, 1);
  std::string SerialJson = corpusReportToJson(Serial);

  // Complete: every mined change still has its slot.
  ASSERT_EQ(Serial.Changes.size(), env().Mined.size());
  for (std::size_t I = 0; I < Serial.Changes.size(); ++I)
    EXPECT_EQ(Serial.Changes[I].Origin, env().Mined[I]->origin());

  // The campaign actually hit something, and containment turned every
  // hit into a structured status rather than an aborted run.
  std::size_t Thrown = Serial.Health.count(ChangeStatus::AnalysisThrow);
  EXPECT_GT(Thrown, 0u);
  EXPECT_LT(Thrown, Serial.Changes.size());
  for (const ChangeRecord &Record : Serial.Changes)
    if (Record.Status == ChangeStatus::AnalysisThrow) {
      EXPECT_NE(Record.StatusDetail.find("injected fault"),
                std::string::npos)
          << Record.Origin << ": " << Record.StatusDetail;
      EXPECT_TRUE(Record.PerClass.empty());
    }

  // Health bookkeeping is consistent with the records.
  std::size_t Counted = 0;
  for (std::size_t I = 0; I < NumChangeStatuses; ++I)
    Counted += Serial.Health.StatusCounts[I];
  EXPECT_EQ(Counted, Serial.Changes.size());

  // Deterministic: the same campaign lands on the same changes at any
  // thread count, byte for byte.
  for (unsigned Threads : {2u, 8u})
    EXPECT_EQ(SerialJson,
              corpusReportToJson(runWithPlan(Plan, Threads, Threads)))
        << "thread count " << Threads;
}

TEST(FaultHarness, UnfaultedChangesMatchCleanRunByteForByte) {
  support::FaultPlan Plan;
  Plan.Seed = 77;
  Plan.Rate = 0.001;
  CorpusReport Faulted = runWithPlan(Plan, 4, 4);
  ASSERT_EQ(Faulted.Changes.size(), env().Baseline.Changes.size());
  std::size_t Unfaulted = 0;
  for (std::size_t I = 0; I < Faulted.Changes.size(); ++I) {
    if (Faulted.Changes[I].Status == ChangeStatus::AnalysisThrow)
      continue;
    ++Unfaulted;
    EXPECT_EQ(changeRecordToJson(Faulted.Changes[I]),
              changeRecordToJson(env().Baseline.Changes[I]))
        << env().Baseline.Changes[I].Origin;
  }
  EXPECT_GT(Unfaulted, 0u);
}

TEST(FaultHarness, ClusteringFaultLeavesChangeRecordsIntact) {
  // Arm only the clustering site at rate 1: every agglomeration fails,
  // per-change processing is untouched.
  support::FaultPlan Plan;
  Plan.Seed = 5;
  Plan.Rate = 1.0;
  Plan.SiteMask = support::faultSiteBit(support::FaultSite::Clustering);

  CorpusReport Report = runWithPlan(Plan, 2, 2);
  ASSERT_EQ(Report.Changes.size(), env().Baseline.Changes.size());
  for (std::size_t I = 0; I < Report.Changes.size(); ++I)
    EXPECT_EQ(changeRecordToJson(Report.Changes[I]),
              changeRecordToJson(env().Baseline.Changes[I]));

  // Every class whose dendrogram needs at least one merge fails; its
  // filter results survive and the error is recorded.
  std::size_t ExpectFailures = 0;
  for (const ClassReport &Class : env().Baseline.PerClass)
    if (Class.Filtered.Kept.size() >= 2)
      ++ExpectFailures;
  ASSERT_GT(ExpectFailures, 0u) << "corpus too small to exercise clustering";
  EXPECT_EQ(Report.Health.ClusteringFailures, ExpectFailures);

  ASSERT_EQ(Report.PerClass.size(), env().Baseline.PerClass.size());
  for (std::size_t I = 0; I < Report.PerClass.size(); ++I) {
    const ClassReport &Class = Report.PerClass[I];
    const ClassReport &Clean = env().Baseline.PerClass[I];
    EXPECT_EQ(Class.Filtered.Kept.size(), Clean.Filtered.Kept.size());
    if (Clean.Filtered.Kept.size() >= 2) {
      EXPECT_TRUE(Class.Tree.nodes().empty()) << Class.TargetClass;
      EXPECT_NE(Class.ClusteringError.find("injected fault"),
                std::string::npos)
          << Class.TargetClass;
    } else {
      EXPECT_TRUE(Class.ClusteringError.empty()) << Class.TargetClass;
    }
  }

  // Still deterministic across thread counts.
  EXPECT_EQ(corpusReportToJson(Report),
            corpusReportToJson(runWithPlan(Plan, 8, 8)));
}

TEST(FaultHarness, SeedSelectsDifferentVictims) {
  support::FaultPlan A;
  A.Seed = 1;
  A.Rate = 0.001;
  support::FaultPlan B = A;
  B.Seed = 2;
  CorpusReport RA = runWithPlan(A, 2);
  CorpusReport RB = runWithPlan(B, 2);
  std::vector<std::string> VictimsA, VictimsB;
  for (const ChangeRecord &R : RA.Changes)
    if (R.Status == ChangeStatus::AnalysisThrow)
      VictimsA.push_back(R.Origin);
  for (const ChangeRecord &R : RB.Changes)
    if (R.Status == ChangeStatus::AnalysisThrow)
      VictimsB.push_back(R.Origin);
  EXPECT_NE(VictimsA, VictimsB);
}
