//===- tests/test_scenarios.cpp - Per-scenario correctness suite -----------===//
//
// Parameterized over every scenario kind x style: the insecure variant
// must violate its rule, the secure variant must not, the insecure->secure
// change must classify as a fix, and its usage change must survive the
// filters. This is the generator/analyzer/rules contract that every
// figure benchmark rests on.
//
//===----------------------------------------------------------------------===//

#include "core/DiffCode.h"
#include "corpus/Scenario.h"
#include "rules/BuiltinRules.h"
#include "rules/ChangeClassifier.h"

#include <gtest/gtest.h>

using namespace diffcode;

namespace {

struct ScenarioParam {
  unsigned KindIndex;
  unsigned Seed;
};

class ScenarioContract : public ::testing::TestWithParam<ScenarioParam> {
protected:
  corpus::ScenarioKind kind() const {
    return static_cast<corpus::ScenarioKind>(GetParam().KindIndex);
  }

  corpus::ScenarioInstance makeInstance(bool Secure) const {
    Rng R(GetParam().Seed * 7919 + GetParam().KindIndex);
    corpus::ScenarioInstance Inst;
    Inst.Kind = kind();
    Inst.Details = corpus::drawDetails(Inst.Kind, R);
    Inst.Details.Secure = Secure;
    Inst.StyleSeed = GetParam().Seed * 104729 + 5;
    Inst.ClassName = "Contract";
    Inst.PairEncDec =
        Inst.Kind == corpus::ScenarioKind::BlockCipher && R.chance(0.35);
    return Inst;
  }

  rules::ProjectMetadata meta() const {
    rules::ProjectMetadata Meta;
    Meta.IsAndroid = true; // make R6 applicable
    Meta.MinSdkVersion = 18;
    Meta.HasLinuxPrngFix = false;
    return Meta;
  }
};

std::string paramName(const ::testing::TestParamInfo<ScenarioParam> &Info) {
  std::string Name = corpus::scenarioName(
      static_cast<corpus::ScenarioKind>(Info.param.KindIndex));
  for (char &C : Name)
    if (C == '-')
      C = '_';
  return Name + "_s" + std::to_string(Info.param.Seed);
}

std::vector<ScenarioParam> allParams() {
  std::vector<ScenarioParam> Params;
  for (unsigned Kind = 0; Kind < corpus::NumScenarioKinds; ++Kind)
    for (unsigned Seed : {1u, 2u})
      Params.push_back({Kind, Seed});
  return Params;
}

} // namespace

TEST_P(ScenarioContract, InsecureViolatesItsRuleSecureDoesNot) {
  const rules::Rule *R = rules::findRule(corpus::scenarioRuleId(kind()));
  ASSERT_NE(R, nullptr);
  core::DiffCode System(apimodel::CryptoApiModel::javaCryptoApi());

  std::string Insecure =
      renderScenario(makeInstance(false), "com.example.contract");
  std::string Secure =
      renderScenario(makeInstance(true), "com.example.contract");

  analysis::AnalysisResult InsecureResult = System.analyzeSourceChecked(Insecure).Result;
  analysis::AnalysisResult SecureResult = System.analyzeSourceChecked(Secure).Result;
  rules::UnitFacts InsecureFacts = rules::UnitFacts::from(InsecureResult);
  rules::UnitFacts SecureFacts = rules::UnitFacts::from(SecureResult);

  EXPECT_TRUE(rules::ruleMatches(*R, {InsecureFacts}, meta()))
      << R->Id << "\n" << Insecure;
  EXPECT_FALSE(rules::ruleMatches(*R, {SecureFacts}, meta()))
      << R->Id << "\n" << Secure;
}

TEST_P(ScenarioContract, FixClassifiesAsSecurityFix) {
  const rules::Rule *R = rules::findRule(corpus::scenarioRuleId(kind()));
  core::DiffCode System(apimodel::CryptoApiModel::javaCryptoApi());
  analysis::AnalysisResult OldResult =
      System
          .analyzeSourceChecked(
              renderScenario(makeInstance(false), "com.example.contract"))
          .Result;
  analysis::AnalysisResult NewResult =
      System
          .analyzeSourceChecked(
              renderScenario(makeInstance(true), "com.example.contract"))
          .Result;
  EXPECT_EQ(rules::classifyChange(*R, rules::UnitFacts::from(OldResult),
                                  rules::UnitFacts::from(NewResult), meta()),
            rules::ChangeClass::SecurityFix)
      << R->Id;
}

TEST_P(ScenarioContract, FixSurvivesFiltersForSomeTargetClass) {
  core::DiffCode System(apimodel::CryptoApiModel::javaCryptoApi());
  corpus::CodeChange Change;
  Change.OldCode = renderScenario(makeInstance(false), "com.example.contract");
  Change.NewCode = renderScenario(makeInstance(true), "com.example.contract");

  bool Survives = false;
  for (const std::string &Target :
       apimodel::CryptoApiModel::javaCryptoApi().targetClasses())
    for (const usage::UsageChange &UC :
         System.usageChangesFor(Change, Target))
      Survives = Survives || core::classifySolo(UC) == core::FilterStage::Kept;
  EXPECT_TRUE(Survives) << Change.OldCode << "\n====\n" << Change.NewCode;
}

TEST_P(ScenarioContract, RestyleIsNonSemantic) {
  core::DiffCode System(apimodel::CryptoApiModel::javaCryptoApi());
  corpus::ScenarioInstance Inst = makeInstance(false);
  corpus::CodeChange Change;
  Change.OldCode = renderScenario(Inst, "com.example.contract");
  Inst.StyleSeed ^= 0xdeadbeef;
  Change.NewCode = renderScenario(Inst, "com.example.contract");

  for (const std::string &Target :
       apimodel::CryptoApiModel::javaCryptoApi().targetClasses())
    for (const usage::UsageChange &UC :
         System.usageChangesFor(Change, Target))
      EXPECT_EQ(core::classifySolo(UC), core::FilterStage::FSame)
          << Target << "\n" << UC.str();
}

INSTANTIATE_TEST_SUITE_P(AllKinds, ScenarioContract,
                         ::testing::ValuesIn(allParams()), paramName);
