file(REMOVE_RECURSE
  "libdiffcode_rules.a"
)
