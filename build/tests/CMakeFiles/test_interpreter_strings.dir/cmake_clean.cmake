file(REMOVE_RECURSE
  "CMakeFiles/test_interpreter_strings.dir/test_interpreter_strings.cpp.o"
  "CMakeFiles/test_interpreter_strings.dir/test_interpreter_strings.cpp.o.d"
  "test_interpreter_strings"
  "test_interpreter_strings.pdb"
  "test_interpreter_strings[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_interpreter_strings.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
