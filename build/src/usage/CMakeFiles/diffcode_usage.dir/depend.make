# Empty dependencies file for diffcode_usage.
# This may be replaced when dependencies are built.
