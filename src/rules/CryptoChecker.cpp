//===- rules/CryptoChecker.cpp ---------------------------------------------===//

#include "rules/CryptoChecker.h"

#include "rules/BuiltinRules.h"

using namespace diffcode;
using namespace diffcode::rules;

CryptoChecker::CryptoChecker() : Rules(elicitedRules()) {}

CryptoChecker::CryptoChecker(std::vector<Rule> Rules)
    : Rules(std::move(Rules)) {}

std::vector<Violation>
CryptoChecker::collectViolations(const Rule &R,
                                 const std::vector<UnitFacts> &Units) const {
  std::vector<Violation> Out;
  for (const Rule::Clause &Clause : R.Clauses) {
    if (Clause.Negated)
      continue;
    for (unsigned UnitIndex = 0; UnitIndex < Units.size(); ++UnitIndex) {
      const UnitFacts &Facts = Units[UnitIndex];
      for (const auto &[ObjId, Events] : Facts.Merged) {
        const analysis::AbstractObject &Obj = Facts.Objects->get(ObjId);
        if (Obj.TypeName != Clause.TypeName)
          continue;
        if (Clause.Formula.eval(Events))
          Out.push_back({R.Id, Obj.TypeName, Obj.siteLabel(), UnitIndex});
      }
    }
  }
  return Out;
}

ProjectReport
CryptoChecker::checkProject(const std::vector<UnitFacts> &Units,
                            const ProjectMetadata &Meta) const {
  ProjectReport Report;
  for (const Rule &R : Rules) {
    RuleVerdict Verdict;
    Verdict.RuleId = R.Id;
    Verdict.Applicable = ruleApplicable(R, Units, Meta);
    if (Verdict.Applicable && ruleMatches(R, Units, Meta)) {
      Verdict.Matched = true;
      Verdict.Violations = collectViolations(R, Units);
    }
    Report.Verdicts.push_back(std::move(Verdict));
  }
  return Report;
}
