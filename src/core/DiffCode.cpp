//===- core/DiffCode.cpp ---------------------------------------------------===//

#include "core/DiffCode.h"

#include "javaast/Parser.h"
#include "support/ThreadPool.h"

#include <algorithm>
#include <set>

using namespace diffcode;
using namespace diffcode::core;

DiffCode::DiffCode(const apimodel::CryptoApiModel &Api, DiffCodeOptions Opts)
    : Api(Api), Opts(Opts) {}

analysis::AnalysisResult DiffCode::analyzeSource(std::string_view Source) const {
  analysis::AnalysisResult Empty;
  if (Source.empty())
    return Empty;
  java::AstContext Ctx;
  java::DiagnosticsEngine Diags;
  java::CompilationUnit *Unit = java::parseJava(Source, Ctx, Diags);
  if (!Unit)
    return Empty;
  analysis::AbstractInterpreter Interp(Api, Opts.Analysis);
  return Interp.analyze(Unit);
}

std::vector<usage::UsageDag>
DiffCode::dagsForClass(const analysis::AnalysisResult &Result,
                       const std::string &TargetClass) const {
  std::vector<usage::UsageDag> Dags;
  std::set<std::string> Seen;
  for (const analysis::UsageLog &Log : Result.Executions) {
    for (const auto &[ObjId, Events] : Log) {
      if (Events.empty())
        continue;
      if (Result.Objects.get(ObjId).TypeName != TargetClass)
        continue;
      usage::UsageDag Dag =
          usage::UsageDag::build(Result.Objects, Log, ObjId, Opts.DagDepth);
      if (Seen.insert(Dag.canonicalString()).second)
        Dags.push_back(std::move(Dag));
    }
  }
  return Dags;
}

std::vector<usage::UsageChange>
DiffCode::usageChangesFor(const corpus::CodeChange &Change,
                          const std::string &TargetClass) const {
  analysis::AnalysisResult OldResult = analyzeSource(Change.OldCode);
  analysis::AnalysisResult NewResult = analyzeSource(Change.NewCode);
  std::vector<usage::UsageChange> Changes = usage::deriveUsageChanges(
      dagsForClass(OldResult, TargetClass), dagsForClass(NewResult, TargetClass),
      TargetClass);
  for (usage::UsageChange &C : Changes)
    C.Origin = Change.origin();
  return Changes;
}

ChangeRecord DiffCode::processChange(
    const corpus::CodeChange &Change,
    const std::vector<std::string> &TargetClasses,
    const std::vector<const rules::Rule *> &ClassifyWith) const {
  ChangeRecord Record;
  Record.Origin = Change.origin();
  Record.GroundTruthKind = Change.Kind;

  analysis::AnalysisResult OldResult = analyzeSource(Change.OldCode);
  analysis::AnalysisResult NewResult = analyzeSource(Change.NewCode);

  for (const std::string &TargetClass : TargetClasses) {
    std::vector<usage::UsageChange> Changes = usage::deriveUsageChanges(
        dagsForClass(OldResult, TargetClass),
        dagsForClass(NewResult, TargetClass), TargetClass);
    for (usage::UsageChange &C : Changes)
      C.Origin = Record.Origin;
    if (!Changes.empty())
      Record.PerClass.emplace(TargetClass, std::move(Changes));
  }

  if (!ClassifyWith.empty()) {
    rules::UnitFacts OldFacts = rules::UnitFacts::from(OldResult);
    rules::UnitFacts NewFacts = rules::UnitFacts::from(NewResult);
    for (const rules::Rule *R : ClassifyWith)
      Record.Classification.emplace(
          R->Id, rules::classifyChange(*R, OldFacts, NewFacts));
  }
  return Record;
}

CorpusReport DiffCode::runPipeline(
    const std::vector<const corpus::CodeChange *> &Changes,
    const std::vector<std::string> &TargetClasses,
    const std::vector<const rules::Rule *> &ClassifyWith,
    bool BuildDendrograms) const {
  CorpusReport Report;
  Report.Changes.resize(Changes.size());

  // Each change is independent; workers claim indices from the pool's
  // shared cursor and write into their own slot, so the result order
  // (and therefore every downstream number) is identical to the serial
  // run for any thread count.
  unsigned Threads =
      std::min<unsigned>(support::ThreadPool::resolveThreadCount(Opts.Threads),
                         std::max<std::size_t>(Changes.size(), 1));
  support::ThreadPool Pool(Threads);
  Pool.parallelForChunked(
      Changes.size(), 1, [&](std::size_t Begin, std::size_t Stop) {
        for (std::size_t I = Begin; I < Stop; ++I)
          Report.Changes[I] =
              processChange(*Changes[I], TargetClasses, ClassifyWith);
      });

  for (const std::string &TargetClass : TargetClasses) {
    ClassReport ClassOut;
    ClassOut.TargetClass = TargetClass;
    for (const ChangeRecord &Record : Report.Changes) {
      auto It = Record.PerClass.find(TargetClass);
      if (It == Record.PerClass.end())
        continue;
      ClassOut.AllChanges.insert(ClassOut.AllChanges.end(),
                                 It->second.begin(), It->second.end());
    }
    ClassOut.Filtered = applyFilters(ClassOut.AllChanges);
    if (BuildDendrograms && !ClassOut.Filtered.Kept.empty())
      ClassOut.Tree =
          cluster::clusterUsageChanges(ClassOut.Filtered.Kept,
                                       Opts.Clustering);
    Report.PerClass.push_back(std::move(ClassOut));
  }
  return Report;
}
