# Empty compiler generated dependencies file for diffcode_support.
# This may be replaced when dependencies are built.
