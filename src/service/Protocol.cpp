//===- service/Protocol.cpp ------------------------------------------------===//

#include "service/Protocol.h"

#include "exec/Wire.h"

using namespace diffcode;
using namespace diffcode::service;

namespace {

bool fail(std::string *Error, const char *Message) {
  if (Error)
    *Error = Message;
  return false;
}

} // namespace

std::string service::encodeIngestRequest(
    const std::vector<corpus::CodeChange> &Changes) {
  exec::WireWriter W;
  W.u32(ServiceProtocolVersion);
  W.u32(static_cast<std::uint32_t>(Changes.size()));
  for (const corpus::CodeChange &C : Changes) {
    W.str(C.ProjectName);
    W.u32(C.CommitIndex);
    W.str(C.FileName);
    W.str(C.Kind);
    W.str(C.OldCode);
    W.str(C.NewCode);
  }
  return W.take();
}

bool service::decodeIngestRequest(std::string_view Payload,
                                  std::vector<corpus::CodeChange> &Out,
                                  std::string *Error) {
  exec::WireReader R(Payload);
  std::uint32_t Version = R.u32();
  if (R.ok() && Version != ServiceProtocolVersion)
    return fail(Error, "service protocol version mismatch");
  std::uint32_t Count = R.u32();
  // An absurd count means a corrupt (but checksum-colliding) frame;
  // refuse before the reserve below turns it into an allocation bomb.
  if (R.ok() && Count > exec::MaxFramePayload / 16)
    return fail(Error, "ingest count exceeds frame capacity");
  Out.clear();
  Out.reserve(Count);
  for (std::uint32_t I = 0; I < Count && R.ok(); ++I) {
    corpus::CodeChange C;
    C.ProjectName = std::string(R.str());
    C.CommitIndex = R.u32();
    C.FileName = std::string(R.str());
    C.Kind = std::string(R.str());
    C.OldCode = std::string(R.str());
    C.NewCode = std::string(R.str());
    Out.push_back(std::move(C));
  }
  if (!R.atEnd())
    return fail(Error, "malformed ingest payload");
  return true;
}

std::string service::encodeIngestReply(const IngestReply &Reply) {
  exec::WireWriter W;
  W.u64(Reply.TotalChanges);
  W.u64(Reply.Stats.Ingested);
  W.u64(Reply.Stats.CacheHits);
  W.u64(Reply.Stats.CacheMisses);
  W.u64(Reply.Stats.Evictions);
  W.u64(Reply.Stats.ClassesRepaired);
  W.u64(Reply.Stats.ClassesReused);
  W.u64(Reply.Stats.PairsComputed);
  W.u64(Reply.Stats.PairsReused);
  return W.take();
}

bool service::decodeIngestReply(std::string_view Payload, IngestReply &Out) {
  exec::WireReader R(Payload);
  Out.TotalChanges = R.u64();
  Out.Stats.Ingested = R.u64();
  Out.Stats.CacheHits = R.u64();
  Out.Stats.CacheMisses = R.u64();
  Out.Stats.Evictions = R.u64();
  Out.Stats.ClassesRepaired = R.u64();
  Out.Stats.ClassesReused = R.u64();
  Out.Stats.PairsComputed = R.u64();
  Out.Stats.PairsReused = R.u64();
  return R.atEnd();
}

std::string service::encodeQueryRequest(std::string_view What) {
  return encodeText(What);
}

bool service::decodeQueryRequest(std::string_view Payload, std::string &Out) {
  return decodeText(Payload, Out);
}

std::string service::encodeScanRequest(const ScanRequestWire &Request) {
  exec::WireWriter W;
  W.u32(ServiceProtocolVersion);
  W.u8(Request.Refine ? 1 : 0);
  W.u32(static_cast<std::uint32_t>(Request.RuleFilter.size()));
  for (const std::string &Id : Request.RuleFilter)
    W.str(Id);
  W.u32(static_cast<std::uint32_t>(Request.Projects.size()));
  for (const corpus::Project &P : Request.Projects) {
    W.str(P.Name);
    W.u8(P.Meta.IsAndroid ? 1 : 0);
    W.u32(static_cast<std::uint32_t>(P.Meta.MinSdkVersion));
    W.u8(P.Meta.HasLinuxPrngFix ? 1 : 0);
    W.u32(static_cast<std::uint32_t>(P.Files.size()));
    for (const corpus::ProjectFile &File : P.Files) {
      W.str(File.Name);
      W.str(File.Code);
    }
  }
  return W.take();
}

bool service::decodeScanRequest(std::string_view Payload, ScanRequestWire &Out,
                                std::string *Error) {
  exec::WireReader R(Payload);
  std::uint32_t Version = R.u32();
  if (R.ok() && Version != ServiceProtocolVersion)
    return fail(Error, "service protocol version mismatch");
  Out.Refine = (R.u8() & 1) != 0;
  std::uint32_t RuleCount = R.u32();
  if (R.ok() && RuleCount > exec::MaxFramePayload / 16)
    return fail(Error, "scan rule count exceeds frame capacity");
  Out.RuleFilter.clear();
  Out.RuleFilter.reserve(RuleCount);
  for (std::uint32_t I = 0; I < RuleCount && R.ok(); ++I)
    Out.RuleFilter.emplace_back(R.str());
  std::uint32_t ProjectCount = R.u32();
  if (R.ok() && ProjectCount > exec::MaxFramePayload / 16)
    return fail(Error, "scan project count exceeds frame capacity");
  Out.Projects.clear();
  Out.Projects.reserve(ProjectCount);
  for (std::uint32_t I = 0; I < ProjectCount && R.ok(); ++I) {
    corpus::Project P;
    P.Name = std::string(R.str());
    P.Meta.IsAndroid = (R.u8() & 1) != 0;
    P.Meta.MinSdkVersion = static_cast<int>(R.u32());
    P.Meta.HasLinuxPrngFix = (R.u8() & 1) != 0;
    std::uint32_t FileCount = R.u32();
    if (R.ok() && FileCount > exec::MaxFramePayload / 16)
      return fail(Error, "scan file count exceeds frame capacity");
    P.Files.reserve(FileCount);
    for (std::uint32_t J = 0; J < FileCount && R.ok(); ++J) {
      corpus::ProjectFile File;
      File.Name = std::string(R.str());
      File.Code = std::string(R.str());
      P.Files.push_back(std::move(File));
    }
    Out.Projects.push_back(std::move(P));
  }
  if (!R.atEnd())
    return fail(Error, "malformed scan payload");
  return true;
}

std::string service::encodeText(std::string_view Text) {
  exec::WireWriter W;
  W.str(Text);
  return W.take();
}

bool service::decodeText(std::string_view Payload, std::string &Out) {
  exec::WireReader R(Payload);
  Out = std::string(R.str());
  return R.atEnd();
}
