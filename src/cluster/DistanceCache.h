//===- cluster/DistanceCache.h - Memoised usageDist over a corpus ----------===//
//
// Part of the DiffCode project, a reproduction of "Inferring Crypto API
// Rules from Code Changes" (PLDI'18).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The hot loop of Section 4.3's clustering is the pairwise usageDist
/// matrix: every evaluation runs a Hungarian assignment whose cost
/// entries each run a Levenshtein over label units. Usage changes arrive
/// already interned (support::Interner ids), so this cache no longer
/// interns anything itself: it compacts the corpus's global ids to dense
/// local indices and memoises the expensive sub-results on top:
///
///   * the corpus's distinct global label ids -> dense local ids, with
///     unit vectors borrowed from the interner's arena (precomputed at
///     intern time, never copied);
///   * the corpus's distinct global path ids -> dense local ids over
///     local label ids, keeping common-prefix tests integer compares and
///     the tables small enough for the dense bound;
///   * labelSimilarity over local id pairs -> a dense table (bounded;
///     larger vocabularies fall back to on-the-fly Levenshtein over the
///     precomputed units);
///   * pathDist over local id pairs -> a dense table under the same
///     bound.
///
/// Local ids are derived by sorting global ids, whose values are racy
/// across runs — but no result depends on id *values*: table fills are
/// symmetric value-by-value, and cost matrices follow each change's own
/// path order, so the metric is permutation-invariant (see the interner's
/// determinism contract). Every memoised value is produced by the same
/// arithmetic as the uncached functions in cluster/Distance.h, so results
/// are bit-identical — tests assert exact equality. All queries after
/// construction are read-only and therefore thread-safe; construction
/// itself can be parallelised by passing a support::ThreadPool.
///
//===----------------------------------------------------------------------===//

#ifndef DIFFCODE_CLUSTER_DISTANCECACHE_H
#define DIFFCODE_CLUSTER_DISTANCECACHE_H

#include "support/Interner.h"
#include "usage/UsageChange.h"

#include <cstdint>
#include <string>
#include <vector>

namespace diffcode {
namespace support {
class ThreadPool;
} // namespace support

namespace cluster {

/// Memoised usageDist evaluator over a fixed corpus of usage changes.
/// All changes must resolve through one shared interner (the pipeline
/// invariant), which must outlive the cache — unit vectors are borrowed
/// from its arena.
class UsageDistCache {
public:
  /// Compacts the corpus's ids and warms the similarity tables; \p Pool
  /// (may be null) parallelises the table fill.
  explicit UsageDistCache(const std::vector<usage::UsageChange> &Changes,
                          support::ThreadPool *Pool = nullptr);

  /// Number of usage changes indexed.
  std::size_t size() const { return Interned.size(); }

  /// Bit-identical equivalent of usageDist(Changes[I], Changes[J]).
  double operator()(std::size_t I, std::size_t J) const;

  std::size_t distinctLabels() const { return Units.size(); }
  std::size_t distinctPaths() const { return PathLabels.size(); }

private:
  struct InternedChange {
    std::vector<std::uint32_t> Removed; ///< Local path ids of F-.
    std::vector<std::uint32_t> Added;   ///< Local path ids of F+.
  };

  double labelSim(std::uint32_t A, std::uint32_t B) const;
  double pathDistById(std::uint32_t A, std::uint32_t B) const;
  double pathDistCached(std::uint32_t A, std::uint32_t B) const;
  double pathsDistById(const std::vector<std::uint32_t> &F1,
                       const std::vector<std::uint32_t> &F2) const;

  std::vector<InternedChange> Interned;
  /// Levenshtein units per local label id, borrowed from the shared
  /// interner's arena (stable for its lifetime).
  std::vector<const std::vector<std::string> *> Units;
  /// Local label-id sequence per local path id.
  std::vector<std::vector<std::uint32_t>> PathLabels;
  /// Dense distinctLabels^2 similarity table; empty when the vocabulary
  /// exceeds the memory bound.
  std::vector<double> LabelSimTable;
  /// Dense distinctPaths^2 pathDist table; empty when over the bound.
  std::vector<double> PathDistTable;
};

} // namespace cluster
} // namespace diffcode

#endif // DIFFCODE_CLUSTER_DISTANCECACHE_H
