//===- examples/quickstart.cpp - The paper's Figure 2, end to end ----------===//
//
// Part of the DiffCode project, a reproduction of "Inferring Crypto API
// Rules from Code Changes" (PLDI'18).
//
//===----------------------------------------------------------------------===//
//
// Runs the complete DiffCode abstraction on the paper's running example:
// the AESCipher patch that switches from default-mode AES (ECB) to
// AES/CBC/PKCS5Padding with an explicit IV. Prints the usage DAGs of both
// versions, the derived usage change (F-, F+), the filter verdict, and the
// rule CryptoChecker flags in the old version.
//
//===----------------------------------------------------------------------===//

#include "core/DiffCode.h"
#include "rules/BuiltinRules.h"
#include "rules/CryptoChecker.h"
#include "usage/UsageChange.h"

#include <cstdio>
#include <string>

using namespace diffcode;

namespace {

// Figure 2(a), old version (red + context lines).
const char *OldVersion = R"java(
import javax.crypto.Cipher;
import javax.crypto.spec.IvParameterSpec;

class AESCipher {
    Cipher enc;
    Cipher dec;
    final String algorithm = "AES";

    protected void setKey(Secret key) {
        try {
            enc = Cipher.getInstance(algorithm);
            enc.init(Cipher.ENCRYPT_MODE, key);
            dec = Cipher.getInstance(algorithm);
            dec.init(Cipher.DECRYPT_MODE, key);
        } catch (Exception e) {
        }
    }
}
)java";

// Figure 2(a), new version (green + context lines).
const char *NewVersion = R"java(
import javax.crypto.Cipher;
import javax.crypto.spec.IvParameterSpec;

class AESCipher {
    Cipher enc;
    Cipher dec;
    final String algorithm = "AES/CBC/PKCS5Padding";

    protected void setKeyAndIV(Secret key, String iv) {
        byte[] ivBytes;
        IvParameterSpec ivSpec;
        try {
            ivBytes = Hex.decodeHex(iv.toCharArray());
            ivSpec = new IvParameterSpec(ivBytes);
            enc = Cipher.getInstance(algorithm);
            enc.init(Cipher.ENCRYPT_MODE, key, ivSpec);
            dec = Cipher.getInstance(algorithm);
            dec.init(Cipher.DECRYPT_MODE, key, ivSpec);
        } catch (Exception e) {
        }
    }
}
)java";

void printDag(const usage::UsageDag &Dag, const char *Title) {
  std::printf("%s\n%s", Title, Dag.str().c_str());
}

} // namespace

int main() {
  const apimodel::CryptoApiModel &Api = apimodel::CryptoApiModel::javaCryptoApi();
  core::DiffCode System(Api);

  std::printf("== DiffCode quickstart: the Figure 2 AESCipher patch ==\n\n");

  // Step 1+2: analyze both versions and derive the usage DAGs for Cipher.
  analysis::AnalysisResult OldResult = System.analyzeSourceChecked(OldVersion).Result;
  analysis::AnalysisResult NewResult = System.analyzeSourceChecked(NewVersion).Result;
  std::vector<usage::UsageDag> OldDags =
      System.dagsForClass(OldResult, "Cipher");
  std::vector<usage::UsageDag> NewDags =
      System.dagsForClass(NewResult, "Cipher");
  std::printf("old version: %zu Cipher usage DAG(s); new version: %zu\n\n",
              OldDags.size(), NewDags.size());
  if (!OldDags.empty())
    printDag(OldDags.front(), "usage DAG of `enc` before the change:");
  if (!NewDags.empty())
    printDag(NewDags.front(), "\nusage DAG of `enc` after the change:");

  // Step 3: pair the DAGs and extract the usage changes.
  corpus::CodeChange Change;
  Change.ProjectName = "figure2";
  Change.OldCode = OldVersion;
  Change.NewCode = NewVersion;
  std::printf("\nusage changes (removed/added features):\n");
  for (const usage::UsageChange &C : System.usageChangesFor(Change, "Cipher"))
    std::printf("%s\n", C.str().c_str());

  // Step 4: what would CryptoChecker have said about the old version?
  rules::CryptoChecker Checker;
  rules::UnitFacts Facts = rules::UnitFacts::from(OldResult);
  rules::ProjectReport Report = Checker.checkProject({Facts});
  std::printf("rules violated by the old version:\n");
  for (const rules::RuleVerdict &Verdict : Report.verdicts())
    if (Verdict.Matched) {
      const std::string &RuleId = Report.text(Verdict.Rule);
      const rules::Rule *R = rules::findRule(RuleId);
      std::printf("  %s: %s\n", RuleId.c_str(),
                  R ? R->Description.c_str() : "");
    }
  return 0;
}
