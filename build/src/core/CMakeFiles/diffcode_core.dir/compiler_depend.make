# Empty compiler generated dependencies file for diffcode_core.
# This may be replaced when dependencies are built.
