
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/AbstractInterpreter.cpp" "src/analysis/CMakeFiles/diffcode_analysis.dir/AbstractInterpreter.cpp.o" "gcc" "src/analysis/CMakeFiles/diffcode_analysis.dir/AbstractInterpreter.cpp.o.d"
  "/root/repo/src/analysis/AbstractValue.cpp" "src/analysis/CMakeFiles/diffcode_analysis.dir/AbstractValue.cpp.o" "gcc" "src/analysis/CMakeFiles/diffcode_analysis.dir/AbstractValue.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/javaast/CMakeFiles/diffcode_javaast.dir/DependInfo.cmake"
  "/root/repo/build/src/apimodel/CMakeFiles/diffcode_apimodel.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/diffcode_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
