//===- tests/test_classifier.cpp - fix/bug/none + rule suggestion tests ----===//

#include "rules/ChangeClassifier.h"
#include "rules/RuleSuggestion.h"

#include "analysis/AbstractInterpreter.h"
#include "javaast/Parser.h"
#include "rules/BuiltinRules.h"
#include "usage/UsageChange.h"

#include <gtest/gtest.h>

using namespace diffcode;
using namespace diffcode::analysis;
using namespace diffcode::rules;
using namespace diffcode::usage;

namespace {

AnalysisResult analyze(std::string_view Source) {
  java::AstContext Ctx;
  java::DiagnosticsEngine Diags;
  java::CompilationUnit *Unit = java::parseJava(Source, Ctx, Diags);
  EXPECT_FALSE(Diags.hasErrors());
  AbstractInterpreter Interp(apimodel::CryptoApiModel::javaCryptoApi());
  return Interp.analyze(Unit);
}

ChangeClass classify(const char *RuleId, std::string_view OldSrc,
                     std::string_view NewSrc) {
  const Rule *R = findRule(RuleId);
  EXPECT_NE(R, nullptr);
  AnalysisResult OldR = analyze(OldSrc);
  AnalysisResult NewR = analyze(NewSrc);
  return classifyChange(*R, UnitFacts::from(OldR), UnitFacts::from(NewR));
}

const char *EcbVersion =
    "class A { void m(Key k) throws Exception { "
    "Cipher c = Cipher.getInstance(\"AES\"); "
    "c.init(Cipher.ENCRYPT_MODE, k); } }";
const char *CbcVersion =
    "class A { void m(Key k, byte[] ivb) throws Exception { "
    "Cipher c = Cipher.getInstance(\"AES/CBC/PKCS5Padding\"); "
    "c.init(Cipher.ENCRYPT_MODE, k, new IvParameterSpec(ivb)); } }";

} // namespace

TEST(ChangeClassifier, FixDetected) {
  EXPECT_EQ(classify("CL1", EcbVersion, CbcVersion),
            ChangeClass::SecurityFix);
}

TEST(ChangeClassifier, BugDetected) {
  EXPECT_EQ(classify("CL1", CbcVersion, EcbVersion),
            ChangeClass::BuggyChange);
}

TEST(ChangeClassifier, RefactoringIsNone) {
  const char *Renamed =
      "class A { void configure(Key secret) throws Exception { "
      "Cipher cipher = Cipher.getInstance(\"AES\"); "
      "cipher.init(Cipher.ENCRYPT_MODE, secret); } }";
  EXPECT_EQ(classify("CL1", EcbVersion, Renamed), ChangeClass::NonSemantic);
}

TEST(ChangeClassifier, BothViolatingIsNone) {
  const char *StillEcb =
      "class A { void m(Key k) throws Exception { "
      "Cipher c = Cipher.getInstance(\"AES/ECB/PKCS5Padding\"); "
      "c.init(Cipher.ENCRYPT_MODE, k); } }";
  EXPECT_EQ(classify("CL1", EcbVersion, StillEcb), ChangeClass::NonSemantic);
}

TEST(ChangeClassifier, UnrelatedRuleIsNone) {
  // CL4 (PBE iterations) does not apply to a Cipher-only change.
  EXPECT_EQ(classify("CL4", EcbVersion, CbcVersion),
            ChangeClass::NonSemantic);
}

TEST(ChangeClassifier, IntroductionsAndDeletionsAreNotFixesOrBugs) {
  // Introducing a violating usage from nothing is an addition, not a
  // regression of existing code; deleting it is a removal, not a fix.
  EXPECT_EQ(classify("CL1", "class A { }", EcbVersion),
            ChangeClass::NonSemantic);
  EXPECT_EQ(classify("CL1", EcbVersion, "class A { }"),
            ChangeClass::NonSemantic);
}

TEST(ChangeClassifier, Names) {
  EXPECT_STREQ(changeClassName(ChangeClass::SecurityFix), "fix");
  EXPECT_STREQ(changeClassName(ChangeClass::BuggyChange), "bug");
  EXPECT_STREQ(changeClassName(ChangeClass::NonSemantic), "none");
}

//===----------------------------------------------------------------------===//
// Rule suggestion (Section 6.3)
//===----------------------------------------------------------------------===//

namespace {

NodeLabel rootL(const char *T) { return NodeLabel::root(T); }
NodeLabel methodL(const char *Sig) { return NodeLabel::method(Sig); }

support::Interner &table() {
  static support::Interner Table;
  return Table;
}

UsageChange figure2Change() {
  return UsageChange::intern(
      table(), "Cipher",
      {{rootL("Cipher"), methodL("Cipher.getInstance/1"),
        NodeLabel::arg(1, AbstractValue::strConst("AES"))}},
      {{rootL("Cipher"), methodL("Cipher.getInstance/1"),
        NodeLabel::arg(1, AbstractValue::strConst("AES/CBC/PKCS5Padding"))},
       {rootL("Cipher"), methodL("Cipher.init/3"),
        NodeLabel::arg(3, AbstractValue::topObject("IvParameterSpec"))}});
}

} // namespace

TEST(RuleSuggestion, Figure2SuggestionMatchesUnfixedCode) {
  auto Suggested = suggestRule(figure2Change(), "fig2");
  ASSERT_TRUE(Suggested.has_value());
  ASSERT_EQ(Suggested->Clauses.size(), 1u);
  EXPECT_EQ(Suggested->Clauses[0].TypeName, "Cipher");

  AnalysisResult OldR = analyze(EcbVersion);
  AnalysisResult NewR = analyze(CbcVersion);
  EXPECT_TRUE(ruleMatches(*Suggested, {UnitFacts::from(OldR)}));
  EXPECT_FALSE(ruleMatches(*Suggested, {UnitFacts::from(NewR)}));
}

TEST(RuleSuggestion, ConstByteArrayBecomesIsConstant) {
  UsageChange C = UsageChange::intern(
      table(), "IvParameterSpec",
      {{rootL("IvParameterSpec"), methodL("IvParameterSpec.<init>/1"),
        NodeLabel::arg(1, AbstractValue::byteArrayConst())}},
      {{rootL("IvParameterSpec"), methodL("IvParameterSpec.<init>/1"),
        NodeLabel::arg(1, AbstractValue::byteArrayTop())}});
  auto Suggested = suggestRule(C);
  ASSERT_TRUE(Suggested.has_value());

  AnalysisResult Bad = analyze(
      "class A { void m() { IvParameterSpec iv = new IvParameterSpec("
      "\"0123456789abcdef\".getBytes()); } }");
  AnalysisResult Good = analyze(
      "class A { void m(byte[] raw) { "
      "IvParameterSpec iv = new IvParameterSpec(raw); } }");
  EXPECT_TRUE(ruleMatches(*Suggested, {UnitFacts::from(Bad)}));
  EXPECT_FALSE(ruleMatches(*Suggested, {UnitFacts::from(Good)}));
}

TEST(RuleSuggestion, IntegerConstraint) {
  UsageChange C = UsageChange::intern(
      table(), "PBEKeySpec",
      {{rootL("PBEKeySpec"), methodL("PBEKeySpec.<init>/4"),
        NodeLabel::arg(3, AbstractValue::intConst(100))}},
      {{rootL("PBEKeySpec"), methodL("PBEKeySpec.<init>/4"),
        NodeLabel::arg(3, AbstractValue::intConst(10000))}});
  auto Suggested = suggestRule(C);
  ASSERT_TRUE(Suggested.has_value());
  AnalysisResult Bad = analyze(
      "class A { void m(char[] p, byte[] s) { "
      "PBEKeySpec k = new PBEKeySpec(p, s, 100, 128); } }");
  AnalysisResult Good = analyze(
      "class A { void m(char[] p, byte[] s) { "
      "PBEKeySpec k = new PBEKeySpec(p, s, 10000, 128); } }");
  EXPECT_TRUE(ruleMatches(*Suggested, {UnitFacts::from(Bad)}));
  EXPECT_FALSE(ruleMatches(*Suggested, {UnitFacts::from(Good)}));
}

TEST(RuleSuggestion, EmptyChangeGivesNothing) {
  UsageChange Empty;
  Empty.TypeName = "Cipher";
  EXPECT_FALSE(suggestRule(Empty).has_value());
}

TEST(RuleSuggestion, PathWithoutMethodSkipped) {
  // A root-only path carries no pattern.
  UsageChange C =
      UsageChange::intern(table(), "Cipher", {{rootL("Cipher")}}, {});
  EXPECT_FALSE(suggestRule(C).has_value());
}

TEST(RuleSuggestion, DescribeRuleRendersPaperNotation) {
  std::string Text = describeRule(*findRule("R1"));
  EXPECT_NE(Text.find("R1"), std::string::npos);
  EXPECT_NE(Text.find("MessageDigest"), std::string::npos);
  EXPECT_NE(Text.find("getInstance"), std::string::npos);

  std::string R13Text = describeRule(*findRule("R13"));
  EXPECT_NE(R13Text.find("¬Mac"), std::string::npos);
}
