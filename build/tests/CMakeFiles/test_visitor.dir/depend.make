# Empty dependencies file for test_visitor.
# This may be replaced when dependencies are built.
