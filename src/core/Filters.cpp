//===- core/Filters.cpp ----------------------------------------------------===//

#include "core/Filters.h"

#include <set>
#include <tuple>

using namespace diffcode;
using namespace diffcode::core;
using namespace diffcode::usage;

const char *diffcode::core::filterStageName(FilterStage Stage) {
  switch (Stage) {
  case FilterStage::Kept:
    return "kept";
  case FilterStage::FSame:
    return "fsame";
  case FilterStage::FAdd:
    return "fadd";
  case FilterStage::FRem:
    return "frem";
  case FilterStage::FDup:
    return "fdup";
  }
  return "kept";
}

FilterStage diffcode::core::classifySolo(const UsageChange &Change) {
  if (Change.Removed.empty() && Change.Added.empty())
    return FilterStage::FSame;
  if (Change.Removed.empty())
    return FilterStage::FAdd;
  if (Change.Added.empty())
    return FilterStage::FRem;
  return FilterStage::Kept;
}

FilterResult
diffcode::core::applyFilters(const std::vector<UsageChange> &Changes) {
  FilterResult Result;
  Result.Total = Changes.size();
  Result.Outcome.reserve(Changes.size());

  std::size_t RemovedSame = 0, RemovedAdd = 0, RemovedRem = 0,
              RemovedDup = 0;
  // fdup: interned changes make feature identity a tuple of id vectors
  // (valid because one corpus shares one interner), so duplicate
  // detection is a set probe instead of a scan over the survivors. First
  // occurrence wins, exactly as before.
  using FeatureKey = std::tuple<std::string, std::vector<support::PathId>,
                                std::vector<support::PathId>>;
  std::set<FeatureKey> Seen;
  for (const UsageChange &Change : Changes) {
    FilterStage Stage = classifySolo(Change);
    switch (Stage) {
    case FilterStage::FSame:
      ++RemovedSame;
      break;
    case FilterStage::FAdd:
      ++RemovedAdd;
      break;
    case FilterStage::FRem:
      ++RemovedRem;
      break;
    default: {
      bool Inserted =
          Seen.emplace(Change.TypeName, Change.Removed, Change.Added).second;
      if (!Inserted) {
        Stage = FilterStage::FDup;
        ++RemovedDup;
      } else {
        Result.Kept.push_back(Change);
      }
      break;
    }
    }
    Result.Outcome.push_back(Stage);
  }

  Result.AfterSame = Result.Total - RemovedSame;
  Result.AfterAdd = Result.AfterSame - RemovedAdd;
  Result.AfterRem = Result.AfterAdd - RemovedRem;
  Result.AfterDup = Result.AfterRem - RemovedDup;
  return Result;
}
