file(REMOVE_RECURSE
  "CMakeFiles/ablation_abstraction.dir/ablation_abstraction.cpp.o"
  "CMakeFiles/ablation_abstraction.dir/ablation_abstraction.cpp.o.d"
  "ablation_abstraction"
  "ablation_abstraction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_abstraction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
