
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apimodel/CryptoApiModel.cpp" "src/apimodel/CMakeFiles/diffcode_apimodel.dir/CryptoApiModel.cpp.o" "gcc" "src/apimodel/CMakeFiles/diffcode_apimodel.dir/CryptoApiModel.cpp.o.d"
  "/root/repo/src/apimodel/TlsApiModel.cpp" "src/apimodel/CMakeFiles/diffcode_apimodel.dir/TlsApiModel.cpp.o" "gcc" "src/apimodel/CMakeFiles/diffcode_apimodel.dir/TlsApiModel.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/diffcode_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
