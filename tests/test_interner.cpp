//===- tests/test_interner.cpp - Interned corpus data model tests ----------===//
//
// Unit tests for support::Interner, the table behind the ID-based data
// model (DESIGN.md "Interned data model"). The contracts under test:
//
//   1. interning is structural — id equality coincides exactly with
//      NodeLabel::operator== / element-wise path equality, including the
//      ValueIsString distinction;
//   2. references returned by labelAt/labelsOf/unitsOf stay valid while
//      other threads keep interning (arena stability);
//   3. pathString(Id) is byte-identical to pathToString(materialize(Id));
//   4. the precomputed Levenshtein units match cluster::labelUnits;
//   5. concurrent interning from many threads is safe and structural
//      (ids may differ run to run, equality never does).
//
//===----------------------------------------------------------------------===//

#include "support/Interner.h"

#include "cluster/Distance.h"

#include <gtest/gtest.h>

#include <set>
#include <thread>

using namespace diffcode;
using namespace diffcode::analysis;
using namespace diffcode::support;
using namespace diffcode::usage;

namespace {

FeaturePath figure2Path(const char *Algo) {
  return {NodeLabel::root("Cipher"), NodeLabel::method("Cipher.getInstance/1"),
          NodeLabel::arg(1, AbstractValue::strConst(Algo))};
}

} // namespace

TEST(Interner, LabelIdEqualityIsStructural) {
  Interner Table;
  LabelId A = Table.label(NodeLabel::root("Cipher"));
  LabelId B = Table.label(NodeLabel::root("Cipher"));
  LabelId C = Table.label(NodeLabel::root("Mac"));
  EXPECT_EQ(A, B);
  EXPECT_NE(A, C);
  EXPECT_EQ(Table.labelCount(), 2u);
  EXPECT_TRUE(Table.labelAt(A) == NodeLabel::root("Cipher"));
}

TEST(Interner, ValueIsStringDistinguishesLabels) {
  // "arg1:42" as a string constant and as an integer constant render the
  // same text but are different labels (their Levenshtein units differ);
  // structural interning must keep them apart.
  Interner Table;
  NodeLabel Str = NodeLabel::arg(1, AbstractValue::strConst("42"));
  NodeLabel Int = NodeLabel::arg(1, AbstractValue::intConst(42));
  ASSERT_EQ(Str.Text, Int.Text);
  ASSERT_FALSE(Str == Int);
  EXPECT_NE(Table.label(Str), Table.label(Int));
}

TEST(Interner, PathIdEqualityIsStructural) {
  Interner Table;
  PathId A = Table.path(figure2Path("AES"));
  PathId B = Table.path(figure2Path("AES"));
  PathId C = Table.path(figure2Path("DES"));
  EXPECT_EQ(A, B);
  EXPECT_NE(A, C);
  EXPECT_EQ(Table.pathCount(), 2u);

  // A strict prefix is a different path.
  FeaturePath Short = figure2Path("AES");
  Short.pop_back();
  EXPECT_NE(Table.path(Short), A);
}

TEST(Interner, MaterializeRoundTrips) {
  Interner Table;
  FeaturePath Original = figure2Path("AES/CBC/PKCS5Padding");
  PathId Id = Table.path(Original);
  FeaturePath Back = Table.materialize(Id);
  ASSERT_EQ(Back.size(), Original.size());
  for (std::size_t I = 0; I < Back.size(); ++I)
    EXPECT_TRUE(Back[I] == Original[I]);
  EXPECT_EQ(Table.pathString(Id), pathToString(Original));
}

TEST(Interner, PathStringMatchesPathToString) {
  Interner Table;
  std::vector<FeaturePath> Samples = {
      {NodeLabel::root("Cipher")},
      figure2Path("AES"),
      {NodeLabel::root("IvParameterSpec"),
       NodeLabel::method("IvParameterSpec.<init>/1"),
       NodeLabel::arg(1, AbstractValue::byteArrayConst())},
      {NodeLabel::root("PBEKeySpec"), NodeLabel::method("PBEKeySpec.<init>/4"),
       NodeLabel::arg(3, AbstractValue::intConst(100))},
  };
  for (const FeaturePath &Path : Samples)
    EXPECT_EQ(Table.pathString(Table.path(Path)), pathToString(Path));
}

TEST(Interner, UnitsMatchClusterLabelUnits) {
  Interner Table;
  std::vector<NodeLabel> Labels = {
      NodeLabel::root("Cipher"),
      NodeLabel::method("Cipher.getInstance/1"),
      NodeLabel::arg(1, AbstractValue::strConst("AES/CBC/PKCS5Padding")),
      NodeLabel::arg(2, AbstractValue::intConst(128)),
      NodeLabel::arg(1, AbstractValue::byteArrayTop()),
  };
  for (const NodeLabel &Label : Labels) {
    LabelId Id = Table.label(Label);
    EXPECT_EQ(Table.unitsOf(Id), cluster::labelUnits(Label));
  }
  // String constants split per character — the expensive part the table
  // precomputes once.
  LabelId Aes =
      Table.label(NodeLabel::arg(1, AbstractValue::strConst("AES")));
  EXPECT_EQ(Table.unitsOf(Aes),
            (std::vector<std::string>{"arg1", "A", "E", "S"}));
}

TEST(Interner, ReferencesStableAcrossGrowth) {
  // Arena storage: a reference taken early must stay valid after the
  // table grows by thousands of entries.
  Interner Table;
  LabelId First = Table.label(NodeLabel::root("Cipher"));
  const NodeLabel &Ref = Table.labelAt(First);
  const std::vector<std::string> &Units = Table.unitsOf(First);
  for (int I = 0; I < 5000; ++I)
    Table.label(NodeLabel::arg(1, AbstractValue::strConst(
                                      "algo-" + std::to_string(I))));
  EXPECT_EQ(Ref.Text, "Cipher");
  EXPECT_EQ(Units, (std::vector<std::string>{"Cipher"}));
}

TEST(Interner, ConcurrentInterningIsStructural) {
  // Eight threads intern an overlapping vocabulary; afterwards every
  // distinct path has exactly one id and ids resolve to their paths.
  Interner Table;
  auto Worker = [&Table](unsigned Offset) {
    for (int Round = 0; Round < 200; ++Round) {
      int Algo = (Offset + Round) % 16;
      Table.path(figure2Path(("algo" + std::to_string(Algo)).c_str()));
    }
  };
  std::vector<std::thread> Threads;
  for (unsigned T = 0; T < 8; ++T)
    Threads.emplace_back(Worker, T * 3);
  for (std::thread &T : Threads)
    T.join();
  EXPECT_EQ(Table.pathCount(), 16u);
  std::set<std::string> Rendered;
  for (int Algo = 0; Algo < 16; ++Algo) {
    FeaturePath Path = figure2Path(("algo" + std::to_string(Algo)).c_str());
    PathId Id = Table.path(Path);
    EXPECT_EQ(Table.pathString(Id), pathToString(Path));
    Rendered.insert(Table.pathString(Id));
  }
  EXPECT_EQ(Rendered.size(), 16u);
}

TEST(Interner, MemoryBytesGrowsWithContent) {
  Interner Table;
  std::size_t Empty = Table.memoryBytes();
  for (int I = 0; I < 100; ++I)
    Table.path(figure2Path(("algo" + std::to_string(I)).c_str()));
  EXPECT_GT(Table.memoryBytes(), Empty);
}

TEST(Interner, PreconvertedLabelSequenceAgreesWithPathOverload) {
  Interner Table;
  FeaturePath Path = figure2Path("AES");
  std::vector<LabelId> Ids;
  for (const NodeLabel &Label : Path)
    Ids.push_back(Table.label(Label));
  EXPECT_EQ(Table.path(std::move(Ids)), Table.path(Path));
}
