//===- bench/micro_interning.cpp - Interned data model footprint sweep -----===//
//
// Part of the DiffCode project, a reproduction of "Inferring Crypto API
// Rules from Code Changes" (PLDI'18).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Measures what the interned corpus data model buys over the
/// string-based representation it replaced, at n in {1k, 5k, 10k}
/// synthetic usage changes (10k is the order of the paper's 11,551
/// Cipher changes):
///
///   * resident bytes per usage change: owned FeaturePath trees of
///     heap-allocated strings vs two PathId vectors plus the amortized
///     shared Interner table;
///   * UsageDistCache construction: the production id-compaction path vs
///     a faithful replica of the legacy constructor that re-derived a
///     private label/path vocabulary from strings with std::map lookups;
///   * pairwise distance throughput: the warmed cache vs the string-
///     space usageDist on sampled pairs;
///   * sharded clustering wall time at the largest n, as the wall-time
///     regression guard.
///
/// Self-verifying: exits non-zero unless the interned model uses at most
/// half the resident bytes per change at every n (the ISSUE's >= 2x
/// acceptance bar) and the warmed cache evaluates sampled pairs at least
/// as fast as the string-space metric.
///
///   micro_interning [nmax] [seed] [out.json]   (defaults: 10000 42
///                                               BENCH_interning.json)
///
//===----------------------------------------------------------------------===//

#include "cluster/Distance.h"
#include "cluster/DistanceCache.h"
#include "cluster/HierarchicalClustering.h"
#include "cluster/ShardedClustering.h"
#include "support/JsonWriter.h"
#include "support/Rng.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <string>
#include <vector>

using namespace diffcode;
using namespace diffcode::analysis;
using namespace diffcode::cluster;
using namespace diffcode::usage;

namespace {

/// Crypto-flavoured corpus, same vocabulary as micro_sharding.
FeaturePath randomPath(Rng &R) {
  static const char *Roots[] = {"Cipher", "MessageDigest", "SecureRandom",
                                "KeyGenerator"};
  static const char *Methods[] = {
      "Cipher.getInstance/1",       "Cipher.init/3",
      "Cipher.doFinal/1",           "MessageDigest.getInstance/1",
      "MessageDigest.update/1",     "SecureRandom.setSeed/1",
      "KeyGenerator.getInstance/1", "KeyGenerator.init/1"};
  static const char *Strings[] = {"AES",     "AES/CBC/PKCS5Padding",
                                  "AES/GCM/NoPadding", "DES",
                                  "DES/ECB/PKCS5Padding", "RSA",
                                  "SHA-1",   "SHA-256", "MD5"};
  FeaturePath Path = {NodeLabel::root(Roots[R.index(4)])};
  for (std::size_t Depth = 0, N = R.range(1, 3); Depth < N; ++Depth)
    Path.push_back(NodeLabel::method(Methods[R.index(8)]));
  if (R.chance(0.75)) {
    unsigned Index = static_cast<unsigned>(R.range(1, 3));
    if (R.chance(0.7))
      Path.push_back(
          NodeLabel::arg(Index, AbstractValue::strConst(Strings[R.index(9)])));
    else
      Path.push_back(NodeLabel::arg(Index, AbstractValue::byteArrayTop()));
  }
  return Path;
}

/// The pre-interning representation: every change owns its paths.
struct StringChange {
  std::vector<FeaturePath> Removed;
  std::vector<FeaturePath> Added;
};

/// One corpus, both representations, drawn from one RNG stream so they
/// describe identical changes.
struct Corpora {
  std::vector<StringChange> Strings;
  std::vector<UsageChange> Interned;
  support::Interner Table;
};

void buildCorpora(Corpora &Out, std::uint64_t Seed, std::size_t Size) {
  Rng R(Seed);
  Out.Strings.reserve(Size);
  Out.Interned.reserve(Size);
  for (std::size_t C = 0; C < Size; ++C) {
    StringChange S;
    for (std::size_t I = 0, N = R.range(0, 3); I < N; ++I)
      S.Removed.push_back(randomPath(R));
    for (std::size_t I = 0, N = R.range(0, 3); I < N; ++I)
      S.Added.push_back(randomPath(R));
    Out.Interned.push_back(
        UsageChange::intern(Out.Table, "Cipher", S.Removed, S.Added));
    Out.Strings.push_back(std::move(S));
  }
}

std::size_t stringBytes(const std::string &S) {
  // Heap allocation only when the text outgrows the SSO buffer.
  std::size_t Sso = sizeof(std::string) - sizeof(void *) - 1;
  return S.capacity() > Sso ? S.capacity() + 1 : 0;
}

std::size_t pathVectorBytes(const std::vector<FeaturePath> &Paths) {
  std::size_t Bytes = Paths.capacity() * sizeof(FeaturePath);
  for (const FeaturePath &Path : Paths) {
    Bytes += Path.capacity() * sizeof(NodeLabel);
    for (const NodeLabel &Label : Path)
      Bytes += stringBytes(Label.Text);
  }
  return Bytes;
}

/// Resident heap bytes of the string model, per change, summed.
std::size_t stringModelBytes(const std::vector<StringChange> &Changes) {
  std::size_t Bytes = Changes.capacity() * sizeof(StringChange);
  for (const StringChange &Change : Changes)
    Bytes += pathVectorBytes(Change.Removed) + pathVectorBytes(Change.Added);
  return Bytes;
}

/// Resident heap bytes of the interned model: the id vectors plus the
/// shared table, which the whole corpus amortizes.
std::size_t internedModelBytes(const std::vector<UsageChange> &Changes,
                               const support::Interner &Table) {
  std::size_t Bytes = Changes.capacity() * sizeof(UsageChange);
  for (const UsageChange &Change : Changes)
    Bytes += Change.Removed.capacity() * sizeof(support::PathId) +
             Change.Added.capacity() * sizeof(support::PathId);
  return Bytes + Table.memoryBytes();
}

/// Faithful replica of the legacy UsageDistCache constructor: derive a
/// private label/path vocabulary from the string representation with
/// std::map lookups, split Levenshtein units per distinct label, and
/// warm the dense label-similarity table.
std::size_t legacyCacheConstruct(const std::vector<StringChange> &Changes) {
  std::map<NodeLabel, std::size_t> LabelIds;
  std::vector<NodeLabel> LabelList;
  std::vector<std::vector<std::string>> Units;
  std::map<std::vector<std::size_t>, std::size_t> PathIds;
  std::vector<std::vector<std::size_t>> PathLabels;

  auto internPath = [&](const FeaturePath &Path) {
    std::vector<std::size_t> Seq;
    Seq.reserve(Path.size());
    for (const NodeLabel &Label : Path) {
      auto [It, Inserted] = LabelIds.emplace(Label, LabelList.size());
      if (Inserted) {
        LabelList.push_back(Label);
        Units.push_back(labelUnits(Label));
      }
      Seq.push_back(It->second);
    }
    auto [It, Inserted] = PathIds.emplace(Seq, PathLabels.size());
    if (Inserted)
      PathLabels.push_back(std::move(Seq));
    return It->second;
  };
  for (const StringChange &Change : Changes) {
    for (const FeaturePath &Path : Change.Removed)
      internPath(Path);
    for (const FeaturePath &Path : Change.Added)
      internPath(Path);
  }

  // Dense label-similarity warm, as the legacy constructor did it.
  std::vector<double> Sim(LabelList.size() * LabelList.size(), 0.0);
  for (std::size_t I = 0; I < LabelList.size(); ++I)
    for (std::size_t J = I; J < LabelList.size(); ++J)
      Sim[I * LabelList.size() + J] = Sim[J * LabelList.size() + I] =
          labelSimilarity(LabelList[I], LabelList[J]);
  return LabelList.size() + PathLabels.size() + Sim.size();
}

double millisSince(std::chrono::steady_clock::time_point Start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - Start)
      .count();
}

} // namespace

int main(int argc, char **argv) {
  long long NMaxArg = argc > 1 ? std::atoll(argv[1]) : 10000;
  if (NMaxArg <= 0) {
    std::fprintf(stderr, "usage: micro_interning [nmax > 0] [seed] [out.json]"
                         "   (defaults: 10000 42 BENCH_interning.json)\n");
    return 2;
  }
  std::size_t NMax = static_cast<std::size_t>(NMaxArg);
  std::uint64_t Seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 42;
  const char *OutPath = argc > 3 ? argv[3] : "BENCH_interning.json";

  bool MemoryBarMet = true;
  bool ThroughputBarMet = true;
  double LargestClusterMs = 0.0;
  std::size_t LargestN = 0;

  JsonWriter W;
  W.beginObject();
  W.key("bench").value("micro_interning");
  W.key("seed").value(Seed);
  W.key("sweep").beginArray();

  for (std::size_t N : {std::size_t{1000}, std::size_t{5000},
                        std::size_t{10000}}) {
    if (N > NMax)
      continue;
    Corpora Corpus;
    buildCorpora(Corpus, Seed + N, N);

    std::size_t StringBytes = stringModelBytes(Corpus.Strings);
    std::size_t InternedBytes =
        internedModelBytes(Corpus.Interned, Corpus.Table);
    double Ratio = static_cast<double>(StringBytes) /
                   static_cast<double>(InternedBytes);
    MemoryBarMet = MemoryBarMet && Ratio >= 2.0;

    auto Start = std::chrono::steady_clock::now();
    std::size_t LegacySize = legacyCacheConstruct(Corpus.Strings);
    double LegacyMs = millisSince(Start);

    Start = std::chrono::steady_clock::now();
    UsageDistCache Cache(Corpus.Interned);
    double InternedMs = millisSince(Start);

    // Pair throughput: the same sampled pairs through the warmed cache
    // and through the string-space reference metric.
    Rng PairRng(Seed ^ N);
    std::vector<std::pair<std::size_t, std::size_t>> Pairs;
    for (int P = 0; P < 20000; ++P)
      Pairs.emplace_back(PairRng.index(N), PairRng.index(N));
    double Checksum = 0.0;
    Start = std::chrono::steady_clock::now();
    for (const auto &[I, J] : Pairs)
      Checksum += Cache(I, J);
    double CachePairMs = millisSince(Start);
    double StringChecksum = 0.0;
    Start = std::chrono::steady_clock::now();
    for (const auto &[I, J] : Pairs)
      StringChecksum +=
          usageDist(Corpus.Interned[I], Corpus.Interned[J]);
    double StringPairMs = millisSince(Start);
    ThroughputBarMet = ThroughputBarMet && CachePairMs <= StringPairMs;

    // Wall-time regression guard: sharded clustering at the largest n.
    double ClusterMs = 0.0;
    if (N == NMax || N == 10000) {
      ClusteringOptions Opts;
      Opts.Sharding.Enabled = true;
      Opts.Sharding.MaxShardSize = 512;
      Opts.Sharding.Threads = 8;
      Start = std::chrono::steady_clock::now();
      Dendrogram Tree = clusterUsageChangesSharded(Corpus.Interned, Opts);
      ClusterMs = millisSince(Start);
      if (Tree.leafCount() != N)
        return 1;
      LargestClusterMs = ClusterMs;
      LargestN = N;
    }

    W.beginObject();
    W.key("n").value(static_cast<std::uint64_t>(N));
    W.key("string_model_bytes")
        .value(static_cast<std::uint64_t>(StringBytes));
    W.key("interned_model_bytes")
        .value(static_cast<std::uint64_t>(InternedBytes));
    W.key("string_bytes_per_change")
        .value(static_cast<std::uint64_t>(StringBytes / N));
    W.key("interned_bytes_per_change")
        .value(static_cast<std::uint64_t>(InternedBytes / N));
    W.key("reduction_ratio").value(Ratio);
    W.key("interner_table_bytes")
        .value(static_cast<std::uint64_t>(Corpus.Table.memoryBytes()));
    W.key("cache_construct_legacy_ms").value(LegacyMs);
    W.key("cache_construct_interned_ms").value(InternedMs);
    W.key("pair_eval_cache_ms").value(CachePairMs);
    W.key("pair_eval_string_ms").value(StringPairMs);
    W.key("cluster_sharded_ms").value(ClusterMs);
    W.endObject();

    std::fprintf(stderr,
                 "  n=%-6zu  %6.1f KiB -> %6.1f KiB (%.2fx)  cache %6.1f -> "
                 "%6.1f ms  pairs %7.1f -> %6.1f ms\n",
                 N, StringBytes / 1024.0, InternedBytes / 1024.0, Ratio,
                 LegacyMs, InternedMs, StringPairMs, CachePairMs);
    if (Checksum < 0.0 || StringChecksum < 0.0 || LegacySize == 0)
      return 1; // keep the measured work observable
  }
  W.endArray();
  W.key("largest_n").value(static_cast<std::uint64_t>(LargestN));
  W.key("cluster_sharded_largest_ms").value(LargestClusterMs);
  W.key("memory_bar_met").value(MemoryBarMet);
  W.key("throughput_bar_met").value(ThroughputBarMet);
  W.endObject();

  std::string Json = W.take();
  std::printf("%s\n", Json.c_str());
  std::ofstream Out(OutPath);
  if (Out)
    Out << Json << "\n";
  else
    std::fprintf(stderr, "warning: cannot write %s\n", OutPath);

  if (!MemoryBarMet) {
    std::fprintf(stderr, "FAIL: interned model saved less than 2x resident "
                         "bytes per change\n");
    return 1;
  }
  if (!ThroughputBarMet) {
    std::fprintf(stderr, "FAIL: warmed cache slower than string-space "
                         "usageDist on sampled pairs\n");
    return 1;
  }
  return 0;
}
