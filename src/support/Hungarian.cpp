//===- support/Hungarian.cpp ----------------------------------------------===//

#include "support/Hungarian.h"

#include <cassert>
#include <limits>

using namespace diffcode;

// Kuhn–Munkres with row/column potentials (the classic O(n^3) "e-maxx"
// formulation, 1-indexed internally). Works on a square matrix; callers
// with rectangular inputs are padded with zero-cost entries below.
static std::vector<std::size_t>
solveSquare(const std::vector<std::vector<double>> &A) {
  const std::size_t N = A.size();
  const double Inf = std::numeric_limits<double>::infinity();
  std::vector<double> U(N + 1, 0.0), V(N + 1, 0.0);
  std::vector<std::size_t> P(N + 1, 0), Way(N + 1, 0);

  for (std::size_t I = 1; I <= N; ++I) {
    P[0] = I;
    std::size_t J0 = 0;
    std::vector<double> MinV(N + 1, Inf);
    std::vector<bool> Used(N + 1, false);
    do {
      Used[J0] = true;
      std::size_t I0 = P[J0], J1 = 0;
      double Delta = Inf;
      for (std::size_t J = 1; J <= N; ++J) {
        if (Used[J])
          continue;
        double Cur = A[I0 - 1][J - 1] - U[I0] - V[J];
        if (Cur < MinV[J]) {
          MinV[J] = Cur;
          Way[J] = J0;
        }
        if (MinV[J] < Delta) {
          Delta = MinV[J];
          J1 = J;
        }
      }
      for (std::size_t J = 0; J <= N; ++J) {
        if (Used[J]) {
          U[P[J]] += Delta;
          V[J] -= Delta;
        } else {
          MinV[J] -= Delta;
        }
      }
      J0 = J1;
    } while (P[J0] != 0);
    do {
      std::size_t J1 = Way[J0];
      P[J0] = P[J1];
      J0 = J1;
    } while (J0 != 0);
  }

  // P[J] = row assigned to column J; invert.
  std::vector<std::size_t> RowToCol(N, 0);
  for (std::size_t J = 1; J <= N; ++J)
    RowToCol[P[J] - 1] = J - 1;
  return RowToCol;
}

Assignment diffcode::solveAssignment(const CostMatrix &Costs) {
  const std::size_t N = std::max(Costs.rows(), Costs.cols());
  Assignment Result;
  if (N == 0)
    return Result;

  std::vector<std::vector<double>> Square(N, std::vector<double>(N, 0.0));
  for (std::size_t R = 0; R < Costs.rows(); ++R)
    for (std::size_t C = 0; C < Costs.cols(); ++C)
      Square[R][C] = Costs.at(R, C);

  std::vector<std::size_t> RowToCol = solveSquare(Square);

  Result.RowToCol.assign(Costs.rows(), Assignment::Unmatched);
  for (std::size_t R = 0; R < Costs.rows(); ++R) {
    std::size_t C = RowToCol[R];
    if (C < Costs.cols()) {
      Result.RowToCol[R] = C;
      Result.TotalCost += Costs.at(R, C);
    }
  }
  return Result;
}
