//===- tests/test_corpus.cpp - Corpus generator & miner tests --------------===//

#include "corpus/CorpusGenerator.h"
#include "corpus/Miner.h"

#include "analysis/AbstractInterpreter.h"
#include "javaast/Parser.h"
#include "rules/BuiltinRules.h"
#include "rules/ChangeClassifier.h"

#include <gtest/gtest.h>

#include <map>

using namespace diffcode;
using namespace diffcode::corpus;

namespace {

CorpusOptions smallOptions(std::uint64_t Seed = 11) {
  CorpusOptions Opts;
  Opts.Seed = Seed;
  Opts.NumProjects = 12;
  return Opts;
}

} // namespace

TEST(Scenario, RuleIdsAndNamesDefined) {
  for (unsigned I = 0; I < NumScenarioKinds; ++I) {
    ScenarioKind Kind = static_cast<ScenarioKind>(I);
    EXPECT_STRNE(scenarioRuleId(Kind), "");
    EXPECT_STRNE(scenarioName(Kind), "");
  }
}

TEST(Scenario, DetailsComeFromPools) {
  Rng R(3);
  ScenarioDetails D = drawDetails(ScenarioKind::BlockCipher, R);
  EXPECT_FALSE(D.InsecureAlgo.empty());
  EXPECT_FALSE(D.SecureAlgo.empty());
  EXPECT_LT(D.InsecureIter, 1000);
  EXPECT_GE(D.SecureIter, 1000);
  EXPECT_FALSE(D.ConstLiteral.empty());
}

TEST(Scenario, RenderIsDeterministic) {
  Rng R(5);
  ScenarioInstance Inst;
  Inst.Kind = ScenarioKind::StaticIv;
  Inst.Details = drawDetails(Inst.Kind, R);
  Inst.StyleSeed = 99;
  Inst.ClassName = "Demo";
  EXPECT_EQ(renderScenario(Inst, "com.x"), renderScenario(Inst, "com.x"));
}

TEST(Scenario, StyleSeedChangesTextNotSemantics) {
  Rng R(5);
  ScenarioInstance A;
  A.Kind = ScenarioKind::Hashing;
  A.Details = drawDetails(A.Kind, R);
  A.StyleSeed = 1;
  A.ClassName = "Demo";
  ScenarioInstance B = A;
  B.StyleSeed = 2;
  EXPECT_NE(renderScenario(A, "com.x"), renderScenario(B, "com.x"));
}

TEST(Scenario, NoUsageVariantOmitsCrypto) {
  Rng R(5);
  ScenarioInstance Inst;
  Inst.Kind = ScenarioKind::BlockCipher;
  Inst.Details = drawDetails(Inst.Kind, R);
  Inst.StyleSeed = 7;
  Inst.IncludeUsage = false;
  Inst.ClassName = "Demo";
  std::string Code = renderScenario(Inst, "com.x");
  EXPECT_EQ(Code.find("Cipher.getInstance"), std::string::npos);
}

TEST(CorpusGenerator, DeterministicForSeed) {
  Corpus A = CorpusGenerator(smallOptions()).generate();
  Corpus B = CorpusGenerator(smallOptions()).generate();
  ASSERT_EQ(A.Projects.size(), B.Projects.size());
  for (std::size_t I = 0; I < A.Projects.size(); ++I) {
    EXPECT_EQ(A.Projects[I].Name, B.Projects[I].Name);
    ASSERT_EQ(A.Projects[I].History.size(), B.Projects[I].History.size());
    for (std::size_t J = 0; J < A.Projects[I].History.size(); ++J) {
      EXPECT_EQ(A.Projects[I].History[J].NewCode,
                B.Projects[I].History[J].NewCode);
      EXPECT_EQ(A.Projects[I].History[J].Kind,
                B.Projects[I].History[J].Kind);
    }
  }
}

TEST(CorpusGenerator, DifferentSeedsDiffer) {
  Corpus A = CorpusGenerator(smallOptions(1)).generate();
  Corpus B = CorpusGenerator(smallOptions(2)).generate();
  bool AnyDiff = false;
  for (std::size_t I = 0; I < A.Projects.size(); ++I)
    AnyDiff = AnyDiff || A.Projects[I].History.size() !=
                             B.Projects[I].History.size() ||
              A.Projects[I].Files[0].Code != B.Projects[I].Files[0].Code;
  EXPECT_TRUE(AnyDiff);
}

TEST(CorpusGenerator, CommitMixIsRefactoringDominated) {
  CorpusOptions Opts;
  Opts.Seed = 21;
  Opts.NumProjects = 60;
  Corpus C = CorpusGenerator(Opts).generate();
  std::map<std::string, unsigned> Kinds;
  for (const Project &P : C.Projects)
    for (const CodeChange &Change : P.History)
      ++Kinds[Change.Kind.substr(0, Change.Kind.find(':'))];
  EXPECT_GT(Kinds["refactor"], Kinds["fix"] * 5);
  EXPECT_GT(Kinds["fix"], Kinds["bug"]); // fixes dominate regressions
  EXPECT_GT(Kinds["fix"], 0u);
  EXPECT_GT(Kinds["add"], 0u);
}

TEST(CorpusGenerator, ChangesActuallyChangeCode) {
  Corpus C = CorpusGenerator(smallOptions()).generate();
  unsigned NonTrivial = 0, Total = 0;
  for (const Project &P : C.Projects)
    for (const CodeChange &Change : P.History) {
      ++Total;
      if (Change.OldCode != Change.NewCode)
        ++NonTrivial;
    }
  // Style reseeding nearly always alters the text.
  EXPECT_GT(NonTrivial * 10, Total * 9);
}

TEST(CorpusGenerator, MetadataInRealisticRanges) {
  Corpus C = CorpusGenerator(smallOptions()).generate();
  for (const Project &P : C.Projects) {
    EXPECT_GE(P.Meta.MinSdkVersion, 14);
    EXPECT_LE(P.Meta.MinSdkVersion, 26);
  }
}

TEST(CorpusGenerator, HeadStateMatchesLastCommit) {
  Corpus C = CorpusGenerator(smallOptions()).generate();
  for (const Project &P : C.Projects) {
    for (const ProjectFile &File : P.Files) {
      // The final code of each file equals the NewCode of its last commit
      // (if any commit touched it).
      const CodeChange *Last = nullptr;
      for (const CodeChange &Change : P.History)
        if (Change.FileName == File.Name)
          Last = &Change;
      if (Last)
        EXPECT_EQ(File.Code, Last->NewCode);
    }
  }
}

TEST(CorpusGenerator, GroundTruthFixesAreRealFixes) {
  // Every generated "fix:<rule>" commit must classify as a SecurityFix
  // under that rule (the generator and the checker agree on semantics).
  CorpusOptions Opts = smallOptions(31);
  Opts.NumProjects = 40; // misuse rates are calibrated low; need volume
  Corpus C = CorpusGenerator(Opts).generate();
  analysis::AbstractInterpreter Interp(
      apimodel::CryptoApiModel::javaCryptoApi());
  unsigned Checked = 0;
  for (const Project &P : C.Projects) {
    for (const CodeChange &Change : P.History) {
      if (!Change.isGroundTruthFix())
        continue;
      std::string RuleId = Change.Kind.substr(4);
      const rules::Rule *R = rules::findRule(RuleId);
      ASSERT_NE(R, nullptr) << RuleId;

      java::AstContext Ctx;
      java::DiagnosticsEngine Diags;
      auto *OldUnit = java::parseJava(Change.OldCode, Ctx, Diags);
      auto *NewUnit = java::parseJava(Change.NewCode, Ctx, Diags);
      ASSERT_FALSE(Diags.hasErrors());
      auto OldRes = Interp.analyze(OldUnit);
      auto NewRes = Interp.analyze(NewUnit);
      rules::ProjectMetadata Meta = P.Meta;
      if (RuleId == "R6") { // rule guarded by metadata; force applicable
        Meta.IsAndroid = true;
        Meta.MinSdkVersion = 18;
        Meta.HasLinuxPrngFix = false;
      }
      EXPECT_EQ(rules::classifyChange(*R, rules::UnitFacts::from(OldRes),
                                      rules::UnitFacts::from(NewRes), Meta),
                rules::ChangeClass::SecurityFix)
          << Change.origin() << " " << Change.Kind;
      ++Checked;
    }
  }
  EXPECT_GT(Checked, 5u);
}

//===----------------------------------------------------------------------===//
// Miner
//===----------------------------------------------------------------------===//

TEST(Miner, SelectsCryptoTouchingChanges) {
  const apimodel::CryptoApiModel &Api =
      apimodel::CryptoApiModel::javaCryptoApi();
  Miner M(Api);
  CodeChange Touching;
  Touching.OldCode = "class A { Cipher c; }";
  Touching.NewCode = "class A { }";
  EXPECT_TRUE(M.touchesTargetClass(Touching));

  CodeChange Plain;
  Plain.OldCode = "class A { int x; }";
  Plain.NewCode = "class A { int y; }";
  EXPECT_FALSE(M.touchesTargetClass(Plain));

  CodeChange NewOnly;
  NewOnly.NewCode = "class A { MessageDigest d; }";
  EXPECT_TRUE(M.touchesTargetClass(NewOnly));
}

TEST(Miner, EnforcesCommitThreshold) {
  const apimodel::CryptoApiModel &Api =
      apimodel::CryptoApiModel::javaCryptoApi();
  MinerOptions Opts;
  Opts.MinCommitsPerProject = 100;
  Miner M(Api, Opts);
  Corpus C = CorpusGenerator(smallOptions()).generate();
  EXPECT_TRUE(M.mine(C).empty());
}

TEST(Miner, MinesWholeCorpus) {
  const apimodel::CryptoApiModel &Api =
      apimodel::CryptoApiModel::javaCryptoApi();
  Miner M(Api);
  Corpus C = CorpusGenerator(smallOptions()).generate();
  std::vector<const CodeChange *> Mined = M.mine(C);
  EXPECT_GT(Mined.size(), 0u);
  EXPECT_LE(Mined.size(), C.totalChanges());
  for (const CodeChange *Change : Mined)
    EXPECT_TRUE(M.touchesTargetClass(*Change));
}

TEST(Scenario, WeightsAndRatesWellFormed) {
  double Total = 0;
  for (unsigned I = 0; I < NumScenarioKinds; ++I) {
    ScenarioKind Kind = static_cast<ScenarioKind>(I);
    EXPECT_GT(scenarioWeight(Kind), 0.0);
    EXPECT_GE(scenarioInitialInsecureProb(Kind), 0.0);
    EXPECT_LE(scenarioInitialInsecureProb(Kind), 1.0);
    Total += scenarioWeight(Kind);
  }
  EXPECT_GT(Total, 1.0);
  // Calibration sanity: provider misuse is near-universal, static seeds
  // are near-extinct (Figure 10 ordering).
  EXPECT_GT(scenarioInitialInsecureProb(ScenarioKind::ProviderChoice),
            scenarioInitialInsecureProb(ScenarioKind::StaticSeed));
}
