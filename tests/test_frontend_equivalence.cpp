//===- tests/test_frontend_equivalence.cpp - Front-end differential suite --===//
//
// Locks the table-driven lexer + arena parser rewrite to the retained
// seed front end (javaast/ReferenceLexer): on every source in the full
// generated corpus, token streams, AstPrinter output, and diagnostics
// must be byte-identical, and the whole-corpus report JSON must be
// byte-identical across 1/2/8 pipeline threads. Any divergence means the
// rewrite changed observable behavior and must be fixed, not waived.
//
//===----------------------------------------------------------------------===//

#include "core/DiffCode.h"
#include "core/ReportWriter.h"
#include "corpus/CorpusGenerator.h"
#include "corpus/Miner.h"
#include "javaast/AstPrinter.h"
#include "javaast/Lexer.h"
#include "javaast/Parser.h"
#include "javaast/ReferenceLexer.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

using namespace diffcode;
using namespace diffcode::java;

namespace {

const apimodel::CryptoApiModel &api() {
  return apimodel::CryptoApiModel::javaCryptoApi();
}

/// Every distinct source text in the default generated corpus (old and
/// new version of every mined change, empties dropped).
const std::vector<std::string> &corpusSources() {
  static const std::vector<std::string> *Sources = [] {
    corpus::CorpusGenerator Gen;
    corpus::Corpus C = Gen.generate();
    corpus::Miner M(api());
    auto *Out = new std::vector<std::string>;
    std::set<std::string> Seen;
    for (const corpus::CodeChange *Change : M.mine(C))
      for (const std::string *Code : {&Change->OldCode, &Change->NewCode})
        if (!Code->empty() && Seen.insert(*Code).second)
          Out->push_back(*Code);
    return Out;
  }();
  return *Sources;
}

/// Renders a diagnostics list to one comparable string (level + rendered
/// message per line).
std::string diagsToString(const DiagnosticsEngine &Diags) {
  std::ostringstream Os;
  for (const Diagnostic &D : Diags.all())
    Os << (D.Level == DiagLevel::Error ? "error|" : "warning|") << D.str()
       << "\n";
  Os << "budget=" << (Diags.budgetExceeded() ? 1 : 0);
  return Os.str();
}

/// Asserts the production and reference lexers agree byte for byte on
/// \p Source: token count, kinds, spellings, full locations (line,
/// column, and offset), and diagnostics.
void expectTokenEquivalence(std::string_view Source, const char *Tag) {
  DiagnosticsEngine NewDiags, RefDiags;
  Lexer NewLex(Source, NewDiags);
  ReferenceLexer RefLex(Source, RefDiags);
  TokenStream NewStream = NewLex.lexAll();
  TokenStream RefStream = RefLex.lexAll();
  ASSERT_EQ(NewStream.size(), RefStream.size()) << Tag;
  for (std::size_t I = 0; I < NewStream.size(); ++I) {
    const Token &A = NewStream[I];
    const Token &B = RefStream[I];
    ASSERT_EQ(A.Kind, B.Kind) << Tag << " token " << I;
    ASSERT_EQ(A.Text, B.Text) << Tag << " token " << I;
    ASSERT_EQ(A.Loc.Line, B.Loc.Line) << Tag << " token " << I;
    ASSERT_EQ(A.Loc.Column, B.Loc.Column) << Tag << " token " << I;
    ASSERT_EQ(A.Loc.Offset, B.Loc.Offset) << Tag << " token " << I;
  }
  ASSERT_EQ(diagsToString(NewDiags), diagsToString(RefDiags)) << Tag;
}

/// Parses \p Source from both lexers' token streams and asserts the
/// printed trees and diagnostics are byte-identical.
void expectParseEquivalence(std::string_view Source, const char *Tag) {
  AstContext NewCtx, RefCtx;
  DiagnosticsEngine NewDiags, RefDiags;
  Lexer NewLex(Source, NewDiags);
  Parser NewParser(NewLex.lexAll(), NewCtx, NewDiags);
  CompilationUnit *NewUnit = NewParser.parseCompilationUnit();
  ReferenceLexer RefLex(Source, RefDiags);
  Parser RefParser(RefLex.lexAll(), RefCtx, RefDiags);
  CompilationUnit *RefUnit = RefParser.parseCompilationUnit();
  ASSERT_EQ(NewUnit == nullptr, RefUnit == nullptr) << Tag;
  ASSERT_EQ(diagsToString(NewDiags), diagsToString(RefDiags)) << Tag;
  if (NewUnit) {
    AstPrinter NewPrinter, RefPrinter;
    ASSERT_EQ(NewPrinter.print(NewUnit), RefPrinter.print(RefUnit)) << Tag;
  }
}

} // namespace

//===----------------------------------------------------------------------===//
// Token streams over the full generated corpus.
//===----------------------------------------------------------------------===//

TEST(FrontendEquivalence, TokenStreamsByteIdenticalOnFullCorpus) {
  const std::vector<std::string> &Sources = corpusSources();
  ASSERT_GE(Sources.size(), 1000u)
      << "corpus unexpectedly small; differential coverage would be weak";
  for (std::size_t I = 0; I < Sources.size(); ++I) {
    SCOPED_TRACE("source " + std::to_string(I));
    expectTokenEquivalence(Sources[I], "corpus");
    if (HasFatalFailure())
      return;
  }
}

TEST(FrontendEquivalence, PrintedAstAndDiagnosticsIdenticalOnFullCorpus) {
  const std::vector<std::string> &Sources = corpusSources();
  for (std::size_t I = 0; I < Sources.size(); ++I) {
    SCOPED_TRACE("source " + std::to_string(I));
    expectParseEquivalence(Sources[I], "corpus");
    if (HasFatalFailure())
      return;
  }
}

//===----------------------------------------------------------------------===//
// Hand-picked edge cases the corpus generator does not emit.
//===----------------------------------------------------------------------===//

TEST(FrontendEquivalence, EdgeCaseInputsAgree) {
  const char *Cases[] = {
      "",
      "\n\n\n",
      "\r\n\r\n",
      "a",
      "/* unterminated",
      "// only a comment",
      "\"unterminated string",
      "\"unterminated with newline\nx",
      "'",
      "'a",
      "''",
      "'\\u0041'",
      "\"\\u\"",
      "\"\\u1\"",
      "\"tab\\there\"",
      "\"backslash at end\\",
      "int x = 0x_1F__ + 0b10_01 + 1_000_000L + 3.14f + 2.5d;",
      "a # b ` c \x01 d \x7f e",
      "x...y..z",
      "a+++++b",
      "<<>>><=>=<",
      "@interface F { }",
      "class C { C() { this(1); } }",
      "\xc3\xa9\xc3\xa8",      // non-ASCII bytes
      "ident\xc3\xa9rest",     // non-ASCII inside identifier run
      "\"caf\xc3\xa9\"",       // non-ASCII inside string
  };
  for (const char *Source : Cases) {
    SCOPED_TRACE(std::string("case: ") + Source);
    expectTokenEquivalence(Source, "edge");
    if (HasFatalFailure())
      return;
    expectParseEquivalence(Source, "edge");
    if (HasFatalFailure())
      return;
  }
}

TEST(FrontendEquivalence, KeywordLookupMatchesReferenceTable) {
  // The table-driven lookupKeyword vs the seed hash map, on every
  // keyword, every keyword prefix/extension, and random short strings.
  const char *Keywords[] = {
      "abstract", "assert",     "boolean",  "break",      "byte",
      "case",     "catch",      "char",     "class",      "continue",
      "default",  "do",         "double",   "else",       "extends",
      "false",    "final",      "finally",  "float",      "for",
      "if",       "implements", "import",   "instanceof", "int",
      "interface", "long",      "new",      "null",       "package",
      "private",  "protected",  "public",   "return",     "short",
      "static",   "super",      "switch",   "synchronized", "this",
      "throw",    "throws",     "true",     "try",        "void",
      "while"};
  for (const char *K : Keywords) {
    std::string S(K);
    EXPECT_EQ(lookupKeyword(S), referenceLookupKeyword(S)) << S;
    EXPECT_NE(lookupKeyword(S), TokenKind::Identifier) << S;
    for (std::size_t Cut = 0; Cut < S.size(); ++Cut)
      EXPECT_EQ(lookupKeyword(S.substr(0, Cut)),
                referenceLookupKeyword(S.substr(0, Cut)))
          << S.substr(0, Cut);
    EXPECT_EQ(lookupKeyword(S + "x"), referenceLookupKeyword(S + "x")) << S;
    std::string Upper = S;
    Upper[0] = static_cast<char>(Upper[0] - 'a' + 'A');
    EXPECT_EQ(lookupKeyword(Upper), referenceLookupKeyword(Upper)) << Upper;
  }
  Rng R(20260808);
  const char Alphabet[] = "abcdefghijklmnopqrstuvwxyz_$";
  for (int Case = 0; Case < 20000; ++Case) {
    std::string S;
    std::size_t Len = R.range(0, 13);
    for (std::size_t I = 0; I < Len; ++I)
      S += Alphabet[R.index(sizeof(Alphabet) - 1)];
    ASSERT_EQ(lookupKeyword(S), referenceLookupKeyword(S)) << S;
  }
}

//===----------------------------------------------------------------------===//
// Whole-corpus report JSON across thread counts.
//===----------------------------------------------------------------------===//

TEST(FrontendEquivalence, CorpusReportJsonByteIdenticalAcrossThreads) {
  corpus::CorpusGenerator Gen;
  corpus::Corpus C = Gen.generate();
  corpus::Miner M(api());
  std::vector<const corpus::CodeChange *> Mined = M.mine(C);
  ASSERT_GE(Mined.size(), 1000u);

  auto Run = [&Mined](unsigned Threads) {
    core::PipelineConfig Opts;
    Opts.Threads = Threads;
    core::DiffCode System(api(), Opts);
    return core::corpusReportToJson(System.run(
        {.Changes = Mined, .TargetClasses = api().targetClasses()}));
  };

  std::string Serial = Run(1);
  EXPECT_FALSE(Serial.empty());
  EXPECT_EQ(Serial, Run(2)) << "2-thread report diverged";
  EXPECT_EQ(Serial, Run(8)) << "8-thread report diverged";
}

//===----------------------------------------------------------------------===//
// Tier-1 smoke: the bundled on-disk corpus through the new front end.
//===----------------------------------------------------------------------===//

TEST(FrontendSmoke, SmokeCorpusParsesThroughNewFrontEnd) {
  namespace fs = std::filesystem;
  fs::path Root(DIFFCODE_SMOKE_CORPUS);
  ASSERT_TRUE(fs::exists(Root)) << Root;
  std::size_t Files = 0;
  std::size_t Clean = 0;
  for (const fs::directory_entry &Entry :
       fs::recursive_directory_iterator(Root)) {
    if (!Entry.is_regular_file() || Entry.path().extension() != ".java")
      continue;
    ++Files;
    std::ifstream In(Entry.path());
    std::stringstream Ss;
    Ss << In.rdbuf();
    std::string Source = Ss.str();
    SCOPED_TRACE(Entry.path().string());
    expectTokenEquivalence(Source, "smoke");
    if (HasFatalFailure())
      return;

    // The smoke corpus deliberately includes broken files; the bar here
    // is termination inside default budgets, not error-free parses.
    AstContext Ctx;
    DiagnosticsEngine Diags;
    CompilationUnit *Unit = parseJava(Source, Ctx, Diags);
    ASSERT_NE(Unit, nullptr);
    EXPECT_FALSE(Diags.budgetExceeded()) << diagsToString(Diags);
    EXPECT_GT(Ctx.size(), 0u);
    EXPECT_GT(Ctx.arenaBytes(), 0u);
    if (!Diags.hasErrors())
      ++Clean;
  }
  ASSERT_GT(Files, 0u) << "no .java files under " << Root;
  EXPECT_GT(Clean, 0u) << "every smoke file produced errors";
}
