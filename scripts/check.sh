#!/usr/bin/env bash
# Tier-1 verification: configure, build, and run the test suite.
# Extra arguments pass through to ctest, e.g.
#   scripts/check.sh -L tier1
#   scripts/check.sh -L differential
set -euo pipefail

cd "$(dirname "$0")/.."

cmake -B build -S .
cmake --build build -j"$(nproc)"
cd build
ctest --output-on-failure -j"$(nproc)" "$@"
