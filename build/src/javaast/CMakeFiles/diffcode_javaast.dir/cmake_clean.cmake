file(REMOVE_RECURSE
  "CMakeFiles/diffcode_javaast.dir/Ast.cpp.o"
  "CMakeFiles/diffcode_javaast.dir/Ast.cpp.o.d"
  "CMakeFiles/diffcode_javaast.dir/AstPrinter.cpp.o"
  "CMakeFiles/diffcode_javaast.dir/AstPrinter.cpp.o.d"
  "CMakeFiles/diffcode_javaast.dir/AstVisitor.cpp.o"
  "CMakeFiles/diffcode_javaast.dir/AstVisitor.cpp.o.d"
  "CMakeFiles/diffcode_javaast.dir/Diagnostics.cpp.o"
  "CMakeFiles/diffcode_javaast.dir/Diagnostics.cpp.o.d"
  "CMakeFiles/diffcode_javaast.dir/Lexer.cpp.o"
  "CMakeFiles/diffcode_javaast.dir/Lexer.cpp.o.d"
  "CMakeFiles/diffcode_javaast.dir/Parser.cpp.o"
  "CMakeFiles/diffcode_javaast.dir/Parser.cpp.o.d"
  "CMakeFiles/diffcode_javaast.dir/Token.cpp.o"
  "CMakeFiles/diffcode_javaast.dir/Token.cpp.o.d"
  "libdiffcode_javaast.a"
  "libdiffcode_javaast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/diffcode_javaast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
