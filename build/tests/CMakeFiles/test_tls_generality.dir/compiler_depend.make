# Empty compiler generated dependencies file for test_tls_generality.
# This may be replaced when dependencies are built.
