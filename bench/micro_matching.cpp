//===- bench/micro_matching.cpp - Matching & clustering scaling ------------===//
//
// Part of the DiffCode project, a reproduction of "Inferring Crypto API
// Rules from Code Changes" (PLDI'18).
//
//===----------------------------------------------------------------------===//
//
// Micro-benchmark M2: the algorithmic kernels behind Sections 3.5 and 4.3
// — Levenshtein distance, the Hungarian assignment (DAG pairing and path
// matching both use it), the DAG IoU distance, pathsDist, and complete-
// linkage clustering as a function of input size. Shows the O(n^3)
// assignment and O(n^2)-distance clustering stay cheap at the paper's
// post-filter scale (186 changes).
//
//===----------------------------------------------------------------------===//

#include <benchmark/benchmark.h>

#include "cluster/Distance.h"
#include "cluster/HierarchicalClustering.h"
#include "support/Hungarian.h"
#include "support/Rng.h"
#include "support/StringUtils.h"

using namespace diffcode;
using namespace diffcode::usage;

namespace {

std::string randomTransform(Rng &R) {
  static const char *Algos[] = {"AES", "DES", "RC4", "Blowfish"};
  static const char *Modes[] = {"ECB", "CBC", "GCM", "CTR"};
  static const char *Pads[] = {"NoPadding", "PKCS5Padding"};
  return std::string(Algos[R.index(4)]) + "/" + Modes[R.index(4)] + "/" +
         Pads[R.index(2)];
}

FeaturePath randomPath(Rng &R) {
  static const char *Methods[] = {"Cipher.getInstance/1", "Cipher.init/3",
                                  "Cipher.doFinal/1",
                                  "MessageDigest.getInstance/1"};
  FeaturePath P = {NodeLabel::root("Cipher"),
                   NodeLabel::method(Methods[R.index(4)])};
  P.push_back(NodeLabel::arg(
      1, analysis::AbstractValue::strConst(randomTransform(R))));
  return P;
}

UsageChange randomChange(Rng &R) {
  static support::Interner Table;
  std::vector<FeaturePath> Removed, Added;
  for (std::size_t I = 0, N = 1 + R.range(0, 2); I < N; ++I)
    Removed.push_back(randomPath(R));
  for (std::size_t I = 0, N = 1 + R.range(0, 2); I < N; ++I)
    Added.push_back(randomPath(R));
  return UsageChange::intern(Table, "Cipher", Removed, Added);
}

void BM_Levenshtein(benchmark::State &State) {
  Rng R(1);
  std::string A = randomTransform(R) + randomTransform(R);
  std::string B = randomTransform(R) + randomTransform(R);
  for (auto _ : State)
    benchmark::DoNotOptimize(levenshtein(A, B));
}
BENCHMARK(BM_Levenshtein);

void BM_Hungarian(benchmark::State &State) {
  const std::size_t N = static_cast<std::size_t>(State.range(0));
  Rng R(7);
  CostMatrix M(N, N);
  for (std::size_t I = 0; I < N; ++I)
    for (std::size_t J = 0; J < N; ++J)
      M.at(I, J) = R.uniform();
  for (auto _ : State)
    benchmark::DoNotOptimize(solveAssignment(M));
  State.SetComplexityN(static_cast<int>(N));
}
BENCHMARK(BM_Hungarian)->RangeMultiplier(2)->Range(4, 128)->Complexity();

void BM_PathsDist(benchmark::State &State) {
  const std::size_t N = static_cast<std::size_t>(State.range(0));
  Rng R(3);
  std::vector<FeaturePath> F1, F2;
  for (std::size_t I = 0; I < N; ++I) {
    F1.push_back(randomPath(R));
    F2.push_back(randomPath(R));
  }
  for (auto _ : State)
    benchmark::DoNotOptimize(cluster::pathsDist(F1, F2));
}
BENCHMARK(BM_PathsDist)->Arg(2)->Arg(4)->Arg(8)->Arg(16);

void BM_UsageDist(benchmark::State &State) {
  Rng R(5);
  UsageChange A = randomChange(R), B = randomChange(R);
  for (auto _ : State)
    benchmark::DoNotOptimize(cluster::usageDist(A, B));
}
BENCHMARK(BM_UsageDist);

void BM_Clustering(benchmark::State &State) {
  const std::size_t N = static_cast<std::size_t>(State.range(0));
  Rng R(11);
  std::vector<UsageChange> Changes;
  for (std::size_t I = 0; I < N; ++I)
    Changes.push_back(randomChange(R));
  for (auto _ : State)
    benchmark::DoNotOptimize(cluster::clusterUsageChanges(Changes));
  State.SetComplexityN(static_cast<int>(N));
}
BENCHMARK(BM_Clustering)
    ->Arg(8)
    ->Arg(16)
    ->Arg(32)
    ->Arg(64)
    ->Arg(128)
    ->Arg(186) // the paper's post-filter corpus size
    ->Complexity();

} // namespace

BENCHMARK_MAIN();
