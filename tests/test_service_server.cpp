//===- tests/test_service_server.cpp - Service wire protocol & server -----===//
//
// Part of the DiffCode project, a reproduction of "Inferring Crypto API
// Rules from Code Changes" (PLDI'18).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The diffcoded wire layer: codec round-trips (including hostile
/// payloads — truncation, version skew, trailing bytes, absurd counts),
/// a real forked server driven end to end over a socketpair, and the
/// chaos case: a server killed mid-ingest must leave the client with a
/// clean error, and replaying the full change history into a fresh
/// server must land on the cold batch report byte for byte (sessions
/// are in-memory; recovery is replay).
///
//===----------------------------------------------------------------------===//

#include "service/Server.h"

#include "core/ReportWriter.h"
#include "exec/Wire.h"
#include "scan/ScanReportWriter.h"
#include "scan/Scanner.h"
#include "support/Process.h"

#include <gtest/gtest.h>

#include <csignal>
#include <string>
#include <sys/socket.h>
#include <unistd.h>
#include <vector>

using namespace diffcode;
using namespace diffcode::service;

namespace {

const apimodel::CryptoApiModel &api() {
  return apimodel::CryptoApiModel::javaCryptoApi();
}

/// Hand-built changes (one healthy crypto edit, one odd one) — enough to
/// exercise ingest/snapshot without a generated corpus.
std::vector<corpus::CodeChange> sampleChanges() {
  corpus::CodeChange Fix;
  Fix.ProjectName = "proj-a";
  Fix.CommitIndex = 1;
  Fix.FileName = "A.java";
  Fix.OldCode = "class A { void m() { Cipher c = Cipher.getInstance(\"DES\"); "
                "c.init(1, k); } }";
  Fix.NewCode = "class A { void m() { Cipher c = "
                "Cipher.getInstance(\"AES/GCM/NoPadding\"); c.init(1, k); } }";
  corpus::CodeChange Odd;
  Odd.ProjectName = "proj-b";
  Odd.CommitIndex = 3;
  Odd.FileName = "B.java";
  Odd.Kind = "refactor";
  Odd.OldCode = "class B { int x; }";
  Odd.NewCode = "class B { int y; }";
  return {Fix, Odd};
}

std::string coldJson(const std::vector<corpus::CodeChange> &Changes) {
  core::DiffCode System(api(), core::PipelineConfig());
  core::PipelineRequest Request;
  for (const corpus::CodeChange &Change : Changes)
    Request.Changes.push_back(&Change);
  Request.TargetClasses = api().targetClasses();
  return core::corpusReportToJson(System.run(Request));
}

/// Forks a server speaking over one end of a socketpair; returns the
/// client fd (caller owns) and the child pid. The child's exit code is
/// the ServeOutcome: 0 Shutdown, 1 Disconnected, 2 ProtocolError.
pid_t forkServer(int &ClientFd) {
  int Sv[2];
  EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, Sv), 0);
  // The child closes its inherited copy of the client end, or the
  // parent's hang-up could never surface as EOF on the server side.
  pid_t Pid = support::spawnProcess([Fd = Sv[1], ClientEnd = Sv[0]] {
    ::close(ClientEnd);
    Server S(api(), SessionOptions());
    switch (S.serve(Fd, Fd)) {
    case ServeOutcome::Shutdown:
      return 0;
    case ServeOutcome::Disconnected:
      return 1;
    case ServeOutcome::ProtocolError:
      return 2;
    }
    return 3;
  });
  EXPECT_GT(Pid, 0);
  ::close(Sv[1]);
  ClientFd = Sv[0];
  return Pid;
}

} // namespace

//===----------------------------------------------------------------------===//
// Codecs
//===----------------------------------------------------------------------===//

TEST(ServiceProtocol, IngestRequestRoundTrips) {
  std::vector<corpus::CodeChange> Want = sampleChanges();
  Want[0].OldCode.push_back('\0'); // binary-safe payloads
  Want[0].OldCode += "tail";
  std::string Payload = encodeIngestRequest(Want);

  std::vector<corpus::CodeChange> Got;
  std::string Error;
  ASSERT_TRUE(decodeIngestRequest(Payload, Got, &Error)) << Error;
  ASSERT_EQ(Got.size(), Want.size());
  for (std::size_t I = 0; I < Want.size(); ++I) {
    EXPECT_EQ(Got[I].ProjectName, Want[I].ProjectName);
    EXPECT_EQ(Got[I].CommitIndex, Want[I].CommitIndex);
    EXPECT_EQ(Got[I].FileName, Want[I].FileName);
    EXPECT_EQ(Got[I].Kind, Want[I].Kind);
    EXPECT_EQ(Got[I].OldCode, Want[I].OldCode);
    EXPECT_EQ(Got[I].NewCode, Want[I].NewCode);
  }
}

TEST(ServiceProtocol, IngestRequestRejectsHostilePayloads) {
  std::vector<corpus::CodeChange> Got;
  std::string Error;

  // Truncated mid-string.
  std::string Payload = encodeIngestRequest(sampleChanges());
  EXPECT_FALSE(
      decodeIngestRequest(Payload.substr(0, Payload.size() / 2), Got, &Error));
  EXPECT_FALSE(Error.empty());

  // Trailing garbage after a well-formed body.
  EXPECT_FALSE(decodeIngestRequest(Payload + "x", Got, &Error));

  // Version skew.
  exec::WireWriter W;
  W.u32(ServiceProtocolVersion + 7);
  W.u32(0);
  EXPECT_FALSE(decodeIngestRequest(W.take(), Got, &Error));
  EXPECT_NE(Error.find("version"), std::string::npos);

  // An allocation-bomb count with no bytes behind it.
  exec::WireWriter Bomb;
  Bomb.u32(ServiceProtocolVersion);
  Bomb.u32(0xffffffffu);
  EXPECT_FALSE(decodeIngestRequest(Bomb.take(), Got, &Error));

  // Empty payload.
  EXPECT_FALSE(decodeIngestRequest("", Got, &Error));
}

TEST(ServiceProtocol, IngestReplyAndTextRoundTrip) {
  IngestReply Want;
  Want.TotalChanges = 12345678901ull;
  Want.Stats.Ingested = 5;
  Want.Stats.CacheHits = 2;
  Want.Stats.CacheMisses = 3;
  Want.Stats.Evictions = 1;
  Want.Stats.ClassesRepaired = 4;
  Want.Stats.ClassesReused = 2;
  Want.Stats.PairsComputed = 99;
  Want.Stats.PairsReused = 101;
  IngestReply Got;
  ASSERT_TRUE(decodeIngestReply(encodeIngestReply(Want), Got));
  EXPECT_EQ(Got.TotalChanges, Want.TotalChanges);
  EXPECT_EQ(Got.Stats.Ingested, Want.Stats.Ingested);
  EXPECT_EQ(Got.Stats.CacheHits, Want.Stats.CacheHits);
  EXPECT_EQ(Got.Stats.CacheMisses, Want.Stats.CacheMisses);
  EXPECT_EQ(Got.Stats.Evictions, Want.Stats.Evictions);
  EXPECT_EQ(Got.Stats.ClassesRepaired, Want.Stats.ClassesRepaired);
  EXPECT_EQ(Got.Stats.ClassesReused, Want.Stats.ClassesReused);
  EXPECT_EQ(Got.Stats.PairsComputed, Want.Stats.PairsComputed);
  EXPECT_EQ(Got.Stats.PairsReused, Want.Stats.PairsReused);
  EXPECT_FALSE(decodeIngestReply("short", Got));

  std::string Text;
  std::string Binary("bin\0ary", 7);
  ASSERT_TRUE(decodeText(encodeText(Binary), Text));
  EXPECT_EQ(Text, Binary);
  EXPECT_FALSE(decodeText("", Text));
}

TEST(ServiceProtocol, ScanRequestRoundTrips) {
  ScanRequestWire Want;
  Want.Refine = true;
  Want.RuleFilter = {"R8", "R1"};
  corpus::Project P;
  P.Name = "proj\"hostile\"";
  P.Meta.IsAndroid = true;
  P.Meta.MinSdkVersion = 19;
  P.Files.push_back({"A.java", std::string("class A { \0 }", 13)});
  P.Files.push_back({"B.java", "class B {}"});
  Want.Projects.push_back(std::move(P));

  ScanRequestWire Got;
  std::string Error;
  ASSERT_TRUE(decodeScanRequest(encodeScanRequest(Want), Got, &Error)) << Error;
  EXPECT_EQ(Got.Refine, Want.Refine);
  EXPECT_EQ(Got.RuleFilter, Want.RuleFilter);
  ASSERT_EQ(Got.Projects.size(), 1u);
  EXPECT_EQ(Got.Projects[0].Name, Want.Projects[0].Name);
  EXPECT_TRUE(Got.Projects[0].Meta.IsAndroid);
  EXPECT_EQ(Got.Projects[0].Meta.MinSdkVersion, 19);
  ASSERT_EQ(Got.Projects[0].Files.size(), 2u);
  EXPECT_EQ(Got.Projects[0].Files[0].Code, Want.Projects[0].Files[0].Code);
}

TEST(ServiceProtocol, ScanRequestRejectsHostilePayloads) {
  ScanRequestWire Got;
  std::string Error;

  ScanRequestWire Want;
  corpus::Project P;
  P.Name = "p";
  P.Files.push_back({"A.java", "class A {}"});
  Want.Projects.push_back(std::move(P));
  std::string Payload = encodeScanRequest(Want);

  // Truncation, trailing garbage, emptiness.
  EXPECT_FALSE(decodeScanRequest(Payload.substr(0, Payload.size() / 2), Got,
                                 &Error));
  EXPECT_FALSE(decodeScanRequest(Payload + "x", Got, &Error));
  EXPECT_FALSE(decodeScanRequest("", Got, &Error));

  // Version skew.
  exec::WireWriter Skew;
  Skew.u32(ServiceProtocolVersion + 3);
  EXPECT_FALSE(decodeScanRequest(Skew.take(), Got, &Error));
  EXPECT_NE(Error.find("version"), std::string::npos);

  // An allocation-bomb project count with no bytes behind it.
  exec::WireWriter Bomb;
  Bomb.u32(ServiceProtocolVersion);
  Bomb.u8(0);
  Bomb.u32(0);           // no rule filter
  Bomb.u32(0xfffffff0u); // absurd project count
  EXPECT_FALSE(decodeScanRequest(Bomb.take(), Got, &Error));
}

//===----------------------------------------------------------------------===//
// A real forked server, end to end
//===----------------------------------------------------------------------===//

TEST(ServiceServer, ForkedRoundTripMatchesColdBatch) {
  std::vector<corpus::CodeChange> Changes = sampleChanges();
  int Fd = -1;
  pid_t Pid = forkServer(Fd);
  Client C(Fd);
  std::string Error;

  IngestReply Reply;
  ASSERT_TRUE(C.ingest(Changes, Reply, &Error)) << Error;
  EXPECT_EQ(Reply.TotalChanges, Changes.size());
  EXPECT_EQ(Reply.Stats.Ingested, Changes.size());
  EXPECT_EQ(Reply.Stats.CacheMisses, Changes.size());

  std::string Health;
  ASSERT_TRUE(C.query("health", Health, &Error)) << Error;
  EXPECT_NE(Health.find("\"changes\":2"), std::string::npos) << Health;

  std::string Stats;
  ASSERT_TRUE(C.query("stats", Stats, &Error)) << Error;
  EXPECT_NE(Stats.find("\"ingests\":1"), std::string::npos) << Stats;

  // An unknown query is an error *reply*, not a dropped connection.
  std::string Answer;
  EXPECT_FALSE(C.query("nonsense", Answer, &Error));
  EXPECT_NE(Error.find("unknown query"), std::string::npos) << Error;

  std::string Snapshot;
  ASSERT_TRUE(C.snapshot(Snapshot, &Error)) << Error;
  EXPECT_EQ(Snapshot, coldJson(Changes));

  ASSERT_TRUE(C.shutdown(&Error)) << Error;
  ::close(Fd);
  support::ExitStatus Exit = support::waitProcess(Pid);
  EXPECT_TRUE(Exit.cleanExit()) << Exit.Code;
}

TEST(ServiceServer, ForkedScanMatchesLocalScanner) {
  // Two self-contained projects over the wire: one misuse, one clean.
  ScanRequestWire Wire;
  corpus::Project Bad;
  Bad.Name = "proj-bad";
  Bad.Files.push_back(
      {"Bad.java", "class Bad { void m() throws Exception { Cipher c = "
                   "Cipher.getInstance(\"DES\"); } }"});
  corpus::Project Clean;
  Clean.Name = "proj-clean";
  Clean.Files.push_back({"Clean.java", "class Clean { int x; }"});
  Wire.Projects = {Bad, Clean};

  // The local ground truth, same default options the server builds its
  // scanner from.
  scan::Scanner Local(api(), scan::ScanConfig());
  scan::ScanRequest Request;
  Request.Projects = {&Bad, &Clean};
  std::string Want = scan::scanReportToJson(Local.scan(Request));

  int Fd = -1;
  pid_t Pid = forkServer(Fd);
  Client C(Fd);
  std::string Error, Got;
  ASSERT_TRUE(C.scan(Wire, Got, &Error)) << Error;
  EXPECT_EQ(Got, Want);

  // The scan is session-independent: ingesting afterwards still works.
  IngestReply Reply;
  ASSERT_TRUE(C.ingest(sampleChanges(), Reply, &Error)) << Error;
  EXPECT_EQ(Reply.TotalChanges, 2u);

  // A second scan reuses the server's warm scanner; still identical.
  ASSERT_TRUE(C.scan(Wire, Got, &Error)) << Error;
  EXPECT_EQ(Got, Want);

  ASSERT_TRUE(C.shutdown(&Error)) << Error;
  ::close(Fd);
  EXPECT_TRUE(support::waitProcess(Pid).cleanExit());
}

TEST(ServiceServer, StatsReqIntrospectsObservedDaemon) {
  // An observed server: the daemon-side observer lives in the child and
  // StatsReq summarizes it live over the wire.
  int Sv[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, Sv), 0);
  pid_t Pid = support::spawnProcess([Fd = Sv[1], ClientEnd = Sv[0]] {
    ::close(ClientEnd);
    obs::Observer Obs;
    SessionOptions Opts;
    Opts.Metrics = &Obs;
    Server S(api(), std::move(Opts));
    return S.serve(Fd, Fd) == ServeOutcome::Shutdown ? 0 : 2;
  });
  ASSERT_GT(Pid, 0);
  ::close(Sv[1]);
  int Fd = Sv[0];
  Client C(Fd);
  std::string Error;

  // Before any ingest the summary exists but its counters are empty.
  std::string Summary;
  ASSERT_TRUE(C.stats(Summary, &Error)) << Error;
  EXPECT_EQ(Summary.rfind("{\"counters\":[", 0), 0u) << Summary;
  EXPECT_EQ(Summary.find("\"service.ingests\""), std::string::npos);

  IngestReply Reply;
  ASSERT_TRUE(C.ingest(sampleChanges(), Reply, &Error)) << Error;

  // Now the live session counters and the ingest stage show up...
  ASSERT_TRUE(C.stats(Summary, &Error)) << Error;
  EXPECT_NE(Summary.find("\"service.ingests\""), std::string::npos) << Summary;
  EXPECT_NE(Summary.find("\"service.changes\""), std::string::npos);
  EXPECT_NE(Summary.find("\"session.ingest\""), std::string::npos) << Summary;

  // ...and asking never disturbed the session: the snapshot still
  // matches the cold batch byte for byte.
  std::string Snapshot;
  ASSERT_TRUE(C.snapshot(Snapshot, &Error)) << Error;
  EXPECT_EQ(Snapshot, coldJson(sampleChanges()));

  // A StatsReq with a payload is malformed — error reply, live socket.
  std::string Bad = exec::encodeFrame(
      static_cast<std::uint32_t>(ServiceFrame::StatsReq), "junk");
  ASSERT_EQ(support::writeFull(Fd, Bad.data(), Bad.size()),
            static_cast<ssize_t>(Bad.size()));
  {
    // Drain the ReplyErr by hand so the next round-trip stays aligned.
    exec::FrameDecoder D;
    std::optional<exec::Frame> F;
    char Buf[512];
    while (!F) {
      ssize_t N = ::read(Fd, Buf, sizeof(Buf));
      ASSERT_GT(N, 0);
      D.feed(Buf, static_cast<std::size_t>(N));
      F = D.next();
    }
    EXPECT_EQ(F->Type, static_cast<std::uint32_t>(ServiceFrame::ReplyErr));
    ASSERT_EQ(D.pendingBytes(), 0u);
  }
  ASSERT_TRUE(C.stats(Summary, &Error)) << Error;

  ASSERT_TRUE(C.shutdown(&Error)) << Error;
  ::close(Fd);
  EXPECT_TRUE(support::waitProcess(Pid).cleanExit());
}

TEST(ServiceServer, StatsReqOnUnobservedDaemonIsAnError) {
  int Fd = -1;
  pid_t Pid = forkServer(Fd); // default options: no observer
  Client C(Fd);
  std::string Error, Summary;
  EXPECT_FALSE(C.stats(Summary, &Error));
  EXPECT_NE(Error.find("not observed"), std::string::npos) << Error;
  // An error reply, not a poisoned stream: the session still answers.
  IngestReply Reply;
  ASSERT_TRUE(C.ingest(sampleChanges(), Reply, &Error)) << Error;
  ASSERT_TRUE(C.shutdown(&Error)) << Error;
  ::close(Fd);
  EXPECT_TRUE(support::waitProcess(Pid).cleanExit());
}

TEST(ServiceServer, ClientDisconnectEndsServeCleanly) {
  int Fd = -1;
  pid_t Pid = forkServer(Fd);
  ::close(Fd); // hang up without a Shutdown request
  support::ExitStatus Exit = support::waitProcess(Pid);
  EXPECT_EQ(Exit.K, support::ExitStatus::Kind::Exited);
  EXPECT_EQ(Exit.Code, 1); // ServeOutcome::Disconnected
}

TEST(ServiceServer, GarbageBytesAreAProtocolError) {
  int Fd = -1;
  pid_t Pid = forkServer(Fd);
  std::string Garbage = "this is not a DFW1 frame, not even close........";
  ASSERT_EQ(support::writeFull(Fd, Garbage.data(), Garbage.size()),
            static_cast<ssize_t>(Garbage.size()));
  ::close(Fd);
  support::ExitStatus Exit = support::waitProcess(Pid);
  EXPECT_EQ(Exit.K, support::ExitStatus::Kind::Exited);
  EXPECT_EQ(Exit.Code, 2); // ServeOutcome::ProtocolError
}

// Chaos: SIGKILL the server while an ingest frame is half-delivered.
// The client must observe a dead peer as an error return (no hang, no
// SIGPIPE), and — since sessions are in-memory and recovery is replay —
// a fresh server fed the *full* history must reproduce the cold batch
// report byte for byte.
TEST(ServiceServer, KillMidIngestThenRecoverByReplay) {
  std::vector<corpus::CodeChange> Changes = sampleChanges();

  int Fd = -1;
  pid_t Pid = forkServer(Fd);
  Client C(Fd);
  std::string Error;
  IngestReply Reply;
  ASSERT_TRUE(C.ingest({Changes[0]}, Reply, &Error)) << Error;

  // Half an ingest frame, then the kill: the server dies mid-request.
  std::string Frame =
      exec::encodeFrame(static_cast<std::uint32_t>(ServiceFrame::IngestReq),
                        encodeIngestRequest({Changes[1]}));
  ASSERT_GE(Frame.size(), 8u);
  ASSERT_EQ(support::writeFull(Fd, Frame.data(), Frame.size() / 2),
            static_cast<ssize_t>(Frame.size() / 2));
  ASSERT_TRUE(support::killProcess(Pid, SIGKILL));
  support::ExitStatus Exit = support::waitProcess(Pid);
  EXPECT_EQ(Exit.K, support::ExitStatus::Kind::Signaled);
  EXPECT_EQ(Exit.Code, SIGKILL);

  // The half-sent request gets no reply; the client sees a clean error.
  {
    support::ScopedSigpipeIgnore NoSigpipe;
    IngestReply Dead;
    EXPECT_FALSE(C.ingest({Changes[1]}, Dead, &Error));
  }
  ::close(Fd);

  // Recovery: replay everything into a fresh server.
  int Fd2 = -1;
  pid_t Pid2 = forkServer(Fd2);
  Client C2(Fd2);
  ASSERT_TRUE(C2.ingest({Changes[0]}, Reply, &Error)) << Error;
  ASSERT_TRUE(C2.ingest({Changes[1]}, Reply, &Error)) << Error;
  EXPECT_EQ(Reply.TotalChanges, Changes.size());
  std::string Snapshot;
  ASSERT_TRUE(C2.snapshot(Snapshot, &Error)) << Error;
  EXPECT_EQ(Snapshot, coldJson(Changes));
  ASSERT_TRUE(C2.shutdown(&Error)) << Error;
  ::close(Fd2);
  EXPECT_TRUE(support::waitProcess(Pid2).cleanExit());
}

TEST(ServiceServer, UnixSocketListenConnectRoundTrip) {
  std::string Path = "/tmp/diffcode-test-" + std::to_string(::getpid()) +
                     "-" + std::to_string(::testing::UnitTest::GetInstance()
                                              ->random_seed()) +
                     ".sock";
  std::string Error;
  int ListenFd = listenUnix(Path, &Error);
  ASSERT_GE(ListenFd, 0) << Error;

  pid_t Pid = support::spawnProcess([&] {
    Server S(api(), SessionOptions());
    return serveUnix(S, ListenFd);
  });
  ASSERT_GT(Pid, 0);
  ::close(ListenFd);

  int Fd = connectUnix(Path, &Error);
  ASSERT_GE(Fd, 0) << Error;
  Client C(Fd);
  IngestReply Reply;
  ASSERT_TRUE(C.ingest(sampleChanges(), Reply, &Error)) << Error;
  EXPECT_EQ(Reply.TotalChanges, 2u);
  ASSERT_TRUE(C.shutdown(&Error)) << Error;
  ::close(Fd);
  EXPECT_TRUE(support::waitProcess(Pid).cleanExit());
  ::unlink(Path.c_str());
}
