//===- support/FaultInjection.cpp ------------------------------------------===//

#include "support/FaultInjection.h"

using namespace diffcode;
using namespace diffcode::support;

namespace {
thread_local FaultContext Current;
} // namespace

const char *diffcode::support::faultSiteName(FaultSite Site) {
  switch (Site) {
  case FaultSite::Parser:
    return "parser";
  case FaultSite::Interpreter:
    return "interpreter";
  case FaultSite::Hungarian:
    return "hungarian";
  case FaultSite::Clustering:
    return "clustering";
  case FaultSite::ServiceHash:
    return "service-hash";
  case FaultSite::ScanProject:
    return "scan-project";
  case FaultSite::ProcKill:
    return "proc-kill";
  case FaultSite::ProcHang:
    return "proc-hang";
  case FaultSite::ProcSlowStart:
    return "proc-slow-start";
  case FaultSite::ProcFrameCorrupt:
    return "proc-frame-corrupt";
  case FaultSite::ProcOomExit:
    return "proc-oom";
  }
  return "unknown";
}

std::uint64_t diffcode::support::faultMix(std::uint64_t X) {
  X += 0x9e3779b97f4a7c15ull;
  X = (X ^ (X >> 30)) * 0xbf58476d1ce4e5b9ull;
  X = (X ^ (X >> 27)) * 0x94d049bb133111ebull;
  return X ^ (X >> 31);
}

FaultContext FaultContext::current() { return Current; }

FaultScope::FaultScope(const FaultPlan *Plan, std::uint64_t ScopeKey)
    : Saved(Current) {
  Current.Plan = Plan && Plan->enabled() ? Plan : nullptr;
  Current.ScopeKey = ScopeKey;
}

FaultScope::~FaultScope() { Current = Saved; }

bool diffcode::support::faultPoint(FaultSite Site, std::uint64_t Key) {
  const FaultPlan *Plan = Current.Plan;
  if (!Plan || !Plan->armed(Site))
    return false;
  // Three mixing rounds decorrelate the structured inputs; the top 53
  // bits become a uniform draw in [0, 1).
  std::uint64_t H = faultMix(Plan->Seed ^ faultMix(Current.ScopeKey));
  H = faultMix(H ^ (static_cast<std::uint64_t>(Site) << 56) ^ Key);
  bool Fires = static_cast<double>(H >> 11) * 0x1.0p-53 < Plan->Rate;
  if (FaultStats *Stats = Plan->Stats) {
    Stats->Evaluated[static_cast<unsigned>(Site)].fetch_add(
        1, std::memory_order_relaxed);
    if (Fires)
      Stats->Fired[static_cast<unsigned>(Site)].fetch_add(
          1, std::memory_order_relaxed);
  }
  return Fires;
}
