# Empty compiler generated dependencies file for diffcode_analysis.
# This may be replaced when dependencies are built.
