//===- usage/UsageChange.h - Usage changes (F-, F+) ------------------------===//
//
// Part of the DiffCode project, a reproduction of "Inferring Crypto API
// Rules from Code Changes" (PLDI'18).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The semantic diff of one paired (old, new) usage DAG: the sets of
/// shortest-removed and shortest-added feature paths (Section 3.5), plus
/// provenance so elicited rules can cite concrete commits.
///
/// Feature paths are stored as dense support::PathId values resolved
/// through a shared support::Interner (DESIGN.md "Interned data model"):
/// path equality is an integer compare, a change is two small id
/// vectors, and strings materialise only at display/emission time. The
/// interner must outlive every change that references it; the pipeline
/// guarantees this by owning one corpus interner per DiffCode instance
/// (pinned into the CorpusReport via shared_ptr).
///
//===----------------------------------------------------------------------===//

#ifndef DIFFCODE_USAGE_USAGECHANGE_H
#define DIFFCODE_USAGE_USAGECHANGE_H

#include "support/Interner.h"
#include "usage/UsageDag.h"

#include <string>
#include <vector>

namespace diffcode {
namespace usage {

/// A usage change Diff(G1, G2) = (F-, F+).
struct UsageChange {
  std::string TypeName; ///< Target API class of the paired DAGs.
  std::vector<support::PathId> Removed; ///< F-: shortest paths only in old.
  std::vector<support::PathId> Added;   ///< F+: shortest paths only in new.
  std::string Origin; ///< Provenance, e.g. "project-17@commit-4".
  /// The table Removed/Added ids resolve through. Raw pointer by design:
  /// changes are copied heavily inside the clustering engine, and a
  /// shared_ptr would serialize those copies on the refcount. Lifetime
  /// is owned one level up (DiffCode / the test fixture).
  const support::Interner *Table = nullptr;

  bool isEmpty() const { return Removed.empty() && Added.empty(); }

  /// Equality over features only (provenance excluded) — this is the
  /// notion the fdup filter uses. Integer compares when both changes
  /// share one interner; structural comparison across tables (id values
  /// are assignment-order dependent and never comparable across runs).
  bool sameFeatures(const UsageChange &Other) const;

  /// Materialised copies of F- / F+ for consumers that need the label
  /// structure (rule suggestion, display).
  std::vector<FeaturePath> removedPaths() const;
  std::vector<FeaturePath> addedPaths() const;

  /// Display form of one interned path of this change.
  std::string pathString(support::PathId Id) const;

  /// Multi-line display: "- <path>" / "+ <path>".
  std::string str() const;

  /// Builds a change by interning literal feature paths — the
  /// construction entry point for tests, benches and generators.
  static UsageChange intern(support::Interner &Table, std::string TypeName,
                            const std::vector<FeaturePath> &Removed,
                            const std::vector<FeaturePath> &Added,
                            std::string Origin = std::string());
};

/// Shortest(P): keeps only paths with no strict prefix in \p Paths,
/// preserving input order (duplicates survive — a path is not a *strict*
/// prefix of itself). Single linear elimination pass after an
/// id-lexicographic sort; the survivor set is identical under any label
/// order, so results do not depend on id values.
std::vector<support::PathId> shortestPaths(std::vector<support::PathId> Paths,
                                           const support::Interner &Table);

/// Removed(G1, G2) = Shortest(Paths(G1) \ Paths(G2)), interned.
std::vector<support::PathId> removedPaths(const UsageDag &G1,
                                          const UsageDag &G2,
                                          support::Interner &Table);

/// Diff(G1, G2) = (Removed(G1,G2), Removed(G2,G1)).
UsageChange diffDags(const UsageDag &G1, const UsageDag &G2,
                     support::Interner &Table);

/// Pairs old-version DAGs with new-version DAGs by minimum total
/// dagDistance (Section 3.5), padding the shorter side with root-only
/// DAGs. Returns index pairs (OldIdx, NewIdx); SIZE_MAX denotes a padding
/// partner.
std::vector<std::pair<std::size_t, std::size_t>>
pairDags(const std::vector<UsageDag> &Old, const std::vector<UsageDag> &New);

/// End-to-end Section 3.5: pair the two versions' DAGs of one target type
/// and diff every pair. Empty diffs are kept (the fsame filter counts
/// them).
std::vector<UsageChange> deriveUsageChanges(const std::vector<UsageDag> &Old,
                                            const std::vector<UsageDag> &New,
                                            const std::string &TypeName,
                                            support::Interner &Table);

} // namespace usage
} // namespace diffcode

#endif // DIFFCODE_USAGE_USAGECHANGE_H
