//===- support/Hungarian.h - Min-cost bipartite assignment ---------------===//
//
// Part of the DiffCode project, a reproduction of "Inferring Crypto API
// Rules from Code Changes" (PLDI'18).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Minimum-cost assignment (Hungarian / Kuhn–Munkres with potentials,
/// O(n^3)). Section 3.5 of the paper pairs old-version usage DAGs with
/// new-version DAGs by solving a maximum matching that minimizes the sum of
/// pair distances; Section 4.3 pairs feature paths the same way. Both call
/// into this solver.
///
//===----------------------------------------------------------------------===//

#ifndef DIFFCODE_SUPPORT_HUNGARIAN_H
#define DIFFCODE_SUPPORT_HUNGARIAN_H

#include <cstddef>
#include <vector>

namespace diffcode {

/// A dense cost matrix for the assignment problem. Rows and columns may
/// differ; the solver pads the smaller side with zero-cost dummy entries.
class CostMatrix {
public:
  CostMatrix(std::size_t Rows, std::size_t Cols)
      : NumRows(Rows), NumCols(Cols), Data(Rows * Cols, 0.0) {}

  double &at(std::size_t R, std::size_t C) {
    return Data[R * NumCols + C];
  }
  double at(std::size_t R, std::size_t C) const {
    return Data[R * NumCols + C];
  }
  std::size_t rows() const { return NumRows; }
  std::size_t cols() const { return NumCols; }

  /// Re-shapes the matrix to \p Rows x \p Cols with all entries zeroed,
  /// reusing the existing allocation. Lets hot loops (one assignment per
  /// usage-change pair) keep a scratch matrix instead of reallocating.
  void reset(std::size_t Rows, std::size_t Cols) {
    NumRows = Rows;
    NumCols = Cols;
    Data.assign(Rows * Cols, 0.0);
  }

private:
  std::size_t NumRows;
  std::size_t NumCols;
  std::vector<double> Data;
};

/// Result of an assignment: RowToCol[R] is the column matched to row R, or
/// SIZE_MAX when R was matched to a padding column (only possible when
/// rows > cols). TotalCost excludes padded pairs.
struct Assignment {
  std::vector<std::size_t> RowToCol;
  double TotalCost = 0.0;

  static constexpr std::size_t Unmatched = static_cast<std::size_t>(-1);
};

/// Reusable scratch buffers for solveAssignment. The solver is called
/// once per usage-change pair during distance-matrix construction
/// (O(n^2) calls on tiny matrices), where per-call allocation dominates
/// the actual arithmetic; keeping one workspace per thread removes it.
class AssignmentWorkspace {
  friend Assignment solveAssignment(const CostMatrix &Costs,
                                    AssignmentWorkspace &Scratch);
  std::vector<double> Square;
  std::vector<double> U, V, MinV;
  std::vector<std::size_t> P, Way;
  std::vector<char> Used;
};

/// Solves the min-cost assignment for \p Costs. Every real row/column is
/// matched; when the matrix is rectangular the surplus side pairs with
/// zero-cost padding.
Assignment solveAssignment(const CostMatrix &Costs);

/// As above, reusing \p Scratch across calls. Bitwise-identical results:
/// the workspace only replaces allocations, never arithmetic.
Assignment solveAssignment(const CostMatrix &Costs,
                           AssignmentWorkspace &Scratch);

} // namespace diffcode

#endif // DIFFCODE_SUPPORT_HUNGARIAN_H
