//===- bench/micro_pipeline.cpp - Frontend & analysis throughput -----------===//
//
// Part of the DiffCode project, a reproduction of "Inferring Crypto API
// Rules from Code Changes" (PLDI'18).
//
//===----------------------------------------------------------------------===//
//
// Micro-benchmark M1: the per-stage cost of the DiffCode pipeline on a
// representative generated source file — lexing, parsing, abstract
// interpretation, DAG derivation, and the full per-change diff. Backs the
// Section 5.1 claim that the analyzer is "efficient and scalable" (the
// paper processed 11,551 code changes).
//
//===----------------------------------------------------------------------===//

#include <benchmark/benchmark.h>

#include "core/DiffCode.h"
#include "corpus/Scenario.h"
#include "javaast/AstPrinter.h"
#include "javaast/Lexer.h"
#include "javaast/Parser.h"

using namespace diffcode;

namespace {

std::string sampleSource(bool Secure) {
  Rng R(2024);
  corpus::ScenarioInstance Inst;
  Inst.Kind = corpus::ScenarioKind::BlockCipher;
  Inst.Details = corpus::drawDetails(Inst.Kind, R);
  Inst.Details.Secure = Secure;
  Inst.StyleSeed = 1234;
  Inst.ClassName = "BenchSample";
  return corpus::renderScenario(Inst, "com.example.bench");
}

void BM_Lexer(benchmark::State &State) {
  std::string Source = sampleSource(true);
  for (auto _ : State) {
    java::DiagnosticsEngine Diags;
    java::Lexer Lex(Source, Diags);
    benchmark::DoNotOptimize(Lex.lexAll());
  }
  State.SetBytesProcessed(State.iterations() * Source.size());
}
BENCHMARK(BM_Lexer);

void BM_Parser(benchmark::State &State) {
  std::string Source = sampleSource(true);
  for (auto _ : State) {
    java::AstContext Ctx;
    java::DiagnosticsEngine Diags;
    benchmark::DoNotOptimize(java::parseJava(Source, Ctx, Diags));
  }
  State.SetBytesProcessed(State.iterations() * Source.size());
}
BENCHMARK(BM_Parser);

void BM_PrettyPrinter(benchmark::State &State) {
  std::string Source = sampleSource(true);
  java::AstContext Ctx;
  java::DiagnosticsEngine Diags;
  java::CompilationUnit *Unit = java::parseJava(Source, Ctx, Diags);
  for (auto _ : State) {
    java::AstPrinter Printer;
    benchmark::DoNotOptimize(Printer.print(Unit));
  }
}
BENCHMARK(BM_PrettyPrinter);

void BM_AbstractInterpreter(benchmark::State &State) {
  std::string Source = sampleSource(true);
  java::AstContext Ctx;
  java::DiagnosticsEngine Diags;
  java::CompilationUnit *Unit = java::parseJava(Source, Ctx, Diags);
  const apimodel::CryptoApiModel &Api =
      apimodel::CryptoApiModel::javaCryptoApi();
  for (auto _ : State) {
    analysis::AbstractInterpreter Interp(Api);
    benchmark::DoNotOptimize(Interp.analyze(Unit));
  }
}
BENCHMARK(BM_AbstractInterpreter);

void BM_DagDerivation(benchmark::State &State) {
  core::DiffCode System(apimodel::CryptoApiModel::javaCryptoApi());
  analysis::AnalysisResult Result = System.analyzeSourceChecked(sampleSource(true)).Result;
  for (auto _ : State)
    benchmark::DoNotOptimize(System.dagsForClass(Result, "Cipher"));
}
BENCHMARK(BM_DagDerivation);

void BM_FullCodeChange(benchmark::State &State) {
  core::DiffCode System(apimodel::CryptoApiModel::javaCryptoApi());
  corpus::CodeChange Change;
  Change.OldCode = sampleSource(false);
  Change.NewCode = sampleSource(true);
  const std::vector<std::string> &Targets =
      apimodel::CryptoApiModel::javaCryptoApi().targetClasses();
  for (auto _ : State)
    benchmark::DoNotOptimize(System.processChange(Change, Targets, {}));
  State.SetItemsProcessed(State.iterations());
}
BENCHMARK(BM_FullCodeChange);

} // namespace

BENCHMARK_MAIN();
