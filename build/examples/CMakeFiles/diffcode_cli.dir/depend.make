# Empty dependencies file for diffcode_cli.
# This may be replaced when dependencies are built.
