//===- usage/UsageChange.h - Usage changes (F-, F+) ------------------------===//
//
// Part of the DiffCode project, a reproduction of "Inferring Crypto API
// Rules from Code Changes" (PLDI'18).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The semantic diff of one paired (old, new) usage DAG: the sets of
/// shortest-removed and shortest-added feature paths (Section 3.5), plus
/// provenance so elicited rules can cite concrete commits.
///
//===----------------------------------------------------------------------===//

#ifndef DIFFCODE_USAGE_USAGECHANGE_H
#define DIFFCODE_USAGE_USAGECHANGE_H

#include "usage/UsageDag.h"

#include <string>
#include <vector>

namespace diffcode {
namespace usage {

/// A usage change Diff(G1, G2) = (F-, F+).
struct UsageChange {
  std::string TypeName; ///< Target API class of the paired DAGs.
  std::vector<FeaturePath> Removed; ///< F-: shortest paths only in old.
  std::vector<FeaturePath> Added;   ///< F+: shortest paths only in new.
  std::string Origin; ///< Provenance, e.g. "project-17@commit-4".

  bool isEmpty() const { return Removed.empty() && Added.empty(); }

  /// Equality over features only (provenance excluded) — this is the
  /// notion the fdup filter uses.
  bool sameFeatures(const UsageChange &Other) const;

  /// Multi-line display: "- <path>" / "+ <path>".
  std::string str() const;
};

/// Shortest(P): keeps only paths with no strict prefix in \p Paths.
std::vector<FeaturePath> shortestPaths(std::vector<FeaturePath> Paths);

/// Removed(G1, G2) = Shortest(Paths(G1) \ Paths(G2)).
std::vector<FeaturePath> removedPaths(const UsageDag &G1, const UsageDag &G2);

/// Diff(G1, G2) = (Removed(G1,G2), Removed(G2,G1)).
UsageChange diffDags(const UsageDag &G1, const UsageDag &G2);

/// Pairs old-version DAGs with new-version DAGs by minimum total
/// dagDistance (Section 3.5), padding the shorter side with root-only
/// DAGs. Returns index pairs (OldIdx, NewIdx); SIZE_MAX denotes a padding
/// partner.
std::vector<std::pair<std::size_t, std::size_t>>
pairDags(const std::vector<UsageDag> &Old, const std::vector<UsageDag> &New);

/// End-to-end Section 3.5: pair the two versions' DAGs of one target type
/// and diff every pair. Empty diffs are kept (the fsame filter counts
/// them).
std::vector<UsageChange> deriveUsageChanges(const std::vector<UsageDag> &Old,
                                            const std::vector<UsageDag> &New,
                                            const std::string &TypeName);

} // namespace usage
} // namespace diffcode

#endif // DIFFCODE_USAGE_USAGECHANGE_H
