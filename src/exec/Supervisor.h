//===- exec/Supervisor.h - Supervised multi-process execution --------------===//
//
// Part of the DiffCode project, a reproduction of "Inferring Crypto API
// Rules from Code Changes" (PLDI'18).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The supervised execution engine (DESIGN.md "Supervised execution"):
/// the per-change analysis stage run across a pool of forked worker
/// subprocesses, so one pathological change — a crash, a runaway loop, a
/// memory blow-up — costs one worker incarnation instead of the corpus
/// run. The coordinator:
///
///   * dispatches batches of change indices (work units) over pipes,
///   * streams results back incrementally (partial results of a failed
///     unit are kept — only the un-received suffix is retried),
///   * enforces a per-unit wall-clock deadline with a SIGKILL watchdog,
///   * classifies worker death (signal / exit code / protocol error /
///     deadline) onto the WorkerCrash / WorkerTimeout / WorkerOom
///     statuses,
///   * isolates poison inputs by half-batch bisection, then retries the
///     surviving singleton with exponential backoff before stamping a
///     terminal record,
///   * respawns a fresh worker (new pipes, decoder, id remap) after
///     every death.
///
/// Byte-identity contract: with no faults firing, a supervised report is
/// byte-identical to the in-process engine's, because (a) workers run
/// the exact same processChange under the exact same per-change fault
/// scope, (b) the wire codec carries every record field that reaches the
/// report, and (c) the downstream pipeline is literally the same code
/// (DiffCode::runPipelineFrom). Interner id values differ across
/// processes, but no consumer depends on id values — only equality
/// (support/Interner.h determinism contract).
///
//===----------------------------------------------------------------------===//

#ifndef DIFFCODE_EXEC_SUPERVISOR_H
#define DIFFCODE_EXEC_SUPERVISOR_H

#include "core/DiffCode.h"

#include <array>
#include <cstdint>
#include <vector>

namespace diffcode {
namespace exec {

/// What supervision did during one superviseChanges run, for tests and
/// the chaos bench. Also mirrored into the obs registry (exec.* metrics)
/// when the request is observed.
struct SupervisionStats {
  /// Units dispatched to workers, including retries and bisected halves.
  std::uint64_t UnitsDispatched = 0;
  /// Singleton re-dispatches after a failure (backoff applied).
  std::uint64_t Retries = 0;
  /// Unit splits performed to isolate a poison input.
  std::uint64_t Bisections = 0;
  /// Worker respawns after a death (any cause).
  std::uint64_t WorkerRestarts = 0;
  /// Units whose worker was SIGKILLed by the deadline watchdog.
  std::uint64_t DeadlineKills = 0;
  /// Protocol frames and payload bytes received from workers.
  std::uint64_t FramesReceived = 0;
  std::uint64_t BytesReceived = 0;
  /// Changes resolved by the in-process fallback (fork exhaustion).
  std::uint64_t InlineFallbacks = 0;
  /// Telemetry frames merged from observed workers, and frames dropped
  /// because they were stamped with a non-current incarnation.
  std::uint64_t TelemetryFrames = 0;
  std::uint64_t StaleTelemetry = 0;
  /// Terminal supervisor-stamped statuses, indexed by ChangeStatus.
  std::array<std::uint64_t, core::NumChangeStatuses> TerminalStatus{};

  std::uint64_t terminal(core::ChangeStatus Status) const {
    return TerminalStatus[static_cast<std::size_t>(Status)];
  }
};

/// Runs the per-change analysis stage under supervised worker
/// subprocesses: one record per Request.Changes entry, input order,
/// every failure contained. Honors Request.Exec (workers, batch size,
/// deadline, retry budget, memory limit) and the system's fault plan
/// (both the in-process sites — they fire inside workers exactly as they
/// would in-process — and the Proc* chaos sites). This is the analysis
/// stage core::DiffCode::run plugs into runPipelineFrom when
/// Request.Exec.Mode is Supervised; exposed separately for the
/// differential and chaos tests (the former exec::runPipeline dispatcher
/// is gone — run() is the one entry point).
std::vector<core::ChangeRecord>
superviseChanges(const core::DiffCode &System,
                 const core::PipelineRequest &Request,
                 SupervisionStats *Stats = nullptr);

} // namespace exec
} // namespace diffcode

#endif // DIFFCODE_EXEC_SUPERVISOR_H
