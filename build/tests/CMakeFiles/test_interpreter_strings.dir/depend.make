# Empty dependencies file for test_interpreter_strings.
# This may be replaced when dependencies are built.
