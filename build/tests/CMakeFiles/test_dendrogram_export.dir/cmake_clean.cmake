file(REMOVE_RECURSE
  "CMakeFiles/test_dendrogram_export.dir/test_dendrogram_export.cpp.o"
  "CMakeFiles/test_dendrogram_export.dir/test_dendrogram_export.cpp.o.d"
  "test_dendrogram_export"
  "test_dendrogram_export.pdb"
  "test_dendrogram_export[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dendrogram_export.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
