//===- tests/test_budgets.cpp - Parser & interpreter resource budgets ------===//
//
// Budget knobs must degrade pathological inputs into a deterministic
// empty-but-flagged result: same outcome at every thread count, never a
// crash or an unbounded run.
//
//===----------------------------------------------------------------------===//

#include "core/DiffCode.h"
#include "core/ReportWriter.h"
#include "corpus/CorpusGenerator.h"
#include "corpus/Miner.h"
#include "javaast/Parser.h"
#include "javaast/ReferenceLexer.h"
#include "support/FaultInjection.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

using namespace diffcode;
using namespace diffcode::core;

namespace {

const apimodel::CryptoApiModel &api() {
  return apimodel::CryptoApiModel::javaCryptoApi();
}

/// A method body whose initializer nests \p Depth parenthesized levels.
std::string nestedExprSource(unsigned Depth) {
  std::string Source = "class A { void m() { int x = ";
  Source.append(Depth, '(');
  Source += "1";
  Source.append(Depth, ')');
  Source += "; } }";
  return Source;
}

/// A method driving a Cipher through \p Calls consecutive API calls.
std::string longChainSource(unsigned Calls) {
  std::string Source =
      "class A { void m(Key k) throws Exception { "
      "Cipher c = Cipher.getInstance(\"AES\"); ";
  for (unsigned I = 0; I < Calls; ++I)
    Source += "c.init(Cipher.ENCRYPT_MODE, k); ";
  Source += "} }";
  return Source;
}

} // namespace

TEST(ParseBudget, NestingCapFlagsAndReturnsNull) {
  std::string Source = nestedExprSource(300);
  java::AstContext Ctx;
  java::DiagnosticsEngine Diags;
  java::ParseLimits Limits;
  Limits.MaxNestingDepth = 50;
  java::CompilationUnit *Unit = java::parseJava(Source, Ctx, Diags, Limits);
  EXPECT_EQ(Unit, nullptr);
  EXPECT_TRUE(Diags.budgetExceeded());
  EXPECT_TRUE(Diags.hasErrors());
}

TEST(ParseBudget, NestingUnderCapParses) {
  std::string Source = nestedExprSource(300);
  java::AstContext Ctx;
  java::DiagnosticsEngine Diags;
  java::CompilationUnit *Unit = java::parseJava(Source, Ctx, Diags);
  ASSERT_NE(Unit, nullptr);
  EXPECT_FALSE(Diags.budgetExceeded());
  EXPECT_FALSE(Diags.hasErrors());
}

TEST(ParseBudget, TokenCapFlagsAndReturnsNull) {
  java::AstContext Ctx;
  java::DiagnosticsEngine Diags;
  java::ParseLimits Limits;
  Limits.MaxTokens = 10;
  java::CompilationUnit *Unit = java::parseJava(
      "class A { void m() { int x = 1; int y = 2; } }", Ctx, Diags, Limits);
  EXPECT_EQ(Unit, nullptr);
  EXPECT_TRUE(Diags.budgetExceeded());
}

TEST(ParseBudget, DeepStatementNestingCapped) {
  std::string Source = "class A { void m() { ";
  for (unsigned I = 0; I < 300; ++I)
    Source += "if (true) { ";
  Source += "int x = 1; ";
  for (unsigned I = 0; I < 300; ++I)
    Source += "} ";
  Source += "} }";
  java::AstContext Ctx;
  java::DiagnosticsEngine Diags;
  java::ParseLimits Limits;
  Limits.MaxNestingDepth = 64;
  EXPECT_EQ(java::parseJava(Source, Ctx, Diags, Limits), nullptr);
  EXPECT_TRUE(Diags.budgetExceeded());
}

TEST(AnalysisBudget, FuelExhaustionFlagged) {
  PipelineConfig Opts;
  Opts.Limits.Analysis.Fuel = 3;
  DiffCode System(api(), Opts);
  DiffCode::SourceAnalysis Out =
      System.analyzeSourceChecked(longChainSource(50));
  EXPECT_EQ(Out.Status, ChangeStatus::BudgetExceeded);
  EXPECT_TRUE(Out.Result.Stats.FuelExhausted);
  EXPECT_EQ(Out.Detail, "interpreter fuel exhausted");
}

TEST(AnalysisBudget, ObjectCapDegradesToUntracked) {
  PipelineConfig Opts;
  Opts.Limits.Analysis.MaxObjects = 1;
  DiffCode System(api(), Opts);
  DiffCode::SourceAnalysis Out = System.analyzeSourceChecked(
      "class A { void m() throws Exception { "
      "Cipher a = Cipher.getInstance(\"AES\"); "
      "Cipher b = Cipher.getInstance(\"DES\"); } }");
  EXPECT_EQ(Out.Status, ChangeStatus::BudgetExceeded);
  EXPECT_TRUE(Out.Result.Stats.ObjectBudgetHit);
  EXPECT_LE(Out.Result.Objects.size(), 1u);
}

TEST(AnalysisBudget, CleanRunReportsStepsAndNoFlags) {
  DiffCode System(api());
  DiffCode::SourceAnalysis Out =
      System.analyzeSourceChecked(longChainSource(3));
  EXPECT_EQ(Out.Status, ChangeStatus::Ok);
  EXPECT_FALSE(Out.Result.Stats.anyBudgetHit());
  EXPECT_GT(Out.Result.Stats.StepsUsed, 0u);
}

TEST(AnalysisBudget, RecoverableSyntaxErrorIsDegraded) {
  DiffCode System(api());
  DiffCode::SourceAnalysis Out = System.analyzeSourceChecked(
      "class A { void m() { int x = ; } void n() throws Exception { "
      "Cipher c = Cipher.getInstance(\"AES\"); } }");
  EXPECT_EQ(Out.Status, ChangeStatus::Degraded);
  EXPECT_FALSE(Out.Detail.empty());
}

TEST(AnalysisBudget, EmptySourceIsOk) {
  DiffCode System(api());
  DiffCode::SourceAnalysis Out = System.analyzeSourceChecked("");
  EXPECT_EQ(Out.Status, ChangeStatus::Ok);
  EXPECT_TRUE(Out.Detail.empty());
}

TEST(BudgetPipeline, DegradedOutcomeIdenticalAcrossThreadCounts) {
  // A corpus mixing healthy changes with budget-tripping ones must yield
  // byte-identical reports whether one or eight workers process it.
  std::vector<corpus::CodeChange> Storage;
  auto Add = [&Storage](const char *Name, unsigned Commit, std::string OldCode,
                        std::string NewCode) {
    corpus::CodeChange C;
    C.ProjectName = Name;
    C.CommitIndex = Commit;
    C.FileName = "A.java";
    C.OldCode = std::move(OldCode);
    C.NewCode = std::move(NewCode);
    Storage.push_back(std::move(C));
  };
  Add("healthy", 0,
      "class A { void m(Key k) throws Exception { "
      "Cipher c = Cipher.getInstance(\"DES\"); } }",
      "class A { void m(Key k) throws Exception { "
      "Cipher c = Cipher.getInstance(\"AES\"); } }");
  Add("deepnest", 1, nestedExprSource(300),
      "class A { void m() throws Exception { "
      "Cipher c = Cipher.getInstance(\"AES\"); } }");
  Add("fuelhog", 2, longChainSource(60), longChainSource(61));
  Add("healthy2", 3, "",
      "class A { void m() throws Exception { "
      "Mac m = Mac.getInstance(\"HmacSHA256\"); } }");

  std::vector<const corpus::CodeChange *> Mined;
  for (const corpus::CodeChange &C : Storage)
    Mined.push_back(&C);

  auto Run = [&Mined](unsigned Threads) {
    PipelineConfig Opts;
    Opts.Threads = Threads;
    Opts.Limits.Parse.MaxNestingDepth = 50;
    Opts.Limits.Analysis.Fuel = 100;
    DiffCode System(api(), Opts);
    return System.run(
        {.Changes = Mined, .TargetClasses = api().targetClasses()});
  };

  CorpusReport Serial = Run(1);
  ASSERT_EQ(Serial.Changes.size(), 4u);
  EXPECT_EQ(Serial.Changes[0].Status, ChangeStatus::Ok);
  EXPECT_EQ(Serial.Changes[1].Status, ChangeStatus::BudgetExceeded);
  EXPECT_EQ(Serial.Changes[2].Status, ChangeStatus::BudgetExceeded);
  EXPECT_EQ(Serial.Changes[3].Status, ChangeStatus::Ok);
  // The healthy change still produced its usage change.
  EXPECT_TRUE(Serial.Changes[0].PerClass.count("Cipher"));
  // Health tallies match the statuses.
  EXPECT_EQ(Serial.Health.count(ChangeStatus::Ok), 2u);
  EXPECT_EQ(Serial.Health.count(ChangeStatus::BudgetExceeded), 2u);
  EXPECT_EQ(Serial.Health.troubled(), 2u);
  EXPECT_FALSE(Serial.Health.WorstOffenders.empty());

  std::string SerialJson = corpusReportToJson(Serial);
  for (unsigned Threads : {2u, 8u}) {
    CorpusReport Threaded = Run(Threads);
    EXPECT_EQ(SerialJson, corpusReportToJson(Threaded))
        << "thread count " << Threads;
    ASSERT_EQ(Threaded.Changes.size(), Serial.Changes.size());
    for (std::size_t I = 0; I < Serial.Changes.size(); ++I)
      EXPECT_EQ(changeRecordToJson(Serial.Changes[I]),
                changeRecordToJson(Threaded.Changes[I]))
          << "record " << I << " at " << Threads << " threads";
  }
}

TEST(BudgetPipeline, DefaultLimitsCalibratedForCleanCorpus) {
  // The ParseLimits/MaxObjects defaults are calibrated so that a clean
  // generated corpus sails through without tripping any budget: the bar
  // is < 0.1% budget-exceeded over ~1k+ mined changes (Parser.h records
  // the measured corpus percentiles behind the chosen defaults).
  corpus::CorpusGenerator Gen;
  corpus::Corpus C = Gen.generate();
  corpus::Miner M(api());
  std::vector<const corpus::CodeChange *> Mined = M.mine(C);
  ASSERT_GE(Mined.size(), 1000u);

  PipelineConfig Opts;  // all-default budgets — that is the point
  Opts.Threads = 8;
  DiffCode System(api(), Opts);
  CorpusReport Report = System.run(
      {.Changes = Mined, .TargetClasses = api().targetClasses()});

  std::size_t Exceeded = Report.Health.count(ChangeStatus::BudgetExceeded);
  EXPECT_LT(static_cast<double>(Exceeded),
            0.001 * static_cast<double>(Mined.size()))
      << Exceeded << " of " << Mined.size() << " changes hit a budget";
  // The defaults are finite, not "unlimited": a pathological input must
  // still be stopped.
  java::ParseLimits Defaults;
  EXPECT_GT(Defaults.MaxTokens, 0u);
  EXPECT_GT(Defaults.MaxNestingDepth, 0u);
  java::AstContext Ctx;
  java::DiagnosticsEngine Diags;
  EXPECT_EQ(java::parseJava(nestedExprSource(600), Ctx, Diags), nullptr);
  EXPECT_TRUE(Diags.budgetExceeded());
}

TEST(BudgetPipeline, HealthSerializedInReportJson) {
  std::vector<corpus::CodeChange> Storage(1);
  Storage[0].ProjectName = "p";
  Storage[0].NewCode = nestedExprSource(300);
  std::vector<const corpus::CodeChange *> Mined = {&Storage[0]};

  PipelineConfig Opts;
  Opts.Limits.Parse.MaxNestingDepth = 32;
  DiffCode System(api(), Opts);
  CorpusReport Report =
      System.run({.Changes = Mined, .TargetClasses = {"Cipher"}});
  std::string Json = corpusReportToJson(Report);
  EXPECT_NE(Json.find("\"health\""), std::string::npos);
  EXPECT_NE(Json.find("\"budget-exceeded\":1"), std::string::npos);
  EXPECT_NE(Json.find("\"ok\":0"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Budget parity across lexers, and faults inside arena parses
//===----------------------------------------------------------------------===//

namespace {

/// Renders diagnostics ("line:col: level: message" lines) so two runs can
/// be compared byte for byte, including the positions budget trips fire
/// at.
std::string renderDiags(const java::DiagnosticsEngine &Diags) {
  std::string Out;
  for (const java::Diagnostic &D : Diags.all()) {
    Out += D.str();
    Out += '\n';
  }
  Out += Diags.budgetExceeded() ? "budget=1" : "budget=0";
  return Out;
}

/// Parses \p Source with \p Limits from either the production or the
/// reference lexer's token stream.
std::string parseDiagsVia(bool UseReference, const std::string &Source,
                          java::ParseLimits Limits, bool &GotUnit) {
  java::AstContext Ctx;
  java::DiagnosticsEngine Diags;
  java::TokenStream Stream =
      UseReference ? java::ReferenceLexer(Source, Diags).lexAll()
                   : java::Lexer(Source, Diags).lexAll();
  java::Parser P(std::move(Stream), Ctx, Diags, Limits);
  GotUnit = P.parseCompilationUnit() != nullptr;
  return renderDiags(Diags);
}

} // namespace

TEST(ParseBudget, NestingTripIdenticalFromEitherLexer) {
  java::ParseLimits Limits;
  Limits.MaxNestingDepth = 50;
  const std::string Source = nestedExprSource(300);
  bool NewGotUnit = true, RefGotUnit = true;
  std::string NewDiags = parseDiagsVia(false, Source, Limits, NewGotUnit);
  std::string RefDiags = parseDiagsVia(true, Source, Limits, RefGotUnit);
  EXPECT_FALSE(NewGotUnit);
  EXPECT_FALSE(RefGotUnit);
  // Byte-identical rendering means the trip fired at the same source
  // position regardless of which scanner produced the tokens.
  EXPECT_EQ(NewDiags, RefDiags);
  EXPECT_NE(NewDiags.find("budget=1"), std::string::npos);
}

TEST(ParseBudget, TokenTripIdenticalFromEitherLexer) {
  java::ParseLimits Limits;
  Limits.MaxTokens = 10;
  const std::string Source =
      "class A { void m() { int x = 1; int y = 2; } }";
  bool NewGotUnit = true, RefGotUnit = true;
  std::string NewDiags = parseDiagsVia(false, Source, Limits, NewGotUnit);
  std::string RefDiags = parseDiagsVia(true, Source, Limits, RefGotUnit);
  EXPECT_FALSE(NewGotUnit);
  EXPECT_FALSE(RefGotUnit);
  EXPECT_EQ(NewDiags, RefDiags);
}

TEST(ParseBudget, InjectedParserFaultFiresInsideArenaParse) {
  // A Rate=1 parser-site plan must throw from inside the arena-backed
  // parse; afterwards the same context resets and parses cleanly, i.e. a
  // mid-parse exception leaves the arena reusable, not poisoned.
  support::FaultPlan Plan;
  Plan.Seed = 99;
  Plan.Rate = 1.0;
  Plan.SiteMask = support::faultSiteBit(support::FaultSite::Parser);
  support::FaultStats Stats;
  Plan.Stats = &Stats;

  const std::string Source = longChainSource(4);
  java::AstContext Ctx;
  {
    support::FaultScope Scope(&Plan, /*ScopeKey=*/7);
    java::DiagnosticsEngine Diags;
    EXPECT_THROW((void)java::parseJava(Source, Ctx, Diags),
                 support::FaultInjected);
  }
  EXPECT_GT(Stats.fired(support::FaultSite::Parser), 0u);

  Ctx.reset();
  EXPECT_EQ(Ctx.size(), 0u);
  java::DiagnosticsEngine CleanDiags;
  java::CompilationUnit *Unit = java::parseJava(Source, Ctx, CleanDiags);
  ASSERT_NE(Unit, nullptr);
  EXPECT_FALSE(CleanDiags.hasErrors());
  EXPECT_GT(Ctx.size(), 0u);
}
