//===- examples/export_corpus.cpp - Materialize a corpus on disk -----------===//
//
// Part of the DiffCode project, a reproduction of "Inferring Crypto API
// Rules from Code Changes" (PLDI'18).
//
//===----------------------------------------------------------------------===//
//
// Generates a synthetic GitHub-shaped corpus and writes it to disk in the
// CorpusIO layout — browsable Java sources, one directory per commit —
// then reads it back and runs the miner as a sanity check. The same
// layout accepts real git-exported histories, which `diffcode_cli
// pipeline <dir>` can then process.
//
// Usage: export_corpus <output-dir> [num_projects] [seed]
//
//===----------------------------------------------------------------------===//

#include "corpus/CorpusGenerator.h"
#include "corpus/CorpusIO.h"
#include "corpus/Miner.h"

#include <cstdio>
#include <cstdlib>

using namespace diffcode;

int main(int argc, char **argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: export_corpus <output-dir> [num_projects] [seed]\n");
    return 2;
  }
  corpus::CorpusOptions Opts;
  Opts.NumProjects = argc > 2 ? std::atoi(argv[2]) : 8;
  Opts.Seed = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 42;

  std::printf("generating %u projects (seed %llu)...\n", Opts.NumProjects,
              static_cast<unsigned long long>(Opts.Seed));
  corpus::Corpus C = corpus::CorpusGenerator(Opts).generate();

  std::string Error;
  if (!corpus::writeCorpus(C, argv[1], &Error)) {
    std::fprintf(stderr, "error: %s\n", Error.c_str());
    return 1;
  }
  std::printf("wrote %zu projects (%zu commits) under %s\n",
              C.Projects.size(), C.totalChanges(), argv[1]);

  // Round-trip sanity: the loaded corpus mines identically.
  std::optional<corpus::Corpus> Loaded = corpus::readCorpus(argv[1], &Error);
  if (!Loaded) {
    std::fprintf(stderr, "error reading back: %s\n", Error.c_str());
    return 1;
  }
  corpus::Miner M(apimodel::CryptoApiModel::javaCryptoApi());
  std::printf("read-back check: %zu mined changes (expected %zu)\n",
              M.mine(*Loaded).size(), M.mine(C).size());
  std::printf("\nnext: ./diffcode_cli pipeline %s\n", argv[1]);
  return 0;
}
