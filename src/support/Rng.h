//===- support/Rng.h - Deterministic random source ------------------------===//
//
// Part of the DiffCode project, a reproduction of "Inferring Crypto API
// Rules from Code Changes" (PLDI'18).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A seeded random source for the synthetic corpus generator. All
/// experiments are deterministic given a seed so that benchmark tables are
/// reproducible run-to-run.
///
//===----------------------------------------------------------------------===//

#ifndef DIFFCODE_SUPPORT_RNG_H
#define DIFFCODE_SUPPORT_RNG_H

#include <cassert>
#include <cstdint>
#include <random>
#include <vector>

namespace diffcode {

/// Thin wrapper around std::mt19937_64 with convenience draws.
class Rng {
public:
  explicit Rng(std::uint64_t Seed) : Engine(Seed) {}

  /// Uniform integer in [Lo, Hi] inclusive.
  std::uint64_t range(std::uint64_t Lo, std::uint64_t Hi) {
    assert(Lo <= Hi && "empty range");
    return std::uniform_int_distribution<std::uint64_t>(Lo, Hi)(Engine);
  }

  /// Uniform index into a container of size \p N.
  std::size_t index(std::size_t N) {
    assert(N > 0 && "index() over empty container");
    return static_cast<std::size_t>(range(0, N - 1));
  }

  /// Bernoulli draw with probability \p P of true.
  bool chance(double P) {
    return std::uniform_real_distribution<double>(0.0, 1.0)(Engine) < P;
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return std::uniform_real_distribution<double>(0.0, 1.0)(Engine);
  }

  /// Uniform pick from \p Items (must be non-empty).
  template <typename T> const T &pick(const std::vector<T> &Items) {
    return Items[index(Items.size())];
  }

  /// Derives an independent child RNG; used to give each project its own
  /// stream so corpus generation is stable under reordering.
  Rng fork() { return Rng(Engine()); }

  std::mt19937_64 &engine() { return Engine; }

private:
  std::mt19937_64 Engine;
};

} // namespace diffcode

#endif // DIFFCODE_SUPPORT_RNG_H
