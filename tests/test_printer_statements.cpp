//===- tests/test_printer_statements.cpp - AstPrinter detail tests ---------===//

#include "javaast/AstPrinter.h"
#include "javaast/Parser.h"

#include <gtest/gtest.h>

using namespace diffcode;
using namespace diffcode::java;

namespace {

struct Parsed {
  AstContext Ctx;
  DiagnosticsEngine Diags;
  CompilationUnit *Unit = nullptr;
};

std::unique_ptr<Parsed> parse(std::string_view Source) {
  auto P = std::make_unique<Parsed>();
  P->Unit = parseJava(Source, P->Ctx, P->Diags);
  EXPECT_FALSE(P->Diags.hasErrors())
      << (P->Diags.all().empty() ? "" : P->Diags.all().front().str());
  return P;
}

/// Prints the first statement of `class T { void m() { <Stmt> } }`.
std::string printFirstStmt(const std::string &Stmt) {
  auto P = parse("class T { void m() { " + Stmt + " } }");
  AstPrinter Printer;
  return Printer.printStmt(P->Unit->Types[0]->Methods[0]->Body->Stmts[0]);
}

std::string printFirstExpr(const std::string &Expr) {
  auto P = parse("class T { void m() { Object x = " + Expr + "; } }");
  AstPrinter Printer;
  const auto *Decl =
      static_cast<const LocalVarDeclStmt *>(
          P->Unit->Types[0]->Methods[0]->Body->Stmts[0]);
  return Printer.printExpr(Decl->Init);
}

} // namespace

TEST(PrinterStatements, LocalDeclWithArrayInit) {
  EXPECT_EQ(printFirstStmt("byte[] b = {1, 2, 3};"),
            "byte[] b = { 1, 2, 3 };\n");
}

TEST(PrinterStatements, IfElse) {
  std::string Out = printFirstStmt("if (a) { x(); } else { y(); }");
  EXPECT_NE(Out.find("if (a)"), std::string::npos);
  EXPECT_NE(Out.find("else"), std::string::npos);
}

TEST(PrinterStatements, DoWhile) {
  std::string Out = printFirstStmt("do { x(); } while (a);");
  EXPECT_NE(Out.find("do"), std::string::npos);
  EXPECT_NE(Out.find("while (a);"), std::string::npos);
}

TEST(PrinterStatements, ForHeaderForms) {
  EXPECT_NE(printFirstStmt("for (int i = 0; i < 9; i++) x();")
                .find("for (int i = 0; i < 9;"),
            std::string::npos);
  EXPECT_NE(printFirstStmt("for (;;) { break; }").find("for (; ; )"),
            std::string::npos);
}

TEST(PrinterStatements, TryCatchFinally) {
  std::string Out = printFirstStmt(
      "try { a(); } catch (IOException | Error e) { b(); } finally { c(); }");
  EXPECT_NE(Out.find("try {"), std::string::npos);
  EXPECT_NE(Out.find("catch (IOException | Error e)"), std::string::npos);
  EXPECT_NE(Out.find("finally {"), std::string::npos);
}

TEST(PrinterStatements, ThrowBreakContinueEmpty) {
  EXPECT_EQ(printFirstStmt("throw e;"), "throw e;\n");
  EXPECT_EQ(printFirstStmt("break;"), "break;\n");
  EXPECT_EQ(printFirstStmt("continue;"), "continue;\n");
  EXPECT_EQ(printFirstStmt(";"), ";\n");
}

TEST(PrinterStatements, ReturnForms) {
  EXPECT_EQ(printFirstStmt("return;"), "return;\n");
  EXPECT_EQ(printFirstStmt("return x + 1;"), "return x + 1;\n");
}

TEST(PrinterExpressions, Literals) {
  EXPECT_EQ(printFirstExpr("42"), "42");
  EXPECT_EQ(printFirstExpr("0x1F"), "0x1F"); // spelling preserved
  EXPECT_EQ(printFirstExpr("42L"), "42L");
  EXPECT_EQ(printFirstExpr("true"), "true");
  EXPECT_EQ(printFirstExpr("null"), "null");
  EXPECT_EQ(printFirstExpr("'a'"), "'a'");
  EXPECT_EQ(printFirstExpr("'\\''"), "'\\''");
}

TEST(PrinterExpressions, CallsAndAccess) {
  EXPECT_EQ(printFirstExpr("Cipher.getInstance(\"AES\")"),
            "Cipher.getInstance(\"AES\")");
  EXPECT_EQ(printFirstExpr("a.b.c"), "a.b.c");
  EXPECT_EQ(printFirstExpr("arr[i + 1]"), "arr[i + 1]");
  EXPECT_EQ(printFirstExpr("f(g(1), 2)"), "f(g(1), 2)");
}

TEST(PrinterExpressions, NewForms) {
  EXPECT_EQ(printFirstExpr("new Foo(1, \"x\")"), "new Foo(1, \"x\")");
  EXPECT_EQ(printFirstExpr("new byte[16]"), "new byte[16]");
  EXPECT_EQ(printFirstExpr("new int[] {1, 2}"), "new int[] { 1, 2 }");
  EXPECT_EQ(printFirstExpr("new byte[2][8]"), "new byte[2][8]");
}

TEST(PrinterExpressions, OperatorsAndParens) {
  EXPECT_EQ(printFirstExpr("a + b * c"), "a + (b * c)");
  EXPECT_EQ(printFirstExpr("-a"), "-a");
  EXPECT_EQ(printFirstExpr("!(a && b)"), "!(a && b)");
  EXPECT_EQ(printFirstExpr("a instanceof Foo"), "a instanceof Foo");
  EXPECT_EQ(printFirstExpr("(byte) v"), "(byte) v");
  EXPECT_EQ(printFirstExpr("c ? a : b"), "c ? a : b");
}

TEST(PrinterExpressions, UnicodeInStringsSurvives) {
  auto P = parse("class T { String s = \"café\"; }");
  AstPrinter Printer;
  std::string Out = Printer.print(P->Unit);
  EXPECT_NE(Out.find("café"), std::string::npos);
}

TEST(PrinterDeclarations, InterfacePrinted) {
  auto P = parse("interface I { void m(int x); }");
  AstPrinter Printer;
  std::string Out = Printer.print(P->Unit);
  EXPECT_NE(Out.find("interface I {"), std::string::npos);
  EXPECT_NE(Out.find("void m(int x);"), std::string::npos);
}

TEST(PrinterDeclarations, ThrowsClausePrinted) {
  auto P = parse("class A { void m() throws IOException, Error { } }");
  AstPrinter Printer;
  std::string Out = Printer.print(P->Unit);
  EXPECT_NE(Out.find("throws IOException, Error"), std::string::npos);
}

TEST(PrinterDeclarations, PackageAndImportsPrinted) {
  auto P = parse("package a.b;\nimport x.Y;\nclass C { }");
  AstPrinter Printer;
  std::string Out = Printer.print(P->Unit);
  EXPECT_EQ(Out.rfind("package a.b;", 0), 0u);
  EXPECT_NE(Out.find("import x.Y;"), std::string::npos);
}
