//===- javaast/Lexer.h - Table-driven Java subset lexer --------------------===//
//
// Part of the DiffCode project, a reproduction of "Inferring Crypto API
// Rules from Code Changes" (PLDI'18).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Table-driven lexer for the Java subset. Comments (line and block) and
/// whitespace are skipped; malformed input produces diagnostics and an
/// Unknown token so the parser can attempt recovery.
///
/// The scanner dispatches on a 256-entry byte-classification table, runs a
/// SWAR fast path over ASCII identifier bytes (eight at a time), and scans
/// escape-free string literals in a single pass that views straight into
/// the source buffer. Line/column information comes from a line-offset
/// table computed once per buffer, not from per-character counters.
/// ReferenceLexer.h retains the original per-character scanner as the
/// differential-testing oracle; tests/test_frontend_equivalence.cpp proves
/// the two produce byte-identical token streams and diagnostics.
///
//===----------------------------------------------------------------------===//

#ifndef DIFFCODE_JAVAAST_LEXER_H
#define DIFFCODE_JAVAAST_LEXER_H

#include "javaast/Diagnostics.h"
#include "javaast/Token.h"
#include "support/Arena.h"

#include <cstdint>
#include <string_view>
#include <vector>

namespace diffcode {
namespace java {

/// The result of lexing one buffer: the tokens plus the arena that owns
/// the decoded spellings they view into. Tokens stay valid as long as the
/// stream (moves included — arena slab addresses are stable) and the
/// source buffer are both alive.
class TokenStream {
public:
  TokenStream() = default;
  TokenStream(TokenStream &&) = default;
  TokenStream &operator=(TokenStream &&) = default;
  TokenStream(const TokenStream &) = delete;
  TokenStream &operator=(const TokenStream &) = delete;

  std::vector<Token> Tokens;
  support::Arena Storage; ///< Decoded literal bytes tokens view into.

  std::size_t size() const { return Tokens.size(); }
  bool empty() const { return Tokens.empty(); }
  const Token &operator[](std::size_t I) const { return Tokens[I]; }
  const Token &back() const { return Tokens.back(); }
  std::vector<Token>::const_iterator begin() const { return Tokens.begin(); }
  std::vector<Token>::const_iterator end() const { return Tokens.end(); }
};

/// Byte-class bits for the scanner dispatch table.
namespace charclass {
enum : std::uint8_t {
  IdentStart = 1 << 0,  ///< [A-Za-z_$]
  IdentCont = 1 << 1,   ///< [A-Za-z0-9_$]
  Digit = 1 << 2,       ///< [0-9]
  HexDigit = 1 << 3,    ///< [0-9A-Fa-f]
  Whitespace = 1 << 4,  ///< space, \t, \r, \n
  StringStop = 1 << 5,  ///< '"', '\\', '\n' — ends the fast string scan
  NumExtend = 1 << 6,   ///< byte after a digit run that keeps the literal
                        ///< going: [_.xXbBLlfFdD] (prefixes, separators,
                        ///< fractions, suffixes)
};
} // namespace charclass

/// Single-pass table-driven lexer over an in-memory buffer.
class Lexer {
public:
  Lexer(std::string_view Buffer, DiagnosticsEngine &Diags);

  /// Lexes and returns the next token; returns EndOfFile forever once the
  /// buffer is exhausted. Decoded spellings live in the lexer until
  /// lexAll() moves them into the returned stream.
  Token next();

  /// Lexes the entire buffer. The trailing EndOfFile token is included.
  TokenStream lexAll();

private:
  bool atEnd() const { return Pos >= Buffer.size(); }
  char peek(std::size_t Ahead = 0) const {
    return Pos + Ahead < Buffer.size() ? Buffer[Pos + Ahead] : '\0';
  }
  bool match(char Expected) {
    if (Pos < Buffer.size() && Buffer[Pos] == Expected) {
      ++Pos;
      return true;
    }
    return false;
  }

  /// Location of offset \p Offset, derived from the line-start table. The
  /// internal line cursor only moves forward: callers ask for locations in
  /// nondecreasing offset order (token starts).
  SourceLocation locAt(std::size_t Offset);

  /// Writes the next token directly into \p T (the lexAll hot path: the
  /// token is built in its final vector slot, never copied). Trivia
  /// skipping is fused into its dispatch loop.
  void nextInto(Token &T);
  /// Skips the comment starting at Pos (Buffer[Pos] == '/', Buffer[Pos+1]
  /// is '/' or '*'), diagnosing an unterminated block comment. Out of
  /// line so the scan loops stay spill-free.
  void skipComment();
  void lexIdentifierOrKeyword(Token &T);
  Token lexCompound(SourceLocation Loc);
  Token lexNumber(SourceLocation Loc);
  Token lexString(SourceLocation Loc);
  Token lexChar(SourceLocation Loc);
  char lexEscape();
  /// Copies \p Decoded into the stream arena and returns the stable view.
  std::string_view internDecoded(std::string_view Decoded);

  Token makeToken(TokenKind Kind, SourceLocation Loc, std::string_view Text) {
    Token T;
    T.Kind = Kind;
    T.Loc = Loc;
    T.Text = Text;
    return T;
  }

  std::string_view Buffer;
  DiagnosticsEngine &Diags;
  std::size_t Pos = 0;

  /// Byte offset of the start of each line, computed once in the
  /// constructor; LineCursor indexes the line containing the last
  /// location handed out (monotonic, so lookup is amortized O(1)).
  std::vector<std::uint32_t> LineStarts;
  std::size_t LineCursor = 0;
  /// Cached bounds of the line LineCursor points at, so the locAt hot
  /// path (token on the same line as the previous one) is two register
  /// compares and a subtract, with no vector loads.
  std::uint32_t CurLineStart = 0;
  std::uint32_t NextLineStart = UINT32_MAX;

  TokenStream Stream; ///< Owns decoded spellings until lexAll() returns.
};

} // namespace java
} // namespace diffcode

#endif // DIFFCODE_JAVAAST_LEXER_H
