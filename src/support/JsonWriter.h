//===- support/JsonWriter.h - Minimal JSON emission ------------------------===//
//
// Part of the DiffCode project, a reproduction of "Inferring Crypto API
// Rules from Code Changes" (PLDI'18).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small streaming JSON writer (objects, arrays, scalars, correct
/// string escaping) used by the report exporters. No external
/// dependencies; output is deterministic and minified.
///
//===----------------------------------------------------------------------===//

#ifndef DIFFCODE_SUPPORT_JSONWRITER_H
#define DIFFCODE_SUPPORT_JSONWRITER_H

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace diffcode {

/// Streaming JSON builder. Usage:
/// \code
///   JsonWriter W;
///   W.beginObject();
///   W.key("name").value("diffcode");
///   W.key("counts").beginArray().value(1).value(2).endArray();
///   W.endObject();
///   std::string Json = W.take();
/// \endcode
class JsonWriter {
public:
  JsonWriter &beginObject();
  JsonWriter &endObject();
  JsonWriter &beginArray();
  JsonWriter &endArray();

  /// Emits an object key; must be inside an object.
  JsonWriter &key(std::string_view Name);

  JsonWriter &value(std::string_view Text);
  JsonWriter &value(const char *Text) { return value(std::string_view(Text)); }
  JsonWriter &value(std::int64_t Number);
  JsonWriter &value(std::uint64_t Number);
  JsonWriter &value(int Number) { return value(static_cast<std::int64_t>(Number)); }
  JsonWriter &value(double Number);
  JsonWriter &value(bool Flag);
  JsonWriter &null();

  /// Splices \p Json verbatim as the next value. The caller guarantees it
  /// is a complete, well-formed JSON document (used to embed output of
  /// other writers, e.g. metric snapshots, without re-parsing).
  JsonWriter &rawValue(std::string_view Json);

  /// The finished document (writer resets to empty).
  std::string take();

  /// Escapes \p Text per RFC 8259 (without surrounding quotes).
  static std::string escape(std::string_view Text);

private:
  void separator();

  std::string Out;
  /// Stack of "needs comma before next element" flags per open container.
  std::vector<bool> NeedComma;
  bool PendingKey = false;
};

} // namespace diffcode

#endif // DIFFCODE_SUPPORT_JSONWRITER_H
