//===- examples/check_project.cpp - CryptoChecker on a project -------------===//
//
// Part of the DiffCode project, a reproduction of "Inferring Crypto API
// Rules from Code Changes" (PLDI'18).
//
//===----------------------------------------------------------------------===//
//
// Runs CryptoChecker (all 13 elicited rules, Figure 9) over either the
// .java files passed on the command line or, with no arguments, over a
// freshly generated synthetic project. Prints per-rule verdicts and the
// violating allocation sites.
//
// Usage: check_project [file.java ...]
//
//===----------------------------------------------------------------------===//

#include "core/DiffCode.h"
#include "corpus/CorpusGenerator.h"
#include "rules/BuiltinRules.h"
#include "rules/CryptoChecker.h"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

using namespace diffcode;

namespace {

std::string readFile(const char *Path) {
  std::ifstream In(Path);
  if (!In) {
    std::fprintf(stderr, "error: cannot open %s\n", Path);
    return std::string();
  }
  std::ostringstream Buffer;
  Buffer << In.rdbuf();
  return Buffer.str();
}

} // namespace

int main(int argc, char **argv) {
  const apimodel::CryptoApiModel &Api = apimodel::CryptoApiModel::javaCryptoApi();
  core::DiffCode System(Api);

  std::vector<std::pair<std::string, std::string>> Sources; // name, code
  rules::ProjectMetadata Meta;

  if (argc > 1) {
    for (int I = 1; I < argc; ++I) {
      std::string Code = readFile(argv[I]);
      if (!Code.empty())
        Sources.emplace_back(argv[I], std::move(Code));
    }
  } else {
    std::printf("(no files given — generating a synthetic project)\n\n");
    corpus::CorpusOptions Opts;
    Opts.Seed = 7;
    Opts.MaxFilesPerProject = 4;
    Opts.MinFilesPerProject = 3;
    Rng R(Opts.Seed);
    corpus::Project P =
        corpus::CorpusGenerator(Opts).generateProject("demo", R);
    Meta = P.Meta;
    for (const corpus::ProjectFile &File : P.Files)
      Sources.emplace_back(File.Name, File.Code);
  }

  // Analyze every file; keep the results alive while the checker reads the
  // object tables they own.
  std::vector<analysis::AnalysisResult> Results;
  Results.reserve(Sources.size());
  for (const auto &[Name, Code] : Sources) {
    std::printf("analyzing %s ...\n", Name.c_str());
    Results.push_back(System.analyzeSourceChecked(Code).Result);
  }
  std::vector<rules::UnitFacts> Units;
  for (const analysis::AnalysisResult &Result : Results)
    Units.push_back(rules::UnitFacts::from(Result));

  rules::CryptoChecker Checker;
  rules::ProjectReport Report = Checker.checkProject(Units, Meta);

  std::printf("\n%-5s %-11s %-8s %s\n", "rule", "applicable", "matched",
              "description");
  for (const rules::RuleVerdict &Verdict : Report.verdicts()) {
    const std::string &RuleId = Report.text(Verdict.Rule);
    const rules::Rule *R = rules::findRule(RuleId);
    std::printf("%-5s %-11s %-8s %s\n", RuleId.c_str(),
                Verdict.Applicable ? "yes" : "no",
                Verdict.Matched ? "YES" : "no",
                R ? R->Description.c_str() : "");
    for (const rules::Violation &V : Verdict.Violations)
      std::printf("      -> %s at %s (%s)\n", Report.text(V.Type).c_str(),
                  Report.text(V.Site).c_str(),
                  Sources[V.UnitIndex].first.c_str());
  }
  std::printf("\nproject %s at least one rule\n",
              Report.anyMatch() ? "VIOLATES" : "passes");
  return Report.anyMatch() ? 1 : 0;
}
