//===- examples/suggest_rules.cpp - Automatic rule elicitation -------------===//
//
// Part of the DiffCode project, a reproduction of "Inferring Crypto API
// Rules from Code Changes" (PLDI'18).
//
//===----------------------------------------------------------------------===//
//
// Section 6.3, "On Automating Rule Elicitation": derive a candidate rule
// from a single code change and immediately evaluate it — the suggested
// predicate must match the old (unfixed) version and not the new one.
// Also demonstrates the generated-rule semantics on the Figure 2 patch,
// for which the paper spells out the expected predicate.
//
//===----------------------------------------------------------------------===//

#include "core/DiffCode.h"
#include "rules/RuleSuggestion.h"

#include <cstdio>

using namespace diffcode;

namespace {

const char *OldVersion = R"java(
class TokenService {
    public byte[] fingerprint(String data) throws Exception {
        MessageDigest md = MessageDigest.getInstance("SHA-1");
        md.update(data.getBytes());
        return md.digest();
    }
}
)java";

const char *NewVersion = R"java(
class TokenService {
    public byte[] fingerprint(String data) throws Exception {
        MessageDigest md = MessageDigest.getInstance("SHA-256");
        md.update(data.getBytes());
        return md.digest();
    }
}
)java";

} // namespace

int main() {
  const apimodel::CryptoApiModel &Api = apimodel::CryptoApiModel::javaCryptoApi();
  core::DiffCode System(Api);

  corpus::CodeChange Change;
  Change.ProjectName = "demo";
  Change.OldCode = OldVersion;
  Change.NewCode = NewVersion;

  std::printf("== code change: SHA-1 -> SHA-256 ==\n");
  std::vector<usage::UsageChange> Changes =
      System.usageChangesFor(Change, "MessageDigest");
  for (const usage::UsageChange &C : Changes)
    std::printf("%s", C.str().c_str());
  if (Changes.empty()) {
    std::printf("no usage change derived\n");
    return 1;
  }

  auto Suggested = rules::suggestRule(Changes.front(), "suggested-1");
  if (!Suggested) {
    std::printf("no rule could be suggested\n");
    return 1;
  }
  std::printf("\nsuggested rule:\n  %s\n",
              rules::describeRule(*Suggested).c_str());

  // Validate the suggestion: it must flag the old version and pass the new.
  analysis::AnalysisResult OldResult = System.analyzeSourceChecked(OldVersion).Result;
  analysis::AnalysisResult NewResult = System.analyzeSourceChecked(NewVersion).Result;
  rules::UnitFacts OldFacts = rules::UnitFacts::from(OldResult);
  rules::UnitFacts NewFacts = rules::UnitFacts::from(NewResult);
  bool FlagsOld = rules::ruleMatches(*Suggested, {OldFacts});
  bool FlagsNew = rules::ruleMatches(*Suggested, {NewFacts});
  std::printf("\nvalidation: old version %s, new version %s\n",
              FlagsOld ? "FLAGGED (expected)" : "missed (BUG)",
              FlagsNew ? "flagged (BUG)" : "clean (expected)");
  return FlagsOld && !FlagsNew ? 0 : 1;
}
