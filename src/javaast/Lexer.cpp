//===- javaast/Lexer.cpp ---------------------------------------------------===//
//
// Table-driven scanner. The hot loops dispatch on a 256-entry byte-class
// table instead of per-character <cctype> calls; identifier runs use a
// SWAR fast path (eight bytes per step); escape-free strings and both
// comment forms scan with memchr. Observable behavior — token kinds,
// spellings, locations, diagnostics — is byte-identical to the retained
// per-character ReferenceLexer (enforced by test_frontend_equivalence and
// test_lexer_fuzz).
//
//===----------------------------------------------------------------------===//

#include "javaast/Lexer.h"

#include <array>
#include <bit>
#include <cstring>
#include <string>

using namespace diffcode::java;

namespace {

constexpr std::array<std::uint8_t, 256> buildCharClass() {
  using namespace charclass;
  std::array<std::uint8_t, 256> T{};
  for (int C = 'A'; C <= 'Z'; ++C)
    T[C] |= IdentStart | IdentCont;
  for (int C = 'a'; C <= 'z'; ++C)
    T[C] |= IdentStart | IdentCont;
  T['_'] |= IdentStart | IdentCont;
  T['$'] |= IdentStart | IdentCont;
  for (int C = '0'; C <= '9'; ++C)
    T[C] |= IdentCont | Digit | HexDigit;
  for (int C = 'A'; C <= 'F'; ++C)
    T[C] |= HexDigit;
  for (int C = 'a'; C <= 'f'; ++C)
    T[C] |= HexDigit;
  T[' '] |= Whitespace;
  T['\t'] |= Whitespace;
  T['\r'] |= Whitespace;
  T['\n'] |= Whitespace | StringStop;
  T['"'] |= StringStop;
  T['\\'] |= StringStop;
  for (char C : {'_', '.', 'x', 'X', 'b', 'B', 'L', 'l', 'f', 'F', 'd', 'D'})
    T[static_cast<unsigned char>(C)] |= NumExtend;
  return T;
}

constexpr std::array<std::uint8_t, 256> CharClass = buildCharClass();

inline std::uint8_t classOf(char C) {
  return CharClass[static_cast<unsigned char>(C)];
}

/// First-byte dispatch for the token loop: one table load folds the whole
/// "what kind of token starts here" decision into a single switch with
/// few, hot targets (every one-char punctuator shares one case instead of
/// owning a jump-table entry).
enum class Act : std::uint8_t {
  Bad = 0,  ///< no token starts with this byte
  Ws,       ///< whitespace: consumed by the trivia loop
  Slash,    ///< '/': comment opener or division operator
  Simple,   ///< one-char punctuator, kind from SimpleKind
  Compound, ///< punctuator needing lookahead ('=', '+', '.', ...)
  Ident,
  Number,
  Str,
  Chr,
};

struct DispatchTables {
  std::array<Act, 256> Action{};
  std::array<TokenKind, 256> Simple{};
};

constexpr DispatchTables buildDispatch() {
  DispatchTables T{};
  for (int C = 0; C < 256; ++C)
    T.Action[C] = Act::Bad;
  auto Simple = [&T](char C, TokenKind K) {
    T.Action[static_cast<unsigned char>(C)] = Act::Simple;
    T.Simple[static_cast<unsigned char>(C)] = K;
  };
  Simple('{', TokenKind::LBrace);
  Simple('}', TokenKind::RBrace);
  Simple('(', TokenKind::LParen);
  Simple(')', TokenKind::RParen);
  Simple('[', TokenKind::LBracket);
  Simple(']', TokenKind::RBracket);
  Simple(';', TokenKind::Semi);
  Simple(',', TokenKind::Comma);
  Simple('@', TokenKind::At);
  Simple('?', TokenKind::Question);
  Simple('%', TokenKind::Percent);
  Simple('~', TokenKind::Tilde);
  Simple('^', TokenKind::Caret);
  for (char C : {'.', ':', '=', '+', '-', '*', '!', '&', '|', '<', '>'})
    T.Action[static_cast<unsigned char>(C)] = Act::Compound;
  T.Action[static_cast<unsigned char>('/')] = Act::Slash;
  // Single-char kinds for the compound openers: lexAll emits these
  // directly when the next byte cannot extend the operator (every
  // two-char operator's second byte is '=', the same char, or '->').
  T.Simple[static_cast<unsigned char>('.')] = TokenKind::Dot;
  T.Simple[static_cast<unsigned char>(':')] = TokenKind::Colon;
  T.Simple[static_cast<unsigned char>('=')] = TokenKind::Assign;
  T.Simple[static_cast<unsigned char>('+')] = TokenKind::Plus;
  T.Simple[static_cast<unsigned char>('-')] = TokenKind::Minus;
  T.Simple[static_cast<unsigned char>('*')] = TokenKind::Star;
  T.Simple[static_cast<unsigned char>('/')] = TokenKind::Slash;
  T.Simple[static_cast<unsigned char>('!')] = TokenKind::Not;
  T.Simple[static_cast<unsigned char>('&')] = TokenKind::Amp;
  T.Simple[static_cast<unsigned char>('|')] = TokenKind::Pipe;
  T.Simple[static_cast<unsigned char>('<')] = TokenKind::Less;
  T.Simple[static_cast<unsigned char>('>')] = TokenKind::Greater;
  for (char C : {' ', '\t', '\r', '\n'})
    T.Action[static_cast<unsigned char>(C)] = Act::Ws;
  for (int C = 'A'; C <= 'Z'; ++C)
    T.Action[C] = Act::Ident;
  for (int C = 'a'; C <= 'z'; ++C)
    T.Action[C] = Act::Ident;
  T.Action[static_cast<unsigned char>('_')] = Act::Ident;
  T.Action[static_cast<unsigned char>('$')] = Act::Ident;
  for (int C = '0'; C <= '9'; ++C)
    T.Action[C] = Act::Number;
  T.Action[static_cast<unsigned char>('"')] = Act::Str;
  T.Action[static_cast<unsigned char>('\'')] = Act::Chr;
  return T;
}

constexpr DispatchTables Dispatch = buildDispatch();

#if defined(__BYTE_ORDER__) && defined(__ORDER_LITTLE_ENDIAN__) &&             \
    __BYTE_ORDER__ == __ORDER_LITTLE_ENDIAN__
#define DIFFCODE_LEXER_SWAR 1
#endif

#ifdef DIFFCODE_LEXER_SWAR
/// Returns a word with 0x80 set in every byte lane that is NOT an ASCII
/// identifier-continuation byte [A-Za-z0-9_$]. All lane tests below are
/// borrow-free (each subtrahend lane is pre-biased with 0x80), so every
/// lane classifies exactly — countr_zero on the result yields the first
/// stop byte.
inline std::uint64_t nonIdentLanes(std::uint64_t W) {
  constexpr std::uint64_t L = 0x0101010101010101ULL;
  constexpr std::uint64_t H = 0x8080808080808080ULL;
  std::uint64_t NonAscii = W & H;
  std::uint64_t V = W & ~H; // 7-bit lane values
  // letter: case-fold, then range-test ['a','z'].
  std::uint64_t F = V | (0x20 * L);
  std::uint64_t Letter =
      ((F | H) - 0x61 * L) & (((0x7A * L) | H) - F) & H;
  std::uint64_t Digit =
      ((V | H) - 0x30 * L) & (((0x39 * L) | H) - V) & H;
  auto Eq = [&](std::uint64_t C) {
    std::uint64_t X = V ^ (C * L);
    return ~((X | H) - L) & H;
  };
  std::uint64_t Ident =
      (Letter | Digit | Eq(0x5F) | Eq(0x24)) & ~NonAscii;
  return ~Ident & H;
}
#endif

inline unsigned hexValue(char H) {
  return H <= '9' ? static_cast<unsigned>(H - '0')
                  : static_cast<unsigned>((H | 0x20) - 'a') + 10;
}

} // namespace

Lexer::Lexer(std::string_view Buffer, DiagnosticsEngine &Diags)
    : Buffer(Buffer), Diags(Diags) {
  // Line-offset table, built once: locations derive from it instead of
  // per-character line/column counters on the scan path.
  LineStarts.reserve(Buffer.size() / 32 + 2);
  LineStarts.push_back(0);
  const char *Data = Buffer.data();
  std::size_t N = Buffer.size();
  std::size_t P = 0;
  while (P < N) {
    const void *Nl = std::memchr(Data + P, '\n', N - P);
    if (!Nl)
      break;
    P = static_cast<std::size_t>(static_cast<const char *>(Nl) - Data) + 1;
    LineStarts.push_back(static_cast<std::uint32_t>(P));
  }
  NextLineStart = LineStarts.size() > 1 ? LineStarts[1] : UINT32_MAX;
}

SourceLocation Lexer::locAt(std::size_t Offset) {
  // Hot path: the offset is still on the cached line — no vector loads.
  while (Offset >= NextLineStart) {
    ++LineCursor;
    CurLineStart = LineStarts[LineCursor];
    NextLineStart =
        LineCursor + 1 < LineStarts.size() ? LineStarts[LineCursor + 1]
                                           : UINT32_MAX;
  }
  return {static_cast<std::uint32_t>(LineCursor + 1),
          static_cast<std::uint32_t>(Offset - CurLineStart + 1),
          static_cast<std::uint32_t>(Offset)};
}

std::string_view Lexer::internDecoded(std::string_view Decoded) {
  return Stream.Storage.copy(Decoded);
}

namespace {

/// One past the last identifier-continuation byte of the run starting at
/// \p P (whose first byte is already classified IdentStart). Shared by
/// the token-at-a-time path and the fully inlined lexAll loop.
inline std::size_t scanIdentEnd(const char *Data, std::size_t N,
                                std::size_t P) {
  ++P; // first byte already classified IdentStart
#ifdef DIFFCODE_LEXER_SWAR
  while (P + 8 <= N) {
    std::uint64_t W;
    std::memcpy(&W, Data + P, 8);
    std::uint64_t Stop = nonIdentLanes(W);
    if (Stop) {
      P += static_cast<std::size_t>(std::countr_zero(Stop)) >> 3;
      break;
    }
    P += 8;
  }
  // Either stopped on a non-identifier byte (the tail loop exits at once)
  // or fewer than 8 bytes remain; the table loop finishes both cases.
#endif
  while (P < N && (classOf(Data[P]) & charclass::IdentCont))
    ++P;
  return P;
}

} // namespace

void Lexer::lexIdentifierOrKeyword(Token &T) {
  std::size_t Start = Pos;
  std::size_t P = scanIdentEnd(Buffer.data(), Buffer.size(), Start);
  Pos = P;
  std::string_view Text = Buffer.substr(Start, P - Start);
  T.Kind = lookupKeyword(Text);
  T.Text = Text;
}

Token Lexer::lexNumber(SourceLocation Loc) {
  const char *Data = Buffer.data();
  std::size_t N = Buffer.size();
  std::size_t Start = Pos;
  bool IsHex = false;
  // Java allows '_' separators inside numeric literals (1_000_000).
  if (Data[Pos] == '0' && Pos + 1 < N &&
      (Data[Pos + 1] == 'x' || Data[Pos + 1] == 'X')) {
    Pos += 2;
    IsHex = true;
    while (Pos < N &&
           ((classOf(Data[Pos]) & charclass::HexDigit) || Data[Pos] == '_'))
      ++Pos;
  } else if (Data[Pos] == '0' && Pos + 1 < N &&
             (Data[Pos + 1] == 'b' || Data[Pos + 1] == 'B')) {
    Pos += 2;
    IsHex = true; // no fractional part either
    while (Pos < N &&
           (Data[Pos] == '0' || Data[Pos] == '1' || Data[Pos] == '_'))
      ++Pos;
  } else {
    while (Pos < N &&
           ((classOf(Data[Pos]) & charclass::Digit) || Data[Pos] == '_'))
      ++Pos;
  }
  // Fractional part (parsed but treated as an opaque literal; the abstract
  // domains in Figure 3 only track ints, strings, and bytes).
  if (!IsHex && peek() == '.' && (classOf(peek(1)) & charclass::Digit)) {
    ++Pos;
    while (Pos < N && (classOf(Data[Pos]) & charclass::Digit))
      ++Pos;
  }
  TokenKind Kind = TokenKind::IntLiteral;
  char Suffix = peek();
  if (Suffix == 'L' || Suffix == 'l') {
    ++Pos;
    Kind = TokenKind::LongLiteral;
  } else if (Suffix == 'f' || Suffix == 'F' || Suffix == 'd' ||
             Suffix == 'D') {
    ++Pos;
  }
  return makeToken(Kind, Loc, Buffer.substr(Start, Pos - Start));
}

char Lexer::lexEscape() {
  if (atEnd())
    return '\\';
  char C = Buffer[Pos++];
  switch (C) {
  case 'n':
    return '\n';
  case 't':
    return '\t';
  case 'r':
    return '\r';
  case 'b':
    return '\b';
  case 'f':
    return '\f';
  case '0':
    return '\0';
  case '\'':
  case '"':
  case '\\':
    return C;
  case 'u': {
    // \uXXXX: decode and narrow to one byte (best effort; the corpus is
    // ASCII). Consumes up to four hex digits.
    unsigned Value = 0;
    for (int I = 0;
         I < 4 && !atEnd() && (classOf(Buffer[Pos]) & charclass::HexDigit);
         ++I) {
      Value = Value * 16 + hexValue(Buffer[Pos]);
      ++Pos;
    }
    return static_cast<char>(Value & 0xFF);
  }
  default:
    return C;
  }
}

Token Lexer::lexString(SourceLocation Loc) {
  const char *Data = Buffer.data();
  std::size_t N = Buffer.size();
  std::size_t ContentStart = Pos + 1; // past opening quote
  std::size_t P = ContentStart;
  while (P < N && !(classOf(Data[P]) & charclass::StringStop))
    ++P;
  if (P < N && Data[P] == '"') {
    // Fast path: no escapes — the spelling views straight into the buffer.
    Pos = P + 1;
    return makeToken(TokenKind::StringLiteral, Loc,
                     Buffer.substr(ContentStart, P - ContentStart));
  }
  if (P >= N || Data[P] == '\n') {
    // Unterminated with no escapes: content still views into the buffer.
    Pos = P;
    Diags.error(Loc, "unterminated string literal");
    return makeToken(TokenKind::StringLiteral, Loc,
                     Buffer.substr(ContentStart, P - ContentStart));
  }
  // Slow path: an escape is present — decode into the stream arena.
  Pos = ContentStart;
  std::string Decoded;
  Decoded.reserve(P - ContentStart + 8);
  while (!atEnd() && Buffer[Pos] != '"' && Buffer[Pos] != '\n') {
    char C = Buffer[Pos++];
    if (C == '\\')
      C = lexEscape();
    Decoded += C;
  }
  if (atEnd() || Buffer[Pos] == '\n')
    Diags.error(Loc, "unterminated string literal");
  else
    ++Pos; // closing quote
  return makeToken(TokenKind::StringLiteral, Loc, internDecoded(Decoded));
}

Token Lexer::lexChar(SourceLocation Loc) {
  ++Pos; // opening quote
  std::string_view Text;
  if (!atEnd() && peek() != '\'') {
    char C = Buffer[Pos++];
    if (C == '\\') {
      char Decoded = lexEscape();
      Text = internDecoded({&Decoded, 1});
    } else {
      Text = Buffer.substr(Pos - 1, 1);
    }
  }
  if (!match('\''))
    Diags.error(Loc, "unterminated char literal");
  return makeToken(TokenKind::CharLiteral, Loc, Text);
}

Token Lexer::lexCompound(SourceLocation Loc) {
  char C = Buffer[Pos++];
  switch (C) {
  case '.':
    if (peek() == '.' && peek(1) == '.') {
      Pos += 2;
      return makeToken(TokenKind::Ellipsis, Loc, "...");
    }
    return makeToken(TokenKind::Dot, Loc, ".");
  case ':':
    if (match(':'))
      return makeToken(TokenKind::ColonColon, Loc, "::");
    return makeToken(TokenKind::Colon, Loc, ":");
  case '=':
    if (match('='))
      return makeToken(TokenKind::EqualEqual, Loc, "==");
    return makeToken(TokenKind::Assign, Loc, "=");
  case '+':
    if (match('='))
      return makeToken(TokenKind::PlusAssign, Loc, "+=");
    if (match('+'))
      return makeToken(TokenKind::PlusPlus, Loc, "++");
    return makeToken(TokenKind::Plus, Loc, "+");
  case '-':
    if (match('='))
      return makeToken(TokenKind::MinusAssign, Loc, "-=");
    if (match('-'))
      return makeToken(TokenKind::MinusMinus, Loc, "--");
    if (match('>'))
      return makeToken(TokenKind::Arrow, Loc, "->");
    return makeToken(TokenKind::Minus, Loc, "-");
  case '*':
    if (match('='))
      return makeToken(TokenKind::StarAssign, Loc, "*=");
    return makeToken(TokenKind::Star, Loc, "*");
  case '/':
    if (match('='))
      return makeToken(TokenKind::SlashAssign, Loc, "/=");
    return makeToken(TokenKind::Slash, Loc, "/");
  case '!':
    if (match('='))
      return makeToken(TokenKind::NotEqual, Loc, "!=");
    return makeToken(TokenKind::Not, Loc, "!");
  case '&':
    if (match('&'))
      return makeToken(TokenKind::AmpAmp, Loc, "&&");
    return makeToken(TokenKind::Amp, Loc, "&");
  case '|':
    if (match('|'))
      return makeToken(TokenKind::PipePipe, Loc, "||");
    return makeToken(TokenKind::Pipe, Loc, "|");
  case '<':
    if (match('='))
      return makeToken(TokenKind::LessEqual, Loc, "<=");
    if (match('<'))
      return makeToken(TokenKind::Shl, Loc, "<<");
    return makeToken(TokenKind::Less, Loc, "<");
  default: // '>'
    if (match('='))
      return makeToken(TokenKind::GreaterEqual, Loc, ">=");
    if (match('>'))
      return makeToken(TokenKind::Shr, Loc, ">>");
    return makeToken(TokenKind::Greater, Loc, ">");
  }
}

#if defined(__GNUC__)
__attribute__((noinline))
#endif
void Lexer::skipComment() {
  // Kept out of line on purpose: inlining the comment scanners into the
  // per-token dispatch loops costs more in register pressure (spills on
  // every token) than the call costs on the rare comment.
  const char *Data = Buffer.data();
  const std::size_t N = Buffer.size();
  std::size_t P = Pos;
  if (Data[P + 1] == '/') {
    const void *Nl = std::memchr(Data + P + 2, '\n', N - P - 2);
    Pos = Nl ? static_cast<std::size_t>(static_cast<const char *>(Nl) - Data)
             : N;
    return;
  }
  SourceLocation Start = locAt(P);
  std::size_t Q = P + 2;
  bool Closed = false;
  while (Q < N) {
    const void *Star = std::memchr(Data + Q, '*', N - Q);
    if (!Star)
      break;
    Q = static_cast<std::size_t>(static_cast<const char *>(Star) - Data);
    if (Q + 1 < N && Data[Q + 1] == '/') {
      Q += 2;
      Closed = true;
      break;
    }
    ++Q;
  }
  Pos = Closed ? Q : N;
  if (!Closed)
    Diags.error(Start, "unterminated block comment");
}

void Lexer::nextInto(Token &T) {
  const char *Data = Buffer.data();
  const std::size_t N = Buffer.size();
  std::size_t P = Pos;
  unsigned char C = 0;
  Act A = Act::Bad;
  // Fused trivia + dispatch loop: one table load classifies each byte
  // both as trivia and as a token opener, so the token's first byte is
  // never classified twice.
  for (;;) {
    if (P >= N) {
      Pos = P;
      T.Loc = locAt(P);
      T.Kind = TokenKind::EndOfFile;
      T.Text = {};
      return;
    }
    C = static_cast<unsigned char>(Data[P]);
    A = Dispatch.Action[C];
    if (A == Act::Ws) {
      ++P;
      continue;
    }
    if (A == Act::Slash && P + 1 < N &&
        (Data[P + 1] == '/' || Data[P + 1] == '*')) {
      Pos = P;
      skipComment();
      P = Pos;
      continue;
    }
    break;
  }

  Pos = P;
  T.Loc = locAt(P);
  switch (A) {
  case Act::Ident:
    lexIdentifierOrKeyword(T);
    return;
  case Act::Simple:
    // Every one-char punctuator funnels through this single case; the
    // spelling views into the buffer (same bytes as the literal).
    T.Kind = Dispatch.Simple[C];
    T.Text = Buffer.substr(P, 1);
    Pos = P + 1;
    return;
  case Act::Compound:
  case Act::Slash:
    T = lexCompound(T.Loc);
    return;
  case Act::Number:
    T = lexNumber(T.Loc);
    return;
  case Act::Str:
    T = lexString(T.Loc);
    return;
  case Act::Chr:
    T = lexChar(T.Loc);
    return;
  default:
    break;
  }
  Pos = P + 1;
  Diags.error(T.Loc, std::string("unexpected character '") +
                         static_cast<char>(C) + "'");
  T.Kind = TokenKind::Unknown;
  T.Text = Buffer.substr(P, 1);
}

Token Lexer::next() {
  Token T;
  nextInto(T);
  return T;
}

TokenStream Lexer::lexAll() {
  // The whole-buffer scan keeps its state (cursor, line bounds) in locals
  // so it stays in registers across tokens; nextInto pays a full call's
  // worth of member reloads per token, which dominates at corpus scale.
  // Cold token kinds (literals, operators, errors) sync the locals
  // through the members and reuse the token-at-a-time helpers.
  std::vector<Token> &Toks = Stream.Tokens;
  Toks.reserve(Buffer.size() / 4 + 8);
  const char *Data = Buffer.data();
  const std::size_t N = Buffer.size();
  const std::uint32_t *LS = LineStarts.data();
  const std::size_t NumLines = LineStarts.size();
  std::size_t P = Pos;
  std::size_t Cursor = LineCursor;
  std::uint32_t CurStart = CurLineStart;
  std::uint32_t NextStart = NextLineStart;

  for (;;) {
    unsigned char C = 0;
    Act A = Act::Bad;
    bool AtEof = false;
    // Fused trivia + dispatch loop (same shape as nextInto).
    for (;;) {
      if (P >= N) {
        AtEof = true;
        break;
      }
      C = static_cast<unsigned char>(Data[P]);
      A = Dispatch.Action[C];
      if (A == Act::Ws) {
        ++P;
        continue;
      }
      if (A == Act::Slash && P + 1 < N &&
          (Data[P + 1] == '/' || Data[P + 1] == '*')) {
        // Out of line: keeping the comment scanners' registers out of
        // this loop stops the per-token path from spilling.
        Pos = P;
        LineCursor = Cursor;
        CurLineStart = CurStart;
        NextLineStart = NextStart;
        skipComment();
        P = Pos;
        Cursor = LineCursor;
        CurStart = CurLineStart;
        NextStart = NextLineStart;
        continue;
      }
      break;
    }

    while (P >= NextStart) {
      ++Cursor;
      CurStart = LS[Cursor];
      NextStart = Cursor + 1 < NumLines ? LS[Cursor + 1] : UINT32_MAX;
    }
    SourceLocation Loc{static_cast<std::uint32_t>(Cursor + 1),
                       static_cast<std::uint32_t>(P - CurStart + 1),
                       static_cast<std::uint32_t>(P)};
    Token &T = Toks.emplace_back();
    T.Loc = Loc;

    if (AtEof) {
      T.Kind = TokenKind::EndOfFile;
      T.Text = {};
      Pos = P;
      LineCursor = Cursor;
      CurLineStart = CurStart;
      NextLineStart = NextStart;
      return std::move(Stream);
    }

    switch (A) {
    case Act::Ident: {
      std::size_t End = scanIdentEnd(Data, N, P);
      std::string_view Text(Data + P, End - P);
      T.Kind = lookupKeyword(Text);
      T.Text = Text;
      P = End;
      continue;
    }
    case Act::Simple:
      T.Kind = Dispatch.Simple[C];
      T.Text = std::string_view(Data + P, 1);
      ++P;
      continue;
    case Act::Compound:
    case Act::Slash: {
      // Fast path: the next byte cannot extend the operator, so this is
      // the one-char token from the Simple table. Spurious slow-path
      // trips (e.g. "&=", which is Amp then Assign) stay correct —
      // lexCompound re-derives the token from scratch.
      unsigned char Next = P + 1 < N ? static_cast<unsigned char>(Data[P + 1])
                                     : 0;
      if (Next != '=' && Next != C && !(C == '-' && Next == '>')) {
        T.Kind = Dispatch.Simple[C];
        T.Text = std::string_view(Data + P, 1);
        ++P;
        continue;
      }
      Pos = P;
      T = lexCompound(Loc);
      P = Pos;
      continue;
    }
    case Act::Number: {
      // Fast path: plain decimal int — no prefix, separator, fraction, or
      // suffix byte after the digit run (the NumExtend class catches all
      // of those, so the general scanner only runs when one is present).
      std::size_t Q = P;
      while (Q < N && (classOf(Data[Q]) & charclass::Digit))
        ++Q;
      if (Q >= N || !(classOf(Data[Q]) & charclass::NumExtend)) {
        T.Kind = TokenKind::IntLiteral;
        T.Text = std::string_view(Data + P, Q - P);
        P = Q;
        continue;
      }
      Pos = P;
      T = lexNumber(Loc);
      P = Pos;
      continue;
    }
    case Act::Str: {
      // Fast path: escape-free string closed on the same line — the
      // spelling views straight into the buffer.
      std::size_t Q = P + 1;
      while (Q < N && !(classOf(Data[Q]) & charclass::StringStop))
        ++Q;
      if (Q < N && Data[Q] == '"') {
        T.Kind = TokenKind::StringLiteral;
        T.Text = std::string_view(Data + P + 1, Q - P - 1);
        P = Q + 1;
        continue;
      }
      Pos = P;
      T = lexString(Loc);
      P = Pos;
      continue;
    }
    case Act::Chr:
      Pos = P;
      T = lexChar(Loc);
      P = Pos;
      continue;
    default: // Act::Bad
      Diags.error(Loc, std::string("unexpected character '") +
                           static_cast<char>(C) + "'");
      T.Kind = TokenKind::Unknown;
      T.Text = std::string_view(Data + P, 1);
      ++P;
      continue;
    }
  }
}
