//===- service/Server.h - The diffcoded server loop ------------------------===//
//
// Part of the DiffCode project, a reproduction of "Inferring Crypto API
// Rules from Code Changes" (PLDI'18).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The long-lived half of service mode: a Server owns one
/// AnalysisSession and answers framed requests (service/Protocol.h) over
/// any byte-stream fd pair — a UNIX socket connection, a socketpair to a
/// forked child, or plain pipes in tests. Requests are served strictly
/// in order on one thread; the session's incremental caches, not
/// concurrency, are what make repeated ingests cheap.
///
/// Two transports:
///   * serveUnix: bind + listen on a filesystem socket, accept
///     connections sequentially, serve each until disconnect, stop at
///     the first ShutdownReq (the `diffcoded <socket>` / `diffcode_cli
///     --serve` mode);
///   * Client: the matching request side over a connected fd
///     (`diffcode_cli --connect`), one blocking request/reply at a time.
///
/// Failure shape mirrors the supervised engine: a frame that fails
/// validation (bad magic / length / checksum) poisons the connection —
/// the server drops it rather than guess at resynchronization — while a
/// well-framed but malformed request only earns a ReplyErr and the
/// connection lives on.
///
//===----------------------------------------------------------------------===//

#ifndef DIFFCODE_SERVICE_SERVER_H
#define DIFFCODE_SERVICE_SERVER_H

#include "scan/Scanner.h"
#include "service/AnalysisSession.h"
#include "service/Protocol.h"

#include <memory>
#include <string>
#include <vector>

namespace diffcode {
namespace service {

/// Why a serve loop over one connection ended.
enum class ServeOutcome {
  Disconnected, ///< Peer closed the stream (clean for a connection).
  Shutdown,     ///< ShutdownReq acknowledged; the server should stop.
  ProtocolError, ///< Frame validation failed or the fd errored.
};

/// One session behind a request loop.
class Server {
public:
  Server(const apimodel::CryptoApiModel &Api, SessionOptions Opts);

  /// Serves framed requests from \p InFd, writing one reply per request
  /// to \p OutFd, until EOF, ShutdownReq, or a poisoned stream. The two
  /// fds may be the same (a socket).
  ServeOutcome serve(int InFd, int OutFd);

  AnalysisSession &session() { return Session; }

  /// The daemon's observer (SessionOptions::Metrics), or null when the
  /// daemon runs unobserved. StatsReq answers from it; the owner (the
  /// CLI / diffcoded) flushes its trace at shutdown.
  obs::Observer *observer() { return Obs; }

  /// The warm rule scanner, created on the first ScanReq (thread/limit
  /// knobs inherited from the session's PipelineConfig). Its compiled
  /// rules and unit-digest cache persist across requests and
  /// connections, which is the point of scanning through a session.
  scan::Scanner &scanner();

private:
  std::string handleQuery(const std::string &What, bool &Known) const;

  const apimodel::CryptoApiModel &Api;
  scan::ScanConfig ScannerConfig;
  std::unique_ptr<scan::Scanner> RuleScanner;
  obs::Observer *Obs = nullptr; ///< Copied from SessionOptions::Metrics.
  AnalysisSession Session;
};

/// Binds and listens on UNIX socket \p Path (unlinking a stale socket
/// first). Returns the listening fd, or -1 with \p Error.
int listenUnix(const std::string &Path, std::string *Error = nullptr);

/// Connects to UNIX socket \p Path. Returns the connected fd, or -1 with
/// \p Error.
int connectUnix(const std::string &Path, std::string *Error = nullptr);

/// The accept loop: serves connections from \p ListenFd sequentially
/// until a connection ends with ServeOutcome::Shutdown. Returns 0 on a
/// clean shutdown, 1 when accept(2) itself fails. Per-connection
/// protocol errors only drop that connection.
int serveUnix(Server &S, int ListenFd);

/// The request side of one connected stream. Does not own the fd.
class Client {
public:
  explicit Client(int Fd) : Fd(Fd) {}

  /// Each call sends one request frame and blocks for the matching
  /// reply. False on transport failure or ReplyErr (message in
  /// \p Error).
  bool ingest(const std::vector<corpus::CodeChange> &Changes,
              IngestReply &Reply, std::string *Error = nullptr);
  bool query(const std::string &What, std::string &Answer,
             std::string *Error = nullptr);
  bool snapshot(std::string &ReportJson, std::string *Error = nullptr);
  bool scan(const ScanRequestWire &Request, std::string &ReportJson,
            std::string *Error = nullptr);
  /// Live introspection: the daemon observer's RunSummary JSON
  /// ({"counters":[...],"stages":[...]}). Fails with ReplyErr when the
  /// daemon runs unobserved. Read-only — never disturbs the session.
  bool stats(std::string &SummaryJson, std::string *Error = nullptr);
  bool shutdown(std::string *Error = nullptr);

private:
  bool roundTrip(ServiceFrame Type, std::string_view Payload,
                 std::string &ReplyPayload, std::string *Error);

  int Fd = -1;
};

} // namespace service
} // namespace diffcode

#endif // DIFFCODE_SERVICE_SERVER_H
