file(REMOVE_RECURSE
  "CMakeFiles/diffcode_cli.dir/diffcode_cli.cpp.o"
  "CMakeFiles/diffcode_cli.dir/diffcode_cli.cpp.o.d"
  "diffcode_cli"
  "diffcode_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/diffcode_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
