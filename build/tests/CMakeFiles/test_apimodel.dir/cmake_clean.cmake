file(REMOVE_RECURSE
  "CMakeFiles/test_apimodel.dir/test_apimodel.cpp.o"
  "CMakeFiles/test_apimodel.dir/test_apimodel.cpp.o.d"
  "test_apimodel"
  "test_apimodel.pdb"
  "test_apimodel[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_apimodel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
