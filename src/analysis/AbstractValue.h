//===- analysis/AbstractValue.h - Figure-3 abstract domains ---------------===//
//
// Part of the DiffCode project, a reproduction of "Inferring Crypto API
// Rules from Code Changes" (PLDI'18).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The crypto-tailored base-type abstraction of Figure 3 plus heap values:
///
///   int      -> Ints(P) u {Tint}           (constants kept)
///   int[]    -> IntArrays(P) u {Tint[]}
///   string   -> Strs(P) u {Tstr}
///   string[] -> StrArrays(P) u {Tstr[]}
///   byte     -> {constbyte, Tbyte}
///   byte[]   -> {constbyte[], Tbyte[]}     (content abstracted away)
///   objects  -> allocation sites u {Tobj}
///
/// Integer constants keep an optional symbolic name so DAG labels read
/// "ENCRYPT_MODE" rather than "1" (Figure 2). Two provenance-only kinds,
/// Unknown and UnknownConst, carry results of unmodeled calls until a
/// declaration/cast coerces them into a domain: UnknownConst remembers
/// that every input was a program constant, which is what lets
/// `"k".getBytes()` surface as constbyte[] (rules R9-R11).
///
//===----------------------------------------------------------------------===//

#ifndef DIFFCODE_ANALYSIS_ABSTRACTVALUE_H
#define DIFFCODE_ANALYSIS_ABSTRACTVALUE_H

#include <cstdint>
#include <string>
#include <vector>

namespace diffcode {
namespace analysis {

/// Discriminator for AbstractValue.
enum class AVKind : std::uint8_t {
  Unknown,      ///< Result of an unmodeled computation, domain unknown.
  UnknownConst, ///< Like Unknown, but derived only from constants.
  Null,
  IntConst,
  IntTop,
  IntArrayConst,
  IntArrayTop,
  StrConst,
  StrTop,
  StrArrayConst,
  StrArrayTop,
  ByteConst,
  ByteTop,
  ByteArrayConst,
  ByteArrayTop,
  Object,    ///< A tracked allocation site.
  TopObject, ///< Tobj: allocation unknown (e.g. method parameters).
};

/// A value of the abstract domains above. Immutable by convention.
class AbstractValue {
public:
  AbstractValue() : Kind(AVKind::Unknown) {}

  // Named constructors.
  static AbstractValue unknown() { return AbstractValue(); }
  static AbstractValue unknownConst();
  static AbstractValue null();
  static AbstractValue intConst(std::int64_t Value,
                                std::string Symbol = std::string());
  static AbstractValue intTop();
  static AbstractValue intArrayConst(std::vector<std::int64_t> Elements);
  static AbstractValue intArrayTop();
  static AbstractValue strConst(std::string Value);
  static AbstractValue strTop();
  static AbstractValue strArrayConst(std::vector<std::string> Elements);
  static AbstractValue strArrayTop();
  static AbstractValue byteConst();
  static AbstractValue byteTop();
  static AbstractValue byteArrayConst();
  static AbstractValue byteArrayTop();
  static AbstractValue object(unsigned Id, std::string TypeName);
  static AbstractValue topObject(std::string TypeName);

  AVKind kind() const { return Kind; }
  bool isObjectLike() const {
    return Kind == AVKind::Object || Kind == AVKind::TopObject;
  }
  bool isTrackedObject() const { return Kind == AVKind::Object; }

  /// True when the value is a program constant under the abstraction
  /// (null counts as constant — it is a fixed program value).
  bool isConstant() const;

  std::int64_t intValue() const { return IntValue; }
  const std::string &strValue() const { return StrValue; }
  const std::string &symbol() const { return Symbol; }
  const std::string &typeName() const { return TypeName; }
  unsigned objectId() const { return ObjectId; }
  const std::vector<std::int64_t> &intElements() const { return IntElems; }
  const std::vector<std::string> &strElements() const { return StrElems; }

  /// The DAG node label for this value used as a call argument
  /// (Section 3.4): constants print themselves, tops print their domain
  /// symbol, objects print their type name.
  std::string label() const;

  /// Join for merging control-flow paths: equal values stay, different
  /// values widen to the domain top (or Unknown across domains).
  static AbstractValue join(const AbstractValue &A, const AbstractValue &B);

  bool operator==(const AbstractValue &Other) const;
  bool operator!=(const AbstractValue &Other) const {
    return !(*this == Other);
  }

private:
  AVKind Kind;
  std::int64_t IntValue = 0;
  std::string StrValue;
  std::string Symbol;
  std::string TypeName;
  unsigned ObjectId = 0;
  std::vector<std::int64_t> IntElems;
  std::vector<std::string> StrElems;
};

} // namespace analysis
} // namespace diffcode

#endif // DIFFCODE_ANALYSIS_ABSTRACTVALUE_H
