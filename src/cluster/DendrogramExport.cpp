//===- cluster/DendrogramExport.cpp ----------------------------------------===//

#include "cluster/DendrogramExport.h"

#include <cstdio>
#include <map>

using namespace diffcode;
using namespace diffcode::cluster;

namespace {

std::string escapeDot(const std::string &Text) {
  std::string Out;
  for (char C : Text) {
    if (C == '"')
      Out += "\\\"";
    else if (C == '\n')
      Out += "\\n";
    else if (C == '\\')
      Out += "\\\\";
    else
      Out += C;
  }
  return Out;
}

} // namespace

std::string diffcode::cluster::toDot(
    const Dendrogram &Tree,
    const std::function<std::string(std::size_t)> &LeafLabel,
    const DotOptions &Opts) {
  static const char *Palette[] = {"#a6cee3", "#b2df8a", "#fb9a99",
                                  "#fdbf6f", "#cab2d6", "#ffff99"};
  std::string Out = "digraph \"" + escapeDot(Opts.GraphName) + "\" {\n";
  Out += "  rankdir=LR;\n  node [fontname=\"monospace\"];\n";
  if (Tree.empty())
    return Out + "}\n";

  // Item -> cluster color (optional).
  std::map<std::size_t, std::string> ItemColor;
  if (Opts.ColorCutThreshold >= 0.0) {
    std::size_t ClusterId = 0;
    for (const std::vector<std::size_t> &Cluster :
         Tree.cut(Opts.ColorCutThreshold)) {
      for (std::size_t Item : Cluster)
        ItemColor[Item] = Palette[ClusterId % std::size(Palette)];
      ++ClusterId;
    }
  }

  const std::vector<Dendrogram::Node> &Nodes = Tree.nodes();
  for (std::size_t Index = 0; Index < Nodes.size(); ++Index) {
    const Dendrogram::Node &Node = Nodes[Index];
    if (Node.isLeaf()) {
      std::string Attrs = "shape=box, label=\"" +
                          escapeDot(LeafLabel(Node.Item)) + "\"";
      auto It = ItemColor.find(Node.Item);
      if (It != ItemColor.end())
        Attrs += ", style=filled, fillcolor=\"" + It->second + "\"";
      Out += "  n" + std::to_string(Index) + " [" + Attrs + "];\n";
    } else {
      char Buf[32];
      std::snprintf(Buf, sizeof(Buf), "%.3f", Node.Height);
      Out += "  n" + std::to_string(Index) +
             " [shape=ellipse, label=\"" + Buf + "\"];\n";
      Out += "  n" + std::to_string(Index) + " -> n" +
             std::to_string(Node.Left) + ";\n";
      Out += "  n" + std::to_string(Index) + " -> n" +
             std::to_string(Node.Right) + ";\n";
    }
  }
  Out += "}\n";
  return Out;
}
