//===- exec/Protocol.cpp ---------------------------------------------------===//

#include "exec/Protocol.h"

using namespace diffcode;
using namespace diffcode::exec;

std::string diffcode::exec::encodeHello(std::uint32_t BaseLabels,
                                        std::uint32_t BasePaths,
                                        std::uint64_t TraceEpochNs) {
  WireWriter W;
  W.u32(ProtocolVersion);
  W.u32(BaseLabels);
  W.u32(BasePaths);
  W.u64(TraceEpochNs);
  return encodeFrame(static_cast<std::uint32_t>(FrameType::Hello), W.bytes());
}

bool diffcode::exec::decodeHello(std::string_view Payload,
                                 std::uint32_t &BaseLabels,
                                 std::uint32_t &BasePaths,
                                 std::uint64_t &TraceEpochNs) {
  WireReader R(Payload);
  std::uint32_t Version = R.u32();
  BaseLabels = R.u32();
  BasePaths = R.u32();
  TraceEpochNs = R.u64();
  return R.atEnd() && Version == ProtocolVersion;
}

std::string diffcode::exec::encodeWork(const WorkUnit &Unit) {
  WireWriter W;
  W.u64(Unit.Id);
  W.u32(Unit.Attempt);
  W.u32(static_cast<std::uint32_t>(Unit.Indices.size()));
  for (std::uint64_t Index : Unit.Indices)
    W.u64(Index);
  return encodeFrame(static_cast<std::uint32_t>(FrameType::Work), W.bytes());
}

bool diffcode::exec::decodeWork(std::string_view Payload, WorkUnit &Out) {
  WireReader R(Payload);
  Out.Id = R.u64();
  Out.Attempt = R.u32();
  std::uint32_t Count = R.u32();
  Out.Indices.clear();
  for (std::uint32_t I = 0; I < Count && R.ok(); ++I)
    Out.Indices.push_back(R.u64());
  return R.atEnd() && Out.Indices.size() == Count;
}

std::string diffcode::exec::encodeUnitDone(std::uint64_t UnitId) {
  WireWriter W;
  W.u64(UnitId);
  return encodeFrame(static_cast<std::uint32_t>(FrameType::UnitDone),
                     W.bytes());
}

bool diffcode::exec::decodeUnitDone(std::string_view Payload,
                                    std::uint64_t &UnitId) {
  WireReader R(Payload);
  UnitId = R.u64();
  return R.atEnd();
}

//===----------------------------------------------------------------------===//
// Telemetry
//===----------------------------------------------------------------------===//

static void writeTelemetryPayload(WireWriter &W, std::uint32_t Incarnation,
                                  const std::vector<obs::Tracer::Event> &Spans,
                                  const obs::Snapshot &Metrics) {
  W.clear();
  W.u32(Incarnation);
  W.u32(static_cast<std::uint32_t>(Spans.size()));
  for (const obs::Tracer::Event &E : Spans) {
    W.str(E.Name);
    W.u64(E.StartNs);
    W.u64(E.DurNs);
    W.u32(E.Tid);
  }
  W.u32(static_cast<std::uint32_t>(Metrics.Values.size()));
  for (const obs::MetricValue &V : Metrics.Values) {
    W.str(V.Name);
    W.u8(static_cast<std::uint8_t>(V.Kind));
    W.u8(static_cast<std::uint8_t>(V.U));
    W.u8(static_cast<std::uint8_t>(V.S));
    switch (V.Kind) {
    case obs::MetricKind::Counter:
      W.u64(V.Count);
      break;
    case obs::MetricKind::Gauge:
      W.u64(static_cast<std::uint64_t>(V.Value));
      break;
    case obs::MetricKind::Histogram:
      W.u64(V.Count);
      W.u64(V.Sum);
      W.u64(V.Min);
      W.u64(V.Max);
      W.u32(static_cast<std::uint32_t>(V.Buckets.size()));
      for (const auto &[Index, BucketCount] : V.Buckets) {
        W.u32(Index);
        W.u64(BucketCount);
      }
      break;
    }
  }
}

std::string
diffcode::exec::encodeTelemetry(std::uint32_t Incarnation,
                                const std::vector<obs::Tracer::Event> &Spans,
                                const obs::Snapshot &Metrics) {
  WireWriter W;
  writeTelemetryPayload(W, Incarnation, Spans, Metrics);
  return encodeFrame(static_cast<std::uint32_t>(FrameType::Telemetry),
                     W.bytes());
}

void diffcode::exec::appendTelemetry(
    std::string &Out, WireWriter &Scratch, std::uint32_t Incarnation,
    const std::vector<obs::Tracer::Event> &Spans,
    const obs::Snapshot &Metrics) {
  writeTelemetryPayload(Scratch, Incarnation, Spans, Metrics);
  appendFrame(Out, static_cast<std::uint32_t>(FrameType::Telemetry),
              Scratch.bytes());
}

bool diffcode::exec::decodeTelemetry(std::string_view Payload,
                                     TelemetryFrame &Out) {
  WireReader R(Payload);
  Out.Incarnation = R.u32();

  std::uint32_t SpanCount = R.u32();
  Out.Spans.clear();
  // No reserve from the wire-supplied count: a hostile length would
  // balloon memory before the truncation check ever runs.
  for (std::uint32_t I = 0; I < SpanCount && R.ok(); ++I) {
    TelemetrySpan S;
    S.Name = std::string(R.str());
    S.StartNs = R.u64();
    S.DurNs = R.u64();
    S.Tid = R.u32();
    Out.Spans.push_back(std::move(S));
  }
  if (!R.ok() || Out.Spans.size() != SpanCount)
    return false;

  std::uint32_t MetricCount = R.u32();
  Out.Metrics.Values.clear();
  for (std::uint32_t I = 0; I < MetricCount && R.ok(); ++I) {
    obs::MetricValue V;
    V.Name = std::string(R.str());
    std::uint8_t Kind = R.u8();
    std::uint8_t U = R.u8();
    std::uint8_t S = R.u8();
    if (!R.ok() || Kind > std::uint8_t(obs::MetricKind::Histogram) ||
        U > std::uint8_t(obs::Unit::Percent) ||
        S > std::uint8_t(obs::Stability::PerRun))
      return false;
    // Registry snapshots are strictly name-ordered; enforcing that here
    // keeps the Snapshot::merge precondition safe from hostile senders.
    if (!Out.Metrics.Values.empty() &&
        V.Name <= Out.Metrics.Values.back().Name)
      return false;
    V.Kind = static_cast<obs::MetricKind>(Kind);
    V.U = static_cast<obs::Unit>(U);
    V.S = static_cast<obs::Stability>(S);
    switch (V.Kind) {
    case obs::MetricKind::Counter:
      V.Count = R.u64();
      break;
    case obs::MetricKind::Gauge:
      V.Value = static_cast<std::int64_t>(R.u64());
      break;
    case obs::MetricKind::Histogram: {
      V.Count = R.u64();
      V.Sum = R.u64();
      V.Min = R.u64();
      V.Max = R.u64();
      std::uint32_t BucketCount = R.u32();
      for (std::uint32_t B = 0; B < BucketCount && R.ok(); ++B) {
        std::uint32_t Index = R.u32();
        std::uint64_t C = R.u64();
        if (Index >= obs::Histogram::NumBuckets ||
            (!V.Buckets.empty() && Index <= V.Buckets.back().first))
          return false;
        V.Buckets.emplace_back(Index, C);
      }
      if (!R.ok() || V.Buckets.size() != BucketCount)
        return false;
      break;
    }
    }
    Out.Metrics.Values.push_back(std::move(V));
  }
  return R.atEnd() && Out.Metrics.Values.size() == MetricCount;
}

//===----------------------------------------------------------------------===//
// Interner definition streaming
//===----------------------------------------------------------------------===//

static void appendLabelDef(std::string &Out, WireWriter &W,
                           std::uint32_t WorkerId,
                           const usage::NodeLabel &Label) {
  W.clear();
  W.u32(WorkerId);
  W.u8(static_cast<std::uint8_t>(Label.K));
  W.u32(Label.ArgIndex);
  W.u8(Label.ValueIsString ? 1 : 0);
  W.str(Label.Text);
  appendFrame(Out, static_cast<std::uint32_t>(FrameType::LabelDef), W.bytes());
}

static void appendPathDef(std::string &Out, WireWriter &W,
                          std::uint32_t WorkerId,
                          const std::vector<support::LabelId> &Labels) {
  W.clear();
  W.u32(WorkerId);
  W.u32(static_cast<std::uint32_t>(Labels.size()));
  for (support::LabelId Id : Labels)
    W.u32(Id);
  appendFrame(Out, static_cast<std::uint32_t>(FrameType::PathDef), W.bytes());
}

void DefSender::flush(std::string &Out) {
  WireWriter W;
  // Labels first: every path flushed below references only label ids
  // interned before the path itself (the interner is append-only and the
  // worker is single-threaded), so labelCount() at this instant covers
  // them all.
  std::size_t LabelHigh = Table.labelCount();
  for (; LabelsSent < LabelHigh; ++LabelsSent)
    appendLabelDef(Out, W, static_cast<std::uint32_t>(LabelsSent),
                   Table.labelAt(static_cast<support::LabelId>(LabelsSent)));
  std::size_t PathHigh = Table.pathCount();
  for (; PathsSent < PathHigh; ++PathsSent)
    appendPathDef(Out, W, static_cast<std::uint32_t>(PathsSent),
                  Table.labelsOf(static_cast<support::PathId>(PathsSent)));
}

bool IdRemap::applyLabelDef(std::string_view Payload,
                            support::Interner &Table) {
  WireReader R(Payload);
  std::uint32_t WorkerId = R.u32();
  std::uint8_t Kind = R.u8();
  std::uint32_t ArgIndex = R.u32();
  std::uint8_t IsString = R.u8();
  std::string_view Text = R.str();
  if (!R.atEnd() || Kind > static_cast<std::uint8_t>(usage::NodeLabel::Kind::Arg))
    return false;
  // Defs are dense above the inherited base and in worker intern order.
  if (WorkerId != BaseLabels + Labels.size())
    return false;
  usage::NodeLabel Label;
  Label.K = static_cast<usage::NodeLabel::Kind>(Kind);
  Label.ArgIndex = ArgIndex;
  Label.ValueIsString = IsString != 0;
  Label.Text.assign(Text);
  Labels.push_back(Table.label(Label));
  return true;
}

bool IdRemap::applyPathDef(std::string_view Payload,
                           support::Interner &Table) {
  WireReader R(Payload);
  std::uint32_t WorkerId = R.u32();
  std::uint32_t Count = R.u32();
  std::vector<support::LabelId> Remapped;
  Remapped.reserve(Count);
  for (std::uint32_t I = 0; I < Count && R.ok(); ++I) {
    support::LabelId Parent = 0;
    if (!mapLabel(R.u32(), Parent))
      return false;
    Remapped.push_back(Parent);
  }
  if (!R.atEnd() || Remapped.size() != Count ||
      WorkerId != BasePaths + Paths.size())
    return false;
  Paths.push_back(Table.path(std::move(Remapped)));
  return true;
}

//===----------------------------------------------------------------------===//
// ChangeRecord codec
//===----------------------------------------------------------------------===//

void diffcode::exec::appendResult(std::string &Out, WireWriter &Scratch,
                                  std::uint64_t ChangeIndex,
                                  const core::ChangeRecord &Record) {
  WireWriter &W = Scratch;
  W.clear();
  W.u64(ChangeIndex);
  W.str(Record.Origin);
  W.str(Record.GroundTruthKind);
  W.u8(static_cast<std::uint8_t>(Record.Status));
  W.str(Record.StatusDetail);
  W.u64(Record.StepsUsed);
  W.u32(static_cast<std::uint32_t>(Record.PerClass.size()));
  for (const auto &[Target, Changes] : Record.PerClass) {
    W.str(Target);
    W.u32(static_cast<std::uint32_t>(Changes.size()));
    for (const usage::UsageChange &Change : Changes) {
      W.str(Change.TypeName);
      W.str(Change.Origin);
      W.u32(static_cast<std::uint32_t>(Change.Removed.size()));
      for (support::PathId Id : Change.Removed)
        W.u32(Id);
      W.u32(static_cast<std::uint32_t>(Change.Added.size()));
      for (support::PathId Id : Change.Added)
        W.u32(Id);
    }
  }
  W.u32(static_cast<std::uint32_t>(Record.Classification.size()));
  for (const auto &[RuleId, Class] : Record.Classification) {
    W.str(RuleId);
    W.u8(static_cast<std::uint8_t>(Class));
  }
  appendFrame(Out, static_cast<std::uint32_t>(FrameType::Result), W.bytes());
}

std::string diffcode::exec::encodeResult(std::uint64_t ChangeIndex,
                                         const core::ChangeRecord &Record) {
  std::string Out;
  WireWriter Scratch;
  appendResult(Out, Scratch, ChangeIndex, Record);
  return Out;
}

static bool decodePathIds(WireReader &R, const IdRemap &Remap,
                          std::vector<support::PathId> &Out) {
  std::uint32_t Count = R.u32();
  Out.clear();
  Out.reserve(Count);
  for (std::uint32_t I = 0; I < Count && R.ok(); ++I) {
    support::PathId Parent = 0;
    if (!Remap.mapPath(R.u32(), Parent))
      return false;
    Out.push_back(Parent);
  }
  return R.ok() && Out.size() == Count;
}

bool diffcode::exec::decodeResult(std::string_view Payload,
                                  const IdRemap &Remap,
                                  support::Interner &Table,
                                  std::uint64_t &ChangeIndex,
                                  core::ChangeRecord &Out) {
  WireReader R(Payload);
  ChangeIndex = R.u64();
  Out = core::ChangeRecord();
  Out.Origin.assign(R.str());
  Out.GroundTruthKind.assign(R.str());
  std::uint8_t Status = R.u8();
  if (Status >= core::NumChangeStatuses)
    return false;
  Out.Status = static_cast<core::ChangeStatus>(Status);
  Out.StatusDetail.assign(R.str());
  Out.StepsUsed = R.u64();
  std::uint32_t NumClasses = R.u32();
  for (std::uint32_t C = 0; C < NumClasses && R.ok(); ++C) {
    std::string Target(R.str());
    std::uint32_t NumChanges = R.u32();
    std::vector<usage::UsageChange> Changes;
    Changes.reserve(NumChanges);
    for (std::uint32_t I = 0; I < NumChanges && R.ok(); ++I) {
      usage::UsageChange Change;
      Change.TypeName.assign(R.str());
      Change.Origin.assign(R.str());
      Change.Table = &Table;
      if (!decodePathIds(R, Remap, Change.Removed) ||
          !decodePathIds(R, Remap, Change.Added))
        return false;
      Changes.push_back(std::move(Change));
    }
    if (Changes.size() != NumChanges)
      return false;
    Out.PerClass.emplace(std::move(Target), std::move(Changes));
  }
  if (!R.ok() || Out.PerClass.size() != NumClasses)
    return false;
  std::uint32_t NumRules = R.u32();
  for (std::uint32_t I = 0; I < NumRules && R.ok(); ++I) {
    std::string RuleId(R.str());
    std::uint8_t Class = R.u8();
    if (Class > static_cast<std::uint8_t>(rules::ChangeClass::NonSemantic))
      return false;
    Out.Classification.emplace(std::move(RuleId),
                               static_cast<rules::ChangeClass>(Class));
  }
  return R.atEnd() && Out.Classification.size() == NumRules;
}
