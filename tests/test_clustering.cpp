//===- tests/test_clustering.cpp - Hierarchical clustering tests -----------===//

#include "cluster/HierarchicalClustering.h"

#include "cluster/Distance.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

using namespace diffcode;
using namespace diffcode::cluster;

namespace {

/// Points on a line; distance = |a - b| / 100 to stay within [0,1].
Dendrogram clusterPoints(const std::vector<double> &Points) {
  return agglomerativeCluster(Points.size(),
                              [&](std::size_t I, std::size_t J) {
                                return std::abs(Points[I] - Points[J]) / 100.0;
                              });
}

std::set<std::set<std::size_t>>
asSets(const std::vector<std::vector<std::size_t>> &Clusters) {
  std::set<std::set<std::size_t>> Out;
  for (const auto &Cluster : Clusters)
    Out.insert(std::set<std::size_t>(Cluster.begin(), Cluster.end()));
  return Out;
}

} // namespace

TEST(Clustering, EmptyInput) {
  Dendrogram Tree = agglomerativeCluster(0, [](std::size_t, std::size_t) {
    return 0.0;
  });
  EXPECT_TRUE(Tree.empty());
  EXPECT_TRUE(Tree.cut(0.5).empty());
}

TEST(Clustering, SingleItem) {
  Dendrogram Tree = clusterPoints({1.0});
  EXPECT_EQ(Tree.leafCount(), 1u);
  auto Clusters = Tree.cut(0.0);
  ASSERT_EQ(Clusters.size(), 1u);
  EXPECT_EQ(Clusters[0], std::vector<std::size_t>{0});
}

TEST(Clustering, TwoWellSeparatedGroups) {
  // {0, 1, 2} near zero, {50, 51} far away.
  Dendrogram Tree = clusterPoints({0.0, 1.0, 2.0, 50.0, 51.0});
  auto Clusters = asSets(Tree.cut(0.1)); // threshold 10 units
  EXPECT_EQ(Clusters.size(), 2u);
  EXPECT_TRUE(Clusters.count({0, 1, 2}));
  EXPECT_TRUE(Clusters.count({3, 4}));
}

TEST(Clustering, CutAtZeroSeparatesDistinctItems) {
  Dendrogram Tree = clusterPoints({0.0, 5.0, 10.0});
  EXPECT_EQ(Tree.cut(0.0).size(), 3u);
}

TEST(Clustering, CutAboveMaxMergesAll) {
  Dendrogram Tree = clusterPoints({0.0, 5.0, 10.0, 80.0});
  auto Clusters = Tree.cut(1.0);
  ASSERT_EQ(Clusters.size(), 1u);
  EXPECT_EQ(Clusters[0].size(), 4u);
}

TEST(Clustering, CompleteLinkageUsesMaxPairDistance) {
  // Chain 0-4-8: single linkage would merge everything at 4; complete
  // linkage merges {0,4} at 4 then {0,4,8} at 8.
  Dendrogram Tree = clusterPoints({0.0, 4.0, 8.0});
  const auto &Nodes = Tree.nodes();
  // Two merge nodes exist after the three leaves.
  ASSERT_EQ(Nodes.size(), 5u);
  EXPECT_DOUBLE_EQ(Nodes[3].Height, 0.04);
  EXPECT_DOUBLE_EQ(Nodes[4].Height, 0.08);
}

TEST(Clustering, MergeHeightsAreMonotone) {
  Rng R(99);
  std::vector<double> Points;
  for (int I = 0; I < 30; ++I)
    Points.push_back(static_cast<double>(R.range(0, 100)));
  Dendrogram Tree = clusterPoints(Points);
  // Complete linkage is monotone: each successive merge has height >= the
  // previous one (creation order == merge order in our builder).
  double Last = 0.0;
  for (const auto &Node : Tree.nodes()) {
    if (Node.isLeaf())
      continue;
    EXPECT_GE(Node.Height + 1e-12, Last);
    Last = Node.Height;
  }
}

TEST(Clustering, EveryLeafInExactlyOneCluster) {
  Rng R(7);
  std::vector<double> Points;
  for (int I = 0; I < 25; ++I)
    Points.push_back(static_cast<double>(R.range(0, 100)));
  Dendrogram Tree = clusterPoints(Points);
  for (double Threshold : {0.0, 0.05, 0.2, 0.5, 1.0}) {
    auto Clusters = Tree.cut(Threshold);
    std::vector<bool> Seen(Points.size(), false);
    for (const auto &Cluster : Clusters)
      for (std::size_t Item : Cluster) {
        EXPECT_FALSE(Seen[Item]);
        Seen[Item] = true;
      }
    EXPECT_TRUE(std::all_of(Seen.begin(), Seen.end(),
                            [](bool B) { return B; }));
  }
}

TEST(Clustering, ClustersSortedBySize) {
  Dendrogram Tree = clusterPoints({0.0, 1.0, 2.0, 90.0});
  auto Clusters = Tree.cut(0.1);
  ASSERT_GE(Clusters.size(), 2u);
  for (std::size_t I = 1; I < Clusters.size(); ++I)
    EXPECT_GE(Clusters[I - 1].size(), Clusters[I].size());
}

TEST(Clustering, RenderShowsLeavesAndHeights) {
  Dendrogram Tree = clusterPoints({0.0, 1.0});
  std::string Art = Tree.render([](std::size_t Item) {
    return "item" + std::to_string(Item);
  });
  EXPECT_NE(Art.find("item0"), std::string::npos);
  EXPECT_NE(Art.find("item1"), std::string::npos);
  EXPECT_NE(Art.find("[0.010]"), std::string::npos);
}

TEST(Clustering, RenderIndentsMultilineLabels) {
  Dendrogram Tree = clusterPoints({0.0, 1.0});
  std::string Art = Tree.render([](std::size_t Item) {
    return "- removed\n+ added " + std::to_string(Item);
  });
  EXPECT_NE(Art.find("- removed"), std::string::npos);
  EXPECT_NE(Art.find("+ added"), std::string::npos);
}

TEST(Clustering, UsageChangeWrapperGroupsSimilarFixes) {
  using namespace diffcode::usage;
  using namespace diffcode::analysis;
  static support::Interner Table;
  auto MakeChange = [](const char *From, const char *To) {
    return UsageChange::intern(
        Table, "Cipher",
        {{NodeLabel::root("Cipher"), NodeLabel::method("Cipher.getInstance/1"),
          NodeLabel::arg(1, AbstractValue::strConst(From))}},
        {{NodeLabel::root("Cipher"), NodeLabel::method("Cipher.getInstance/1"),
          NodeLabel::arg(1, AbstractValue::strConst(To))}});
  };
  std::vector<UsageChange> Changes = {
      MakeChange("AES", "AES/CBC/PKCS5Padding"),
      MakeChange("AES/ECB", "AES/CBC/PKCS5Padding"),
      MakeChange("AES", "AES/GCM/NoPadding"),
  };
  // A fourth, very different change (digest swap).
  Changes.push_back(UsageChange::intern(
      Table, "Cipher",
      {{NodeLabel::root("Cipher"), NodeLabel::method("Cipher.doFinal/0")}},
      {{NodeLabel::root("Cipher"), NodeLabel::method("Cipher.unwrap/3")}}));

  Dendrogram Tree = clusterUsageChanges(Changes);
  // The three mode fixes must merge before the unrelated change joins.
  auto Clusters = asSets(Tree.cut(0.6));
  bool FoundModeCluster = false;
  for (const auto &Cluster : Clusters)
    if (Cluster.count(0) && Cluster.count(1) && Cluster.count(2) &&
        !Cluster.count(3))
      FoundModeCluster = true;
  EXPECT_TRUE(FoundModeCluster);
}
