//===- tests/test_support.cpp - support library unit tests -----------------===//

#include "support/Hungarian.h"
#include "support/Rng.h"
#include "support/StringUtils.h"
#include "support/TablePrinter.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <sstream>

using namespace diffcode;

//===----------------------------------------------------------------------===//
// StringUtils
//===----------------------------------------------------------------------===//

TEST(StringUtils, SplitBasic) {
  std::vector<std::string> Parts = split("a,b,c", ',');
  ASSERT_EQ(Parts.size(), 3u);
  EXPECT_EQ(Parts[0], "a");
  EXPECT_EQ(Parts[1], "b");
  EXPECT_EQ(Parts[2], "c");
}

TEST(StringUtils, SplitKeepsEmptyPieces) {
  std::vector<std::string> Parts = split(",a,,b,", ',');
  ASSERT_EQ(Parts.size(), 5u);
  EXPECT_EQ(Parts[0], "");
  EXPECT_EQ(Parts[2], "");
  EXPECT_EQ(Parts[4], "");
}

TEST(StringUtils, SplitNoSeparator) {
  std::vector<std::string> Parts = split("abc", ',');
  ASSERT_EQ(Parts.size(), 1u);
  EXPECT_EQ(Parts[0], "abc");
}

TEST(StringUtils, JoinInvertsSplit) {
  std::string Text = "x.y.z";
  EXPECT_EQ(join(split(Text, '.'), "."), Text);
}

TEST(StringUtils, JoinEmpty) {
  EXPECT_EQ(join({}, ", "), "");
  EXPECT_EQ(join({"only"}, ", "), "only");
}

TEST(StringUtils, TrimBothEnds) {
  EXPECT_EQ(trim("  hello \t\n"), "hello");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim(" \t "), "");
  EXPECT_EQ(trim("no-trim"), "no-trim");
}

TEST(StringUtils, ReplaceAll) {
  EXPECT_EQ(replaceAll("a-b-c", "-", "+"), "a+b+c");
  EXPECT_EQ(replaceAll("aaa", "aa", "b"), "ba");
  EXPECT_EQ(replaceAll("abc", "", "x"), "abc");
  EXPECT_EQ(replaceAll("abc", "d", "x"), "abc");
}

TEST(Levenshtein, KnownDistances) {
  EXPECT_EQ(levenshtein(std::string("kitten"), std::string("sitting")), 3u);
  EXPECT_EQ(levenshtein(std::string(""), std::string("abc")), 3u);
  EXPECT_EQ(levenshtein(std::string("abc"), std::string("")), 3u);
  EXPECT_EQ(levenshtein(std::string("same"), std::string("same")), 0u);
}

TEST(Levenshtein, RatioRange) {
  EXPECT_DOUBLE_EQ(levenshteinRatio(std::string("abc"), std::string("abc")),
                   1.0);
  EXPECT_DOUBLE_EQ(levenshteinRatio(std::string(""), std::string("")), 1.0);
  EXPECT_DOUBLE_EQ(levenshteinRatio(std::string("abc"), std::string("xyz")),
                   0.0);
}

TEST(Levenshtein, WorksOverTokenVectors) {
  std::vector<std::string> A = {"init", "ENCRYPT_MODE"};
  std::vector<std::string> B = {"init", "DECRYPT_MODE"};
  EXPECT_EQ(levenshtein(A, B), 1u);
  EXPECT_DOUBLE_EQ(levenshteinRatio(A, B), 0.5);
}

/// Property suite: Levenshtein is a metric on random strings.
class LevenshteinProperty : public ::testing::TestWithParam<int> {};

TEST_P(LevenshteinProperty, MetricAxioms) {
  Rng R(GetParam());
  auto RandomString = [&] {
    std::string S;
    std::size_t Len = R.range(0, 12);
    for (std::size_t I = 0; I < Len; ++I)
      S += static_cast<char>('a' + R.range(0, 3));
    return S;
  };
  std::string A = RandomString(), B = RandomString(), C = RandomString();
  std::size_t AB = levenshtein(A, B);
  std::size_t BA = levenshtein(B, A);
  // Symmetry.
  EXPECT_EQ(AB, BA);
  // Identity of indiscernibles.
  EXPECT_EQ(levenshtein(A, A), 0u);
  if (AB == 0)
    EXPECT_EQ(A, B);
  // Triangle inequality.
  EXPECT_LE(levenshtein(A, C), AB + levenshtein(B, C));
  // Bounded by max length.
  EXPECT_LE(AB, std::max(A.size(), B.size()));
}

INSTANTIATE_TEST_SUITE_P(Seeds, LevenshteinProperty,
                         ::testing::Range(0, 40));

//===----------------------------------------------------------------------===//
// Hungarian assignment
//===----------------------------------------------------------------------===//

TEST(Hungarian, TrivialSingle) {
  CostMatrix M(1, 1);
  M.at(0, 0) = 3.5;
  Assignment A = solveAssignment(M);
  ASSERT_EQ(A.RowToCol.size(), 1u);
  EXPECT_EQ(A.RowToCol[0], 0u);
  EXPECT_DOUBLE_EQ(A.TotalCost, 3.5);
}

TEST(Hungarian, PicksCheaperDiagonal) {
  // Identity assignment costs 2; the swap costs 0.
  CostMatrix M(2, 2);
  M.at(0, 0) = 1.0;
  M.at(0, 1) = 0.0;
  M.at(1, 0) = 0.0;
  M.at(1, 1) = 1.0;
  Assignment A = solveAssignment(M);
  EXPECT_EQ(A.RowToCol[0], 1u);
  EXPECT_EQ(A.RowToCol[1], 0u);
  EXPECT_DOUBLE_EQ(A.TotalCost, 0.0);
}

TEST(Hungarian, ClassicExample) {
  // Known optimum 5 (1+2+2? -> verified by brute force below too).
  CostMatrix M(3, 3);
  double Vals[3][3] = {{4, 1, 3}, {2, 0, 5}, {3, 2, 2}};
  for (int R = 0; R < 3; ++R)
    for (int C = 0; C < 3; ++C)
      M.at(R, C) = Vals[R][C];
  Assignment A = solveAssignment(M);
  EXPECT_DOUBLE_EQ(A.TotalCost, 5.0);
}

TEST(Hungarian, RectangularMoreRows) {
  CostMatrix M(3, 2);
  M.at(0, 0) = 5;
  M.at(0, 1) = 5;
  M.at(1, 0) = 1;
  M.at(1, 1) = 5;
  M.at(2, 0) = 5;
  M.at(2, 1) = 1;
  Assignment A = solveAssignment(M);
  // Row 0 pairs with padding.
  EXPECT_EQ(A.RowToCol[0], Assignment::Unmatched);
  EXPECT_EQ(A.RowToCol[1], 0u);
  EXPECT_EQ(A.RowToCol[2], 1u);
  EXPECT_DOUBLE_EQ(A.TotalCost, 2.0);
}

TEST(Hungarian, RectangularMoreCols) {
  CostMatrix M(1, 3);
  M.at(0, 0) = 2;
  M.at(0, 1) = 1;
  M.at(0, 2) = 3;
  Assignment A = solveAssignment(M);
  EXPECT_EQ(A.RowToCol[0], 1u);
  EXPECT_DOUBLE_EQ(A.TotalCost, 1.0);
}

TEST(Hungarian, EmptyMatrix) {
  CostMatrix M(0, 0);
  Assignment A = solveAssignment(M);
  EXPECT_TRUE(A.RowToCol.empty());
  EXPECT_DOUBLE_EQ(A.TotalCost, 0.0);
}

/// Property: the solver matches brute force on random square matrices.
class HungarianProperty : public ::testing::TestWithParam<int> {};

TEST_P(HungarianProperty, MatchesBruteForce) {
  Rng R(GetParam() * 977 + 11);
  std::size_t N = 1 + R.range(0, 4); // up to 5x5: 120 permutations
  CostMatrix M(N, N);
  for (std::size_t I = 0; I < N; ++I)
    for (std::size_t J = 0; J < N; ++J)
      M.at(I, J) = static_cast<double>(R.range(0, 20));

  Assignment A = solveAssignment(M);

  std::vector<std::size_t> Perm(N);
  std::iota(Perm.begin(), Perm.end(), 0);
  double Best = 1e18;
  do {
    double Cost = 0;
    for (std::size_t I = 0; I < N; ++I)
      Cost += M.at(I, Perm[I]);
    Best = std::min(Best, Cost);
  } while (std::next_permutation(Perm.begin(), Perm.end()));

  EXPECT_DOUBLE_EQ(A.TotalCost, Best);
}

INSTANTIATE_TEST_SUITE_P(Seeds, HungarianProperty, ::testing::Range(0, 30));

//===----------------------------------------------------------------------===//
// Rng determinism
//===----------------------------------------------------------------------===//

TEST(Rng, DeterministicForSeed) {
  Rng A(123), B(123);
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(A.range(0, 1000), B.range(0, 1000));
}

TEST(Rng, RangeIsInclusive) {
  Rng R(5);
  bool SawLo = false, SawHi = false;
  for (int I = 0; I < 200; ++I) {
    std::uint64_t V = R.range(2, 4);
    EXPECT_GE(V, 2u);
    EXPECT_LE(V, 4u);
    SawLo = SawLo || V == 2;
    SawHi = SawHi || V == 4;
  }
  EXPECT_TRUE(SawLo);
  EXPECT_TRUE(SawHi);
}

TEST(Rng, ForkIndependence) {
  Rng A(9);
  Rng Child = A.fork();
  // The child stream must differ from a fresh same-seed parent's stream.
  Rng B(9);
  B.fork();
  EXPECT_EQ(Child.range(0, 1u << 30), Rng(Rng(9).engine()()).range(0, 1u << 30));
}

//===----------------------------------------------------------------------===//
// TablePrinter
//===----------------------------------------------------------------------===//

TEST(TablePrinter, AlignsColumns) {
  TablePrinter T({"name", "value"});
  T.addRow({"x", "1"});
  T.addRow({"longer", "22"});
  std::ostringstream OS;
  T.print(OS);
  std::string Out = OS.str();
  EXPECT_NE(Out.find("name"), std::string::npos);
  EXPECT_NE(Out.find("longer"), std::string::npos);
  EXPECT_NE(Out.find("----"), std::string::npos);
  // Header line and separator line have equal length.
  std::vector<std::string> Lines = split(Out, '\n');
  ASSERT_GE(Lines.size(), 4u);
  EXPECT_EQ(Lines[0].size(), Lines[1].size());
}

TEST(TablePrinter, PadsShortRows) {
  TablePrinter T({"a", "b", "c"});
  T.addRow({"only"});
  std::ostringstream OS;
  T.print(OS);
  EXPECT_NE(OS.str().find("only"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Diagnostics & locations (javaast support types)
//===----------------------------------------------------------------------===//

#include "javaast/Diagnostics.h"

TEST(Diagnostics, RenderedInToolStyle) {
  diffcode::java::DiagnosticsEngine Engine;
  Engine.error({3, 7, 0}, "expected ';' after statement");
  Engine.warning({1, 1, 0}, "try statement without catch");
  ASSERT_EQ(Engine.all().size(), 2u);
  EXPECT_EQ(Engine.all()[0].str(), "3:7: error: expected ';' after statement");
  EXPECT_EQ(Engine.all()[1].str(),
            "1:1: warning: try statement without catch");
  EXPECT_TRUE(Engine.hasErrors());
  Engine.clear();
  EXPECT_FALSE(Engine.hasErrors());
  EXPECT_TRUE(Engine.all().empty());
}

TEST(Diagnostics, WarningsAloneAreNotErrors) {
  diffcode::java::DiagnosticsEngine Engine;
  Engine.warning({1, 1, 0}, "w");
  EXPECT_FALSE(Engine.hasErrors());
}

TEST(SourceLocation, ValidityAndString) {
  diffcode::java::SourceLocation Invalid;
  EXPECT_FALSE(Invalid.isValid());
  diffcode::java::SourceLocation Loc{12, 34, 100};
  EXPECT_TRUE(Loc.isValid());
  EXPECT_EQ(Loc.str(), "12:34");
}

//===----------------------------------------------------------------------===//
// ThreadPool error containment
//===----------------------------------------------------------------------===//

#include "support/FaultInjection.h"
#include "support/ThreadPool.h"

#include <atomic>
#include <stdexcept>

TEST(ThreadPool, ExceptionRethrownOnCaller) {
  support::ThreadPool Pool(4);
  EXPECT_THROW(
      Pool.parallelForChunked(256, 1,
                              [&](std::size_t Begin, std::size_t Stop) {
                                for (std::size_t I = Begin; I < Stop; ++I)
                                  if (I == 100)
                                    throw std::runtime_error("boom");
                              }),
      std::runtime_error);
}

TEST(ThreadPool, ExceptionMessageSurvives) {
  support::ThreadPool Pool(4);
  try {
    Pool.parallelForChunked(64, 1, [&](std::size_t, std::size_t) {
      throw std::runtime_error("worker died at change 7");
    });
    FAIL() << "expected parallelForChunked to rethrow";
  } catch (const std::runtime_error &E) {
    EXPECT_STREQ(E.what(), "worker died at change 7");
  }
}

TEST(ThreadPool, SerialPathPropagatesException) {
  support::ThreadPool Pool(1);
  EXPECT_THROW(Pool.parallelForChunked(
                   16, 1,
                   [&](std::size_t, std::size_t) {
                     throw std::runtime_error("serial boom");
                   }),
               std::runtime_error);
}

TEST(ThreadPool, UsableAfterFailedBatch) {
  support::ThreadPool Pool(4);
  EXPECT_THROW(Pool.parallelForChunked(128, 1,
                                       [&](std::size_t, std::size_t) {
                                         throw std::runtime_error("x");
                                       }),
               std::runtime_error);
  // The pool must come back clean: a later batch runs to completion and
  // sees every index exactly once.
  std::atomic<std::uint64_t> Sum{0};
  Pool.parallelForChunked(1000, 7, [&](std::size_t Begin, std::size_t Stop) {
    for (std::size_t I = Begin; I < Stop; ++I)
      Sum.fetch_add(I, std::memory_order_relaxed);
  });
  EXPECT_EQ(Sum.load(), 999u * 1000u / 2);
}

TEST(ThreadPool, FirstErrorAbortsUnclaimedChunks) {
  // Every chunk throws, so each participating thread (3 workers + the
  // caller) fails its first claim and then observes the abort flag: far
  // fewer than N bodies may run.
  support::ThreadPool Pool(4);
  std::atomic<unsigned> Calls{0};
  EXPECT_THROW(Pool.parallelForChunked(10000, 1,
                                       [&](std::size_t, std::size_t) {
                                         Calls.fetch_add(1);
                                         throw std::runtime_error("every");
                                       }),
               std::runtime_error);
  EXPECT_LE(Calls.load(), 4u);
}

//===----------------------------------------------------------------------===//
// Fault injection
//===----------------------------------------------------------------------===//

TEST(FaultInjection, NoPlanNeverFires) {
  EXPECT_FALSE(support::faultPoint(support::FaultSite::Parser, 1));
  support::FaultPlan Disabled; // Rate defaults to 0.
  support::FaultScope Scope(&Disabled, 5);
  EXPECT_FALSE(support::faultPoint(support::FaultSite::Parser, 1));
}

TEST(FaultInjection, RateOneAlwaysFires) {
  support::FaultPlan Plan;
  Plan.Rate = 1.0;
  support::FaultScope Scope(&Plan, 0);
  for (std::uint64_t Key = 0; Key < 64; ++Key)
    EXPECT_TRUE(support::faultPoint(support::FaultSite::Interpreter, Key));
}

TEST(FaultInjection, PatternIsDeterministicAndSeedDependent) {
  support::FaultPlan Plan;
  Plan.Seed = 1234;
  Plan.Rate = 0.5;
  auto Draw = [&Plan](std::uint64_t ScopeKey) {
    support::FaultScope Scope(&Plan, ScopeKey);
    std::vector<char> Fired;
    for (std::uint64_t Key = 0; Key < 400; ++Key)
      Fired.push_back(
          support::faultPoint(support::FaultSite::Hungarian, Key) ? 1 : 0);
    return Fired;
  };
  std::vector<char> A = Draw(42), B = Draw(42), C = Draw(43);
  EXPECT_EQ(A, B);
  EXPECT_NE(A, C); // a different work unit faults differently
  std::size_t Count = std::count(A.begin(), A.end(), 1);
  EXPECT_GT(Count, 100u); // ~200 expected at rate 0.5
  EXPECT_LT(Count, 300u);
}

TEST(FaultInjection, SiteMaskGates) {
  support::FaultPlan Plan;
  Plan.Rate = 1.0;
  Plan.SiteMask = support::faultSiteBit(support::FaultSite::Clustering);
  support::FaultScope Scope(&Plan, 9);
  EXPECT_TRUE(support::faultPoint(support::FaultSite::Clustering, 1));
  EXPECT_FALSE(support::faultPoint(support::FaultSite::Parser, 1));
  EXPECT_FALSE(support::faultPoint(support::FaultSite::Hungarian, 1));
  EXPECT_FALSE(support::faultPoint(support::FaultSite::Interpreter, 1));
}

TEST(FaultInjection, ScopesNestAndRestore) {
  support::FaultPlan Plan;
  Plan.Rate = 1.0;
  EXPECT_FALSE(support::faultPoint(support::FaultSite::Parser, 0));
  {
    support::FaultScope Outer(&Plan, 1);
    EXPECT_TRUE(support::faultPoint(support::FaultSite::Parser, 0));
    {
      support::FaultScope Inner(nullptr, 2);
      EXPECT_FALSE(support::faultPoint(support::FaultSite::Parser, 0));
    }
    EXPECT_TRUE(support::faultPoint(support::FaultSite::Parser, 0));
  }
  EXPECT_FALSE(support::faultPoint(support::FaultSite::Parser, 0));
}

TEST(FaultInjection, ThrowIfFaultThrowsTypedError) {
  support::FaultPlan Plan;
  Plan.Rate = 1.0;
  support::FaultScope Scope(&Plan, 3);
  try {
    support::throwIfFault(support::FaultSite::Hungarian, 77);
    FAIL() << "expected FaultInjected";
  } catch (const support::FaultInjected &E) {
    EXPECT_EQ(E.Site, support::FaultSite::Hungarian);
    EXPECT_NE(std::string(E.what()).find("hungarian"), std::string::npos);
  }
}

TEST(ThreadPool, WorkersInheritFaultContext) {
  // The campaign is installed on the caller; pool workers must mirror it,
  // otherwise fault decisions would depend on which thread claims a chunk.
  support::FaultPlan Plan;
  Plan.Rate = 1.0;
  support::FaultScope Scope(&Plan, 11);
  support::ThreadPool Pool(4);
  std::vector<char> Fired(512, 0);
  Pool.parallelForChunked(Fired.size(), 1,
                          [&](std::size_t Begin, std::size_t Stop) {
                            for (std::size_t I = Begin; I < Stop; ++I)
                              Fired[I] = support::faultPoint(
                                             support::FaultSite::Hungarian, I)
                                             ? 1
                                             : 0;
                          });
  for (std::size_t I = 0; I < Fired.size(); ++I)
    EXPECT_EQ(Fired[I], 1) << "index " << I;
}
