//===- support/JsonWriter.cpp ----------------------------------------------===//

#include "support/JsonWriter.h"

#include <cassert>
#include <cstdio>

using namespace diffcode;

std::string JsonWriter::escape(std::string_view Text) {
  std::string Out;
  Out.reserve(Text.size());
  for (char C : Text) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\r':
      Out += "\\r";
      break;
    case '\t':
      Out += "\\t";
      break;
    case '\b':
      Out += "\\b";
      break;
    case '\f':
      Out += "\\f";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
  return Out;
}

void JsonWriter::separator() {
  if (PendingKey) {
    PendingKey = false;
    return; // the key already emitted "name":
  }
  if (!NeedComma.empty()) {
    if (NeedComma.back())
      Out += ',';
    NeedComma.back() = true;
  }
}

JsonWriter &JsonWriter::beginObject() {
  separator();
  Out += '{';
  NeedComma.push_back(false);
  return *this;
}

JsonWriter &JsonWriter::endObject() {
  assert(!NeedComma.empty() && "endObject without beginObject");
  NeedComma.pop_back();
  Out += '}';
  return *this;
}

JsonWriter &JsonWriter::beginArray() {
  separator();
  Out += '[';
  NeedComma.push_back(false);
  return *this;
}

JsonWriter &JsonWriter::endArray() {
  assert(!NeedComma.empty() && "endArray without beginArray");
  NeedComma.pop_back();
  Out += ']';
  return *this;
}

JsonWriter &JsonWriter::key(std::string_view Name) {
  assert(!PendingKey && "key after key");
  separator();
  Out += '"';
  Out += escape(Name);
  Out += "\":";
  PendingKey = true;
  return *this;
}

JsonWriter &JsonWriter::value(std::string_view Text) {
  separator();
  Out += '"';
  Out += escape(Text);
  Out += '"';
  return *this;
}

JsonWriter &JsonWriter::value(std::int64_t Number) {
  separator();
  Out += std::to_string(Number);
  return *this;
}

JsonWriter &JsonWriter::value(std::uint64_t Number) {
  separator();
  Out += std::to_string(Number);
  return *this;
}

JsonWriter &JsonWriter::value(double Number) {
  separator();
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%.6g", Number);
  Out += Buf;
  return *this;
}

JsonWriter &JsonWriter::value(bool Flag) {
  separator();
  Out += Flag ? "true" : "false";
  return *this;
}

JsonWriter &JsonWriter::null() {
  separator();
  Out += "null";
  return *this;
}

JsonWriter &JsonWriter::rawValue(std::string_view Json) {
  separator();
  Out += Json;
  return *this;
}

std::string JsonWriter::take() {
  assert(NeedComma.empty() && "unbalanced containers at take()");
  PendingKey = false;
  return std::move(Out);
}
