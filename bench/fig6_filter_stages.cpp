//===- bench/fig6_filter_stages.cpp - Reproduces Figure 6 ------------------===//
//
// Part of the DiffCode project, a reproduction of "Inferring Crypto API
// Rules from Code Changes" (PLDI'18).
//
//===----------------------------------------------------------------------===//
//
// Figure 6: "Usage changes per target API class after abstraction and
// filtering" — total usage changes per class and the remaining count
// after each of the four filter stages (fsame, fadd, frem, fdup).
//
// Shape targets (paper, 11,551 mined code changes):
//   * fsame removes well over an order of magnitude (refactorings);
//   * fadd/frem/fdup each remove a further substantial slice;
//   * the final counts are small enough for manual inspection.
//
//===----------------------------------------------------------------------===//

#include "bench_common.h"

#include "support/TablePrinter.h"

#include <iostream>

using namespace diffcode;

namespace {

/// Paper's Figure 6 rows for side-by-side comparison.
struct PaperRow {
  const char *Class;
  std::size_t Total, Same, Add, Rem, Dup;
};
const PaperRow PaperRows[] = {
    {"Cipher", 15829, 419, 204, 116, 75},
    {"IvParameterSpec", 4967, 58, 24, 12, 11},
    {"MessageDigest", 8277, 116, 78, 27, 17},
    {"SecretKeySpec", 15543, 226, 120, 55, 45},
    {"SecureRandom", 26008, 309, 131, 26, 21},
    {"PBEKeySpec", 1549, 29, 21, 17, 17},
};

} // namespace

int main(int argc, char **argv) {
  std::printf("== Figure 6: usage changes per target API class after each "
              "filter stage ==\n\n");
  bench::MinedCorpus Mined = bench::mineStandardCorpus(argc, argv);

  const apimodel::CryptoApiModel &Api =
      apimodel::CryptoApiModel::javaCryptoApi();
  core::PipelineConfig SysOpts;
  SysOpts.Threads = 0; // all cores; results are order-deterministic
  core::DiffCode System(Api, SysOpts);
  core::CorpusReport Report =
      System.run({.Changes = Mined.Changes,
                          .TargetClasses = Api.targetClasses(),
                          .BuildDendrograms = false});

  TablePrinter Table({"Target API Class", "Usage Changes", "fsame", "fadd",
                      "frem", "fdup"});
  for (const core::ClassReport &Class : Report.PerClass)
    Table.addRow({Class.TargetClass, std::to_string(Class.Filtered.Total),
                  std::to_string(Class.Filtered.AfterSame),
                  std::to_string(Class.Filtered.AfterAdd),
                  std::to_string(Class.Filtered.AfterRem),
                  std::to_string(Class.Filtered.AfterDup)});
  std::printf("measured (this reproduction):\n");
  Table.print(std::cout);

  TablePrinter Paper({"Target API Class", "Usage Changes", "fsame", "fadd",
                      "frem", "fdup"});
  for (const PaperRow &Row : PaperRows)
    Paper.addRow({Row.Class, std::to_string(Row.Total),
                  std::to_string(Row.Same), std::to_string(Row.Add),
                  std::to_string(Row.Rem), std::to_string(Row.Dup)});
  std::printf("\npaper (Figure 6, 11551 mined changes):\n");
  Paper.print(std::cout);

  // Shape summary: per-stage attrition factors.
  std::printf("\nshape check (attrition factor per stage, all classes "
              "combined):\n");
  std::size_t Total = 0, Same = 0, Dup = 0;
  for (const core::ClassReport &Class : Report.PerClass) {
    Total += Class.Filtered.Total;
    Same += Class.Filtered.AfterSame;
    Dup += Class.Filtered.AfterDup;
  }
  std::size_t PTotal = 0, PSame = 0, PDup = 0;
  for (const PaperRow &Row : PaperRows) {
    PTotal += Row.Total;
    PSame += Row.Same;
    PDup += Row.Dup;
  }
  std::printf("  fsame keeps:     measured %5.2f%%   paper %5.2f%%\n",
              100.0 * Same / Total, 100.0 * PSame / PTotal);
  std::printf("  end-to-end keeps: measured %5.2f%%   paper %5.2f%%\n",
              100.0 * Dup / Total, 100.0 * PDup / PTotal);
  std::printf("  final inspection load: %zu changes (paper: %zu)\n", Dup,
              PDup);
  return 0;
}
