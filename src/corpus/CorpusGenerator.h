//===- corpus/CorpusGenerator.h - Synthetic GitHub corpus ------------------===//
//
// Part of the DiffCode project, a reproduction of "Inferring Crypto API
// Rules from Code Changes" (PLDI'18).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic generator of a GitHub-shaped corpus (the substitution for
/// the paper's 461 mined repositories — see DESIGN.md). Each project gets
/// a few crypto scenarios, mostly in their insecure variant (the paper's
/// premise: most developers misuse the API), then a commit history whose
/// mix matches the empirical picture of Figures 6/7: overwhelmingly
/// refactorings, some usage additions/removals, a modest number of
/// security fixes, and rare regressions.
///
/// Every commit is materialized as real Java source; nothing downstream of
/// the generator knows the ground truth.
///
//===----------------------------------------------------------------------===//

#ifndef DIFFCODE_CORPUS_CORPUSGENERATOR_H
#define DIFFCODE_CORPUS_CORPUSGENERATOR_H

#include "corpus/RepoModel.h"
#include "corpus/Scenario.h"
#include "support/Rng.h"

#include <cstdint>

namespace diffcode {
namespace corpus {

/// Generation knobs. The defaults reproduce the Figure 6/7 shape at a
/// laptop-friendly scale.
struct CorpusOptions {
  std::uint64_t Seed = 42;
  unsigned NumProjects = 120;
  unsigned MinFilesPerProject = 1;
  unsigned MaxFilesPerProject = 4;
  unsigned MinCommits = 8;
  unsigned MaxCommits = 30;

  /// Commit-kind mix (renormalized internally; the remainder after all
  /// kinds is refactoring).
  double FixProb = 0.075;
  double BugProb = 0.008;
  double AddProb = 0.055;
  double RemoveProb = 0.035;

  /// Fraction of scenario files that start in the insecure variant.
  double InitialInsecureProb = 0.8;
  /// Fraction of files that start with the crypto usage present.
  double InitialUsageProb = 0.9;
};

/// The generator. generate() is deterministic in the options.
class CorpusGenerator {
public:
  explicit CorpusGenerator(CorpusOptions Opts = CorpusOptions());

  Corpus generate();

  /// Generates a single project (used by tests).
  Project generateProject(const std::string &Name, Rng &R);

private:
  CorpusOptions Opts;
};

} // namespace corpus
} // namespace diffcode

#endif // DIFFCODE_CORPUS_CORPUSGENERATOR_H
