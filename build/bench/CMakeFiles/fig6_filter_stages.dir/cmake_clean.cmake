file(REMOVE_RECURSE
  "CMakeFiles/fig6_filter_stages.dir/fig6_filter_stages.cpp.o"
  "CMakeFiles/fig6_filter_stages.dir/fig6_filter_stages.cpp.o.d"
  "fig6_filter_stages"
  "fig6_filter_stages.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_filter_stages.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
