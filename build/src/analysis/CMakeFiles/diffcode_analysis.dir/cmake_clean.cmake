file(REMOVE_RECURSE
  "CMakeFiles/diffcode_analysis.dir/AbstractInterpreter.cpp.o"
  "CMakeFiles/diffcode_analysis.dir/AbstractInterpreter.cpp.o.d"
  "CMakeFiles/diffcode_analysis.dir/AbstractValue.cpp.o"
  "CMakeFiles/diffcode_analysis.dir/AbstractValue.cpp.o.d"
  "libdiffcode_analysis.a"
  "libdiffcode_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/diffcode_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
