//===- tests/test_api_compat.cpp - Deprecated API spellings still work ----===//
//
// Part of the DiffCode project, a reproduction of "Inferring Crypto API
// Rules from Code Changes" (PLDI'18).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// PR 8 collapsed the pipeline knobs into core::PipelineConfig and the
/// two entry points into DiffCode::run. The old spellings —
/// DiffCodeOptions, the DiffCode(Api, DiffCodeOptions) constructor,
/// options(), and runPipeline() — are deprecated but contractually kept
/// for one release. This suite is the compat gate: it must keep
/// *compiling* against the old names (a removal breaks the build here
/// first) and the old spellings must keep producing the exact bytes of
/// their replacements.
///
//===----------------------------------------------------------------------===//

#include "core/DiffCode.h"

#include "core/ReportWriter.h"
#include "corpus/CorpusGenerator.h"
#include "corpus/Miner.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

using namespace diffcode;
using namespace diffcode::core;

// The whole point of this file is to use the deprecated surface.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"

namespace {

const apimodel::CryptoApiModel &api() {
  return apimodel::CryptoApiModel::javaCryptoApi();
}

struct MinedFixture {
  corpus::Corpus C;
  std::vector<const corpus::CodeChange *> Mined;
  MinedFixture() {
    corpus::CorpusOptions Opts;
    Opts.NumProjects = 8;
    Opts.Seed = 21;
    C = corpus::CorpusGenerator(Opts).generate();
    Mined = corpus::Miner(api()).mine(C);
  }
};

} // namespace

TEST(ApiCompat, OldOptionsSpellingStillBuildsAndMapsOntoConfig) {
  // Every pre-PR-8 field by its old name; a rename or removal fails to
  // compile right here.
  DiffCodeOptions Old;
  Old.Analysis.MaxStatesPerEntry = 16;
  Old.Analysis.MaxInlineDepth = 3;
  Old.ParseBudget.MaxTokens = 100000;
  Old.ParseBudget.MaxNestingDepth = 64;
  Old.DagDepth = 4;
  Old.ClusterCut = 0.5;
  Old.Threads = 2;
  Old.Clustering.Threads = 2;
  Old.Faults.Rate = 0.0;

  DiffCode System(api(), Old);
  const DiffCodeOptions &Back = System.options();
  EXPECT_EQ(Back.Analysis.MaxStatesPerEntry, 16u);
  EXPECT_EQ(Back.Analysis.MaxInlineDepth, 3u);
  EXPECT_EQ(Back.ParseBudget.MaxTokens, 100000u);
  EXPECT_EQ(Back.ParseBudget.MaxNestingDepth, 64u);
  EXPECT_EQ(Back.DagDepth, 4u);
  EXPECT_DOUBLE_EQ(Back.ClusterCut, 0.5);
  EXPECT_EQ(Back.Threads, 2u);
  EXPECT_EQ(Back.Clustering.Threads, 2u);

  // And the mapping onto the new spelling is field-faithful.
  const PipelineConfig &New = System.config();
  EXPECT_EQ(New.Limits.Analysis.MaxStatesPerEntry, 16u);
  EXPECT_EQ(New.Limits.Parse.MaxTokens, 100000u);
  EXPECT_EQ(New.Limits.DagDepth, 4u);
  EXPECT_DOUBLE_EQ(New.Clustering.Cut, 0.5);
  EXPECT_EQ(New.Threads, 2u);
}

TEST(ApiCompat, RunPipelineIsRunByteForByte) {
  MinedFixture F;
  ASSERT_FALSE(F.Mined.empty());

  PipelineRequest Request;
  Request.Changes = F.Mined;
  Request.TargetClasses = api().targetClasses();

  DiffCodeOptions Old;
  Old.Threads = 2;
  DiffCode Legacy(api(), Old);
  std::string ViaRunPipeline = corpusReportToJson(Legacy.runPipeline(Request));

  PipelineConfig Config;
  Config.Threads = 2;
  DiffCode Current(api(), Config);
  std::string ViaRun = corpusReportToJson(Current.run(Request));

  EXPECT_FALSE(ViaRun.empty());
  EXPECT_EQ(ViaRunPipeline, ViaRun);
  // The deprecated entry point on a new-style system too: one surface,
  // two spellings.
  EXPECT_EQ(corpusReportToJson(Current.runPipeline(Request)), ViaRun);
}

#pragma GCC diagnostic pop
