//===- corpus/Scenario.h - Crypto usage scenarios --------------------------===//
//
// Part of the DiffCode project, a reproduction of "Inferring Crypto API
// Rules from Code Changes" (PLDI'18).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The synthetic corpus is built from *scenarios*: realistic Java Crypto
/// API usage patterns, each with an insecure and a secure variant keyed to
/// one of the paper's rules. A scenario instance renders to a full Java
/// source file; the renderer varies naming and code structure (the
/// *style*) independently of the security-relevant content (the
/// *details*), so that
///
///   * refactoring commits re-render with a new style  -> fsame filters,
///   * security fixes flip the variant                 -> survive filters,
///   * detail pools make different projects' fixes differ -> fdup keeps
///     genuinely distinct fixes.
///
//===----------------------------------------------------------------------===//

#ifndef DIFFCODE_CORPUS_SCENARIO_H
#define DIFFCODE_CORPUS_SCENARIO_H

#include "support/Rng.h"

#include <cstdint>
#include <string>

namespace diffcode {
namespace corpus {

/// The usage patterns; each maps to the rule it can violate.
enum class ScenarioKind {
  Hashing,          ///< R1: SHA-1/MD5 vs SHA-256 digests.
  PbeIterations,    ///< R2/CL4: PBE iteration count.
  PbeSalt,          ///< R11/CL5: constant vs random PBE salt.
  RandomInit,       ///< R3: new SecureRandom() vs getInstance("SHA1PRNG").
  StrongRandom,     ///< R4: getInstanceStrong vs getInstance("SHA1PRNG").
  ProviderChoice,   ///< R5: default provider vs BouncyCastle.
  BlockCipher,      ///< R7/CL1: ECB vs CBC/GCM (+IV) — the Figure 2 change.
  DesCipher,        ///< R8: DES vs AES.
  StaticIv,         ///< R9/CL2: hard-coded vs random IV.
  StaticKey,        ///< R10/CL3: hard-coded vs supplied key.
  StaticSeed,       ///< R12: constant seed vs default seeding.
  KeyExchange,      ///< R13: RSA+AES/CBC with vs without an HMAC.
};

/// Number of ScenarioKind values (for sampling).
constexpr unsigned NumScenarioKinds = 12;

/// Rule id a scenario's insecure variant violates ("R7" ...).
const char *scenarioRuleId(ScenarioKind Kind);

/// Human-readable scenario name.
const char *scenarioName(ScenarioKind Kind);

/// Relative frequency of the scenario across projects, calibrated to the
/// applicability column of Figure 10 (hashing and block ciphers are
/// everywhere, getInstanceStrong and key exchanges are rare).
double scenarioWeight(ScenarioKind Kind);

/// Probability that a fresh instance of the scenario starts in its
/// insecure variant, calibrated to the matching column of Figure 10
/// (almost nobody passes a provider; almost nobody hard-codes a
/// SecureRandom seed).
double scenarioInitialInsecureProb(ScenarioKind Kind);

/// Security-relevant content, chosen once per file and stable across
/// refactorings; a fix flips Secure (the detail pools give each project
/// its own concrete fix).
struct ScenarioDetails {
  bool Secure = false;
  std::string InsecureAlgo; ///< e.g. "AES" / "SHA-1" / "DES".
  std::string SecureAlgo;   ///< e.g. "AES/CBC/PKCS5Padding" / "SHA-256".
  int InsecureIter = 100;
  int SecureIter = 10000;
  std::string ConstLiteral; ///< The hard-coded key/IV/salt/seed string.
  int KeyLen = 128;
  /// When true, hard-coded material is a byte-array literal
  /// (`new byte[] {..}`) rather than `"..".getBytes()`; the element values
  /// live in ConstBytes. Under the KeepAllConstants ablation these remain
  /// distinguishable, under the paper abstraction they all collapse to
  /// constbyte[].
  bool UseArrayLiteral = false;
  std::vector<int> ConstBytes;
};

/// Draws details for \p Kind from the per-rule pools.
ScenarioDetails drawDetails(ScenarioKind Kind, Rng &R);

/// One file's scenario instance.
struct ScenarioInstance {
  ScenarioKind Kind = ScenarioKind::Hashing;
  ScenarioDetails Details;
  std::uint64_t StyleSeed = 0; ///< Naming/structure; refactors redraw it.
  bool IncludeUsage = true;    ///< false: the class exists, no crypto yet.
  /// BlockCipher only: the Figure-2 paired enc/dec field layout. Stable
  /// per file (a re-style must not add or remove cipher objects).
  bool PairEncDec = false;
  std::string ClassName;       ///< Stable per file.
};

/// Renders the instance to a complete Java source file.
std::string renderScenario(const ScenarioInstance &Instance,
                           const std::string &PackageName);

} // namespace corpus
} // namespace diffcode

#endif // DIFFCODE_CORPUS_SCENARIO_H
