//===- cluster/HierarchicalClustering.h - Complete-linkage clustering ------===//
//
// Part of the DiffCode project, a reproduction of "Inferring Crypto API
// Rules from Code Changes" (PLDI'18).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Agglomerative hierarchical clustering with complete linkage
/// (Section 4.3): start with one leaf per usage change, repeatedly merge
/// the two clusters with minimal linkage
///
///   clusterDist(X, Y) = max_{c1 in X, c2 in Y} usageDist(c1, c2),
///
/// recording every merge in a dendrogram. The dendrogram can be cut at a
/// threshold to obtain flat clusters and rendered as ASCII art for manual
/// rule elicitation (Figure 8).
///
/// Two agglomeration engines share one canonical tie-breaking rule
/// (DESIGN.md "Clustering engine") and therefore produce bit-identical
/// dendrograms:
///
///   * NNChain — the nearest-neighbor-chain algorithm, exact for
///     complete linkage (a reducible dissimilarity), O(n^2) after the
///     distance matrix;
///   * Naive — the O(n^3) greedy reference, recomputing linkages from
///     raw item distances; retained as the differential-testing oracle.
///
/// The pairwise distance matrix is computed in parallel blocks over a
/// support::ThreadPool; results are deterministic for any thread count.
///
//===----------------------------------------------------------------------===//

#ifndef DIFFCODE_CLUSTER_HIERARCHICALCLUSTERING_H
#define DIFFCODE_CLUSTER_HIERARCHICALCLUSTERING_H

#include "usage/UsageChange.h"

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

namespace diffcode {
namespace support {
class ThreadPool;
} // namespace support

namespace cluster {

/// Sharded-clustering knobs (cluster/ShardedClustering.h). At paper
/// scale (n=11,551 Cipher changes) the dense distance matrix alone is
/// ~1 GiB; sharding caps matrix memory at the largest shard plus the
/// representative matrix, at the cost of approximating cross-shard
/// linkages from per-shard representatives.
struct ShardingOptions {
  /// Master switch. Disabled (the default) leaves every clustering path
  /// bit-identical to the unsharded engine.
  bool Enabled = false;
  /// Largest number of usage changes per shard; 0 = unlimited, which
  /// packs the whole corpus into one shard and therefore reproduces the
  /// unsharded dendrogram byte for byte.
  std::size_t MaxShardSize = 512;
  /// How many leading method labels of a change's first feature path
  /// form its canopy key; 0 keys every change identically.
  unsigned KeyDepth = 1;
  /// Threads over shards (each shard clusters serially inside its
  /// worker); resolved by support::resolveThreads.
  unsigned Threads = 1;
  /// Per-shard dendrogram cut that elects representatives: one per flat
  /// sub-cluster (its minimum item id). Smaller cuts mean more
  /// representatives and a tighter cross-shard linkage estimate.
  double RepresentativeCut = 0.4;
  /// Cap on representatives elected per shard (largest sub-clusters
  /// first); bounds the representative matrix at
  /// (NumShards * MaxRepsPerShard)^2 doubles.
  std::size_t MaxRepsPerShard = 64;
};

/// What the sharded engine did, for reports and benchmarks.
struct ShardingStats {
  std::size_t NumShards = 0; ///< 0 when the sharded engine did not run.
  std::size_t LargestShard = 0;
  std::size_t Representatives = 0;
  /// High-water mark of concurrently allocated distance-matrix bytes
  /// (per-shard matrices across workers, then the representative and
  /// shard-linkage matrices).
  std::size_t PeakMatrixBytes = 0;
  /// Item count of every shard, in canonical shard order; feeds the
  /// observability layer's shard-size histogram.
  std::vector<std::size_t> ShardSizes;
};

/// Clustering engine knobs.
struct ClusteringOptions {
  /// Threads for the pairwise distance matrix and cache warm-up
  /// (support::resolveThreads semantics). The dendrogram is identical
  /// for every value.
  unsigned Threads = 1;
  /// Agglomeration algorithm; both are exact complete linkage with the
  /// same canonical tie-breaking, so they differ only in running time.
  enum class Algorithm {
    NNChain, ///< O(n^2) production engine.
    Naive,   ///< O(n^3) reference for differential testing.
  };
  Algorithm Algo = Algorithm::NNChain;
  /// Shard-and-merge engine for corpora whose dense matrix would not
  /// fit; clusterUsageChanges dispatches on Sharding.Enabled.
  ShardingOptions Sharding;
};

/// Binary merge tree over clustered items.
class Dendrogram {
public:
  struct Node {
    int Left = -1;  ///< Child node index, or -1 for a leaf.
    int Right = -1;
    std::size_t Item = static_cast<std::size_t>(-1); ///< Leaf payload.
    double Height = 0.0; ///< Linkage distance at the merge (0 for leaves).

    bool isLeaf() const { return Left < 0; }
  };

  /// Number of clustered items (leaves).
  std::size_t leafCount() const { return NumLeaves; }
  const std::vector<Node> &nodes() const { return Nodes; }
  int root() const { return Root; }
  bool empty() const { return Nodes.empty(); }

  /// Flat clusters: cut every merge with Height > \p Threshold. Each
  /// cluster is a list of item indices; clusters ordered by size
  /// (descending) for readability.
  std::vector<std::vector<std::size_t>> cut(double Threshold) const;

  /// ASCII rendering; \p LeafLabel maps an item index to display text
  /// (may be multi-line — continuation lines are indented).
  std::string render(
      const std::function<std::string(std::size_t)> &LeafLabel) const;

private:
  friend Dendrogram agglomerateDistanceMatrix(std::size_t,
                                              std::vector<double>,
                                              ClusteringOptions::Algorithm);
  /// The sharded engine (cluster/ShardedClustering.cpp) grafts shard
  /// trees and representative-level merges into one node array.
  friend Dendrogram
  clusterUsageChangesSharded(const std::vector<usage::UsageChange> &,
                             const ClusteringOptions &, ShardingStats *);

  std::vector<Node> Nodes;
  int Root = -1;
  std::size_t NumLeaves = 0;

  void collectLeaves(int Index, std::vector<std::size_t> &Out) const;
};

/// Row-major NumItems x NumItems pairwise distance matrix (diagonal 0,
/// symmetric). Rows are computed in parallel when \p Pool (may be null)
/// has workers; every entry is computed exactly once, so the result is
/// deterministic for any thread count.
std::vector<double> pairwiseDistanceMatrix(
    std::size_t NumItems,
    const std::function<double(std::size_t, std::size_t)> &Dist,
    support::ThreadPool *Pool = nullptr);

/// Complete-linkage agglomeration of a precomputed distance matrix
/// (row-major NumItems^2, consumed). Merge nodes are appended in
/// ascending canonical merge order, so node creation order equals merge
/// order for both algorithms.
Dendrogram agglomerateDistanceMatrix(
    std::size_t NumItems, std::vector<double> Matrix,
    ClusteringOptions::Algorithm Algo = ClusteringOptions::Algorithm::NNChain);

/// Clusters \p NumItems items under item distance \p Dist with complete
/// linkage.
Dendrogram agglomerativeCluster(
    std::size_t NumItems,
    const std::function<double(std::size_t, std::size_t)> &Dist,
    const ClusteringOptions &Opts = ClusteringOptions());

/// Convenience wrapper clustering usage changes by usageDist, memoised
/// through cluster::UsageDistCache. Dispatches to the shard-and-merge
/// engine (cluster/ShardedClustering.h) when Opts.Sharding.Enabled.
Dendrogram clusterUsageChanges(const std::vector<usage::UsageChange> &Changes,
                               const ClusteringOptions &Opts =
                                   ClusteringOptions());

} // namespace cluster
} // namespace diffcode

#endif // DIFFCODE_CLUSTER_HIERARCHICALCLUSTERING_H
