file(REMOVE_RECURSE
  "CMakeFiles/fig8_dendrogram.dir/fig8_dendrogram.cpp.o"
  "CMakeFiles/fig8_dendrogram.dir/fig8_dendrogram.cpp.o.d"
  "fig8_dendrogram"
  "fig8_dendrogram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_dendrogram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
