//===- cluster/DistanceCache.cpp -------------------------------------------===//

#include "cluster/DistanceCache.h"

#include "cluster/Distance.h"
#include "support/Hungarian.h"
#include "support/StringUtils.h"
#include "support/ThreadPool.h"

#include <algorithm>

using namespace diffcode;
using namespace diffcode::cluster;
using namespace diffcode::usage;
using support::LabelId;
using support::PathId;

namespace {

/// Dense-table bound: 2048^2 doubles = 32 MiB per table. Real corpora
/// stay far below (a few hundred distinct labels/paths); pathological
/// ones degrade to on-the-fly computation instead of exhausting memory.
constexpr std::size_t DenseTableCap = 2048;

} // namespace

UsageDistCache::UsageDistCache(const std::vector<UsageChange> &Changes,
                               support::ThreadPool *Pool) {
  const support::Interner *Table = nullptr;
  for (const UsageChange &Change : Changes)
    if (Change.Table) {
      Table = Change.Table;
      break;
    }

  // Compact the global ids this corpus actually uses to dense local
  // indices so the per-class tables stay within the dense bound even
  // when the corpus-wide interner has grown large. Sorting global ids
  // only fixes *which* local index a label/path gets — no computed value
  // depends on that choice (see file comment), so racy global id
  // assignment cannot leak into results.
  std::vector<PathId> GlobalPaths;
  for (const UsageChange &Change : Changes) {
    GlobalPaths.insert(GlobalPaths.end(), Change.Removed.begin(),
                       Change.Removed.end());
    GlobalPaths.insert(GlobalPaths.end(), Change.Added.begin(),
                       Change.Added.end());
  }
  std::sort(GlobalPaths.begin(), GlobalPaths.end());
  GlobalPaths.erase(std::unique(GlobalPaths.begin(), GlobalPaths.end()),
                    GlobalPaths.end());

  std::vector<LabelId> GlobalLabels;
  for (PathId Id : GlobalPaths) {
    const std::vector<LabelId> &Labels = Table->labelsOf(Id);
    GlobalLabels.insert(GlobalLabels.end(), Labels.begin(), Labels.end());
  }
  std::sort(GlobalLabels.begin(), GlobalLabels.end());
  GlobalLabels.erase(std::unique(GlobalLabels.begin(), GlobalLabels.end()),
                     GlobalLabels.end());

  auto localLabel = [&](LabelId Id) {
    return static_cast<std::uint32_t>(
        std::lower_bound(GlobalLabels.begin(), GlobalLabels.end(), Id) -
        GlobalLabels.begin());
  };
  auto localPath = [&](PathId Id) {
    return static_cast<std::uint32_t>(
        std::lower_bound(GlobalPaths.begin(), GlobalPaths.end(), Id) -
        GlobalPaths.begin());
  };

  Units.reserve(GlobalLabels.size());
  for (LabelId Id : GlobalLabels)
    Units.push_back(&Table->unitsOf(Id)); // arena reference, stable

  PathLabels.reserve(GlobalPaths.size());
  for (PathId Id : GlobalPaths) {
    const std::vector<LabelId> &Labels = Table->labelsOf(Id);
    std::vector<std::uint32_t> Local;
    Local.reserve(Labels.size());
    for (LabelId L : Labels)
      Local.push_back(localLabel(L));
    PathLabels.push_back(std::move(Local));
  }

  Interned.reserve(Changes.size());
  for (const UsageChange &Change : Changes) {
    InternedChange IC;
    IC.Removed.reserve(Change.Removed.size());
    for (PathId Id : Change.Removed)
      IC.Removed.push_back(localPath(Id));
    IC.Added.reserve(Change.Added.size());
    for (PathId Id : Change.Added)
      IC.Added.push_back(localPath(Id));
    Interned.push_back(std::move(IC));
  }

  // Warm the dense tables, labels first (pathDist reads label
  // similarities). Each (row, col >= row) entry is written exactly once
  // together with its mirror, so row-parallel fills are race-free; both
  // functions are symmetric, so mirroring preserves bit-identity.
  std::size_t L = Units.size();
  if (L > 0 && L <= DenseTableCap) {
    LabelSimTable.assign(L * L, 0.0);
    auto FillRow = [&](std::size_t R) {
      for (std::size_t C = R; C < L; ++C) {
        double Sim = levenshteinRatio(*Units[R], *Units[C]);
        LabelSimTable[R * L + C] = LabelSimTable[C * L + R] = Sim;
      }
    };
    if (Pool)
      Pool->parallelForChunked(L, 1, [&](std::size_t Begin, std::size_t Stop) {
        for (std::size_t R = Begin; R < Stop; ++R)
          FillRow(R);
      });
    else
      for (std::size_t R = 0; R < L; ++R)
        FillRow(R);
  }

  std::size_t P = PathLabels.size();
  if (P > 0 && P <= DenseTableCap) {
    PathDistTable.assign(P * P, 0.0);
    auto FillRow = [&](std::size_t R) {
      for (std::size_t C = R + 1; C < P; ++C) {
        double Dist = pathDistById(static_cast<std::uint32_t>(R),
                                   static_cast<std::uint32_t>(C));
        PathDistTable[R * P + C] = PathDistTable[C * P + R] = Dist;
      }
    };
    if (Pool)
      Pool->parallelForChunked(P, 1, [&](std::size_t Begin, std::size_t Stop) {
        for (std::size_t R = Begin; R < Stop; ++R)
          FillRow(R);
      });
    else
      for (std::size_t R = 0; R < P; ++R)
        FillRow(R);
  }
}

double UsageDistCache::labelSim(std::uint32_t A, std::uint32_t B) const {
  if (!LabelSimTable.empty())
    return LabelSimTable[static_cast<std::size_t>(A) * Units.size() + B];
  return levenshteinRatio(*Units[A], *Units[B]);
}

// Mirrors pathDist (cluster/Distance.cpp) over interned ids.
double UsageDistCache::pathDistById(std::uint32_t A, std::uint32_t B) const {
  if (A == B)
    return 0.0;
  const std::vector<std::uint32_t> &PA = PathLabels[A];
  const std::vector<std::uint32_t> &PB = PathLabels[B];
  std::size_t MaxLen = std::max(PA.size(), PB.size());
  std::size_t N = std::min(PA.size(), PB.size());
  std::size_t Prefix = 0;
  while (Prefix < N && PA[Prefix] == PB[Prefix])
    ++Prefix;
  double Credit = static_cast<double>(Prefix);
  if (Prefix < PA.size() && Prefix < PB.size())
    Credit += labelSim(PA[Prefix], PB[Prefix]);
  return 1.0 - Credit / static_cast<double>(MaxLen);
}

double UsageDistCache::pathDistCached(std::uint32_t A, std::uint32_t B) const {
  if (!PathDistTable.empty())
    return PathDistTable[static_cast<std::size_t>(A) * PathLabels.size() + B];
  return pathDistById(A, B);
}

// Mirrors pathsDist (cluster/Distance.cpp) over interned ids.
double
UsageDistCache::pathsDistById(const std::vector<std::uint32_t> &F1,
                              const std::vector<std::uint32_t> &F2) const {
  if (F1.empty() && F2.empty())
    return 0.0;
  // Bit-exact shortcuts around the assignment solver. Equal id vectors
  // admit the all-zero diagonal matching, and a sum of exact zeros is
  // 0.0; one empty side makes every row cost exactly 1.0, and
  // (1.0 * N) / N is exactly 1.0. Both match what the solver returns.
  if (F1 == F2)
    return 0.0;
  if (F1.empty() || F2.empty())
    return 1.0;
  std::size_t N = std::max(F1.size(), F2.size());
  // Per-thread scratch: the solver runs once per usage-change pair, so
  // reallocation (not arithmetic) would dominate the matrix build.
  thread_local CostMatrix Costs(0, 0);
  thread_local AssignmentWorkspace Scratch;
  Costs.reset(N, N);
  for (std::size_t R = 0; R < N; ++R)
    for (std::size_t C = 0; C < N; ++C) {
      if (R < F1.size() && C < F2.size())
        Costs.at(R, C) = pathDistCached(F1[R], F2[C]);
      else
        Costs.at(R, C) = 1.0; // unmatched path pairs with the empty path
    }
  Assignment Result = solveAssignment(Costs, Scratch);
  return Result.TotalCost / static_cast<double>(N);
}

double UsageDistCache::operator()(std::size_t I, std::size_t J) const {
  // pathsDist is only symmetric up to summation order (tied Hungarian
  // matchings can pair differently under transposition), so evaluate in
  // a canonical argument order to make the cache bitwise symmetric.
  if (J < I)
    std::swap(I, J);
  const InternedChange &A = Interned[I];
  const InternedChange &B = Interned[J];
  return (pathsDistById(A.Removed, B.Removed) +
          pathsDistById(A.Added, B.Added)) /
         2.0;
}
