//===- rules/RuleCompiler.cpp ----------------------------------------------===//

#include "rules/RuleCompiler.h"

#include <algorithm>
#include <map>

using namespace diffcode;
using namespace diffcode::rules;

const std::vector<std::uint32_t> *
UnitScanFacts::bucket(support::LabelId Type) const {
  auto It = std::lower_bound(
      Buckets.begin(), Buckets.end(), Type,
      [](const auto &Entry, support::LabelId T) { return Entry.first < T; });
  if (It == Buckets.end() || It->first != Type)
    return nullptr;
  return &It->second;
}

static bool digestEvent(const analysis::UsageEvent &Event,
                        ScanSymbols &Symbols, ScanEvent &Out) {
  // Signatures are "Class.name/arity"; anything else matches no pattern
  // (CallPattern::matchesEvent rejects it) and is dropped.
  std::size_t Slash = Event.MethodSig.rfind('/');
  std::size_t Dot = Event.MethodSig.rfind('.', Slash);
  if (Slash == std::string::npos || Dot == std::string::npos)
    return false;
  std::string_view Sig = Event.MethodSig;
  Out.Class = Symbols.intern(Sig.substr(0, Dot));
  Out.Method = Symbols.intern(Sig.substr(Dot + 1, Slash - Dot - 1));
  Out.Args = Event.Args;
  return true;
}

static std::vector<ScanEvent>
digestEvents(const std::vector<analysis::UsageEvent> &Events,
             ScanSymbols &Symbols) {
  std::vector<ScanEvent> Out;
  Out.reserve(Events.size());
  for (const analysis::UsageEvent &Event : Events) {
    ScanEvent E;
    if (digestEvent(Event, Symbols, E))
      Out.push_back(std::move(E));
  }
  return Out;
}

UnitScanFacts rules::digestUnit(const analysis::AnalysisResult &Result,
                                ScanSymbols &Symbols, bool KeepExecutions) {
  UnitScanFacts Facts;
  analysis::UsageLog Merged = Result.mergedLog();
  Facts.Objects.reserve(Merged.size());
  std::map<support::LabelId, std::vector<std::uint32_t>> Buckets;
  for (const auto &[ObjId, Events] : Merged) {
    const analysis::AbstractObject &Obj = Result.Objects.get(ObjId);
    ScanObject O;
    O.Type = Symbols.intern(Obj.TypeName);
    O.Site = Symbols.intern(Obj.siteLabel());
    O.Merged = digestEvents(Events, Symbols);
    if (KeepExecutions)
      for (const analysis::UsageLog &Exec : Result.Executions) {
        auto It = Exec.find(ObjId);
        if (It != Exec.end())
          O.Executions.push_back(digestEvents(It->second, Symbols));
      }
    Buckets[O.Type].push_back(static_cast<std::uint32_t>(Facts.Objects.size()));
    Facts.Objects.push_back(std::move(O));
  }
  Facts.Buckets.assign(Buckets.begin(), Buckets.end());
  return Facts;
}

bool CompiledPattern::matches(const ScanEvent &Event) const {
  if (Class != ScanSymbols::None && Event.Class != Class)
    return false;
  if (Event.Method != Method)
    return false;
  if (Arity >= 0 && Event.Args.size() != static_cast<std::size_t>(Arity))
    return false;
  if (Args)
    for (const ArgConstraint &Constraint : *Args) {
      if (Constraint.Index > Event.Args.size())
        return false;
      if (!Constraint.matches(Event.Args[Constraint.Index - 1]))
        return false;
    }
  return true;
}

bool CompiledFormula::eval(const std::vector<ScanEvent> &Events) const {
  switch (K) {
  case ObjectFormula::Kind::Exists:
    for (const ScanEvent &Event : Events)
      if (Pattern.matches(Event))
        return true;
    return false;
  case ObjectFormula::Kind::NotExists:
    for (const ScanEvent &Event : Events)
      if (Pattern.matches(Event))
        return false;
    return true;
  case ObjectFormula::Kind::And:
    for (const CompiledFormula &Child : Children)
      if (!Child.eval(Events))
        return false;
    return true;
  case ObjectFormula::Kind::Or:
    for (const CompiledFormula &Child : Children)
      if (Child.eval(Events))
        return true;
    return false;
  }
  return false;
}

static CompiledFormula compileFormula(const ObjectFormula &F,
                                      ScanSymbols &Symbols) {
  CompiledFormula Out;
  Out.K = F.kind();
  if (F.kind() == ObjectFormula::Kind::Exists ||
      F.kind() == ObjectFormula::Kind::NotExists) {
    const CallPattern &P = F.pattern();
    Out.Pattern.Class =
        P.ClassName.empty() ? ScanSymbols::None : Symbols.intern(P.ClassName);
    Out.Pattern.Method = Symbols.intern(P.MethodName);
    Out.Pattern.Arity = P.Arity;
    Out.Pattern.Args = &P.Args;
  } else {
    Out.Children.reserve(F.children().size());
    for (const ObjectFormula &Child : F.children())
      Out.Children.push_back(compileFormula(Child, Symbols));
  }
  return Out;
}

CompiledRuleSet CompiledRuleSet::compile(std::vector<Rule> Rules,
                                         std::shared_ptr<ScanSymbols> Symbols) {
  CompiledRuleSet Set;
  Set.Owned = std::move(Rules);
  Set.Symbols = std::move(Symbols);
  Set.Rules.reserve(Set.Owned.size());
  for (const Rule &R : Set.Owned) {
    CompiledRule C;
    C.Source = &R;
    C.Id = Set.Symbols->intern(R.Id);
    C.MinSdkAtLeast = R.MinSdkAtLeast;
    C.RequireNoLprngFix = R.RequireNoLprngFix;
    C.RequireAndroid = R.RequireAndroid;
    C.Clauses.reserve(R.Clauses.size());
    for (const Rule::Clause &Clause : R.Clauses)
      C.Clauses.push_back({Set.Symbols->intern(Clause.TypeName),
                           compileFormula(Clause.Formula, *Set.Symbols),
                           Clause.Negated});
    for (const std::string &Type : R.applicableTypes())
      C.ApplicableTypes.push_back(Set.Symbols->intern(Type));
    Set.Rules.push_back(std::move(C));
  }
  return Set;
}

namespace {

/// A violation witness: one (unit, object) pair satisfying a positive
/// clause's formula on the merged log.
struct Witness {
  unsigned Unit;
  std::uint32_t Obj;
};

bool clauseSatisfied(const CompiledClause &Clause,
                     const std::vector<const UnitScanFacts *> &Units) {
  for (const UnitScanFacts *Facts : Units) {
    const std::vector<std::uint32_t> *Bucket = Facts->bucket(Clause.Type);
    if (!Bucket)
      continue;
    for (std::uint32_t Idx : *Bucket)
      if (Clause.Formula.eval(Facts->Objects[Idx].Merged))
        return true;
  }
  return false;
}

bool hasType(support::LabelId Type,
             const std::vector<const UnitScanFacts *> &Units) {
  for (const UnitScanFacts *Facts : Units)
    if (Facts->bucket(Type))
      return true;
  return false;
}

/// Per-rule evaluation state: clause satisfaction memo so the composite
/// applicability check and the match check each scan a clause at most
/// once per project.
struct RuleEval {
  const CompiledRule &R;
  const std::vector<const UnitScanFacts *> &Units;
  std::vector<signed char> Memo; // -1 unknown, 0 false, 1 true

  RuleEval(const CompiledRule &R,
           const std::vector<const UnitScanFacts *> &Units)
      : R(R), Units(Units), Memo(R.Clauses.size(), -1) {}

  bool satisfied(std::size_t ClauseIdx) {
    signed char &M = Memo[ClauseIdx];
    if (M < 0)
      M = clauseSatisfied(R.Clauses[ClauseIdx], Units) ? 1 : 0;
    return M == 1;
  }

  bool applicable(const ProjectMetadata &Meta) {
    if (R.RequireAndroid && !Meta.IsAndroid)
      return false;
    // Composite rules: applicable only when every positive clause is
    // satisfied somewhere (see ruleApplicable in Rule.cpp).
    if (R.Clauses.size() > 1) {
      for (std::size_t I = 0; I < R.Clauses.size(); ++I)
        if (!R.Clauses[I].Negated && !satisfied(I))
          return false;
      return true;
    }
    for (support::LabelId Type : R.ApplicableTypes)
      if (!hasType(Type, Units))
        return false;
    return !R.ApplicableTypes.empty();
  }

  bool matches(const ProjectMetadata &Meta) {
    if (R.RequireAndroid && !Meta.IsAndroid)
      return false;
    if (R.MinSdkAtLeast >= 0 && Meta.MinSdkVersion < R.MinSdkAtLeast)
      return false;
    if (R.RequireNoLprngFix && Meta.HasLinuxPrngFix)
      return false;
    for (std::size_t I = 0; I < R.Clauses.size(); ++I)
      if (R.Clauses[I].Negated ? satisfied(I) : !satisfied(I))
        return false;
    return true;
  }

  /// Witnesses per positive clause, in clause order; each clause's list
  /// in unit-major, then ascending-object order — the reference
  /// evaluator's emission order.
  std::vector<std::vector<Witness>> collectWitnesses() const {
    std::vector<std::vector<Witness>> Out;
    for (const CompiledClause &Clause : R.Clauses) {
      if (Clause.Negated)
        continue;
      std::vector<Witness> W;
      for (unsigned UnitIndex = 0; UnitIndex < Units.size(); ++UnitIndex) {
        const UnitScanFacts *Facts = Units[UnitIndex];
        const std::vector<std::uint32_t> *Bucket = Facts->bucket(Clause.Type);
        if (!Bucket)
          continue;
        for (std::uint32_t Idx : *Bucket)
          if (Clause.Formula.eval(Facts->Objects[Idx].Merged))
            W.push_back({UnitIndex, Idx});
      }
      Out.push_back(std::move(W));
    }
    return Out;
  }
};

std::vector<Violation>
witnessViolations(const CompiledRule &R,
                  const std::vector<const UnitScanFacts *> &Units,
                  const std::vector<std::vector<Witness>> &Clauses) {
  std::vector<Violation> Out;
  for (const std::vector<Witness> &W : Clauses)
    for (const Witness &Wit : W) {
      const ScanObject &O = Units[Wit.Unit]->Objects[Wit.Obj];
      Out.push_back({R.Id, O.Type, O.Site, Wit.Unit});
    }
  dedupeViolations(Out);
  return Out;
}

/// True when some single execution of the witness object reproduces the
/// clause formula. Objects digested without execution data cannot be
/// disproven and are conservatively kept.
bool witnessSurvives(const CompiledClause &Clause, const ScanObject &O) {
  if (O.Executions.empty())
    return true;
  for (const std::vector<ScanEvent> &Exec : O.Executions)
    if (Clause.Formula.eval(Exec))
      return true;
  return false;
}

} // namespace

ProjectReport
rules::evaluateProject(const CompiledRuleSet &RS,
                       const std::vector<const UnitScanFacts *> &Units,
                       const ProjectMetadata &Meta, bool Refine,
                       const std::vector<std::uint32_t> *RuleIndices) {
  ProjectReport Report;
  Report.Symbols = RS.symbols();
  const std::vector<CompiledRule> &All = RS.compiled();
  std::vector<std::uint32_t> Everything;
  if (!RuleIndices) {
    Everything.resize(All.size());
    for (std::uint32_t I = 0; I < All.size(); ++I)
      Everything[I] = I;
    RuleIndices = &Everything;
  }
  for (std::uint32_t RuleIdx : *RuleIndices) {
    const CompiledRule &R = All[RuleIdx];
    RuleEval Eval(R, Units);
    RuleVerdict Verdict;
    Verdict.Rule = R.Id;
    Verdict.Applicable = Eval.applicable(Meta);
    if (Verdict.Applicable && Eval.matches(Meta)) {
      Verdict.Matched = true;
      std::vector<std::vector<Witness>> Clauses = Eval.collectWitnesses();
      std::vector<Violation> All = witnessViolations(R, Units, Clauses);
      if (!Refine) {
        Verdict.Violations = std::move(All);
      } else {
        // Demand-driven refinement: keep only witnesses some single
        // execution reproduces; a positive clause losing every witness
        // demotes the match (merged-log artifact).
        bool Demoted = false;
        std::vector<std::vector<Witness>> Kept;
        std::size_t ClauseIdx = 0;
        for (const CompiledClause &Clause : R.Clauses) {
          if (Clause.Negated)
            continue;
          const std::vector<Witness> &W = Clauses[ClauseIdx++];
          std::vector<Witness> Survivors;
          for (const Witness &Wit : W)
            if (witnessSurvives(Clause, Units[Wit.Unit]->Objects[Wit.Obj]))
              Survivors.push_back(Wit);
          if (!W.empty() && Survivors.empty())
            Demoted = true;
          Kept.push_back(std::move(Survivors));
        }
        if (Demoted) {
          Verdict.Matched = false;
          Verdict.Suppressed = static_cast<std::uint32_t>(All.size());
        } else {
          Verdict.Violations = witnessViolations(R, Units, Kept);
          Verdict.Suppressed =
              static_cast<std::uint32_t>(All.size() - Verdict.Violations.size());
        }
      }
    }
    Report.addVerdict(std::move(Verdict));
  }
  return Report;
}
