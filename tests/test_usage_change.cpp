//===- tests/test_usage_change.cpp - Diff & pairing tests (Section 3.5) ----===//

#include "usage/UsageChange.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace diffcode;
using namespace diffcode::analysis;
using namespace diffcode::usage;

namespace {

NodeLabel rootL(const char *T) { return NodeLabel::root(T); }
NodeLabel methodL(const char *Sig) { return NodeLabel::method(Sig); }
NodeLabel strArg(unsigned I, const char *V) {
  return NodeLabel::arg(I, AbstractValue::strConst(V));
}

/// Builds a Cipher DAG with a getInstance(algo) and optional extra event.
UsageDag cipherDag(const char *Algo, bool WithIv = false) {
  ObjectTable Objects;
  UsageLog Log;
  unsigned Enc = Objects.getOrCreate({13, 1, 0}, "Cipher");
  Log[Enc].push_back(
      {"Cipher.getInstance/1", {AbstractValue::strConst(Algo)}});
  std::vector<AbstractValue> InitArgs = {
      AbstractValue::intConst(1, "ENCRYPT_MODE"),
      AbstractValue::topObject("Key")};
  if (WithIv)
    InitArgs.push_back(AbstractValue::topObject("IvParameterSpec"));
  Log[Enc].push_back(
      {"Cipher.init/" + std::to_string(InitArgs.size()), InitArgs});
  return UsageDag::build(Objects, Log, Enc);
}

std::vector<std::string> strs(const std::vector<FeaturePath> &Paths) {
  std::vector<std::string> Out;
  for (const FeaturePath &P : Paths)
    Out.push_back(pathToString(P));
  std::sort(Out.begin(), Out.end());
  return Out;
}

} // namespace

//===----------------------------------------------------------------------===//
// Shortest-paths
//===----------------------------------------------------------------------===//

TEST(ShortestPaths, RemovesExtensionsOfKeptPaths) {
  FeaturePath AB = {rootL("T"), methodL("T.a")};
  FeaturePath ABC = {rootL("T"), methodL("T.a"), strArg(1, "x")};
  FeaturePath BC = {methodL("T.b"), strArg(1, "y")};
  std::vector<FeaturePath> Result = shortestPaths({AB, ABC, BC});
  ASSERT_EQ(Result.size(), 2u);
  EXPECT_TRUE(std::find(Result.begin(), Result.end(), AB) != Result.end());
  EXPECT_TRUE(std::find(Result.begin(), Result.end(), BC) != Result.end());
}

TEST(ShortestPaths, IdenticalPathsAreNotPrefixesOfEachOther) {
  FeaturePath P = {rootL("T"), methodL("T.a")};
  std::vector<FeaturePath> Result = shortestPaths({P, P});
  EXPECT_EQ(Result.size(), 2u); // strict prefix only — duplicates survive
}

TEST(ShortestPaths, EmptyInput) {
  EXPECT_TRUE(shortestPaths({}).empty());
}

//===----------------------------------------------------------------------===//
// diffDags
//===----------------------------------------------------------------------===//

TEST(DiffDags, IdenticalDagsYieldEmptyChange) {
  UsageDag A = cipherDag("AES");
  UsageDag B = cipherDag("AES");
  UsageChange Change = diffDags(A, B);
  EXPECT_TRUE(Change.isEmpty());
  EXPECT_EQ(Change.TypeName, "Cipher");
}

TEST(DiffDags, AlgorithmSwapProducesMinimalFeatures) {
  UsageChange Change = diffDags(cipherDag("AES"), cipherDag("AES/CBC", true));
  std::vector<std::string> Removed = strs(Change.Removed);
  std::vector<std::string> Added = strs(Change.Added);
  ASSERT_EQ(Removed.size(), 1u);
  EXPECT_EQ(Removed[0], "Cipher Cipher.getInstance arg1:AES");
  ASSERT_EQ(Added.size(), 2u);
  EXPECT_EQ(Added[0], "Cipher Cipher.getInstance arg1:AES/CBC");
  EXPECT_EQ(Added[1], "Cipher Cipher.init arg3:IvParameterSpec");
}

TEST(DiffDags, AgainstEmptyIsPureAddition) {
  UsageChange Change = diffDags(UsageDag::emptyFor("Cipher"), cipherDag("AES"));
  EXPECT_TRUE(Change.Removed.empty());
  EXPECT_FALSE(Change.Added.empty());
  // The shortest added paths start at the method level (the root is
  // shared).
  for (const FeaturePath &P : Change.Added)
    EXPECT_EQ(P.size(), 2u);
}

TEST(DiffDags, SymmetricSwapReversesFeatureSets) {
  UsageDag A = cipherDag("AES"), B = cipherDag("DES");
  UsageChange Fwd = diffDags(A, B);
  UsageChange Bwd = diffDags(B, A);
  EXPECT_EQ(Fwd.Removed, Bwd.Added);
  EXPECT_EQ(Fwd.Added, Bwd.Removed);
}

TEST(UsageChange, SameFeaturesIgnoresOrigin) {
  UsageChange A = diffDags(cipherDag("AES"), cipherDag("DES"));
  UsageChange B = A;
  B.Origin = "elsewhere";
  EXPECT_TRUE(A.sameFeatures(B));
  UsageChange C = diffDags(cipherDag("AES"), cipherDag("RC4"));
  EXPECT_FALSE(A.sameFeatures(C));
}

TEST(UsageChange, StrRendersSignedPaths) {
  UsageChange Change = diffDags(cipherDag("AES"), cipherDag("DES"));
  std::string Text = Change.str();
  EXPECT_NE(Text.find("- Cipher Cipher.getInstance arg1:AES"),
            std::string::npos);
  EXPECT_NE(Text.find("+ Cipher Cipher.getInstance arg1:DES"),
            std::string::npos);
}

//===----------------------------------------------------------------------===//
// pairDags
//===----------------------------------------------------------------------===//

TEST(PairDags, MatchesMostSimilarDags) {
  std::vector<UsageDag> Old, New;
  Old.push_back(cipherDag("AES"));
  Old.push_back(cipherDag("DES"));
  // New order reversed; the matcher must recover the correspondence.
  New.push_back(cipherDag("DES"));
  New.push_back(cipherDag("AES"));
  auto Pairs = pairDags(Old, New);
  ASSERT_EQ(Pairs.size(), 2u);
  for (auto [O, N] : Pairs) {
    ASSERT_NE(O, static_cast<std::size_t>(-1));
    ASSERT_NE(N, static_cast<std::size_t>(-1));
    EXPECT_DOUBLE_EQ(dagDistance(Old[O], New[N]), 0.0);
  }
}

TEST(PairDags, PadsWhenCountsDiffer) {
  std::vector<UsageDag> Old;
  Old.push_back(cipherDag("AES"));
  std::vector<UsageDag> New;
  New.push_back(cipherDag("AES"));
  New.push_back(cipherDag("DES"));
  auto Pairs = pairDags(Old, New);
  ASSERT_EQ(Pairs.size(), 2u);
  unsigned Unmatched = 0;
  for (auto [O, N] : Pairs)
    if (O == static_cast<std::size_t>(-1))
      ++Unmatched;
  EXPECT_EQ(Unmatched, 1u);
}

TEST(PairDags, EmptyInputs) {
  EXPECT_TRUE(pairDags({}, {}).empty());
  std::vector<UsageDag> One;
  One.push_back(cipherDag("AES"));
  EXPECT_EQ(pairDags(One, {}).size(), 1u);
  EXPECT_EQ(pairDags({}, One).size(), 1u);
}

//===----------------------------------------------------------------------===//
// deriveUsageChanges
//===----------------------------------------------------------------------===//

TEST(DeriveUsageChanges, RefactoringYieldsEmptyChanges) {
  std::vector<UsageDag> Old, New;
  Old.push_back(cipherDag("AES"));
  New.push_back(cipherDag("AES"));
  std::vector<UsageChange> Changes = deriveUsageChanges(Old, New, "Cipher");
  ASSERT_EQ(Changes.size(), 1u);
  EXPECT_TRUE(Changes[0].isEmpty());
}

TEST(DeriveUsageChanges, AdditionAndFixDistinguished) {
  std::vector<UsageDag> Old, New;
  Old.push_back(cipherDag("AES"));
  New.push_back(cipherDag("AES/GCM", true)); // the fix
  New.push_back(cipherDag("RC4"));           // a brand-new usage
  std::vector<UsageChange> Changes = deriveUsageChanges(Old, New, "Cipher");
  ASSERT_EQ(Changes.size(), 2u);
  unsigned Fixes = 0, Adds = 0;
  for (const UsageChange &C : Changes) {
    if (!C.Removed.empty() && !C.Added.empty())
      ++Fixes;
    if (C.Removed.empty() && !C.Added.empty())
      ++Adds;
  }
  EXPECT_EQ(Fixes, 1u);
  EXPECT_EQ(Adds, 1u);
}

TEST(DeriveUsageChanges, RemovalDetected) {
  std::vector<UsageDag> Old;
  Old.push_back(cipherDag("AES"));
  std::vector<UsageChange> Changes = deriveUsageChanges(Old, {}, "Cipher");
  ASSERT_EQ(Changes.size(), 1u);
  EXPECT_FALSE(Changes[0].Removed.empty());
  EXPECT_TRUE(Changes[0].Added.empty());
}
