//===- cluster/DendrogramExport.h - Graphviz export ------------------------===//
//
// Part of the DiffCode project, a reproduction of "Inferring Crypto API
// Rules from Code Changes" (PLDI'18).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Exports a dendrogram to Graphviz DOT for figures like the paper's
/// Figure 8. Merge nodes are labeled with their linkage height; leaves
/// with caller-provided text. Optionally colors the flat clusters at a
/// cut threshold.
///
//===----------------------------------------------------------------------===//

#ifndef DIFFCODE_CLUSTER_DENDROGRAMEXPORT_H
#define DIFFCODE_CLUSTER_DENDROGRAMEXPORT_H

#include "cluster/HierarchicalClustering.h"

#include <functional>
#include <string>

namespace diffcode {
namespace cluster {

/// Options for the DOT rendering.
struct DotOptions {
  /// Color the flat clusters obtained at this threshold; negative
  /// disables coloring.
  double ColorCutThreshold = -1.0;
  /// Graph name in the DOT header.
  std::string GraphName = "dendrogram";
};

/// Renders \p Tree to DOT. \p LeafLabel maps item indices to labels
/// (newlines become \n escapes).
std::string toDot(const Dendrogram &Tree,
                  const std::function<std::string(std::size_t)> &LeafLabel,
                  const DotOptions &Opts = DotOptions());

} // namespace cluster
} // namespace diffcode

#endif // DIFFCODE_CLUSTER_DENDROGRAMEXPORT_H
