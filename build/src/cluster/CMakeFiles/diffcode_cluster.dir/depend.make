# Empty dependencies file for diffcode_cluster.
# This may be replaced when dependencies are built.
