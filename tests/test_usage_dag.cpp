//===- tests/test_usage_dag.cpp - Usage DAG tests (Section 3.4) ------------===//

#include "usage/UsageDag.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace diffcode;
using namespace diffcode::analysis;
using namespace diffcode::usage;

namespace {

/// Builds a small fixture mirroring Figure 2: objects, events, DAG.
struct Fixture {
  ObjectTable Objects;
  UsageLog Log;
  unsigned Enc = 0, IvSpec = 0;

  Fixture(bool NewVersion) {
    java::SourceLocation L13{13, 1, 0}, L12{12, 1, 0};
    Enc = Objects.getOrCreate(L13, "Cipher");
    if (!NewVersion) {
      Log[Enc].push_back(
          {"Cipher.getInstance/1", {AbstractValue::strConst("AES")}});
      Log[Enc].push_back(
          {"Cipher.init/2",
           {AbstractValue::intConst(1, "ENCRYPT_MODE"),
            AbstractValue::topObject("Secret")}});
      return;
    }
    IvSpec = Objects.getOrCreate(L12, "IvParameterSpec");
    Log[IvSpec].push_back(
        {"IvParameterSpec.<init>/1", {AbstractValue::byteArrayTop()}});
    Log[Enc].push_back(
        {"Cipher.getInstance/1",
         {AbstractValue::strConst("AES/CBC/PKCS5Padding")}});
    UsageEvent Init{"Cipher.init/3",
                    {AbstractValue::intConst(1, "ENCRYPT_MODE"),
                     AbstractValue::topObject("Secret"),
                     AbstractValue::object(IvSpec, "IvParameterSpec")}};
    Log[Enc].push_back(Init);
    Log[IvSpec].push_back(Init); // init also uses the IvParameterSpec
  }
};

std::vector<std::string> pathStrings(const UsageDag &Dag) {
  std::vector<std::string> Out;
  for (const FeaturePath &Path : Dag.paths())
    Out.push_back(pathToString(Path));
  std::sort(Out.begin(), Out.end());
  return Out;
}

bool containsPath(const UsageDag &Dag, const std::string &Text) {
  std::vector<std::string> Paths = pathStrings(Dag);
  return std::find(Paths.begin(), Paths.end(), Text) != Paths.end();
}

} // namespace

TEST(NodeLabel, Construction) {
  EXPECT_EQ(NodeLabel::root("Cipher").str(), "Cipher");
  EXPECT_EQ(NodeLabel::method("Cipher.init/3").str(), "Cipher.init");
  EXPECT_EQ(NodeLabel::arg(1, AbstractValue::strConst("AES")).str(),
            "arg1:AES");
  EXPECT_EQ(NodeLabel::arg(3, AbstractValue::byteArrayTop()).str(),
            "arg3:⊤byte[]");
}

TEST(NodeLabel, StringConstMarked) {
  EXPECT_TRUE(NodeLabel::arg(1, AbstractValue::strConst("AES")).ValueIsString);
  EXPECT_FALSE(NodeLabel::arg(1, AbstractValue::strTop()).ValueIsString);
  EXPECT_FALSE(
      NodeLabel::arg(1, AbstractValue::intConst(1, "X")).ValueIsString);
}

TEST(NodeLabel, OrderingAndEquality) {
  NodeLabel A = NodeLabel::arg(1, AbstractValue::strConst("AES"));
  NodeLabel B = NodeLabel::arg(2, AbstractValue::strConst("AES"));
  NodeLabel C = NodeLabel::arg(1, AbstractValue::strConst("DES"));
  EXPECT_TRUE(A == A);
  EXPECT_FALSE(A == B);
  EXPECT_TRUE(A < B || B < A);
  EXPECT_TRUE(A < C || C < A);
}

TEST(UsageDag, Figure2OldVersionStructure) {
  Fixture F(/*NewVersion=*/false);
  UsageDag Dag = UsageDag::build(F.Objects, F.Log, F.Enc);
  EXPECT_EQ(Dag.typeName(), "Cipher");
  EXPECT_TRUE(containsPath(Dag, "Cipher"));
  EXPECT_TRUE(containsPath(Dag, "Cipher Cipher.getInstance arg1:AES"));
  EXPECT_TRUE(containsPath(Dag, "Cipher Cipher.init arg1:ENCRYPT_MODE"));
  EXPECT_TRUE(containsPath(Dag, "Cipher Cipher.init arg2:Secret"));
  // 6 nodes as in Figure 2(b).
  EXPECT_EQ(Dag.labelSet().size(), 6u);
}

TEST(UsageDag, Figure2NewVersionExpandsIvSpec) {
  Fixture F(/*NewVersion=*/true);
  UsageDag Dag = UsageDag::build(F.Objects, F.Log, F.Enc);
  EXPECT_TRUE(containsPath(
      Dag, "Cipher Cipher.init arg3:IvParameterSpec IvParameterSpec.<init> "
           "arg1:⊤byte[]"));
  // The no-cycle rule: Cipher.init must NOT be re-expanded underneath the
  // IvParameterSpec argument.
  EXPECT_FALSE(containsPath(
      Dag, "Cipher Cipher.init arg3:IvParameterSpec Cipher.init"));
  // 9 nodes as in Figure 2(c).
  EXPECT_EQ(Dag.labelSet().size(), 9u);
}

TEST(UsageDag, Figure2DistanceIsOneHalf) {
  Fixture Old(false), New(true);
  UsageDag G1 = UsageDag::build(Old.Objects, Old.Log, Old.Enc);
  UsageDag G2 = UsageDag::build(New.Objects, New.Log, New.Enc);
  EXPECT_DOUBLE_EQ(dagDistance(G1, G2), 0.5);
}

TEST(UsageDag, DistanceAxioms) {
  Fixture Old(false), New(true);
  UsageDag G1 = UsageDag::build(Old.Objects, Old.Log, Old.Enc);
  UsageDag G2 = UsageDag::build(New.Objects, New.Log, New.Enc);
  EXPECT_DOUBLE_EQ(dagDistance(G1, G1), 0.0);
  EXPECT_DOUBLE_EQ(dagDistance(G2, G2), 0.0);
  EXPECT_DOUBLE_EQ(dagDistance(G1, G2), dagDistance(G2, G1));
  EXPECT_GE(dagDistance(G1, G2), 0.0);
  EXPECT_LE(dagDistance(G1, G2), 1.0);
}

TEST(UsageDag, EmptyForIsRootOnly) {
  UsageDag Empty = UsageDag::emptyFor("Cipher");
  EXPECT_TRUE(Empty.isRootOnly());
  EXPECT_EQ(Empty.typeName(), "Cipher");
  EXPECT_EQ(Empty.paths().size(), 1u);
}

TEST(UsageDag, DistanceToEmpty) {
  Fixture Old(false);
  UsageDag G = UsageDag::build(Old.Objects, Old.Log, Old.Enc);
  UsageDag Empty = UsageDag::emptyFor("Cipher");
  // Shares only the root label: 1 - 1/6.
  EXPECT_DOUBLE_EQ(dagDistance(G, Empty), 1.0 - 1.0 / 6.0);
  // Different root type shares nothing.
  EXPECT_DOUBLE_EQ(dagDistance(Empty, UsageDag::emptyFor("Mac")), 1.0);
}

TEST(UsageDag, DuplicateEventsCollapse) {
  ObjectTable Objects;
  UsageLog Log;
  unsigned Obj = Objects.getOrCreate({1, 1, 0}, "MessageDigest");
  UsageEvent Update{"MessageDigest.update/1",
                    {AbstractValue::byteArrayTop()}};
  Log[Obj].push_back(Update);
  Log[Obj].push_back(Update);
  Log[Obj].push_back(Update);
  UsageDag Dag = UsageDag::build(Objects, Log, Obj);
  // Root + one method node + one arg node.
  EXPECT_EQ(Dag.size(), 3u);
}

TEST(UsageDag, DepthBoundRespected) {
  // Chain: A uses B uses C uses D ... via constructor args.
  ObjectTable Objects;
  UsageLog Log;
  std::vector<unsigned> Chain;
  for (unsigned I = 0; I < 8; ++I)
    Chain.push_back(
        Objects.getOrCreate({I + 1, 1, 0}, "T" + std::to_string(I)));
  for (unsigned I = 0; I < 8; ++I) {
    std::vector<AbstractValue> Args;
    if (I + 1 < 8)
      Args.push_back(
          AbstractValue::object(Chain[I + 1], "T" + std::to_string(I + 1)));
    Log[Chain[I]].push_back(
        {"T" + std::to_string(I) + ".<init>/" +
             std::to_string(Args.size()),
         Args});
  }
  UsageDag Shallow = UsageDag::build(Objects, Log, Chain[0], 3);
  UsageDag Deep = UsageDag::build(Objects, Log, Chain[0], 7);
  EXPECT_LT(Shallow.size(), Deep.size());
  for (const FeaturePath &Path : Shallow.paths())
    EXPECT_LE(Path.size(), 4u); // depth 3 -> at most 4 nodes per path
}

TEST(UsageDag, CycleBetweenObjectsTerminates) {
  // A's event references B, B's event references A.
  ObjectTable Objects;
  UsageLog Log;
  unsigned A = Objects.getOrCreate({1, 1, 0}, "Alpha");
  unsigned B = Objects.getOrCreate({2, 1, 0}, "Beta");
  Log[A].push_back({"Alpha.use/1", {AbstractValue::object(B, "Beta")}});
  Log[B].push_back({"Beta.use/1", {AbstractValue::object(A, "Alpha")}});
  UsageDag Dag = UsageDag::build(Objects, Log, A, 10);
  EXPECT_LT(Dag.size(), 12u); // terminates with a small graph
}

TEST(UsageDag, CanonicalStringDetectsEquality) {
  Fixture F1(false), F2(false);
  UsageDag A = UsageDag::build(F1.Objects, F1.Log, F1.Enc);
  UsageDag B = UsageDag::build(F2.Objects, F2.Log, F2.Enc);
  EXPECT_EQ(A.canonicalString(), B.canonicalString());
  Fixture F3(true);
  UsageDag C = UsageDag::build(F3.Objects, F3.Log, F3.Enc);
  EXPECT_NE(A.canonicalString(), C.canonicalString());
}

TEST(UsageDag, CanonicalStringIgnoresChildOrder) {
  ObjectTable Objects;
  unsigned Obj = Objects.getOrCreate({1, 1, 0}, "Cipher");
  UsageLog LogAB, LogBA;
  UsageEvent E1{"Cipher.a/0", {}}, E2{"Cipher.b/0", {}};
  LogAB[Obj] = {E1, E2};
  LogBA[Obj] = {E2, E1};
  EXPECT_EQ(UsageDag::build(Objects, LogAB, Obj).canonicalString(),
            UsageDag::build(Objects, LogBA, Obj).canonicalString());
}

TEST(UsageDag, PathsAreDeduplicated) {
  Fixture F(true);
  UsageDag Dag = UsageDag::build(F.Objects, F.Log, F.Enc);
  std::vector<std::string> Paths = pathStrings(Dag);
  EXPECT_EQ(std::unique(Paths.begin(), Paths.end()), Paths.end());
}
