//===- bench/fig9_rule_catalog.cpp - Reproduces Figure 9 -------------------===//
//
// Part of the DiffCode project, a reproduction of "Inferring Crypto API
// Rules from Code Changes" (PLDI'18).
//
//===----------------------------------------------------------------------===//
//
// Figure 9: the catalog of the 13 elicited security rules. This harness
// prints every rule in the paper's notation AND self-verifies it: each
// rule is evaluated against a canonical violating snippet (must match)
// and its fixed counterpart (must not). The CL1-CL5 CryptoLint rules and
// the TLS generality set are appended.
//
//===----------------------------------------------------------------------===//

#include "analysis/AbstractInterpreter.h"
#include "apimodel/TlsApiModel.h"
#include "javaast/Parser.h"
#include "rules/BuiltinRules.h"
#include "rules/RuleSuggestion.h"
#include "rules/TlsRules.h"

#include <cstdio>
#include <map>
#include <string>

using namespace diffcode;
using namespace diffcode::rules;

namespace {

struct Snippets {
  const char *Violating;
  const char *Fixed;
};

/// Canonical (violating, fixed) pairs per rule id.
const std::map<std::string, Snippets> &ruleSnippets() {
  static const std::map<std::string, Snippets> Map = {
      {"R1",
       {"class A { void m() throws Exception { MessageDigest d = "
        "MessageDigest.getInstance(\"SHA-1\"); } }",
        "class A { void m() throws Exception { MessageDigest d = "
        "MessageDigest.getInstance(\"SHA-256\"); } }"}},
      {"R2",
       {"class A { void m(char[] p, byte[] s) { PBEKeySpec k = new "
        "PBEKeySpec(p, s, 100, 128); } }",
        "class A { void m(char[] p, byte[] s) { PBEKeySpec k = new "
        "PBEKeySpec(p, s, 10000, 128); } }"}},
      {"R3",
       {"class A { void m() { SecureRandom r = new SecureRandom(); } }",
        "class A { void m() throws Exception { SecureRandom r = "
        "SecureRandom.getInstance(\"SHA1PRNG\"); } }"}},
      {"R4",
       {"class A { void m() throws Exception { SecureRandom r = "
        "SecureRandom.getInstanceStrong(); } }",
        "class A { void m() throws Exception { SecureRandom r = "
        "SecureRandom.getInstance(\"SHA1PRNG\"); } }"}},
      {"R5",
       {"class A { void m() throws Exception { Cipher c = "
        "Cipher.getInstance(\"AES/CBC/PKCS5Padding\"); } }",
        "class A { void m() throws Exception { Cipher c = "
        "Cipher.getInstance(\"AES/CBC/PKCS5Padding\", \"BC\"); } }"}},
      {"R6",
       {"class A { void m() { SecureRandom r = new SecureRandom(); } }",
        "class A { int m(int x) { return x + 1; } }"}},
      {"R7",
       {"class A { void m() throws Exception { Cipher c = "
        "Cipher.getInstance(\"AES\"); } }",
        "class A { void m() throws Exception { Cipher c = "
        "Cipher.getInstance(\"AES/CBC/PKCS5Padding\"); } }"}},
      {"R8",
       {"class A { void m() throws Exception { Cipher c = "
        "Cipher.getInstance(\"DES\"); } }",
        "class A { void m() throws Exception { Cipher c = "
        "Cipher.getInstance(\"AES/GCM/NoPadding\"); } }"}},
      {"R9",
       {"class A { void m() { IvParameterSpec iv = new IvParameterSpec("
        "\"0123456789abcdef\".getBytes()); } }",
        "class A { void m(byte[] raw) { IvParameterSpec iv = new "
        "IvParameterSpec(raw); } }"}},
      {"R10",
       {"class A { void m() { SecretKeySpec k = new SecretKeySpec("
        "\"sixteen-byte-key\".getBytes(), \"AES\"); } }",
        "class A { void m(byte[] raw) { SecretKeySpec k = new "
        "SecretKeySpec(raw, \"AES\"); } }"}},
      {"R11",
       {"class A { void m(char[] p) { PBEKeySpec k = new PBEKeySpec(p, "
        "\"fixedsalt\".getBytes(), 10000, 128); } }",
        "class A { void m(char[] p, byte[] s) { PBEKeySpec k = new "
        "PBEKeySpec(p, s, 10000, 128); } }"}},
      {"R12",
       {"class A { void m() throws Exception { SecureRandom r = "
        "SecureRandom.getInstance(\"SHA1PRNG\"); "
        "r.setSeed(\"seed\".getBytes()); } }",
        "class A { void m() throws Exception { SecureRandom r = "
        "SecureRandom.getInstance(\"SHA1PRNG\"); "
        "r.setSeed(r.generateSeed(16)); } }"}},
      {"R13",
       {"class A { void m(Key rsa, SecretKey k, byte[] d, byte[] iv) throws "
        "Exception { Cipher w = Cipher.getInstance(\"RSA\"); "
        "w.init(Cipher.WRAP_MODE, rsa); Cipher a = "
        "Cipher.getInstance(\"AES/CBC/PKCS5Padding\"); "
        "a.init(Cipher.ENCRYPT_MODE, k, new IvParameterSpec(iv)); } }",
        "class A { void m(Key rsa, SecretKey k, byte[] d, byte[] iv) throws "
        "Exception { Cipher w = Cipher.getInstance(\"RSA\"); "
        "w.init(Cipher.WRAP_MODE, rsa); Cipher a = "
        "Cipher.getInstance(\"AES/CBC/PKCS5Padding\"); "
        "a.init(Cipher.ENCRYPT_MODE, k, new IvParameterSpec(iv)); "
        "Mac m2 = Mac.getInstance(\"HmacSHA256\"); m2.init(k); } }"}},
  };
  return Map;
}

bool matches(const apimodel::CryptoApiModel &Api, const Rule &R,
             const char *Source) {
  java::AstContext Ctx;
  java::DiagnosticsEngine Diags;
  java::CompilationUnit *Unit = java::parseJava(Source, Ctx, Diags);
  analysis::AbstractInterpreter Interp(Api);
  analysis::AnalysisResult Result = Interp.analyze(Unit);
  UnitFacts Facts = UnitFacts::from(Result);
  ProjectMetadata Meta;
  Meta.IsAndroid = true;
  Meta.MinSdkVersion = 18;
  Meta.HasLinuxPrngFix = false;
  return ruleMatches(R, {Facts}, Meta);
}

} // namespace

int main() {
  std::printf("== Figure 9: the elicited security rules R1-R13 "
              "(self-verified) ==\n\n");
  const apimodel::CryptoApiModel &Api =
      apimodel::CryptoApiModel::javaCryptoApi();

  unsigned Verified = 0, Failed = 0;
  for (const Rule &R : elicitedRules()) {
    std::printf("%-4s %s\n", R.Id.c_str(), R.Description.c_str());
    std::printf("     %s\n", describeRule(R).c_str());
    auto It = ruleSnippets().find(R.Id);
    if (It == ruleSnippets().end())
      continue;
    bool Violates = matches(Api, R, It->second.Violating);
    bool Clean = !matches(Api, R, It->second.Fixed);
    bool Ok = Violates && Clean;
    std::printf("     verify: violating snippet %s, fixed snippet %s -> "
                "%s\n\n",
                Violates ? "matched" : "MISSED",
                Clean ? "clean" : "FLAGGED", Ok ? "OK" : "FAIL");
    Ok ? ++Verified : ++Failed;
  }

  std::printf("== CryptoLint rules CL1-CL5 (used for Figure 7) ==\n\n");
  for (const Rule &R : cryptoLintRules())
    std::printf("%-4s %s\n     %s\n\n", R.Id.c_str(), R.Description.c_str(),
                describeRule(R).c_str());

  std::printf("== TLS generality rules T1-T3 ==\n\n");
  for (const Rule &R : tlsRules())
    std::printf("%-4s %s\n     %s\n\n", R.Id.c_str(), R.Description.c_str(),
                describeRule(R).c_str());

  std::printf("self-verification: %u/13 rules OK, %u failing\n", Verified,
              Failed);
  return Failed == 0 ? 0 : 1;
}
