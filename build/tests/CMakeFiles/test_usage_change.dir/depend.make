# Empty dependencies file for test_usage_change.
# This may be replaced when dependencies are built.
