//===- bench/fig3_fig5_model_tables.cpp - Reproduces Figures 3 and 5 -------===//
//
// Part of the DiffCode project, a reproduction of "Inferring Crypto API
// Rules from Code Changes" (PLDI'18).
//
//===----------------------------------------------------------------------===//
//
// Figure 3: the crypto-tailored abstract base-type domains. Each row is
// *demonstrated live*: a Java snippet is pushed through the abstract
// interpreter and the resulting abstract value printed next to the
// domain the paper prescribes.
//
// Figure 5: the six target classes of the case study, read back from the
// API model together with their modeled surface.
//
//===----------------------------------------------------------------------===//

#include "analysis/AbstractInterpreter.h"
#include "javaast/Parser.h"
#include "support/TablePrinter.h"

#include <cstdio>
#include <iostream>

using namespace diffcode;
using namespace diffcode::analysis;

namespace {

/// Analyzes a snippet that passes <Expr> as the IV to IvParameterSpec and
/// returns the recorded abstract argument.
AbstractValue abstractionOf(const std::string &Expr,
                            const std::string &Params = "") {
  std::string Source = "class Demo { void m(" + Params +
                       ") throws Exception { "
                       "IvParameterSpec probe = new IvParameterSpec(" +
                       Expr + "); } }";
  java::AstContext Ctx;
  java::DiagnosticsEngine Diags;
  java::CompilationUnit *Unit = java::parseJava(Source, Ctx, Diags);
  AbstractInterpreter Interp(apimodel::CryptoApiModel::javaCryptoApi());
  AnalysisResult Result = Interp.analyze(Unit);
  UsageLog Merged = Result.mergedLog();
  for (const auto &[ObjId, Events] : Merged)
    for (const UsageEvent &Event : Events)
      if (Event.MethodSig.rfind("IvParameterSpec.<init>", 0) == 0 &&
          !Event.Args.empty())
        return Event.Args[0];
  return AbstractValue::unknown();
}

} // namespace

int main() {
  std::printf("== Figure 3: abstract base-type domains (demonstrated live) "
              "==\n\n");
  struct Row {
    const char *BaseType;
    const char *PaperDomain;
    std::string Expr;
    std::string Params;
  };
  // The probe coerces through a byte[] parameter slot, so scalar rows use
  // a cast; what matters is the printed abstract value.
  const Row Rows[] = {
      {"int (constant)", "Ints(P)", "1000", ""},
      {"int (runtime)", "Tint", "n", "int n"},
      {"int[] (literal)", "IntArrays(P)", "new int[] {1, 2, 3}", ""},
      {"int[] (runtime)", "Tint[]", "arr", "int[] arr"},
      {"string (constant)", "Strs(P)", "\"AES/CBC\"", ""},
      {"string (runtime)", "Tstr", "s", "String s"},
      {"byte[] (hard-coded)", "constbyte[]", "\"0123456789abcdef\".getBytes()",
       ""},
      {"byte[] (runtime)", "Tbyte[]", "raw", "byte[] raw"},
  };

  TablePrinter Fig3({"Base type", "paper domain", "probe expression",
                     "measured abstraction"});
  for (const Row &R : Rows)
    Fig3.addRow({R.BaseType, R.PaperDomain, R.Expr,
                 abstractionOf(R.Expr, R.Params).label()});
  Fig3.print(std::cout);

  std::printf("\n== Figure 5: target classes for learning usage changes "
              "==\n\n");
  const apimodel::CryptoApiModel &Api =
      apimodel::CryptoApiModel::javaCryptoApi();
  TablePrinter Fig5({"API Class", "modeled methods", "factory methods",
                     "int constants"});
  for (const std::string &Name : Api.targetClasses()) {
    const apimodel::ApiClass *Class = Api.lookupClass(Name);
    unsigned Factories = 0;
    for (const apimodel::ApiMethod &M : Class->Methods)
      Factories += M.IsFactory;
    Fig5.addRow({Name, std::to_string(Class->Methods.size()),
                 std::to_string(Factories),
                 std::to_string(Class->IntConstants.size())});
  }
  Fig5.print(std::cout);
  return 0;
}
