file(REMOVE_RECURSE
  "CMakeFiles/test_tls_generality.dir/test_tls_generality.cpp.o"
  "CMakeFiles/test_tls_generality.dir/test_tls_generality.cpp.o.d"
  "test_tls_generality"
  "test_tls_generality.pdb"
  "test_tls_generality[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tls_generality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
