//===- tests/test_apimodel.cpp - Crypto API model tests --------------------===//

#include "apimodel/CryptoApiModel.h"

#include <gtest/gtest.h>

using namespace diffcode::apimodel;

namespace {
const CryptoApiModel &api() { return CryptoApiModel::javaCryptoApi(); }
} // namespace

TEST(ApiModel, SixTargetClasses) {
  const std::vector<std::string> &Targets = api().targetClasses();
  ASSERT_EQ(Targets.size(), 6u);
  for (const char *Name :
       {"Cipher", "IvParameterSpec", "MessageDigest", "SecretKeySpec",
        "SecureRandom", "PBEKeySpec"})
    EXPECT_TRUE(api().isTargetClass(Name)) << Name;
}

TEST(ApiModel, AuxiliaryClassesAreNotTargets) {
  for (const char *Name : {"Mac", "KeyGenerator", "SecretKeyFactory", "Key"})
    EXPECT_FALSE(api().isTargetClass(Name)) << Name;
  EXPECT_NE(api().lookupClass("Mac"), nullptr);
}

TEST(ApiModel, UnknownClass) {
  EXPECT_EQ(api().lookupClass("NotAClass"), nullptr);
  EXPECT_FALSE(api().isTargetClass("NotAClass"));
  EXPECT_EQ(api().lookupMethod("NotAClass", "foo", 0), nullptr);
}

TEST(ApiModel, CipherFactoryLookup) {
  const ApiMethod *M = api().lookupMethod("Cipher", "getInstance", 1);
  ASSERT_NE(M, nullptr);
  EXPECT_TRUE(M->IsStatic);
  EXPECT_TRUE(M->IsFactory);
  EXPECT_EQ(M->ReturnType, "Cipher");
  EXPECT_EQ(M->signature(), "Cipher.getInstance/1");
}

TEST(ApiModel, OverloadSelectionByArity) {
  const ApiMethod *Init2 = api().lookupMethod("Cipher", "init", 2);
  const ApiMethod *Init3 = api().lookupMethod("Cipher", "init", 3);
  ASSERT_NE(Init2, nullptr);
  ASSERT_NE(Init3, nullptr);
  EXPECT_EQ(Init2->arity(), 2u);
  EXPECT_EQ(Init3->arity(), 3u);
  EXPECT_EQ(Init3->ParamTypes[2], "AlgorithmParameterSpec");
}

TEST(ApiModel, ClosestArityFallback) {
  // No 7-ary init exists; the lookup degrades to the closest overload
  // rather than failing (partial programs call odd overloads).
  const ApiMethod *M = api().lookupMethod("Cipher", "init", 7);
  ASSERT_NE(M, nullptr);
  EXPECT_EQ(M->Name, "init");
}

TEST(ApiModel, UnknownMethodIsNull) {
  EXPECT_EQ(api().lookupMethod("Cipher", "notAMethod", 1), nullptr);
}

TEST(ApiModel, CipherConstants) {
  auto Enc = api().lookupConstant("Cipher", "ENCRYPT_MODE");
  auto Dec = api().lookupConstant("Cipher", "DECRYPT_MODE");
  auto Wrap = api().lookupConstant("Cipher", "WRAP_MODE");
  ASSERT_TRUE(Enc.has_value());
  ASSERT_TRUE(Dec.has_value());
  ASSERT_TRUE(Wrap.has_value());
  EXPECT_EQ(*Enc, 1);
  EXPECT_EQ(*Dec, 2);
  EXPECT_EQ(*Wrap, 3);
  EXPECT_FALSE(api().lookupConstant("Cipher", "NOT_A_CONST").has_value());
  EXPECT_FALSE(api().lookupConstant("NotAClass", "X").has_value());
}

TEST(ApiModel, ConstructorsAreFactories) {
  for (const char *Class :
       {"IvParameterSpec", "SecretKeySpec", "PBEKeySpec", "SecureRandom"}) {
    const ApiMethod *Ctor = api().lookupMethod(Class, "<init>", 1);
    ASSERT_NE(Ctor, nullptr) << Class;
    EXPECT_TRUE(Ctor->IsFactory) << Class;
    EXPECT_EQ(Ctor->ReturnType, Class);
  }
}

TEST(ApiModel, GetInstanceStrongExists) {
  const ApiMethod *M = api().lookupMethod("SecureRandom", "getInstanceStrong", 0);
  ASSERT_NE(M, nullptr);
  EXPECT_TRUE(M->IsFactory);
}

TEST(ApiModel, NonFactoryInstanceMethods) {
  const ApiMethod *Digest = api().lookupMethod("MessageDigest", "digest", 0);
  ASSERT_NE(Digest, nullptr);
  EXPECT_FALSE(Digest->IsFactory);
  EXPECT_EQ(Digest->ReturnType, "byte[]");
  const ApiMethod *SetSeed = api().lookupMethod("SecureRandom", "setSeed", 1);
  ASSERT_NE(SetSeed, nullptr);
  EXPECT_FALSE(SetSeed->IsFactory);
}

TEST(ApiModel, ExtensibleWithCustomClass) {
  CryptoApiModel Model;
  ApiClass Custom;
  Custom.Name = "KeyStore";
  Custom.IsTarget = true;
  ApiMethod M;
  M.ClassName = "KeyStore";
  M.Name = "getInstance";
  M.ParamTypes = {"String"};
  M.ReturnType = "KeyStore";
  M.IsStatic = true;
  M.IsFactory = true;
  Custom.Methods.push_back(M);
  Model.addClass(std::move(Custom));

  EXPECT_TRUE(Model.isTargetClass("KeyStore"));
  EXPECT_NE(Model.lookupMethod("KeyStore", "getInstance", 1), nullptr);
  ASSERT_EQ(Model.targetClasses().size(), 1u);
}
