# Empty compiler generated dependencies file for suggest_rules.
# This may be replaced when dependencies are built.
