//===- corpus/Scenario.cpp -------------------------------------------------===//

#include "corpus/Scenario.h"

#include <cassert>
#include <vector>

using namespace diffcode;
using namespace diffcode::corpus;

const char *diffcode::corpus::scenarioRuleId(ScenarioKind Kind) {
  switch (Kind) {
  case ScenarioKind::Hashing:
    return "R1";
  case ScenarioKind::PbeIterations:
    return "R2";
  case ScenarioKind::PbeSalt:
    return "R11";
  case ScenarioKind::RandomInit:
    return "R3";
  case ScenarioKind::StrongRandom:
    return "R4";
  case ScenarioKind::ProviderChoice:
    return "R5";
  case ScenarioKind::BlockCipher:
    return "R7";
  case ScenarioKind::DesCipher:
    return "R8";
  case ScenarioKind::StaticIv:
    return "R9";
  case ScenarioKind::StaticKey:
    return "R10";
  case ScenarioKind::StaticSeed:
    return "R12";
  case ScenarioKind::KeyExchange:
    return "R13";
  }
  return "";
}

const char *diffcode::corpus::scenarioName(ScenarioKind Kind) {
  switch (Kind) {
  case ScenarioKind::Hashing:
    return "hashing";
  case ScenarioKind::PbeIterations:
    return "pbe-iterations";
  case ScenarioKind::PbeSalt:
    return "pbe-salt";
  case ScenarioKind::RandomInit:
    return "random-init";
  case ScenarioKind::StrongRandom:
    return "strong-random";
  case ScenarioKind::ProviderChoice:
    return "provider-choice";
  case ScenarioKind::BlockCipher:
    return "block-cipher";
  case ScenarioKind::DesCipher:
    return "des-cipher";
  case ScenarioKind::StaticIv:
    return "static-iv";
  case ScenarioKind::StaticKey:
    return "static-key";
  case ScenarioKind::StaticSeed:
    return "static-seed";
  case ScenarioKind::KeyExchange:
    return "key-exchange";
  }
  return "";
}

double diffcode::corpus::scenarioWeight(ScenarioKind Kind) {
  switch (Kind) {
  case ScenarioKind::Hashing:
    return 3.0;
  case ScenarioKind::BlockCipher:
    return 3.0;
  case ScenarioKind::ProviderChoice:
    return 2.0;
  case ScenarioKind::RandomInit:
    return 2.0;
  case ScenarioKind::StaticKey:
    return 2.0;
  case ScenarioKind::DesCipher:
    return 1.0;
  case ScenarioKind::StaticIv:
    return 1.0;
  case ScenarioKind::PbeIterations:
    return 1.0;
  case ScenarioKind::PbeSalt:
    return 1.0;
  case ScenarioKind::StaticSeed:
    return 0.5;
  case ScenarioKind::StrongRandom:
    return 0.5;
  case ScenarioKind::KeyExchange:
    return 0.25;
  }
  return 1.0;
}

double diffcode::corpus::scenarioInitialInsecureProb(ScenarioKind Kind) {
  switch (Kind) {
  case ScenarioKind::ProviderChoice:
    return 0.95; // paper: 97.6% of applicable projects violate R5
  case ScenarioKind::RandomInit:
    return 0.9; // R3: 94.8%
  case ScenarioKind::Hashing:
    return 0.5; // R1: 34.6%
  case ScenarioKind::BlockCipher:
    return 0.55; // R7: 28.4%
  case ScenarioKind::PbeIterations:
    return 0.5; // R2: 23.4%
  case ScenarioKind::PbeSalt:
    return 0.2; // R11: 11.0%
  case ScenarioKind::DesCipher:
    return 0.35; // R8: 9.5%
  case ScenarioKind::StaticIv:
    return 0.15; // R9: 5.6%
  case ScenarioKind::StaticKey:
    return 0.3; // R10: 5.2%
  case ScenarioKind::StrongRandom:
    return 0.1; // R4: 1.0%
  case ScenarioKind::StaticSeed:
    return 0.05; // R12: 0.3%
  case ScenarioKind::KeyExchange:
    return 0.6; // R13: 50%
  }
  return 0.5;
}

ScenarioDetails diffcode::corpus::drawDetails(ScenarioKind Kind, Rng &R) {
  static const std::vector<std::string> WeakDigests = {"SHA-1", "SHA1",
                                                       "MD5"};
  static const std::vector<std::string> StrongDigests = {"SHA-256",
                                                         "SHA-512"};
  static const std::vector<std::string> EcbTransforms = {
      "AES", "AES/ECB/PKCS5Padding", "AES/ECB/NoPadding"};
  static const std::vector<std::string> SafeTransforms = {
      "AES/CBC/PKCS5Padding", "AES/GCM/NoPadding", "AES/CTR/NoPadding",
      "AES/CBC/NoPadding"};
  static const std::vector<std::string> DesTransforms = {
      "DES", "DES/CBC/PKCS5Padding", "DES/ECB/PKCS5Padding"};
  static const std::vector<std::string> RsaTransforms = {
      "RSA", "RSA/ECB/PKCS1Padding"};
  static const std::vector<std::string> ConstLiterals = {
      "0123456789abcdef", "sup3rs3cr3t!",     "1234567812345678",
      "changeit",         "aaaabbbbccccdddd", "letmein0letmein0",
      "s4lt&p3pper",      "fixedivfixediv16"};
  static const std::vector<int> WeakIters = {1, 20, 100, 500};
  static const std::vector<int> StrongIters = {1000, 2048, 10000, 65536};
  static const std::vector<int> KeyLens = {128, 256};

  ScenarioDetails D;
  D.ConstLiteral = R.pick(ConstLiterals);
  D.InsecureIter = R.pick(WeakIters);
  D.SecureIter = R.pick(StrongIters);
  D.KeyLen = R.pick(KeyLens);
  D.UseArrayLiteral = R.chance(0.4);
  for (int I = 0; I < 8; ++I)
    D.ConstBytes.push_back(static_cast<int>(R.range(0, 127)));

  switch (Kind) {
  case ScenarioKind::Hashing:
    D.InsecureAlgo = R.pick(WeakDigests);
    D.SecureAlgo = R.pick(StrongDigests);
    break;
  case ScenarioKind::PbeIterations:
  case ScenarioKind::PbeSalt:
    D.InsecureAlgo = "PBKDF2WithHmacSHA1";
    D.SecureAlgo = "PBKDF2WithHmacSHA1";
    break;
  case ScenarioKind::RandomInit:
  case ScenarioKind::StrongRandom:
  case ScenarioKind::StaticSeed:
    D.InsecureAlgo = "";
    D.SecureAlgo = "SHA1PRNG";
    break;
  case ScenarioKind::ProviderChoice:
    D.InsecureAlgo = R.pick(SafeTransforms);
    D.SecureAlgo = D.InsecureAlgo; // the fix adds the provider, not a mode
    break;
  case ScenarioKind::BlockCipher:
    D.InsecureAlgo = R.pick(EcbTransforms);
    D.SecureAlgo = R.pick(SafeTransforms);
    break;
  case ScenarioKind::DesCipher:
    D.InsecureAlgo = R.pick(DesTransforms);
    D.SecureAlgo = R.pick(SafeTransforms);
    break;
  case ScenarioKind::StaticIv:
  case ScenarioKind::StaticKey:
    D.InsecureAlgo = R.pick(SafeTransforms);
    D.SecureAlgo = D.InsecureAlgo;
    break;
  case ScenarioKind::KeyExchange:
    D.InsecureAlgo = R.pick(RsaTransforms);
    D.SecureAlgo = R.chance(0.5) ? "HmacSHA256" : "HmacSHA1";
    break;
  }
  return D;
}

namespace {

/// Indentation-aware source builder.
class Code {
public:
  void line(const std::string &Text) {
    if (!Text.empty())
      Out.append(Indent * 4, ' ');
    Out += Text;
    Out += '\n';
  }
  void open(const std::string &Text) {
    line(Text + " {");
    ++Indent;
  }
  void close(const std::string &Suffix = "") {
    assert(Indent > 0 && "unbalanced close");
    --Indent;
    line("}" + Suffix);
  }
  std::string take() { return std::move(Out); }

private:
  std::string Out;
  unsigned Indent = 0;
};

/// Naming/structure choices for one render.
struct Style {
  std::string MethodName;
  std::string DataVar, KeyVar, CipherVar, DecVar, IvVar, IvBytesVar,
      RandomVar, DigestVar, SaltVar, SpecVar, BufVar, MacVar, FactoryVar,
      AlgoField;
  bool AlgoInField = false;
  bool WrapTry = false;
  bool UseHelper = false;
  bool PairEncDec = false;
  unsigned NoiseCount = 0;
  std::uint64_t NoiseSeed = 0;
};

Style drawStyle(const ScenarioInstance &Instance) {
  ScenarioKind Kind = Instance.Kind;
  std::uint64_t Seed = Instance.StyleSeed;
  Rng R(Seed ^ 0x5ca1ab1eULL);

  static const std::vector<std::string> EncryptNames = {
      "encrypt", "encryptData", "seal", "protect", "encode"};
  static const std::vector<std::string> HashNames = {
      "hash", "computeHash", "fingerprint", "digestOf", "checksum"};
  static const std::vector<std::string> DeriveNames = {
      "deriveKey", "makeKey", "keyFromPassword", "derive"};
  static const std::vector<std::string> RandomNames = {
      "randomBytes", "nextToken", "generateNonce", "makeSalt"};
  static const std::vector<std::string> ExchangeNames = {
      "sealSession", "wrapAndSend", "exchange", "packageKey"};

  Style S;
  switch (Kind) {
  case ScenarioKind::Hashing:
    S.MethodName = R.pick(HashNames);
    break;
  case ScenarioKind::PbeIterations:
  case ScenarioKind::PbeSalt:
    S.MethodName = R.pick(DeriveNames);
    break;
  case ScenarioKind::RandomInit:
  case ScenarioKind::StrongRandom:
  case ScenarioKind::StaticSeed:
    S.MethodName = R.pick(RandomNames);
    break;
  case ScenarioKind::KeyExchange:
    S.MethodName = R.pick(ExchangeNames);
    break;
  default:
    S.MethodName = R.pick(EncryptNames);
    break;
  }

  static const std::vector<std::string> DataVars = {
      "data", "input", "plaintext", "content", "payload"};
  static const std::vector<std::string> KeyVars = {"key", "secretKey", "sk",
                                                   "aesKey"};
  static const std::vector<std::string> CipherVars = {"cipher", "enc", "c",
                                                      "aesCipher"};
  static const std::vector<std::string> IvVars = {"iv", "ivSpec", "ivParam"};
  static const std::vector<std::string> RandomVars = {
      "random", "rng", "sr", "secureRandom", "rand"};
  static const std::vector<std::string> DigestVars = {"md", "digest",
                                                      "hasher"};
  static const std::vector<std::string> SaltVars = {"salt", "saltBytes",
                                                    "saltValue"};
  static const std::vector<std::string> SpecVars = {"spec", "keySpec",
                                                    "pbeSpec"};
  static const std::vector<std::string> BufVars = {"buf", "out", "bytes",
                                                   "result"};

  S.DataVar = R.pick(DataVars);
  S.KeyVar = R.pick(KeyVars);
  S.CipherVar = R.pick(CipherVars);
  S.DecVar = S.CipherVar == "enc" ? "dec" : S.CipherVar + "Dec";
  S.IvVar = R.pick(IvVars);
  S.IvBytesVar = S.IvVar + "Bytes";
  S.RandomVar = R.pick(RandomVars);
  S.DigestVar = R.pick(DigestVars);
  S.SaltVar = R.pick(SaltVars);
  S.SpecVar = R.pick(SpecVars);
  S.BufVar = R.pick(BufVars);
  S.MacVar = R.chance(0.5) ? "mac" : "hmac";
  S.FactoryVar = R.chance(0.5) ? "factory" : "skf";
  S.AlgoField = R.chance(0.5) ? "ALGORITHM" : "TRANSFORM";

  S.AlgoInField = R.chance(0.4);
  S.WrapTry = R.chance(0.45);
  S.UseHelper = R.chance(0.25);
  S.PairEncDec = Instance.PairEncDec;
  S.NoiseCount = static_cast<unsigned>(R.range(0, 2));
  S.NoiseSeed = R.engine()();
  return S;
}

void emitNoiseMethods(Code &C, const Style &S) {
  Rng R(S.NoiseSeed);
  static const std::vector<std::string> NameA = {"format", "describe",
                                                 "render", "label"};
  static const std::vector<std::string> NameB = {"count", "measure", "tally",
                                                 "sum"};
  for (unsigned I = 0; I < S.NoiseCount; ++I) {
    switch (R.range(0, 3)) {
    case 0: {
      std::string Name = R.pick(NameA) + "Item";
      C.line("");
      C.open("private String " + Name + "(String name)");
      C.open("if (name == null)");
      C.line("return \"unknown\";");
      C.close();
      C.line("return \"[\" + name + \"]\";");
      C.close();
      break;
    }
    case 1: {
      std::string Name = R.pick(NameB) + "Parts";
      C.line("");
      C.open("private int " + Name + "(String csv)");
      C.line("int total = 0;");
      C.line("int i = 0;");
      C.open("while (i < csv.length())");
      C.line("total = total + 1;");
      C.line("i = i + 1;");
      C.close();
      C.line("return total;");
      C.close();
      break;
    }
    case 2: {
      C.line("");
      C.open("private boolean isEnabled(int flags)");
      C.line("return (flags & " + std::to_string(R.range(1, 64)) + ") != 0;");
      C.close();
      break;
    }
    default: {
      C.line("");
      C.open("private String joinParts(String a, String b)");
      C.line("return a + \"" + std::string(1, "/-:."[R.range(0, 3)]) +
             "\" + b;");
      C.close();
      break;
    }
    }
  }
}

/// Emits the idiomatic random fill of \p TargetVar (an already-declared
/// byte[]). Uses `new SecureRandom()` — what real code overwhelmingly
/// does (and the reason R3's violation rate is near-universal in the
/// paper's Figure 10).
void emitRandomFill(Code &C, const Style &S, const std::string &TargetVar) {
  C.line("SecureRandom " + S.RandomVar + " = new SecureRandom();");
  C.line(S.RandomVar + ".nextBytes(" + TargetVar + ");");
}

std::string quoted(const std::string &Text) { return "\"" + Text + "\""; }

/// Hard-coded key/IV material: either a string's bytes or a byte-array
/// literal, per the details.
std::string constBytesExpr(const ScenarioDetails &D) {
  if (!D.UseArrayLiteral)
    return quoted(D.ConstLiteral) + ".getBytes()";
  std::string Out = "new byte[] { ";
  for (std::size_t I = 0; I < D.ConstBytes.size(); ++I) {
    if (I != 0)
      Out += ", ";
    Out += std::to_string(D.ConstBytes[I]);
  }
  return Out + " }";
}

/// The scenario renderer: one Java file per instance.
class Renderer {
public:
  Renderer(const ScenarioInstance &Instance, const std::string &PackageName)
      : I(Instance), S(drawStyle(Instance)),
        Package(PackageName) {}

  std::string render();

private:
  const ScenarioDetails &details() const { return I.Details; }
  std::string algo() const {
    return details().Secure ? details().SecureAlgo : details().InsecureAlgo;
  }
  /// Algorithm expression, honoring the constant-in-field style.
  std::string algoExpr() const {
    return S.AlgoInField ? S.AlgoField : quoted(algo());
  }
  void emitAlgoField(Code &C) const {
    if (S.AlgoInField)
      C.line("private static final String " + S.AlgoField + " = " +
             quoted(algo()) + ";");
  }

  void emitBody(Code &C);
  void emitHashing(Code &C);
  void emitPbe(Code &C, bool SaltScenario);
  void emitRandomInit(Code &C);
  void emitStrongRandom(Code &C);
  void emitProviderChoice(Code &C);
  void emitBlockCipher(Code &C);
  void emitDesCipher(Code &C);
  void emitStaticIv(Code &C);
  void emitStaticKey(Code &C);
  void emitStaticSeed(Code &C);
  void emitKeyExchange(Code &C);

  /// Wraps \p Emit in try/catch when the style asks for it. \p OnError is
  /// the catch-block return ("return null;" etc., empty = none).
  template <typename Fn>
  void maybeTry(Code &C, const std::string &OnError, Fn Emit) {
    if (!S.WrapTry) {
      Emit();
      return;
    }
    C.open("try");
    Emit();
    C.close();
    C.open("catch (Exception e)");
    if (!OnError.empty())
      C.line(OnError);
    C.close();
  }

  const ScenarioInstance &I;
  Style S;
  std::string Package;
};

std::string Renderer::render() {
  Code C;
  C.line("package " + Package + ";");
  C.line("");
  C.line("import java.security.Key;");
  C.line("import java.security.MessageDigest;");
  C.line("import java.security.SecureRandom;");
  C.line("import javax.crypto.Cipher;");
  C.line("import javax.crypto.Mac;");
  C.line("import javax.crypto.SecretKey;");
  C.line("import javax.crypto.SecretKeyFactory;");
  C.line("import javax.crypto.spec.IvParameterSpec;");
  C.line("import javax.crypto.spec.PBEKeySpec;");
  C.line("import javax.crypto.spec.SecretKeySpec;");
  C.line("");
  C.open("public class " + I.ClassName);
  emitBody(C);
  emitNoiseMethods(C, S);
  C.close();
  return C.take();
}

void Renderer::emitBody(Code &C) {
  if (!I.IncludeUsage) {
    // The class exists but does not touch the crypto API yet.
    C.line("");
    C.open("public byte[] " + S.MethodName + "(String " + S.DataVar + ")");
    C.line("return " + S.DataVar + ".getBytes();");
    C.close();
    return;
  }
  switch (I.Kind) {
  case ScenarioKind::Hashing:
    return emitHashing(C);
  case ScenarioKind::PbeIterations:
    return emitPbe(C, /*SaltScenario=*/false);
  case ScenarioKind::PbeSalt:
    return emitPbe(C, /*SaltScenario=*/true);
  case ScenarioKind::RandomInit:
    return emitRandomInit(C);
  case ScenarioKind::StrongRandom:
    return emitStrongRandom(C);
  case ScenarioKind::ProviderChoice:
    return emitProviderChoice(C);
  case ScenarioKind::BlockCipher:
    return emitBlockCipher(C);
  case ScenarioKind::DesCipher:
    return emitDesCipher(C);
  case ScenarioKind::StaticIv:
    return emitStaticIv(C);
  case ScenarioKind::StaticKey:
    return emitStaticKey(C);
  case ScenarioKind::StaticSeed:
    return emitStaticSeed(C);
  case ScenarioKind::KeyExchange:
    return emitKeyExchange(C);
  }
}

void Renderer::emitHashing(Code &C) {
  emitAlgoField(C);
  C.line("");
  C.open("public byte[] " + S.MethodName + "(String " + S.DataVar +
         ") throws Exception");
  maybeTry(C, "return null;", [&] {
    if (S.UseHelper) {
      C.line("MessageDigest " + S.DigestVar + " = newDigest();");
    } else {
      C.line("MessageDigest " + S.DigestVar +
             " = MessageDigest.getInstance(" + algoExpr() + ");");
    }
    C.line(S.DigestVar + ".update(" + S.DataVar + ".getBytes());");
    C.line("return " + S.DigestVar + ".digest();");
  });
  C.close();
  if (S.UseHelper) {
    C.line("");
    C.open("private MessageDigest newDigest() throws Exception");
    C.line("return MessageDigest.getInstance(" + algoExpr() + ");");
    C.close();
  }
}

void Renderer::emitPbe(Code &C, bool SaltScenario) {
  const ScenarioDetails &D = details();
  int Iterations = SaltScenario ? D.SecureIter
                                : (D.Secure ? D.SecureIter : D.InsecureIter);
  bool RandomSalt = SaltScenario ? D.Secure : true;

  C.line("");
  C.open("public SecretKey " + S.MethodName + "(char[] password)" +
         " throws Exception");
  if (RandomSalt) {
    C.line("byte[] " + S.SaltVar + " = new byte[16];");
    emitRandomFill(C, S, S.SaltVar);
  } else {
    C.line("byte[] " + S.SaltVar + " = " + quoted(D.ConstLiteral) +
           ".getBytes();");
  }
  C.line("PBEKeySpec " + S.SpecVar + " = new PBEKeySpec(password, " +
         S.SaltVar + ", " + std::to_string(Iterations) + ", " +
         std::to_string(D.KeyLen) + ");");
  C.line("SecretKeyFactory " + S.FactoryVar +
         " = SecretKeyFactory.getInstance(" + quoted(D.SecureAlgo) + ");");
  C.line("return " + S.FactoryVar + ".generateSecret(" + S.SpecVar + ");");
  C.close();
}

void Renderer::emitRandomInit(Code &C) {
  C.line("");
  C.open("public byte[] " + S.MethodName + "(int n) throws Exception");
  C.line("byte[] " + S.BufVar + " = new byte[n];");
  if (details().Secure)
    C.line("SecureRandom " + S.RandomVar +
           " = SecureRandom.getInstance(\"SHA1PRNG\");");
  else
    C.line("SecureRandom " + S.RandomVar + " = new SecureRandom();");
  C.line(S.RandomVar + ".nextBytes(" + S.BufVar + ");");
  C.line("return " + S.BufVar + ";");
  C.close();
}

void Renderer::emitStrongRandom(Code &C) {
  C.line("");
  C.open("public byte[] " + S.MethodName + "(int n) throws Exception");
  C.line("byte[] " + S.BufVar + " = new byte[n];");
  if (details().Secure)
    C.line("SecureRandom " + S.RandomVar +
           " = SecureRandom.getInstance(\"SHA1PRNG\");");
  else
    C.line("SecureRandom " + S.RandomVar +
           " = SecureRandom.getInstanceStrong();");
  C.line(S.RandomVar + ".nextBytes(" + S.BufVar + ");");
  C.line("return " + S.BufVar + ";");
  C.close();
}

void Renderer::emitProviderChoice(Code &C) {
  emitAlgoField(C);
  C.line("");
  C.open("public byte[] " + S.MethodName + "(SecretKey " + S.KeyVar +
         ", byte[] " + S.DataVar + ", byte[] " + S.IvBytesVar +
         ") throws Exception");
  maybeTry(C, "return null;", [&] {
    // The fix swaps an explicit default provider for BouncyCastle. (A
    // provider *addition* — getInstance/1 -> getInstance/2 — is a pure
    // feature addition under the abstraction and would be filtered by
    // fadd; see DESIGN.md.)
    std::string Provider =
        details().Secure ? ", \"BC\"" : ", \"SunJCE\"";
    C.line("Cipher " + S.CipherVar + " = Cipher.getInstance(" + algoExpr() +
           Provider + ");");
    C.line("IvParameterSpec " + S.IvVar + " = new IvParameterSpec(" +
           S.IvBytesVar + ");");
    C.line(S.CipherVar + ".init(Cipher.ENCRYPT_MODE, " + S.KeyVar + ", " +
           S.IvVar + ");");
    C.line("return " + S.CipherVar + ".doFinal(" + S.DataVar + ");");
  });
  C.close();
}

void Renderer::emitBlockCipher(Code &C) {
  // The Figure 2 scenario. Insecure: default/ECB transform, no IV.
  // Secure: explicit feedback mode plus an IvParameterSpec derived from a
  // caller-provided (unknown) string.
  const ScenarioDetails &D = details();
  if (S.PairEncDec) {
    C.line("Cipher " + S.CipherVar + ";");
    C.line("Cipher " + S.DecVar + ";");
  }
  emitAlgoField(C);
  C.line("");
  std::string Params = "SecretKey " + S.KeyVar;
  if (D.Secure)
    Params += ", String " + S.IvVar + "Hex";
  std::string Ret = S.PairEncDec ? "void" : "Cipher";
  C.open("public " + Ret + " " + S.MethodName + "(" + Params +
         ") throws Exception");
  maybeTry(C, S.PairEncDec ? "" : "return null;", [&] {
    if (!S.PairEncDec)
      C.line("Cipher " + S.CipherVar + ";");
    if (D.Secure) {
      C.line("byte[] " + S.IvBytesVar + " = Hex.decodeHex(" + S.IvVar +
             "Hex.toCharArray());");
      C.line("IvParameterSpec " + S.IvVar + " = new IvParameterSpec(" +
             S.IvBytesVar + ");");
    }
    C.line(S.CipherVar + " = Cipher.getInstance(" + algoExpr() + ");");
    std::string InitArgs = "Cipher.ENCRYPT_MODE, " + S.KeyVar;
    if (D.Secure)
      InitArgs += ", " + S.IvVar;
    C.line(S.CipherVar + ".init(" + InitArgs + ");");
    if (S.PairEncDec) {
      C.line(S.DecVar + " = Cipher.getInstance(" + algoExpr() + ");");
      std::string DecArgs = "Cipher.DECRYPT_MODE, " + S.KeyVar;
      if (D.Secure)
        DecArgs += ", " + S.IvVar;
      C.line(S.DecVar + ".init(" + DecArgs + ");");
    }
  });
  if (!S.PairEncDec)
    C.line(S.WrapTry ? "return null;" : "return " + S.CipherVar + ";");
  C.close();
}

void Renderer::emitDesCipher(Code &C) {
  const ScenarioDetails &D = details();
  emitAlgoField(C);
  C.line("");
  C.open("public byte[] " + S.MethodName + "(byte[] keyBytes, byte[] " +
         S.DataVar + ", byte[] " + S.IvBytesVar + ") throws Exception");
  maybeTry(C, "return null;", [&] {
    // Key material comes from the caller — a benign SecretKeySpec usage
    // (keeps R10's applicability high with a low violation rate, as in
    // Figure 10).
    std::string KeyAlgo = D.Secure ? "\"AES\"" : "\"DES\"";
    C.line("SecretKeySpec " + S.KeyVar + " = new SecretKeySpec(keyBytes, " +
           KeyAlgo + ");");
    C.line("Cipher " + S.CipherVar + " = Cipher.getInstance(" + algoExpr() +
           ");");
    if (D.Secure) {
      C.line("IvParameterSpec " + S.IvVar + " = new IvParameterSpec(" +
             S.IvBytesVar + ");");
      C.line(S.CipherVar + ".init(Cipher.ENCRYPT_MODE, " + S.KeyVar + ", " +
             S.IvVar + ");");
    } else {
      C.line(S.CipherVar + ".init(Cipher.ENCRYPT_MODE, " + S.KeyVar + ");");
    }
    C.line("return " + S.CipherVar + ".doFinal(" + S.DataVar + ");");
  });
  C.close();
}

void Renderer::emitStaticIv(Code &C) {
  const ScenarioDetails &D = details();
  C.line("");
  C.open("public byte[] " + S.MethodName + "(SecretKey " + S.KeyVar +
         ", byte[] " + S.DataVar + ") throws Exception");
  maybeTry(C, "return null;", [&] {
    if (D.Secure) {
      C.line("byte[] " + S.IvBytesVar + " = new byte[16];");
      emitRandomFill(C, S, S.IvBytesVar);
      C.line("IvParameterSpec " + S.IvVar + " = new IvParameterSpec(" +
             S.IvBytesVar + ");");
    } else {
      C.line("IvParameterSpec " + S.IvVar + " = new IvParameterSpec(" +
             constBytesExpr(D) + ");");
    }
    C.line("Cipher " + S.CipherVar + " = Cipher.getInstance(" +
           quoted(D.InsecureAlgo) + ");");
    C.line(S.CipherVar + ".init(Cipher.ENCRYPT_MODE, " + S.KeyVar + ", " +
           S.IvVar + ");");
    C.line("return " + S.CipherVar + ".doFinal(" + S.DataVar + ");");
  });
  C.close();
}

void Renderer::emitStaticKey(Code &C) {
  const ScenarioDetails &D = details();
  C.line("");
  std::string Params = "byte[] " + S.DataVar + ", byte[] " + S.IvBytesVar;
  if (D.Secure)
    Params = "byte[] keyBytes, " + Params;
  C.open("public byte[] " + S.MethodName + "(" + Params +
         ") throws Exception");
  maybeTry(C, "return null;", [&] {
    if (D.Secure)
      C.line("SecretKeySpec " + S.KeyVar +
             " = new SecretKeySpec(keyBytes, \"AES\");");
    else
      C.line("SecretKeySpec " + S.KeyVar + " = new SecretKeySpec(" +
             constBytesExpr(D) + ", \"AES\");");
    C.line("Cipher " + S.CipherVar + " = Cipher.getInstance(" +
           quoted(D.InsecureAlgo) + ");");
    C.line("IvParameterSpec " + S.IvVar + " = new IvParameterSpec(" +
           S.IvBytesVar + ");");
    C.line(S.CipherVar + ".init(Cipher.ENCRYPT_MODE, " + S.KeyVar + ", " +
           S.IvVar + ");");
    C.line("return " + S.CipherVar + ".doFinal(" + S.DataVar + ");");
  });
  C.close();
}

void Renderer::emitStaticSeed(Code &C) {
  const ScenarioDetails &D = details();
  C.line("");
  C.open("public byte[] " + S.MethodName + "(int n) throws Exception");
  C.line("byte[] " + S.BufVar + " = new byte[n];");
  C.line("SecureRandom " + S.RandomVar +
         " = SecureRandom.getInstance(\"SHA1PRNG\");");
  // The fix replaces the hard-coded seed with fresh entropy (rather than
  // dropping the call) — the usual shape of real-world R12 fixes, and the
  // reason the frem filter does not eat them.
  if (D.Secure)
    C.line(S.RandomVar + ".setSeed(" + S.RandomVar + ".generateSeed(16));");
  else
    C.line(S.RandomVar + ".setSeed(" + quoted(D.ConstLiteral) +
           ".getBytes());");
  C.line(S.RandomVar + ".nextBytes(" + S.BufVar + ");");
  C.line("return " + S.BufVar + ";");
  C.close();
}

void Renderer::emitKeyExchange(Code &C) {
  const ScenarioDetails &D = details();
  C.line("");
  C.open("public byte[] " + S.MethodName + "(Key rsaKey, SecretKey " +
         S.KeyVar + ", byte[] " + S.DataVar + ", byte[] " + S.IvBytesVar +
         ") throws Exception");
  maybeTry(C, "return null;", [&] {
    // The fix both adds the HMAC and hardens the RSA padding to OAEP —
    // the common shape of real key-exchange fixes, and what makes the
    // change visible in the Cipher usage diff (Mac is not a target
    // class).
    std::string RsaTransform =
        D.Secure ? "RSA/ECB/OAEPWithSHA-256AndMGF1Padding" : D.InsecureAlgo;
    C.line("Cipher wrapper = Cipher.getInstance(" + quoted(RsaTransform) +
           ");");
    C.line("wrapper.init(Cipher.WRAP_MODE, rsaKey);");
    C.line("byte[] wrapped = wrapper.wrap(" + S.KeyVar + ");");
    C.line("Cipher " + S.CipherVar +
           " = Cipher.getInstance(\"AES/CBC/PKCS5Padding\");");
    C.line("IvParameterSpec " + S.IvVar + " = new IvParameterSpec(" +
           S.IvBytesVar + ");");
    C.line(S.CipherVar + ".init(Cipher.ENCRYPT_MODE, " + S.KeyVar + ", " +
           S.IvVar + ");");
    C.line("byte[] ct = " + S.CipherVar + ".doFinal(" + S.DataVar + ");");
    if (D.Secure) {
      C.line("Mac " + S.MacVar + " = Mac.getInstance(" +
             quoted(D.SecureAlgo) + ");");
      C.line(S.MacVar + ".init(" + S.KeyVar + ");");
      C.line("byte[] tag = " + S.MacVar + ".doFinal(ct);");
    }
    C.line("return ct;");
  });
  C.close();
}

} // namespace

std::string
diffcode::corpus::renderScenario(const ScenarioInstance &Instance,
                                 const std::string &PackageName) {
  Renderer R(Instance, PackageName);
  return R.render();
}
