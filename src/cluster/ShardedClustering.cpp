//===- cluster/ShardedClustering.cpp ---------------------------------------===//

#include "cluster/ShardedClustering.h"

#include "cluster/DistanceCache.h"
#include "support/ThreadPool.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <map>
#include <string>

using namespace diffcode;
using namespace diffcode::cluster;
using support::LabelId;

std::vector<LabelId> diffcode::cluster::shardKey(
    const usage::UsageChange &Change, unsigned KeyDepth) {
  const std::vector<support::PathId> *Side =
      !Change.Removed.empty() ? &Change.Removed
      : !Change.Added.empty() ? &Change.Added
                              : nullptr;
  std::vector<LabelId> Key;
  if (!Side || KeyDepth == 0)
    return Key;
  for (LabelId Id : Change.Table->labelsOf(Side->front())) {
    if (Change.Table->labelAt(Id).K != usage::NodeLabel::Kind::Method)
      continue;
    Key.push_back(Id);
    if (Key.size() == KeyDepth)
      break;
  }
  return Key;
}

std::vector<std::vector<std::size_t>> diffcode::cluster::partitionIntoShards(
    const std::vector<usage::UsageChange> &Changes,
    const ShardingOptions &Opts) {
  const support::Interner *Table = nullptr;
  for (const usage::UsageChange &Change : Changes)
    if (Change.Table) {
      Table = Change.Table;
      break;
    }

  // Group by the id tuple (integer compares only); items per group stay
  // ascending because we insert in index order.
  std::map<std::vector<LabelId>, std::vector<std::size_t>> Groups;
  for (std::size_t I = 0; I < Changes.size(); ++I)
    Groups[shardKey(Changes[I], Opts.KeyDepth)].push_back(I);

  // Canonical group order = the key's rendered method texts, compared as
  // a joined string with a below-printable separator — id values are
  // assignment-order dependent and must not leak into shard layout.
  // Distinct method label ids always carry distinct texts (every other
  // NodeLabel field is fixed for methods), so this order is strict.
  std::vector<std::pair<std::string, const std::vector<std::size_t> *>>
      Ordered;
  Ordered.reserve(Groups.size());
  for (const auto &[Key, Items] : Groups) {
    std::string Text;
    for (std::size_t I = 0; I < Key.size(); ++I) {
      if (I != 0)
        Text += '\x1f';
      Text += Table->labelAt(Key[I]).Text;
    }
    Ordered.emplace_back(std::move(Text), &Items);
  }
  std::sort(Ordered.begin(), Ordered.end(),
            [](const auto &A, const auto &B) { return A.first < B.first; });

  const std::size_t Cap = Opts.MaxShardSize; // 0 = unlimited
  std::vector<std::vector<std::size_t>> Shards;
  Shards.emplace_back();
  for (const auto &Entry : Ordered) {
    const std::vector<std::size_t> &Items = *Entry.second;
    std::size_t Pos = 0;
    while (Pos < Items.size()) {
      // Oversized key groups split into cap-sized slices; slices of
      // different groups pack together while the cap allows.
      std::size_t Slice =
          Cap == 0 ? Items.size() - Pos : std::min(Cap, Items.size() - Pos);
      if (Cap != 0 && !Shards.back().empty() &&
          Shards.back().size() + Slice > Cap)
        Shards.emplace_back();
      Shards.back().insert(Shards.back().end(), Items.begin() + Pos,
                           Items.begin() + Pos + Slice);
      Pos += Slice;
    }
  }
  if (Shards.back().empty())
    Shards.pop_back(); // empty corpus

  for (std::vector<std::size_t> &Shard : Shards)
    std::sort(Shard.begin(), Shard.end());
  // Shard order = minimum-item order, so the merge stage's shard indices
  // follow the same canonical representative order the dense engine uses.
  std::sort(Shards.begin(), Shards.end(),
            [](const auto &A, const auto &B) { return A.front() < B.front(); });
  return Shards;
}

Dendrogram diffcode::cluster::clusterUsageChangesSharded(
    const std::vector<usage::UsageChange> &Changes,
    const ClusteringOptions &Opts, ShardingStats *Stats) {
  const ShardingOptions &SOpts = Opts.Sharding;
  const std::size_t N = Changes.size();
  if (Stats)
    *Stats = ShardingStats();
  if (N == 0)
    return agglomerateDistanceMatrix(0, {}, Opts.Algo);

  std::vector<std::vector<std::size_t>> Shards =
      partitionIntoShards(Changes, SOpts);
  const std::size_t S = Shards.size();

  // Distance-matrix memory accounting: a live counter and its high-water
  // mark. Only matrices count — the memoised caches are bounded
  // separately (DistanceCache.h).
  std::atomic<std::size_t> LiveBytes{0};
  std::atomic<std::size_t> PeakBytes{0};
  auto TrackAlloc = [&](std::size_t Bytes) {
    std::size_t Live = LiveBytes.fetch_add(Bytes) + Bytes;
    std::size_t Peak = PeakBytes.load();
    while (Live > Peak && !PeakBytes.compare_exchange_weak(Peak, Live)) {
    }
  };
  auto TrackFree = [&](std::size_t Bytes) { LiveBytes.fetch_sub(Bytes); };

  struct ShardResult {
    Dendrogram Tree;               ///< Over shard-local indices.
    std::vector<std::size_t> Reps; ///< Global item ids, ascending.
  };
  std::vector<ShardResult> Results(S);

  // Stage 1: exact NN-chain per shard. Shards run in parallel; inside a
  // worker everything is serial, so thread count changes scheduling
  // only, never bytes (each result lands in its own slot).
  support::ThreadPool Pool(SOpts.Threads);
  Pool.parallelForChunked(S, 1, [&](std::size_t Begin, std::size_t Stop) {
    for (std::size_t Si = Begin; Si < Stop; ++Si) {
      const std::vector<std::size_t> &Items = Shards[Si];
      std::vector<usage::UsageChange> Subset;
      Subset.reserve(Items.size());
      for (std::size_t Item : Items)
        Subset.push_back(Changes[Item]);
      UsageDistCache Cache(Subset, nullptr);
      std::size_t Bytes = Items.size() * Items.size() * sizeof(double);
      TrackAlloc(Bytes);
      std::vector<double> D = pairwiseDistanceMatrix(
          Items.size(),
          [&Cache](std::size_t I, std::size_t J) { return Cache(I, J); },
          nullptr);
      Results[Si].Tree =
          agglomerateDistanceMatrix(Items.size(), std::move(D), Opts.Algo);
      TrackFree(Bytes);

      // Elect representatives: the minimum global item of each flat
      // sub-cluster at the representative cut, largest sub-clusters
      // first (cut() orders them), capped per shard.
      std::vector<std::vector<std::size_t>> Flat =
          Results[Si].Tree.cut(SOpts.RepresentativeCut);
      std::size_t Take = SOpts.MaxRepsPerShard == 0
                             ? Flat.size()
                             : std::min(SOpts.MaxRepsPerShard, Flat.size());
      for (std::size_t C = 0; C < Take; ++C) {
        std::size_t MinLocal = *std::min_element(Flat[C].begin(), Flat[C].end());
        Results[Si].Reps.push_back(Items[MinLocal]);
      }
      std::sort(Results[Si].Reps.begin(), Results[Si].Reps.end());
    }
  });

  // Graft the shard trees into one node array laid out exactly like the
  // dense engine's: all N leaves first (leaf node I carries item I),
  // then merge nodes. Local leaf l of shard Si is global node Items[l];
  // children always precede their parent in a shard tree, so a single
  // forward pass remaps each tree.
  Dendrogram Out;
  Out.NumLeaves = N;
  Out.Nodes.reserve(2 * N);
  for (std::size_t I = 0; I < N; ++I) {
    Dendrogram::Node Leaf;
    Leaf.Item = I;
    Out.Nodes.push_back(Leaf);
  }
  std::vector<int> ShardRoot(S);
  for (std::size_t Si = 0; Si < S; ++Si) {
    const std::vector<std::size_t> &Items = Shards[Si];
    const Dendrogram &T = Results[Si].Tree;
    std::vector<int> Map(T.nodes().size());
    for (std::size_t Node = 0; Node < T.nodes().size(); ++Node) {
      const Dendrogram::Node &Src = T.nodes()[Node];
      if (Src.isLeaf()) {
        Map[Node] = static_cast<int>(Items[Src.Item]);
        continue;
      }
      Dendrogram::Node Merge;
      Merge.Left = Map[Src.Left];
      Merge.Right = Map[Src.Right];
      Merge.Height = Src.Height;
      Map[Node] = static_cast<int>(Out.Nodes.size());
      Out.Nodes.push_back(Merge);
    }
    ShardRoot[Si] = Map[static_cast<std::size_t>(T.root())];
  }

  if (Stats) {
    Stats->NumShards = S;
    Stats->ShardSizes.reserve(S);
    for (const std::vector<std::size_t> &Shard : Shards) {
      Stats->LargestShard = std::max(Stats->LargestShard, Shard.size());
      Stats->ShardSizes.push_back(Shard.size());
    }
  }

  if (S == 1) {
    // One shard is the dense engine verbatim (identity item map), so the
    // grafted array is byte-identical to clusterUsageChanges.
    Out.Root = ShardRoot[0];
    if (Stats) {
      Stats->Representatives = Results[0].Reps.size();
      Stats->PeakMatrixBytes = PeakBytes.load();
    }
    return Out;
  }

  // Stage 2: agglomerate the shards themselves. Cross-shard linkage is
  // complete linkage restricted to representative pairs — a lower bound
  // of the true max over all member pairs — under the canonical
  // (dist, min-rep, max-rep) order: shard indices follow minimum-item
  // order, so the dense engine's tie-breaking argument carries over.
  std::vector<std::size_t> AllReps;
  std::vector<std::pair<std::size_t, std::size_t>> RepSpan(S); // begin, count
  for (std::size_t Si = 0; Si < S; ++Si) {
    RepSpan[Si] = {AllReps.size(), Results[Si].Reps.size()};
    AllReps.insert(AllReps.end(), Results[Si].Reps.begin(),
                   Results[Si].Reps.end());
  }
  std::vector<usage::UsageChange> RepChanges;
  RepChanges.reserve(AllReps.size());
  for (std::size_t Rep : AllReps)
    RepChanges.push_back(Changes[Rep]);

  const std::size_t R = AllReps.size();
  UsageDistCache RepCache(RepChanges, &Pool);
  std::size_t MergeBytes = (R * R + S * S) * sizeof(double);
  TrackAlloc(MergeBytes);
  std::vector<double> RepD = pairwiseDistanceMatrix(
      R, [&RepCache](std::size_t I, std::size_t J) { return RepCache(I, J); },
      &Pool);
  std::vector<double> ShardD(S * S, 0.0);
  for (std::size_t A = 0; A < S; ++A)
    for (std::size_t B = A + 1; B < S; ++B) {
      double Linkage = 0.0;
      for (std::size_t I = 0; I < RepSpan[A].second; ++I)
        for (std::size_t J = 0; J < RepSpan[B].second; ++J)
          Linkage = std::max(
              Linkage, RepD[(RepSpan[A].first + I) * R + RepSpan[B].first + J]);
      ShardD[A * S + B] = ShardD[B * S + A] = Linkage;
    }
  RepD = std::vector<double>();
  Dendrogram MergeTree =
      agglomerateDistanceMatrix(S, std::move(ShardD), Opts.Algo);
  TrackFree(MergeBytes);

  // Replay the shard-level merges over the grafted subtrees. Estimated
  // linkages can undershoot a subtree's own height, so clamp each merge
  // to its children — the corpus dendrogram stays monotone.
  std::vector<int> MergeMap(MergeTree.nodes().size());
  for (std::size_t Node = 0; Node < MergeTree.nodes().size(); ++Node) {
    const Dendrogram::Node &Src = MergeTree.nodes()[Node];
    if (Src.isLeaf()) {
      MergeMap[Node] = ShardRoot[Src.Item];
      continue;
    }
    Dendrogram::Node Merge;
    Merge.Left = MergeMap[Src.Left];
    Merge.Right = MergeMap[Src.Right];
    Merge.Height = std::max(Src.Height,
                            std::max(Out.Nodes[Merge.Left].Height,
                                     Out.Nodes[Merge.Right].Height));
    MergeMap[Node] = static_cast<int>(Out.Nodes.size());
    Out.Nodes.push_back(Merge);
  }
  Out.Root = MergeMap[static_cast<std::size_t>(MergeTree.root())];

  if (Stats) {
    Stats->Representatives = R;
    Stats->PeakMatrixBytes = PeakBytes.load();
  }
  return Out;
}
