//===- tests/test_distance.cpp - Clustering metric tests (Section 4.3) -----===//

#include "cluster/Distance.h"

#include "cluster/DistanceCache.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

using namespace diffcode;
using namespace diffcode::analysis;
using namespace diffcode::cluster;
using namespace diffcode::usage;

namespace {

NodeLabel rootL(const char *T) { return NodeLabel::root(T); }
NodeLabel methodL(const char *Sig) { return NodeLabel::method(Sig); }
NodeLabel strArg(unsigned I, const char *V) {
  return NodeLabel::arg(I, AbstractValue::strConst(V));
}
NodeLabel atomArg(unsigned I, const AbstractValue &V) {
  return NodeLabel::arg(I, V);
}

FeaturePath cipherGet(const char *Algo) {
  return {rootL("Cipher"), methodL("Cipher.getInstance/1"), strArg(1, Algo)};
}

support::Interner &table() {
  static support::Interner Table;
  return Table;
}

UsageChange change(const std::vector<FeaturePath> &Removed,
                   const std::vector<FeaturePath> &Added) {
  return UsageChange::intern(table(), "Cipher", Removed, Added);
}

/// Random feature path for property tests.
FeaturePath randomPath(Rng &R) {
  static const char *Methods[] = {"Cipher.getInstance/1", "Cipher.init/3",
                                  "MessageDigest.getInstance/1",
                                  "SecureRandom.setSeed/1"};
  static const char *Strings[] = {"AES", "AES/CBC/PKCS5Padding", "DES",
                                  "SHA-1", "SHA-256"};
  FeaturePath P = {rootL(R.chance(0.5) ? "Cipher" : "MessageDigest")};
  P.push_back(methodL(Methods[R.index(4)]));
  if (R.chance(0.7)) {
    if (R.chance(0.5))
      P.push_back(strArg(static_cast<unsigned>(R.range(1, 3)),
                         Strings[R.index(5)]));
    else
      P.push_back(atomArg(static_cast<unsigned>(R.range(1, 3)),
                          AbstractValue::byteArrayTop()));
  }
  return P;
}

} // namespace

//===----------------------------------------------------------------------===//
// labelUnits / labelSimilarity
//===----------------------------------------------------------------------===//

TEST(LabelUnits, MethodIsSingleUnit) {
  EXPECT_EQ(labelUnits(methodL("Cipher.getInstance/1")).size(), 1u);
  EXPECT_EQ(labelUnits(rootL("Cipher")).size(), 1u);
}

TEST(LabelUnits, StringArgSplitsPerCharacter) {
  std::vector<std::string> Units = labelUnits(strArg(1, "AES"));
  // arg marker + 3 characters.
  ASSERT_EQ(Units.size(), 4u);
  EXPECT_EQ(Units[0], "arg1");
  EXPECT_EQ(Units[1], "A");
}

TEST(LabelUnits, AtomicArgIsTwoUnits) {
  EXPECT_EQ(labelUnits(atomArg(2, AbstractValue::byteArrayTop())).size(), 2u);
  EXPECT_EQ(
      labelUnits(atomArg(1, AbstractValue::intConst(1, "ENCRYPT_MODE")))
          .size(),
      2u);
}

TEST(LabelSimilarity, DifferentMethodsScoreZero) {
  // "it takes 1 modification to change any method signature to a
  // different one" -> ratio 1 - 1/1 = 0.
  EXPECT_DOUBLE_EQ(
      labelSimilarity(methodL("Cipher.init/2"), methodL("Cipher.doFinal/1")),
      0.0);
  // Arity is stripped from method labels, so two overloads coincide.
  EXPECT_DOUBLE_EQ(labelSimilarity(methodL("Cipher.init/2"),
                                   methodL("Cipher.init/3")),
                   1.0);
}

TEST(LabelSimilarity, SimilarStringsScoreHigh) {
  double Close = labelSimilarity(strArg(1, "AES/CBC/PKCS5Padding"),
                                 strArg(1, "AES/CBC/NoPadding"));
  double Far = labelSimilarity(strArg(1, "AES/CBC/PKCS5Padding"),
                               strArg(1, "RC4"));
  EXPECT_GT(Close, Far);
  EXPECT_GT(Close, 0.5);
}

//===----------------------------------------------------------------------===//
// pathDist
//===----------------------------------------------------------------------===//

TEST(PathDist, IdenticalIsZero) {
  FeaturePath P = cipherGet("AES");
  EXPECT_DOUBLE_EQ(pathDist(P, P), 0.0);
}

TEST(PathDist, SharedPrefixReducesDistance) {
  FeaturePath A = cipherGet("AES");
  FeaturePath B = cipherGet("DES");
  FeaturePath C = {rootL("Mac"), methodL("Mac.getInstance/1"),
                   strArg(1, "HmacSHA256")};
  EXPECT_LT(pathDist(A, B), pathDist(A, C));
}

TEST(PathDist, PrefixPathCloserThanUnrelated) {
  FeaturePath Long = cipherGet("AES");
  FeaturePath Short = {rootL("Cipher"), methodL("Cipher.getInstance/1")};
  double D = pathDist(Long, Short);
  // Common prefix 2 of max length 3.
  EXPECT_DOUBLE_EQ(D, 1.0 - 2.0 / 3.0);
}

TEST(PathDist, EmptyVsNonEmpty) {
  FeaturePath Empty;
  EXPECT_DOUBLE_EQ(pathDist(Empty, Empty), 0.0);
  EXPECT_DOUBLE_EQ(pathDist(Empty, cipherGet("AES")), 1.0);
}

class PathDistProperty : public ::testing::TestWithParam<int> {};

TEST_P(PathDistProperty, MetricShape) {
  Rng R(GetParam() * 131 + 7);
  FeaturePath A = randomPath(R), B = randomPath(R);
  double AB = pathDist(A, B), BA = pathDist(B, A);
  EXPECT_DOUBLE_EQ(AB, BA);
  EXPECT_GE(AB, 0.0);
  EXPECT_LE(AB, 1.0);
  EXPECT_DOUBLE_EQ(pathDist(A, A), 0.0);
  if (AB == 0.0)
    EXPECT_EQ(A, B);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PathDistProperty, ::testing::Range(0, 50));

//===----------------------------------------------------------------------===//
// pathsDist
//===----------------------------------------------------------------------===//

TEST(PathsDist, BothEmptyIsZero) { EXPECT_DOUBLE_EQ(pathsDist({}, {}), 0.0); }

TEST(PathsDist, OneEmptyIsOne) {
  EXPECT_DOUBLE_EQ(pathsDist({cipherGet("AES")}, {}), 1.0);
  EXPECT_DOUBLE_EQ(pathsDist({}, {cipherGet("AES")}), 1.0);
}

TEST(PathsDist, MatchingIgnoresOrder) {
  std::vector<FeaturePath> F1 = {cipherGet("AES"), cipherGet("DES")};
  std::vector<FeaturePath> F2 = {cipherGet("DES"), cipherGet("AES")};
  EXPECT_DOUBLE_EQ(pathsDist(F1, F2), 0.0);
}

TEST(PathsDist, UnbalancedSetsPayPerExtraPath) {
  std::vector<FeaturePath> F1 = {cipherGet("AES")};
  std::vector<FeaturePath> F2 = {cipherGet("AES"), cipherGet("DES")};
  // One perfect match + one unmatched out of max 2.
  EXPECT_DOUBLE_EQ(pathsDist(F1, F2), 0.5);
}

TEST(PathsDist, PicksMinimalMatching) {
  // Must pair AES<->AES-like and DES<->DES-like, not crosswise.
  std::vector<FeaturePath> F1 = {cipherGet("AES/CBC/PKCS5Padding"),
                                 cipherGet("DES")};
  std::vector<FeaturePath> F2 = {cipherGet("DES/CBC"),
                                 cipherGet("AES/CBC/NoPadding")};
  double D = pathsDist(F1, F2);
  double Crosswise = (pathDist(F1[0], F2[0]) + pathDist(F1[1], F2[1])) / 2.0;
  EXPECT_LE(D, Crosswise);
}

//===----------------------------------------------------------------------===//
// usageDist
//===----------------------------------------------------------------------===//

TEST(UsageDist, IdenticalChangesZero) {
  UsageChange C =
      change({cipherGet("AES")}, {cipherGet("AES/CBC/PKCS5Padding")});
  EXPECT_DOUBLE_EQ(usageDist(C, C), 0.0);
}

TEST(UsageDist, AveragesRemovedAndAdded) {
  UsageChange A = change({cipherGet("AES")}, {});
  UsageChange B = change({cipherGet("AES")}, {cipherGet("DES")});
  // Removed sides identical (0), added sides 1 vs 0 paths (1) -> 0.5.
  EXPECT_DOUBLE_EQ(usageDist(A, B), 0.5);
}

TEST(UsageDist, SimilarFixesCloserThanDifferentFixes) {
  // Two ECB->CBC style fixes vs an ECB->CBC fix and a SHA fix.
  UsageChange EcbToCbc =
      change({cipherGet("AES")}, {cipherGet("AES/CBC/PKCS5Padding")});
  UsageChange EcbToGcm =
      change({cipherGet("AES/ECB")}, {cipherGet("AES/GCM/NoPadding")});
  UsageChange ShaFix = change(
      {{rootL("MessageDigest"), methodL("MessageDigest.getInstance/1"),
        strArg(1, "SHA-1")}},
      {{rootL("MessageDigest"), methodL("MessageDigest.getInstance/1"),
        strArg(1, "SHA-256")}});
  EXPECT_LT(usageDist(EcbToCbc, EcbToGcm), usageDist(EcbToCbc, ShaFix));
}

class UsageDistProperty : public ::testing::TestWithParam<int> {};

TEST_P(UsageDistProperty, MetricShape) {
  Rng R(GetParam() * 733 + 3);
  auto RandomChange = [&] {
    std::vector<FeaturePath> Rem, Add;
    for (std::size_t I = 0, N = R.range(0, 3); I < N; ++I)
      Rem.push_back(randomPath(R));
    for (std::size_t I = 0, N = R.range(0, 3); I < N; ++I)
      Add.push_back(randomPath(R));
    return change(std::move(Rem), std::move(Add));
  };
  UsageChange A = RandomChange(), B = RandomChange();
  double AB = usageDist(A, B);
  EXPECT_DOUBLE_EQ(AB, usageDist(B, A));
  EXPECT_GE(AB, 0.0);
  EXPECT_LE(AB, 1.0);
  EXPECT_DOUBLE_EQ(usageDist(A, A), 0.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, UsageDistProperty, ::testing::Range(0, 50));

//===----------------------------------------------------------------------===//
// UsageDistCache — the memoised engine path must be a bit-exact drop-in
// for the direct usageDist computation, and keep its metric shape.
//===----------------------------------------------------------------------===//

class CachedUsageDistProperty : public ::testing::TestWithParam<int> {};

TEST_P(CachedUsageDistProperty, CacheIsExactlyUncached) {
  Rng R(GetParam() * 9341 + 17);
  std::vector<UsageChange> Changes;
  for (int I = 0; I < 60; ++I) {
    std::vector<FeaturePath> Rem, Add;
    for (std::size_t K = 0, N = R.range(0, 3); K < N; ++K)
      Rem.push_back(randomPath(R));
    for (std::size_t K = 0, N = R.range(0, 3); K < N; ++K)
      Add.push_back(randomPath(R));
    Changes.push_back(change(std::move(Rem), std::move(Add)));
  }

  UsageDistCache Cache(Changes);
  ASSERT_EQ(Cache.size(), Changes.size());
  for (std::size_t I = 0; I < Changes.size(); ++I) {
    // Identity: d(a, a) == 0, straight from the cache.
    EXPECT_EQ(Cache(I, I), 0.0) << "item " << I;
    for (std::size_t J = I + 1; J < Changes.size(); ++J) {
      double Cached = Cache(I, J);
      // Symmetry and range.
      EXPECT_EQ(Cached, Cache(J, I)) << I << "," << J;
      EXPECT_GE(Cached, 0.0);
      EXPECT_LE(Cached, 1.0);
      // Bit-exact agreement with the uncached metric (EXPECT_EQ on
      // doubles is deliberate: the cache mirrors the same arithmetic).
      EXPECT_EQ(Cached, usageDist(Changes[I], Changes[J])) << I << "," << J;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CachedUsageDistProperty, ::testing::Range(0, 4));

TEST(UsageDistCache, InterningDeduplicatesVocabulary) {
  // Three changes over two distinct paths and a handful of labels: the
  // interner must collapse them.
  UsageChange A = change({cipherGet("AES")}, {cipherGet("DES")});
  UsageChange B = change({cipherGet("AES")}, {cipherGet("DES")});
  UsageChange C = change({cipherGet("DES")}, {cipherGet("AES")});
  UsageDistCache Cache({A, B, C});
  EXPECT_EQ(Cache.distinctPaths(), 2u);
  // Labels: Cipher root, getInstance method, "AES" arg, "DES" arg.
  EXPECT_EQ(Cache.distinctLabels(), 4u);
  EXPECT_EQ(Cache(0, 1), 0.0); // duplicates are distance zero
  EXPECT_EQ(Cache(0, 2), usageDist(A, C));
}
