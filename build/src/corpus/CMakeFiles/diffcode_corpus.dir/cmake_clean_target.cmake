file(REMOVE_RECURSE
  "libdiffcode_corpus.a"
)
