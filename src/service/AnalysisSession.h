//===- service/AnalysisSession.h - Incremental analysis session ------------===//
//
// Part of the DiffCode project, a reproduction of "Inferring Crypto API
// Rules from Code Changes" (PLDI'18).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The stateful heart of service mode (DESIGN.md "Service mode and the
/// session API"): an AnalysisSession is a PipelineRequest whose state
/// persists — changes accumulate across ingest() calls, and every
/// intermediate product the batch pipeline would recompute from scratch
/// is cached and incrementally repaired instead:
///
///   * per-change records are memoised under a content-hash key (dual
///     independent FNV-1a variants over both source versions, plus both
///     lengths, seeded by a fingerprint of the parse/analysis limits), so
///     re-ingesting an already-seen file re-analyzes nothing;
///   * per-class pair distances are persisted across ingests keyed by
///     usage-change feature signatures, so repairing a dendrogram after
///     an append computes only the new item's pairs — every old pair is
///     a table lookup (bit-identical: cluster::UsageDistCache's
///     contract);
///   * only classes whose usage set actually changed are re-filtered and
///     re-clustered; untouched classes keep their ClassReport verbatim.
///
/// Byte-identity contract (the PR 1-7 differential pattern): after any
/// sequence of ingests, report() is byte-identical to a cold
/// DiffCode::run over the same changes in the same order — at any
/// thread count, any cache bound, and with the ServiceHash collision
/// site armed. Two deliberate scope cuts keep that contract airtight:
/// when the sharded clustering engine is enabled, changed classes fall
/// back to a full (cold) cluster step, and when a fault campaign arms
/// any in-process analysis site, memoisation is bypassed entirely —
/// cached work evaluates fault points differently than cold work would,
/// so the caches are only trusted when they cannot change observable
/// behaviour.
///
//===----------------------------------------------------------------------===//

#ifndef DIFFCODE_SERVICE_ANALYSISSESSION_H
#define DIFFCODE_SERVICE_ANALYSISSESSION_H

#include "core/DiffCode.h"
#include "corpus/RepoModel.h"

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

namespace diffcode {
namespace service {

/// Session knobs: the pipeline config the session's DiffCode runs under,
/// plus what a cold PipelineRequest would carry (target classes, rules,
/// whether dendrograms build) and the cache bound.
struct SessionOptions {
  core::PipelineConfig Config;
  /// Empty = the API model's target classes.
  std::vector<std::string> TargetClasses;
  /// Rules each change is classified under (may be empty). Pointed-to
  /// rules must outlive the session.
  std::vector<const rules::Rule *> ClassifyWith;
  bool BuildDendrograms = true;
  /// Upper bound on memoised per-change records (0 = unbounded). FIFO
  /// eviction in insertion order: a bound only changes how much future
  /// work is saved, never a single report byte.
  std::size_t MaxCachedChanges = 0;
  /// Observability sink for service.* cache/repair metrics (null = off).
  /// Must outlive the session.
  obs::Observer *Metrics = nullptr;
};

/// What one ingest() did, mirrored into the obs registry as service.*
/// metrics when the session is observed. Deterministic for a given
/// ingest sequence (eviction order is insertion order, and hit/miss is a
/// pure function of content + config fingerprint).
struct IngestStats {
  std::size_t Ingested = 0;      ///< Changes appended this call.
  std::size_t CacheHits = 0;     ///< Records served from the memo table.
  std::size_t CacheMisses = 0;   ///< Records analyzed fresh.
  std::size_t Evictions = 0;     ///< Memo entries dropped by the bound.
  std::size_t ClassesRepaired = 0; ///< Classes re-filtered/re-clustered.
  std::size_t ClassesReused = 0;   ///< Classes kept verbatim.
  std::uint64_t PairsComputed = 0; ///< Fresh usageDist evaluations.
  std::uint64_t PairsReused = 0;   ///< Pair distances served from tables.
};

/// Cumulative session counters (sums of every ingest's IngestStats plus
/// the current cache size), for the Query wire request and tests.
struct SessionStats {
  std::size_t TotalChanges = 0;
  std::size_t Ingests = 0;
  std::size_t CachedRecords = 0;
  IngestStats Lifetime; ///< Ingested/hits/misses/... summed over ingests.
};

/// A long-lived incremental pipeline over an append-only change stream.
/// Not thread-safe: the server loop (service/Server.h) serializes
/// requests; embedders needing concurrency put a session behind a lock.
class AnalysisSession {
public:
  explicit AnalysisSession(const apimodel::CryptoApiModel &Api,
                           SessionOptions Opts = SessionOptions());
  ~AnalysisSession();

  AnalysisSession(const AnalysisSession &) = delete;
  AnalysisSession &operator=(const AnalysisSession &) = delete;

  /// Appends \p Changes to the session corpus and repairs the report:
  /// analyzes only cache-missing changes (Config.Threads workers),
  /// re-filters and re-clusters only classes whose usage set changed.
  /// The changes themselves are not retained — their records are.
  IngestStats ingest(const std::vector<corpus::CodeChange> &Changes);

  /// The repaired-to-date report: byte-identical to a cold
  /// DiffCode::run over every ingested change in ingest order. Valid
  /// until the next ingest().
  const core::CorpusReport &report() const { return Report; }

  /// corpusReportToJson(report()) — the snapshot the wire protocol
  /// serves.
  std::string reportJson() const;

  /// Changes ingested so far.
  std::size_t size() const { return Report.Changes.size(); }

  SessionStats stats() const;

  /// The session's DiffCode (for tests that compare against cold runs
  /// under the identical config).
  const core::DiffCode &system() const { return System; }

  const std::vector<std::string> &targetClasses() const {
    return TargetClasses;
  }

private:
  struct ClassState;

  /// Dual-hash content key. Two independent 64-bit FNV-1a variants over
  /// (OldLen, Old bytes, NewLen, New bytes), each seeded by the config
  /// fingerprint, plus both raw lengths: a primary-hash collision (or
  /// the ServiceHash fault site collapsing H1 outright) still
  /// discriminates on H2 + lengths. Full-key aliasing needs a
  /// simultaneous 128-bit + length collision, which we accept and
  /// document.
  struct CacheKey {
    std::uint64_t H1 = 0;
    std::uint64_t H2 = 0;
    std::uint64_t OldLen = 0;
    std::uint64_t NewLen = 0;
    friend bool operator==(const CacheKey &, const CacheKey &) = default;
  };
  struct CacheKeyHash {
    std::size_t operator()(const CacheKey &K) const;
  };

  /// Content key of \p Change. Callers install the change's global-index
  /// FaultScope first: the ServiceHash site is evaluated here (site key =
  /// the computed primary hash) so collision campaigns land on the same
  /// changes at any thread count.
  CacheKey keyFor(const corpus::CodeChange &Change) const;
  void repairClass(std::size_t ClassIndex, std::size_t FirstNewRecord,
                   IngestStats &Stats);
  void recordMetrics(const IngestStats &Stats) const;

  SessionOptions Opts;
  core::DiffCode System;
  std::vector<std::string> TargetClasses;
  /// Folded parse/analysis-limit fingerprint seeding both content
  /// hashes, so a session with different limits never aliases records
  /// persisted by tooling that shares key material.
  std::uint64_t ConfigFingerprint = 0;
  /// False when a fault campaign arms in-process analysis/clustering
  /// sites: memoisation would change which fault points are evaluated,
  /// so every ingest runs cold inside (still byte-identical).
  bool CachingSafe = true;

  /// The live report. Report.Changes is the session's record store;
  /// PerClass is repaired in place; Health recomputed per ingest.
  core::CorpusReport Report;

  /// Memoised origin-neutral records (Origin/GroundTruthKind and every
  /// UsageChange::Origin blanked; re-stamped on hit) in FIFO insertion
  /// order for deterministic eviction.
  std::unordered_map<CacheKey, core::ChangeRecord, CacheKeyHash> Cache;
  std::deque<CacheKey> CacheOrder;

  /// Per target class (parallel to TargetClasses / Report.PerClass).
  std::vector<std::unique_ptr<ClassState>> Classes;

  std::size_t Ingests = 0;
  IngestStats Lifetime;
};

} // namespace service
} // namespace diffcode

#endif // DIFFCODE_SERVICE_ANALYSISSESSION_H
