//===- bench/fig7_fix_vs_bug.cpp - Reproduces Figure 7 ---------------------===//
//
// Part of the DiffCode project, a reproduction of "Inferring Crypto API
// Rules from Code Changes" (PLDI'18).
//
//===----------------------------------------------------------------------===//
//
// Figure 7: classify every usage change as security fix / buggy change /
// non-semantic with respect to the five CryptoLint rules CL1-CL5, and
// cross-tabulate against the filter that removed it.
//
// Shape targets (paper):
//   * most changes are "none" and are eliminated by the filters
//     (dominated by fsame);
//   * fixes heavily outnumber buggy changes (> 80% of semantic changes
//     are fixes);
//   * no fix is filtered except duplicates (fdup).
//
//===----------------------------------------------------------------------===//

#include "bench_common.h"

#include "rules/BuiltinRules.h"
#include "support/TablePrinter.h"

#include <iostream>
#include <map>

using namespace diffcode;
using namespace diffcode::core;
using namespace diffcode::rules;

namespace {

struct Tab {
  std::size_t Total = 0;
  std::map<FilterStage, std::size_t> Removed;
  std::size_t Remaining = 0;
};

} // namespace

int main(int argc, char **argv) {
  std::printf("== Figure 7: security fixes vs buggy changes vs non-semantic "
              "changes under CL1-CL5 ==\n\n");
  bench::MinedCorpus Mined = bench::mineStandardCorpus(argc, argv);

  const apimodel::CryptoApiModel &Api =
      apimodel::CryptoApiModel::javaCryptoApi();
  core::PipelineConfig SysOpts;
  SysOpts.Threads = 0; // all cores; results are order-deterministic
  core::DiffCode System(Api, SysOpts);
  std::vector<const Rule *> CLRules;
  for (const Rule &R : cryptoLintRules())
    CLRules.push_back(&R);

  CorpusReport Report = System.run({.Changes = Mined.Changes,
                                            .TargetClasses = Api.targetClasses(),
                                            .ClassifyWith = CLRules,
                                            .BuildDendrograms = false});

  TablePrinter Table({"Rule", "Type", "Total", "fsame", "fadd", "frem",
                      "fdup", "Remain."});
  std::size_t SemanticFixes = 0, SemanticBugs = 0, FilteredFixes = 0,
              DupFilteredFixes = 0;

  for (const Rule *R : CLRules) {
    // The rule's class determines which usage changes are counted (the
    // paper counts "changes that are applicable to the rule").
    const std::string &RuleClass = R->Clauses.front().TypeName;

    // Gather (usage change, classification) pairs in pipeline order, then
    // re-run the filter pipeline to attribute removals.
    std::vector<usage::UsageChange> Changes;
    std::vector<ChangeClass> Classes;
    for (const ChangeRecord &Record : Report.Changes) {
      auto It = Record.PerClass.find(RuleClass);
      if (It == Record.PerClass.end())
        continue;
      ChangeClass Classification = Record.Classification.at(R->Id);
      for (const usage::UsageChange &UC : It->second) {
        Changes.push_back(UC);
        Classes.push_back(Classification);
      }
    }
    FilterResult Filtered = applyFilters(Changes);

    std::map<ChangeClass, Tab> Tabs;
    for (std::size_t I = 0; I < Changes.size(); ++I) {
      Tab &T = Tabs[Classes[I]];
      ++T.Total;
      if (Filtered.Outcome[I] == FilterStage::Kept)
        ++T.Remaining;
      else
        ++T.Removed[Filtered.Outcome[I]];
    }

    for (ChangeClass CC : {ChangeClass::SecurityFix, ChangeClass::BuggyChange,
                           ChangeClass::NonSemantic}) {
      const Tab &T = Tabs[CC];
      Table.addRow({R->Id, changeClassName(CC), std::to_string(T.Total),
                    std::to_string(T.Removed.count(FilterStage::FSame)
                                       ? T.Removed.at(FilterStage::FSame)
                                       : 0),
                    std::to_string(T.Removed.count(FilterStage::FAdd)
                                       ? T.Removed.at(FilterStage::FAdd)
                                       : 0),
                    std::to_string(T.Removed.count(FilterStage::FRem)
                                       ? T.Removed.at(FilterStage::FRem)
                                       : 0),
                    std::to_string(T.Removed.count(FilterStage::FDup)
                                       ? T.Removed.at(FilterStage::FDup)
                                       : 0),
                    std::to_string(T.Remaining)});
      if (CC == ChangeClass::SecurityFix) {
        SemanticFixes += T.Total;
        DupFilteredFixes += T.Removed.count(FilterStage::FDup)
                                ? T.Removed.at(FilterStage::FDup)
                                : 0;
        FilteredFixes += T.Total - T.Remaining -
                         (T.Removed.count(FilterStage::FDup)
                              ? T.Removed.at(FilterStage::FDup)
                              : 0);
      }
      if (CC == ChangeClass::BuggyChange)
        SemanticBugs += T.Total;
    }
  }
  Table.print(std::cout);

  std::printf("\nshape checks:\n");
  std::printf("  security fixes: %zu, buggy changes: %zu  ->  %.1f%% of "
              "semantic changes are fixes (paper: > 80%%)\n",
              SemanticFixes, SemanticBugs,
              SemanticFixes + SemanticBugs == 0
                  ? 0.0
                  : 100.0 * SemanticFixes / (SemanticFixes + SemanticBugs));
  std::printf("  fixes removed by non-dup filters: %zu (paper: 0)\n",
              FilteredFixes);
  std::printf("  fixes removed as duplicates: %zu (paper: 1)\n",
              DupFilteredFixes);
  return 0;
}
