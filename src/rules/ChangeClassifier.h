//===- rules/ChangeClassifier.h - fix / bug / none (Section 6.2) -----------===//
//
// Part of the DiffCode project, a reproduction of "Inferring Crypto API
// Rules from Code Changes" (PLDI'18).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Classifies a code change against a rule: a *security fix* removes a
/// violation (rule triggers in the old version, not in the new), a *buggy
/// change* introduces one, and everything else is *non-semantic* with
/// respect to that rule. This is the ground-truthing mechanism behind
/// Figure 7.
///
//===----------------------------------------------------------------------===//

#ifndef DIFFCODE_RULES_CHANGECLASSIFIER_H
#define DIFFCODE_RULES_CHANGECLASSIFIER_H

#include "rules/Rule.h"

namespace diffcode {
namespace rules {

/// Verdict of classifying one change under one rule.
enum class ChangeClass { SecurityFix, BuggyChange, NonSemantic };

/// Classifies an (old, new) version pair under \p R.
ChangeClass classifyChange(const Rule &R, const UnitFacts &OldFacts,
                           const UnitFacts &NewFacts,
                           const ProjectMetadata &Meta = ProjectMetadata());

/// Display name ("fix", "bug", "none").
const char *changeClassName(ChangeClass C);

} // namespace rules
} // namespace diffcode

#endif // DIFFCODE_RULES_CHANGECLASSIFIER_H
