file(REMOVE_RECURSE
  "CMakeFiles/fig10_rule_violations.dir/fig10_rule_violations.cpp.o"
  "CMakeFiles/fig10_rule_violations.dir/fig10_rule_violations.cpp.o.d"
  "fig10_rule_violations"
  "fig10_rule_violations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_rule_violations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
