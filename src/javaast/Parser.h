//===- javaast/Parser.h - Recursive-descent Java subset parser -------------===//
//
// Part of the DiffCode project, a reproduction of "Inferring Crypto API
// Rules from Code Changes" (PLDI'18).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Recursive-descent parser producing the javaast tree. Designed for
/// partial, possibly uncompilable programs (Section 5.1 of the paper):
/// errors are reported to the DiagnosticsEngine and the parser re-syncs at
/// statement/member boundaries instead of giving up.
///
/// Constructs outside the analyzed core are accepted and desugared:
///   * generics are parsed and discarded;
///   * annotations are skipped;
///   * `switch` lowers to an if/else-if chain (the analyzer forks at
///     branches, which preserves the per-case abstract executions);
///   * enhanced-for lowers to a fresh local bound to an opaque call plus a
///     `while`, matching the analyzer's 0/1-iteration loop policy.
///
//===----------------------------------------------------------------------===//

#ifndef DIFFCODE_JAVAAST_PARSER_H
#define DIFFCODE_JAVAAST_PARSER_H

#include "javaast/Ast.h"
#include "javaast/Diagnostics.h"
#include "javaast/Lexer.h"
#include "javaast/Token.h"

#include <string_view>
#include <vector>

namespace diffcode {
namespace java {

/// Resource budgets for one parse. Mined corpora contain pathological
/// files (multi-megabyte sources, generated expression towers); the caps
/// bound both memory and stack so such inputs degrade to a deterministic
/// empty-but-flagged result (DiagnosticsEngine::budgetExceeded) instead
/// of exhausting the process. 0 means unlimited.
///
/// The defaults are calibrated against the default generated corpus
/// (2314 changes / 4628 sources): the observed maxima are 329 tokens and
/// nesting depth 5 per source, so 262144 tokens (~800x headroom) and
/// depth 512 (~100x headroom) keep budget-exceeded rates at 0% on clean
/// corpora while still stopping adversarial inputs deterministically.
/// test_budgets.cpp asserts the < 0.1% calibration bar end-to-end.
struct ParseLimits {
  /// Maximum token count; checked once after lexing.
  unsigned MaxTokens = 262144;
  /// Maximum combined statement/expression recursion depth.
  unsigned MaxNestingDepth = 512;
};

/// Parses one compilation unit from a token stream.
class Parser {
public:
  Parser(TokenStream Stream, AstContext &Ctx, DiagnosticsEngine &Diags,
         ParseLimits Limits = ParseLimits());

  /// Parses the whole buffer. Returns a unit (possibly with fewer members
  /// than the source on errors) — or nullptr when a ParseLimits budget was
  /// exceeded (Diags.budgetExceeded() is then set). Check Diags for
  /// problems either way.
  CompilationUnit *parseCompilationUnit();

private:
  // Token stream helpers.
  const Token &cur() const { return Tokens[Index]; }
  const Token &peek(std::size_t Ahead = 1) const;
  bool at(TokenKind K) const { return cur().is(K); }
  bool atEnd() const { return at(TokenKind::EndOfFile); }
  Token advance();
  bool accept(TokenKind K);
  bool expect(TokenKind K, std::string_view Context);
  void skipTo(std::initializer_list<TokenKind> Kinds);
  void skipBalanced(TokenKind Open, TokenKind Close);

  // Declarations.
  void parsePackageDecl(CompilationUnit *Unit);
  void parseImportDecl(CompilationUnit *Unit);
  ClassDecl *parseClassDecl(unsigned Modifiers);
  void parseClassBody(ClassDecl *Class);
  void parseMember(ClassDecl *Class);
  unsigned parseModifiers();
  void skipAnnotations();
  std::string parseQualifiedName();

  // Types.
  bool atTypeStart() const;
  TypeRef parseType();
  void skipGenericArgs();
  /// Speculative check: does a local-variable declaration start here?
  bool isLocalVarDeclStart() const;
  /// Scans a type at \p From without consuming; returns the index one past
  /// the type, or 0 if no type starts there.
  std::size_t scanType(std::size_t From) const;

  // Statements.
  Block *parseBlock();
  Stmt *parseStatement();
  Stmt *parseLocalVarDecl();
  Stmt *parseIf();
  Stmt *parseWhile();
  Stmt *parseDo();
  Stmt *parseFor();
  Stmt *parseTry();
  Stmt *parseSwitch();
  Stmt *parseSynchronized();

  // Expressions.
  Expr *parseExpr();
  Expr *parseAssignment();
  Expr *parseConditional();
  Expr *parseBinary(int MinPrec);
  Expr *parseUnary();
  Expr *parsePostfix(Expr *Base);
  Expr *parsePrimary();
  Expr *parseNew();
  Expr *parseArrayInit();
  std::vector<Expr *> parseArgList();
  /// True when '(' at the current position begins a cast expression.
  bool isCastStart() const;

  Expr *makeErrorExpr(SourceLocation Loc);

  /// RAII recursion-depth accounting; throws the internal budget error
  /// when Limits.MaxNestingDepth is exceeded (caught in
  /// parseCompilationUnit, which reports via Diags.budget and returns the
  /// unit parsed so far — empty for practical purposes).
  class DepthGuard;
  friend class DepthGuard;

  /// The stream owns both the token vector and the arena holding decoded
  /// literal spellings; Tokens aliases Stream.Tokens for brevity. The
  /// parser copies every spelling it keeps into the AST (std::string
  /// members), so the tree safely outlives the stream.
  TokenStream Stream;
  std::vector<Token> &Tokens;
  std::size_t Index = 0;
  AstContext &Ctx;
  DiagnosticsEngine &Diags;
  ParseLimits Limits;
  unsigned Depth = 0;
};

/// Convenience: lex + parse \p Source in one call. With \p Limits, a
/// budget violation yields nullptr and Diags.budgetExceeded() — callers
/// can tell "too big" apart from "unparseable".
CompilationUnit *parseJava(std::string_view Source, AstContext &Ctx,
                           DiagnosticsEngine &Diags);
CompilationUnit *parseJava(std::string_view Source, AstContext &Ctx,
                           DiagnosticsEngine &Diags,
                           const ParseLimits &Limits);

} // namespace java
} // namespace diffcode

#endif // DIFFCODE_JAVAAST_PARSER_H
