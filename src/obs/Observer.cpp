//===- obs/Observer.cpp - Pipeline observability facade --------------------===//
//
// Part of the DiffCode project, a reproduction of "Inferring Crypto API
// Rules from Code Changes" (PLDI'18).
//
//===----------------------------------------------------------------------===//

#include "obs/Observer.h"

#include "support/JsonWriter.h"

namespace diffcode {
namespace obs {

bool Observer::adoptWorkerSnapshot(const Snapshot &Worker) {
  Snapshot Marked = Worker;
  Marked.markAllPerRun();
  return Adopted.merge(Marked, "exec.worker.");
}

RunSummary Observer::summarize() const {
  RunSummary Summary;
  Summary.Metrics = Metrics.snapshot();
  // Cross-process values live only in the adopted snapshot; the names
  // are disjoint from in-process ones by prefix, so the merge cannot be
  // rejected here (it still would be on a hostile collision — in that
  // case the in-process values win unmodified).
  Summary.Metrics.merge(Adopted);
  Summary.Stages = Trace.aggregate();
  return Summary;
}

std::string RunSummary::json() const {
  JsonWriter W;
  W.beginObject();
  W.key("counters");
  W.rawValue(Metrics.json(/*DeterministicOnly=*/false));
  W.key("stages");
  W.beginArray();
  for (const Tracer::StageTotal &S : Stages) {
    W.beginObject();
    W.key("name");
    W.value(S.Name);
    W.key("spans");
    W.value(S.Spans);
    W.key("totalNs");
    W.value(S.TotalNs);
    W.endObject();
  }
  W.endArray();
  W.endObject();
  return W.take();
}

std::string RunSummary::deterministicJson() const {
  JsonWriter W;
  W.beginObject();
  W.key("counters");
  W.rawValue(Metrics.json(/*DeterministicOnly=*/true));
  W.key("stages");
  W.beginArray();
  for (const Tracer::StageTotal &S : Stages) {
    W.beginObject();
    W.key("name");
    W.value(S.Name);
    W.key("spans");
    W.value(S.Spans);
    W.endObject();
  }
  W.endArray();
  W.endObject();
  return W.take();
}

} // namespace obs
} // namespace diffcode
