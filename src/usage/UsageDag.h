//===- usage/UsageDag.h - Rooted usage DAGs (Section 3.4) ------------------===//
//
// Part of the DiffCode project, a reproduction of "Inferring Crypto API
// Rules from Code Changes" (PLDI'18).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Rooted DAGs over abstract usages. The root is (0, o^a) for an abstract
/// object; method nodes (m, sigma^a) hang off object nodes; argument nodes
/// (i, a) hang off method nodes; tracked-object arguments expand
/// recursively up to a fixed depth (paper: n = 5).
///
/// Node labels are structured (NodeLabel) so the clustering metric can
/// honor the paper's unit rules: string constants compare per character
/// under Levenshtein, while method signatures, integers, abstract bytes,
/// and type names are atomic units.
///
//===----------------------------------------------------------------------===//

#ifndef DIFFCODE_USAGE_USAGEDAG_H
#define DIFFCODE_USAGE_USAGEDAG_H

#include "analysis/AbstractObject.h"
#include "analysis/UsageEvent.h"

#include <string>
#include <vector>

namespace diffcode {
namespace usage {

/// A structured DAG node label.
struct NodeLabel {
  enum class Kind : std::uint8_t {
    Root,   ///< (0, o^a): Text = type name.
    Method, ///< (m, sigma^a): Text = method signature.
    Arg,    ///< (i, a): Text = abstract-value label, ArgIndex = i.
  };

  Kind K = Kind::Root;
  unsigned ArgIndex = 0;
  /// True for Arg labels whose value is a string constant — those compare
  /// per character in the clustering metric (Section 4.3).
  bool ValueIsString = false;
  std::string Text;

  static NodeLabel root(std::string TypeName);
  static NodeLabel method(std::string Signature);
  static NodeLabel arg(unsigned Index, const analysis::AbstractValue &Value);

  /// Display form: "Cipher", "Cipher.getInstance", "arg1:AES". Inline so
  /// support/Interner can render labels without a link-time dependency on
  /// this library.
  std::string str() const {
    if (K == Kind::Arg)
      return "arg" + std::to_string(ArgIndex) + ":" + Text;
    return Text;
  }

  /// Full structural identity, including ValueIsString: the clustering
  /// metric assigns different Levenshtein units to string and non-string
  /// labels with equal text, and the interned label table
  /// (cluster/DistanceCache) relies on id equality coinciding with this
  /// operator.
  bool operator==(const NodeLabel &Other) const {
    return K == Other.K && ArgIndex == Other.ArgIndex &&
           ValueIsString == Other.ValueIsString && Text == Other.Text;
  }
  bool operator<(const NodeLabel &Other) const {
    if (K != Other.K)
      return K < Other.K;
    if (ArgIndex != Other.ArgIndex)
      return ArgIndex < Other.ArgIndex;
    if (ValueIsString != Other.ValueIsString)
      return ValueIsString < Other.ValueIsString;
    return Text < Other.Text;
  }
};

/// A root-to-node label sequence; the unit of the usage-change features
/// F- / F+ (Section 3.5).
using FeaturePath = std::vector<NodeLabel>;

/// Renders a path as "Cipher getInstance arg1:AES". Inline for the same
/// reason as NodeLabel::str(): the support-level interner renders paths
/// at emission time without linking this library.
inline std::string pathToString(const FeaturePath &Path) {
  std::string Out;
  for (std::size_t I = 0; I < Path.size(); ++I) {
    if (I != 0)
      Out += ' ';
    Out += Path[I].str();
  }
  return Out;
}

/// One rooted usage DAG.
class UsageDag {
public:
  struct Node {
    NodeLabel Label;
    std::vector<unsigned> Children;
  };

  /// Builds the DAG for \p RootObj from one execution's usage log.
  /// \p MaxDepth bounds the node depth (root is depth 0).
  static UsageDag build(const analysis::ObjectTable &Objects,
                        const analysis::UsageLog &Log, unsigned RootObj,
                        unsigned MaxDepth = 5);

  /// A DAG containing only a root labeled with \p TypeName — the padding
  /// element used when pairing versions with unequal DAG counts.
  static UsageDag emptyFor(std::string TypeName);

  const Node &node(unsigned Index) const { return Nodes[Index]; }
  unsigned root() const { return 0; }
  std::size_t size() const { return Nodes.size(); }
  bool isRootOnly() const { return Nodes.size() == 1; }
  const std::string &typeName() const { return Nodes[0].Label.Text; }

  /// All root-prefix paths (one per node, deduplicated).
  std::vector<FeaturePath> paths() const;

  /// The deduplicated multiset-as-set of node labels, for the
  /// intersection-over-union distance.
  std::vector<NodeLabel> labelSet() const;

  /// Canonical serialization (children sorted); equal strings iff the
  /// DAGs are isomorphic under label ordering. Used to dedupe DAGs across
  /// executions.
  std::string canonicalString() const;

  /// Human-readable indented rendering (one node per line), as shown in
  /// the paper's Figure 2(b)/(c).
  std::string str() const;

private:
  std::vector<Node> Nodes;
};

/// Intersection-over-union distance between two DAGs (Section 3.5):
/// 1 - |N1 n N2| / |N1 u N2| over node-label sets. Result in [0, 1].
double dagDistance(const UsageDag &A, const UsageDag &B);

} // namespace usage
} // namespace diffcode

#endif // DIFFCODE_USAGE_USAGEDAG_H
