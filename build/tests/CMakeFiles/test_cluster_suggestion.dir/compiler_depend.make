# Empty compiler generated dependencies file for test_cluster_suggestion.
# This may be replaced when dependencies are built.
