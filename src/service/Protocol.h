//===- service/Protocol.h - diffcoded request/reply codecs -----------------===//
//
// Part of the DiffCode project, a reproduction of "Inferring Crypto API
// Rules from Code Changes" (PLDI'18).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The message layer of service mode, built on the same checksummed
/// exec/Wire framing the supervised engine uses (magic, type, length,
/// FNV-1a checksum — one corrupt byte flips the decoder into its sticky
/// error state and the connection is dropped, never resynchronized).
///
/// Client -> server:
///   IngestReq    protocol version + a batch of code changes
///   QueryReq     a stats question ("health" | "stats" | "class:<Name>")
///   SnapshotReq  ask for the full corpus report JSON
///   ShutdownReq  stop the server after acknowledging
///   ScanReq      rule-scan a batch of projects (scan/Scanner); the warm
///                session answers rule queries without respawning
///   StatsReq     the daemon's live observability summary (metrics
///                snapshot + stage table) — read-only, never touches
///                the session state
///
/// Server -> client (exactly one per request, in request order):
///   ReplyOk      payload depends on the request (see codecs below)
///   ReplyErr     length-prefixed human-readable error
///
/// Service frame types live in a disjoint range (0x100+) from the
/// exec worker protocol's 1..7, so a frame mis-routed between the two
/// protocols is rejected by type, not misparsed.
///
/// Every decoder is defensive: truncation, trailing bytes, or an absurd
/// element count returns false and the server answers ReplyErr (or the
/// client treats the server as poisoned).
///
//===----------------------------------------------------------------------===//

#ifndef DIFFCODE_SERVICE_PROTOCOL_H
#define DIFFCODE_SERVICE_PROTOCOL_H

#include "corpus/RepoModel.h"
#include "service/AnalysisSession.h"

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace diffcode {
namespace service {

/// Service frame types (exec/Wire frame header's `type` field).
enum class ServiceFrame : std::uint32_t {
  IngestReq = 0x101,
  QueryReq = 0x102,
  SnapshotReq = 0x103,
  ShutdownReq = 0x104,
  ScanReq = 0x105,
  StatsReq = 0x106,
  ReplyOk = 0x110,
  ReplyErr = 0x111,
};

/// Bumped whenever any payload layout changes; IngestReq carries it and
/// the server refuses a mismatched client with ReplyErr.
inline constexpr std::uint32_t ServiceProtocolVersion = 1;

/// What an acknowledged ingest reports back: the session high-water mark
/// plus that ingest's IngestStats.
struct IngestReply {
  std::uint64_t TotalChanges = 0;
  IngestStats Stats;
};

/// IngestReq payload: u32 version, u32 count, then per change
/// (project, commitIndex, file, kind, old code, new code) with
/// length-prefixed strings.
std::string encodeIngestRequest(const std::vector<corpus::CodeChange> &Changes);
bool decodeIngestRequest(std::string_view Payload,
                         std::vector<corpus::CodeChange> &Out,
                         std::string *Error = nullptr);

/// ReplyOk payload for IngestReq: nine u64s.
std::string encodeIngestReply(const IngestReply &Reply);
bool decodeIngestReply(std::string_view Payload, IngestReply &Out);

/// QueryReq payload: one length-prefixed question string. The ReplyOk
/// payload is one length-prefixed answer (JSON).
std::string encodeQueryRequest(std::string_view What);
bool decodeQueryRequest(std::string_view Payload, std::string &Out);

/// ReplyOk payload for QueryReq/SnapshotReq, and the ReplyErr payload:
/// one length-prefixed string.
std::string encodeText(std::string_view Text);
bool decodeText(std::string_view Payload, std::string &Out);

/// A scan request on the wire: the project set is self-contained (name,
/// metadata, HEAD files) so the server needs no shared filesystem.
struct ScanRequestWire {
  bool Refine = false;
  std::vector<std::string> RuleFilter; ///< Empty = the server's full set.
  std::vector<corpus::Project> Projects; ///< History is not carried.
};

/// ScanReq payload: u32 version, u8 flags (bit 0 = refine), u32 rule-id
/// count + ids, u32 project count, then per project (name, u8 isAndroid,
/// u32 minSdk, u8 hasLprngFix, u32 file count, per file name + code).
/// The ReplyOk payload is one length-prefixed scan report JSON
/// (scan/ScanReportWriter.h shape). Carried under the same protocol
/// version: an additive frame type, no existing payload changed.
std::string encodeScanRequest(const ScanRequestWire &Request);
bool decodeScanRequest(std::string_view Payload, ScanRequestWire &Out,
                       std::string *Error = nullptr);

/// StatsReq carries no payload (an empty frame; trailing bytes are a
/// protocol error like everywhere else). The ReplyOk payload is one
/// length-prefixed JSON string: the daemon observer's RunSummary
/// ({"counters":[...],"stages":[...]}), or ReplyErr when the daemon was
/// started unobserved. Additive frame type under the same protocol
/// version — no existing payload changed.

} // namespace service
} // namespace diffcode

#endif // DIFFCODE_SERVICE_PROTOCOL_H
