# Empty dependencies file for test_usage_dag.
# This may be replaced when dependencies are built.
