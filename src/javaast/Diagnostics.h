//===- javaast/Diagnostics.h - Error collection ----------------------------===//
//
// Part of the DiffCode project, a reproduction of "Inferring Crypto API
// Rules from Code Changes" (PLDI'18).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Diagnostic sink shared by the lexer and parser. DiffCode analyzes
/// partial programs mined from commits, so the frontend must degrade
/// gracefully: errors are collected, never thrown, and the parser recovers
/// where it can (Section 5.1: the analyzer "supports (partial) code
/// snippets").
///
//===----------------------------------------------------------------------===//

#ifndef DIFFCODE_JAVAAST_DIAGNOSTICS_H
#define DIFFCODE_JAVAAST_DIAGNOSTICS_H

#include "javaast/SourceLocation.h"

#include <string>
#include <vector>

namespace diffcode {
namespace java {

/// Severity of a reported diagnostic.
enum class DiagLevel { Warning, Error };

/// One reported problem with its location.
struct Diagnostic {
  DiagLevel Level = DiagLevel::Error;
  SourceLocation Loc;
  std::string Message;

  /// Renders as "line:col: error: message" (tool style, lowercase, no
  /// trailing period).
  std::string str() const;
};

/// Accumulates diagnostics for one frontend run.
class DiagnosticsEngine {
public:
  void error(SourceLocation Loc, std::string Message) {
    Diags.push_back({DiagLevel::Error, Loc, std::move(Message)});
  }

  void warning(SourceLocation Loc, std::string Message) {
    Diags.push_back({DiagLevel::Warning, Loc, std::move(Message)});
  }

  bool hasErrors() const {
    for (const Diagnostic &D : Diags)
      if (D.Level == DiagLevel::Error)
        return true;
    return false;
  }

  const std::vector<Diagnostic> &all() const { return Diags; }
  void clear() { Diags.clear(); }

private:
  std::vector<Diagnostic> Diags;
};

} // namespace java
} // namespace diffcode

#endif // DIFFCODE_JAVAAST_DIAGNOSTICS_H
