//===- core/DiffCode.h - The end-to-end DiffCode pipeline ------------------===//
//
// Part of the DiffCode project, a reproduction of "Inferring Crypto API
// Rules from Code Changes" (PLDI'18).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The DiffCode system (Section 5): parse both versions of each code
/// change, analyze them with the abstract interpreter, derive usage DAGs
/// per target class, pair and diff them into usage changes, filter, and
/// cluster — producing everything the paper's evaluation reports.
///
//===----------------------------------------------------------------------===//

#ifndef DIFFCODE_CORE_DIFFCODE_H
#define DIFFCODE_CORE_DIFFCODE_H

#include "analysis/AbstractInterpreter.h"
#include "cluster/HierarchicalClustering.h"
#include "core/Filters.h"
#include "corpus/RepoModel.h"
#include "javaast/Parser.h"
#include "obs/Observer.h"
#include "rules/ChangeClassifier.h"
#include "support/FaultInjection.h"
#include "support/Interner.h"
#include "usage/UsageChange.h"

#include <array>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace diffcode {
namespace core {

/// How the per-change analysis stage executes.
enum class ExecutionMode {
  InProcess,  ///< analyzeChanges on a thread pool in this process.
  Supervised, ///< exec/Supervisor worker subprocesses with containment.
};

/// Supervised-execution policy (exec/Supervisor.h consumes it). Lives in
/// core so a PipelineRequest fully describes a run without the caller
/// naming anything in the exec layer.
struct ExecutionPolicy {
  ExecutionMode Mode = ExecutionMode::InProcess;
  /// Worker subprocesses; support::resolveThreads semantics (0 = one per
  /// hardware thread), additionally clamped to the number of work units.
  unsigned Workers = 0;
  /// Changes per work unit (serialized batch). 0 means the default (32).
  /// Larger units amortize the per-unit dispatch round-trip (a unit
  /// completion context-switches worker -> coordinator -> worker); on
  /// failure, half-batch bisection recovers single-change granularity,
  /// so the batch size only prices the clean path.
  std::size_t BatchSize = 32;
  /// Wall-clock watchdog per dispatched unit; a worker that exceeds it is
  /// SIGKILLed and the unit enters retry/bisection. 0 disables the
  /// watchdog.
  std::uint64_t UnitDeadlineMs = 10000;
  /// Terminal-failure bar: a single poisoned change is retried this many
  /// times (with exponential backoff) before its record is stamped
  /// WorkerCrash/WorkerTimeout/WorkerOom.
  unsigned MaxRetries = 2;
  /// Backoff before the Nth retry of a singleton unit:
  /// min(BackoffBaseMs << (N-1), BackoffCapMs).
  std::uint64_t BackoffBaseMs = 10;
  std::uint64_t BackoffCapMs = 1000;
  /// RLIMIT_AS for each worker in MiB (0 = unlimited). A worker that
  /// cannot allocate takes a distinguished exit, reported as WorkerOom.
  std::uint64_t WorkerMemoryLimitMb = 0;

  /// Field-wise equality. DiffCode::run uses it to recognize a
  /// default-constructed request policy and fall back to
  /// PipelineConfig::Exec.
  friend bool operator==(const ExecutionPolicy &,
                         const ExecutionPolicy &) = default;
};

/// The system's one documented knob surface, replacing the ad-hoc
/// option clusters that accumulated across PRs 1-7. Six
/// groups — threads, limits, clustering, sharding, exec, metrics — plus
/// the fault-injection campaign, all designed for designated-initializer
/// construction:
///
///   core::DiffCode System(Api, {.Threads = 8,
///                               .Clustering = {.Cut = 0.3},
///                               .Sharding = {.Enabled = true}});
///
/// Every thread knob shares support::resolveThreads semantics (0 = one
/// per hardware thread), and no knob changes report bytes except through
/// its documented effect (sharding estimates cross-shard linkage; the
/// cut threshold moves flat-cluster boundaries).
struct PipelineConfig {
  /// -- threads: worker threads for the per-change analysis stage (each
  /// change is independent: parse + analyze + diff). Results are
  /// deterministic regardless.
  unsigned Threads = 1;

  /// -- limits: deterministic frontend/interpreter budgets applied to
  /// every parsed version (0 = unlimited), and the usage-DAG depth.
  struct LimitsGroup {
    /// Frontend budgets applied to every parsed version.
    java::ParseLimits Parse;
    /// Abstract-interpreter fuel and object caps.
    analysis::AnalysisOptions Analysis;
    unsigned DagDepth = 5; ///< Section 3.4's n.
  };
  LimitsGroup Limits;

  /// -- clustering: the agglomeration engine. Algorithm choice (NNChain
  /// by default; the naive reference is retained for differential
  /// testing) and matrix threads never change the dendrogram; Cut is the
  /// threshold for flat clusters (manual-inspection aid).
  struct ClusteringGroup {
    double Cut = 0.4;
    cluster::ClusteringOptions::Algorithm Algo =
        cluster::ClusteringOptions::Algorithm::NNChain;
    /// Threads for the pairwise distance matrix and cache warm-up.
    unsigned Threads = 1;
  };
  ClusteringGroup Clustering;

  /// -- sharding: the shard-and-merge engine for corpora whose dense
  /// matrix would not fit; clustering dispatches on Sharding.Enabled.
  cluster::ShardingOptions Sharding;

  /// -- exec: the execution policy run() falls back to when the request
  /// leaves its own policy default-constructed.
  ExecutionPolicy Exec;

  /// -- metrics: the observability sink run() falls back to when the
  /// request does not carry one. Null keeps instrumentation off (every
  /// site reduces to one pointer test). Must outlive the DiffCode.
  obs::Observer *Metrics = nullptr;

  /// Fault-injection campaign (testing only; disabled by default). When
  /// armed, every per-change worker and the per-class clustering step run
  /// under a deterministic FaultScope, so injected failures land on the
  /// same changes at any thread count.
  support::FaultPlan Faults;

  /// The clustering-engine view of this config (Clustering + Sharding
  /// folded back into the cluster layer's option struct).
  cluster::ClusteringOptions clusteringOptions() const {
    cluster::ClusteringOptions Out;
    Out.Threads = Clustering.Threads;
    Out.Algo = Clustering.Algo;
    Out.Sharding = Sharding;
    return Out;
  }
};

/// Outcome taxonomy for one processed code change. Ordered by severity:
/// combining the old/new version outcomes takes the maximum. The first
/// five are in-process containment outcomes (PR 2); the Worker* statuses
/// are terminal verdicts of the supervised multi-process engine
/// (exec/Supervisor): the subprocess holding this change died, overran
/// its deadline, or hit its memory limit even after bounded retry and
/// half-batch bisection.
enum class ChangeStatus {
  Ok = 0,         ///< Both versions parsed and analyzed cleanly.
  Degraded,       ///< Parse diagnostics; analysis ran on a partial tree.
  ParseError,     ///< A version produced no usable compilation unit.
  BudgetExceeded, ///< A ParseLimits or AnalysisOptions budget truncated it.
  AnalysisThrow,  ///< The worker threw; the record is empty but present.
  WorkerCrash,    ///< Worker subprocess died (signal/exit/protocol error).
  WorkerTimeout,  ///< Worker overran the per-unit wall-clock deadline.
  WorkerOom,      ///< Worker hit its memory limit and took the OOM exit.
};

/// Number of ChangeStatus values (for count arrays).
inline constexpr std::size_t NumChangeStatuses = 8;

/// Stable lowercase name ("ok", "parse-error", ...) for reports.
const char *changeStatusName(ChangeStatus Status);

/// Inverse of changeStatusName, for consumers that round-trip reports
/// through JSON (returns false for unknown names).
bool changeStatusFromName(std::string_view Name, ChangeStatus &Out);

/// The per-code-change output: usage changes per target class, the
/// rule-based classification, and provenance.
struct ChangeRecord {
  std::string Origin;
  std::string GroundTruthKind; ///< Generator kind; empty for mined code.
  /// Target class -> usage changes this code change produced.
  std::map<std::string, std::vector<usage::UsageChange>> PerClass;
  /// Rule id -> fix/bug/none classification (Section 6.2).
  std::map<std::string, rules::ChangeClass> Classification;
  /// How processing this change went (worst of the two versions).
  ChangeStatus Status = ChangeStatus::Ok;
  /// Human-readable cause for non-Ok statuses (first diagnostic, the
  /// budget that tripped, or the exception message).
  std::string StatusDetail;
  /// Interpreter steps consumed across both versions (worst-offender
  /// ranking in the corpus-health summary).
  std::uint64_t StepsUsed = 0;
  /// Wall nanoseconds processChange spent on this change. Only measured
  /// when the run is observed (PipelineRequest::Metrics); run-dependent,
  /// so it feeds the CLI table and the "metrics" JSON block — never the
  /// deterministic "health" block.
  std::uint64_t WallNanos = 0;
};

/// Aggregated per-target-class results (Figure 6 row + Figure 8 input).
struct ClassReport {
  std::string TargetClass;
  std::vector<usage::UsageChange> AllChanges;
  FilterResult Filtered;
  cluster::Dendrogram Tree; ///< Over Filtered.Kept (empty if not built).
  /// Non-empty when dendrogram construction failed; Tree is then empty
  /// but AllChanges/Filtered are still valid.
  std::string ClusteringError;
  /// What the sharded engine did (NumShards == 0 when clustering ran
  /// unsharded or not at all).
  cluster::ShardingStats Sharding;
};

/// One row of the corpus-health worst-offender table.
struct WorstOffender {
  std::string Origin;
  std::uint64_t Steps = 0;
  ChangeStatus Status = ChangeStatus::Ok;
  /// Wall nanoseconds from the record (0 unless the run was observed;
  /// PerRun — reported in the CLI table and the "metrics" JSON block,
  /// deliberately absent from the deterministic "health" block).
  std::uint64_t WallNanos = 0;
};

/// Corpus-health summary: how many changes landed in each status bucket,
/// which classes failed to cluster, and where the analysis budgets went.
struct CorpusHealth {
  /// Indexed by static_cast<size_t>(ChangeStatus).
  std::array<std::size_t, NumChangeStatuses> StatusCounts{};
  /// Classes whose clustering step failed (ClusteringError non-empty).
  std::size_t ClusteringFailures = 0;
  /// Top changes by interpreter steps consumed, descending; ties broken
  /// by origin for determinism.
  std::vector<WorstOffender> WorstOffenders;

  std::size_t count(ChangeStatus Status) const {
    return StatusCounts[static_cast<std::size_t>(Status)];
  }
  /// Changes that did not complete cleanly (everything but Ok).
  std::size_t troubled() const;
};

/// Whole-corpus pipeline output.
struct CorpusReport {
  std::vector<ChangeRecord> Changes;
  std::vector<ClassReport> PerClass;
  CorpusHealth Health;
  /// The interner every usage change in this report resolves through,
  /// pinned here so the report stays self-contained even if the DiffCode
  /// instance (or the request's interner) goes away first.
  std::shared_ptr<const support::Interner> Labels;
  /// Observability summary of the run: metrics snapshot + per-stage
  /// timing table. Empty unless the request carried an Observer; rendered
  /// as the report's "metrics" JSON block.
  obs::RunSummary Metrics;
};

/// Everything one pipeline run needs, replacing run's former positional
/// parameter list. Aggregate-initializable:
///
///   System.run({.Changes = Mined,
///               .TargetClasses = Api.targetClasses()});
///
/// Pointed-to changes and rules must outlive the call. A request
/// describes exactly one run; service::AnalysisSession is the stateful
/// extension of this model — a session is a request whose Changes
/// accumulate across ingests and whose intermediate products persist.
struct PipelineRequest {
  std::vector<const corpus::CodeChange *> Changes;
  std::vector<std::string> TargetClasses;
  /// Rules to classify each change under (may be empty).
  std::vector<const rules::Rule *> ClassifyWith;
  /// Whether the (quadratic-distance) clustering stage runs.
  bool BuildDendrograms = true;
  /// Interner the run's labels and feature paths resolve through. Null
  /// (the default) uses the DiffCode instance's own corpus interner;
  /// callers that compare or combine reports across pipeline runs pass a
  /// shared one so id-based equality spans the runs.
  std::shared_ptr<support::Interner> Labels;
  /// Observability sink. Null (the default) turns instrumentation off —
  /// every site reduces to one pointer test and the report's Metrics
  /// summary stays empty. When set, stages open spans in Metrics->Trace,
  /// counters/histograms land in Metrics->Metrics, and run()
  /// freezes the result into CorpusReport::Metrics. Must outlive the
  /// call.
  obs::Observer *Metrics = nullptr;
  /// Execution mode + supervision knobs. DiffCode::run dispatches on
  /// Exec.Mode (a default-constructed policy falls back to
  /// PipelineConfig::Exec first); the stage entry points and
  /// runPipelineFrom ignore it.
  ExecutionPolicy Exec;
};

/// Recomputes \p Report's health summary from its records (at most
/// \p MaxOffenders worst-offender entries). run() calls this;
/// exposed for tests and for callers that post-edit reports.
void computeCorpusHealth(CorpusReport &Report, std::size_t MaxOffenders = 5);

/// The system facade.
class DiffCode {
public:
  explicit DiffCode(const apimodel::CryptoApiModel &Api);
  DiffCode(const apimodel::CryptoApiModel &Api, PipelineConfig Config);

  const PipelineConfig &config() const { return Config; }

  /// One parsed-and-analyzed program version plus how it went. Frontend
  /// problems are recorded, never silently swallowed.
  struct SourceAnalysis {
    analysis::AnalysisResult Result;
    ChangeStatus Status = ChangeStatus::Ok;
    std::string Detail; ///< First diagnostic / budget cause when non-Ok.
  };

  /// The one checked analysis entry point: parses and abstractly
  /// interprets one Java source (empty source yields an empty Ok result —
  /// new/deleted files diff against nothing), recording parser
  /// diagnostics and budget hits in the status. Callers that only need
  /// the result use analyzeSourceChecked(Source).Result.
  SourceAnalysis analyzeSourceChecked(std::string_view Source) const;

  /// Arena-reuse variant: parses into \p Ctx after resetting it, so a
  /// caller analyzing several versions (processChange does old + new)
  /// recycles the same slab memory instead of re-allocating per parse.
  /// The AnalysisResult holds no AST pointers, so the returned value
  /// remains valid after the next reset.
  SourceAnalysis analyzeSourceChecked(std::string_view Source,
                                      java::AstContext &Ctx) const;

  /// Deduplicated usage DAGs of \p TargetClass across all executions.
  std::vector<usage::UsageDag>
  dagsForClass(const analysis::AnalysisResult &Result,
               const std::string &TargetClass) const;

  /// The instance's corpus interner: every usage change produced through
  /// this facade without an explicit PipelineRequest::Labels resolves
  /// through it.
  const std::shared_ptr<support::Interner> &labels() const {
    return DefaultLabels;
  }

  /// Usage changes of one code change for one target class, interned in
  /// labels().
  std::vector<usage::UsageChange>
  usageChangesFor(const corpus::CodeChange &Change,
                  const std::string &TargetClass) const;

  /// Processes one code change end to end for all \p TargetClasses,
  /// classifying it under \p ClassifyWith (may be empty); feature paths
  /// intern into \p Table (the labels() interner for the parameterless
  /// form). Never throws: any escaping exception is contained into an
  /// empty record with Status == AnalysisThrow, so one poisoned change
  /// cannot take down a corpus run.
  ChangeRecord
  processChange(const corpus::CodeChange &Change,
                const std::vector<std::string> &TargetClasses,
                const std::vector<const rules::Rule *> &ClassifyWith) const;
  ChangeRecord
  processChange(const corpus::CodeChange &Change,
                const std::vector<std::string> &TargetClasses,
                const std::vector<const rules::Rule *> &ClassifyWith,
                support::Interner &Table) const;
  /// Observed variant: additionally records per-version interpreter
  /// metrics (steps/entries/objects histograms, budget-hit counters) and
  /// usage-change counts into \p Reg. Null \p Reg behaves exactly like
  /// the unobserved overload.
  ChangeRecord
  processChange(const corpus::CodeChange &Change,
                const std::vector<std::string> &TargetClasses,
                const std::vector<const rules::Rule *> &ClassifyWith,
                support::Interner &Table, obs::Registry *Reg) const;

  //===--------------------------------------------------------------------===//
  // Stage entry points. run() composes exactly these three, so
  // callers can run any prefix (analysis only, analysis + filters) or
  // re-cluster a filtered class under different options without
  // re-analyzing the corpus.
  //===--------------------------------------------------------------------===//

  /// Stage 1 — per-change analysis: processChange over
  /// Request.Changes in parallel (config().Threads workers), one record
  /// per input in input order, each under a deterministic fault scope.
  /// Request.BuildDendrograms is ignored here.
  std::vector<ChangeRecord> analyzeChanges(const PipelineRequest &Request) const;

  /// Stage 2 — per-class gather + filter: concatenates \p TargetClass's
  /// usage changes from \p Records (record order) and runs the
  /// fsame/fadd/frem/fdup pipeline. Tree is left empty.
  ClassReport filterClass(const std::vector<ChangeRecord> &Records,
                          const std::string &TargetClass) const;

  /// Stage 3 — clustering: builds \p Class.Tree over Class.Filtered.Kept
  /// under config's clustering/sharding groups (sharded when
  /// config().Sharding.Enabled, filling Class.Sharding). A failure
  /// empties the Tree and sets Class.ClusteringError instead of throwing.
  void clusterClass(ClassReport &Class) const;

  /// The one pipeline entry point: dispatches on Request.Exec.Mode
  /// (falling back to config().Exec when the request's policy is
  /// default-constructed, and to config().Metrics when the request
  /// carries no observer), then runs analyzeChanges — in this process or
  /// under the exec/Supervisor worker pool — followed per target class by
  /// filterClass and (when Request.BuildDendrograms) clusterClass, then
  /// the corpus-health rollup. Per-change failures are contained in the
  /// corresponding ChangeRecord and tallied in the report's Health
  /// summary; a clustering failure empties that class's Tree and sets
  /// ClusteringError. Both execution modes produce byte-identical
  /// reports.
  CorpusReport run(const PipelineRequest &Request) const;

  /// run with the per-change analysis stage swapped out: \p Analyze
  /// produces the record vector (one per Request.Changes entry, input
  /// order) and everything downstream — filters, clustering, health,
  /// metrics rollup — is byte-identical to an in-process run over the
  /// same records. This is the internal seam the supervised engine
  /// (exec/Supervisor) and the incremental session
  /// (service/AnalysisSession) plug into.
  CorpusReport runPipelineFrom(
      const PipelineRequest &Request,
      const std::function<std::vector<ChangeRecord>()> &Analyze) const;

private:
  /// Request.Labels when set, the instance interner otherwise.
  support::Interner &internerFor(const PipelineRequest &Request) const;

  const apimodel::CryptoApiModel &Api;
  PipelineConfig Config;
  /// Corpus interner backing every change this instance derives (unless
  /// a request supplies its own). shared_ptr so reports can outlive the
  /// facade.
  std::shared_ptr<support::Interner> DefaultLabels;
};

} // namespace core
} // namespace diffcode

#endif // DIFFCODE_CORE_DIFFCODE_H
