//===- tests/test_adversarial_labels.cpp - Hostile label round-trips -------===//
//
// String constants mined from real commits are not tame identifiers:
// transformation strings can carry quotes, backslashes, non-ASCII bytes,
// or be empty. These tests push such labels through the interned data
// model and out both emission back-ends — ReportWriter (JSON) and
// DendrogramExport (Graphviz DOT) — checking that
//
//   * pathString(Id) stays byte-identical to pathToString(materialize),
//   * the JSON is well-formed with every special escaped,
//   * the DOT output never leaks an unescaped quote into an attribute.
//
//===----------------------------------------------------------------------===//

#include "core/ReportWriter.h"

#include "cluster/DendrogramExport.h"
#include "cluster/HierarchicalClustering.h"
#include "support/Interner.h"
#include "support/JsonWriter.h"

#include <gtest/gtest.h>

using namespace diffcode;
using namespace diffcode::analysis;
using namespace diffcode::usage;

namespace {

support::Interner &table() {
  static support::Interner Table;
  return Table;
}

FeaturePath pathFor(const char *Algo) {
  return {NodeLabel::root("Cipher"), NodeLabel::method("Cipher.getInstance/1"),
          NodeLabel::arg(1, AbstractValue::strConst(Algo))};
}

UsageChange changeFor(const char *From, const char *To) {
  return UsageChange::intern(table(), "Cipher", {pathFor(From)},
                             {pathFor(To)}, "adv@c0");
}

/// The hostile vocabulary: embedded quotes, backslashes, JSON/DOT
/// metacharacters, non-ASCII, control characters, and the empty string.
const char *Hostile[] = {
    "AES\"CBC\"",         // embedded double quotes
    "AES\\ECB\\NoPad",    // backslashes
    "{\"mode\": [1,2]}",  // JSON-shaped content
    "ключ-π-鍵",          // non-ASCII (UTF-8 passes through)
    "",                   // empty string constant
    "line1\nline2",       // newline
    "tab\there",          // tab
};

bool balancedJson(const std::string &Json) {
  long Depth = 0;
  bool InString = false, Escaped = false;
  for (char C : Json) {
    if (Escaped) {
      Escaped = false;
      continue;
    }
    if (C == '\\') {
      Escaped = true;
      continue;
    }
    if (C == '"') {
      InString = !InString;
      continue;
    }
    if (InString)
      continue;
    if (C == '{' || C == '[')
      ++Depth;
    if (C == '}' || C == ']')
      --Depth;
    if (Depth < 0)
      return false;
  }
  return Depth == 0 && !InString;
}

} // namespace

TEST(AdversarialLabels, PathStringRoundTripsEveryHostileConstant) {
  for (const char *Algo : Hostile) {
    FeaturePath Path = pathFor(Algo);
    support::PathId Id = table().path(Path);
    EXPECT_EQ(table().pathString(Id), pathToString(Path)) << Algo;
    FeaturePath Back = table().materialize(Id);
    ASSERT_EQ(Back.size(), Path.size());
    for (std::size_t I = 0; I < Back.size(); ++I)
      EXPECT_TRUE(Back[I] == Path[I]) << Algo;
  }
}

TEST(AdversarialLabels, EmptyStringConstantStaysDistinct) {
  // arg1:"" and a bare arg1 value must not collapse — ValueIsString is
  // part of structural identity.
  support::LabelId Empty =
      table().label(NodeLabel::arg(1, AbstractValue::strConst("")));
  EXPECT_EQ(table().labelAt(Empty).Text, "");
  EXPECT_TRUE(table().labelAt(Empty).ValueIsString);
  // Its unit vector is just the "arg1" atom — zero character units.
  EXPECT_EQ(table().unitsOf(Empty), std::vector<std::string>{"arg1"});
}

TEST(AdversarialLabels, UsageChangeJsonIsWellFormedAndEscaped) {
  for (const char *Algo : Hostile) {
    UsageChange Change = changeFor(Algo, "AES/GCM/NoPadding");
    std::string Json = core::usageChangeToJson(Change);
    EXPECT_TRUE(balancedJson(Json)) << Json;
    // Raw specials never appear unescaped inside the document.
    EXPECT_EQ(Json.find('\n'), std::string::npos) << Algo;
    EXPECT_EQ(Json.find('\t'), std::string::npos) << Algo;
  }
  // Spot-check the exact escapes for the quote and backslash labels.
  EXPECT_NE(core::usageChangeToJson(changeFor("AES\"CBC\"", "x"))
                .find("arg1:AES\\\"CBC\\\""),
            std::string::npos);
  EXPECT_NE(core::usageChangeToJson(changeFor("AES\\ECB\\NoPad", "x"))
                .find("arg1:AES\\\\ECB\\\\NoPad"),
            std::string::npos);
  // UTF-8 passes through verbatim.
  EXPECT_NE(core::usageChangeToJson(changeFor("ключ-π-鍵", "x"))
                .find("ключ-π-鍵"),
            std::string::npos);
}

TEST(AdversarialLabels, JsonRoundTripPreservesRenderedPaths) {
  // The JSON "removed" entry for a hostile label, unescaped again, is
  // exactly the interner's rendered path.
  UsageChange Change = changeFor("{\"mode\": [1,2]}", "AES");
  std::string Json = core::usageChangeToJson(Change);
  std::string Rendered = Change.pathString(Change.Removed[0]);
  EXPECT_EQ(JsonWriter::escape(Rendered),
            Json.substr(Json.find("\"removed\":[\"") + 12,
                        JsonWriter::escape(Rendered).size()));
}

TEST(AdversarialLabels, DendrogramDotEscapesLeafLabels) {
  std::vector<UsageChange> Changes = {
      changeFor("AES\"CBC\"", "AES/GCM/NoPadding"),
      changeFor("AES\\ECB\\NoPad", "AES/GCM/NoPadding"),
      changeFor("line1\nline2", "AES/GCM/NoPadding"),
      changeFor("ключ-π-鍵", "AES/GCM/NoPadding"),
  };
  cluster::Dendrogram Tree = cluster::clusterUsageChanges(Changes);
  std::string Dot = cluster::toDot(
      Tree, [&](std::size_t Item) { return Changes[Item].str(); });

  // Every label attribute line is quote-balanced: an unescaped quote
  // from a hostile label would break the attribute in half.
  std::size_t Pos = 0;
  while ((Pos = Dot.find("label=\"", Pos)) != std::string::npos) {
    Pos += 7;
    bool Closed = false;
    while (Pos < Dot.size()) {
      if (Dot[Pos] == '\\')
        Pos += 2;
      else if (Dot[Pos] == '"') {
        Closed = true;
        break;
      } else {
        EXPECT_NE(Dot[Pos], '\n') << "raw newline inside DOT label";
        ++Pos;
      }
    }
    EXPECT_TRUE(Closed);
  }
  // The escaped forms are present; non-ASCII passes through.
  EXPECT_NE(Dot.find("AES\\\"CBC\\\""), std::string::npos);
  EXPECT_NE(Dot.find("AES\\\\ECB\\\\NoPad"), std::string::npos);
  EXPECT_NE(Dot.find("line1\\nline2"), std::string::npos);
  EXPECT_NE(Dot.find("ключ-π-鍵"), std::string::npos);
}
