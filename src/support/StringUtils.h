//===- support/StringUtils.h - Small string helpers ----------------------===//
//
// Part of the DiffCode project, a reproduction of "Inferring Crypto API
// Rules from Code Changes" (PLDI'18).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// String helpers shared across the project: split/join/trim and a generic
/// Levenshtein edit distance. The clustering metric (Section 4.3 of the
/// paper) needs Levenshtein both over characters (string labels) and over
/// opaque single-unit tokens (method names, integers, abstract bytes); the
/// generic template covers both.
///
//===----------------------------------------------------------------------===//

#ifndef DIFFCODE_SUPPORT_STRINGUTILS_H
#define DIFFCODE_SUPPORT_STRINGUTILS_H

#include <algorithm>
#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace diffcode {

/// Splits \p Text on \p Sep; empty pieces are kept.
std::vector<std::string> split(std::string_view Text, char Sep);

/// Joins \p Parts with \p Sep between consecutive elements.
std::string join(const std::vector<std::string> &Parts,
                 std::string_view Sep);

/// Strips ASCII whitespace from both ends.
std::string_view trim(std::string_view Text);

/// Replaces every occurrence of \p From in \p Text by \p To.
std::string replaceAll(std::string Text, std::string_view From,
                       std::string_view To);

/// Generic Levenshtein distance over random-access sequences. Each element
/// counts as one unit for insert/delete/substitute.
template <typename Seq> std::size_t levenshtein(const Seq &A, const Seq &B) {
  const std::size_t N = A.size(), M = B.size();
  if (N == 0)
    return M;
  if (M == 0)
    return N;
  std::vector<std::size_t> Prev(M + 1), Cur(M + 1);
  for (std::size_t J = 0; J <= M; ++J)
    Prev[J] = J;
  for (std::size_t I = 1; I <= N; ++I) {
    Cur[0] = I;
    for (std::size_t J = 1; J <= M; ++J) {
      std::size_t Sub = Prev[J - 1] + (A[I - 1] == B[J - 1] ? 0 : 1);
      Cur[J] = std::min({Prev[J] + 1, Cur[J - 1] + 1, Sub});
    }
    std::swap(Prev, Cur);
  }
  return Prev[M];
}

/// Levenshtein similarity ratio `1 - lev/max(|A|,|B|)` in [0,1]; two empty
/// sequences are identical (ratio 1).
template <typename Seq> double levenshteinRatio(const Seq &A, const Seq &B) {
  std::size_t MaxLen = std::max(A.size(), B.size());
  if (MaxLen == 0)
    return 1.0;
  return 1.0 - static_cast<double>(levenshtein(A, B)) /
                   static_cast<double>(MaxLen);
}

} // namespace diffcode

#endif // DIFFCODE_SUPPORT_STRINGUTILS_H
