//===- service/AnalysisSession.cpp -----------------------------------------===//

#include "service/AnalysisSession.h"

#include "cluster/Distance.h"
#include "core/ReportWriter.h"
#include "support/ThreadPool.h"

#include <algorithm>
#include <utility>

using namespace diffcode;
using namespace diffcode::service;

/// Per-class incremental clustering state. Kept items are append-only
/// across ingests (fsame/fadd/frem are per-item and fdup keeps *first*
/// occurrences, so appending changes never evicts a survivor), which is
/// what makes a persistent pair table sound: old pairs stay valid
/// forever, an ingest only adds new rows.
struct AnalysisSession::ClassState {
  /// Feature signature (exact Removed/Added id vectors) -> dense
  /// signature id. fdup guarantees Kept signatures are distinct within a
  /// class, so a signature id identifies exactly one kept item for the
  /// session's lifetime. Ids are internal bookkeeping only — they never
  /// reach the report, so their dependence on interner id values is fine
  /// (support/Interner.h determinism contract).
  std::map<std::pair<std::vector<support::PathId>, std::vector<support::PathId>>,
           std::uint32_t>
      SigIds;
  /// (lo signature id << 32 | hi) -> usageDist. Distances depend only on
  /// the two feature sets, so the table survives any amount of
  /// re-filtering.
  std::unordered_map<std::uint64_t, double> PairDist;

  std::uint32_t idFor(const usage::UsageChange &Change) {
    auto It = SigIds.emplace(std::make_pair(Change.Removed, Change.Added),
                             std::uint32_t(SigIds.size()));
    return It.first->second;
  }

  static std::uint64_t pairKey(std::uint32_t A, std::uint32_t B) {
    if (A > B)
      std::swap(A, B);
    return (std::uint64_t(A) << 32) | B;
  }
};

namespace {

/// FNV-1a-style scope key for a class name — the exact expression
/// DiffCode::clusterClass uses, so the incremental cluster step evaluates
/// fault points under the identical scope.
std::uint64_t classScopeKey(const std::string &Name) {
  std::uint64_t Key = 0xcbf29ce484222325ull;
  for (char C : Name)
    Key = (Key ^ static_cast<unsigned char>(C)) * 0x100000001b3ull;
  return Key;
}

/// Strips everything a cache hit must re-stamp: provenance and the
/// ground-truth label are properties of the *occurrence*, not the
/// content.
void neutralizeRecord(core::ChangeRecord &Record) {
  Record.Origin.clear();
  Record.GroundTruthKind.clear();
  for (auto &[Class, Changes] : Record.PerClass)
    for (usage::UsageChange &C : Changes)
      C.Origin.clear();
}

void stampRecord(core::ChangeRecord &Record, const corpus::CodeChange &Change) {
  Record.Origin = Change.origin();
  Record.GroundTruthKind = Change.Kind;
  for (auto &[Class, Changes] : Record.PerClass)
    for (usage::UsageChange &C : Changes)
      C.Origin = Record.Origin;
}

/// Folds the knobs that change what analysis produces for given source
/// bytes. Seeding the content hashes with this keeps records from one
/// limit configuration from ever aliasing another's.
std::uint64_t configFingerprint(const core::PipelineConfig &Config) {
  std::uint64_t F = 0x6469666663646531ull; // "diffcde1"
  auto Fold = [&F](std::uint64_t V) { F = support::faultMix(F ^ V); };
  Fold(Config.Limits.Parse.MaxTokens);
  Fold(Config.Limits.Parse.MaxNestingDepth);
  Fold(static_cast<std::uint64_t>(Config.Limits.Analysis.Abstraction));
  Fold(Config.Limits.Analysis.MaxStatesPerEntry);
  Fold(Config.Limits.Analysis.MaxInlineDepth);
  Fold(Config.Limits.Analysis.Fuel);
  Fold(Config.Limits.Analysis.MaxObjects);
  Fold(Config.Limits.DagDepth);
  return F;
}

/// True when an armed campaign could fire inside per-change analysis or
/// clustering. Serving such work from a cache would skip fault points a
/// cold run evaluates, so the session must run cold inside to stay
/// byte-identical. ServiceHash itself is exempt by design (it fires *at*
/// the cache, to attack key selectivity), and the Proc* sites only exist
/// inside exec workers the session never spawns.
bool cachingSafeUnder(const support::FaultPlan &Plan) {
  const std::uint32_t UnsafeSites =
      support::faultSiteBit(support::FaultSite::Parser) |
      support::faultSiteBit(support::FaultSite::Interpreter) |
      support::faultSiteBit(support::FaultSite::Hungarian) |
      support::faultSiteBit(support::FaultSite::Clustering);
  return !(Plan.enabled() && (Plan.SiteMask & UnsafeSites) != 0);
}

} // namespace

std::size_t
AnalysisSession::CacheKeyHash::operator()(const CacheKey &K) const {
  std::uint64_t H = support::faultMix(K.H1 ^ support::faultMix(K.H2));
  H = support::faultMix(H ^ K.OldLen ^ (K.NewLen << 20));
  return static_cast<std::size_t>(H);
}

AnalysisSession::AnalysisSession(const apimodel::CryptoApiModel &Api,
                                 SessionOptions Options)
    : Opts(std::move(Options)), System(Api, Opts.Config),
      TargetClasses(Opts.TargetClasses.empty() ? Api.targetClasses()
                                               : Opts.TargetClasses),
      ConfigFingerprint(configFingerprint(Opts.Config)),
      CachingSafe(cachingSafeUnder(Opts.Config.Faults)) {
  Report.Labels = System.labels();
  // Start from the empty-corpus report a cold run over zero changes
  // produces: one ClassReport per target class (empty filter result,
  // empty tree) plus the all-zero health block.
  for (const std::string &Class : TargetClasses) {
    Report.PerClass.push_back(System.filterClass({}, Class));
    Classes.push_back(std::make_unique<ClassState>());
  }
  core::computeCorpusHealth(Report);
}

AnalysisSession::~AnalysisSession() = default;

AnalysisSession::CacheKey
AnalysisSession::keyFor(const corpus::CodeChange &Change) const {
  CacheKey K;
  K.OldLen = Change.OldCode.size();
  K.NewLen = Change.NewCode.size();
  // Two byte-wise hashes from different families (FNV-1a and a
  // golden-ratio multiply) over the same framed input. FNV variants that
  // differ only in seed collide together, so the second hash must mix
  // differently, not just start differently.
  std::uint64_t H1 = 0xcbf29ce484222325ull ^ support::faultMix(ConfigFingerprint);
  std::uint64_t H2 =
      0x9e3779b97f4a7c15ull ^ support::faultMix(ConfigFingerprint + 1);
  auto Feed = [&H1, &H2](std::uint64_t Word) {
    for (unsigned I = 0; I < 8; ++I) {
      std::uint8_t Byte = (Word >> (I * 8)) & 0xff;
      H1 = (H1 ^ Byte) * 0x100000001b3ull;
      H2 = (H2 ^ Byte) * 0x9e3779b97f4a7c15ull + 0x7f4a7c15ull;
    }
  };
  auto FeedBytes = [&H1, &H2](const std::string &S) {
    for (unsigned char Byte : S) {
      H1 = (H1 ^ Byte) * 0x100000001b3ull;
      H2 = (H2 ^ Byte) * 0x9e3779b97f4a7c15ull + 0x7f4a7c15ull;
    }
  };
  Feed(K.OldLen);
  FeedBytes(Change.OldCode);
  Feed(K.NewLen);
  FeedBytes(Change.NewCode);
  // The collision campaign: under an armed ServiceHash site the primary
  // hash collapses to a constant and every entry lands in one H1 bucket —
  // the full key must still discriminate via H2 + lengths.
  if (support::faultPoint(support::FaultSite::ServiceHash, H1))
    H1 = 0;
  K.H1 = H1;
  K.H2 = H2;
  return K;
}

IngestStats
AnalysisSession::ingest(const std::vector<corpus::CodeChange> &Changes) {
  obs::Span IngestSpan(Opts.Metrics ? &Opts.Metrics->Trace : nullptr,
                       "session.ingest");
  IngestStats Stats;
  Stats.Ingested = Changes.size();
  const std::size_t FirstNewRecord = Report.Changes.size();
  const support::FaultPlan &Faults = Opts.Config.Faults;

  // Phase 1 — key every change serially in global-index order and decide
  // how its record materializes. Serial keying keeps hit/miss (and
  // therefore FIFO insertion order) a pure function of the ingest
  // sequence, independent of thread count.
  enum class Kind { Miss, Hit, DupOfMiss };
  struct Pending {
    CacheKey Key;
    Kind How = Kind::Miss;
    std::size_t FirstIndex = 0; ///< Batch index of the miss a dup copies.
  };
  std::vector<Pending> Batch(Changes.size());
  std::unordered_map<CacheKey, std::size_t, CacheKeyHash> FirstInBatch;
  for (std::size_t I = 0; I < Changes.size(); ++I) {
    support::FaultScope Scope(&Faults, FirstNewRecord + I);
    Pending &P = Batch[I];
    P.Key = keyFor(Changes[I]);
    if (!CachingSafe)
      continue; // analyze everything cold; never touch the memo table
    if (Cache.count(P.Key)) {
      P.How = Kind::Hit;
    } else if (auto It = FirstInBatch.find(P.Key); It != FirstInBatch.end()) {
      // Same content twice in one batch: the first occurrence is being
      // analyzed right now, so copy its record instead of re-analyzing.
      P.How = Kind::DupOfMiss;
      P.FirstIndex = It->second;
    } else {
      FirstInBatch.emplace(P.Key, I);
    }
  }

  // Phase 2 — analyze the misses in parallel, each under the fault scope
  // of its *global* corpus index: a cold run over the whole accumulated
  // change list scopes change G with key G, so the session must too for
  // armed campaigns to land identically.
  Report.Changes.resize(FirstNewRecord + Changes.size());
  std::vector<std::size_t> Misses;
  for (std::size_t I = 0; I < Changes.size(); ++I)
    if (Batch[I].How == Kind::Miss)
      Misses.push_back(I);
  if (!Misses.empty()) {
    unsigned Threads =
        std::min<unsigned>(support::resolveThreads(Opts.Config.Threads),
                           std::max<std::size_t>(Misses.size(), 1));
    support::Interner &Table = *System.labels();
    support::ThreadPool Pool(Threads);
    Pool.parallelForChunked(
        Misses.size(), 1, [&](std::size_t Begin, std::size_t Stop) {
          for (std::size_t M = Begin; M < Stop; ++M) {
            std::size_t I = Misses[M];
            support::FaultScope Scope(&Faults, FirstNewRecord + I);
            Report.Changes[FirstNewRecord + I] = System.processChange(
                Changes[I], TargetClasses, Opts.ClassifyWith, Table);
          }
        });
  }

  // Phase 3 — serially fill hits and populate the memo table in batch
  // order (deterministic eviction order falls out of insertion order).
  for (std::size_t I = 0; I < Changes.size(); ++I) {
    core::ChangeRecord &Slot = Report.Changes[FirstNewRecord + I];
    switch (Batch[I].How) {
    case Kind::Miss:
      ++Stats.CacheMisses;
      if (CachingSafe) {
        core::ChangeRecord Neutral = Slot;
        neutralizeRecord(Neutral);
        Cache.emplace(Batch[I].Key, std::move(Neutral));
        CacheOrder.push_back(Batch[I].Key);
      }
      break;
    case Kind::Hit:
      ++Stats.CacheHits;
      Slot = Cache.find(Batch[I].Key)->second;
      stampRecord(Slot, Changes[I]);
      break;
    case Kind::DupOfMiss:
      ++Stats.CacheHits;
      Slot = Report.Changes[FirstNewRecord + Batch[I].FirstIndex];
      stampRecord(Slot, Changes[I]);
      break;
    }
  }
  if (Opts.MaxCachedChanges > 0)
    while (Cache.size() > Opts.MaxCachedChanges) {
      Cache.erase(CacheOrder.front());
      CacheOrder.pop_front();
      ++Stats.Evictions;
    }

  // Phase 4 — repair exactly the classes the new records contribute to;
  // every other ClassReport is already byte-for-byte what a cold run
  // would rebuild (its inputs did not change).
  for (std::size_t C = 0; C < TargetClasses.size(); ++C) {
    bool Touched = false;
    for (std::size_t R = FirstNewRecord; R < Report.Changes.size() && !Touched;
         ++R)
      Touched = Report.Changes[R].PerClass.count(TargetClasses[C]) > 0;
    if (Touched) {
      repairClass(C, FirstNewRecord, Stats);
      ++Stats.ClassesRepaired;
    } else {
      ++Stats.ClassesReused;
    }
  }

  core::computeCorpusHealth(Report);

  ++Ingests;
  Lifetime.Ingested += Stats.Ingested;
  Lifetime.CacheHits += Stats.CacheHits;
  Lifetime.CacheMisses += Stats.CacheMisses;
  Lifetime.Evictions += Stats.Evictions;
  Lifetime.ClassesRepaired += Stats.ClassesRepaired;
  Lifetime.ClassesReused += Stats.ClassesReused;
  Lifetime.PairsComputed += Stats.PairsComputed;
  Lifetime.PairsReused += Stats.PairsReused;
  recordMetrics(Stats);
  return Stats;
}

void AnalysisSession::repairClass(std::size_t ClassIndex,
                                  std::size_t FirstNewRecord,
                                  IngestStats &Stats) {
  core::ClassReport &Class = Report.PerClass[ClassIndex];

  // Gather: AllChanges is append-only in record order, so extending it
  // with the new records' contributions reproduces what filterClass
  // would gather from scratch.
  for (std::size_t R = FirstNewRecord; R < Report.Changes.size(); ++R) {
    auto It = Report.Changes[R].PerClass.find(Class.TargetClass);
    if (It == Report.Changes[R].PerClass.end())
      continue;
    Class.AllChanges.insert(Class.AllChanges.end(), It->second.begin(),
                            It->second.end());
  }
  // Filter: a full linear re-run. Incrementalizing fdup's seen-set is
  // possible but the filters are a rounding error next to clustering.
  Class.Filtered = core::applyFilters(Class.AllChanges);

  if (!Opts.BuildDendrograms)
    return;

  // Cold fallbacks: the sharded engine grafts shard trees (no clean pair
  // seam), and armed analysis campaigns must evaluate every fault point
  // a cold run would.
  if (!CachingSafe || Opts.Config.Sharding.Enabled) {
    System.clusterClass(Class);
    return;
  }

  Class.Tree = cluster::Dendrogram();
  Class.ClusteringError.clear();
  Class.Sharding = cluster::ShardingStats();
  const std::vector<usage::UsageChange> &Kept = Class.Filtered.Kept;
  if (Kept.empty())
    return;

  // Incremental re-cluster: rebuild the dense matrix from the persisted
  // pair table, computing only pairs never seen before (for an append
  // ingest that is one thin border strip of the matrix), then hand it to
  // the same agglomeration the batch engine uses. usageDist is a pure
  // function of the two feature sets and UsageDistCache is bit-identical
  // to it, so every looked-up entry matches what clusterUsageChanges
  // would have computed — and identical matrices agglomerate into
  // identical dendrograms.
  ClassState &State = *Classes[ClassIndex];
  const std::size_t N = Kept.size();
  std::vector<std::uint32_t> Sig(N);
  for (std::size_t I = 0; I < N; ++I)
    Sig[I] = State.idFor(Kept[I]);

  std::vector<double> Matrix(N * N, 0.0);
  std::vector<std::pair<std::uint32_t, std::uint32_t>> MissingPairs;
  for (std::size_t I = 0; I < N; ++I)
    for (std::size_t J = I + 1; J < N; ++J) {
      auto It = State.PairDist.find(ClassState::pairKey(Sig[I], Sig[J]));
      if (It != State.PairDist.end()) {
        Matrix[I * N + J] = Matrix[J * N + I] = It->second;
        ++Stats.PairsReused;
      } else {
        MissingPairs.emplace_back(std::uint32_t(I), std::uint32_t(J));
      }
    }

  if (!MissingPairs.empty()) {
    std::vector<double> Fresh(MissingPairs.size());
    unsigned Threads = std::min<unsigned>(
        support::resolveThreads(Opts.Config.Clustering.Threads),
        std::max<std::size_t>(MissingPairs.size(), 1));
    support::ThreadPool Pool(Threads);
    Pool.parallelForChunked(
        MissingPairs.size(), 64, [&](std::size_t Begin, std::size_t Stop) {
          for (std::size_t P = Begin; P < Stop; ++P)
            Fresh[P] = cluster::usageDist(Kept[MissingPairs[P].first],
                                          Kept[MissingPairs[P].second]);
        });
    for (std::size_t P = 0; P < MissingPairs.size(); ++P) {
      auto [I, J] = MissingPairs[P];
      Matrix[I * N + J] = Matrix[J * N + I] = Fresh[P];
      State.PairDist.emplace(ClassState::pairKey(Sig[I], Sig[J]), Fresh[P]);
    }
    Stats.PairsComputed += MissingPairs.size();
  }

  // Same fault scope and same containment shape as DiffCode::clusterClass
  // (with CachingSafe only disarmed-or-ServiceHash plans reach here, so
  // the scope is inert — kept for exactness).
  support::FaultScope Scope(&Opts.Config.Faults,
                            classScopeKey(Class.TargetClass));
  try {
    Class.Tree = cluster::agglomerateDistanceMatrix(
        N, std::move(Matrix), Opts.Config.Clustering.Algo);
  } catch (const std::exception &E) {
    Class.Tree = cluster::Dendrogram();
    Class.Sharding = cluster::ShardingStats();
    Class.ClusteringError = E.what();
  }
}

std::string AnalysisSession::reportJson() const {
  return core::corpusReportToJson(Report);
}

SessionStats AnalysisSession::stats() const {
  SessionStats Out;
  Out.TotalChanges = Report.Changes.size();
  Out.Ingests = Ingests;
  Out.CachedRecords = Cache.size();
  Out.Lifetime = Lifetime;
  return Out;
}

void AnalysisSession::recordMetrics(const IngestStats &Stats) const {
  if (!Opts.Metrics)
    return;
  obs::Registry &R = Opts.Metrics->Metrics;
  R.counter("service.ingests").add(1);
  R.counter("service.changes").add(Stats.Ingested);
  R.counter("service.cache.hits").add(Stats.CacheHits);
  R.counter("service.cache.misses").add(Stats.CacheMisses);
  R.counter("service.cache.evictions").add(Stats.Evictions);
  R.counter("service.classes.repaired").add(Stats.ClassesRepaired);
  R.counter("service.classes.reused").add(Stats.ClassesReused);
  R.counter("service.pairs.computed").add(Stats.PairsComputed);
  R.counter("service.pairs.reused").add(Stats.PairsReused);
  R.gauge("service.cache.size").set(std::int64_t(Cache.size()));
}
