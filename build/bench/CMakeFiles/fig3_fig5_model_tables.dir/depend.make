# Empty dependencies file for fig3_fig5_model_tables.
# This may be replaced when dependencies are built.
