file(REMOVE_RECURSE
  "CMakeFiles/fig9_rule_catalog.dir/fig9_rule_catalog.cpp.o"
  "CMakeFiles/fig9_rule_catalog.dir/fig9_rule_catalog.cpp.o.d"
  "fig9_rule_catalog"
  "fig9_rule_catalog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_rule_catalog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
