# Empty dependencies file for fig10_rule_violations.
# This may be replaced when dependencies are built.
