//===- cluster/HierarchicalClustering.cpp ----------------------------------===//

#include "cluster/HierarchicalClustering.h"

#include "cluster/Distance.h"

#include <algorithm>
#include <cassert>
#include <limits>

using namespace diffcode;
using namespace diffcode::cluster;

void Dendrogram::collectLeaves(int Index, std::vector<std::size_t> &Out) const {
  const Node &N = Nodes[Index];
  if (N.isLeaf()) {
    Out.push_back(N.Item);
    return;
  }
  collectLeaves(N.Left, Out);
  collectLeaves(N.Right, Out);
}

std::vector<std::vector<std::size_t>> Dendrogram::cut(double Threshold) const {
  std::vector<std::vector<std::size_t>> Clusters;
  if (Nodes.empty())
    return Clusters;

  // Walk down from the root; a subtree whose merge height is within the
  // threshold becomes one flat cluster.
  std::vector<int> Work = {Root};
  while (!Work.empty()) {
    int Index = Work.back();
    Work.pop_back();
    const Node &N = Nodes[Index];
    if (N.isLeaf() || N.Height <= Threshold) {
      Clusters.emplace_back();
      collectLeaves(Index, Clusters.back());
      continue;
    }
    Work.push_back(N.Left);
    Work.push_back(N.Right);
  }
  std::stable_sort(Clusters.begin(), Clusters.end(),
                   [](const auto &A, const auto &B) {
                     return A.size() > B.size();
                   });
  return Clusters;
}

std::string Dendrogram::render(
    const std::function<std::string(std::size_t)> &LeafLabel) const {
  std::string Out;
  if (Nodes.empty())
    return Out;

  std::function<void(int, std::string, bool)> Walk =
      [&](int Index, std::string Prefix, bool IsLast) {
        const Node &N = Nodes[Index];
        std::string Branch = Prefix + (IsLast ? "`-- " : "|-- ");
        std::string ChildPrefix = Prefix + (IsLast ? "    " : "|   ");
        if (N.isLeaf()) {
          std::string Label = LeafLabel(N.Item);
          // Indent continuation lines of multi-line labels.
          bool First = true;
          std::size_t Start = 0;
          while (Start <= Label.size()) {
            std::size_t End = Label.find('\n', Start);
            std::string Line =
                Label.substr(Start, End == std::string::npos
                                        ? std::string::npos
                                        : End - Start);
            if (!Line.empty() || First)
              Out += (First ? Branch : ChildPrefix) + Line + "\n";
            First = false;
            if (End == std::string::npos)
              break;
            Start = End + 1;
          }
          return;
        }
        char Buf[32];
        std::snprintf(Buf, sizeof(Buf), "%.3f", N.Height);
        Out += Branch + "[" + Buf + "]\n";
        Walk(N.Left, ChildPrefix, false);
        Walk(N.Right, ChildPrefix, true);
      };
  Walk(Root, "", true);
  return Out;
}

Dendrogram diffcode::cluster::agglomerativeCluster(
    std::size_t NumItems,
    const std::function<double(std::size_t, std::size_t)> &Dist) {
  Dendrogram Tree;
  Tree.NumLeaves = NumItems;
  if (NumItems == 0)
    return Tree;

  // Leaves.
  for (std::size_t I = 0; I < NumItems; ++I) {
    Dendrogram::Node Leaf;
    Leaf.Item = I;
    Tree.Nodes.push_back(Leaf);
  }
  if (NumItems == 1) {
    Tree.Root = 0;
    return Tree;
  }

  // Precompute the item distance matrix once.
  std::vector<std::vector<double>> D(NumItems, std::vector<double>(NumItems));
  for (std::size_t I = 0; I < NumItems; ++I)
    for (std::size_t J = I + 1; J < NumItems; ++J)
      D[I][J] = D[J][I] = Dist(I, J);

  // Active clusters: tree-node index + member items.
  struct Cluster {
    int NodeIndex;
    std::vector<std::size_t> Members;
  };
  std::vector<Cluster> Active;
  for (std::size_t I = 0; I < NumItems; ++I)
    Active.push_back({static_cast<int>(I), {I}});

  auto Linkage = [&](const Cluster &X, const Cluster &Y) {
    double Max = 0.0;
    for (std::size_t A : X.Members)
      for (std::size_t B : Y.Members)
        Max = std::max(Max, D[A][B]);
    return Max;
  };

  while (Active.size() > 1) {
    double BestDist = std::numeric_limits<double>::infinity();
    std::size_t BestI = 0, BestJ = 1;
    for (std::size_t I = 0; I < Active.size(); ++I)
      for (std::size_t J = I + 1; J < Active.size(); ++J) {
        double L = Linkage(Active[I], Active[J]);
        if (L < BestDist) {
          BestDist = L;
          BestI = I;
          BestJ = J;
        }
      }

    Dendrogram::Node Merge;
    Merge.Left = Active[BestI].NodeIndex;
    Merge.Right = Active[BestJ].NodeIndex;
    Merge.Height = BestDist;
    int MergedIndex = static_cast<int>(Tree.Nodes.size());
    Tree.Nodes.push_back(Merge);

    Cluster Combined;
    Combined.NodeIndex = MergedIndex;
    Combined.Members = Active[BestI].Members;
    Combined.Members.insert(Combined.Members.end(),
                            Active[BestJ].Members.begin(),
                            Active[BestJ].Members.end());
    Active.erase(Active.begin() + BestJ);
    Active.erase(Active.begin() + BestI);
    Active.push_back(std::move(Combined));
  }

  Tree.Root = Active.front().NodeIndex;
  return Tree;
}

Dendrogram diffcode::cluster::clusterUsageChanges(
    const std::vector<usage::UsageChange> &Changes) {
  return agglomerativeCluster(Changes.size(),
                              [&](std::size_t I, std::size_t J) {
                                return usageDist(Changes[I], Changes[J]);
                              });
}
