//===- core/Filters.cpp ----------------------------------------------------===//

#include "core/Filters.h"

using namespace diffcode;
using namespace diffcode::core;
using namespace diffcode::usage;

const char *diffcode::core::filterStageName(FilterStage Stage) {
  switch (Stage) {
  case FilterStage::Kept:
    return "kept";
  case FilterStage::FSame:
    return "fsame";
  case FilterStage::FAdd:
    return "fadd";
  case FilterStage::FRem:
    return "frem";
  case FilterStage::FDup:
    return "fdup";
  }
  return "kept";
}

FilterStage diffcode::core::classifySolo(const UsageChange &Change) {
  if (Change.Removed.empty() && Change.Added.empty())
    return FilterStage::FSame;
  if (Change.Removed.empty())
    return FilterStage::FAdd;
  if (Change.Added.empty())
    return FilterStage::FRem;
  return FilterStage::Kept;
}

FilterResult
diffcode::core::applyFilters(const std::vector<UsageChange> &Changes) {
  FilterResult Result;
  Result.Total = Changes.size();
  Result.Outcome.reserve(Changes.size());

  std::size_t RemovedSame = 0, RemovedAdd = 0, RemovedRem = 0,
              RemovedDup = 0;
  for (const UsageChange &Change : Changes) {
    FilterStage Stage = classifySolo(Change);
    switch (Stage) {
    case FilterStage::FSame:
      ++RemovedSame;
      break;
    case FilterStage::FAdd:
      ++RemovedAdd;
      break;
    case FilterStage::FRem:
      ++RemovedRem;
      break;
    default: {
      // fdup: linear scan against the survivors; the post-filter scale is
      // small (paper: 186 changes overall).
      bool Duplicate = false;
      for (const UsageChange &Kept : Result.Kept)
        if (Kept.sameFeatures(Change)) {
          Duplicate = true;
          break;
        }
      if (Duplicate) {
        Stage = FilterStage::FDup;
        ++RemovedDup;
      } else {
        Result.Kept.push_back(Change);
      }
      break;
    }
    }
    Result.Outcome.push_back(Stage);
  }

  Result.AfterSame = Result.Total - RemovedSame;
  Result.AfterAdd = Result.AfterSame - RemovedAdd;
  Result.AfterRem = Result.AfterAdd - RemovedRem;
  Result.AfterDup = Result.AfterRem - RemovedDup;
  return Result;
}
