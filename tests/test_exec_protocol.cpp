//===- tests/test_exec_protocol.cpp - Wire format & protocol codecs --------===//
//
// The byte-level half of the supervised execution layer, tested without
// any subprocess: frame encode/decode across arbitrary chunk
// boundaries, corruption detection (magic, length, checksum,
// truncation), the message codecs, the cross-interner definition
// streaming that keeps reports id-value independent, and the POSIX
// pipe helpers (short-read/short-write loops, EPIPE-as-return-value).
//
//===----------------------------------------------------------------------===//

#include "core/DiffCode.h"
#include "core/ReportWriter.h"
#include "exec/Protocol.h"
#include "exec/Wire.h"
#include "support/FaultInjection.h"
#include "support/Process.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cerrno>
#include <stdexcept>
#include <string>
#include <thread>
#include <unistd.h>
#include <utility>
#include <vector>

using namespace diffcode;
using namespace diffcode::exec;

namespace {

usage::FeaturePath makePath(const std::string &Type, const std::string &Method,
                            unsigned ArgIndex, const std::string &Value,
                            bool IsString) {
  usage::FeaturePath Path;
  Path.push_back(usage::NodeLabel::root(Type));
  Path.push_back(usage::NodeLabel::method(Method));
  usage::NodeLabel Arg;
  Arg.K = usage::NodeLabel::Kind::Arg;
  Arg.ArgIndex = ArgIndex;
  Arg.ValueIsString = IsString;
  Arg.Text = Value;
  Path.push_back(Arg);
  return Path;
}

} // namespace

//===----------------------------------------------------------------------===//
// Wire primitives
//===----------------------------------------------------------------------===//

TEST(Wire, PrimitiveRoundTrip) {
  WireWriter W;
  W.u8(0xab);
  W.u32(0xdeadbeef);
  W.u64(0x0123456789abcdefULL);
  W.str("hello");
  W.str(std::string("nul\0byte", 8)); // embedded NUL survives
  W.str("");

  WireReader R(W.bytes());
  EXPECT_EQ(R.u8(), 0xab);
  EXPECT_EQ(R.u32(), 0xdeadbeefu);
  EXPECT_EQ(R.u64(), 0x0123456789abcdefULL);
  EXPECT_EQ(R.str(), "hello");
  EXPECT_EQ(R.str(), std::string_view("nul\0byte", 8));
  EXPECT_EQ(R.str(), "");
  EXPECT_TRUE(R.ok());
  EXPECT_TRUE(R.atEnd());
}

TEST(Wire, ReaderIsBoundsCheckedAndSticky) {
  WireWriter W;
  W.u32(7);
  WireReader R(W.bytes());
  EXPECT_EQ(R.u32(), 7u);
  EXPECT_TRUE(R.atEnd());
  // Past the end: zero values, ok() false, and it stays false.
  EXPECT_EQ(R.u64(), 0u);
  EXPECT_FALSE(R.ok());
  EXPECT_EQ(R.u32(), 0u);
  EXPECT_FALSE(R.atEnd());

  // A string whose length prefix overruns the buffer must not read past
  // the end.
  WireWriter W2;
  W2.u32(1000); // claims 1000 bytes; none follow
  WireReader R2(W2.bytes());
  EXPECT_EQ(R2.str(), "");
  EXPECT_FALSE(R2.ok());
}

TEST(Wire, FrameRoundTripAtEveryChunkSize) {
  std::string Stream = encodeFrame(1, "first payload") +
                       encodeFrame(2, "") +
                       encodeFrame(3, std::string(1000, 'x'));
  for (std::size_t Chunk : {std::size_t(1), std::size_t(7), Stream.size()}) {
    FrameDecoder D;
    std::vector<Frame> Frames;
    for (std::size_t Pos = 0; Pos < Stream.size(); Pos += Chunk) {
      D.feed(Stream.data() + Pos, std::min(Chunk, Stream.size() - Pos));
      while (auto F = D.next())
        Frames.push_back(std::move(*F));
    }
    ASSERT_EQ(Frames.size(), 3u) << "chunk size " << Chunk;
    EXPECT_EQ(Frames[0].Type, 1u);
    EXPECT_EQ(Frames[0].Payload, "first payload");
    EXPECT_EQ(Frames[1].Type, 2u);
    EXPECT_EQ(Frames[1].Payload, "");
    EXPECT_EQ(Frames[2].Payload, std::string(1000, 'x'));
    EXPECT_FALSE(D.bad());
    EXPECT_EQ(D.pendingBytes(), 0u);
  }
}

TEST(Wire, CorruptionIsDetectedAndSticky) {
  // Flipped payload byte -> checksum mismatch.
  {
    std::string F = encodeFrame(6, "payload bytes");
    F[WireHeaderBytes] ^= 0x01;
    FrameDecoder D;
    D.feed(F.data(), F.size());
    EXPECT_FALSE(D.next().has_value());
    EXPECT_TRUE(D.bad());
    EXPECT_NE(D.error().find("checksum"), std::string::npos);
    // Sticky: feeding a pristine frame afterwards cannot resynchronize.
    std::string Good = encodeFrame(1, "ok");
    D.feed(Good.data(), Good.size());
    EXPECT_FALSE(D.next().has_value());
    EXPECT_TRUE(D.bad());
  }
  // Bad magic.
  {
    std::string F = encodeFrame(6, "x");
    F[0] ^= 0xff;
    FrameDecoder D;
    D.feed(F.data(), F.size());
    EXPECT_FALSE(D.next().has_value());
    EXPECT_TRUE(D.bad());
    EXPECT_NE(D.error().find("magic"), std::string::npos);
  }
  // Insane length field.
  {
    std::string F = encodeFrame(6, "x");
    F[8] = F[9] = F[10] = F[11] = static_cast<char>(0xff);
    FrameDecoder D;
    D.feed(F.data(), F.size());
    EXPECT_FALSE(D.next().has_value());
    EXPECT_TRUE(D.bad());
    EXPECT_NE(D.error().find("oversized"), std::string::npos);
  }
  // Truncation is NOT an error (more bytes may come) but is visible.
  {
    std::string F = encodeFrame(6, "a longer payload");
    FrameDecoder D;
    D.feed(F.data(), F.size() / 2);
    EXPECT_FALSE(D.next().has_value());
    EXPECT_FALSE(D.bad());
    EXPECT_EQ(D.pendingBytes(), F.size() / 2);
  }
}

TEST(Wire, ChecksumIsFnv1a) {
  EXPECT_EQ(wireChecksum(""), 0x811c9dc5u);
  EXPECT_NE(wireChecksum("a"), wireChecksum("b"));
}

//===----------------------------------------------------------------------===//
// Message codecs
//===----------------------------------------------------------------------===//

TEST(Protocol, ControlFrameRoundTrip) {
  std::uint32_t BaseLabels = 0, BasePaths = 0;
  std::uint64_t TraceEpochNs = 0;
  EXPECT_TRUE(decodeHello(
      std::string_view(encodeHello(17, 5, 123456789)).substr(WireHeaderBytes),
      BaseLabels, BasePaths, TraceEpochNs));
  EXPECT_EQ(BaseLabels, 17u);
  EXPECT_EQ(BasePaths, 5u);
  EXPECT_EQ(TraceEpochNs, 123456789u);
  // An unobserved worker ships epoch 0.
  EXPECT_TRUE(decodeHello(
      std::string_view(encodeHello(0, 0, 0)).substr(WireHeaderBytes),
      BaseLabels, BasePaths, TraceEpochNs));
  EXPECT_EQ(TraceEpochNs, 0u);
  // A version-1 worker (no base counts) is refused, not misparsed.
  {
    WireWriter W;
    W.u32(1);
    EXPECT_FALSE(decodeHello(W.bytes(), BaseLabels, BasePaths, TraceEpochNs));
  }
  // A version-2 worker (base counts but no trace epoch) likewise.
  {
    WireWriter W;
    W.u32(2);
    W.u32(17);
    W.u32(5);
    EXPECT_FALSE(decodeHello(W.bytes(), BaseLabels, BasePaths, TraceEpochNs));
  }

  WorkUnit In;
  In.Id = 42;
  In.Attempt = 3;
  In.Indices = {7, 8, 9, 1ull << 40};
  std::string F = encodeWork(In);
  WorkUnit Out;
  ASSERT_TRUE(decodeWork(std::string_view(F).substr(WireHeaderBytes), Out));
  EXPECT_EQ(Out.Id, 42u);
  EXPECT_EQ(Out.Attempt, 3u);
  EXPECT_EQ(Out.Indices, In.Indices);

  std::uint64_t UnitId = 0;
  std::string Done = encodeUnitDone(99);
  ASSERT_TRUE(decodeUnitDone(std::string_view(Done).substr(WireHeaderBytes),
                             UnitId));
  EXPECT_EQ(UnitId, 99u);

  // Trailing garbage is a protocol error, not silently ignored.
  std::string Longer = std::string(F).substr(WireHeaderBytes) + "x";
  EXPECT_FALSE(decodeWork(Longer, Out));
}

TEST(Protocol, TelemetryRoundTrip) {
  obs::Registry Reg;
  Reg.counter("exec.changes", obs::Unit::None).add(7);
  Reg.gauge("exec.rss", obs::Unit::Bytes).max(1 << 20);
  obs::Histogram &H = Reg.histogram("exec.latency", obs::Unit::Nanoseconds);
  H.record(100);
  H.record(100000);

  std::vector<obs::Tracer::Event> Spans;
  Spans.push_back({"processChange", 1000, 500, 2, 0});
  Spans.push_back({"processChange", 2000, 300, 2, 0});

  std::string F = encodeTelemetry(4, Spans, Reg.snapshot());
  TelemetryFrame Out;
  ASSERT_TRUE(
      decodeTelemetry(std::string_view(F).substr(WireHeaderBytes), Out));
  EXPECT_EQ(Out.Incarnation, 4u);
  EXPECT_FALSE(Out.staleFor(4));
  EXPECT_TRUE(Out.staleFor(5)); // a frame from a dead incarnation
  ASSERT_EQ(Out.Spans.size(), 2u);
  EXPECT_EQ(Out.Spans[0].Name, "processChange");
  EXPECT_EQ(Out.Spans[0].StartNs, 1000u);
  EXPECT_EQ(Out.Spans[1].DurNs, 300u);
  EXPECT_EQ(Out.Spans[1].Tid, 2u);
  // The snapshot survives the wire byte-identically (JSON is the
  // canonical rendering).
  EXPECT_EQ(Out.Metrics.json(), Reg.snapshot().json());

  // An empty frame (no new spans, empty registry) is valid too.
  std::string Empty = encodeTelemetry(0, {}, obs::Snapshot());
  TelemetryFrame EmptyOut;
  ASSERT_TRUE(decodeTelemetry(
      std::string_view(Empty).substr(WireHeaderBytes), EmptyOut));
  EXPECT_TRUE(EmptyOut.Spans.empty());
  EXPECT_TRUE(EmptyOut.Metrics.Values.empty());

  // appendTelemetry coalesces into an existing buffer and decodes the
  // same as the standalone encoder.
  std::string Coalesced = encodeUnitDone(3);
  WireWriter Scratch;
  appendTelemetry(Coalesced, Scratch, 4, Spans, Reg.snapshot());
  EXPECT_EQ(Coalesced.substr(encodeUnitDone(3).size()), F);
}

TEST(Protocol, TelemetryRejectsHostilePayloads) {
  obs::Registry Reg;
  Reg.counter("a.count").add(1);
  Reg.histogram("b.hist").record(42);
  std::vector<obs::Tracer::Event> Spans;
  Spans.push_back({"span", 10, 5, 1, 0});
  std::string Payload = std::string(
      std::string_view(encodeTelemetry(1, Spans, Reg.snapshot()))
          .substr(WireHeaderBytes));
  TelemetryFrame Out;
  ASSERT_TRUE(decodeTelemetry(Payload, Out));

  // Truncation at every byte boundary fails cleanly.
  for (std::size_t Len = 0; Len < Payload.size(); ++Len)
    EXPECT_FALSE(decodeTelemetry(Payload.substr(0, Len), Out)) << Len;
  // Trailing bytes are a protocol error.
  EXPECT_FALSE(decodeTelemetry(Payload + "x", Out));

  // A span count larger than the bytes that follow must not balloon.
  {
    WireWriter W;
    W.u32(1);
    W.u32(0xffffffffu); // span count
    EXPECT_FALSE(decodeTelemetry(W.bytes(), Out));
  }

  // Out-of-range kind / unit / stability bytes.
  auto HostileMetric = [](std::uint8_t Kind, std::uint8_t Unit,
                          std::uint8_t Stability) {
    WireWriter W;
    W.u32(1); // incarnation
    W.u32(0); // no spans
    W.u32(1); // one metric
    W.str("m");
    W.u8(Kind);
    W.u8(Unit);
    W.u8(Stability);
    W.u64(0);
    return std::string(W.bytes());
  };
  EXPECT_FALSE(decodeTelemetry(HostileMetric(3, 0, 0), Out)); // kind
  EXPECT_FALSE(decodeTelemetry(HostileMetric(0, 9, 0), Out)); // unit
  EXPECT_FALSE(decodeTelemetry(HostileMetric(0, 0, 7), Out)); // stability
  ASSERT_TRUE(decodeTelemetry(HostileMetric(0, 0, 0), Out));

  // Metric names out of order (Snapshot::merge's precondition).
  {
    WireWriter W;
    W.u32(1);
    W.u32(0);
    W.u32(2);
    for (const char *Name : {"b", "a"}) {
      W.str(Name);
      W.u8(0);
      W.u8(0);
      W.u8(0);
      W.u64(0);
    }
    EXPECT_FALSE(decodeTelemetry(W.bytes(), Out));
  }

  // Histogram buckets: index past the fixed layout, and out of order.
  auto HostileBuckets = [](std::uint32_t I1, std::uint32_t I2) {
    WireWriter W;
    W.u32(1);
    W.u32(0);
    W.u32(1);
    W.str("h");
    W.u8(2); // histogram
    W.u8(0);
    W.u8(0);
    W.u64(2); // count
    W.u64(10); // sum
    W.u64(1); // min
    W.u64(9); // max
    W.u32(2); // two buckets
    W.u32(I1);
    W.u64(1);
    W.u32(I2);
    W.u64(1);
    return std::string(W.bytes());
  };
  EXPECT_FALSE(decodeTelemetry(HostileBuckets(1, 65), Out)); // past layout
  EXPECT_FALSE(decodeTelemetry(HostileBuckets(5, 5), Out)); // not ascending
  EXPECT_FALSE(decodeTelemetry(HostileBuckets(5, 3), Out)); // descending
  ASSERT_TRUE(decodeTelemetry(HostileBuckets(3, 5), Out));
}

TEST(Protocol, DefStreamingRemapsAcrossInterners) {
  // Worker side: intern paths in one table, stream defs.
  support::Interner WorkerTable;
  DefSender Defs(WorkerTable);
  std::vector<support::PathId> WorkerIds;
  WorkerIds.push_back(WorkerTable.path(
      makePath("javax.crypto.Cipher", "getInstance(String)", 0, "AES", true)));
  WorkerIds.push_back(WorkerTable.path(
      makePath("java.security.MessageDigest", "getInstance(String)", 0, "MD5",
               true)));
  std::string Stream;
  Defs.flush(Stream);
  // Incremental: a second flush with nothing new adds nothing...
  std::string Empty;
  Defs.flush(Empty);
  EXPECT_TRUE(Empty.empty());
  // ...and later interning flushes only the delta.
  WorkerIds.push_back(WorkerTable.path(
      makePath("javax.crypto.Cipher", "doFinal(byte[])", 0, "T", false)));
  Defs.flush(Stream);

  // Coordinator side: a parent table that already holds other content,
  // so the id values cannot possibly line up.
  support::Interner ParentTable;
  ParentTable.path(makePath("unrelated.Type", "m()", 0, "x", false));
  IdRemap Remap;
  FrameDecoder D;
  D.feed(Stream.data(), Stream.size());
  while (auto F = D.next()) {
    if (F->Type == static_cast<std::uint32_t>(FrameType::LabelDef))
      ASSERT_TRUE(Remap.applyLabelDef(F->Payload, ParentTable));
    else if (F->Type == static_cast<std::uint32_t>(FrameType::PathDef))
      ASSERT_TRUE(Remap.applyPathDef(F->Payload, ParentTable));
    else
      FAIL() << "unexpected frame type " << F->Type;
  }
  EXPECT_FALSE(D.bad());
  ASSERT_EQ(Remap.Paths.size(), WorkerTable.pathCount());

  // Remapped paths materialize byte-identically through the parent.
  for (support::PathId WorkerId : WorkerIds)
    EXPECT_EQ(ParentTable.pathString(Remap.Paths[WorkerId]),
              WorkerTable.pathString(WorkerId));
}

TEST(Protocol, InheritedBaseStreamsOnlyTheDelta) {
  // Fork hands the worker a copy-on-write snapshot of the parent table:
  // identical content, identical dense ids, up to the fork-time counts.
  // Interners assign ids deterministically, so interning the same
  // entries in the same order reproduces that snapshot exactly.
  auto Shared1 = makePath("javax.crypto.Cipher", "getInstance(String)", 0,
                          "AES", true);
  auto Shared2 = makePath("javax.net.ssl.SSLContext", "getInstance(String)",
                          0, "TLS", true);
  support::Interner ParentTable, WorkerTable;
  std::vector<support::PathId> SharedIds;
  for (const auto &P : {Shared1, Shared2}) {
    SharedIds.push_back(ParentTable.path(P));
    ASSERT_EQ(WorkerTable.path(P), SharedIds.back());
  }

  // DefSender constructed on the warm table: the base is the snapshot.
  DefSender Defs(WorkerTable);
  EXPECT_EQ(Defs.baseLabels(), WorkerTable.labelCount());
  EXPECT_EQ(Defs.basePaths(), SharedIds.size());

  // Nothing inherited is ever streamed...
  std::string Stream;
  Defs.flush(Stream);
  EXPECT_TRUE(Stream.empty());

  // ...only the delta the worker interns on top.
  support::PathId NewId = WorkerTable.path(
      makePath("javax.crypto.Cipher", "init(int,Key)", 1, "SecretKeySpec",
               false));
  Defs.flush(Stream);
  EXPECT_FALSE(Stream.empty());

  IdRemap Remap;
  Remap.BaseLabels = Defs.baseLabels();
  Remap.BasePaths = Defs.basePaths();
  FrameDecoder D;
  D.feed(Stream.data(), Stream.size());
  while (auto F = D.next()) {
    if (F->Type == static_cast<std::uint32_t>(FrameType::LabelDef))
      ASSERT_TRUE(Remap.applyLabelDef(F->Payload, ParentTable));
    else if (F->Type == static_cast<std::uint32_t>(FrameType::PathDef))
      ASSERT_TRUE(Remap.applyPathDef(F->Payload, ParentTable));
    else
      FAIL() << "unexpected frame type " << F->Type;
  }
  EXPECT_FALSE(D.bad());

  // Inherited ids map through the identity, new ids through the defs;
  // both materialize byte-identically in the parent.
  for (support::PathId Id : SharedIds) {
    support::PathId Parent = ~support::PathId(0);
    ASSERT_TRUE(Remap.mapPath(Id, Parent));
    EXPECT_EQ(Parent, Id);
    EXPECT_EQ(ParentTable.pathString(Parent), WorkerTable.pathString(Id));
  }
  support::PathId ParentNew = 0;
  ASSERT_TRUE(Remap.mapPath(NewId, ParentNew));
  EXPECT_EQ(ParentTable.pathString(ParentNew), WorkerTable.pathString(NewId));

  // Past-the-end ids are still protocol violations.
  support::PathId Bogus = 0;
  EXPECT_FALSE(Remap.mapPath(NewId + 1, Bogus));
  support::LabelId BogusLabel = 0;
  EXPECT_FALSE(
      Remap.mapLabel(static_cast<std::uint32_t>(WorkerTable.labelCount()),
                     BogusLabel));
}

TEST(Protocol, RemapRejectsProtocolViolations) {
  support::Interner Table;
  IdRemap Remap;
  // A path referencing a label id that was never defined.
  WireWriter W;
  W.u32(0); // worker path id 0 (dense: ok)
  W.u32(1); // one label
  W.u32(5); // ...which does not exist
  EXPECT_FALSE(Remap.applyPathDef(W.bytes(), Table));
  // A label def arriving out of dense order.
  WireWriter W2;
  W2.u32(3); // should be 0
  W2.u8(0);
  W2.u32(0);
  W2.u8(0);
  W2.str("T");
  EXPECT_FALSE(Remap.applyLabelDef(W2.bytes(), Table));
  // Truncated payloads.
  EXPECT_FALSE(Remap.applyLabelDef("ab", Table));
  EXPECT_FALSE(Remap.applyPathDef("", Table));
}

TEST(Protocol, ResultRoundTripAcrossInterners) {
  support::Interner WorkerTable;
  DefSender Defs(WorkerTable);

  core::ChangeRecord In;
  In.Origin = "projX@c3";
  In.GroundTruthKind = "fix:R1";
  In.Status = core::ChangeStatus::Degraded;
  In.StatusDetail = "parse diagnostics on old version";
  In.StepsUsed = 1234;
  In.PerClass["javax.crypto.Cipher"].push_back(usage::UsageChange::intern(
      WorkerTable, "javax.crypto.Cipher",
      {makePath("javax.crypto.Cipher", "getInstance(String)", 0, "DES", true)},
      {makePath("javax.crypto.Cipher", "getInstance(String)", 0, "AES", true)},
      "projX@c3"));
  In.PerClass["java.security.MessageDigest"] = {};
  In.Classification["R1"] = rules::ChangeClass::SecurityFix;
  In.Classification["R7"] = rules::ChangeClass::NonSemantic;

  std::string Stream;
  Defs.flush(Stream);
  Stream += encodeResult(17, In);

  support::Interner ParentTable;
  ParentTable.path(makePath("pad.Type", "pad()", 2, "pad", false));
  IdRemap Remap;
  FrameDecoder D;
  D.feed(Stream.data(), Stream.size());
  core::ChangeRecord Out;
  std::uint64_t Index = 0;
  bool GotResult = false;
  while (auto F = D.next()) {
    switch (static_cast<FrameType>(F->Type)) {
    case FrameType::LabelDef:
      ASSERT_TRUE(Remap.applyLabelDef(F->Payload, ParentTable));
      break;
    case FrameType::PathDef:
      ASSERT_TRUE(Remap.applyPathDef(F->Payload, ParentTable));
      break;
    case FrameType::Result:
      ASSERT_TRUE(decodeResult(F->Payload, Remap, ParentTable, Index, Out));
      GotResult = true;
      break;
    default:
      FAIL() << "unexpected frame type " << F->Type;
    }
  }
  ASSERT_TRUE(GotResult);
  EXPECT_EQ(Index, 17u);
  // The decoded record renders byte-identically (the JSON materializes
  // paths through the interner, so this proves the remap is faithful).
  EXPECT_EQ(core::changeRecordToJson(Out), core::changeRecordToJson(In));
  ASSERT_EQ(Out.PerClass.count("javax.crypto.Cipher"), 1u);
  EXPECT_EQ(Out.PerClass["javax.crypto.Cipher"][0].Table, &ParentTable);

  // Corrupted payload: flip the status byte to an invalid value.
  std::string Payload = std::string(
      std::string_view(encodeResult(17, In)).substr(WireHeaderBytes));
  core::ChangeRecord Dummy;
  EXPECT_FALSE(decodeResult(Payload.substr(0, Payload.size() / 2), Remap,
                            ParentTable, Index, Dummy));
}

//===----------------------------------------------------------------------===//
// ChangeStatus taxonomy
//===----------------------------------------------------------------------===//

TEST(ChangeStatusNames, RoundTripAllStatuses) {
  for (std::size_t I = 0; I < core::NumChangeStatuses; ++I) {
    core::ChangeStatus S = static_cast<core::ChangeStatus>(I);
    core::ChangeStatus Back;
    ASSERT_TRUE(core::changeStatusFromName(core::changeStatusName(S), Back))
        << core::changeStatusName(S);
    EXPECT_EQ(Back, S);
  }
  core::ChangeStatus Out;
  EXPECT_FALSE(core::changeStatusFromName("not-a-status", Out));
  EXPECT_FALSE(core::changeStatusFromName("", Out));
  // The supervised taxonomy's stable names.
  EXPECT_STREQ(core::changeStatusName(core::ChangeStatus::WorkerCrash),
               "worker-crash");
  EXPECT_STREQ(core::changeStatusName(core::ChangeStatus::WorkerTimeout),
               "worker-timeout");
  EXPECT_STREQ(core::changeStatusName(core::ChangeStatus::WorkerOom),
               "worker-oom");
}

//===----------------------------------------------------------------------===//
// Process-level fault sites (no subprocess: decision purity only)
//===----------------------------------------------------------------------===//

TEST(ProcFaultSites, NamedAndMaskable) {
  EXPECT_STREQ(support::faultSiteName(support::FaultSite::ProcKill),
               "proc-kill");
  EXPECT_STREQ(support::faultSiteName(support::FaultSite::ProcHang),
               "proc-hang");
  EXPECT_STREQ(support::faultSiteName(support::FaultSite::ProcSlowStart),
               "proc-slow-start");
  EXPECT_STREQ(support::faultSiteName(support::FaultSite::ProcFrameCorrupt),
               "proc-frame-corrupt");
  EXPECT_STREQ(support::faultSiteName(support::FaultSite::ProcOomExit),
               "proc-oom");
  // The default mask arms every site, including the process-level ones.
  support::FaultPlan Plan;
  Plan.Rate = 1.0;
  for (unsigned I = 0; I < support::NumFaultSites; ++I)
    EXPECT_TRUE(Plan.armed(static_cast<support::FaultSite>(I)));
  EXPECT_GE(support::FirstProcFaultSite, 4u);
}

TEST(ProcFaultSites, NestedScopesDecideIndependentlyAndRestore) {
  support::FaultPlan Plan;
  Plan.Seed = 11;
  Plan.Rate = 0.5;
  Plan.SiteMask = support::faultSiteBit(support::FaultSite::ProcKill) |
                  support::faultSiteBit(support::FaultSite::ProcHang);

  auto Decide = [](unsigned Key) {
    return std::make_pair(
        support::faultPoint(support::FaultSite::ProcKill, Key),
        support::faultPoint(support::FaultSite::ProcHang, Key));
  };

  // No scope installed: never fires.
  EXPECT_EQ(Decide(0), std::make_pair(false, false));

  std::vector<std::pair<bool, bool>> OuterFirst, OuterSecond, Inner;
  {
    support::FaultScope Outer(&Plan, /*ScopeKey=*/3);
    for (unsigned Key = 0; Key < 64; ++Key)
      OuterFirst.push_back(Decide(Key));
    {
      // A nested scope (a different change) decides independently...
      support::FaultScope Nested(&Plan, /*ScopeKey=*/4);
      for (unsigned Key = 0; Key < 64; ++Key)
        Inner.push_back(Decide(Key));
    }
    // ...and the outer scope's decisions are restored exactly.
    for (unsigned Key = 0; Key < 64; ++Key)
      OuterSecond.push_back(Decide(Key));
  }
  EXPECT_EQ(OuterFirst, OuterSecond);
  EXPECT_NE(OuterFirst, Inner); // 2^-128 false-failure odds; seed-stable
  // Rate 0.5 over 64 keys x 2 sites: both outcomes occur.
  bool AnyFired = false, AnyClean = false;
  for (auto [K, H] : OuterFirst) {
    AnyFired = AnyFired || K || H;
    AnyClean = AnyClean || (!K && !H);
  }
  EXPECT_TRUE(AnyFired);
  EXPECT_TRUE(AnyClean);
  // Scope gone: decisions stop firing again.
  EXPECT_EQ(Decide(0), std::make_pair(false, false));
}

//===----------------------------------------------------------------------===//
// POSIX pipe helpers
//===----------------------------------------------------------------------===//

TEST(ProcessHelpers, FullReadWriteAcrossPipeBuffer) {
  // 1 MiB through a ~64 KiB pipe: both sides must loop over short
  // transfers. Writer on a thread, reader on the test thread.
  support::Pipe P;
  const std::size_t Size = 1 << 20;
  std::string Sent(Size, '\0');
  for (std::size_t I = 0; I < Size; ++I)
    Sent[I] = static_cast<char>(I * 1315423911u >> 3);
  std::thread Writer([&] {
    EXPECT_EQ(support::writeFull(P.writeFd(), Sent.data(), Size),
              static_cast<ssize_t>(Size));
    P.closeWrite();
  });
  std::string Got(Size, '\0');
  EXPECT_EQ(support::readFull(P.readFd(), Got.data(), Size),
            static_cast<ssize_t>(Size));
  EXPECT_EQ(Got, Sent);
  // EOF after the writer closed: short count, not an error.
  char Extra;
  EXPECT_EQ(support::readFull(P.readFd(), &Extra, 1), 0);
  Writer.join();
}

TEST(ProcessHelpers, ClosedPeerIsEpipeNotSigpipe) {
  support::ScopedSigpipeIgnore Ignore;
  support::Pipe P;
  P.closeRead();
  char Byte = 'x';
  errno = 0;
  EXPECT_EQ(support::writeFull(P.writeFd(), &Byte, 1), -1);
  EXPECT_EQ(errno, EPIPE);
}

TEST(ProcessHelpers, SpawnWaitAndKill) {
  // Clean exit.
  pid_t Pid = support::spawnProcess([] { return 0; });
  ASSERT_GT(Pid, 0);
  support::ExitStatus ES = support::waitProcess(Pid);
  EXPECT_TRUE(ES.cleanExit());
  // Distinguished exit code.
  Pid = support::spawnProcess([] { return 86; });
  ASSERT_GT(Pid, 0);
  ES = support::waitProcess(Pid);
  EXPECT_EQ(ES.K, support::ExitStatus::Kind::Exited);
  EXPECT_EQ(ES.Code, 86);
  // Signal death.
  Pid = support::spawnProcess([]() -> int {
    for (;;)
      ::pause();
  });
  ASSERT_GT(Pid, 0);
  EXPECT_TRUE(support::killProcess(Pid, SIGKILL));
  ES = support::waitProcess(Pid);
  EXPECT_EQ(ES.K, support::ExitStatus::Kind::Signaled);
  EXPECT_EQ(ES.Code, SIGKILL);
  // An escaping exception is contained into exit code 125.
  Pid = support::spawnProcess([]() -> int { throw std::runtime_error("x"); });
  ASSERT_GT(Pid, 0);
  ES = support::waitProcess(Pid);
  EXPECT_EQ(ES.K, support::ExitStatus::Kind::Exited);
  EXPECT_EQ(ES.Code, 125);
}
