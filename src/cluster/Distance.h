//===- cluster/Distance.h - Path and usage-change metrics (Sec. 4.3) ------===//
//
// Part of the DiffCode project, a reproduction of "Inferring Crypto API
// Rules from Code Changes" (PLDI'18).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The three-layer distance of Section 4.3:
///
///   pathDist(p1, p2)    — common-prefix + Levenshtein-similarity ratio of
///                         the first diverging labels, normalized by the
///                         longer path;
///   pathsDist(F1, F2)   — min-cost matching of two path sets (Hungarian),
///                         unmatched paths pair with the empty path at
///                         distance 1, normalized by max(|F1|, |F2|)
///                         (normalization is our documented choice — the
///                         paper leaves the sum unnormalized);
///   usageDist(C1, C2)   — average of pathsDist over the removed and the
///                         added feature sets.
///
/// Label units follow the paper: characters for string constants; method
/// signatures, integers, bytes, and type names are single units.
///
//===----------------------------------------------------------------------===//

#ifndef DIFFCODE_CLUSTER_DISTANCE_H
#define DIFFCODE_CLUSTER_DISTANCE_H

#include "usage/UsageChange.h"

#include <vector>

namespace diffcode {
namespace cluster {

/// Splits a label into Levenshtein units (see file comment).
std::vector<std::string> labelUnits(const usage::NodeLabel &Label);

/// Levenshtein similarity ratio between two labels in [0, 1].
double labelSimilarity(const usage::NodeLabel &A, const usage::NodeLabel &B);

/// Length of the longest common prefix of \p A and \p B.
std::size_t commonPrefixLen(const usage::FeaturePath &A,
                            const usage::FeaturePath &B);

/// pathDist in [0, 1]; 0 iff the paths are identical.
double pathDist(const usage::FeaturePath &A, const usage::FeaturePath &B);

/// pathsDist in [0, 1] via min-cost matching; both empty -> 0.
double pathsDist(const std::vector<usage::FeaturePath> &F1,
                 const std::vector<usage::FeaturePath> &F2);

/// usageDist in [0, 1].
double usageDist(const usage::UsageChange &C1, const usage::UsageChange &C2);

} // namespace cluster
} // namespace diffcode

#endif // DIFFCODE_CLUSTER_DISTANCE_H
