//===- rules/TlsRules.cpp --------------------------------------------------===//

#include "rules/TlsRules.h"

using namespace diffcode;
using namespace diffcode::rules;

namespace {

std::vector<Rule> buildTlsRules() {
  std::vector<Rule> Rules;

  auto DeprecatedProtocols = [] {
    ArgConstraint C;
    C.Index = 1;
    C.K = ArgConstraint::Kind::StrEquals;
    C.Values = {"SSL", "SSLv2", "SSLv3", "TLS", "TLSv1", "TLSv1.1"};
    return C;
  };

  {
    Rule R;
    R.Id = "T1";
    R.Description = "Do not request deprecated TLS/SSL protocol versions";
    CallPattern P;
    P.ClassName = "SSLContext";
    P.MethodName = "getInstance";
    P.Args = {DeprecatedProtocols()};
    R.Clauses.push_back(
        {"SSLContext", ObjectFormula::exists(std::move(P)), false});
    Rules.push_back(std::move(R));
  }

  {
    Rule R;
    R.Id = "T2";
    R.Description =
        "Deprecated protocol combined with an unvetted trust configuration";
    CallPattern Proto;
    Proto.ClassName = "SSLContext";
    Proto.MethodName = "getInstance";
    Proto.Args = {DeprecatedProtocols()};
    CallPattern Init;
    Init.ClassName = "SSLContext";
    Init.MethodName = "init";
    R.Clauses.push_back(
        {"SSLContext",
         ObjectFormula::all({ObjectFormula::exists(std::move(Proto)),
                             ObjectFormula::exists(std::move(Init))}),
         false});
    Rules.push_back(std::move(R));
  }

  {
    Rule R;
    R.Id = "T3";
    R.Description =
        "Avoid SSLSocketFactory.getDefault(); configure an SSLContext";
    CallPattern P;
    P.ClassName = "SSLSocketFactory";
    P.MethodName = "getDefault";
    R.Clauses.push_back(
        {"SSLSocketFactory", ObjectFormula::exists(std::move(P)), false});
    Rules.push_back(std::move(R));
  }

  return Rules;
}

} // namespace

const std::vector<Rule> &diffcode::rules::tlsRules() {
  static const std::vector<Rule> Rules = buildTlsRules();
  return Rules;
}
