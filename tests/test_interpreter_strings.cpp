//===- tests/test_interpreter_strings.cpp - String semantics tests ---------===//
//
// The string built-ins matter disproportionately: algorithm transforms
// are strings, and the abstraction's whole value rests on tracking them
// precisely through concatenation, case mapping, and conversion.
//
//===----------------------------------------------------------------------===//

#include "analysis/AbstractInterpreter.h"

#include "javaast/Parser.h"

#include <gtest/gtest.h>

using namespace diffcode;
using namespace diffcode::analysis;

namespace {

AnalysisResult analyze(std::string_view Source) {
  java::AstContext Ctx;
  java::DiagnosticsEngine Diags;
  java::CompilationUnit *Unit = java::parseJava(Source, Ctx, Diags);
  EXPECT_FALSE(Diags.hasErrors())
      << (Diags.all().empty() ? "" : Diags.all().front().str());
  AbstractInterpreter Interp(apimodel::CryptoApiModel::javaCryptoApi());
  return Interp.analyze(Unit);
}

/// The first argument of the single getInstance event of \p Type.
AbstractValue firstArg(const AnalysisResult &R, const std::string &Type,
                       const char *SigPrefix = ".getInstance") {
  UsageLog Merged = R.mergedLog();
  for (const auto &[ObjId, Events] : Merged) {
    if (R.Objects.get(ObjId).TypeName != Type)
      continue;
    for (const UsageEvent &Event : Events)
      if (Event.MethodSig.find(SigPrefix) != std::string::npos &&
          !Event.Args.empty())
        return Event.Args[0];
  }
  return AbstractValue::unknown();
}

/// Analyzes `String algo = <Expr>; Cipher c = Cipher.getInstance(algo);`
AbstractValue algoOf(const std::string &Expr,
                     const std::string &Params = "") {
  AnalysisResult R = analyze("class A { void m(" + Params +
                             ") throws Exception { String algo = " + Expr +
                             "; Cipher c = Cipher.getInstance(algo); } }");
  return firstArg(R, "Cipher");
}

} // namespace

TEST(InterpreterStrings, ConcatChainFolds) {
  EXPECT_EQ(algoOf("\"AES\" + \"/\" + \"CBC\" + \"/PKCS5Padding\""),
            AbstractValue::strConst("AES/CBC/PKCS5Padding"));
}

TEST(InterpreterStrings, ConcatWithIntFolds) {
  EXPECT_EQ(algoOf("\"AES-\" + 256"), AbstractValue::strConst("AES-256"));
}

TEST(InterpreterStrings, ConcatWithUnknownWidens) {
  EXPECT_EQ(algoOf("\"AES/\" + mode", "String mode"),
            AbstractValue::strTop());
}

TEST(InterpreterStrings, CompoundAssignFolds) {
  AnalysisResult R = analyze(
      "class A { void m() throws Exception { "
      "String algo = \"AES\"; algo += \"/GCM\"; algo += \"/NoPadding\"; "
      "Cipher c = Cipher.getInstance(algo); } }");
  EXPECT_EQ(firstArg(R, "Cipher"),
            AbstractValue::strConst("AES/GCM/NoPadding"));
}

TEST(InterpreterStrings, CaseMappingFolds) {
  EXPECT_EQ(algoOf("\"aes\".toUpperCase()"), AbstractValue::strConst("AES"));
  EXPECT_EQ(algoOf("\"AES\".toLowerCase()"), AbstractValue::strConst("aes"));
}

TEST(InterpreterStrings, SubstringFolds) {
  EXPECT_EQ(algoOf("\"XXAESXX\".substring(2, 5)"),
            AbstractValue::strConst("AES"));
  EXPECT_EQ(algoOf("\"XXAES\".substring(2)"), AbstractValue::strConst("AES"));
  // Out-of-range degrades to top, not UB.
  EXPECT_EQ(algoOf("\"AES\".substring(10, 20)"), AbstractValue::strTop());
}

TEST(InterpreterStrings, ConcatMethodFolds) {
  EXPECT_EQ(algoOf("\"AES\".concat(\"/CTR/NoPadding\")"),
            AbstractValue::strConst("AES/CTR/NoPadding"));
}

TEST(InterpreterStrings, TrimFolds) {
  EXPECT_EQ(algoOf("\"AES\".trim()"), AbstractValue::strConst("AES"));
}

TEST(InterpreterStrings, LengthFoldsToInt) {
  AnalysisResult R = analyze(
      "class A { void m(char[] pw, byte[] salt) { "
      "int n = \"0123456789\".length() * 100; "
      "PBEKeySpec k = new PBEKeySpec(pw, salt, n, 128); } }");
  // The password parameter lives in the byte/char array domain.
  EXPECT_EQ(firstArg(R, "PBEKeySpec", ".<init>"),
            AbstractValue::byteArrayTop());
  // The iteration count (arg index 2) folded to 1000.
  UsageLog Merged = R.mergedLog();
  bool Saw1000 = false;
  for (const auto &[ObjId, Events] : Merged)
    for (const UsageEvent &Event : Events)
      if (Event.MethodSig.rfind("PBEKeySpec.<init>", 0) == 0 &&
          Event.Args.size() >= 3)
        Saw1000 = Saw1000 || Event.Args[2] == AbstractValue::intConst(1000);
  EXPECT_TRUE(Saw1000);
}

TEST(InterpreterStrings, GetBytesConstancyTracksReceiver) {
  AnalysisResult ConstR = analyze(
      "class A { void m() { byte[] b = \"key0\".getBytes(); "
      "SecretKeySpec k = new SecretKeySpec(b, \"AES\"); } }");
  EXPECT_EQ(firstArg(ConstR, "SecretKeySpec", ".<init>"),
            AbstractValue::byteArrayConst());

  AnalysisResult TopR = analyze(
      "class A { void m(String s) { byte[] b = s.getBytes(); "
      "SecretKeySpec k = new SecretKeySpec(b, \"AES\"); } }");
  EXPECT_EQ(firstArg(TopR, "SecretKeySpec", ".<init>"),
            AbstractValue::byteArrayTop());
}

TEST(InterpreterStrings, EqualsReturnsUnknownBool) {
  AnalysisResult R = analyze(
      "class A { void m() throws Exception { "
      "boolean eq = \"AES\".equals(\"DES\"); "
      "if (eq) { Cipher c = Cipher.getInstance(\"AES\"); } "
      "else { Cipher c = Cipher.getInstance(\"DES\"); } } }");
  // equals is not folded -> both branches explored.
  unsigned Ciphers = 0;
  for (const AbstractObject &Obj : R.Objects.all())
    if (Obj.TypeName == "Cipher")
      ++Ciphers;
  EXPECT_EQ(Ciphers, 2u);
}

TEST(InterpreterStrings, ValueOfAndToStringFold) {
  EXPECT_EQ(algoOf("\"AES-\" + Integer.toString(128)"),
            AbstractValue::strConst("AES-128"));
  EXPECT_EQ(algoOf("String.valueOf(\"AES\")"), AbstractValue::strConst("AES"));
}

TEST(InterpreterStrings, StringFlowThroughTernary) {
  // Both arms constant but different -> join to top at the use.
  EXPECT_EQ(algoOf("flag ? \"AES\" : \"DES\"", "boolean flag"),
            AbstractValue::strTop());
  // Identical arms stay constant.
  EXPECT_EQ(algoOf("flag ? \"AES\" : \"AES\"", "boolean flag"),
            AbstractValue::strConst("AES"));
}

TEST(InterpreterStrings, StringArrayElementAccess) {
  AnalysisResult R = analyze(
      "class A { void m() throws Exception { "
      "String[] algos = { \"SHA-256\", \"MD5\" }; "
      "MessageDigest d = MessageDigest.getInstance(algos[0]); } }");
  EXPECT_EQ(firstArg(R, "MessageDigest"), AbstractValue::strConst("SHA-256"));
}

TEST(InterpreterStrings, StringArrayUnknownIndexWidens) {
  AnalysisResult R = analyze(
      "class A { void m(int i) throws Exception { "
      "String[] algos = { \"SHA-256\", \"MD5\" }; "
      "MessageDigest d = MessageDigest.getInstance(algos[i]); } }");
  EXPECT_EQ(firstArg(R, "MessageDigest"), AbstractValue::strTop());
}
