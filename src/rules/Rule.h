//===- rules/Rule.h - Security-rule language (Section 6.3) -----------------===//
//
// Part of the DiffCode project, a reproduction of "Inferring Crypto API
// Rules from Code Changes" (PLDI'18).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Rules of the form `t : phi` where phi is interpreted over an abstract
/// object's usage set S in P(Methods x AStates). Atoms test for the
/// (non-)existence of a call matching a CallPattern; formulas compose with
/// and/or; whole-object clauses compose conjunctively into composite rules
/// and may be negated (R13 requires the *absence* of an HMAC object).
///
/// Example (R1): MessageDigest : getInstance(X) /\ X = "SHA-1"
///
///   Rule{ Clauses: [ {TypeName: "MessageDigest",
///                     Formula: exists(getInstance, arg(1) in {SHA-1,SHA1})} ] }
///
//===----------------------------------------------------------------------===//

#ifndef DIFFCODE_RULES_RULE_H
#define DIFFCODE_RULES_RULE_H

#include "analysis/AbstractInterpreter.h"
#include "analysis/UsageEvent.h"

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace diffcode {
namespace rules {

/// Constraint on one argument of a matched call (1-based index).
struct ArgConstraint {
  enum class Kind {
    Any,           ///< Always satisfied (placeholder `_`).
    StrEquals,     ///< Value is a string constant equal to one of Values.
    StrNotEquals,  ///< Value is absent/top/other than all of Values.
    StrStartsWith, ///< String constant with one of Values as prefix.
    IntLess,       ///< Integer constant < IntBound.
    IntAtLeast,    ///< Integer constant >= IntBound.
    IntEquals,     ///< Integer constant == IntBound.
    IsConstant,    ///< Program constant (e.g. constbyte[] — static IV/key).
    IsTop,         ///< Not a program constant.
  };

  unsigned Index = 1;
  Kind K = Kind::Any;
  std::vector<std::string> Values;
  std::int64_t IntBound = 0;

  bool matches(const analysis::AbstractValue &Value) const;
};

/// Pattern over a single (method, state) pair.
struct CallPattern {
  std::string ClassName;  ///< Empty = any declaring class.
  std::string MethodName; ///< "<init>", "getInstance", ...
  int Arity = -1;         ///< -1 = any arity.
  std::vector<ArgConstraint> Args;

  bool matchesEvent(const analysis::UsageEvent &Event) const;
};

/// Formula phi over a usage set S.
class ObjectFormula {
public:
  enum class Kind { Exists, NotExists, And, Or };

  static ObjectFormula exists(CallPattern Pattern);
  static ObjectFormula notExists(CallPattern Pattern);
  static ObjectFormula all(std::vector<ObjectFormula> Children); // and
  static ObjectFormula any(std::vector<ObjectFormula> Children); // or

  /// S |= phi.
  bool eval(const std::vector<analysis::UsageEvent> &Usage) const;

  Kind kind() const { return K; }
  const CallPattern &pattern() const { return Pattern; }
  const std::vector<ObjectFormula> &children() const { return Children; }

private:
  Kind K = Kind::Exists;
  CallPattern Pattern;
  std::vector<ObjectFormula> Children;
};

/// Metadata the Android-specific rule R6 consults; for mined projects this
/// comes from the manifest, for the synthetic corpus from the generator.
struct ProjectMetadata {
  bool IsAndroid = false;
  int MinSdkVersion = 0;
  bool HasLinuxPrngFix = true;
};

/// A (possibly composite) security rule.
struct Rule {
  /// One `t : phi` clause; Negated clauses require that *no* object of the
  /// type satisfies phi.
  struct Clause {
    std::string TypeName;
    ObjectFormula Formula;
    bool Negated = false;
  };

  std::string Id;          ///< "R1" ... "R13", "CL1" ... "CL5".
  std::string Description; ///< Human-readable summary (Figure 9).
  std::vector<Clause> Clauses;

  // Metadata guards (R6). MinSdkAtLeast < 0 disables the guard;
  // RequireAndroid additionally gates *applicability* (an Android-only
  // rule is not applicable to a server-side project at all).
  int MinSdkAtLeast = -1;
  bool RequireNoLprngFix = false;
  bool RequireAndroid = false;

  /// The API classes whose presence makes the rule *applicable* (the
  /// positive clauses' types).
  std::vector<std::string> applicableTypes() const;
};

/// The facts CryptoChecker evaluates rules against: one analyzed
/// compilation unit (its allocation sites and merged usage log).
struct UnitFacts {
  const analysis::ObjectTable *Objects = nullptr;
  analysis::UsageLog Merged;

  static UnitFacts from(const analysis::AnalysisResult &Result) {
    return {&Result.Objects, Result.mergedLog()};
  }
};

/// True when some object of \p TypeName in \p Facts satisfies \p Formula.
bool someObjectSatisfies(const UnitFacts &Facts, const std::string &TypeName,
                         const ObjectFormula &Formula);

/// True when \p Facts contains at least one object of \p TypeName.
bool hasObjectOfType(const UnitFacts &Facts, const std::string &TypeName);

/// Rule applicability over a set of units (a project).
bool ruleApplicable(const Rule &R, const std::vector<UnitFacts> &Units,
                    const ProjectMetadata &Meta = ProjectMetadata());

/// Rule match over a set of units: every positive clause satisfied by
/// some object in some unit, every negated clause unsatisfied everywhere,
/// metadata guards hold.
bool ruleMatches(const Rule &R, const std::vector<UnitFacts> &Units,
                 const ProjectMetadata &Meta = ProjectMetadata());

} // namespace rules
} // namespace diffcode

#endif // DIFFCODE_RULES_RULE_H
