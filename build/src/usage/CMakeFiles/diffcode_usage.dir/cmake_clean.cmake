file(REMOVE_RECURSE
  "CMakeFiles/diffcode_usage.dir/UsageChange.cpp.o"
  "CMakeFiles/diffcode_usage.dir/UsageChange.cpp.o.d"
  "CMakeFiles/diffcode_usage.dir/UsageDag.cpp.o"
  "CMakeFiles/diffcode_usage.dir/UsageDag.cpp.o.d"
  "libdiffcode_usage.a"
  "libdiffcode_usage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/diffcode_usage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
