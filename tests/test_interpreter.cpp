//===- tests/test_interpreter.cpp - Abstract interpreter tests -------------===//

#include "analysis/AbstractInterpreter.h"

#include "javaast/Parser.h"

#include <gtest/gtest.h>

using namespace diffcode;
using namespace diffcode::analysis;

namespace {

AnalysisResult analyze(std::string_view Source,
                       AnalysisOptions Opts = AnalysisOptions()) {
  java::AstContext Ctx;
  java::DiagnosticsEngine Diags;
  java::CompilationUnit *Unit = java::parseJava(Source, Ctx, Diags);
  EXPECT_FALSE(Diags.hasErrors())
      << (Diags.all().empty() ? "" : Diags.all().front().str());
  AbstractInterpreter Interp(apimodel::CryptoApiModel::javaCryptoApi(), Opts);
  return Interp.analyze(Unit);
}

/// All events of objects of \p Type, merged over executions.
std::vector<UsageEvent> eventsOfType(const AnalysisResult &Result,
                                     const std::string &Type) {
  std::vector<UsageEvent> Out;
  UsageLog Merged = Result.mergedLog();
  for (const auto &[ObjId, Events] : Merged)
    if (Result.Objects.get(ObjId).TypeName == Type)
      Out.insert(Out.end(), Events.begin(), Events.end());
  return Out;
}

/// Returns a copy of the first event whose signature starts with
/// \p SigPrefix (copy, so callers may pass a temporary vector).
std::optional<UsageEvent> findEvent(const std::vector<UsageEvent> &Events,
                                    std::string_view SigPrefix) {
  for (const UsageEvent &Event : Events)
    if (Event.MethodSig.rfind(SigPrefix, 0) == 0)
      return Event;
  return std::nullopt;
}

unsigned countObjectsOfType(const AnalysisResult &Result,
                            const std::string &Type) {
  unsigned N = 0;
  for (const AbstractObject &Obj : Result.Objects.all())
    if (Obj.TypeName == Type)
      ++N;
  return N;
}

} // namespace

//===----------------------------------------------------------------------===//
// Allocation sites and factory calls
//===----------------------------------------------------------------------===//

TEST(Interpreter, FactoryCallCreatesAbstractObject) {
  AnalysisResult R = analyze(
      "class A { void m() throws Exception { "
      "Cipher c = Cipher.getInstance(\"AES\"); } }");
  EXPECT_EQ(countObjectsOfType(R, "Cipher"), 1u);
  std::vector<UsageEvent> Events = eventsOfType(R, "Cipher");
  std::optional<UsageEvent> GetInstance = findEvent(Events, "Cipher.getInstance/1");
  ASSERT_TRUE(GetInstance.has_value());
  ASSERT_EQ(GetInstance->Args.size(), 1u);
  EXPECT_EQ(GetInstance->Args[0], AbstractValue::strConst("AES"));
}

TEST(Interpreter, ConstructorCreatesAbstractObject) {
  AnalysisResult R = analyze(
      "class A { void m(byte[] b) { "
      "IvParameterSpec iv = new IvParameterSpec(b); } }");
  EXPECT_EQ(countObjectsOfType(R, "IvParameterSpec"), 1u);
  std::optional<UsageEvent> Ctor = findEvent(eventsOfType(R, "IvParameterSpec"),
                                     "IvParameterSpec.<init>/1");
  ASSERT_TRUE(Ctor.has_value());
  EXPECT_EQ(Ctor->Args[0], AbstractValue::byteArrayTop());
}

TEST(Interpreter, SameSiteReusedAcrossForkedPaths) {
  AnalysisResult R = analyze(
      "class A { void m(boolean f) throws Exception { "
      "for (int i = 0; i < 3; i++) { "
      "Cipher c = Cipher.getInstance(\"AES\"); } } }");
  // One allocation site, even though the loop forks 0/1 iterations.
  EXPECT_EQ(countObjectsOfType(R, "Cipher"), 1u);
}

TEST(Interpreter, DistinctSitesAreDistinctObjects) {
  AnalysisResult R = analyze(
      "class A { void m() throws Exception { "
      "Cipher a = Cipher.getInstance(\"AES\");\n"
      "Cipher b = Cipher.getInstance(\"DES\"); } }");
  EXPECT_EQ(countObjectsOfType(R, "Cipher"), 2u);
}

//===----------------------------------------------------------------------===//
// Instance calls and argument tracking
//===----------------------------------------------------------------------===//

TEST(Interpreter, InstanceCallRecordedOnReceiver) {
  AnalysisResult R = analyze(
      "class A { void m(Key key) throws Exception { "
      "Cipher c = Cipher.getInstance(\"AES\"); "
      "c.init(Cipher.ENCRYPT_MODE, key); } }");
  std::vector<UsageEvent> Events = eventsOfType(R, "Cipher");
  std::optional<UsageEvent> Init = findEvent(Events, "Cipher.init/2");
  ASSERT_TRUE(Init.has_value());
  EXPECT_EQ(Init->Args[0], AbstractValue::intConst(1, "ENCRYPT_MODE"));
  EXPECT_EQ(Init->Args[1], AbstractValue::topObject("Key"));
}

TEST(Interpreter, EventAlsoRecordedOnObjectArguments) {
  // Cipher.init takes the IvParameterSpec as an argument, so the event
  // must appear in the IvParameterSpec object's usage set too
  // (Methods_t membership, Section 3.2).
  AnalysisResult R = analyze(
      "class A { void m(Key key, byte[] b) throws Exception { "
      "IvParameterSpec iv = new IvParameterSpec(b); "
      "Cipher c = Cipher.getInstance(\"AES/CBC/PKCS5Padding\"); "
      "c.init(Cipher.ENCRYPT_MODE, key, iv); } }");
  std::optional<UsageEvent> InitOnIv =
      findEvent(eventsOfType(R, "IvParameterSpec"), "Cipher.init/3");
  EXPECT_TRUE(InitOnIv.has_value());
}

TEST(Interpreter, FieldHeldObjectsTrackUsage) {
  AnalysisResult R = analyze(
      "class A { Cipher enc; "
      "void setup(Key k) throws Exception { "
      "enc = Cipher.getInstance(\"AES\"); } "
      "void use(Key k) throws Exception { "
      "enc.init(Cipher.ENCRYPT_MODE, k); } }");
  // `use` is an entry too, but enc's allocation only happens in `setup`;
  // the getInstance event must exist.
  EXPECT_TRUE(findEvent(eventsOfType(R, "Cipher"), "Cipher.getInstance/1")
                  .has_value());
}

//===----------------------------------------------------------------------===//
// Base-type abstraction (Figure 3)
//===----------------------------------------------------------------------===//

TEST(Interpreter, StringConstantsFlowThroughLocals) {
  AnalysisResult R = analyze(
      "class A { void m() throws Exception { "
      "String algo = \"AES/CBC\" + \"/PKCS5Padding\"; "
      "Cipher c = Cipher.getInstance(algo); } }");
  std::optional<UsageEvent> E =
      findEvent(eventsOfType(R, "Cipher"), "Cipher.getInstance");
  ASSERT_TRUE(E.has_value());
  EXPECT_EQ(E->Args[0], AbstractValue::strConst("AES/CBC/PKCS5Padding"));
}

TEST(Interpreter, StringConstantsFlowThroughFields) {
  AnalysisResult R = analyze(
      "class A { final String algorithm = \"AES\"; "
      "void m() throws Exception { "
      "Cipher c = Cipher.getInstance(algorithm); } }");
  std::optional<UsageEvent> E =
      findEvent(eventsOfType(R, "Cipher"), "Cipher.getInstance");
  ASSERT_TRUE(E.has_value());
  EXPECT_EQ(E->Args[0], AbstractValue::strConst("AES"));
}

TEST(Interpreter, ConstantGetBytesIsConstByteArray) {
  AnalysisResult R = analyze(
      "class A { void m() { "
      "IvParameterSpec iv = new IvParameterSpec(\"0123456789abcdef\""
      ".getBytes()); } }");
  std::optional<UsageEvent> Ctor =
      findEvent(eventsOfType(R, "IvParameterSpec"), "IvParameterSpec.<init>");
  ASSERT_TRUE(Ctor.has_value());
  EXPECT_EQ(Ctor->Args[0], AbstractValue::byteArrayConst());
}

TEST(Interpreter, ParamDerivedBytesAreTop) {
  AnalysisResult R = analyze(
      "class A { void m(String iv) { "
      "byte[] raw = Hex.decodeHex(iv.toCharArray()); "
      "IvParameterSpec spec = new IvParameterSpec(raw); } }");
  std::optional<UsageEvent> Ctor =
      findEvent(eventsOfType(R, "IvParameterSpec"), "IvParameterSpec.<init>");
  ASSERT_TRUE(Ctor.has_value());
  EXPECT_EQ(Ctor->Args[0], AbstractValue::byteArrayTop());
}

TEST(Interpreter, ByteArrayLiteralIsConst) {
  AnalysisResult R = analyze(
      "class A { void m() { "
      "byte[] key = {1, 2, 3, 4}; "
      "SecretKeySpec s = new SecretKeySpec(key, \"AES\"); } }");
  std::optional<UsageEvent> Ctor =
      findEvent(eventsOfType(R, "SecretKeySpec"), "SecretKeySpec.<init>");
  ASSERT_TRUE(Ctor.has_value());
  EXPECT_EQ(Ctor->Args[0], AbstractValue::byteArrayConst());
  EXPECT_EQ(Ctor->Args[1], AbstractValue::strConst("AES"));
}

TEST(Interpreter, NewByteArrayZeroFilledIsConst) {
  AnalysisResult R = analyze(
      "class A { void m() { "
      "byte[] iv = new byte[16]; "
      "IvParameterSpec s = new IvParameterSpec(iv); } }");
  std::optional<UsageEvent> Ctor =
      findEvent(eventsOfType(R, "IvParameterSpec"), "IvParameterSpec.<init>");
  ASSERT_TRUE(Ctor.has_value());
  EXPECT_EQ(Ctor->Args[0], AbstractValue::byteArrayConst());
}

TEST(Interpreter, NextBytesRandomizesBuffer) {
  AnalysisResult R = analyze(
      "class A { void m() throws Exception { "
      "byte[] iv = new byte[16]; "
      "SecureRandom r = SecureRandom.getInstance(\"SHA1PRNG\"); "
      "r.nextBytes(iv); "
      "IvParameterSpec s = new IvParameterSpec(iv); } }");
  std::optional<UsageEvent> Ctor =
      findEvent(eventsOfType(R, "IvParameterSpec"), "IvParameterSpec.<init>");
  ASSERT_TRUE(Ctor.has_value());
  EXPECT_EQ(Ctor->Args[0], AbstractValue::byteArrayTop());
}

TEST(Interpreter, IntConstantArithmeticFolds) {
  AnalysisResult R = analyze(
      "class A { void m(char[] pw, byte[] salt) { "
      "int base = 500; "
      "PBEKeySpec s = new PBEKeySpec(pw, salt, base * 2, 128); } }");
  std::optional<UsageEvent> Ctor =
      findEvent(eventsOfType(R, "PBEKeySpec"), "PBEKeySpec.<init>");
  ASSERT_TRUE(Ctor.has_value());
  EXPECT_EQ(Ctor->Args[2], AbstractValue::intConst(1000));
}

TEST(Interpreter, ApiConstantsKeepSymbolicNames) {
  AnalysisResult R = analyze(
      "class A { void m(Key k) throws Exception { "
      "Cipher c = Cipher.getInstance(\"AES\"); "
      "c.init(Cipher.DECRYPT_MODE, k); } }");
  std::optional<UsageEvent> Init = findEvent(eventsOfType(R, "Cipher"), "Cipher.init");
  ASSERT_TRUE(Init.has_value());
  EXPECT_EQ(Init->Args[0].label(), "DECRYPT_MODE");
  EXPECT_EQ(Init->Args[0].intValue(), 2);
}

TEST(Interpreter, BranchDependentValueWidensAtJoinlessFork) {
  // The two branches fork into separate executions; each sees its own
  // constant.
  AnalysisResult R = analyze(
      "class A { void m(boolean f) throws Exception { "
      "String algo; "
      "if (f) { algo = \"AES\"; } else { algo = \"DES\"; } "
      "Cipher c = Cipher.getInstance(algo); } }");
  std::vector<UsageEvent> Events = eventsOfType(R, "Cipher");
  bool SawAes = false, SawDes = false;
  for (const UsageEvent &E : Events) {
    SawAes = SawAes || E.Args[0] == AbstractValue::strConst("AES");
    SawDes = SawDes || E.Args[0] == AbstractValue::strConst("DES");
  }
  EXPECT_TRUE(SawAes);
  EXPECT_TRUE(SawDes);
}

//===----------------------------------------------------------------------===//
// Interprocedural analysis
//===----------------------------------------------------------------------===//

TEST(Interpreter, HelperMethodInlined) {
  AnalysisResult R = analyze(
      "class A { "
      "void m(Key k) throws Exception { "
      "Cipher c = create(); c.init(Cipher.ENCRYPT_MODE, k); } "
      "private Cipher create() throws Exception { "
      "return Cipher.getInstance(\"AES\"); } }");
  std::vector<UsageEvent> Events = eventsOfType(R, "Cipher");
  EXPECT_TRUE(findEvent(Events, "Cipher.getInstance").has_value());
  EXPECT_TRUE(findEvent(Events, "Cipher.init").has_value());
}

TEST(Interpreter, ConstantsFlowThroughHelperArgs) {
  AnalysisResult R = analyze(
      "class A { "
      "void m() throws Exception { hash(\"SHA-256\"); } "
      "private void hash(String algo) throws Exception { "
      "MessageDigest d = MessageDigest.getInstance(algo); } }");
  std::optional<UsageEvent> E =
      findEvent(eventsOfType(R, "MessageDigest"), "MessageDigest.getInstance");
  ASSERT_TRUE(E.has_value());
  EXPECT_EQ(E->Args[0], AbstractValue::strConst("SHA-256"));
}

TEST(Interpreter, RecursionTerminates) {
  AnalysisResult R = analyze(
      "class A { int f(int n) { if (n <= 0) return 0; return f(n - 1); } "
      "void m() throws Exception { int x = f(5); "
      "Cipher c = Cipher.getInstance(\"AES\"); } }");
  EXPECT_EQ(countObjectsOfType(R, "Cipher"), 1u);
}

TEST(Interpreter, ConstructorInlinedForProgramClass) {
  AnalysisResult R = analyze(
      "class Holder { Cipher c; "
      "Holder(String algo) throws Exception { "
      "c = Cipher.getInstance(algo); } } "
      "class Use { void m() throws Exception { "
      "Holder h = new Holder(\"DES\"); } }");
  std::optional<UsageEvent> E =
      findEvent(eventsOfType(R, "Cipher"), "Cipher.getInstance");
  ASSERT_TRUE(E.has_value());
  EXPECT_EQ(E->Args[0], AbstractValue::strConst("DES"));
}

TEST(Interpreter, EntryDiscoveryAnalyzesUncalledMethods) {
  AnalysisResult R = analyze(
      "class A { "
      "public void api1() throws Exception { "
      "Cipher c = Cipher.getInstance(\"AES\"); } "
      "public void api2() throws Exception { "
      "MessageDigest d = MessageDigest.getInstance(\"MD5\"); } }");
  EXPECT_EQ(countObjectsOfType(R, "Cipher"), 1u);
  EXPECT_EQ(countObjectsOfType(R, "MessageDigest"), 1u);
}

TEST(Interpreter, StaticFieldsTracked) {
  AnalysisResult R = analyze(
      "class A { static final String ALGO = \"SHA-1\"; "
      "void m() throws Exception { "
      "MessageDigest d = MessageDigest.getInstance(A.ALGO); } }");
  std::optional<UsageEvent> E =
      findEvent(eventsOfType(R, "MessageDigest"), "MessageDigest.getInstance");
  ASSERT_TRUE(E.has_value());
  EXPECT_EQ(E->Args[0], AbstractValue::strConst("SHA-1"));
}

//===----------------------------------------------------------------------===//
// Executions and forking
//===----------------------------------------------------------------------===//

TEST(Interpreter, TryCatchForksExecutions) {
  AnalysisResult R = analyze(
      "class A { void m(Key k) throws Exception { "
      "try { Cipher c = Cipher.getInstance(\"AES\"); } "
      "catch (Exception e) { "
      "MessageDigest d = MessageDigest.getInstance(\"MD5\"); } } }");
  EXPECT_EQ(countObjectsOfType(R, "Cipher"), 1u);
  EXPECT_EQ(countObjectsOfType(R, "MessageDigest"), 1u);
}

TEST(Interpreter, ReturnStopsExecution) {
  AnalysisResult R = analyze(
      "class A { void m(boolean f) throws Exception { "
      "if (f) { return; } "
      "Cipher c = Cipher.getInstance(\"AES\"); } }");
  // The fall-through execution still reaches the allocation.
  EXPECT_EQ(countObjectsOfType(R, "Cipher"), 1u);
}

TEST(Interpreter, ForkCapBoundsExecutions) {
  std::string Body;
  for (int I = 0; I < 12; ++I)
    Body += "if (f) { x = x + 1; } ";
  AnalysisOptions Opts;
  Opts.MaxStatesPerEntry = 8;
  AnalysisResult R = analyze(
      "class A { void m(boolean f) throws Exception { int x = 0; " + Body +
          "Cipher c = Cipher.getInstance(\"AES\"); } }",
      Opts);
  EXPECT_LE(R.Executions.size(), 8u);
  EXPECT_EQ(countObjectsOfType(R, "Cipher"), 1u);
}

TEST(Interpreter, MergedLogDeduplicatesEvents) {
  AnalysisResult R = analyze(
      "class A { void m(boolean f) throws Exception { "
      "if (f) { helper(); } else { helper(); } "
      "Cipher c = Cipher.getInstance(\"AES\"); } "
      "void helper() { } }");
  UsageLog Merged = R.mergedLog();
  for (const auto &[ObjId, Events] : Merged)
    for (std::size_t I = 0; I < Events.size(); ++I)
      for (std::size_t J = I + 1; J < Events.size(); ++J)
        EXPECT_FALSE(Events[I] == Events[J]);
}

//===----------------------------------------------------------------------===//
// Ablation knobs
//===----------------------------------------------------------------------===//

TEST(Interpreter, AllTopAbstractionErasesConstants) {
  AnalysisOptions Opts;
  Opts.Abstraction = AnalysisOptions::BaseAbstraction::AllTop;
  AnalysisResult R = analyze(
      "class A { void m() throws Exception { "
      "Cipher c = Cipher.getInstance(\"AES\"); } }",
      Opts);
  std::optional<UsageEvent> E =
      findEvent(eventsOfType(R, "Cipher"), "Cipher.getInstance");
  ASSERT_TRUE(E.has_value());
  EXPECT_EQ(E->Args[0], AbstractValue::strTop());
}

TEST(Interpreter, KeepAllConstantsKeepsByteElements) {
  AnalysisOptions Opts;
  Opts.Abstraction = AnalysisOptions::BaseAbstraction::KeepAllConstants;
  AnalysisResult R = analyze(
      "class A { void m() { "
      "byte[] key = {1, 2, 3}; "
      "SecretKeySpec s = new SecretKeySpec(key, \"AES\"); } }",
      Opts);
  std::optional<UsageEvent> Ctor =
      findEvent(eventsOfType(R, "SecretKeySpec"), "SecretKeySpec.<init>");
  ASSERT_TRUE(Ctor.has_value());
  EXPECT_EQ(Ctor->Args[0].kind(), AVKind::IntArrayConst);
  EXPECT_EQ(Ctor->Args[0].label(), "[1,2,3]");
}

//===----------------------------------------------------------------------===//
// Robustness
//===----------------------------------------------------------------------===//

TEST(Interpreter, EmptyUnit) {
  AnalysisResult R = analyze("");
  EXPECT_TRUE(R.Executions.empty());
  EXPECT_EQ(R.Objects.size(), 0u);
}

TEST(Interpreter, ClassWithoutCrypto) {
  AnalysisResult R = analyze(
      "class Plain { int add(int a, int b) { return a + b; } }");
  EXPECT_EQ(countObjectsOfType(R, "Cipher"), 0u);
}

TEST(Interpreter, FuelLimitTerminatesPathologicalInput) {
  std::string Nested = "int x = 0; ";
  for (int I = 0; I < 18; ++I)
    Nested += "while (x < 10) { ";
  Nested += "x = x + 1; ";
  for (int I = 0; I < 18; ++I)
    Nested += "} ";
  AnalysisOptions Opts;
  Opts.Fuel = 2000;
  AnalysisResult R =
      analyze("class A { void m() { " + Nested + " } }", Opts);
  SUCCEED(); // termination is the assertion
}

//===----------------------------------------------------------------------===//
// Precision: constant-branch pruning and JDK constant folding
//===----------------------------------------------------------------------===//

TEST(Interpreter, ConstantTrueBranchPrunesElse) {
  AnalysisResult R = analyze(
      "class A { static final boolean LEGACY = false; "
      "void m() throws Exception { "
      "if (LEGACY) { Cipher c = Cipher.getInstance(\"DES\"); } "
      "else { Cipher c = Cipher.getInstance(\"AES/GCM/NoPadding\"); } } }");
  std::vector<UsageEvent> Events = eventsOfType(R, "Cipher");
  // The dead DES branch is never analyzed.
  EXPECT_FALSE(findEvent(Events, "Cipher.getInstance").has_value()
                   ? findEvent(Events, "Cipher.getInstance")->Args[0] ==
                         AbstractValue::strConst("DES")
                   : false);
  bool SawGcm = false;
  for (const UsageEvent &E : Events)
    SawGcm = SawGcm || E.Args[0] == AbstractValue::strConst("AES/GCM/NoPadding");
  EXPECT_TRUE(SawGcm);
  EXPECT_EQ(countObjectsOfType(R, "Cipher"), 1u);
}

TEST(Interpreter, UnknownConditionStillForks) {
  AnalysisResult R = analyze(
      "class A { void m(boolean flag) throws Exception { "
      "if (flag) { Cipher c = Cipher.getInstance(\"AES\"); } "
      "else { Cipher c = Cipher.getInstance(\"DES\"); } } }");
  EXPECT_EQ(countObjectsOfType(R, "Cipher"), 2u);
}

TEST(Interpreter, ConstantConditionalExprSelectsArm) {
  AnalysisResult R = analyze(
      "class A { void m() throws Exception { "
      "String algo = 1 > 0 ? \"SHA-256\" : \"MD5\"; "
      "MessageDigest d = MessageDigest.getInstance(algo); } }");
  std::optional<UsageEvent> E =
      findEvent(eventsOfType(R, "MessageDigest"), "MessageDigest.getInstance");
  ASSERT_TRUE(E.has_value());
  EXPECT_EQ(E->Args[0], AbstractValue::strConst("SHA-256"));
}

TEST(Interpreter, SwitchStillForksAllArms) {
  // The lowered switch must not be constant-pruned to its first arm.
  AnalysisResult R = analyze(
      "class A { void m(int mode) throws Exception { "
      "switch (mode) { "
      "case 1: { Cipher a = Cipher.getInstance(\"AES\"); break; } "
      "case 2: { Cipher b = Cipher.getInstance(\"DES\"); break; } } } }");
  EXPECT_EQ(countObjectsOfType(R, "Cipher"), 2u);
}

TEST(Interpreter, IntegerParseIntFolds) {
  AnalysisResult R = analyze(
      "class A { void m(char[] pw, byte[] salt) { "
      "int iters = Integer.parseInt(\"20000\"); "
      "PBEKeySpec s = new PBEKeySpec(pw, salt, iters, 256); } }");
  std::optional<UsageEvent> Ctor =
      findEvent(eventsOfType(R, "PBEKeySpec"), "PBEKeySpec.<init>");
  ASSERT_TRUE(Ctor.has_value());
  EXPECT_EQ(Ctor->Args[2], AbstractValue::intConst(20000));
}

TEST(Interpreter, IntegerParseIntOfUnknownIsTop) {
  AnalysisResult R = analyze(
      "class A { void m(char[] pw, byte[] salt, String conf) { "
      "int iters = Integer.parseInt(conf); "
      "PBEKeySpec s = new PBEKeySpec(pw, salt, iters, 256); } }");
  std::optional<UsageEvent> Ctor =
      findEvent(eventsOfType(R, "PBEKeySpec"), "PBEKeySpec.<init>");
  ASSERT_TRUE(Ctor.has_value());
  EXPECT_EQ(Ctor->Args[2], AbstractValue::intTop());
}

TEST(Interpreter, MathMinMaxFold) {
  AnalysisResult R = analyze(
      "class A { void m(char[] pw, byte[] salt) { "
      "PBEKeySpec s = new PBEKeySpec(pw, salt, Math.max(1000, 100), "
      "Math.min(128, 256)); } }");
  std::optional<UsageEvent> Ctor =
      findEvent(eventsOfType(R, "PBEKeySpec"), "PBEKeySpec.<init>");
  ASSERT_TRUE(Ctor.has_value());
  EXPECT_EQ(Ctor->Args[2], AbstractValue::intConst(1000));
  EXPECT_EQ(Ctor->Args[3], AbstractValue::intConst(128));
}

TEST(Interpreter, StringValueOfFolds) {
  AnalysisResult R = analyze(
      "class A { void m() throws Exception { "
      "String algo = \"AES/CBC/\" + String.valueOf(5) + \"Padding\"; "
      "Cipher c = Cipher.getInstance(\"AES\" + \"/GCM/NoPadding\"); } }");
  std::optional<UsageEvent> E =
      findEvent(eventsOfType(R, "Cipher"), "Cipher.getInstance");
  ASSERT_TRUE(E.has_value());
  EXPECT_EQ(E->Args[0], AbstractValue::strConst("AES/GCM/NoPadding"));
}

//===----------------------------------------------------------------------===//
// Fork-cap soundness: folding surplus states must not lose events
//===----------------------------------------------------------------------===//

TEST(Interpreter, CapFoldingPreservesAllEvents) {
  // 6 two-way forks -> 64 paths, each reaching a distinct digest call;
  // with a cap of 4 states every call must still appear in the merged
  // log (surplus paths are joined, not dropped).
  std::string Body;
  for (int I = 0; I < 6; ++I)
    Body += "if (f" + std::to_string(I) +
            ") { MessageDigest d" + std::to_string(I) +
            " = MessageDigest.getInstance(\"ALGO" + std::to_string(I) +
            "\"); } ";
  std::string Params;
  for (int I = 0; I < 6; ++I)
    Params += (I ? ", " : "") + std::string("boolean f") + std::to_string(I);
  AnalysisOptions Opts;
  Opts.MaxStatesPerEntry = 4;
  AnalysisResult R = analyze(
      "class A { void m(" + Params + ") throws Exception { " + Body + "} }",
      Opts);
  EXPECT_LE(R.Executions.size(), 4u);

  std::set<std::string> SeenAlgos;
  for (const UsageEvent &E : eventsOfType(R, "MessageDigest"))
    if (!E.Args.empty() && E.Args[0].kind() == AVKind::StrConst)
      SeenAlgos.insert(E.Args[0].strValue());
  for (int I = 0; I < 6; ++I)
    EXPECT_TRUE(SeenAlgos.count("ALGO" + std::to_string(I))) << I;
}

TEST(Interpreter, JoinWidensDivergentValuesAfterCap) {
  // With cap 1, the branch-dependent constant must widen (join), not
  // arbitrarily pick one side.
  AnalysisOptions Opts;
  Opts.MaxStatesPerEntry = 1;
  AnalysisResult R = analyze(
      "class A { void m(boolean f) throws Exception { "
      "String algo = \"X\"; "
      "if (f) { algo = \"AES\"; } else { algo = \"DES\"; } "
      "Cipher c = Cipher.getInstance(algo); } }",
      Opts);
  bool SawTop = false, SawWrongConst = false;
  for (const UsageEvent &E : eventsOfType(R, "Cipher")) {
    if (E.MethodSig.rfind("Cipher.getInstance", 0) != 0)
      continue;
    SawTop = SawTop || E.Args[0] == AbstractValue::strTop();
    SawWrongConst =
        SawWrongConst || E.Args[0] == AbstractValue::strConst("X");
  }
  EXPECT_TRUE(SawTop || !SawWrongConst);
}
