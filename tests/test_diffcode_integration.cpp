//===- tests/test_diffcode_integration.cpp - End-to-end pipeline tests -----===//

#include "core/DiffCode.h"

#include "core/ReportWriter.h"
#include "corpus/CorpusGenerator.h"
#include "corpus/Miner.h"
#include "rules/BuiltinRules.h"

#include <gtest/gtest.h>

#include <set>

using namespace diffcode;
using namespace diffcode::core;

namespace {

const apimodel::CryptoApiModel &api() {
  return apimodel::CryptoApiModel::javaCryptoApi();
}

corpus::CodeChange change(const char *OldCode, const char *NewCode) {
  corpus::CodeChange C;
  C.ProjectName = "test";
  C.OldCode = OldCode;
  C.NewCode = NewCode;
  return C;
}

const char *Figure2Old = R"java(
class AESCipher {
    Cipher enc;
    Cipher dec;
    final String algorithm = "AES";
    protected void setKey(Secret key) {
        try {
            enc = Cipher.getInstance(algorithm);
            enc.init(Cipher.ENCRYPT_MODE, key);
            dec = Cipher.getInstance(algorithm);
            dec.init(Cipher.DECRYPT_MODE, key);
        } catch (Exception e) {
        }
    }
}
)java";

const char *Figure2New = R"java(
class AESCipher {
    Cipher enc;
    Cipher dec;
    final String algorithm = "AES/CBC/PKCS5Padding";
    protected void setKeyAndIV(Secret key, String iv) {
        byte[] ivBytes;
        IvParameterSpec ivSpec;
        try {
            ivBytes = Hex.decodeHex(iv.toCharArray());
            ivSpec = new IvParameterSpec(ivBytes);
            enc = Cipher.getInstance(algorithm);
            enc.init(Cipher.ENCRYPT_MODE, key, ivSpec);
            dec = Cipher.getInstance(algorithm);
            dec.init(Cipher.DECRYPT_MODE, key, ivSpec);
        } catch (Exception e) {
        }
    }
}
)java";

} // namespace

TEST(DiffCodeE2E, Figure2UsageChange) {
  DiffCode System(api());
  std::vector<usage::UsageChange> Changes =
      System.usageChangesFor(change(Figure2Old, Figure2New), "Cipher");
  // Two Cipher objects -> two usage changes (enc and dec).
  ASSERT_EQ(Changes.size(), 2u);

  std::set<std::string> RemovedStrs, AddedStrs;
  for (const usage::FeaturePath &P : Changes[0].removedPaths())
    RemovedStrs.insert(usage::pathToString(P));
  for (const usage::FeaturePath &P : Changes[0].addedPaths())
    AddedStrs.insert(usage::pathToString(P));

  // Figure 2(d): the exact removed and added features.
  EXPECT_TRUE(RemovedStrs.count("Cipher Cipher.getInstance arg1:AES"));
  EXPECT_TRUE(
      AddedStrs.count("Cipher Cipher.getInstance arg1:AES/CBC/PKCS5Padding"));
  EXPECT_TRUE(AddedStrs.count("Cipher Cipher.init arg3:IvParameterSpec"));
  EXPECT_EQ(RemovedStrs.size(), 1u);
  EXPECT_EQ(AddedStrs.size(), 2u);
}

TEST(DiffCodeE2E, Figure2IvParameterSpecSideChannel) {
  // The same commit also yields an IvParameterSpec usage change (a pure
  // addition, filtered by fadd).
  DiffCode System(api());
  std::vector<usage::UsageChange> Changes = System.usageChangesFor(
      change(Figure2Old, Figure2New), "IvParameterSpec");
  ASSERT_EQ(Changes.size(), 1u);
  EXPECT_TRUE(Changes[0].Removed.empty());
  EXPECT_FALSE(Changes[0].Added.empty());
}

TEST(DiffCodeE2E, RefactoringIsFsame) {
  const char *Old =
      "class A { void m(Key k) throws Exception { "
      "Cipher c = Cipher.getInstance(\"AES\"); "
      "c.init(Cipher.ENCRYPT_MODE, k); } }";
  // Rename everything, extract a constant, wrap in try/catch.
  const char *New =
      "class A { static final String ALGO = \"AES\"; "
      "void configure(Key secret) { try { "
      "Cipher cipher = Cipher.getInstance(ALGO); "
      "cipher.init(Cipher.ENCRYPT_MODE, secret); "
      "} catch (Exception error) { } } }";
  DiffCode System(api());
  std::vector<usage::UsageChange> Changes =
      System.usageChangesFor(change(Old, New), "Cipher");
  for (const usage::UsageChange &C : Changes)
    EXPECT_TRUE(C.isEmpty()) << C.str();
}

TEST(DiffCodeE2E, HelperExtractionIsFsame) {
  const char *Old =
      "class A { void m(Key k) throws Exception { "
      "Cipher c = Cipher.getInstance(\"AES\"); "
      "c.init(Cipher.ENCRYPT_MODE, k); } }";
  const char *New =
      "class A { void m(Key k) throws Exception { "
      "Cipher c = make(); c.init(Cipher.ENCRYPT_MODE, k); } "
      "private Cipher make() throws Exception { "
      "return Cipher.getInstance(\"AES\"); } }";
  DiffCode System(api());
  for (const usage::UsageChange &C :
       System.usageChangesFor(change(Old, New), "Cipher"))
    EXPECT_TRUE(C.isEmpty()) << C.str();
}

TEST(DiffCodeE2E, ProcessChangeClassifies) {
  DiffCode System(api());
  std::vector<const rules::Rule *> CLRules;
  for (const rules::Rule &R : rules::cryptoLintRules())
    CLRules.push_back(&R);
  ChangeRecord Record = System.processChange(
      change(Figure2Old, Figure2New), api().targetClasses(), CLRules);
  ASSERT_TRUE(Record.Classification.count("CL1"));
  EXPECT_EQ(Record.Classification.at("CL1"),
            rules::ChangeClass::SecurityFix);
  EXPECT_EQ(Record.Classification.at("CL4"),
            rules::ChangeClass::NonSemantic);
  EXPECT_TRUE(Record.PerClass.count("Cipher"));
}

TEST(DiffCodeE2E, EmptySourcesHandled) {
  DiffCode System(api());
  analysis::AnalysisResult Empty = System.analyzeSourceChecked("").Result;
  EXPECT_EQ(Empty.Objects.size(), 0u);
  std::vector<usage::UsageChange> Changes = System.usageChangesFor(
      change("", "class A { Cipher c; void m() throws Exception { "
                 "c = Cipher.getInstance(\"AES\"); } }"),
      "Cipher");
  ASSERT_EQ(Changes.size(), 1u);
  EXPECT_TRUE(Changes[0].Removed.empty());
  EXPECT_FALSE(Changes[0].Added.empty());
}

TEST(DiffCodeE2E, BrokenSourceDoesNotCrash) {
  DiffCode System(api());
  std::vector<usage::UsageChange> Changes = System.usageChangesFor(
      change("class A { void m( { Cipher c = Cipher.getInstance(\"AES\" }",
             "class ??? !!!"),
      "Cipher");
  SUCCEED();
}

TEST(DiffCodeE2E, PipelineOverSmallCorpus) {
  corpus::CorpusOptions Opts;
  Opts.Seed = 17;
  Opts.NumProjects = 10;
  corpus::Corpus C = corpus::CorpusGenerator(Opts).generate();
  corpus::Miner M(api());
  std::vector<const corpus::CodeChange *> Mined = M.mine(C);
  ASSERT_FALSE(Mined.empty());

  DiffCode System(api());
  std::vector<const rules::Rule *> CLRules;
  for (const rules::Rule &R : rules::cryptoLintRules())
    CLRules.push_back(&R);
  CorpusReport Report = System.run({.Changes = Mined,
                                            .TargetClasses = api().targetClasses(),
                                            .ClassifyWith = CLRules});

  ASSERT_EQ(Report.PerClass.size(), 6u);
  EXPECT_EQ(Report.Changes.size(), Mined.size());

  for (const ClassReport &Class : Report.PerClass) {
    // Filter stage counts are monotonically non-increasing.
    EXPECT_LE(Class.Filtered.AfterSame, Class.Filtered.Total);
    EXPECT_LE(Class.Filtered.AfterAdd, Class.Filtered.AfterSame);
    EXPECT_LE(Class.Filtered.AfterRem, Class.Filtered.AfterAdd);
    EXPECT_LE(Class.Filtered.AfterDup, Class.Filtered.AfterRem);
    EXPECT_EQ(Class.Filtered.Kept.size(), Class.Filtered.AfterDup);
    // fsame removes the large majority.
    if (Class.Filtered.Total > 20)
      EXPECT_LT(Class.Filtered.AfterSame * 2, Class.Filtered.Total);
  }
}

TEST(DiffCodeE2E, GroundTruthFixesSurviveFilters) {
  // The paper's key validation: filters remove non-semantic changes but
  // never a (non-duplicate) security fix. We check it against the
  // generator's ground truth.
  corpus::CorpusOptions Opts;
  Opts.Seed = 23;
  Opts.NumProjects = 15;
  corpus::Corpus C = corpus::CorpusGenerator(Opts).generate();
  corpus::Miner M(api());
  DiffCode System(api());

  for (const corpus::Project &P : C.Projects) {
    for (const corpus::CodeChange &Change : P.History) {
      if (!Change.isGroundTruthFix())
        continue;
      // A fix must produce at least one usage change that passes the
      // solo filters (non-empty F- and F+) for some target class.
      bool Survives = false;
      for (const std::string &Target : api().targetClasses())
        for (const usage::UsageChange &UC :
             System.usageChangesFor(Change, Target))
          Survives = Survives || classifySolo(UC) == FilterStage::Kept;
      EXPECT_TRUE(Survives) << Change.origin() << " " << Change.Kind;
    }
  }
}

TEST(DiffCodeE2E, RefactoringsNeverSurviveFilters) {
  corpus::CorpusOptions Opts;
  Opts.Seed = 29;
  Opts.NumProjects = 8;
  corpus::Corpus C = corpus::CorpusGenerator(Opts).generate();
  DiffCode System(api());

  unsigned CheckedRefactors = 0;
  for (const corpus::Project &P : C.Projects) {
    for (const corpus::CodeChange &Change : P.History) {
      if (Change.Kind != "refactor" || CheckedRefactors > 40)
        continue;
      ++CheckedRefactors;
      for (const std::string &Target : api().targetClasses())
        for (const usage::UsageChange &UC :
             System.usageChangesFor(Change, Target))
          EXPECT_EQ(classifySolo(UC), FilterStage::FSame)
              << Change.origin() << " " << Target << "\n" << UC.str();
    }
  }
  EXPECT_GT(CheckedRefactors, 10u);
}

TEST(DiffCodeE2E, PipelineDeterminism) {
  corpus::CorpusOptions Opts;
  Opts.Seed = 41;
  Opts.NumProjects = 5;
  corpus::Corpus C = corpus::CorpusGenerator(Opts).generate();
  corpus::Miner M(api());
  std::vector<const corpus::CodeChange *> Mined = M.mine(C);
  DiffCode System(api());
  CorpusReport A =
      System.run({.Changes = Mined, .TargetClasses = {"Cipher"}});
  CorpusReport B =
      System.run({.Changes = Mined, .TargetClasses = {"Cipher"}});
  ASSERT_EQ(A.PerClass.size(), B.PerClass.size());
  EXPECT_EQ(A.PerClass[0].Filtered.Total, B.PerClass[0].Filtered.Total);
  EXPECT_EQ(A.PerClass[0].Filtered.AfterDup,
            B.PerClass[0].Filtered.AfterDup);
  ASSERT_EQ(A.PerClass[0].Filtered.Kept.size(),
            B.PerClass[0].Filtered.Kept.size());
  for (std::size_t I = 0; I < A.PerClass[0].Filtered.Kept.size(); ++I)
    EXPECT_TRUE(A.PerClass[0].Filtered.Kept[I].sameFeatures(
        B.PerClass[0].Filtered.Kept[I]));
}

TEST(DiffCodeE2E, ParallelPipelineMatchesSerial) {
  corpus::CorpusOptions Opts;
  Opts.Seed = 47;
  Opts.NumProjects = 8;
  corpus::Corpus C = corpus::CorpusGenerator(Opts).generate();
  corpus::Miner M(api());
  std::vector<const corpus::CodeChange *> Mined = M.mine(C);

  PipelineConfig Serial;
  Serial.Threads = 1;
  PipelineConfig Parallel;
  Parallel.Threads = 4;
  CorpusReport A = DiffCode(api(), Serial)
                       .run({.Changes = Mined,
                                     .TargetClasses = api().targetClasses()});
  CorpusReport B = DiffCode(api(), Parallel)
                       .run({.Changes = Mined,
                                     .TargetClasses = api().targetClasses()});

  ASSERT_EQ(A.Changes.size(), B.Changes.size());
  for (std::size_t I = 0; I < A.Changes.size(); ++I)
    EXPECT_EQ(A.Changes[I].Origin, B.Changes[I].Origin);
  ASSERT_EQ(A.PerClass.size(), B.PerClass.size());
  for (std::size_t I = 0; I < A.PerClass.size(); ++I) {
    EXPECT_EQ(A.PerClass[I].Filtered.Total, B.PerClass[I].Filtered.Total);
    EXPECT_EQ(A.PerClass[I].Filtered.AfterDup,
              B.PerClass[I].Filtered.AfterDup);
    ASSERT_EQ(A.PerClass[I].Filtered.Kept.size(),
              B.PerClass[I].Filtered.Kept.size());
    for (std::size_t J = 0; J < A.PerClass[I].Filtered.Kept.size(); ++J)
      EXPECT_TRUE(A.PerClass[I].Filtered.Kept[J].sameFeatures(
          B.PerClass[I].Filtered.Kept[J]));
  }
}

TEST(DiffCodeE2E, ThreadedPipelineReportIsByteIdentical) {
  // The strongest determinism statement: every knob of the parallel
  // engine (pipeline workers, clustering threads, NN-chain vs naive
  // agglomeration) must reproduce the serial run's CorpusReport JSON
  // byte for byte, and the per-class dendrograms node for node.
  corpus::CorpusOptions Opts;
  Opts.Seed = 53;
  Opts.NumProjects = 8;
  corpus::Corpus C = corpus::CorpusGenerator(Opts).generate();
  corpus::Miner M(api());
  std::vector<const corpus::CodeChange *> Mined = M.mine(C);
  ASSERT_FALSE(Mined.empty());

  PipelineConfig Serial;
  Serial.Threads = 1;
  Serial.Clustering.Threads = 1;

  PipelineConfig Threaded;
  Threaded.Threads = 8;
  Threaded.Clustering.Threads = 8;

  PipelineConfig NaiveCluster;
  NaiveCluster.Threads = 8;
  NaiveCluster.Clustering.Threads = 8;
  NaiveCluster.Clustering.Algo =
      cluster::ClusteringOptions::Algorithm::Naive;

  core::PipelineRequest Request{.Changes = Mined,
                                .TargetClasses = api().targetClasses()};
  CorpusReport A = DiffCode(api(), Serial).run(Request);
  CorpusReport B = DiffCode(api(), Threaded).run(Request);
  CorpusReport N = DiffCode(api(), NaiveCluster).run(Request);

  std::string JsonA = corpusReportToJson(A);
  EXPECT_EQ(JsonA, corpusReportToJson(B));
  EXPECT_EQ(JsonA, corpusReportToJson(N));

  // The JSON omits the trees, so compare those explicitly.
  ASSERT_EQ(A.PerClass.size(), B.PerClass.size());
  ASSERT_EQ(A.PerClass.size(), N.PerClass.size());
  for (std::size_t I = 0; I < A.PerClass.size(); ++I) {
    const auto &TA = A.PerClass[I].Tree.nodes();
    const auto &TB = B.PerClass[I].Tree.nodes();
    const auto &TN = N.PerClass[I].Tree.nodes();
    ASSERT_EQ(TA.size(), TB.size()) << A.PerClass[I].TargetClass;
    ASSERT_EQ(TA.size(), TN.size()) << A.PerClass[I].TargetClass;
    for (std::size_t K = 0; K < TA.size(); ++K) {
      EXPECT_EQ(TA[K].Left, TB[K].Left);
      EXPECT_EQ(TA[K].Right, TB[K].Right);
      EXPECT_EQ(TA[K].Item, TB[K].Item);
      EXPECT_EQ(TA[K].Height, TB[K].Height);
      EXPECT_EQ(TA[K].Left, TN[K].Left);
      EXPECT_EQ(TA[K].Right, TN[K].Right);
      EXPECT_EQ(TA[K].Item, TN[K].Item);
      EXPECT_EQ(TA[K].Height, TN[K].Height);
    }
  }
}

TEST(DiffCodeE2E, StageEntryPointsComposeToRunPipeline) {
  // The redesigned API contract: run(Request) is exactly
  // analyzeChanges + per-class filterClass/clusterClass + the health
  // rollup. Composing the stages by hand reproduces it byte for byte.
  corpus::CorpusOptions Opts;
  Opts.Seed = 61;
  Opts.NumProjects = 6;
  corpus::Corpus C = corpus::CorpusGenerator(Opts).generate();
  corpus::Miner M(api());
  std::vector<const corpus::CodeChange *> Mined = M.mine(C);
  ASSERT_FALSE(Mined.empty());

  DiffCode System(api());
  PipelineRequest Request{.Changes = Mined,
                          .TargetClasses = api().targetClasses()};

  CorpusReport Whole = System.run(Request);

  CorpusReport Staged;
  Staged.Changes = System.analyzeChanges(Request);
  for (const std::string &Target : Request.TargetClasses) {
    Staged.PerClass.push_back(System.filterClass(Staged.Changes, Target));
    System.clusterClass(Staged.PerClass.back());
  }
  computeCorpusHealth(Staged);

  EXPECT_EQ(corpusReportToJson(Whole), corpusReportToJson(Staged));
  ASSERT_EQ(Whole.PerClass.size(), Staged.PerClass.size());
  for (std::size_t I = 0; I < Whole.PerClass.size(); ++I) {
    const auto &TA = Whole.PerClass[I].Tree.nodes();
    const auto &TB = Staged.PerClass[I].Tree.nodes();
    ASSERT_EQ(TA.size(), TB.size());
    for (std::size_t K = 0; K < TA.size(); ++K) {
      EXPECT_EQ(TA[K].Left, TB[K].Left);
      EXPECT_EQ(TA[K].Right, TB[K].Right);
      EXPECT_EQ(TA[K].Item, TB[K].Item);
      EXPECT_EQ(TA[K].Height, TB[K].Height);
    }
  }
}

TEST(DiffCodeE2E, ShardedPipelineMatchesDenseTreesAndReportsStats) {
  corpus::CorpusOptions Opts;
  Opts.Seed = 71;
  Opts.NumProjects = 8;
  corpus::Corpus C = corpus::CorpusGenerator(Opts).generate();
  corpus::Miner M(api());
  std::vector<const corpus::CodeChange *> Mined = M.mine(C);
  ASSERT_FALSE(Mined.empty());

  PipelineConfig Dense;
  PipelineConfig Unlimited; // armed, but one shard: byte-identical trees
  Unlimited.Sharding.Enabled = true;
  Unlimited.Sharding.MaxShardSize = 0;
  Unlimited.Sharding.Threads = 4;

  PipelineRequest Request{.Changes = Mined,
                          .TargetClasses = api().targetClasses()};
  CorpusReport A = DiffCode(api(), Dense).run(Request);
  CorpusReport B = DiffCode(api(), Unlimited).run(Request);

  ASSERT_EQ(A.PerClass.size(), B.PerClass.size());
  for (std::size_t I = 0; I < A.PerClass.size(); ++I) {
    const auto &TA = A.PerClass[I].Tree.nodes();
    const auto &TB = B.PerClass[I].Tree.nodes();
    ASSERT_EQ(TA.size(), TB.size()) << A.PerClass[I].TargetClass;
    for (std::size_t K = 0; K < TA.size(); ++K) {
      EXPECT_EQ(TA[K].Left, TB[K].Left);
      EXPECT_EQ(TA[K].Right, TB[K].Right);
      EXPECT_EQ(TA[K].Item, TB[K].Item);
      EXPECT_EQ(TA[K].Height, TB[K].Height);
    }
    // Stats surface only on the armed run, and only where items existed.
    EXPECT_EQ(A.PerClass[I].Sharding.NumShards, 0u);
    if (!B.PerClass[I].Filtered.Kept.empty())
      EXPECT_EQ(B.PerClass[I].Sharding.NumShards, 1u);
  }

  // The report JSON carries the shard stats when (and only when) the
  // sharded engine ran, so the disabled path stays byte-identical to
  // the pre-sharding writer.
  std::string JsonA = corpusReportToJson(A);
  std::string JsonB = corpusReportToJson(B);
  EXPECT_EQ(JsonA.find("\"sharding\""), std::string::npos);
  bool AnyKept = false;
  for (const ClassReport &Class : B.PerClass)
    AnyKept = AnyKept || !Class.Filtered.Kept.empty();
  if (AnyKept)
    EXPECT_NE(JsonB.find("\"sharding\""), std::string::npos);
}
