//===- core/DiffCode.h - The end-to-end DiffCode pipeline ------------------===//
//
// Part of the DiffCode project, a reproduction of "Inferring Crypto API
// Rules from Code Changes" (PLDI'18).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The DiffCode system (Section 5): parse both versions of each code
/// change, analyze them with the abstract interpreter, derive usage DAGs
/// per target class, pair and diff them into usage changes, filter, and
/// cluster — producing everything the paper's evaluation reports.
///
//===----------------------------------------------------------------------===//

#ifndef DIFFCODE_CORE_DIFFCODE_H
#define DIFFCODE_CORE_DIFFCODE_H

#include "analysis/AbstractInterpreter.h"
#include "cluster/HierarchicalClustering.h"
#include "core/Filters.h"
#include "corpus/RepoModel.h"
#include "rules/ChangeClassifier.h"
#include "usage/UsageChange.h"

#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace diffcode {
namespace core {

/// Pipeline knobs.
struct DiffCodeOptions {
  analysis::AnalysisOptions Analysis;
  unsigned DagDepth = 5; ///< Section 3.4's n.
  /// Dendrogram cut threshold for flat clusters (manual-inspection aid).
  double ClusterCut = 0.4;
  /// Worker threads for runPipeline's per-change processing (each change
  /// is independent: parse + analyze + diff). 1 = serial; 0 = one per
  /// hardware thread. Results are deterministic regardless.
  unsigned Threads = 1;
  /// Clustering engine knobs: distance-matrix threads (same 0/1
  /// semantics as Threads) and the agglomeration algorithm (NNChain by
  /// default; the naive reference is retained for differential testing).
  /// Every setting yields the identical CorpusReport.
  cluster::ClusteringOptions Clustering;
};

/// The per-code-change output: usage changes per target class, the
/// rule-based classification, and provenance.
struct ChangeRecord {
  std::string Origin;
  std::string GroundTruthKind; ///< Generator kind; empty for mined code.
  /// Target class -> usage changes this code change produced.
  std::map<std::string, std::vector<usage::UsageChange>> PerClass;
  /// Rule id -> fix/bug/none classification (Section 6.2).
  std::map<std::string, rules::ChangeClass> Classification;
};

/// Aggregated per-target-class results (Figure 6 row + Figure 8 input).
struct ClassReport {
  std::string TargetClass;
  std::vector<usage::UsageChange> AllChanges;
  FilterResult Filtered;
  cluster::Dendrogram Tree; ///< Over Filtered.Kept (empty if not built).
};

/// Whole-corpus pipeline output.
struct CorpusReport {
  std::vector<ChangeRecord> Changes;
  std::vector<ClassReport> PerClass;
};

/// The system facade.
class DiffCode {
public:
  explicit DiffCode(const apimodel::CryptoApiModel &Api,
                    DiffCodeOptions Opts = DiffCodeOptions());

  const DiffCodeOptions &options() const { return Opts; }

  /// Parses and abstractly interprets one Java source (empty source yields
  /// an empty result — new/deleted files diff against nothing).
  analysis::AnalysisResult analyzeSource(std::string_view Source) const;

  /// Deduplicated usage DAGs of \p TargetClass across all executions.
  std::vector<usage::UsageDag>
  dagsForClass(const analysis::AnalysisResult &Result,
               const std::string &TargetClass) const;

  /// Usage changes of one code change for one target class.
  std::vector<usage::UsageChange>
  usageChangesFor(const corpus::CodeChange &Change,
                  const std::string &TargetClass) const;

  /// Processes one code change end to end for all \p TargetClasses,
  /// classifying it under \p ClassifyWith (may be empty).
  ChangeRecord
  processChange(const corpus::CodeChange &Change,
                const std::vector<std::string> &TargetClasses,
                const std::vector<const rules::Rule *> &ClassifyWith) const;

  /// Runs the full pipeline over mined changes. \p BuildDendrograms
  /// controls whether the (O(n^2) distance) clustering step runs.
  CorpusReport
  runPipeline(const std::vector<const corpus::CodeChange *> &Changes,
              const std::vector<std::string> &TargetClasses,
              const std::vector<const rules::Rule *> &ClassifyWith = {},
              bool BuildDendrograms = true) const;

private:
  const apimodel::CryptoApiModel &Api;
  DiffCodeOptions Opts;
};

} // namespace core
} // namespace diffcode

#endif // DIFFCODE_CORE_DIFFCODE_H
