//===- usage/UsageDag.cpp --------------------------------------------------===//

#include "usage/UsageDag.h"

#include <algorithm>
#include <cassert>
#include <functional>
#include <set>

using namespace diffcode;
using namespace diffcode::usage;
using namespace diffcode::analysis;

NodeLabel NodeLabel::root(std::string TypeName) {
  NodeLabel L;
  L.K = Kind::Root;
  L.Text = std::move(TypeName);
  return L;
}

NodeLabel NodeLabel::method(std::string Signature) {
  NodeLabel L;
  L.K = Kind::Method;
  // Node labels carry "Class.name" without the arity suffix: the paper's
  // Figure 2 diff localizes the init/2 -> init/3 change to the added
  // arg3 path, which requires the two init nodes to share a label.
  std::size_t Slash = Signature.rfind('/');
  if (Slash != std::string::npos)
    Signature.resize(Slash);
  L.Text = std::move(Signature);
  return L;
}

NodeLabel NodeLabel::arg(unsigned Index, const AbstractValue &Value) {
  NodeLabel L;
  L.K = Kind::Arg;
  L.ArgIndex = Index;
  L.ValueIsString = Value.kind() == AVKind::StrConst;
  L.Text = Value.label();
  return L;
}

UsageDag UsageDag::emptyFor(std::string TypeName) {
  UsageDag Dag;
  Dag.Nodes.push_back({NodeLabel::root(std::move(TypeName)), {}});
  return Dag;
}

UsageDag UsageDag::build(const ObjectTable &Objects, const UsageLog &Log,
                         unsigned RootObj, unsigned MaxDepth) {
  UsageDag Dag;
  Dag.Nodes.push_back(
      {NodeLabel::root(Objects.get(RootObj).TypeName), {}});

  // Expand an object node: one method child per distinct usage event, one
  // argument child per parameter; tracked-object arguments recurse.
  // PathObjs guards against cycles (an object is expanded at most once per
  // root-to-node path).
  std::function<void(unsigned, unsigned, unsigned, std::set<unsigned>)>
      ExpandObject = [&](unsigned NodeIdx, unsigned ObjId, unsigned Depth,
                         std::set<unsigned> PathObjs) {
        if (Depth >= MaxDepth)
          return;
        auto LogIt = Log.find(ObjId);
        if (LogIt == Log.end())
          return;
        PathObjs.insert(ObjId);

        // Distinct events only — the DAG is a set of (m, sigma) nodes.
        std::vector<const UsageEvent *> Distinct;
        for (const UsageEvent &Event : LogIt->second) {
          bool Seen = false;
          for (const UsageEvent *Prev : Distinct)
            Seen = Seen || (*Prev == Event);
          if (!Seen)
            Distinct.push_back(&Event);
        }

        for (const UsageEvent *Event : Distinct) {
          // The paper's no-cycle rule: an event whose arguments refer back
          // to an object on the current path would close a cycle (e.g.
          // re-expanding Cipher.init underneath the IvParameterSpec it
          // received) — skip it.
          bool ClosesCycle = false;
          for (const AbstractValue &Arg : Event->Args)
            if (Arg.isTrackedObject() && PathObjs.count(Arg.objectId()))
              ClosesCycle = true;
          if (ClosesCycle && Depth > 0)
            continue;
          unsigned MethodIdx = static_cast<unsigned>(Dag.Nodes.size());
          Dag.Nodes.push_back({NodeLabel::method(Event->MethodSig), {}});
          Dag.Nodes[NodeIdx].Children.push_back(MethodIdx);
          if (Depth + 1 >= MaxDepth)
            continue;
          for (std::size_t I = 0; I < Event->Args.size(); ++I) {
            const AbstractValue &Arg = Event->Args[I];
            unsigned ArgIdx = static_cast<unsigned>(Dag.Nodes.size());
            Dag.Nodes.push_back(
                {NodeLabel::arg(static_cast<unsigned>(I + 1), Arg), {}});
            Dag.Nodes[MethodIdx].Children.push_back(ArgIdx);
            if (Arg.isTrackedObject() && !PathObjs.count(Arg.objectId()))
              ExpandObject(ArgIdx, Arg.objectId(), Depth + 2, PathObjs);
          }
        }
      };

  ExpandObject(0, RootObj, 0, {});
  return Dag;
}

std::vector<FeaturePath> UsageDag::paths() const {
  std::vector<FeaturePath> Out;
  std::set<std::string> Seen;
  FeaturePath Current;

  std::function<void(unsigned)> Walk = [&](unsigned Index) {
    Current.push_back(Nodes[Index].Label);
    std::string Key = pathToString(Current);
    if (Seen.insert(Key).second)
      Out.push_back(Current);
    for (unsigned Child : Nodes[Index].Children)
      Walk(Child);
    Current.pop_back();
  };
  Walk(0);
  return Out;
}

std::vector<NodeLabel> UsageDag::labelSet() const {
  std::vector<NodeLabel> Labels;
  Labels.reserve(Nodes.size());
  for (const Node &N : Nodes)
    Labels.push_back(N.Label);
  std::sort(Labels.begin(), Labels.end());
  Labels.erase(std::unique(Labels.begin(), Labels.end()), Labels.end());
  return Labels;
}

std::string UsageDag::canonicalString() const {
  std::function<std::string(unsigned)> Print = [&](unsigned Index) {
    std::string Out = Nodes[Index].Label.str();
    if (Nodes[Index].Children.empty())
      return Out;
    std::vector<std::string> Kids;
    for (unsigned Child : Nodes[Index].Children)
      Kids.push_back(Print(Child));
    std::sort(Kids.begin(), Kids.end());
    Out += '(';
    for (std::size_t I = 0; I < Kids.size(); ++I) {
      if (I != 0)
        Out += ',';
      Out += Kids[I];
    }
    Out += ')';
    return Out;
  };
  return Print(0);
}

std::string UsageDag::str() const {
  std::string Out;
  std::function<void(unsigned, unsigned)> Walk = [&](unsigned Index,
                                                     unsigned Depth) {
    Out.append(Depth * 2, ' ');
    Out += Nodes[Index].Label.str();
    Out += '\n';
    for (unsigned Child : Nodes[Index].Children)
      Walk(Child, Depth + 1);
  };
  Walk(0, 0);
  return Out;
}

double diffcode::usage::dagDistance(const UsageDag &A, const UsageDag &B) {
  std::vector<NodeLabel> LA = A.labelSet();
  std::vector<NodeLabel> LB = B.labelSet();
  std::size_t Common = 0;
  std::size_t I = 0, J = 0;
  while (I < LA.size() && J < LB.size()) {
    if (LA[I] == LB[J]) {
      ++Common;
      ++I;
      ++J;
    } else if (LA[I] < LB[J]) {
      ++I;
    } else {
      ++J;
    }
  }
  std::size_t Union = LA.size() + LB.size() - Common;
  if (Union == 0)
    return 0.0;
  return 1.0 - static_cast<double>(Common) / static_cast<double>(Union);
}
