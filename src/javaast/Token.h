//===- javaast/Token.h - Java token definitions ----------------------------===//
//
// Part of the DiffCode project, a reproduction of "Inferring Crypto API
// Rules from Code Changes" (PLDI'18).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Token kinds for the Java subset the DiffCode frontend understands. The
/// subset covers the constructs that appear around Java Crypto API usages
/// in real commits (Figure 2 of the paper is representative).
///
//===----------------------------------------------------------------------===//

#ifndef DIFFCODE_JAVAAST_TOKEN_H
#define DIFFCODE_JAVAAST_TOKEN_H

#include "javaast/SourceLocation.h"

#include <string>
#include <string_view>

namespace diffcode {
namespace java {

/// Lexical classes. Keywords get dedicated kinds so the parser can switch
/// on them directly.
enum class TokenKind {
  EndOfFile,
  Unknown,

  Identifier,
  IntLiteral,
  LongLiteral,
  StringLiteral,
  CharLiteral,

  // Keywords.
  KwAbstract,
  KwAssert,
  KwBoolean,
  KwBreak,
  KwByte,
  KwCase,
  KwCatch,
  KwChar,
  KwClass,
  KwContinue,
  KwDefault,
  KwDo,
  KwDouble,
  KwElse,
  KwExtends,
  KwFalse,
  KwFinal,
  KwFinally,
  KwFloat,
  KwFor,
  KwIf,
  KwImplements,
  KwImport,
  KwInstanceof,
  KwInt,
  KwInterface,
  KwLong,
  KwNew,
  KwNull,
  KwPackage,
  KwPrivate,
  KwProtected,
  KwPublic,
  KwReturn,
  KwShort,
  KwStatic,
  KwSuper,
  KwSwitch,
  KwSynchronized,
  KwThis,
  KwThrow,
  KwThrows,
  KwTrue,
  KwTry,
  KwVoid,
  KwWhile,

  // Punctuation and operators.
  LBrace,
  RBrace,
  LParen,
  RParen,
  LBracket,
  RBracket,
  Semi,
  Comma,
  Dot,
  Ellipsis,
  At,
  Question,
  Colon,
  ColonColon,
  Arrow,

  Assign,
  PlusAssign,
  MinusAssign,
  StarAssign,
  SlashAssign,

  Plus,
  Minus,
  Star,
  Slash,
  Percent,
  PlusPlus,
  MinusMinus,

  Not,
  Tilde,
  Amp,
  AmpAmp,
  Pipe,
  PipePipe,
  Caret,

  Less,
  Greater,
  LessEqual,
  GreaterEqual,
  EqualEqual,
  NotEqual,
  Shl,
  Shr,
};

/// A lexed token: kind, spelling, and position. Spelling views into the
/// source buffer for identifiers; literal tokens carry decoded text in
/// Text (e.g., string literals without quotes, escapes resolved).
struct Token {
  TokenKind Kind = TokenKind::Unknown;
  SourceLocation Loc;
  std::string Text;

  bool is(TokenKind K) const { return Kind == K; }
  bool isNot(TokenKind K) const { return Kind != K; }

  /// True for any keyword token.
  bool isKeyword() const {
    return Kind >= TokenKind::KwAbstract && Kind <= TokenKind::KwWhile;
  }
};

/// Human-readable token-kind name for diagnostics ("identifier", "'{'").
std::string_view tokenKindName(TokenKind Kind);

/// Maps identifier spelling to a keyword kind; returns
/// TokenKind::Identifier when \p Spelling is not a keyword.
TokenKind lookupKeyword(std::string_view Spelling);

} // namespace java
} // namespace diffcode

#endif // DIFFCODE_JAVAAST_TOKEN_H
