//===- rules/Rule.cpp ------------------------------------------------------===//

#include "rules/Rule.h"

#include <algorithm>
#include <cassert>

using namespace diffcode;
using namespace diffcode::rules;
using namespace diffcode::analysis;

bool ArgConstraint::matches(const AbstractValue &Value) const {
  switch (K) {
  case Kind::Any:
    return true;
  case Kind::StrEquals:
    if (Value.kind() != AVKind::StrConst)
      return false;
    return std::find(Values.begin(), Values.end(), Value.strValue()) !=
           Values.end();
  case Kind::StrNotEquals:
    if (Value.kind() != AVKind::StrConst)
      return true; // an unknown string is "not provably the safe value"
    return std::find(Values.begin(), Values.end(), Value.strValue()) ==
           Values.end();
  case Kind::StrStartsWith: {
    if (Value.kind() != AVKind::StrConst)
      return false;
    for (const std::string &Prefix : Values)
      if (Value.strValue().rfind(Prefix, 0) == 0)
        return true;
    return false;
  }
  case Kind::IntLess:
    return Value.kind() == AVKind::IntConst && Value.intValue() < IntBound;
  case Kind::IntAtLeast:
    return Value.kind() == AVKind::IntConst && Value.intValue() >= IntBound;
  case Kind::IntEquals:
    return Value.kind() == AVKind::IntConst && Value.intValue() == IntBound;
  case Kind::IsConstant:
    return Value.isConstant();
  case Kind::IsTop:
    return !Value.isConstant();
  }
  return false;
}

bool CallPattern::matchesEvent(const UsageEvent &Event) const {
  // Signatures are "Class.name/arity".
  std::size_t Slash = Event.MethodSig.rfind('/');
  std::size_t Dot = Event.MethodSig.rfind('.', Slash);
  if (Slash == std::string::npos || Dot == std::string::npos)
    return false;
  std::string EventClass = Event.MethodSig.substr(0, Dot);
  std::string EventName = Event.MethodSig.substr(Dot + 1, Slash - Dot - 1);

  if (!ClassName.empty() && EventClass != ClassName)
    return false;
  if (EventName != MethodName)
    return false;
  if (Arity >= 0 && Event.Args.size() != static_cast<std::size_t>(Arity))
    return false;
  for (const ArgConstraint &Constraint : Args) {
    assert(Constraint.Index >= 1 && "argument indices are 1-based");
    if (Constraint.Index > Event.Args.size())
      return false;
    if (!Constraint.matches(Event.Args[Constraint.Index - 1]))
      return false;
  }
  return true;
}

ObjectFormula ObjectFormula::exists(CallPattern Pattern) {
  ObjectFormula F;
  F.K = Kind::Exists;
  F.Pattern = std::move(Pattern);
  return F;
}

ObjectFormula ObjectFormula::notExists(CallPattern Pattern) {
  ObjectFormula F;
  F.K = Kind::NotExists;
  F.Pattern = std::move(Pattern);
  return F;
}

ObjectFormula ObjectFormula::all(std::vector<ObjectFormula> Children) {
  ObjectFormula F;
  F.K = Kind::And;
  F.Children = std::move(Children);
  return F;
}

ObjectFormula ObjectFormula::any(std::vector<ObjectFormula> Children) {
  ObjectFormula F;
  F.K = Kind::Or;
  F.Children = std::move(Children);
  return F;
}

bool ObjectFormula::eval(const std::vector<UsageEvent> &Usage) const {
  switch (K) {
  case Kind::Exists:
    for (const UsageEvent &Event : Usage)
      if (Pattern.matchesEvent(Event))
        return true;
    return false;
  case Kind::NotExists:
    for (const UsageEvent &Event : Usage)
      if (Pattern.matchesEvent(Event))
        return false;
    return true;
  case Kind::And:
    for (const ObjectFormula &Child : Children)
      if (!Child.eval(Usage))
        return false;
    return true;
  case Kind::Or:
    for (const ObjectFormula &Child : Children)
      if (Child.eval(Usage))
        return true;
    return false;
  }
  return false;
}

std::vector<std::string> Rule::applicableTypes() const {
  std::vector<std::string> Types;
  for (const Clause &C : Clauses)
    if (!C.Negated &&
        std::find(Types.begin(), Types.end(), C.TypeName) == Types.end())
      Types.push_back(C.TypeName);
  return Types;
}

bool diffcode::rules::someObjectSatisfies(const UnitFacts &Facts,
                                          const std::string &TypeName,
                                          const ObjectFormula &Formula) {
  for (const auto &[ObjId, Events] : Facts.Merged) {
    if (Facts.Objects->get(ObjId).TypeName != TypeName)
      continue;
    if (Formula.eval(Events))
      return true;
  }
  return false;
}

bool diffcode::rules::hasObjectOfType(const UnitFacts &Facts,
                                      const std::string &TypeName) {
  for (const auto &[ObjId, Events] : Facts.Merged)
    if (Facts.Objects->get(ObjId).TypeName == TypeName)
      return true;
  return false;
}

bool diffcode::rules::ruleApplicable(const Rule &R,
                                     const std::vector<UnitFacts> &Units,
                                     const ProjectMetadata &Meta) {
  if (R.RequireAndroid && !Meta.IsAndroid)
    return false;
  // Composite rules (R13): applicable only when every positive clause is
  // satisfied — Figure 10 counts 8 projects (1.5%) as applicable to R13,
  // far fewer than the 211 with any Cipher usage, so presence of the
  // clause *types* alone cannot be the paper's notion.
  if (R.Clauses.size() > 1) {
    for (const Rule::Clause &Clause : R.Clauses) {
      if (Clause.Negated)
        continue;
      bool Satisfied = false;
      for (const UnitFacts &Facts : Units)
        if (someObjectSatisfies(Facts, Clause.TypeName, Clause.Formula)) {
          Satisfied = true;
          break;
        }
      if (!Satisfied)
        return false;
    }
    return true;
  }

  for (const std::string &Type : R.applicableTypes()) {
    bool Found = false;
    for (const UnitFacts &Facts : Units)
      if (hasObjectOfType(Facts, Type)) {
        Found = true;
        break;
      }
    if (!Found)
      return false;
  }
  return !R.applicableTypes().empty();
}

bool diffcode::rules::ruleMatches(const Rule &R,
                                  const std::vector<UnitFacts> &Units,
                                  const ProjectMetadata &Meta) {
  if (R.RequireAndroid && !Meta.IsAndroid)
    return false;
  if (R.MinSdkAtLeast >= 0 && Meta.MinSdkVersion < R.MinSdkAtLeast)
    return false;
  if (R.RequireNoLprngFix && Meta.HasLinuxPrngFix)
    return false;

  for (const Rule::Clause &Clause : R.Clauses) {
    bool Satisfied = false;
    for (const UnitFacts &Facts : Units)
      if (someObjectSatisfies(Facts, Clause.TypeName, Clause.Formula)) {
        Satisfied = true;
        break;
      }
    if (Clause.Negated ? Satisfied : !Satisfied)
      return false;
  }
  return true;
}
