//===- tests/test_service_session.cpp - Incremental session differential --===//
//
// Part of the DiffCode project, a reproduction of "Inferring Crypto API
// Rules from Code Changes" (PLDI'18).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The AnalysisSession contract (DESIGN.md "Service mode and the
/// session API"): after any sequence of ingests, the session's report
/// is byte-identical to a cold DiffCode::run over the same changes in
/// the same order — at any thread count, under any cache bound (the
/// bound changes cost, never bytes), with the ServiceHash fault site
/// collapsing the primary content hash, and with an armed in-process
/// fault plan (where the session bypasses its caches entirely rather
/// than memoize nondeterministic outcomes).
///
//===----------------------------------------------------------------------===//

#include "service/AnalysisSession.h"

#include "core/ReportWriter.h"
#include "corpus/CorpusGenerator.h"
#include "corpus/Miner.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

using namespace diffcode;
using namespace diffcode::core;
using namespace diffcode::service;

namespace {

const apimodel::CryptoApiModel &api() {
  return apimodel::CryptoApiModel::javaCryptoApi();
}

/// A deterministic mined change stream, by value so ingests can slice it.
std::vector<corpus::CodeChange> minedChanges(unsigned Projects = 12,
                                             std::uint64_t Seed = 42) {
  corpus::CorpusOptions Opts;
  Opts.NumProjects = Projects;
  Opts.Seed = Seed;
  corpus::Corpus C = corpus::CorpusGenerator(Opts).generate();
  corpus::Miner M(api());
  std::vector<corpus::CodeChange> Out;
  for (const corpus::CodeChange *Change : M.mine(C))
    Out.push_back(*Change);
  return Out;
}

/// The cold-batch oracle: one fresh DiffCode::run over \p Changes.
std::string coldJson(const std::vector<corpus::CodeChange> &Changes,
                     const PipelineConfig &Config = PipelineConfig()) {
  DiffCode System(api(), Config);
  PipelineRequest Request;
  for (const corpus::CodeChange &Change : Changes)
    Request.Changes.push_back(&Change);
  Request.TargetClasses = api().targetClasses();
  return corpusReportToJson(System.run(Request));
}

/// Splits \p Changes into \p Parts contiguous batches (sizes as even as
/// possible; order preserved).
std::vector<std::vector<corpus::CodeChange>>
splitBatches(const std::vector<corpus::CodeChange> &Changes,
             std::size_t Parts) {
  std::vector<std::vector<corpus::CodeChange>> Out(Parts);
  for (std::size_t I = 0; I < Changes.size(); ++I)
    Out[I * Parts / Changes.size()].push_back(Changes[I]);
  return Out;
}

/// Ingests every batch into a fresh session and returns the snapshot.
std::string
sessionJson(const std::vector<std::vector<corpus::CodeChange>> &Batches,
            SessionOptions Opts, SessionStats *StatsOut = nullptr) {
  AnalysisSession Session(api(), std::move(Opts));
  for (const std::vector<corpus::CodeChange> &Batch : Batches)
    Session.ingest(Batch);
  if (StatsOut)
    *StatsOut = Session.stats();
  return Session.reportJson();
}

} // namespace

TEST(ServiceSession, EmptySessionMatchesEmptyColdRun) {
  AnalysisSession Session(api(), SessionOptions());
  EXPECT_EQ(Session.size(), 0u);
  EXPECT_EQ(Session.reportJson(), coldJson({}));
}

TEST(ServiceSession, BatchedIngestMatchesColdBatchAtAnyThreadCount) {
  std::vector<corpus::CodeChange> Changes = minedChanges();
  ASSERT_GE(Changes.size(), 30u);
  std::string Oracle = coldJson(Changes);

  for (unsigned Threads : {1u, 2u, 8u}) {
    SessionOptions Opts;
    Opts.Config.Threads = Threads;
    // One big ingest, and the same stream in five slices: both must
    // land on the oracle's bytes.
    EXPECT_EQ(sessionJson({Changes}, Opts), Oracle) << Threads;
    EXPECT_EQ(sessionJson(splitBatches(Changes, 5), Opts), Oracle)
        << Threads;
  }
}

TEST(ServiceSession, CacheBoundNeverChangesBytesAndEvictsDeterministically) {
  std::vector<corpus::CodeChange> Changes = minedChanges();
  std::string Oracle = coldJson(Changes);

  SessionStats Reference;
  for (unsigned Threads : {1u, 2u, 8u}) {
    SessionOptions Opts;
    Opts.Config.Threads = Threads;
    Opts.MaxCachedChanges = 7; // far below the stream size
    SessionStats Stats;
    EXPECT_EQ(sessionJson(splitBatches(Changes, 4), Opts, &Stats), Oracle)
        << Threads;
    EXPECT_GT(Stats.Lifetime.Evictions, 0u);
    EXPECT_LE(Stats.CachedRecords, 7u);
    // FIFO eviction is keyed in batch order on one thread, so the
    // eviction trace is a function of the stream, not the pool width.
    if (Threads == 1u)
      Reference = Stats;
    else {
      EXPECT_EQ(Stats.Lifetime.Evictions, Reference.Lifetime.Evictions);
      EXPECT_EQ(Stats.Lifetime.CacheHits, Reference.Lifetime.CacheHits);
      EXPECT_EQ(Stats.CachedRecords, Reference.CachedRecords);
    }
  }
}

TEST(ServiceSession, ReplayedBatchIsServedFromCache) {
  std::vector<corpus::CodeChange> Changes = minedChanges(6, 7);
  ASSERT_FALSE(Changes.empty());

  AnalysisSession Session(api(), SessionOptions());
  IngestStats First = Session.ingest(Changes);
  EXPECT_EQ(First.CacheHits, 0u);
  EXPECT_EQ(First.CacheMisses, Changes.size());

  // The same content arriving again (a re-landed commit) must be served
  // entirely from the memo table — and still produce exactly the bytes
  // of a cold run over the doubled stream.
  IngestStats Second = Session.ingest(Changes);
  EXPECT_EQ(Second.CacheHits, Changes.size());
  EXPECT_EQ(Second.CacheMisses, 0u);

  std::vector<corpus::CodeChange> Doubled = Changes;
  Doubled.insert(Doubled.end(), Changes.begin(), Changes.end());
  EXPECT_EQ(Session.reportJson(), coldJson(Doubled));

  SessionStats Stats = Session.stats();
  EXPECT_EQ(Stats.TotalChanges, Doubled.size());
  EXPECT_EQ(Stats.Ingests, 2u);
  EXPECT_EQ(Stats.Lifetime.CacheHits + Stats.Lifetime.CacheMisses,
            Doubled.size());
}

TEST(ServiceSession, IncrementalRepairReusesPairDistances) {
  std::vector<corpus::CodeChange> Changes = minedChanges(16, 3);
  ASSERT_GE(Changes.size(), 40u);
  std::size_t Half = Changes.size() / 2;
  std::vector<corpus::CodeChange> Head(Changes.begin(),
                                       Changes.begin() + Half);
  std::vector<corpus::CodeChange> Tail(Changes.begin() + Half,
                                       Changes.end());

  AnalysisSession Session(api(), SessionOptions());
  IngestStats Warm = Session.ingest(Head);
  IngestStats Append = Session.ingest(Tail);

  // The warm ingest computed every pair fresh; the append repairs the
  // touched classes and must serve the old-old block of each distance
  // matrix from the persisted tables instead of recomputing it.
  EXPECT_GT(Warm.PairsComputed, 0u);
  EXPECT_GT(Append.ClassesRepaired, 0u);
  EXPECT_GT(Append.PairsReused, 0u);
  EXPECT_EQ(Session.reportJson(), coldJson(Changes));
}

TEST(ServiceSession, ServiceHashCollisionsDegradeSelectivityNotCorrectness) {
  std::vector<corpus::CodeChange> Changes = minedChanges();

  // Every keyFor evaluation fires: the primary content hash collapses
  // to a constant and all memo entries collide into one bucket chain.
  // The secondary hash + length pair must still discriminate.
  PipelineConfig Armed;
  Armed.Faults.Rate = 1.0;
  Armed.Faults.Seed = 99;
  Armed.Faults.SiteMask = support::faultSiteBit(support::FaultSite::ServiceHash);

  SessionOptions Opts;
  Opts.Config = Armed;
  AnalysisSession Session(api(), Opts);
  Session.ingest(Changes);
  IngestStats Replay = Session.ingest(Changes);
  // A collided cache must still *hit* (H2 + lengths discriminate), not
  // fall back to re-analysis.
  EXPECT_EQ(Replay.CacheHits, Changes.size());

  std::vector<corpus::CodeChange> Doubled = Changes;
  Doubled.insert(Doubled.end(), Changes.begin(), Changes.end());
  // ServiceHash is never evaluated on the cold path, so the oracle with
  // the same plan is exactly the unfaulted batch report.
  EXPECT_EQ(Session.reportJson(), coldJson(Doubled, Armed));
}

TEST(ServiceSession, ArmedAnalysisFaultsBypassCachesAndStayByteIdentical) {
  std::vector<corpus::CodeChange> Changes = minedChanges();

  // In-process analysis faults make per-change outcomes a function of
  // the fault campaign, so memoizing them would be wrong; the session
  // must fall back to straight re-analysis under the same global-index
  // FaultScope a cold run would use — and land on its exact bytes.
  PipelineConfig Armed;
  Armed.Faults.Rate = 0.35;
  Armed.Faults.Seed = 4242;
  Armed.Faults.SiteMask =
      support::faultSiteBit(support::FaultSite::Parser) |
      support::faultSiteBit(support::FaultSite::Interpreter) |
      support::faultSiteBit(support::FaultSite::Clustering);
  std::string Oracle = coldJson(Changes, Armed);

  for (unsigned Threads : {1u, 2u, 8u}) {
    SessionOptions Opts;
    Opts.Config = Armed;
    Opts.Config.Threads = Threads;
    SessionStats Stats;
    EXPECT_EQ(sessionJson(splitBatches(Changes, 3), Opts, &Stats), Oracle)
        << Threads;
    EXPECT_EQ(Stats.Lifetime.CacheHits, 0u);
    EXPECT_EQ(Stats.CachedRecords, 0u);
  }
}

TEST(ServiceSession, ShardedClusteringFallsBackToColdPathIdentically) {
  std::vector<corpus::CodeChange> Changes = minedChanges();

  PipelineConfig Sharded;
  Sharded.Sharding.Enabled = true;
  Sharded.Sharding.MaxShardSize = 4;
  std::string Oracle = coldJson(Changes, Sharded);

  SessionOptions Opts;
  Opts.Config = Sharded;
  EXPECT_EQ(sessionJson(splitBatches(Changes, 3), Opts), Oracle);
}

TEST(ServiceSession, MetricsFlowThroughObserver) {
  std::vector<corpus::CodeChange> Changes = minedChanges(6, 7);
  obs::Observer Obs;
  SessionOptions Opts;
  Opts.Metrics = &Obs;
  AnalysisSession Session(api(), std::move(Opts));
  Session.ingest(Changes);
  Session.ingest(Changes);

  obs::Snapshot Snap = Obs.Metrics.snapshot();
  auto Counter = [&](const std::string &Name) -> std::uint64_t {
    for (const obs::MetricValue &V : Snap.Values)
      if (V.Name == Name)
        return V.Count;
    return ~std::uint64_t(0);
  };
  EXPECT_EQ(Counter("service.ingests"), 2u);
  EXPECT_EQ(Counter("service.changes"), 2 * Changes.size());
  EXPECT_EQ(Counter("service.cache.hits"), Changes.size());
  EXPECT_EQ(Counter("service.cache.misses"), Changes.size());
}
