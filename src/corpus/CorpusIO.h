//===- corpus/CorpusIO.h - Corpus persistence ------------------------------===//
//
// Part of the DiffCode project, a reproduction of "Inferring Crypto API
// Rules from Code Changes" (PLDI'18).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reads and writes corpora as plain directory trees, so the pipeline can
/// run over *real* mined histories (exported from git) as easily as over
/// generated ones. Layout:
///
///   <root>/<project>/project.meta          key=value metadata
///   <root>/<project>/head/<File.java>      HEAD state
///   <root>/<project>/commits/c<NNNN>/      one directory per commit
///       kind.txt                           ground-truth kind (optional)
///       file.txt                           changed file name
///       old.java / new.java                the two versions
///
/// Exporting a git history into this layout is a one-liner per commit:
///   git show <rev>^:<path> > old.java ; git show <rev>:<path> > new.java
///
//===----------------------------------------------------------------------===//

#ifndef DIFFCODE_CORPUS_CORPUSIO_H
#define DIFFCODE_CORPUS_CORPUSIO_H

#include "corpus/RepoModel.h"

#include <optional>
#include <string>

namespace diffcode {
namespace corpus {

/// Writes \p C under \p RootDir (created if missing). Returns false and
/// sets \p Error on I/O failure.
bool writeCorpus(const Corpus &C, const std::string &RootDir,
                 std::string *Error = nullptr);

/// Loads a corpus from \p RootDir; nullopt (with \p Error) on failure.
/// Unknown files are ignored; missing optional pieces default sensibly.
/// Every file goes through readFileContents, so a batch ingest maps
/// sources straight from the page cache instead of double-buffering
/// through stream internals.
std::optional<Corpus> readCorpus(const std::string &RootDir,
                                 std::string *Error = nullptr);

/// Reads one file's bytes. Regular files are mmap'd and copied out in a
/// single pre-sized allocation (no stream double-buffering); anything
/// not mappable — FIFOs, special files, zero-stat-size files — falls
/// back to a chunked read loop that tolerates short reads, so piped
/// input is read to EOF rather than truncated at the first partial
/// read. nullopt on open/read failure (a mid-stream error never yields
/// a plausible-looking prefix).
std::optional<std::string> readFileContents(const std::string &Path);

} // namespace corpus
} // namespace diffcode

#endif // DIFFCODE_CORPUS_CORPUSIO_H
