//===- cluster/Distance.cpp ------------------------------------------------===//

#include "cluster/Distance.h"

#include "support/Hungarian.h"
#include "support/StringUtils.h"

#include <algorithm>
#include <cassert>

using namespace diffcode;
using namespace diffcode::cluster;
using namespace diffcode::usage;

std::vector<std::string> diffcode::cluster::labelUnits(const NodeLabel &Label) {
  std::vector<std::string> Units;
  switch (Label.K) {
  case NodeLabel::Kind::Root:
  case NodeLabel::Kind::Method:
    // Type names and method signatures are single units: swapping one
    // method for another costs exactly one modification.
    Units.push_back(Label.str());
    return Units;
  case NodeLabel::Kind::Arg:
    Units.push_back("arg" + std::to_string(Label.ArgIndex));
    if (Label.ValueIsString) {
      for (char C : Label.Text)
        Units.push_back(std::string(1, C));
    } else {
      Units.push_back(Label.Text);
    }
    return Units;
  }
  return Units;
}

double diffcode::cluster::labelSimilarity(const NodeLabel &A,
                                          const NodeLabel &B) {
  return levenshteinRatio(labelUnits(A), labelUnits(B));
}

std::size_t diffcode::cluster::commonPrefixLen(const FeaturePath &A,
                                               const FeaturePath &B) {
  std::size_t N = std::min(A.size(), B.size());
  std::size_t I = 0;
  while (I < N && A[I] == B[I])
    ++I;
  return I;
}

double diffcode::cluster::pathDist(const FeaturePath &A,
                                   const FeaturePath &B) {
  if (A == B)
    return 0.0;
  std::size_t MaxLen = std::max(A.size(), B.size());
  if (MaxLen == 0)
    return 0.0;
  std::size_t J = commonPrefixLen(A, B);
  double Credit = static_cast<double>(J);
  // Partial credit for the first diverging pair of labels, when both
  // paths still have one.
  if (J < A.size() && J < B.size())
    Credit += labelSimilarity(A[J], B[J]);
  return 1.0 - Credit / static_cast<double>(MaxLen);
}

double diffcode::cluster::pathsDist(const std::vector<FeaturePath> &F1,
                                    const std::vector<FeaturePath> &F2) {
  if (F1.empty() && F2.empty())
    return 0.0;
  std::size_t N = std::max(F1.size(), F2.size());
  CostMatrix Costs(N, N);
  for (std::size_t R = 0; R < N; ++R)
    for (std::size_t C = 0; C < N; ++C) {
      if (R < F1.size() && C < F2.size())
        Costs.at(R, C) = pathDist(F1[R], F2[C]);
      else
        Costs.at(R, C) = 1.0; // unmatched path pairs with the empty path
    }
  Assignment Result = solveAssignment(Costs);
  return Result.TotalCost / static_cast<double>(N);
}

double diffcode::cluster::usageDist(const UsageChange &C1,
                                    const UsageChange &C2) {
  return (pathsDist(C1.Removed, C2.Removed) +
          pathsDist(C1.Added, C2.Added)) /
         2.0;
}
