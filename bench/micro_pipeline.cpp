//===- bench/micro_pipeline.cpp - Frontend & analysis throughput -----------===//
//
// Part of the DiffCode project, a reproduction of "Inferring Crypto API
// Rules from Code Changes" (PLDI'18).
//
//===----------------------------------------------------------------------===//
//
// Micro-benchmark M1: the per-stage cost of the DiffCode pipeline on a
// representative generated source file — lexing, parsing, abstract
// interpretation, DAG derivation, and the full per-change diff. Backs the
// Section 5.1 claim that the analyzer is "efficient and scalable" (the
// paper processed 11,551 code changes).
//
// Besides the google-benchmark suites, `--verify-overhead` runs the
// observability layer's cost guard: alternating metrics-off/metrics-on
// analyzeChanges batches over a mined corpus, asserting the observed run
// stays within 5% of the unobserved one (the ISSUE's overhead bar). A
// second sweep gates the supervised+traced configuration the same way —
// worker observers ship Telemetry frames coalesced with the per-unit
// result writes, so observation must stay within the supervision
// engine's own 10% bar. Self-verifying: exits non-zero when either bar
// is exceeded.
//
//===----------------------------------------------------------------------===//

#include <benchmark/benchmark.h>

#include "core/DiffCode.h"
#include "corpus/CorpusGenerator.h"
#include "exec/Supervisor.h"
#include "corpus/Miner.h"
#include "corpus/Scenario.h"
#include "javaast/AstPrinter.h"
#include "javaast/Lexer.h"
#include "javaast/Parser.h"
#include "javaast/ReferenceLexer.h"
#include "obs/Observer.h"
#include "support/JsonWriter.h"

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string_view>

using namespace diffcode;

namespace {

std::string sampleSource(bool Secure) {
  Rng R(2024);
  corpus::ScenarioInstance Inst;
  Inst.Kind = corpus::ScenarioKind::BlockCipher;
  Inst.Details = corpus::drawDetails(Inst.Kind, R);
  Inst.Details.Secure = Secure;
  Inst.StyleSeed = 1234;
  Inst.ClassName = "BenchSample";
  return corpus::renderScenario(Inst, "com.example.bench");
}

void BM_Lexer(benchmark::State &State) {
  std::string Source = sampleSource(true);
  for (auto _ : State) {
    java::DiagnosticsEngine Diags;
    java::Lexer Lex(Source, Diags);
    benchmark::DoNotOptimize(Lex.lexAll());
  }
  State.SetBytesProcessed(State.iterations() * Source.size());
}
BENCHMARK(BM_Lexer);

void BM_ReferenceLexer(benchmark::State &State) {
  // The retained seed scanner — the baseline BM_Lexer is measured against
  // (bench/micro_lexer.cpp asserts the speedup bar over a whole corpus).
  std::string Source = sampleSource(true);
  for (auto _ : State) {
    java::DiagnosticsEngine Diags;
    java::ReferenceLexer Lex(Source, Diags);
    benchmark::DoNotOptimize(Lex.lexAll());
  }
  State.SetBytesProcessed(State.iterations() * Source.size());
}
BENCHMARK(BM_ReferenceLexer);

void BM_Parser(benchmark::State &State) {
  std::string Source = sampleSource(true);
  for (auto _ : State) {
    java::AstContext Ctx;
    java::DiagnosticsEngine Diags;
    benchmark::DoNotOptimize(java::parseJava(Source, Ctx, Diags));
  }
  State.SetBytesProcessed(State.iterations() * Source.size());
}
BENCHMARK(BM_Parser);

void BM_ParserArenaReuse(benchmark::State &State) {
  // Steady-state parse cost when one AstContext is recycled across files,
  // as processChange does: the arena reaches zero allocator traffic.
  std::string Source = sampleSource(true);
  java::AstContext Ctx;
  for (auto _ : State) {
    Ctx.reset();
    java::DiagnosticsEngine Diags;
    benchmark::DoNotOptimize(java::parseJava(Source, Ctx, Diags));
  }
  State.SetBytesProcessed(State.iterations() * Source.size());
}
BENCHMARK(BM_ParserArenaReuse);

void BM_PrettyPrinter(benchmark::State &State) {
  std::string Source = sampleSource(true);
  java::AstContext Ctx;
  java::DiagnosticsEngine Diags;
  java::CompilationUnit *Unit = java::parseJava(Source, Ctx, Diags);
  for (auto _ : State) {
    java::AstPrinter Printer;
    benchmark::DoNotOptimize(Printer.print(Unit));
  }
}
BENCHMARK(BM_PrettyPrinter);

void BM_AbstractInterpreter(benchmark::State &State) {
  std::string Source = sampleSource(true);
  java::AstContext Ctx;
  java::DiagnosticsEngine Diags;
  java::CompilationUnit *Unit = java::parseJava(Source, Ctx, Diags);
  const apimodel::CryptoApiModel &Api =
      apimodel::CryptoApiModel::javaCryptoApi();
  for (auto _ : State) {
    analysis::AbstractInterpreter Interp(Api);
    benchmark::DoNotOptimize(Interp.analyze(Unit));
  }
}
BENCHMARK(BM_AbstractInterpreter);

void BM_DagDerivation(benchmark::State &State) {
  core::DiffCode System(apimodel::CryptoApiModel::javaCryptoApi());
  analysis::AnalysisResult Result = System.analyzeSourceChecked(sampleSource(true)).Result;
  for (auto _ : State)
    benchmark::DoNotOptimize(System.dagsForClass(Result, "Cipher"));
}
BENCHMARK(BM_DagDerivation);

void BM_FullCodeChange(benchmark::State &State) {
  core::DiffCode System(apimodel::CryptoApiModel::javaCryptoApi());
  corpus::CodeChange Change;
  Change.OldCode = sampleSource(false);
  Change.NewCode = sampleSource(true);
  const std::vector<std::string> &Targets =
      apimodel::CryptoApiModel::javaCryptoApi().targetClasses();
  for (auto _ : State)
    benchmark::DoNotOptimize(System.processChange(Change, Targets, {}));
  State.SetItemsProcessed(State.iterations());
}
BENCHMARK(BM_FullCodeChange);

//===----------------------------------------------------------------------===//
// --verify-overhead: the observability cost guard
//===----------------------------------------------------------------------===//

std::uint64_t nanosSince(std::chrono::steady_clock::time_point Start) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - Start)
          .count());
}

/// One alternating off/on sweep: \p Reps batches each way, interleaved so
/// slow drift (thermal, page cache) hits both sides equally. Returns the
/// minimum wall time per side — min-of-N is the standard noise filter for
/// a shared machine.
struct OverheadSample {
  std::uint64_t OffNs = ~std::uint64_t(0);
  std::uint64_t OnNs = ~std::uint64_t(0);
  double ratio() const {
    return static_cast<double>(OnNs) / static_cast<double>(OffNs);
  }
};

OverheadSample measureOverhead(const core::DiffCode &System,
                               const core::PipelineRequest &Off,
                               unsigned Reps) {
  OverheadSample Sample;
  for (unsigned Rep = 0; Rep < Reps; ++Rep) {
    auto Start = std::chrono::steady_clock::now();
    benchmark::DoNotOptimize(System.analyzeChanges(Off));
    std::uint64_t OffNs = nanosSince(Start);
    if (OffNs < Sample.OffNs)
      Sample.OffNs = OffNs;

    obs::Observer Obs; // fresh per batch: measures first-touch cost too
    core::PipelineRequest On = Off;
    On.Metrics = &Obs;
    Start = std::chrono::steady_clock::now();
    benchmark::DoNotOptimize(System.analyzeChanges(On));
    std::uint64_t OnNs = nanosSince(Start);
    if (OnNs < Sample.OnNs)
      Sample.OnNs = OnNs;
  }
  return Sample;
}

/// The supervised flavor of measureOverhead: the same alternating
/// off/on sweep, but each batch runs through exec::superviseChanges so
/// the "on" side pays the whole telemetry path — worker-side observers,
/// Telemetry frames coalesced into the per-unit result writes, and the
/// coordinator-side stitch/merge.
OverheadSample measureSupervisedOverhead(const core::DiffCode &System,
                                         const core::PipelineRequest &Off,
                                         unsigned Reps) {
  OverheadSample Sample;
  for (unsigned Rep = 0; Rep < Reps; ++Rep) {
    auto Start = std::chrono::steady_clock::now();
    benchmark::DoNotOptimize(exec::superviseChanges(System, Off));
    std::uint64_t OffNs = nanosSince(Start);
    if (OffNs < Sample.OffNs)
      Sample.OffNs = OffNs;

    obs::Observer Obs;
    core::PipelineRequest On = Off;
    On.Metrics = &Obs;
    Start = std::chrono::steady_clock::now();
    benchmark::DoNotOptimize(exec::superviseChanges(System, On));
    std::uint64_t OnNs = nanosSince(Start);
    if (OnNs < Sample.OnNs)
      Sample.OnNs = OnNs;
  }
  return Sample;
}

int verifyOverhead() {
  constexpr double Bar = 1.05; // observed run within 5% of unobserved
  // The supervised configuration carries fork/pipe noise an in-process
  // batch does not, so its observation gate matches the supervision
  // engine's own overhead bar (bench/micro_supervision.cpp).
  constexpr double SupervisedBar = 1.10;
  constexpr std::size_t MaxChanges = 48;

  corpus::CorpusOptions Opts;
  Opts.Seed = 42;
  Opts.NumProjects = 16;
  corpus::Corpus C = corpus::CorpusGenerator(Opts).generate();
  const apimodel::CryptoApiModel &Api =
      apimodel::CryptoApiModel::javaCryptoApi();
  corpus::Miner M(Api);
  std::vector<const corpus::CodeChange *> Mined = M.mine(C);
  if (Mined.size() > MaxChanges)
    Mined.resize(MaxChanges);
  std::fprintf(stderr, "overhead guard: %zu changes, bar %.0f%%\n",
               Mined.size(), (Bar - 1.0) * 100.0);

  core::DiffCode System(Api);
  core::PipelineRequest Off;
  Off.Changes = Mined;
  Off.TargetClasses = Api.targetClasses();

  // Warm both paths (page in the corpus, populate interner and metric
  // names) before anything is timed.
  benchmark::DoNotOptimize(System.analyzeChanges(Off));
  {
    obs::Observer Obs;
    core::PipelineRequest On = Off;
    On.Metrics = &Obs;
    benchmark::DoNotOptimize(System.analyzeChanges(On));
  }

  unsigned Reps = 7;
  OverheadSample Sample = measureOverhead(System, Off, Reps);
  bool Pass = Sample.ratio() < Bar;
  if (!Pass) {
    // One retry with more batches: a single unlucky scheduling quantum on
    // a busy host should not fail the guard.
    Reps = 15;
    std::fprintf(stderr, "  ratio %.4f over bar, retrying with %u reps\n",
                 Sample.ratio(), Reps);
    Sample = measureOverhead(System, Off, Reps);
    Pass = Sample.ratio() < Bar;
  }

  std::fprintf(stderr, "  off %8.2f ms  on %8.2f ms  ratio %.4f  %s\n",
               Sample.OffNs / 1e6, Sample.OnNs / 1e6, Sample.ratio(),
               Pass ? "PASS" : "FAIL");

  // The supervised+traced gate: the same corpus through the worker-pool
  // engine, unobserved vs observed (stitched spans + shipped metrics).
  core::PipelineRequest SupOff = Off;
  SupOff.Exec.Mode = core::ExecutionMode::Supervised;
  SupOff.Exec.Workers = 2;
  benchmark::DoNotOptimize(exec::superviseChanges(System, SupOff)); // warm
  unsigned SupReps = 5;
  OverheadSample Sup = measureSupervisedOverhead(System, SupOff, SupReps);
  bool SupPass = Sup.ratio() < SupervisedBar;
  if (!SupPass) {
    SupReps = 11;
    std::fprintf(stderr,
                 "  supervised ratio %.4f over bar, retrying with %u reps\n",
                 Sup.ratio(), SupReps);
    Sup = measureSupervisedOverhead(System, SupOff, SupReps);
    SupPass = Sup.ratio() < SupervisedBar;
  }
  std::fprintf(stderr, "  supervised off %8.2f ms  on %8.2f ms  ratio %.4f  %s\n",
               Sup.OffNs / 1e6, Sup.OnNs / 1e6, Sup.ratio(),
               SupPass ? "PASS" : "FAIL");

  JsonWriter W;
  W.beginObject();
  W.key("bench").value("micro_pipeline_overhead");
  W.key("changes").value(static_cast<std::uint64_t>(Mined.size()));
  W.key("reps").value(static_cast<std::uint64_t>(Reps));
  W.key("off_ns_min").value(Sample.OffNs);
  W.key("on_ns_min").value(Sample.OnNs);
  W.key("overhead_ratio").value(Sample.ratio());
  W.key("overhead_bar").value(Bar);
  W.key("sup_reps").value(static_cast<std::uint64_t>(SupReps));
  W.key("sup_off_ns_min").value(Sup.OffNs);
  W.key("sup_on_ns_min").value(Sup.OnNs);
  W.key("sup_overhead_ratio").value(Sup.ratio());
  W.key("sup_overhead_bar").value(SupervisedBar);
  W.key("pass").value(Pass && SupPass);
  W.endObject();
  std::printf("%s\n", W.take().c_str());

  return Pass && SupPass ? 0 : 1;
}

} // namespace

int main(int argc, char **argv) {
  for (int I = 1; I < argc; ++I)
    if (std::string_view(argv[I]) == "--verify-overhead")
      return verifyOverhead();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv))
    return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
