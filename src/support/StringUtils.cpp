//===- support/StringUtils.cpp --------------------------------------------===//

#include "support/StringUtils.h"

using namespace diffcode;

std::vector<std::string> diffcode::split(std::string_view Text, char Sep) {
  std::vector<std::string> Out;
  std::size_t Start = 0;
  while (true) {
    std::size_t Pos = Text.find(Sep, Start);
    if (Pos == std::string_view::npos) {
      Out.emplace_back(Text.substr(Start));
      return Out;
    }
    Out.emplace_back(Text.substr(Start, Pos - Start));
    Start = Pos + 1;
  }
}

std::string diffcode::join(const std::vector<std::string> &Parts,
                           std::string_view Sep) {
  std::string Out;
  for (std::size_t I = 0; I < Parts.size(); ++I) {
    if (I != 0)
      Out += Sep;
    Out += Parts[I];
  }
  return Out;
}

std::string_view diffcode::trim(std::string_view Text) {
  auto IsSpace = [](char C) {
    return C == ' ' || C == '\t' || C == '\n' || C == '\r';
  };
  while (!Text.empty() && IsSpace(Text.front()))
    Text.remove_prefix(1);
  while (!Text.empty() && IsSpace(Text.back()))
    Text.remove_suffix(1);
  return Text;
}

std::string diffcode::replaceAll(std::string Text, std::string_view From,
                                 std::string_view To) {
  if (From.empty())
    return Text;
  std::size_t Pos = 0;
  while ((Pos = Text.find(From, Pos)) != std::string::npos) {
    Text.replace(Pos, From.size(), To);
    Pos += To.size();
  }
  return Text;
}
