//===- tests/test_metrics.cpp - Observability layer unit tests -------------===//
//
// Part of the DiffCode project, a reproduction of "Inferring Crypto API
// Rules from Code Changes" (PLDI'18).
//
// Unit coverage for obs/: histogram bucket edges, counter saturation,
// registry semantics under an 8-thread race (mirroring
// test_interner.cpp's ConcurrentInterningIsStructural), span/tracer
// behaviour, and — through the real CLI binary — that --trace-out
// produces structurally valid Chrome trace_event JSON.
//
//===----------------------------------------------------------------------===//

#include "core/DiffCode.h"
#include "obs/Observer.h"

#include "gtest/gtest.h"

#include <algorithm>
#include <cctype>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

using namespace diffcode;
using namespace diffcode::obs;

namespace {

//===----------------------------------------------------------------------===//
// Histogram buckets
//===----------------------------------------------------------------------===//

TEST(Histogram, BucketEdges) {
  // Bucket 0 is exactly {0}; bucket I >= 1 covers [2^(I-1), 2^I - 1].
  EXPECT_EQ(Histogram::bucketFor(0), 0u);
  EXPECT_EQ(Histogram::bucketFor(1), 1u);
  EXPECT_EQ(Histogram::bucketFor(2), 2u);
  EXPECT_EQ(Histogram::bucketFor(3), 2u);
  EXPECT_EQ(Histogram::bucketFor(4), 3u);

  for (unsigned I = 1; I < Histogram::NumBuckets; ++I) {
    EXPECT_EQ(Histogram::bucketFor(Histogram::bucketLo(I)), I) << I;
    EXPECT_EQ(Histogram::bucketFor(Histogram::bucketHi(I)), I) << I;
    if (I + 1 < Histogram::NumBuckets)
      EXPECT_EQ(Histogram::bucketHi(I) + 1, Histogram::bucketLo(I + 1)) << I;
  }
  EXPECT_EQ(Histogram::bucketLo(0), 0u);
  EXPECT_EQ(Histogram::bucketHi(0), 0u);
  EXPECT_EQ(Histogram::bucketHi(Histogram::NumBuckets - 1), ~std::uint64_t(0));
  EXPECT_EQ(Histogram::bucketFor(~std::uint64_t(0)),
            Histogram::NumBuckets - 1);
}

TEST(Histogram, RecordAggregates) {
  Histogram H;
  EXPECT_EQ(H.count(), 0u);
  EXPECT_EQ(H.min(), 0u); // empty histogram reports 0, not UINT64_MAX

  for (std::uint64_t V : {0ull, 1ull, 2ull, 3ull, 1024ull})
    H.record(V);
  EXPECT_EQ(H.count(), 5u);
  EXPECT_EQ(H.sum(), 1030u);
  EXPECT_EQ(H.min(), 0u);
  EXPECT_EQ(H.max(), 1024u);
  EXPECT_EQ(H.bucketCount(0), 1u); // 0
  EXPECT_EQ(H.bucketCount(1), 1u); // 1
  EXPECT_EQ(H.bucketCount(2), 2u); // 2, 3
  EXPECT_EQ(H.bucketCount(11), 1u); // 1024 = 2^10
}

TEST(Histogram, SumSaturates) {
  Histogram H;
  H.record(~std::uint64_t(0));
  H.record(~std::uint64_t(0));
  EXPECT_EQ(H.sum(), ~std::uint64_t(0)); // pinned, not wrapped
  EXPECT_EQ(H.count(), 2u);
}

TEST(Histogram, MergeIsBucketwise) {
  Histogram A, B;
  for (std::uint64_t V : {0ull, 3ull, 1024ull})
    A.record(V);
  for (std::uint64_t V : {2ull, 7ull, 9000ull})
    B.record(V);
  A.merge(B);
  EXPECT_EQ(A.count(), 6u);
  EXPECT_EQ(A.sum(), 0u + 3 + 1024 + 2 + 7 + 9000);
  EXPECT_EQ(A.min(), 0u);
  EXPECT_EQ(A.max(), 9000u);
  EXPECT_EQ(A.bucketCount(0), 1u);  // 0
  EXPECT_EQ(A.bucketCount(2), 2u);  // 3 and 2 land in [2,3]
  EXPECT_EQ(A.bucketCount(3), 1u);  // 7
  EXPECT_EQ(A.bucketCount(11), 1u); // 1024
  EXPECT_EQ(A.bucketCount(14), 1u); // 9000

  // Merging an empty histogram is the identity, including min().
  Histogram Empty;
  A.merge(Empty);
  EXPECT_EQ(A.count(), 6u);
  EXPECT_EQ(A.min(), 0u);
  // ...and merging INTO an empty one adopts the source's min.
  Histogram C;
  C.merge(A);
  EXPECT_EQ(C.min(), 0u);
  EXPECT_EQ(C.max(), 9000u);
  EXPECT_EQ(C.count(), 6u);
}

//===----------------------------------------------------------------------===//
// Counter / Gauge
//===----------------------------------------------------------------------===//

TEST(Counter, AddAndSaturate) {
  Counter C;
  C.add();
  C.add(41);
  EXPECT_EQ(C.get(), 42u);
  C.add(~std::uint64_t(0) - 10);
  EXPECT_EQ(C.get(), ~std::uint64_t(0)); // saturated at the max
  C.add(7);
  EXPECT_EQ(C.get(), ~std::uint64_t(0)); // stays pinned
}

TEST(Gauge, SetAndMax) {
  Gauge G;
  G.set(10);
  EXPECT_EQ(G.get(), 10);
  G.max(5);
  EXPECT_EQ(G.get(), 10); // max() never lowers
  G.max(20);
  EXPECT_EQ(G.get(), 20);
  G.set(-3);
  EXPECT_EQ(G.get(), -3); // set() always wins
}

//===----------------------------------------------------------------------===//
// Registry
//===----------------------------------------------------------------------===//

TEST(Registry, GetOrCreateIsStable) {
  Registry R;
  Counter &A = R.counter("a");
  Counter &B = R.counter("a");
  EXPECT_EQ(&A, &B);
  EXPECT_EQ(R.size(), 1u);
  R.histogram("h").record(3);
  R.gauge("g").set(7);
  EXPECT_EQ(R.size(), 3u);
}

TEST(Registry, KindMismatchThrows) {
  Registry R;
  R.counter("x");
  EXPECT_THROW(R.gauge("x"), std::logic_error);
  EXPECT_THROW(R.histogram("x"), std::logic_error);
}

TEST(Registry, SnapshotIsNameSorted) {
  Registry R;
  R.counter("zeta").add(1);
  R.counter("alpha").add(2);
  R.histogram("mid").record(5);
  Snapshot S = R.snapshot();
  ASSERT_EQ(S.Values.size(), 3u);
  EXPECT_EQ(S.Values[0].Name, "alpha");
  EXPECT_EQ(S.Values[1].Name, "mid");
  EXPECT_EQ(S.Values[2].Name, "zeta");
}

TEST(Registry, DeterministicOnlyJsonDropsPerRun) {
  Registry R;
  R.counter("stable").add(1);
  R.counter("wall", Unit::Nanoseconds, Stability::PerRun).add(12345);
  std::string Full = R.snapshot().json(/*DeterministicOnly=*/false);
  std::string Det = R.snapshot().json(/*DeterministicOnly=*/true);
  EXPECT_NE(Full.find("\"wall\""), std::string::npos);
  EXPECT_EQ(Det.find("\"wall\""), std::string::npos);
  EXPECT_NE(Det.find("\"stable\""), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Snapshot::merge (cross-process metric folding)
//===----------------------------------------------------------------------===//

TEST(SnapshotMerge, CombinesPerKind) {
  Registry Dst, Src;
  Dst.counter("changes").add(10);
  Src.counter("changes").add(32);
  Dst.gauge("rss").max(100);
  Src.gauge("rss").max(250);
  Dst.histogram("lat").record(4);
  Src.histogram("lat").record(1024);
  Src.counter("only.src").add(5);
  Dst.counter("only.dst").add(6);

  Snapshot S = Dst.snapshot();
  ASSERT_TRUE(S.merge(Src.snapshot()));
  ASSERT_EQ(S.Values.size(), 5u);
  // Counters sum, gauges keep the high-water mark, histograms fold
  // bucket-wise; entries unique to either side survive as-is.
  auto Find = [&S](const char *Name) -> const MetricValue & {
    for (const MetricValue &V : S.Values)
      if (V.Name == Name)
        return V;
    static MetricValue Missing;
    return Missing;
  };
  EXPECT_EQ(Find("changes").Count, 42u);
  EXPECT_EQ(Find("rss").Value, 250);
  EXPECT_EQ(Find("lat").Count, 2u);
  EXPECT_EQ(Find("lat").Sum, 1028u);
  EXPECT_EQ(Find("lat").Min, 4u);
  EXPECT_EQ(Find("lat").Max, 1024u);
  ASSERT_EQ(Find("lat").Buckets.size(), 2u);
  EXPECT_EQ(Find("lat").Buckets[0].first, 3u);  // 4
  EXPECT_EQ(Find("lat").Buckets[1].first, 11u); // 1024
  EXPECT_EQ(Find("only.src").Count, 5u);
  EXPECT_EQ(Find("only.dst").Count, 6u);
}

TEST(SnapshotMerge, CounterAndHistogramSumsSaturate) {
  Registry Dst, Src;
  Dst.counter("c").add(~std::uint64_t(0) - 1);
  Src.counter("c").add(10);
  Dst.histogram("h").record(~std::uint64_t(0));
  Src.histogram("h").record(2);
  Snapshot S = Dst.snapshot();
  ASSERT_TRUE(S.merge(Src.snapshot()));
  EXPECT_EQ(S.Values[0].Count, ~std::uint64_t(0)); // pinned, not wrapped
  EXPECT_EQ(S.Values[1].Sum, ~std::uint64_t(0));
  EXPECT_EQ(S.Values[1].Count, 2u);
}

TEST(SnapshotMerge, KindMismatchRejectsWholeMergeUntouched) {
  Registry Dst, Src;
  Dst.counter("aaa").add(1);
  Dst.counter("clash").add(2);
  Src.counter("aaa").add(100);   // would merge fine...
  Src.gauge("clash").set(3);     // ...but this one disagrees on kind
  Snapshot S = Dst.snapshot();
  std::string Before = S.json();
  EXPECT_FALSE(S.merge(Src.snapshot()));
  EXPECT_EQ(S.json(), Before); // validate-then-merge: nothing applied
}

TEST(SnapshotMerge, PrefixPreservesNameOrder) {
  Registry Dst, Src;
  Dst.counter("alpha").add(1);
  Dst.counter("zeta").add(1);
  Src.counter("beta").add(2);
  Src.counter("gamma").add(3);
  Snapshot S = Dst.snapshot();
  ASSERT_TRUE(S.merge(Src.snapshot(), "exec.worker."));
  ASSERT_EQ(S.Values.size(), 4u);
  EXPECT_EQ(S.Values[0].Name, "alpha");
  EXPECT_EQ(S.Values[1].Name, "exec.worker.beta");
  EXPECT_EQ(S.Values[2].Name, "exec.worker.gamma");
  EXPECT_EQ(S.Values[3].Name, "zeta");
  for (std::size_t I = 1; I < S.Values.size(); ++I)
    EXPECT_LT(S.Values[I - 1].Name, S.Values[I].Name);
  // Prefixed names never collide with the originals, so merging the
  // same worker snapshot under a prefix twice doubles the counts.
  ASSERT_TRUE(S.merge(Src.snapshot(), "exec.worker."));
  EXPECT_EQ(S.Values[1].Count, 4u);
  EXPECT_EQ(S.Values[2].Count, 6u);
}

TEST(SnapshotMerge, MarkAllPerRunDemotesStability) {
  Registry R;
  R.counter("det").add(1);
  R.counter("wall", Unit::Nanoseconds, Stability::PerRun).add(2);
  Snapshot S = R.snapshot();
  S.markAllPerRun();
  for (const MetricValue &V : S.Values)
    EXPECT_EQ(V.S, Stability::PerRun) << V.Name;
  EXPECT_EQ(S.json(/*DeterministicOnly=*/true), "[]");
}

// Mirrors test_interner.cpp's concurrent-interning race: 8 threads hammer
// an overlapping metric vocabulary; every get-or-create must resolve to
// the same object and the final counts must be exact.
TEST(Registry, EightThreadRace) {
  Registry R;
  constexpr unsigned NumThreads = 8;
  constexpr unsigned Rounds = 200;
  const std::vector<std::string> Names = {"alpha", "beta", "gamma", "delta",
                                          "epsilon"};
  std::vector<std::thread> Threads;
  for (unsigned T = 0; T < NumThreads; ++T)
    Threads.emplace_back([&, T] {
      for (unsigned I = 0; I < Rounds; ++I) {
        // Each thread touches every name each round, from a different
        // starting offset so creations genuinely race.
        for (std::size_t J = 0; J < Names.size(); ++J) {
          const std::string &Name = Names[(T + J) % Names.size()];
          R.counter("c." + Name).add(1);
          R.histogram("h." + Name).record(I);
        }
      }
    });
  for (std::thread &T : Threads)
    T.join();

  EXPECT_EQ(R.size(), 2 * Names.size());
  for (const std::string &Name : Names) {
    EXPECT_EQ(R.counter("c." + Name).get(), NumThreads * Rounds) << Name;
    EXPECT_EQ(R.histogram("h." + Name).count(), NumThreads * Rounds) << Name;
  }
}

//===----------------------------------------------------------------------===//
// Tracer / Span
//===----------------------------------------------------------------------===//

TEST(Tracer, SpansAggregate) {
  Tracer T;
  {
    Span A(&T, "outer");
    Span B(&T, "inner");
  }
  { Span C(&T, "inner"); }
  EXPECT_EQ(T.eventCount(), 3u);

  std::vector<Tracer::StageTotal> Stages = T.aggregate();
  ASSERT_EQ(Stages.size(), 2u);
  EXPECT_EQ(Stages[0].Name, "inner"); // name-sorted
  EXPECT_EQ(Stages[0].Spans, 2u);
  EXPECT_EQ(Stages[1].Name, "outer");
  EXPECT_EQ(Stages[1].Spans, 1u);
}

TEST(Tracer, NullTracerSpanIsNoOp) {
  // The off-by-default contract: a null tracer must be safe and free.
  Span S(nullptr, "nothing");
}

TEST(Tracer, RecordForeignStitchesOtherProcesses) {
  Tracer T;
  { Span A(&T, "local"); }
  // A worker's spans arrive with their own tid and pid; the name is
  // interned by the tracer (the worker's string dies with the frame).
  {
    std::string Transient = "worker-span";
    T.recordForeign(Transient, 500, 100, 3, 4242);
    Transient.assign(64, 'x'); // must not affect the recorded name
  }
  T.recordForeign("worker-span", 700, 50, 3, 4242);
  EXPECT_EQ(T.eventCount(), 3u);

  // eventsFrom returns the tail past a cursor — the worker-side
  // shipping primitive.
  EXPECT_EQ(T.eventsFrom(0).size(), 3u);
  EXPECT_EQ(T.eventsFrom(1).size(), 2u);
  EXPECT_EQ(T.eventsFrom(3).size(), 0u);
  EXPECT_EQ(T.eventsFrom(99).size(), 0u);

  // Foreign spans aggregate alongside local ones.
  std::vector<Tracer::StageTotal> Stages = T.aggregate();
  ASSERT_EQ(Stages.size(), 2u);
  EXPECT_EQ(Stages[1].Name, "worker-span");
  EXPECT_EQ(Stages[1].Spans, 2u);
}

TEST(Tracer, EpochSteadyNsAnchorsAlignment) {
  // The epoch is an absolute point on the shared monotonic clock, so a
  // tracer created later must report a later (or equal) epoch — this is
  // the property the coordinator's offset computation relies on.
  Tracer First;
  Tracer Second;
  EXPECT_GT(First.epochSteadyNs(), 0u);
  EXPECT_GE(Second.epochSteadyNs(), First.epochSteadyNs());
}

//===----------------------------------------------------------------------===//
// JSON validation (shared by the trace-schema and CLI tests)
//===----------------------------------------------------------------------===//

/// Minimal recursive-descent JSON syntax checker — enough to assert a
/// document is well-formed RFC 8259 JSON without depending on a parser
/// library.
class JsonChecker {
public:
  explicit JsonChecker(std::string_view Text) : S(Text) {}

  bool valid() {
    bool Ok = value();
    ws();
    return Ok && P == S.size();
  }

private:
  void ws() {
    while (P < S.size() && (S[P] == ' ' || S[P] == '\t' || S[P] == '\n' ||
                            S[P] == '\r'))
      ++P;
  }
  bool lit(std::string_view L) {
    if (S.substr(P, L.size()) != L)
      return false;
    P += L.size();
    return true;
  }
  bool string() {
    if (P >= S.size() || S[P] != '"')
      return false;
    ++P;
    while (P < S.size() && S[P] != '"') {
      if (S[P] == '\\') {
        ++P;
        if (P >= S.size())
          return false;
        if (S[P] == 'u') {
          for (int I = 0; I < 4; ++I)
            if (++P >= S.size() || !std::isxdigit(static_cast<unsigned char>(S[P])))
              return false;
        }
      }
      ++P;
    }
    if (P >= S.size())
      return false;
    ++P; // closing quote
    return true;
  }
  bool number() {
    std::size_t Start = P;
    if (P < S.size() && S[P] == '-')
      ++P;
    while (P < S.size() && std::isdigit(static_cast<unsigned char>(S[P])))
      ++P;
    if (P == Start || (S[Start] == '-' && P == Start + 1))
      return false;
    if (P < S.size() && S[P] == '.') {
      ++P;
      if (P >= S.size() || !std::isdigit(static_cast<unsigned char>(S[P])))
        return false;
      while (P < S.size() && std::isdigit(static_cast<unsigned char>(S[P])))
        ++P;
    }
    if (P < S.size() && (S[P] == 'e' || S[P] == 'E')) {
      ++P;
      if (P < S.size() && (S[P] == '+' || S[P] == '-'))
        ++P;
      if (P >= S.size() || !std::isdigit(static_cast<unsigned char>(S[P])))
        return false;
      while (P < S.size() && std::isdigit(static_cast<unsigned char>(S[P])))
        ++P;
    }
    return true;
  }
  bool value() {
    ws();
    if (P >= S.size())
      return false;
    switch (S[P]) {
    case '{': {
      ++P;
      ws();
      if (P < S.size() && S[P] == '}') {
        ++P;
        return true;
      }
      while (true) {
        ws();
        if (!string())
          return false;
        ws();
        if (P >= S.size() || S[P] != ':')
          return false;
        ++P;
        if (!value())
          return false;
        ws();
        if (P < S.size() && S[P] == ',') {
          ++P;
          continue;
        }
        break;
      }
      ws();
      if (P >= S.size() || S[P] != '}')
        return false;
      ++P;
      return true;
    }
    case '[': {
      ++P;
      ws();
      if (P < S.size() && S[P] == ']') {
        ++P;
        return true;
      }
      while (true) {
        if (!value())
          return false;
        ws();
        if (P < S.size() && S[P] == ',') {
          ++P;
          continue;
        }
        break;
      }
      ws();
      if (P >= S.size() || S[P] != ']')
        return false;
      ++P;
      return true;
    }
    case '"':
      return string();
    case 't':
      return lit("true");
    case 'f':
      return lit("false");
    case 'n':
      return lit("null");
    default:
      return number();
    }
  }

  std::string_view S;
  std::size_t P = 0;
};

std::size_t countOccurrences(const std::string &Haystack,
                             const std::string &Needle) {
  std::size_t N = 0;
  for (std::size_t P = Haystack.find(Needle); P != std::string::npos;
       P = Haystack.find(Needle, P + Needle.size()))
    ++N;
  return N;
}

/// Chrome trace_event structural checks: a document that
/// chrome://tracing / Perfetto would accept as complete "X" events.
void expectValidTraceEventJson(const std::string &Json) {
  EXPECT_TRUE(JsonChecker(Json).valid());
  EXPECT_EQ(Json.rfind("{\"traceEvents\":[", 0), 0u);
  EXPECT_NE(Json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);

  // Every event is a complete-phase event carrying the full field set.
  std::size_t Events = countOccurrences(Json, "\"ph\":\"X\"");
  EXPECT_GT(Events, 0u);
  EXPECT_EQ(countOccurrences(Json, "\"cat\":\"diffcode\""), Events);
  EXPECT_EQ(countOccurrences(Json, "\"name\":"), Events);
  EXPECT_EQ(countOccurrences(Json, "\"ts\":"), Events);
  EXPECT_EQ(countOccurrences(Json, "\"dur\":"), Events);
  EXPECT_EQ(countOccurrences(Json, "\"pid\":"), Events);
  EXPECT_EQ(countOccurrences(Json, "\"tid\":"), Events);
}

TEST(Tracer, TraceJsonSchema) {
  Tracer T;
  {
    Span A(&T, "alpha");
    Span B(&T, "beta");
  }
  expectValidTraceEventJson(T.traceJson());
}

TEST(Tracer, TraceJsonSeparatesPidLanes) {
  Tracer T;
  { Span A(&T, "coordinator"); }
  T.recordForeign("worker", 10, 5, 1, 1111);
  T.recordForeign("worker", 20, 5, 1, 2222);
  std::string Json = T.traceJson();
  expectValidTraceEventJson(Json);
  // Two foreign lanes plus the recording process's own.
  EXPECT_NE(Json.find("\"pid\":1111"), std::string::npos);
  EXPECT_NE(Json.find("\"pid\":2222"), std::string::npos);
  EXPECT_EQ(countOccurrences(Json, "\"pid\":"), 3u);
}

TEST(Snapshot, JsonIsWellFormed) {
  Registry R;
  R.counter("c", Unit::Bytes).add(7);
  R.gauge("g").set(-2);
  Histogram &H = R.histogram("h", Unit::Nanoseconds, Stability::PerRun);
  H.record(0);
  H.record(300);
  EXPECT_TRUE(JsonChecker(R.snapshot().json(false)).valid());
  EXPECT_TRUE(JsonChecker(R.snapshot().json(true)).valid());
}

//===----------------------------------------------------------------------===//
// Worst-offender determinism (satellite: tie-breaking unit test)
//===----------------------------------------------------------------------===//

TEST(CorpusHealth, WorstOffenderTieBreaking) {
  core::CorpusReport Report;
  auto AddRecord = [&Report](const char *Origin, std::uint64_t Steps,
                             core::ChangeStatus Status) {
    core::ChangeRecord R;
    R.Origin = Origin;
    R.StepsUsed = Steps;
    R.Status = Status;
    Report.Changes.push_back(std::move(R));
  };
  // Equal step counts must order by origin ascending, regardless of the
  // record order they arrive in.
  AddRecord("proj-b/c0002", 100, core::ChangeStatus::Ok);
  AddRecord("proj-a/c0001", 100, core::ChangeStatus::Degraded);
  AddRecord("proj-c/c0003", 500, core::ChangeStatus::BudgetExceeded);
  AddRecord("proj-d/c0004", 0, core::ChangeStatus::Ok); // no steps: excluded

  core::computeCorpusHealth(Report);
  ASSERT_EQ(Report.Health.WorstOffenders.size(), 3u);
  EXPECT_EQ(Report.Health.WorstOffenders[0].Origin, "proj-c/c0003");
  EXPECT_EQ(Report.Health.WorstOffenders[0].Status,
            core::ChangeStatus::BudgetExceeded);
  EXPECT_EQ(Report.Health.WorstOffenders[1].Origin, "proj-a/c0001");
  EXPECT_EQ(Report.Health.WorstOffenders[1].Status,
            core::ChangeStatus::Degraded);
  EXPECT_EQ(Report.Health.WorstOffenders[2].Origin, "proj-b/c0002");

  // Shuffling the input records must not change the table.
  std::swap(Report.Changes[0], Report.Changes[2]);
  auto Before = Report.Health.WorstOffenders;
  core::computeCorpusHealth(Report);
  ASSERT_EQ(Report.Health.WorstOffenders.size(), Before.size());
  for (std::size_t I = 0; I < Before.size(); ++I) {
    EXPECT_EQ(Report.Health.WorstOffenders[I].Origin, Before[I].Origin);
    EXPECT_EQ(Report.Health.WorstOffenders[I].Steps, Before[I].Steps);
  }
}

//===----------------------------------------------------------------------===//
// CLI --trace-out smoke test (tier1)
//===----------------------------------------------------------------------===//

TEST(CliTrace, TraceOutSchema) {
  const std::string TracePath =
      testing::TempDir() + "diffcode_cli_trace_test.json";
  std::remove(TracePath.c_str());
  std::string Cmd = std::string(DIFFCODE_CLI_PATH) + " pipeline " +
                    DIFFCODE_SMOKE_CORPUS + " --metrics --trace-out=" +
                    TracePath + " > /dev/null 2>&1";
  ASSERT_EQ(std::system(Cmd.c_str()), 0) << Cmd;

  std::ifstream In(TracePath);
  ASSERT_TRUE(In.good()) << TracePath;
  std::ostringstream Buffer;
  Buffer << In.rdbuf();
  std::string Json = Buffer.str();
  while (!Json.empty() && (Json.back() == '\n' || Json.back() == '\r'))
    Json.pop_back();
  ASSERT_FALSE(Json.empty());
  expectValidTraceEventJson(Json);

  // The pipeline's stage spans must all be present.
  for (const char *Stage :
       {"pipeline", "analyzeChanges", "filterClass", "computeCorpusHealth",
        "processChange"})
    EXPECT_NE(Json.find(std::string("\"name\":\"") + Stage + "\""),
              std::string::npos)
        << Stage;
  std::remove(TracePath.c_str());
}

/// Every numeric value following \p Key in \p Json, in document order.
std::vector<double> numbersAfterKey(const std::string &Json,
                                    const std::string &Key) {
  std::vector<double> Out;
  for (std::size_t P = Json.find(Key); P != std::string::npos;
       P = Json.find(Key, P + Key.size()))
    Out.push_back(std::strtod(Json.c_str() + P + Key.size(), nullptr));
  return Out;
}

TEST(CliTrace, SupervisedTraceStitchesWorkerLanes) {
  const std::string TracePath =
      testing::TempDir() + "diffcode_cli_supervised_trace.json";
  std::remove(TracePath.c_str());
  std::string Cmd = std::string(DIFFCODE_CLI_PATH) + " pipeline " +
                    DIFFCODE_SMOKE_CORPUS +
                    " --workers 2 --metrics --trace-out=" + TracePath +
                    " > /dev/null 2>&1";
  ASSERT_EQ(std::system(Cmd.c_str()), 0) << Cmd;

  std::ifstream In(TracePath);
  ASSERT_TRUE(In.good()) << TracePath;
  std::ostringstream Buffer;
  Buffer << In.rdbuf();
  std::string Json = Buffer.str();
  while (!Json.empty() && (Json.back() == '\n' || Json.back() == '\r'))
    Json.pop_back();
  expectValidTraceEventJson(Json);

  // Worker spans land on their own pid lanes next to the coordinator's.
  std::vector<double> Pids = numbersAfterKey(Json, "\"pid\":");
  std::sort(Pids.begin(), Pids.end());
  Pids.erase(std::unique(Pids.begin(), Pids.end()), Pids.end());
  EXPECT_GE(Pids.size(), 2u) << Json.substr(0, 400);

  // The per-change spans now come from the workers.
  EXPECT_NE(Json.find("\"name\":\"processChange\""), std::string::npos);
  // The coordinator's own stage spans are still there.
  EXPECT_NE(Json.find("\"name\":\"pipeline\""), std::string::npos);

  // traceJson sorts by start time, so epoch-aligned worker timestamps
  // must leave the document order monotone — a misaligned (unshifted or
  // wrapped) worker clock would interleave wildly or explode.
  std::vector<double> Starts = numbersAfterKey(Json, "\"ts\":");
  ASSERT_FALSE(Starts.empty());
  for (std::size_t I = 1; I < Starts.size(); ++I)
    EXPECT_LE(Starts[I - 1], Starts[I]) << I;
  std::remove(TracePath.c_str());
}

TEST(CliTrace, SupervisedMetricsCarryWorkerNamespace) {
  const std::string OutPath =
      testing::TempDir() + "diffcode_cli_supervised_metrics.json";
  std::string Cmd = std::string(DIFFCODE_CLI_PATH) + " pipeline " +
                    DIFFCODE_SMOKE_CORPUS +
                    " --workers 2 --metrics --json > " + OutPath +
                    " 2>/dev/null";
  ASSERT_EQ(std::system(Cmd.c_str()), 0) << Cmd;

  std::ifstream In(OutPath);
  ASSERT_TRUE(In.good());
  std::ostringstream Buffer;
  Buffer << In.rdbuf();
  std::string Json = Buffer.str();
  while (!Json.empty() && (Json.back() == '\n' || Json.back() == '\r'))
    Json.pop_back();
  EXPECT_TRUE(JsonChecker(Json).valid());
  // Worker registries were shipped over the wire and merged under the
  // exec.worker.* namespace; the transport itself is counted too.
  EXPECT_NE(Json.find("\"exec.worker."), std::string::npos);
  EXPECT_NE(Json.find("\"exec.telemetry_frames\""), std::string::npos);
  std::remove(OutPath.c_str());
}

TEST(CliTrace, JsonReportCarriesMetricsBlock) {
  const std::string OutPath =
      testing::TempDir() + "diffcode_cli_metrics_report.json";
  std::string Cmd = std::string(DIFFCODE_CLI_PATH) + " pipeline " +
                    DIFFCODE_SMOKE_CORPUS + " --metrics --json > " + OutPath +
                    " 2>/dev/null";
  ASSERT_EQ(std::system(Cmd.c_str()), 0) << Cmd;

  std::ifstream In(OutPath);
  ASSERT_TRUE(In.good());
  std::ostringstream Buffer;
  Buffer << In.rdbuf();
  std::string Json = Buffer.str();
  while (!Json.empty() && (Json.back() == '\n' || Json.back() == '\r'))
    Json.pop_back();
  EXPECT_TRUE(JsonChecker(Json).valid());
  EXPECT_NE(Json.find("\"metrics\":{"), std::string::npos);
  EXPECT_NE(Json.find("\"stages\":["), std::string::npos);
  EXPECT_NE(Json.find("\"counters\":["), std::string::npos);
  std::remove(OutPath.c_str());
}

} // namespace
