//===- javaast/AstVisitor.cpp ----------------------------------------------===//

#include "javaast/AstVisitor.h"

#include "support/Casting.h"

#include <cassert>

using namespace diffcode;
using namespace diffcode::java;

void AstVisitor::walk(const AstNode *Node) {
  if (!Node)
    return;
  if (const auto *Unit = dyn_cast<CompilationUnit>(Node)) {
    if (!visitCompilationUnit(*Unit))
      return;
    for (const ClassDecl *Class : Unit->Types)
      walkClass(*Class);
    return;
  }
  if (const auto *Class = dyn_cast<ClassDecl>(Node)) {
    walkClass(*Class);
    return;
  }
  if (const auto *Field = dyn_cast<FieldDecl>(Node)) {
    if (visitField(*Field))
      walkExpr(Field->Init);
    return;
  }
  if (const auto *Method = dyn_cast<MethodDecl>(Node)) {
    if (visitMethod(*Method))
      walkStmt(Method->Body);
    return;
  }
  if (const auto *S = dyn_cast<Stmt>(Node)) {
    walkStmt(S);
    return;
  }
  if (const auto *E = dyn_cast<Expr>(Node)) {
    walkExpr(E);
    return;
  }
  assert(false && "unknown node category");
}

void AstVisitor::walkClass(const ClassDecl &Class) {
  if (!visitClass(Class))
    return;
  for (const FieldDecl *Field : Class.Fields)
    walk(Field);
  for (const MethodDecl *Method : Class.Methods)
    walk(Method);
  for (const ClassDecl *Nested : Class.NestedClasses)
    walkClass(*Nested);
}

void AstVisitor::walkStmt(const Stmt *S) {
  if (!S)
    return;
  if (!visitStmt(*S))
    return;
  switch (S->getKind()) {
  case NodeKind::BlockStmt:
    for (const Stmt *Child : cast<Block>(S)->Stmts)
      walkStmt(Child);
    return;
  case NodeKind::LocalVarDeclStmt:
    walkExpr(cast<LocalVarDeclStmt>(S)->Init);
    return;
  case NodeKind::ExprStmt:
    walkExpr(cast<ExprStmt>(S)->E);
    return;
  case NodeKind::IfStmt: {
    const auto *If = cast<IfStmt>(S);
    walkExpr(If->Cond);
    walkStmt(If->Then);
    walkStmt(If->Else);
    return;
  }
  case NodeKind::WhileStmt: {
    const auto *While = cast<WhileStmt>(S);
    walkExpr(While->Cond);
    walkStmt(While->Body);
    return;
  }
  case NodeKind::DoStmt: {
    const auto *Do = cast<DoStmt>(S);
    walkStmt(Do->Body);
    walkExpr(Do->Cond);
    return;
  }
  case NodeKind::ForStmt: {
    const auto *For = cast<ForStmt>(S);
    walkStmt(For->Init);
    walkExpr(For->Cond);
    walkExpr(For->Update);
    walkStmt(For->Body);
    return;
  }
  case NodeKind::ReturnStmt:
    walkExpr(cast<ReturnStmt>(S)->Value);
    return;
  case NodeKind::TryStmt: {
    const auto *Try = cast<TryStmt>(S);
    walkStmt(Try->Body);
    for (const CatchClause &Clause : Try->Catches)
      walkStmt(Clause.Body);
    walkStmt(Try->Finally);
    return;
  }
  case NodeKind::ThrowStmt:
    walkExpr(cast<ThrowStmt>(S)->Value);
    return;
  case NodeKind::BreakStmt:
  case NodeKind::ContinueStmt:
  case NodeKind::EmptyStmt:
    return;
  default:
    assert(false && "unhandled statement kind in visitor");
  }
}

void AstVisitor::walkExpr(const Expr *E) {
  if (!E)
    return;
  if (!visitExpr(*E))
    return;
  switch (E->getKind()) {
  case NodeKind::IntLiteralExpr:
  case NodeKind::LongLiteralExpr:
  case NodeKind::StringLiteralExpr:
  case NodeKind::CharLiteralExpr:
  case NodeKind::BoolLiteralExpr:
  case NodeKind::NullLiteralExpr:
    visitLiteral(*E);
    return;
  case NodeKind::NameExpr:
    visitName(*cast<NameExpr>(E));
    return;
  case NodeKind::ThisExpr:
    return;
  case NodeKind::FieldAccessExpr:
    walkExpr(cast<FieldAccessExpr>(E)->Base);
    return;
  case NodeKind::MethodCallExpr: {
    const auto *Call = cast<MethodCallExpr>(E);
    if (!visitCall(*Call))
      return;
    walkExpr(Call->Base);
    for (const Expr *Arg : Call->Args)
      walkExpr(Arg);
    return;
  }
  case NodeKind::NewObjectExpr: {
    const auto *New = cast<NewObjectExpr>(E);
    if (!visitNewObject(*New))
      return;
    for (const Expr *Arg : New->Args)
      walkExpr(Arg);
    return;
  }
  case NodeKind::NewArrayExpr: {
    const auto *New = cast<NewArrayExpr>(E);
    for (const Expr *Dim : New->DimExprs)
      walkExpr(Dim);
    walkExpr(New->Init);
    return;
  }
  case NodeKind::ArrayInitExpr:
    for (const Expr *Elem : cast<ArrayInitExpr>(E)->Elements)
      walkExpr(Elem);
    return;
  case NodeKind::ArrayAccessExpr: {
    const auto *Access = cast<ArrayAccessExpr>(E);
    walkExpr(Access->Base);
    walkExpr(Access->Index);
    return;
  }
  case NodeKind::AssignExpr: {
    const auto *Assign = cast<AssignExpr>(E);
    walkExpr(Assign->Lhs);
    walkExpr(Assign->Rhs);
    return;
  }
  case NodeKind::BinaryExpr: {
    const auto *Bin = cast<BinaryExpr>(E);
    walkExpr(Bin->Lhs);
    walkExpr(Bin->Rhs);
    return;
  }
  case NodeKind::UnaryExpr:
    walkExpr(cast<UnaryExpr>(E)->Operand);
    return;
  case NodeKind::CastExpr:
    walkExpr(cast<CastExpr>(E)->Operand);
    return;
  case NodeKind::ConditionalExpr: {
    const auto *Cond = cast<ConditionalExpr>(E);
    walkExpr(Cond->Cond);
    walkExpr(Cond->TrueExpr);
    walkExpr(Cond->FalseExpr);
    return;
  }
  case NodeKind::InstanceofExpr:
    walkExpr(cast<InstanceofExpr>(E)->Operand);
    return;
  default:
    assert(false && "unhandled expression kind in visitor");
  }
}
