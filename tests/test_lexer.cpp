//===- tests/test_lexer.cpp - Java lexer unit tests ------------------------===//

#include "javaast/Lexer.h"

#include <gtest/gtest.h>

using namespace diffcode::java;

namespace {

std::vector<Token> lex(std::string_view Source) {
  DiagnosticsEngine Diags;
  Lexer L(Source, Diags);
  return L.lexAll();
}

std::vector<Token> lexExpectErrors(std::string_view Source,
                                   DiagnosticsEngine &Diags) {
  Lexer L(Source, Diags);
  return L.lexAll();
}

} // namespace

TEST(Lexer, EmptyInput) {
  std::vector<Token> Tokens = lex("");
  ASSERT_EQ(Tokens.size(), 1u);
  EXPECT_EQ(Tokens[0].Kind, TokenKind::EndOfFile);
}

TEST(Lexer, Identifiers) {
  std::vector<Token> Tokens = lex("foo _bar $baz a1b2");
  ASSERT_EQ(Tokens.size(), 5u);
  for (int I = 0; I < 4; ++I)
    EXPECT_EQ(Tokens[I].Kind, TokenKind::Identifier);
  EXPECT_EQ(Tokens[0].Text, "foo");
  EXPECT_EQ(Tokens[1].Text, "_bar");
  EXPECT_EQ(Tokens[2].Text, "$baz");
  EXPECT_EQ(Tokens[3].Text, "a1b2");
}

TEST(Lexer, Keywords) {
  std::vector<Token> Tokens = lex("class if else while new return try");
  EXPECT_EQ(Tokens[0].Kind, TokenKind::KwClass);
  EXPECT_EQ(Tokens[1].Kind, TokenKind::KwIf);
  EXPECT_EQ(Tokens[2].Kind, TokenKind::KwElse);
  EXPECT_EQ(Tokens[3].Kind, TokenKind::KwWhile);
  EXPECT_EQ(Tokens[4].Kind, TokenKind::KwNew);
  EXPECT_EQ(Tokens[5].Kind, TokenKind::KwReturn);
  EXPECT_EQ(Tokens[6].Kind, TokenKind::KwTry);
}

TEST(Lexer, KeywordPrefixIsIdentifier) {
  std::vector<Token> Tokens = lex("classy ifx news");
  EXPECT_EQ(Tokens[0].Kind, TokenKind::Identifier);
  EXPECT_EQ(Tokens[1].Kind, TokenKind::Identifier);
  EXPECT_EQ(Tokens[2].Kind, TokenKind::Identifier);
}

TEST(Lexer, IntLiterals) {
  std::vector<Token> Tokens = lex("0 42 0x1F 123L");
  EXPECT_EQ(Tokens[0].Kind, TokenKind::IntLiteral);
  EXPECT_EQ(Tokens[0].Text, "0");
  EXPECT_EQ(Tokens[1].Text, "42");
  EXPECT_EQ(Tokens[2].Kind, TokenKind::IntLiteral);
  EXPECT_EQ(Tokens[2].Text, "0x1F");
  EXPECT_EQ(Tokens[3].Kind, TokenKind::LongLiteral);
}

TEST(Lexer, FloatLiteralLexedAsNumber) {
  std::vector<Token> Tokens = lex("3.14f 2.5");
  EXPECT_EQ(Tokens[0].Kind, TokenKind::IntLiteral);
  EXPECT_EQ(Tokens[0].Text, "3.14f");
  EXPECT_EQ(Tokens[1].Text, "2.5");
}

TEST(Lexer, StringLiteralDecodesEscapes) {
  std::vector<Token> Tokens = lex(R"("a\nb\"c\\d")");
  ASSERT_EQ(Tokens[0].Kind, TokenKind::StringLiteral);
  EXPECT_EQ(Tokens[0].Text, "a\nb\"c\\d");
}

TEST(Lexer, StringLiteralPlain) {
  std::vector<Token> Tokens = lex("\"AES/CBC/PKCS5Padding\"");
  ASSERT_EQ(Tokens[0].Kind, TokenKind::StringLiteral);
  EXPECT_EQ(Tokens[0].Text, "AES/CBC/PKCS5Padding");
}

TEST(Lexer, CharLiteral) {
  std::vector<Token> Tokens = lex("'x' '\\n' '\\''");
  EXPECT_EQ(Tokens[0].Kind, TokenKind::CharLiteral);
  EXPECT_EQ(Tokens[0].Text, "x");
  EXPECT_EQ(Tokens[1].Text, "\n");
  EXPECT_EQ(Tokens[2].Text, "'");
}

TEST(Lexer, UnicodeEscape) {
  std::vector<Token> Tokens = lex(R"("A")");
  EXPECT_EQ(Tokens[0].Text, "A");
}

TEST(Lexer, LineCommentsSkipped) {
  std::vector<Token> Tokens = lex("a // comment with * and /\nb");
  ASSERT_EQ(Tokens.size(), 3u);
  EXPECT_EQ(Tokens[0].Text, "a");
  EXPECT_EQ(Tokens[1].Text, "b");
}

TEST(Lexer, BlockCommentsSkipped) {
  std::vector<Token> Tokens = lex("a /* multi\nline\ncomment */ b");
  ASSERT_EQ(Tokens.size(), 3u);
  EXPECT_EQ(Tokens[1].Text, "b");
}

TEST(Lexer, UnterminatedBlockCommentDiagnosed) {
  DiagnosticsEngine Diags;
  lexExpectErrors("a /* never closed", Diags);
  EXPECT_TRUE(Diags.hasErrors());
}

TEST(Lexer, UnterminatedStringDiagnosed) {
  DiagnosticsEngine Diags;
  lexExpectErrors("\"open\n", Diags);
  EXPECT_TRUE(Diags.hasErrors());
}

TEST(Lexer, OperatorsAndPunctuation) {
  std::vector<Token> Tokens =
      lex("{ } ( ) [ ] ; , . == != <= >= && || += -= ++ -- << >> ...");
  std::vector<TokenKind> Expected = {
      TokenKind::LBrace,     TokenKind::RBrace,       TokenKind::LParen,
      TokenKind::RParen,     TokenKind::LBracket,     TokenKind::RBracket,
      TokenKind::Semi,       TokenKind::Comma,        TokenKind::Dot,
      TokenKind::EqualEqual, TokenKind::NotEqual,     TokenKind::LessEqual,
      TokenKind::GreaterEqual, TokenKind::AmpAmp,     TokenKind::PipePipe,
      TokenKind::PlusAssign, TokenKind::MinusAssign,  TokenKind::PlusPlus,
      TokenKind::MinusMinus, TokenKind::Shl,          TokenKind::Shr,
      TokenKind::Ellipsis};
  ASSERT_GE(Tokens.size(), Expected.size());
  for (std::size_t I = 0; I < Expected.size(); ++I)
    EXPECT_EQ(Tokens[I].Kind, Expected[I]) << "token " << I;
}

TEST(Lexer, MaximalMunch) {
  // `a+++b` lexes as a ++ + b.
  std::vector<Token> Tokens = lex("a+++b");
  EXPECT_EQ(Tokens[0].Kind, TokenKind::Identifier);
  EXPECT_EQ(Tokens[1].Kind, TokenKind::PlusPlus);
  EXPECT_EQ(Tokens[2].Kind, TokenKind::Plus);
  EXPECT_EQ(Tokens[3].Kind, TokenKind::Identifier);
}

TEST(Lexer, TracksLineAndColumn) {
  std::vector<Token> Tokens = lex("a\n  b");
  EXPECT_EQ(Tokens[0].Loc.Line, 1u);
  EXPECT_EQ(Tokens[0].Loc.Column, 1u);
  EXPECT_EQ(Tokens[1].Loc.Line, 2u);
  EXPECT_EQ(Tokens[1].Loc.Column, 3u);
}

TEST(Lexer, UnknownCharacterDiagnosed) {
  DiagnosticsEngine Diags;
  std::vector<Token> Tokens = lexExpectErrors("a # b", Diags);
  EXPECT_TRUE(Diags.hasErrors());
  // Lexing continues past the bad character.
  EXPECT_EQ(Tokens.back().Kind, TokenKind::EndOfFile);
  EXPECT_EQ(Tokens[2].Text, "b");
}

TEST(Lexer, AnnotationAt) {
  std::vector<Token> Tokens = lex("@Override");
  EXPECT_EQ(Tokens[0].Kind, TokenKind::At);
  EXPECT_EQ(Tokens[1].Kind, TokenKind::Identifier);
}

TEST(TokenNames, CoverCommonKinds) {
  EXPECT_EQ(tokenKindName(TokenKind::Identifier), "identifier");
  EXPECT_EQ(tokenKindName(TokenKind::KwClass), "'class'");
  EXPECT_EQ(tokenKindName(TokenKind::LBrace), "'{'");
  EXPECT_EQ(tokenKindName(TokenKind::EndOfFile), "end of file");
}

TEST(Keywords, LookupRoundTrip) {
  EXPECT_EQ(lookupKeyword("class"), TokenKind::KwClass);
  EXPECT_EQ(lookupKeyword("synchronized"), TokenKind::KwSynchronized);
  EXPECT_EQ(lookupKeyword("notakeyword"), TokenKind::Identifier);
  EXPECT_EQ(lookupKeyword(""), TokenKind::Identifier);
}
