//===- javaast/Diagnostics.h - Error collection ----------------------------===//
//
// Part of the DiffCode project, a reproduction of "Inferring Crypto API
// Rules from Code Changes" (PLDI'18).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Diagnostic sink shared by the lexer and parser. DiffCode analyzes
/// partial programs mined from commits, so the frontend must degrade
/// gracefully: errors are collected, never thrown, and the parser recovers
/// where it can (Section 5.1: the analyzer "supports (partial) code
/// snippets").
///
//===----------------------------------------------------------------------===//

#ifndef DIFFCODE_JAVAAST_DIAGNOSTICS_H
#define DIFFCODE_JAVAAST_DIAGNOSTICS_H

#include "javaast/SourceLocation.h"

#include <string>
#include <vector>

namespace diffcode {
namespace java {

/// Severity of a reported diagnostic.
enum class DiagLevel { Warning, Error };

/// One reported problem with its location.
struct Diagnostic {
  DiagLevel Level = DiagLevel::Error;
  SourceLocation Loc;
  std::string Message;

  /// Renders as "line:col: error: message" (tool style, lowercase, no
  /// trailing period).
  std::string str() const;
};

/// Accumulates diagnostics for one frontend run.
class DiagnosticsEngine {
public:
  void error(SourceLocation Loc, std::string Message) {
    Diags.push_back({DiagLevel::Error, Loc, std::move(Message)});
  }

  void warning(SourceLocation Loc, std::string Message) {
    Diags.push_back({DiagLevel::Warning, Loc, std::move(Message)});
  }

  /// Reports a resource-budget violation (parser recursion depth, token
  /// count). Budget errors are separate from syntax errors: a syntax
  /// error means the *input* is broken, a budget error means the input is
  /// too big for the configured limits — callers map them to different
  /// ChangeStatus values.
  void budget(SourceLocation Loc, std::string Message) {
    BudgetHit = true;
    error(Loc, std::move(Message));
  }

  bool hasErrors() const {
    for (const Diagnostic &D : Diags)
      if (D.Level == DiagLevel::Error)
        return true;
    return false;
  }

  /// True when any reported error was a resource-budget violation.
  bool budgetExceeded() const { return BudgetHit; }

  const std::vector<Diagnostic> &all() const { return Diags; }
  void clear() {
    Diags.clear();
    BudgetHit = false;
  }

private:
  std::vector<Diagnostic> Diags;
  bool BudgetHit = false;
};

} // namespace java
} // namespace diffcode

#endif // DIFFCODE_JAVAAST_DIAGNOSTICS_H
