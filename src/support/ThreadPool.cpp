//===- support/ThreadPool.cpp ----------------------------------------------===//

#include "support/ThreadPool.h"

#include <algorithm>

using namespace diffcode;
using namespace diffcode::support;

unsigned support::resolveThreads(unsigned Requested) {
  if (Requested != 0)
    return Requested;
  return std::max(1u, std::thread::hardware_concurrency());
}

ThreadPool::ThreadPool(unsigned ThreadCount, bool CollectStats)
    : Collect(CollectStats) {
  unsigned Resolved = resolveThreads(ThreadCount);
  if (Collect)
    Accounting.WorkerBusyNs.assign(Resolved, 0);
  Workers.reserve(Resolved - 1);
  for (unsigned I = 1; I < Resolved; ++I)
    Workers.emplace_back([this, I] { workerLoop(I); });
}

ThreadPool::Stats ThreadPool::statsSnapshot() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Accounting;
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    ShuttingDown = true;
  }
  WakeCV.notify_all();
  for (std::thread &T : Workers)
    T.join();
}

void ThreadPool::runChunks(
    const std::function<void(std::size_t, std::size_t)> &Body, unsigned Worker,
    std::uint64_t QueueWaitNs) {
  using Clock = std::chrono::steady_clock;
  Clock::time_point T0;
  if (Collect)
    T0 = Clock::now();
  std::uint64_t LocalChunks = 0;
  while (!Failed.load(std::memory_order_relaxed)) {
    std::size_t Begin = Cursor.fetch_add(Chunk, std::memory_order_relaxed);
    if (Begin >= End)
      break;
    std::size_t Stop = std::min(End, Begin + Chunk);
    ++LocalChunks;
    try {
      Body(Begin, Stop);
    } catch (...) {
      std::lock_guard<std::mutex> Lock(Mutex);
      if (!FirstError)
        FirstError = std::current_exception();
      Failed.store(true, std::memory_order_relaxed);
    }
  }
  if (Collect) {
    std::uint64_t BusyNs = std::uint64_t(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() - T0)
            .count());
    std::lock_guard<std::mutex> Lock(Mutex);
    Accounting.Chunks += LocalChunks;
    Accounting.QueueWaitNs += QueueWaitNs;
    Accounting.WorkerBusyNs[Worker] += BusyNs;
  }
}

void ThreadPool::workerLoop(unsigned Worker) {
  std::uint64_t SeenGeneration = 0;
  std::unique_lock<std::mutex> Lock(Mutex);
  while (true) {
    WakeCV.wait(Lock, [&] {
      return ShuttingDown || Generation != SeenGeneration;
    });
    if (ShuttingDown)
      return;
    SeenGeneration = Generation;
    const auto *Batch = Body;
    FaultContext Ctx = BatchFaults;
    std::uint64_t WaitNs = 0;
    if (Collect)
      WaitNs = std::uint64_t(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - BatchPublish)
              .count());
    Lock.unlock();
    {
      // Mirror the caller's fault-injection context so seeded campaigns
      // fire identically whether a chunk runs here or on the caller.
      FaultScope Scope(Ctx);
      runChunks(*Batch, Worker, WaitNs);
    }
    Lock.lock();
    if (--Busy == 0)
      DoneCV.notify_all();
  }
}

void ThreadPool::parallelForChunked(
    std::size_t N, std::size_t ChunkSize,
    const std::function<void(std::size_t, std::size_t)> &Fn) {
  if (N == 0)
    return;
  if (ChunkSize == 0)
    ChunkSize = 1;
  if (Workers.empty() || N <= ChunkSize) {
    if (!Collect) {
      Fn(0, N);
      return;
    }
    auto T0 = std::chrono::steady_clock::now();
    Fn(0, N);
    std::uint64_t BusyNs = std::uint64_t(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - T0)
            .count());
    std::lock_guard<std::mutex> Lock(Mutex);
    ++Accounting.Batches;
    ++Accounting.Chunks;
    Accounting.WorkerBusyNs[0] += BusyNs;
    return;
  }
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    Body = &Fn;
    Cursor.store(0, std::memory_order_relaxed);
    End = N;
    Chunk = ChunkSize;
    Busy = static_cast<unsigned>(Workers.size());
    FirstError = nullptr;
    Failed.store(false, std::memory_order_relaxed);
    BatchFaults = FaultContext::current();
    if (Collect) {
      ++Accounting.Batches;
      BatchPublish = std::chrono::steady_clock::now();
    }
    ++Generation;
  }
  WakeCV.notify_all();
  runChunks(Fn, 0, 0);
  std::unique_lock<std::mutex> Lock(Mutex);
  DoneCV.wait(Lock, [&] { return Busy == 0; });
  Body = nullptr;
  if (FirstError) {
    std::exception_ptr E = FirstError;
    FirstError = nullptr;
    std::rethrow_exception(E);
  }
}

void ThreadPool::parallelFor(std::size_t N,
                             const std::function<void(std::size_t)> &Fn) {
  if (N == 0)
    return;
  std::size_t ChunkSize = std::max<std::size_t>(
      1, N / (static_cast<std::size_t>(threadCount()) * 8));
  parallelForChunked(N, ChunkSize,
                     [&Fn](std::size_t Begin, std::size_t Stop) {
                       for (std::size_t I = Begin; I < Stop; ++I)
                         Fn(I);
                     });
}
