//===- javaast/AstPrinter.h - Java source re-emission ----------------------===//
//
// Part of the DiffCode project, a reproduction of "Inferring Crypto API
// Rules from Code Changes" (PLDI'18).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Pretty printer that renders the AST back to compilable Java-subset
/// source. Used by the corpus generator (to materialize program versions)
/// and by round-trip property tests: print(parse(print(T))) == print(T).
///
//===----------------------------------------------------------------------===//

#ifndef DIFFCODE_JAVAAST_ASTPRINTER_H
#define DIFFCODE_JAVAAST_ASTPRINTER_H

#include "javaast/Ast.h"

#include <string>

namespace diffcode {
namespace java {

/// Renders AST subtrees to text with two-space indentation.
class AstPrinter {
public:
  /// Prints a whole compilation unit.
  std::string print(const CompilationUnit *Unit);

  /// Prints a single expression (no trailing newline).
  std::string printExpr(const Expr *E);

  /// Prints a single statement at indent level 0.
  std::string printStmt(const Stmt *S);

private:
  void emitUnit(const CompilationUnit *Unit);
  void emitClass(const ClassDecl *Class, int Indent);
  void emitField(const FieldDecl *Field, int Indent);
  void emitMethod(const MethodDecl *Method, int Indent);
  void emitStmt(const Stmt *S, int Indent);
  void emitBlock(const Block *B, int Indent);
  void emitExpr(const Expr *E);
  void emitModifiers(unsigned Modifiers);
  void indent(int Level);
  void emitStringLiteral(const std::string &Value);

  std::string Out;
};

} // namespace java
} // namespace diffcode

#endif // DIFFCODE_JAVAAST_ASTPRINTER_H
