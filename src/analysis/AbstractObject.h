//===- analysis/AbstractObject.h - Allocation-site heap abstraction --------===//
//
// Part of the DiffCode project, a reproduction of "Inferring Crypto API
// Rules from Code Changes" (PLDI'18).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Per-allocation-site heap abstraction (Section 3.3): each constructor or
/// factory call site yields one abstract object identified by the
/// statement's label. The ObjectTable interns sites so that re-executing a
/// site (loops, forked paths, multiple entry methods) reuses the same
/// abstract object.
///
//===----------------------------------------------------------------------===//

#ifndef DIFFCODE_ANALYSIS_ABSTRACTOBJECT_H
#define DIFFCODE_ANALYSIS_ABSTRACTOBJECT_H

#include "javaast/SourceLocation.h"

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace diffcode {
namespace analysis {

/// One abstract object (allocation site).
struct AbstractObject {
  unsigned Id = 0;
  std::string TypeName;         ///< Dynamic type at the site ("Cipher").
  java::SourceLocation AllocSite;

  /// Site label in the paper's "l13" style (line of the allocation).
  std::string siteLabel() const {
    return "l" + std::to_string(AllocSite.Line);
  }
};

/// Interning table of allocation sites for one program version.
class ObjectTable {
public:
  /// Returns the object for (site, type), creating it on first use.
  unsigned getOrCreate(java::SourceLocation Site, const std::string &Type) {
    std::uint64_t Key =
        (static_cast<std::uint64_t>(Site.Line) << 32) | Site.Column;
    auto It = SiteIndex.find({Key, Type});
    if (It != SiteIndex.end())
      return It->second;
    unsigned Id = static_cast<unsigned>(Objects.size());
    Objects.push_back({Id, Type, Site});
    SiteIndex.emplace(std::make_pair(Key, Type), Id);
    return Id;
  }

  const AbstractObject &get(unsigned Id) const { return Objects[Id]; }
  std::size_t size() const { return Objects.size(); }
  const std::vector<AbstractObject> &all() const { return Objects; }

private:
  std::vector<AbstractObject> Objects;
  std::map<std::pair<std::uint64_t, std::string>, unsigned> SiteIndex;
};

} // namespace analysis
} // namespace diffcode

#endif // DIFFCODE_ANALYSIS_ABSTRACTOBJECT_H
