//===- obs/Trace.h - Span-based tracing with Chrome trace_event output -----===//
//
// Part of the DiffCode project, a reproduction of "Inferring Crypto API
// Rules from Code Changes" (PLDI'18).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The tracing half of the observability layer: RAII \ref Span objects
/// record (name, start, duration) events into a \ref Tracer, which can
/// render them either as Chrome `trace_event` JSON (load the file in
/// chrome://tracing or Perfetto) or aggregate them into a per-stage
/// timing table.
///
/// Span names must be string literals (or otherwise outlive the tracer):
/// spans store the `const char *`, never copy, so entering a span is two
/// clock reads plus one short mutex-protected vector push on exit.
///
/// Determinism contract: raw events carry wall-clock timestamps and the
/// registration order of threads, both run-dependent, so the raw trace is
/// PerRun by construction. \ref Tracer::aggregate() sorts by name and
/// sums, so the *set of stage names and per-stage span counts* is
/// deterministic for a fixed pipeline input; the differential harness
/// compares exactly that projection.
///
//===----------------------------------------------------------------------===//

#ifndef DIFFCODE_OBS_TRACE_H
#define DIFFCODE_OBS_TRACE_H

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace diffcode {
namespace obs {

/// Collects completed span events from any thread.
class Tracer {
public:
  /// One completed span.
  struct Event {
    const char *Name = nullptr;
    std::uint64_t StartNs = 0; ///< Nanoseconds since the tracer's epoch.
    std::uint64_t DurNs = 0;
    std::uint32_t Tid = 0; ///< Small per-tracer thread id.
  };

  /// One row of the aggregated per-stage table.
  struct StageTotal {
    std::string Name;
    std::uint64_t Spans = 0;
    std::uint64_t TotalNs = 0;
  };

  Tracer();
  Tracer(const Tracer &) = delete;
  Tracer &operator=(const Tracer &) = delete;

  /// Nanoseconds since the tracer's construction (the trace epoch).
  std::uint64_t now() const;

  /// Records one completed span; called by Span's destructor.
  void record(const char *Name, std::uint64_t StartNs, std::uint64_t DurNs);

  std::size_t eventCount() const;

  /// Name-sorted totals: span count and summed duration per stage name.
  std::vector<StageTotal> aggregate() const;

  /// The collected events as a Chrome `trace_event` JSON document
  /// (complete "X" phase events; ts/dur in microseconds). Events are
  /// ordered by (ts, tid, name) so the document is stable for a fixed
  /// event set.
  std::string traceJson() const;

private:
  std::uint32_t tidForThisThread();

  std::chrono::steady_clock::time_point Epoch;
  mutable std::mutex Mutex;
  std::vector<Event> Events;
  std::vector<std::thread::id> ThreadIds; ///< Index = small tid.
};

/// RAII span: times the enclosing scope into \p T. A null tracer makes
/// the span a no-op — callers can unconditionally open spans and pay
/// nothing when observability is off.
class Span {
public:
  Span(Tracer *T, const char *Name)
      : T(T), Name(Name), StartNs(T ? T->now() : 0) {}
  Span(const Span &) = delete;
  Span &operator=(const Span &) = delete;
  ~Span() {
    if (T)
      T->record(Name, StartNs, T->now() - StartNs);
  }

private:
  Tracer *T;
  const char *Name;
  std::uint64_t StartNs;
};

} // namespace obs
} // namespace diffcode

#endif // DIFFCODE_OBS_TRACE_H
