//===- bench/ablation_abstraction.cpp - Abstraction granularity ablation ---===//
//
// Part of the DiffCode project, a reproduction of "Inferring Crypto API
// Rules from Code Changes" (PLDI'18).
//
//===----------------------------------------------------------------------===//
//
// Ablation A1 (DESIGN.md): rerun the Figure 6 pipeline under three
// base-type abstractions and score the filters against the generator's
// ground truth:
//
//   Paper    — Figure 3 (ints/strings kept, byte arrays collapsed);
//   KeepAll  — byte arrays keep their concrete elements;
//   AllTop   — every base value widens to top.
//
// Expected shape: AllTop loses fixes (value swaps become invisible, so
// fsame removes them); KeepAll keeps every fix but multiplies "distinct"
// changes (worse duplicate collapse, higher inspection load). The paper's
// abstraction is the sweet spot — that is precisely why Section 3.3
// tailors the domains to crypto APIs.
//
//===----------------------------------------------------------------------===//

#include "bench_common.h"

#include "support/TablePrinter.h"

#include <iostream>

using namespace diffcode;
using namespace diffcode::core;

namespace {

struct Score {
  std::size_t FixesTotal = 0;
  std::size_t FixesSurviving = 0;   // >= 1 kept usage change
  std::size_t RefactorsTotal = 0;
  std::size_t RefactorsSurviving = 0; // false positives
  std::size_t InspectionLoad = 0;     // kept changes across classes
};

Score scorePipeline(const bench::MinedCorpus &Mined,
                    analysis::AnalysisOptions::BaseAbstraction Mode) {
  const apimodel::CryptoApiModel &Api =
      apimodel::CryptoApiModel::javaCryptoApi();
  PipelineConfig Opts;
  Opts.Limits.Analysis.Abstraction = Mode;
  Opts.Threads = 0;
  DiffCode System(Api, Opts);

  Score S;
  // Per-change survival against ground truth.
  for (const corpus::CodeChange *Change : Mined.Changes) {
    bool IsFix = Change->isGroundTruthFix();
    bool IsRefactor = Change->Kind == "refactor";
    if (!IsFix && !IsRefactor)
      continue;
    bool Survives = false;
    for (const std::string &Target : Api.targetClasses())
      for (const usage::UsageChange &UC :
           System.usageChangesFor(*Change, Target))
        Survives = Survives || classifySolo(UC) == FilterStage::Kept;
    if (IsFix) {
      ++S.FixesTotal;
      S.FixesSurviving += Survives;
    } else {
      ++S.RefactorsTotal;
      S.RefactorsSurviving += Survives;
    }
  }

  // Corpus-level inspection load (after fdup).
  CorpusReport Report =
      System.run({.Changes = Mined.Changes,
                          .TargetClasses = Api.targetClasses(),
                          .BuildDendrograms = false});
  for (const ClassReport &Class : Report.PerClass)
    S.InspectionLoad += Class.Filtered.AfterDup;
  return S;
}

const char *modeName(analysis::AnalysisOptions::BaseAbstraction Mode) {
  using BA = analysis::AnalysisOptions::BaseAbstraction;
  switch (Mode) {
  case BA::Paper:
    return "Paper (Figure 3)";
  case BA::KeepAllConstants:
    return "KeepAllConstants";
  case BA::AllTop:
    return "AllTop";
  }
  return "";
}

} // namespace

int main(int argc, char **argv) {
  std::printf("== Ablation A1: base-type abstraction granularity ==\n\n");
  bench::MinedCorpus Mined = bench::mineStandardCorpus(argc, argv);

  TablePrinter Table({"Abstraction", "fix recall", "refactor FP rate",
                      "inspection load"});
  using BA = analysis::AnalysisOptions::BaseAbstraction;
  for (BA Mode : {BA::Paper, BA::KeepAllConstants, BA::AllTop}) {
    Score S = scorePipeline(Mined, Mode);
    char Recall[64], FP[64];
    std::snprintf(Recall, sizeof(Recall), "%zu/%zu (%.1f%%)",
                  S.FixesSurviving, S.FixesTotal,
                  S.FixesTotal ? 100.0 * S.FixesSurviving / S.FixesTotal
                               : 0.0);
    std::snprintf(FP, sizeof(FP), "%zu/%zu (%.2f%%)", S.RefactorsSurviving,
                  S.RefactorsTotal,
                  S.RefactorsTotal
                      ? 100.0 * S.RefactorsSurviving / S.RefactorsTotal
                      : 0.0);
    Table.addRow({modeName(Mode), Recall, FP,
                  std::to_string(S.InspectionLoad)});
  }
  Table.print(std::cout);

  std::printf("\nreading: Paper-mode should match KeepAll's recall at a "
              "lower inspection load;\nAllTop should lose a large share of "
              "the fixes (value-swap fixes become invisible).\n");
  return 0;
}
