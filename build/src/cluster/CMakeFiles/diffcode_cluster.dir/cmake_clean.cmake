file(REMOVE_RECURSE
  "CMakeFiles/diffcode_cluster.dir/DendrogramExport.cpp.o"
  "CMakeFiles/diffcode_cluster.dir/DendrogramExport.cpp.o.d"
  "CMakeFiles/diffcode_cluster.dir/Distance.cpp.o"
  "CMakeFiles/diffcode_cluster.dir/Distance.cpp.o.d"
  "CMakeFiles/diffcode_cluster.dir/HierarchicalClustering.cpp.o"
  "CMakeFiles/diffcode_cluster.dir/HierarchicalClustering.cpp.o.d"
  "libdiffcode_cluster.a"
  "libdiffcode_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/diffcode_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
