//===- obs/Observer.h - Pipeline observability facade ----------------------===//
//
// Part of the DiffCode project, a reproduction of "Inferring Crypto API
// Rules from Code Changes" (PLDI'18).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// \ref Observer bundles the metrics registry and the tracer into the
/// single handle the pipeline takes (`PipelineRequest::Metrics`); null
/// means observability is off and every instrumentation site reduces to
/// one pointer test. \ref RunSummary is the frozen result attached to
/// `CorpusReport`: a metrics snapshot plus the aggregated per-stage
/// timing table, with JSON renderers for the report's "metrics" block
/// and for the determinism-comparable projection.
///
//===----------------------------------------------------------------------===//

#ifndef DIFFCODE_OBS_OBSERVER_H
#define DIFFCODE_OBS_OBSERVER_H

#include "obs/Metrics.h"
#include "obs/Trace.h"

namespace diffcode {
namespace obs {

/// Everything one observed pipeline run records into.
struct Observer {
  Registry Metrics;
  Tracer Trace;
  /// Cross-process metrics adopted from other registries (the exec
  /// supervisor merges worker snapshots here, already prefixed with
  /// `exec.worker.` and marked PerRun). Folded into the snapshot by
  /// summarize(); not written concurrently with it.
  Snapshot Adopted;

  /// Adopts \p Worker under `exec.worker.*`, forcing PerRun stability —
  /// the supervisor's merge entry point. Kind-mismatched snapshots are
  /// dropped (returns false) rather than poisoning the run's metrics.
  bool adoptWorkerSnapshot(const Snapshot &Worker);

  /// Freezes the current state into a RunSummary (defined below).
  struct RunSummary summarize() const;
};

/// Immutable summary of one observed run, carried on CorpusReport.
struct RunSummary {
  Snapshot Metrics;
  std::vector<Tracer::StageTotal> Stages;

  bool empty() const { return Metrics.empty() && Stages.empty(); }

  /// The report's "metrics" block: {"counters":[...],"stages":[...]}
  /// with full (PerRun included) values.
  std::string json() const;

  /// The byte-comparable projection: deterministic metrics only, and
  /// stages reduced to (name, span count) — no wall times. Two runs of
  /// the same pipeline input must produce identical bytes here
  /// regardless of thread count.
  std::string deterministicJson() const;
};

} // namespace obs
} // namespace diffcode

#endif // DIFFCODE_OBS_OBSERVER_H
