//===- usage/UsageChange.cpp -----------------------------------------------===//

#include "usage/UsageChange.h"

#include "support/Hungarian.h"

#include <algorithm>
#include <cassert>
#include <numeric>
#include <set>

using namespace diffcode;
using namespace diffcode::usage;
using support::Interner;
using support::LabelId;
using support::PathId;

bool UsageChange::sameFeatures(const UsageChange &Other) const {
  if (TypeName != Other.TypeName)
    return false;
  if (Table == Other.Table)
    return Removed == Other.Removed && Added == Other.Added;
  // Different tables (e.g. the parallel-vs-serial differential harness
  // compares two independent pipelines): id values are not comparable,
  // fall back to structural equality.
  auto SamePaths = [&](const std::vector<PathId> &A,
                       const std::vector<PathId> &B) {
    if (A.size() != B.size())
      return false;
    for (std::size_t I = 0; I < A.size(); ++I)
      if (Table->materialize(A[I]) != Other.Table->materialize(B[I]))
        return false;
    return true;
  };
  return SamePaths(Removed, Other.Removed) && SamePaths(Added, Other.Added);
}

std::vector<FeaturePath> UsageChange::removedPaths() const {
  std::vector<FeaturePath> Out;
  Out.reserve(Removed.size());
  for (PathId Id : Removed)
    Out.push_back(Table->materialize(Id));
  return Out;
}

std::vector<FeaturePath> UsageChange::addedPaths() const {
  std::vector<FeaturePath> Out;
  Out.reserve(Added.size());
  for (PathId Id : Added)
    Out.push_back(Table->materialize(Id));
  return Out;
}

std::string UsageChange::pathString(PathId Id) const {
  return Table->pathString(Id);
}

std::string UsageChange::str() const {
  std::string Out;
  for (PathId Id : Removed)
    Out += "- " + Table->pathString(Id) + "\n";
  for (PathId Id : Added)
    Out += "+ " + Table->pathString(Id) + "\n";
  return Out;
}

UsageChange UsageChange::intern(Interner &Table, std::string TypeName,
                                const std::vector<FeaturePath> &Removed,
                                const std::vector<FeaturePath> &Added,
                                std::string Origin) {
  UsageChange Change;
  Change.TypeName = std::move(TypeName);
  Change.Origin = std::move(Origin);
  Change.Table = &Table;
  Change.Removed.reserve(Removed.size());
  for (const FeaturePath &Path : Removed)
    Change.Removed.push_back(Table.path(Path));
  Change.Added.reserve(Added.size());
  for (const FeaturePath &Path : Added)
    Change.Added.push_back(Table.path(Path));
  return Change;
}

std::vector<PathId>
diffcode::usage::shortestPaths(std::vector<PathId> Paths,
                               const Interner &Table) {
  if (Paths.size() < 2)
    return Paths;

  // Sort (indirectly) by label-id-lexicographic order. Under *any* total
  // order on labels, a sorted sequence places every strict prefix of P
  // before P, and — key to the linear pass — if some kept K1 is a strict
  // prefix of P while K1 <= K2 <= P for the last-kept K2, then K2 is
  // itself a prefix of P: at the first position i where K2 diverges from
  // P, i < |K1| would give P[i] = K1[i] < K2[i], i.e. P < K2. So testing
  // only the last-kept survivor is sufficient.
  std::vector<std::size_t> Order(Paths.size());
  std::iota(Order.begin(), Order.end(), 0);
  std::sort(Order.begin(), Order.end(), [&](std::size_t A, std::size_t B) {
    return Table.labelsOf(Paths[A]) < Table.labelsOf(Paths[B]);
  });

  auto IsStrictPrefix = [](const std::vector<LabelId> &A,
                           const std::vector<LabelId> &B) {
    if (A.size() >= B.size())
      return false;
    return std::equal(A.begin(), A.end(), B.begin());
  };

  // Linear elimination: keep the current path unless the last survivor is
  // a strict prefix of it. Duplicates survive (a path is not a strict
  // prefix of itself), exactly as in the quadratic reference.
  std::vector<bool> Keep(Paths.size(), false);
  std::size_t LastKept = Order[0];
  Keep[LastKept] = true;
  for (std::size_t I = 1; I < Order.size(); ++I) {
    std::size_t Cur = Order[I];
    if (!IsStrictPrefix(Table.labelsOf(Paths[LastKept]),
                        Table.labelsOf(Paths[Cur]))) {
      Keep[Cur] = true;
      LastKept = Cur;
    }
  }

  // Survivors in original input order — the survivor *set* is order
  // independent, so the result does not depend on racy id values.
  std::vector<PathId> Out;
  for (std::size_t I = 0; I < Paths.size(); ++I)
    if (Keep[I])
      Out.push_back(Paths[I]);
  return Out;
}

std::vector<PathId> diffcode::usage::removedPaths(const UsageDag &G1,
                                                  const UsageDag &G2,
                                                  Interner &Table) {
  std::set<PathId> InG2;
  for (const FeaturePath &Path : G2.paths())
    InG2.insert(Table.path(Path));

  std::vector<PathId> OnlyInG1;
  for (const FeaturePath &Path : G1.paths()) {
    PathId Id = Table.path(Path);
    if (!InG2.count(Id))
      OnlyInG1.push_back(Id);
  }
  return shortestPaths(std::move(OnlyInG1), Table);
}

UsageChange diffcode::usage::diffDags(const UsageDag &G1, const UsageDag &G2,
                                      Interner &Table) {
  UsageChange Change;
  Change.TypeName = G1.typeName();
  Change.Table = &Table;
  Change.Removed = removedPaths(G1, G2, Table);
  Change.Added = removedPaths(G2, G1, Table);
  return Change;
}

std::vector<std::pair<std::size_t, std::size_t>>
diffcode::usage::pairDags(const std::vector<UsageDag> &Old,
                          const std::vector<UsageDag> &New) {
  std::vector<std::pair<std::size_t, std::size_t>> Pairs;
  if (Old.empty() && New.empty())
    return Pairs;

  CostMatrix Costs(Old.size(), New.size());
  for (std::size_t R = 0; R < Old.size(); ++R)
    for (std::size_t C = 0; C < New.size(); ++C)
      Costs.at(R, C) = dagDistance(Old[R], New[C]);

  Assignment Result = solveAssignment(Costs);
  std::vector<bool> NewMatched(New.size(), false);
  for (std::size_t R = 0; R < Old.size(); ++R) {
    std::size_t C = Result.RowToCol[R];
    Pairs.emplace_back(R, C);
    if (C != Assignment::Unmatched)
      NewMatched[C] = true;
  }
  for (std::size_t C = 0; C < New.size(); ++C)
    if (!NewMatched[C])
      Pairs.emplace_back(Assignment::Unmatched, C);
  return Pairs;
}

std::vector<UsageChange>
diffcode::usage::deriveUsageChanges(const std::vector<UsageDag> &Old,
                                    const std::vector<UsageDag> &New,
                                    const std::string &TypeName,
                                    Interner &Table) {
  std::vector<UsageChange> Changes;
  UsageDag Padding = UsageDag::emptyFor(TypeName);
  for (auto [OldIdx, NewIdx] : pairDags(Old, New)) {
    const UsageDag &G1 =
        OldIdx == Assignment::Unmatched ? Padding : Old[OldIdx];
    const UsageDag &G2 =
        NewIdx == Assignment::Unmatched ? Padding : New[NewIdx];
    Changes.push_back(diffDags(G1, G2, Table));
  }
  return Changes;
}
