# Empty dependencies file for fig8_dendrogram.
# This may be replaced when dependencies are built.
