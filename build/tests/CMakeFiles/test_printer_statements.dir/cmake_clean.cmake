file(REMOVE_RECURSE
  "CMakeFiles/test_printer_statements.dir/test_printer_statements.cpp.o"
  "CMakeFiles/test_printer_statements.dir/test_printer_statements.cpp.o.d"
  "test_printer_statements"
  "test_printer_statements.pdb"
  "test_printer_statements[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_printer_statements.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
