//===- tests/test_cluster_suggestion.cpp - Cluster generalization tests ----===//

#include "rules/RuleSuggestion.h"

#include "analysis/AbstractInterpreter.h"
#include "javaast/Parser.h"

#include <gtest/gtest.h>

using namespace diffcode;
using namespace diffcode::analysis;
using namespace diffcode::rules;
using namespace diffcode::usage;

namespace {

NodeLabel rootL(const char *T) { return NodeLabel::root(T); }
NodeLabel methodL(const char *Sig) { return NodeLabel::method(Sig); }

support::Interner &table() {
  static support::Interner Table;
  return Table;
}

UsageChange modeFix(const char *From, const char *To) {
  return UsageChange::intern(
      table(), "Cipher",
      {{rootL("Cipher"), methodL("Cipher.getInstance/1"),
        NodeLabel::arg(1, AbstractValue::strConst(From))}},
      {{rootL("Cipher"), methodL("Cipher.getInstance/1"),
        NodeLabel::arg(1, AbstractValue::strConst(To))},
       {rootL("Cipher"), methodL("Cipher.init/3"),
        NodeLabel::arg(3, AbstractValue::topObject("IvParameterSpec"))}});
}

UsageChange iterFix(int From, int To) {
  return UsageChange::intern(
      table(), "PBEKeySpec",
      {{rootL("PBEKeySpec"), methodL("PBEKeySpec.<init>/4"),
        NodeLabel::arg(3, AbstractValue::intConst(From))}},
      {{rootL("PBEKeySpec"), methodL("PBEKeySpec.<init>/4"),
        NodeLabel::arg(3, AbstractValue::intConst(To))}});
}

AnalysisResult analyze(std::string_view Source) {
  java::AstContext Ctx;
  java::DiagnosticsEngine Diags;
  java::CompilationUnit *Unit = java::parseJava(Source, Ctx, Diags);
  EXPECT_FALSE(Diags.hasErrors());
  AbstractInterpreter Interp(apimodel::CryptoApiModel::javaCryptoApi());
  return Interp.analyze(Unit);
}

} // namespace

TEST(ClusterSuggestion, EmptyAndSingleton) {
  EXPECT_FALSE(suggestRuleForCluster({}).has_value());
  auto Single = suggestRuleForCluster({modeFix("AES", "AES/CBC/PKCS5Padding")});
  ASSERT_TRUE(Single.has_value()); // falls back to suggestRule
}

TEST(ClusterSuggestion, PrefixCollidingWithAddedValuesFallsBackToValueSet) {
  // The removed values share the "AES" prefix, but the secure values do
  // too — so the generalization must stay with the exact value set.
  std::vector<UsageChange> Members = {
      modeFix("AES", "AES/CBC/PKCS5Padding"),
      modeFix("AES/ECB/PKCS5Padding", "AES/GCM/NoPadding"),
      modeFix("AES/ECB/NoPadding", "AES/CTR/NoPadding"),
  };
  auto Rule = suggestRuleForCluster(Members, "r7-like");
  ASSERT_TRUE(Rule.has_value());

  AnalysisResult Ecb = analyze(
      "class A { void m() throws Exception { "
      "Cipher c = Cipher.getInstance(\"AES\"); } }");
  EXPECT_TRUE(ruleMatches(*Rule, {UnitFacts::from(Ecb)}));
  // The fixed form must pass.
  AnalysisResult Cbc = analyze(
      "class A { void m() throws Exception { "
      "Cipher c = Cipher.getInstance(\"AES/CBC/PKCS5Padding\"); } }");
  EXPECT_FALSE(ruleMatches(*Rule, {UnitFacts::from(Cbc)}));
}

TEST(ClusterSuggestion, StringValuesGeneralizeToCommonPrefix) {
  // Removed values share "AES/ECB/", which covers none of the secure
  // values -> prefix generalization flags unseen ECB paddings too.
  std::vector<UsageChange> Members = {
      modeFix("AES/ECB/PKCS5Padding", "AES/GCM/NoPadding"),
      modeFix("AES/ECB/NoPadding", "AES/CTR/NoPadding"),
  };
  auto Rule = suggestRuleForCluster(Members, "r7-like");
  ASSERT_TRUE(Rule.has_value());

  AnalysisResult UnseenEcb = analyze(
      "class A { void m() throws Exception { "
      "Cipher c = Cipher.getInstance(\"AES/ECB/ISO10126Padding\"); } }");
  EXPECT_TRUE(ruleMatches(*Rule, {UnitFacts::from(UnseenEcb)}));
  AnalysisResult Cbc = analyze(
      "class A { void m() throws Exception { "
      "Cipher c = Cipher.getInstance(\"AES/CBC/PKCS5Padding\"); } }");
  EXPECT_FALSE(ruleMatches(*Rule, {UnitFacts::from(Cbc)}));
}

TEST(ClusterSuggestion, DistinctValuesWithoutPrefixBecomeValueSet) {
  std::vector<UsageChange> Members = {
      modeFix("DES", "AES/CBC/PKCS5Padding"),
      modeFix("RC4", "AES/GCM/NoPadding"),
  };
  auto Rule = suggestRuleForCluster(Members);
  ASSERT_TRUE(Rule.has_value());
  AnalysisResult Des = analyze(
      "class A { void m() throws Exception { "
      "Cipher c = Cipher.getInstance(\"DES\"); } }");
  AnalysisResult Rc4 = analyze(
      "class A { void m() throws Exception { "
      "Cipher c = Cipher.getInstance(\"RC4\"); } }");
  AnalysisResult Aes = analyze(
      "class A { void m() throws Exception { "
      "Cipher c = Cipher.getInstance(\"AES/CBC/PKCS5Padding\"); } }");
  EXPECT_TRUE(ruleMatches(*Rule, {UnitFacts::from(Des)}));
  EXPECT_TRUE(ruleMatches(*Rule, {UnitFacts::from(Rc4)}));
  EXPECT_FALSE(ruleMatches(*Rule, {UnitFacts::from(Aes)}));
}

TEST(ClusterSuggestion, IterationCountsGeneralizeToThreshold) {
  std::vector<UsageChange> Members = {
      iterFix(100, 10000),
      iterFix(20, 1000),
      iterFix(500, 65536),
  };
  auto Rule = suggestRuleForCluster(Members, "r2-like");
  ASSERT_TRUE(Rule.has_value());
  // Threshold = min(added) = 1000.
  AnalysisResult Low = analyze(
      "class A { void m(char[] p, byte[] s) { "
      "PBEKeySpec k = new PBEKeySpec(p, s, 999, 128); } }");
  AnalysisResult High = analyze(
      "class A { void m(char[] p, byte[] s) { "
      "PBEKeySpec k = new PBEKeySpec(p, s, 1000, 128); } }");
  EXPECT_TRUE(ruleMatches(*Rule, {UnitFacts::from(Low)}));
  EXPECT_FALSE(ruleMatches(*Rule, {UnitFacts::from(High)}));
}

TEST(ClusterSuggestion, MixedTypeClustersRejected) {
  UsageChange Cipher = modeFix("AES", "AES/CBC/PKCS5Padding");
  UsageChange Pbe = iterFix(100, 1000);
  EXPECT_FALSE(suggestRuleForCluster({Cipher, Pbe}).has_value());
}

TEST(ClusterSuggestion, NonSharedRemovalsDropOut) {
  // One member removes getInstance+init features, the other only
  // getInstance; only the shared method survives as an atom.
  UsageChange A = modeFix("AES", "AES/CBC/PKCS5Padding");
  UsageChange B = modeFix("AES/ECB/NoPadding", "AES/GCM/NoPadding");
  UsageChange C = UsageChange::intern(
      table(), "Cipher",
      {{rootL("Cipher"), methodL("Cipher.doFinal/0")}}, {});
  B.Removed.push_back(C.Removed.front()); // only B removes doFinal
  auto Rule = suggestRuleForCluster({A, B});
  ASSERT_TRUE(Rule.has_value());
  std::string Text = describeRule(*Rule);
  EXPECT_EQ(Text.find("doFinal"), std::string::npos);
  EXPECT_NE(Text.find("getInstance"), std::string::npos);
}

TEST(ClusterSuggestion, ConstantMaterialGeneralizes) {
  // Two static-IV fixes: constbyte[] -> top.
  auto MakeIvFix = [] {
    return UsageChange::intern(
        table(), "IvParameterSpec",
        {{rootL("IvParameterSpec"), methodL("IvParameterSpec.<init>/1"),
          NodeLabel::arg(1, AbstractValue::byteArrayConst())}},
        {{rootL("IvParameterSpec"), methodL("IvParameterSpec.<init>/1"),
          NodeLabel::arg(1, AbstractValue::byteArrayTop())}});
  };
  auto Rule = suggestRuleForCluster({MakeIvFix(), MakeIvFix()});
  ASSERT_TRUE(Rule.has_value());
  AnalysisResult Bad = analyze(
      "class A { void m() { IvParameterSpec iv = new IvParameterSpec("
      "\"0123456789abcdef\".getBytes()); } }");
  AnalysisResult Good = analyze(
      "class A { void m(byte[] raw) { "
      "IvParameterSpec iv = new IvParameterSpec(raw); } }");
  EXPECT_TRUE(ruleMatches(*Rule, {UnitFacts::from(Bad)}));
  EXPECT_FALSE(ruleMatches(*Rule, {UnitFacts::from(Good)}));
}
