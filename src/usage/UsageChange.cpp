//===- usage/UsageChange.cpp -----------------------------------------------===//

#include "usage/UsageChange.h"

#include "support/Hungarian.h"

#include <algorithm>
#include <set>

using namespace diffcode;
using namespace diffcode::usage;

bool UsageChange::sameFeatures(const UsageChange &Other) const {
  return TypeName == Other.TypeName && Removed == Other.Removed &&
         Added == Other.Added;
}

std::string UsageChange::str() const {
  std::string Out;
  for (const FeaturePath &Path : Removed)
    Out += "- " + pathToString(Path) + "\n";
  for (const FeaturePath &Path : Added)
    Out += "+ " + pathToString(Path) + "\n";
  return Out;
}

std::vector<FeaturePath>
diffcode::usage::shortestPaths(std::vector<FeaturePath> Paths) {
  auto IsStrictPrefix = [](const FeaturePath &A, const FeaturePath &B) {
    if (A.size() >= B.size())
      return false;
    return std::equal(A.begin(), A.end(), B.begin());
  };
  std::vector<FeaturePath> Out;
  for (const FeaturePath &Candidate : Paths) {
    bool HasPrefix = false;
    for (const FeaturePath &Other : Paths)
      if (IsStrictPrefix(Other, Candidate)) {
        HasPrefix = true;
        break;
      }
    if (!HasPrefix)
      Out.push_back(Candidate);
  }
  return Out;
}

std::vector<FeaturePath> diffcode::usage::removedPaths(const UsageDag &G1,
                                                       const UsageDag &G2) {
  std::set<std::string> InG2;
  for (const FeaturePath &Path : G2.paths())
    InG2.insert(pathToString(Path));

  std::vector<FeaturePath> OnlyInG1;
  for (FeaturePath &Path : G1.paths())
    if (!InG2.count(pathToString(Path)))
      OnlyInG1.push_back(std::move(Path));
  return shortestPaths(std::move(OnlyInG1));
}

UsageChange diffcode::usage::diffDags(const UsageDag &G1, const UsageDag &G2) {
  UsageChange Change;
  Change.TypeName = G1.typeName();
  Change.Removed = removedPaths(G1, G2);
  Change.Added = removedPaths(G2, G1);
  return Change;
}

std::vector<std::pair<std::size_t, std::size_t>>
diffcode::usage::pairDags(const std::vector<UsageDag> &Old,
                          const std::vector<UsageDag> &New) {
  std::vector<std::pair<std::size_t, std::size_t>> Pairs;
  if (Old.empty() && New.empty())
    return Pairs;

  CostMatrix Costs(Old.size(), New.size());
  for (std::size_t R = 0; R < Old.size(); ++R)
    for (std::size_t C = 0; C < New.size(); ++C)
      Costs.at(R, C) = dagDistance(Old[R], New[C]);

  Assignment Result = solveAssignment(Costs);
  std::vector<bool> NewMatched(New.size(), false);
  for (std::size_t R = 0; R < Old.size(); ++R) {
    std::size_t C = Result.RowToCol[R];
    Pairs.emplace_back(R, C);
    if (C != Assignment::Unmatched)
      NewMatched[C] = true;
  }
  for (std::size_t C = 0; C < New.size(); ++C)
    if (!NewMatched[C])
      Pairs.emplace_back(Assignment::Unmatched, C);
  return Pairs;
}

std::vector<UsageChange>
diffcode::usage::deriveUsageChanges(const std::vector<UsageDag> &Old,
                                    const std::vector<UsageDag> &New,
                                    const std::string &TypeName) {
  std::vector<UsageChange> Changes;
  UsageDag Padding = UsageDag::emptyFor(TypeName);
  for (auto [OldIdx, NewIdx] : pairDags(Old, New)) {
    const UsageDag &G1 =
        OldIdx == Assignment::Unmatched ? Padding : Old[OldIdx];
    const UsageDag &G2 =
        NewIdx == Assignment::Unmatched ? Padding : New[NewIdx];
    Changes.push_back(diffDags(G1, G2));
  }
  return Changes;
}
