//===- corpus/Miner.h - Commit mining (Section 6.1) ------------------------===//
//
// Part of the DiffCode project, a reproduction of "Inferring Crypto API
// Rules from Code Changes" (PLDI'18).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The mining front-end: walks project histories and keeps the code
/// changes whose files use a target API class, mirroring the paper's
/// selection ("for each commit that changes at least one target class, we
/// fetched the versions before and after"). Also applies the project
/// eligibility filter (minimum commit count) from Section 6.1.
///
//===----------------------------------------------------------------------===//

#ifndef DIFFCODE_CORPUS_MINER_H
#define DIFFCODE_CORPUS_MINER_H

#include "apimodel/CryptoApiModel.h"
#include "corpus/RepoModel.h"

#include <vector>

namespace diffcode {
namespace corpus {

/// Mining knobs (paper: projects with >= 30 commits; we default lower to
/// match the synthetic histories' scale).
struct MinerOptions {
  unsigned MinCommitsPerProject = 8;
};

/// Selects the code changes that touch any of the model's target classes.
class Miner {
public:
  explicit Miner(const apimodel::CryptoApiModel &Api,
                 MinerOptions Opts = MinerOptions());

  /// True when either version of the change mentions a target class.
  bool touchesTargetClass(const CodeChange &Change) const;

  /// All selected changes of one project (empty if the project is below
  /// the commit threshold).
  std::vector<const CodeChange *> mineProject(const Project &P) const;

  /// All selected changes of the corpus.
  std::vector<const CodeChange *> mine(const Corpus &C) const;

private:
  const apimodel::CryptoApiModel &Api;
  MinerOptions Opts;
};

} // namespace corpus
} // namespace diffcode

#endif // DIFFCODE_CORPUS_MINER_H
