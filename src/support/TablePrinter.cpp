//===- support/TablePrinter.cpp -------------------------------------------===//

#include "support/TablePrinter.h"

#include <algorithm>

using namespace diffcode;

TablePrinter::TablePrinter(std::vector<std::string> Header)
    : NumCols(Header.size()) {
  Rows.push_back(std::move(Header));
}

void TablePrinter::addRow(std::vector<std::string> Cells) {
  Cells.resize(NumCols);
  Rows.push_back(std::move(Cells));
}

void TablePrinter::print(std::ostream &OS) const {
  std::vector<std::size_t> Width(NumCols, 0);
  for (const auto &Row : Rows)
    for (std::size_t C = 0; C < NumCols; ++C)
      Width[C] = std::max(Width[C], Row[C].size());

  auto PrintRow = [&](const std::vector<std::string> &Row) {
    for (std::size_t C = 0; C < NumCols; ++C) {
      OS << Row[C] << std::string(Width[C] - Row[C].size(), ' ');
      OS << (C + 1 == NumCols ? "" : "  ");
    }
    OS << '\n';
  };

  PrintRow(Rows.front());
  std::size_t Total = 0;
  for (std::size_t C = 0; C < NumCols; ++C)
    Total += Width[C] + (C + 1 == NumCols ? 0 : 2);
  OS << std::string(Total, '-') << '\n';
  for (std::size_t R = 1; R < Rows.size(); ++R)
    PrintRow(Rows[R]);
}
