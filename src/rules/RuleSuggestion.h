//===- rules/RuleSuggestion.h - Automatic rule construction (Sec. 6.3) -----===//
//
// Part of the DiffCode project, a reproduction of "Inferring Crypto API
// Rules from Code Changes" (PLDI'18).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// "On Automating Rule Elicitation": from a usage change (F-, F+),
/// construct the predicate that matches any usage which still has the
/// removed features and has not adopted the added ones — i.e. code that
/// needs the same fix. For the Figure 2 example this produces:
///
///   Cipher : (getInstance(X) /\ X = "AES")
///          /\ (getInstance(Y) => Y != "AES/CBC/PKCS5Padding")
///          /\ (init(...) => arg3 != IVParameterSpec)
///
/// Feature paths deeper than root-method-argument are approximated by
/// their first method/argument pair (and reported as such); determining
/// whether a suggested rule is *security relevant* remains manual, exactly
/// as in the paper.
///
//===----------------------------------------------------------------------===//

#ifndef DIFFCODE_RULES_RULESUGGESTION_H
#define DIFFCODE_RULES_RULESUGGESTION_H

#include "rules/Rule.h"
#include "usage/UsageChange.h"

#include <optional>
#include <string>

namespace diffcode {
namespace rules {

/// Builds a candidate rule from one usage change. Returns nullopt when
/// the change carries no convertible feature (e.g. only paths the
/// approximation cannot express).
std::optional<Rule> suggestRule(const usage::UsageChange &Change,
                                const std::string &Id = "suggested");

/// Generalizes a whole cluster of usage changes into one candidate rule —
/// the step the paper performed manually over each dendrogram cluster.
/// Heuristics:
///   * only methods removed by *every* member become Exists atoms;
///   * string constants that differ across members generalize to their
///     common prefix (length >= 3) or to the value set;
///   * integer constants paired with integer *additions* generalize to
///     "< min(added values)" (the R2 iteration-count shape);
///   * NotExists atoms are emitted only for additions shared verbatim by
///     every member.
/// Returns nullopt if no common removed feature exists.
std::optional<Rule>
suggestRuleForCluster(const std::vector<usage::UsageChange> &Members,
                      const std::string &Id = "cluster");

/// Renders a rule's formula in the paper's notation for display.
std::string describeRule(const Rule &R);

} // namespace rules
} // namespace diffcode

#endif // DIFFCODE_RULES_RULESUGGESTION_H
