# Empty dependencies file for tls_generality.
# This may be replaced when dependencies are built.
