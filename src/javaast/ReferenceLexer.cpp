//===- javaast/ReferenceLexer.cpp ------------------------------------------===//
//
// Seed lexer retained as the differential oracle. The scanning logic is
// the original implementation, unchanged; only makeToken differs (it
// interns the built std::string into the stream arena so Token::Text can
// be a view).
//
//===----------------------------------------------------------------------===//

#include "javaast/ReferenceLexer.h"

#include <cctype>
#include <unordered_map>

using namespace diffcode::java;

TokenKind diffcode::java::referenceLookupKeyword(std::string_view Spelling) {
  static const std::unordered_map<std::string_view, TokenKind> Keywords = {
      {"abstract", TokenKind::KwAbstract},
      {"assert", TokenKind::KwAssert},
      {"boolean", TokenKind::KwBoolean},
      {"break", TokenKind::KwBreak},
      {"byte", TokenKind::KwByte},
      {"case", TokenKind::KwCase},
      {"catch", TokenKind::KwCatch},
      {"char", TokenKind::KwChar},
      {"class", TokenKind::KwClass},
      {"continue", TokenKind::KwContinue},
      {"default", TokenKind::KwDefault},
      {"do", TokenKind::KwDo},
      {"double", TokenKind::KwDouble},
      {"else", TokenKind::KwElse},
      {"extends", TokenKind::KwExtends},
      {"false", TokenKind::KwFalse},
      {"final", TokenKind::KwFinal},
      {"finally", TokenKind::KwFinally},
      {"float", TokenKind::KwFloat},
      {"for", TokenKind::KwFor},
      {"if", TokenKind::KwIf},
      {"implements", TokenKind::KwImplements},
      {"import", TokenKind::KwImport},
      {"instanceof", TokenKind::KwInstanceof},
      {"int", TokenKind::KwInt},
      {"interface", TokenKind::KwInterface},
      {"long", TokenKind::KwLong},
      {"new", TokenKind::KwNew},
      {"null", TokenKind::KwNull},
      {"package", TokenKind::KwPackage},
      {"private", TokenKind::KwPrivate},
      {"protected", TokenKind::KwProtected},
      {"public", TokenKind::KwPublic},
      {"return", TokenKind::KwReturn},
      {"short", TokenKind::KwShort},
      {"static", TokenKind::KwStatic},
      {"super", TokenKind::KwSuper},
      {"switch", TokenKind::KwSwitch},
      {"synchronized", TokenKind::KwSynchronized},
      {"this", TokenKind::KwThis},
      {"throw", TokenKind::KwThrow},
      {"throws", TokenKind::KwThrows},
      {"true", TokenKind::KwTrue},
      {"try", TokenKind::KwTry},
      {"void", TokenKind::KwVoid},
      {"while", TokenKind::KwWhile},
  };
  auto It = Keywords.find(Spelling);
  return It == Keywords.end() ? TokenKind::Identifier : It->second;
}

ReferenceLexer::ReferenceLexer(std::string_view Buffer,
                               DiagnosticsEngine &Diags)
    : Buffer(Buffer), Diags(Diags) {}

char ReferenceLexer::peek(std::size_t Ahead) const {
  return Pos + Ahead < Buffer.size() ? Buffer[Pos + Ahead] : '\0';
}

char ReferenceLexer::advance() {
  char C = Buffer[Pos++];
  if (C == '\n') {
    ++Line;
    Col = 1;
  } else {
    ++Col;
  }
  return C;
}

bool ReferenceLexer::match(char Expected) {
  if (atEnd() || Buffer[Pos] != Expected)
    return false;
  advance();
  return true;
}

SourceLocation ReferenceLexer::here() const {
  return {Line, Col, static_cast<std::uint32_t>(Pos)};
}

void ReferenceLexer::skipTrivia() {
  while (!atEnd()) {
    char C = peek();
    if (C == ' ' || C == '\t' || C == '\r' || C == '\n') {
      advance();
      continue;
    }
    if (C == '/' && peek(1) == '/') {
      while (!atEnd() && peek() != '\n')
        advance();
      continue;
    }
    if (C == '/' && peek(1) == '*') {
      SourceLocation Start = here();
      advance();
      advance();
      bool Closed = false;
      while (!atEnd()) {
        if (peek() == '*' && peek(1) == '/') {
          advance();
          advance();
          Closed = true;
          break;
        }
        advance();
      }
      if (!Closed)
        Diags.error(Start, "unterminated block comment");
      continue;
    }
    return;
  }
}

Token ReferenceLexer::makeToken(TokenKind Kind, SourceLocation Loc,
                                std::string Text) {
  Token T;
  T.Kind = Kind;
  T.Loc = Loc;
  T.Text = Stream.Storage.copy(Text);
  return T;
}

Token ReferenceLexer::lexIdentifierOrKeyword(SourceLocation Loc) {
  std::size_t Start = Pos;
  while (!atEnd() &&
         (std::isalnum(static_cast<unsigned char>(peek())) || peek() == '_' ||
          peek() == '$'))
    advance();
  std::string Text(Buffer.substr(Start, Pos - Start));
  TokenKind Kind = referenceLookupKeyword(Text);
  return makeToken(Kind, Loc, std::move(Text));
}

Token ReferenceLexer::lexNumber(SourceLocation Loc) {
  std::size_t Start = Pos;
  bool IsHex = false;
  // Java allows '_' separators inside numeric literals (1_000_000).
  auto IsDigitSep = [this](bool Hex) {
    char C = peek();
    if (C == '_')
      return true;
    return Hex ? std::isxdigit(static_cast<unsigned char>(C)) != 0
               : std::isdigit(static_cast<unsigned char>(C)) != 0;
  };
  if (peek() == '0' && (peek(1) == 'x' || peek(1) == 'X')) {
    advance();
    advance();
    IsHex = true;
    while (!atEnd() && IsDigitSep(true))
      advance();
  } else if (peek() == '0' && (peek(1) == 'b' || peek(1) == 'B')) {
    advance();
    advance();
    IsHex = true; // no fractional part either
    while (!atEnd() && (peek() == '0' || peek() == '1' || peek() == '_'))
      advance();
  } else {
    while (!atEnd() && IsDigitSep(false))
      advance();
  }
  if (!IsHex && peek() == '.' &&
      std::isdigit(static_cast<unsigned char>(peek(1)))) {
    advance();
    while (!atEnd() && std::isdigit(static_cast<unsigned char>(peek())))
      advance();
  }
  TokenKind Kind = TokenKind::IntLiteral;
  if (peek() == 'L' || peek() == 'l') {
    advance();
    Kind = TokenKind::LongLiteral;
  } else if (peek() == 'f' || peek() == 'F' || peek() == 'd' || peek() == 'D') {
    advance();
  }
  std::string Text(Buffer.substr(Start, Pos - Start));
  return makeToken(Kind, Loc, std::move(Text));
}

char ReferenceLexer::lexEscape() {
  if (atEnd())
    return '\\';
  char C = advance();
  switch (C) {
  case 'n':
    return '\n';
  case 't':
    return '\t';
  case 'r':
    return '\r';
  case 'b':
    return '\b';
  case 'f':
    return '\f';
  case '0':
    return '\0';
  case '\'':
  case '"':
  case '\\':
    return C;
  case 'u': {
    // \uXXXX: decode and narrow to one byte (best effort; the corpus is
    // ASCII).
    unsigned Value = 0;
    for (int I = 0; I < 4 && !atEnd() &&
                    std::isxdigit(static_cast<unsigned char>(peek()));
         ++I) {
      char H = advance();
      Value = Value * 16 +
              (std::isdigit(static_cast<unsigned char>(H))
                   ? static_cast<unsigned>(H - '0')
                   : static_cast<unsigned>(std::tolower(H) - 'a') + 10);
    }
    return static_cast<char>(Value & 0xFF);
  }
  default:
    return C;
  }
}

Token ReferenceLexer::lexString(SourceLocation Loc) {
  advance(); // opening quote
  std::string Text;
  while (!atEnd() && peek() != '"' && peek() != '\n') {
    char C = advance();
    if (C == '\\')
      C = lexEscape();
    Text += C;
  }
  if (atEnd() || peek() == '\n') {
    Diags.error(Loc, "unterminated string literal");
  } else {
    advance(); // closing quote
  }
  return makeToken(TokenKind::StringLiteral, Loc, std::move(Text));
}

Token ReferenceLexer::lexChar(SourceLocation Loc) {
  advance(); // opening quote
  std::string Text;
  if (!atEnd() && peek() != '\'') {
    char C = advance();
    if (C == '\\')
      C = lexEscape();
    Text += C;
  }
  if (!match('\''))
    Diags.error(Loc, "unterminated char literal");
  return makeToken(TokenKind::CharLiteral, Loc, std::move(Text));
}

Token ReferenceLexer::next() {
  skipTrivia();
  SourceLocation Loc = here();
  if (atEnd())
    return makeToken(TokenKind::EndOfFile, Loc, "");

  char C = peek();
  if (std::isalpha(static_cast<unsigned char>(C)) || C == '_' || C == '$')
    return lexIdentifierOrKeyword(Loc);
  if (std::isdigit(static_cast<unsigned char>(C)))
    return lexNumber(Loc);
  if (C == '"')
    return lexString(Loc);
  if (C == '\'')
    return lexChar(Loc);

  advance();
  switch (C) {
  case '{':
    return makeToken(TokenKind::LBrace, Loc, "{");
  case '}':
    return makeToken(TokenKind::RBrace, Loc, "}");
  case '(':
    return makeToken(TokenKind::LParen, Loc, "(");
  case ')':
    return makeToken(TokenKind::RParen, Loc, ")");
  case '[':
    return makeToken(TokenKind::LBracket, Loc, "[");
  case ']':
    return makeToken(TokenKind::RBracket, Loc, "]");
  case ';':
    return makeToken(TokenKind::Semi, Loc, ";");
  case ',':
    return makeToken(TokenKind::Comma, Loc, ",");
  case '.':
    if (peek() == '.' && peek(1) == '.') {
      advance();
      advance();
      return makeToken(TokenKind::Ellipsis, Loc, "...");
    }
    return makeToken(TokenKind::Dot, Loc, ".");
  case '@':
    return makeToken(TokenKind::At, Loc, "@");
  case '?':
    return makeToken(TokenKind::Question, Loc, "?");
  case ':':
    if (match(':'))
      return makeToken(TokenKind::ColonColon, Loc, "::");
    return makeToken(TokenKind::Colon, Loc, ":");
  case '=':
    if (match('='))
      return makeToken(TokenKind::EqualEqual, Loc, "==");
    return makeToken(TokenKind::Assign, Loc, "=");
  case '+':
    if (match('='))
      return makeToken(TokenKind::PlusAssign, Loc, "+=");
    if (match('+'))
      return makeToken(TokenKind::PlusPlus, Loc, "++");
    return makeToken(TokenKind::Plus, Loc, "+");
  case '-':
    if (match('='))
      return makeToken(TokenKind::MinusAssign, Loc, "-=");
    if (match('-'))
      return makeToken(TokenKind::MinusMinus, Loc, "--");
    if (match('>'))
      return makeToken(TokenKind::Arrow, Loc, "->");
    return makeToken(TokenKind::Minus, Loc, "-");
  case '*':
    if (match('='))
      return makeToken(TokenKind::StarAssign, Loc, "*=");
    return makeToken(TokenKind::Star, Loc, "*");
  case '/':
    if (match('='))
      return makeToken(TokenKind::SlashAssign, Loc, "/=");
    return makeToken(TokenKind::Slash, Loc, "/");
  case '%':
    return makeToken(TokenKind::Percent, Loc, "%");
  case '!':
    if (match('='))
      return makeToken(TokenKind::NotEqual, Loc, "!=");
    return makeToken(TokenKind::Not, Loc, "!");
  case '~':
    return makeToken(TokenKind::Tilde, Loc, "~");
  case '&':
    if (match('&'))
      return makeToken(TokenKind::AmpAmp, Loc, "&&");
    return makeToken(TokenKind::Amp, Loc, "&");
  case '|':
    if (match('|'))
      return makeToken(TokenKind::PipePipe, Loc, "||");
    return makeToken(TokenKind::Pipe, Loc, "|");
  case '^':
    return makeToken(TokenKind::Caret, Loc, "^");
  case '<':
    if (match('='))
      return makeToken(TokenKind::LessEqual, Loc, "<=");
    if (match('<'))
      return makeToken(TokenKind::Shl, Loc, "<<");
    return makeToken(TokenKind::Less, Loc, "<");
  case '>':
    if (match('='))
      return makeToken(TokenKind::GreaterEqual, Loc, ">=");
    if (match('>'))
      return makeToken(TokenKind::Shr, Loc, ">>");
    return makeToken(TokenKind::Greater, Loc, ">");
  default:
    Diags.error(Loc, std::string("unexpected character '") + C + "'");
    return makeToken(TokenKind::Unknown, Loc, std::string(1, C));
  }
}

TokenStream ReferenceLexer::lexAll() {
  while (true) {
    Stream.Tokens.push_back(next());
    if (Stream.Tokens.back().is(TokenKind::EndOfFile))
      return std::move(Stream);
  }
}
