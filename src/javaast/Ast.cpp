//===- javaast/Ast.cpp -----------------------------------------------------===//

#include "javaast/Ast.h"

using namespace diffcode::java;

std::string TypeRef::baseName() const {
  std::size_t Pos = Name.rfind('.');
  return Pos == std::string::npos ? Name : Name.substr(Pos + 1);
}

std::string TypeRef::str() const {
  std::string Out = Name;
  for (unsigned I = 0; I < ArrayDims; ++I)
    Out += "[]";
  return Out;
}
