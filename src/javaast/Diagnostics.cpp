//===- javaast/Diagnostics.cpp --------------------------------------------===//

#include "javaast/Diagnostics.h"

using namespace diffcode::java;

std::string Diagnostic::str() const {
  std::string Out = Loc.isValid() ? Loc.str() + ": " : std::string();
  Out += Level == DiagLevel::Error ? "error: " : "warning: ";
  Out += Message;
  return Out;
}
