//===- core/Filters.h - fsame / fadd / frem / fdup (Section 4.2) -----------===//
//
// Part of the DiffCode project, a reproduction of "Inferring Crypto API
// Rules from Code Changes" (PLDI'18).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The four usage-change filters, applied in order:
///
///   fsame  F- and F+ both empty          (refactoring / unrelated edit)
///   fadd   F- empty                      (a usage was introduced)
///   frem   F+ empty                      (a usage was deleted)
///   fdup   identical (F-, F+) seen before (duplicate fix)
///
/// Each change is attributed to the first filter that removes it, so the
/// per-stage attrition of Figures 6 and 7 can be reported exactly.
///
//===----------------------------------------------------------------------===//

#ifndef DIFFCODE_CORE_FILTERS_H
#define DIFFCODE_CORE_FILTERS_H

#include "usage/UsageChange.h"

#include <cstddef>
#include <vector>

namespace diffcode {
namespace core {

/// Which filter removed a change (Kept = survived all four).
enum class FilterStage { Kept, FSame, FAdd, FRem, FDup };

/// Display name ("fsame", ...).
const char *filterStageName(FilterStage Stage);

/// Result of running the filter pipeline over one class's usage changes.
struct FilterResult {
  /// Outcome per input change (parallel to the input vector).
  std::vector<FilterStage> Outcome;
  /// The surviving changes, in input order.
  std::vector<usage::UsageChange> Kept;

  // Remaining-change counts after each stage (Figure 6 columns).
  std::size_t Total = 0;
  std::size_t AfterSame = 0;
  std::size_t AfterAdd = 0;
  std::size_t AfterRem = 0;
  std::size_t AfterDup = 0;
};

/// Runs the pipeline. Duplicate detection keeps the first occurrence of
/// each distinct (F-, F+).
FilterResult applyFilters(const std::vector<usage::UsageChange> &Changes);

/// Classifies a single change in isolation (no duplicate stage).
FilterStage classifySolo(const usage::UsageChange &Change);

} // namespace core
} // namespace diffcode

#endif // DIFFCODE_CORE_FILTERS_H
