//===- bench/fig10_rule_violations.cpp - Reproduces Figure 10 --------------===//
//
// Part of the DiffCode project, a reproduction of "Inferring Crypto API
// Rules from Code Changes" (PLDI'18).
//
//===----------------------------------------------------------------------===//
//
// Figure 10: CryptoChecker over the project corpus — for each rule R1-R13
// the number of projects with at least one applicable usage and the
// number with at least one violating usage.
//
// Shape targets (paper, 519 projects):
//   * > 57% of projects violate at least one rule;
//   * near-universal matching for R3 (94.8%) and R5 (97.6%) — the "safe"
//     configuration is rare in the wild;
//   * mid-range matching for R1/R7 (28-35%), low for R9/R10/R12 (< 6%).
//
//===----------------------------------------------------------------------===//

#include "bench_common.h"

#include "rules/BuiltinRules.h"
#include "rules/CryptoChecker.h"
#include "support/TablePrinter.h"

#include <iostream>
#include <map>

using namespace diffcode;
using namespace diffcode::rules;

namespace {

struct PaperRow {
  const char *Rule;
  double ApplicablePct, MatchingPct;
};
const PaperRow PaperRows[] = {
    {"R1", 49.5, 34.6},  {"R2", 12.3, 23.4}, {"R3", 58.8, 94.8},
    {"R4", 58.8, 1.0},   {"R5", 40.7, 97.6}, {"R6", 11.4, 81.4},
    {"R7", 40.7, 28.4},  {"R8", 40.7, 9.5},  {"R9", 23.9, 5.6},
    {"R10", 44.7, 5.2},  {"R11", 12.3, 11.0}, {"R12", 58.8, 0.3},
    {"R13", 1.5, 50.0},
};

} // namespace

int main(int argc, char **argv) {
  std::printf("== Figure 10: CryptoChecker rule violations across projects "
              "==\n\n");
  corpus::CorpusOptions Opts = bench::standardCorpus(argc, argv);
  std::printf("corpus: %u synthetic projects (seed %llu)\n\n",
              Opts.NumProjects, static_cast<unsigned long long>(Opts.Seed));
  corpus::Corpus C = corpus::CorpusGenerator(Opts).generate();

  const apimodel::CryptoApiModel &Api =
      apimodel::CryptoApiModel::javaCryptoApi();
  core::DiffCode System(Api);
  CryptoChecker Checker;

  std::map<std::string, unsigned> Applicable, Matching;
  unsigned ProjectsWithViolation = 0;

  for (const corpus::Project &P : C.Projects) {
    // Analyze every HEAD file of the project.
    std::vector<analysis::AnalysisResult> Results;
    for (const corpus::ProjectFile &File : P.Files)
      Results.push_back(System.analyzeSourceChecked(File.Code).Result);
    std::vector<UnitFacts> Units;
    for (const analysis::AnalysisResult &Result : Results)
      Units.push_back(UnitFacts::from(Result));

    ProjectReport Report = Checker.checkProject(Units, P.Meta);
    for (const RuleVerdict &Verdict : Report.verdicts()) {
      if (Verdict.Applicable)
        ++Applicable[Report.text(Verdict.Rule)];
      if (Verdict.Matched)
        ++Matching[Report.text(Verdict.Rule)];
    }
    if (Report.anyMatch())
      ++ProjectsWithViolation;
  }

  std::size_t N = C.Projects.size();
  TablePrinter Table({"Rule", "Applicable (% of total)",
                      "Matching (% of appl.)", "paper appl.%",
                      "paper match%"});
  for (std::size_t I = 0; I < std::size(PaperRows); ++I) {
    const char *RuleId = PaperRows[I].Rule;
    unsigned App = Applicable[RuleId], Match = Matching[RuleId];
    char AppBuf[64], MatchBuf[64], PA[32], PM[32];
    std::snprintf(AppBuf, sizeof(AppBuf), "%u (%.1f%%)", App,
                  N ? 100.0 * App / N : 0.0);
    std::snprintf(MatchBuf, sizeof(MatchBuf), "%u (%.1f%%)", Match,
                  App ? 100.0 * Match / App : 0.0);
    std::snprintf(PA, sizeof(PA), "%.1f%%", PaperRows[I].ApplicablePct);
    std::snprintf(PM, sizeof(PM), "%.1f%%", PaperRows[I].MatchingPct);
    Table.addRow({RuleId, AppBuf, MatchBuf, PA, PM});
  }
  Table.print(std::cout);

  std::printf("\nprojects violating at least one rule: %u / %zu (%.1f%%)  "
              "(paper: > 57%%)\n",
              ProjectsWithViolation, N,
              N ? 100.0 * ProjectsWithViolation / N : 0.0);
  return 0;
}
