class AESCipher {
    void setKey(Key key) throws Exception {
        Cipher c = Cipher.getInstance("AES/CBC/PKCS5Padding");
        c.init(Cipher.ENCRYPT_MODE, key);
    }
}
