//===- corpus/CorpusGenerator.cpp ------------------------------------------===//

#include "corpus/CorpusGenerator.h"

#include <algorithm>
#include <cassert>

using namespace diffcode;
using namespace diffcode::corpus;

CorpusGenerator::CorpusGenerator(CorpusOptions Opts) : Opts(Opts) {}

namespace {

/// Mutable per-file generation state.
struct FileState {
  ScenarioInstance Instance;
  std::string FileName;
  bool EverExisted = true;
};

std::string drawClassName(Rng &R) {
  static const std::vector<std::string> Prefixes = {
      "Aes",  "Crypto",  "Secure", "Token", "Session", "Password",
      "Data", "Auth",    "File",   "Net",   "Payload", "Message"};
  static const std::vector<std::string> Suffixes = {
      "Util",  "Helper", "Manager", "Service", "Handler",
      "Codec", "Engine", "Store",   "Tool",    "Box"};
  return R.pick(Prefixes) + R.pick(Suffixes);
}

} // namespace

Project CorpusGenerator::generateProject(const std::string &Name, Rng &R) {
  Project P;
  P.Name = Name;
  P.Meta.IsAndroid = R.chance(0.25);
  P.Meta.MinSdkVersion = static_cast<int>(R.range(14, 26));
  // Few projects shipped the Android LPRNG workaround (R6's fix).
  P.Meta.HasLinuxPrngFix = R.chance(0.15);
  std::string Package = "com.example." + Name;

  // Initial files: distinct scenario kinds, drawn by real-world frequency
  // weight, each starting insecure with the per-rule wild-misuse rate.
  unsigned NumFiles = static_cast<unsigned>(
      R.range(Opts.MinFilesPerProject, Opts.MaxFilesPerProject));
  double TotalWeight = 0.0;
  for (unsigned I = 0; I < NumScenarioKinds; ++I)
    TotalWeight += scenarioWeight(static_cast<ScenarioKind>(I));

  std::vector<ScenarioKind> ChosenKinds;
  while (ChosenKinds.size() < NumFiles &&
         ChosenKinds.size() < NumScenarioKinds) {
    double Draw = R.uniform() * TotalWeight;
    ScenarioKind Kind = ScenarioKind::Hashing;
    for (unsigned I = 0; I < NumScenarioKinds; ++I) {
      Kind = static_cast<ScenarioKind>(I);
      Draw -= scenarioWeight(Kind);
      if (Draw <= 0)
        break;
    }
    if (std::find(ChosenKinds.begin(), ChosenKinds.end(), Kind) ==
        ChosenKinds.end())
      ChosenKinds.push_back(Kind);
  }

  std::vector<FileState> Files;
  for (unsigned I = 0; I < ChosenKinds.size(); ++I) {
    FileState F;
    F.Instance.Kind = ChosenKinds[I];
    F.Instance.Details = drawDetails(F.Instance.Kind, R);
    F.Instance.Details.Secure =
        !R.chance(scenarioInitialInsecureProb(F.Instance.Kind) *
                  Opts.InitialInsecureProb / 0.8);
    F.Instance.StyleSeed = R.engine()();
    F.Instance.IncludeUsage = R.chance(Opts.InitialUsageProb);
    F.Instance.PairEncDec =
        F.Instance.Kind == ScenarioKind::BlockCipher && R.chance(0.35);
    F.Instance.ClassName = drawClassName(R) + std::to_string(I);
    F.FileName = F.Instance.ClassName + ".java";
    Files.push_back(std::move(F));
  }

  unsigned NumCommits =
      static_cast<unsigned>(R.range(Opts.MinCommits, Opts.MaxCommits));
  for (unsigned Commit = 0; Commit < NumCommits; ++Commit) {
    FileState &F = Files[R.index(Files.size())];
    std::string OldCode = renderScenario(F.Instance, Package);

    // Pick the commit kind; impossible kinds (fixing an already-secure
    // file, ...) degrade to a refactoring, as in real histories where
    // most commits do not touch security content.
    double Draw = R.uniform();
    std::string Kind = "refactor";
    ScenarioInstance &Inst = F.Instance;
    if (Draw < Opts.FixProb) {
      if (Inst.IncludeUsage && !Inst.Details.Secure) {
        Inst.Details.Secure = true;
        Kind = std::string("fix:") + scenarioRuleId(Inst.Kind);
      }
    } else if (Draw < Opts.FixProb + Opts.BugProb) {
      if (Inst.IncludeUsage && Inst.Details.Secure) {
        Inst.Details.Secure = false;
        Kind = std::string("bug:") + scenarioRuleId(Inst.Kind);
      }
    } else if (Draw < Opts.FixProb + Opts.BugProb + Opts.AddProb) {
      if (!Inst.IncludeUsage) {
        Inst.IncludeUsage = true;
        Kind = "add";
      }
    } else if (Draw < Opts.FixProb + Opts.BugProb + Opts.AddProb +
                          Opts.RemoveProb) {
      if (Inst.IncludeUsage) {
        Inst.IncludeUsage = false;
        Kind = "remove";
      }
    }
    if (Kind == "refactor")
      Inst.StyleSeed = R.engine()();

    CodeChange Change;
    Change.ProjectName = P.Name;
    Change.CommitIndex = Commit;
    Change.FileName = F.FileName;
    Change.OldCode = std::move(OldCode);
    Change.NewCode = renderScenario(Inst, Package);
    Change.Kind = Kind;
    P.History.push_back(std::move(Change));
  }

  for (const FileState &F : Files)
    P.Files.push_back({F.FileName, renderScenario(F.Instance, Package)});
  return P;
}

Corpus CorpusGenerator::generate() {
  Corpus Out;
  Rng Root(Opts.Seed);
  for (unsigned I = 0; I < Opts.NumProjects; ++I) {
    Rng ProjectRng = Root.fork();
    Out.Projects.push_back(
        generateProject("proj" + std::to_string(I), ProjectRng));
  }
  return Out;
}
