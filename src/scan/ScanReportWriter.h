//===- scan/ScanReportWriter.h - Streaming scan report JSON ----------------===//
//
// Part of the DiffCode project, a reproduction of "Inferring Crypto API
// Rules from Code Changes" (PLDI'18).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// JSON emission for scan results, in two equivalent forms: a streaming
/// ScanSink that writes each project record the moment the scanner's
/// reorder buffer releases it (an always-on scanner can ship records
/// while later projects are still analyzing), and a one-shot
/// scanReportToJson. Both are built from the same per-record and
/// summary fragments, so the streamed bytes are identical to the batch
/// string by construction — the differential tests hold them to that.
///
/// Report shape:
///
///   {"projects":[{"project":..,"status":..,("detail":..,)"units":..,
///                 "rules":[{"id","applicable","matched",("suppressed",)
///                           "violations":[{"type","site","unit"}]}],
///                 "anyMatch":..}, ...],
///    "summary":{"projects","violating","status":{..},"rules":[..]}
///    (,"metrics":{..})}
///
/// "detail" appears only on non-ok records, "suppressed" only when the
/// refinement pass suppressed something, and "metrics" last and only
/// for observed runs — an unobserved report is a byte-prefix-compatible
/// shape of the observed one, mirroring corpusReportToJson.
///
//===----------------------------------------------------------------------===//

#ifndef DIFFCODE_SCAN_SCANREPORTWRITER_H
#define DIFFCODE_SCAN_SCANREPORTWRITER_H

#include "scan/Scanner.h"

#include <iosfwd>
#include <string>

namespace diffcode {
namespace scan {

/// Streaming writer: construct on an open stream, hand to
/// Scanner::scan as the sink, then finish() with the returned report.
class ScanReportWriter : public ScanSink {
public:
  explicit ScanReportWriter(std::ostream &Out);

  void onProject(std::size_t Index, const ProjectScanRecord &Record) override;

  /// Emits the summary (and metrics, when observed) and closes the
  /// document. Must be called exactly once, after the scan returns.
  void finish(const ScanReport &Report);

private:
  std::ostream &Out;
  bool AnyProject = false;
};

/// One-shot serialization; byte-identical to streaming the same report
/// through ScanReportWriter.
std::string scanReportToJson(const ScanReport &Report);

} // namespace scan
} // namespace diffcode

#endif // DIFFCODE_SCAN_SCANREPORTWRITER_H
