file(REMOVE_RECURSE
  "CMakeFiles/suggest_rules.dir/suggest_rules.cpp.o"
  "CMakeFiles/suggest_rules.dir/suggest_rules.cpp.o.d"
  "suggest_rules"
  "suggest_rules.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/suggest_rules.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
