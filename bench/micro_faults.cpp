//===- bench/micro_faults.cpp - Fault-campaign sweep -----------------------===//
//
// Part of the DiffCode project, a reproduction of "Inferring Crypto API
// Rules from Code Changes" (PLDI'18).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Sweeps seeded fault-injection campaigns over a generated corpus —
/// rising fault rates across all sites, then each site in isolation —
/// and charts what the containment layer turned them into: per-
/// ChangeStatus counts against wall time, read from the observability
/// layer's metrics snapshots (the ROADMAP's fault-campaign sweep item).
///
/// Self-verifying:
///
///   * every campaign yields a complete report (every mined change keeps
///     its slot, the per-status counts sum to the corpus size, and the
///     "pipeline.status.*" metrics agree with the health block);
///   * the rate-0 campaign reproduces the unobserved baseline byte for
///     byte (its report body is a prefix of the observed report);
///   * an armed campaign is byte-identical at 1 and 2 threads;
///   * the hottest campaign actually fired, and single-site campaigns
///     fire only their own site.
///
///   micro_faults [projects] [seed] [out.json]   (defaults: 120 42
///                                                BENCH_faults.json)
///
//===----------------------------------------------------------------------===//

#include "core/DiffCode.h"
#include "core/ReportWriter.h"
#include "corpus/CorpusGenerator.h"
#include "corpus/Miner.h"
#include "obs/Observer.h"
#include "support/FaultInjection.h"
#include "support/JsonWriter.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

using namespace diffcode;
using namespace diffcode::core;

namespace {

const apimodel::CryptoApiModel &api() {
  return apimodel::CryptoApiModel::javaCryptoApi();
}

struct CampaignSpec {
  std::string Name;
  double Rate;
  std::uint32_t SiteMask;
};

struct CampaignResult {
  CampaignSpec Spec;
  CorpusReport Report;
  std::string Json;
  support::FaultStats Stats; // written by the run, then only read
  double WallMs = 0.0;
};

support::FaultPlan planFor(const CampaignSpec &Spec,
                           support::FaultStats *Stats) {
  support::FaultPlan Plan;
  Plan.Seed = 77;
  Plan.Rate = Spec.Rate;
  Plan.SiteMask = Spec.SiteMask;
  Plan.Stats = Stats;
  return Plan;
}

CorpusReport runCampaign(const std::vector<const corpus::CodeChange *> &Mined,
                         const support::FaultPlan &Plan, unsigned Threads,
                         obs::Observer *Obs) {
  PipelineConfig Opts;
  Opts.Threads = Threads;
  Opts.Clustering.Threads = Threads;
  Opts.Faults = Plan;
  return DiffCode(api(), Opts).run({.Changes = Mined,
                                            .TargetClasses =
                                                api().targetClasses(),
                                            .Metrics = Obs});
}

/// "pipeline.status.<name>" counter from the campaign's metrics snapshot
/// (0 when absent — statuses that never occurred are not registered).
std::uint64_t statusMetric(const obs::Snapshot &S, ChangeStatus Status) {
  std::string Name = std::string("pipeline.status.") + changeStatusName(Status);
  for (const obs::MetricValue &V : S.Values)
    if (V.Name == Name)
      return V.Count;
  return 0;
}

/// Total nanoseconds of the "pipeline" span in the campaign's stage table.
std::uint64_t pipelineSpanNs(const obs::RunSummary &Summary) {
  for (const obs::Tracer::StageTotal &Stage : Summary.Stages)
    if (Stage.Name == "pipeline")
      return Stage.TotalNs;
  return 0;
}

} // namespace

int main(int argc, char **argv) {
  long long Projects = argc > 1 ? std::atoll(argv[1]) : 120;
  if (Projects <= 0) {
    std::fprintf(stderr, "usage: micro_faults [projects > 0] [seed] "
                         "[out.json]   (defaults: 120 42 BENCH_faults.json)\n");
    return 2;
  }
  std::uint64_t Seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 42;
  const char *OutPath = argc > 3 ? argv[3] : "BENCH_faults.json";

  corpus::CorpusOptions Opts;
  Opts.NumProjects = static_cast<unsigned>(Projects);
  Opts.Seed = Seed;
  corpus::Corpus C = corpus::CorpusGenerator(Opts).generate();
  corpus::Miner M(api());
  std::vector<const corpus::CodeChange *> Mined = M.mine(C);
  std::fprintf(stderr,
               "fault sweep: %lld projects (seed %llu), %zu mined changes\n",
               Projects, static_cast<unsigned long long>(Seed), Mined.size());

  // Unobserved, fault-free reference for the rate-0 byte check.
  std::string BaselineJson = corpusReportToJson(
      DiffCode(api()).run(
          {.Changes = Mined, .TargetClasses = api().targetClasses()}));

  constexpr std::uint32_t AllSites = (1u << support::NumFaultSites) - 1;
  const double MidRate = 0.002;
  std::vector<CampaignSpec> Specs = {
      {"baseline", 0.0, AllSites},
      {"all-sites@0.0005", 0.0005, AllSites},
      {"all-sites@0.002", 0.002, AllSites},
      {"all-sites@0.008", 0.008, AllSites},
  };
  for (unsigned Site = 0; Site < support::NumFaultSites; ++Site)
    Specs.push_back({std::string("site-") +
                         support::faultSiteName(
                             static_cast<support::FaultSite>(Site)) +
                         "@0.002",
                     MidRate,
                     support::faultSiteBit(
                         static_cast<support::FaultSite>(Site))});

  std::vector<CampaignResult> Results(Specs.size());
  std::fprintf(stderr, "\n  %-22s %5s %5s %5s %5s %5s %6s %9s\n", "campaign",
               "ok", "degr", "perr", "budg", "throw", "fired", "wall-ms");
  for (std::size_t I = 0; I < Specs.size(); ++I) {
    CampaignResult &R = Results[I];
    R.Spec = Specs[I];
    obs::Observer Obs;
    auto Start = std::chrono::steady_clock::now();
    R.Report = runCampaign(Mined, planFor(R.Spec, &R.Stats), 1, &Obs);
    R.WallMs = std::chrono::duration<double, std::milli>(
                   std::chrono::steady_clock::now() - Start)
                   .count();
    R.Json = corpusReportToJson(R.Report);
    std::fprintf(stderr, "  %-22s %5zu %5zu %5zu %5zu %5zu %6llu %9.1f\n",
                 R.Spec.Name.c_str(), R.Report.Health.count(ChangeStatus::Ok),
                 R.Report.Health.count(ChangeStatus::Degraded),
                 R.Report.Health.count(ChangeStatus::ParseError),
                 R.Report.Health.count(ChangeStatus::BudgetExceeded),
                 R.Report.Health.count(ChangeStatus::AnalysisThrow),
                 static_cast<unsigned long long>(R.Stats.totalFired()),
                 R.WallMs);
  }

  //===--------------------------------------------------------------------===//
  // Verification
  //===--------------------------------------------------------------------===//

  bool AllComplete = true, StatusSumsMatch = true, MetricsAgree = true;
  for (const CampaignResult &R : Results) {
    if (R.Report.Changes.size() != Mined.size())
      AllComplete = false;
    for (std::size_t I = 0; I < R.Report.Changes.size(); ++I)
      if (R.Report.Changes[I].Origin != Mined[I]->origin())
        AllComplete = false;
    std::size_t Sum = 0;
    for (std::size_t I = 0; I < NumChangeStatuses; ++I)
      Sum += R.Report.Health.StatusCounts[I];
    if (Sum != R.Report.Changes.size())
      StatusSumsMatch = false;
    // The metrics snapshot's per-status counters must tell the same story
    // as the health block.
    for (std::size_t I = 0; I < NumChangeStatuses; ++I)
      if (statusMetric(R.Report.Metrics.Metrics,
                       static_cast<ChangeStatus>(I)) !=
          R.Report.Health.StatusCounts[I])
        MetricsAgree = false;
  }

  // Rate 0 is a production run: its report body must be byte-identical to
  // the unobserved baseline (the observed report only appends "metrics").
  const std::string &Rate0 = Results[0].Json;
  bool Rate0Clean =
      !BaselineJson.empty() && Rate0.size() > BaselineJson.size() &&
      Rate0.compare(0, BaselineJson.size() - 1, BaselineJson, 0,
                    BaselineJson.size() - 1) == 0 &&
      Results[0].Stats.totalFired() == 0;

  // One armed campaign, 1 vs 2 threads, unobserved: byte-identical.
  support::FaultPlan ThreadPlan = planFor(Specs[2], nullptr);
  bool ThreadsDeterministic =
      corpusReportToJson(runCampaign(Mined, ThreadPlan, 1, nullptr)) ==
      corpusReportToJson(runCampaign(Mined, ThreadPlan, 2, nullptr));

  // The hottest campaign fired; single-site campaigns fire only their
  // own site.
  bool HottestFired = Results[3].Stats.totalFired() > 0;
  bool SitesIsolated = true;
  for (unsigned Site = 0; Site < support::NumFaultSites; ++Site) {
    const CampaignResult &R = Results[4 + Site];
    for (unsigned Other = 0; Other < support::NumFaultSites; ++Other)
      if (Other != Site &&
          R.Stats.fired(static_cast<support::FaultSite>(Other)) != 0)
        SitesIsolated = false;
  }

  //===--------------------------------------------------------------------===//
  // Report
  //===--------------------------------------------------------------------===//

  JsonWriter W;
  W.beginObject();
  W.key("bench").value("micro_faults");
  W.key("projects").value(static_cast<std::uint64_t>(Projects));
  W.key("seed").value(Seed);
  W.key("changes").value(static_cast<std::uint64_t>(Mined.size()));
  W.key("campaigns").beginArray();
  for (const CampaignResult &R : Results) {
    W.beginObject();
    W.key("name").value(R.Spec.Name);
    W.key("rate").value(R.Spec.Rate);
    W.key("site_mask").value(static_cast<std::uint64_t>(R.Spec.SiteMask));
    W.key("statuses").beginObject();
    for (std::size_t I = 0; I < NumChangeStatuses; ++I)
      W.key(changeStatusName(static_cast<ChangeStatus>(I)))
          .value(static_cast<std::uint64_t>(R.Report.Health.StatusCounts[I]));
    W.endObject();
    W.key("clustering_failures")
        .value(static_cast<std::uint64_t>(R.Report.Health.ClusteringFailures));
    W.key("evaluated").beginObject();
    for (unsigned Site = 0; Site < support::NumFaultSites; ++Site)
      W.key(support::faultSiteName(static_cast<support::FaultSite>(Site)))
          .value(R.Stats.evaluated(static_cast<support::FaultSite>(Site)));
    W.endObject();
    W.key("fired").beginObject();
    for (unsigned Site = 0; Site < support::NumFaultSites; ++Site)
      W.key(support::faultSiteName(static_cast<support::FaultSite>(Site)))
          .value(R.Stats.fired(static_cast<support::FaultSite>(Site)));
    W.endObject();
    W.key("wall_ms").value(R.WallMs);
    W.key("pipeline_span_ns").value(pipelineSpanNs(R.Report.Metrics));
    W.endObject();
  }
  W.endArray();
  W.key("all_complete").value(AllComplete);
  W.key("status_sums_match").value(StatusSumsMatch);
  W.key("metrics_agree_with_health").value(MetricsAgree);
  W.key("rate0_matches_baseline").value(Rate0Clean);
  W.key("threads_deterministic").value(ThreadsDeterministic);
  W.key("hottest_campaign_fired").value(HottestFired);
  W.key("single_site_isolated").value(SitesIsolated);
  bool Pass = AllComplete && StatusSumsMatch && MetricsAgree && Rate0Clean &&
              ThreadsDeterministic && HottestFired && SitesIsolated;
  W.key("pass").value(Pass);
  W.endObject();

  std::string Json = W.take();
  std::printf("%s\n", Json.c_str());
  std::ofstream Out(OutPath);
  if (Out)
    Out << Json << "\n";
  else
    std::fprintf(stderr, "warning: cannot write %s\n", OutPath);

  if (!AllComplete)
    std::fprintf(stderr, "FAIL: a campaign dropped or reordered changes\n");
  if (!StatusSumsMatch)
    std::fprintf(stderr, "FAIL: per-status counts do not sum to the corpus\n");
  if (!MetricsAgree)
    std::fprintf(stderr, "FAIL: pipeline.status.* metrics disagree with the "
                         "health block\n");
  if (!Rate0Clean)
    std::fprintf(stderr, "FAIL: the rate-0 campaign differs from the "
                         "baseline\n");
  if (!ThreadsDeterministic)
    std::fprintf(stderr, "FAIL: an armed campaign depends on thread count\n");
  if (!HottestFired)
    std::fprintf(stderr, "FAIL: the hottest campaign never fired\n");
  if (!SitesIsolated)
    std::fprintf(stderr, "FAIL: a single-site campaign fired another site\n");
  return Pass ? 0 : 1;
}
