file(REMOVE_RECURSE
  "CMakeFiles/test_usage_dag.dir/test_usage_dag.cpp.o"
  "CMakeFiles/test_usage_dag.dir/test_usage_dag.cpp.o.d"
  "test_usage_dag"
  "test_usage_dag.pdb"
  "test_usage_dag[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_usage_dag.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
