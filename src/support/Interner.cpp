//===- support/Interner.cpp ------------------------------------------------===//

#include "support/Interner.h"

#include <mutex>

using namespace diffcode;
using namespace diffcode::support;
using diffcode::usage::FeaturePath;
using diffcode::usage::NodeLabel;

std::vector<std::string> Interner::labelUnits(const NodeLabel &Label) {
  std::vector<std::string> Out;
  switch (Label.K) {
  case NodeLabel::Kind::Root:
  case NodeLabel::Kind::Method:
    // Type names and method signatures are single units: swapping one
    // method for another costs exactly one modification.
    Out.push_back(Label.str());
    return Out;
  case NodeLabel::Kind::Arg:
    Out.push_back("arg" + std::to_string(Label.ArgIndex));
    if (Label.ValueIsString) {
      for (char C : Label.Text)
        Out.push_back(std::string(1, C));
    } else {
      Out.push_back(Label.Text);
    }
    return Out;
  }
  return Out;
}

LabelId Interner::label(const NodeLabel &Label) {
  {
    std::shared_lock<std::shared_mutex> Lock(Mutex);
    auto It = LabelIds.find(Label);
    if (It != LabelIds.end())
      return It->second;
  }
  std::unique_lock<std::shared_mutex> Lock(Mutex);
  auto [It, Inserted] =
      LabelIds.emplace(Label, static_cast<LabelId>(Labels.size()));
  if (Inserted) {
    Labels.push_back(Label);
    Units.push_back(labelUnits(Label));
  }
  return It->second;
}

PathId Interner::path(const FeaturePath &Path) {
  std::vector<LabelId> Ids;
  Ids.reserve(Path.size());
  for (const NodeLabel &Label : Path)
    Ids.push_back(label(Label));
  return path(std::move(Ids));
}

PathId Interner::path(std::vector<LabelId> Ids) {
  {
    std::shared_lock<std::shared_mutex> Lock(Mutex);
    auto It = PathIds.find(Ids);
    if (It != PathIds.end())
      return It->second;
  }
  std::unique_lock<std::shared_mutex> Lock(Mutex);
  auto [It, Inserted] =
      PathIds.emplace(std::move(Ids), static_cast<PathId>(Paths.size()));
  if (Inserted)
    Paths.push_back(It->first);
  return It->second;
}

const NodeLabel &Interner::labelAt(LabelId Id) const {
  std::shared_lock<std::shared_mutex> Lock(Mutex);
  return Labels[Id];
}

const std::vector<LabelId> &Interner::labelsOf(PathId Id) const {
  std::shared_lock<std::shared_mutex> Lock(Mutex);
  return Paths[Id];
}

const std::vector<std::string> &Interner::unitsOf(LabelId Id) const {
  std::shared_lock<std::shared_mutex> Lock(Mutex);
  return Units[Id];
}

FeaturePath Interner::materialize(PathId Id) const {
  std::shared_lock<std::shared_mutex> Lock(Mutex);
  FeaturePath Out;
  const std::vector<LabelId> &Ids = Paths[Id];
  Out.reserve(Ids.size());
  for (LabelId L : Ids)
    Out.push_back(Labels[L]);
  return Out;
}

std::string Interner::pathString(PathId Id) const {
  std::shared_lock<std::shared_mutex> Lock(Mutex);
  std::string Out;
  const std::vector<LabelId> &Ids = Paths[Id];
  for (std::size_t I = 0; I < Ids.size(); ++I) {
    if (I != 0)
      Out += ' ';
    Out += Labels[Ids[I]].str();
  }
  return Out;
}

std::size_t Interner::labelCount() const {
  std::shared_lock<std::shared_mutex> Lock(Mutex);
  return Labels.size();
}

std::size_t Interner::pathCount() const {
  std::shared_lock<std::shared_mutex> Lock(Mutex);
  return Paths.size();
}

std::size_t Interner::memoryBytes() const {
  std::shared_lock<std::shared_mutex> Lock(Mutex);
  std::size_t Bytes = 0;
  for (const NodeLabel &L : Labels)
    Bytes += sizeof(NodeLabel) + L.Text.capacity();
  for (const std::vector<std::string> &U : Units) {
    Bytes += sizeof(U) + U.capacity() * sizeof(std::string);
    for (const std::string &S : U)
      Bytes += S.capacity();
  }
  for (const std::vector<LabelId> &P : Paths)
    Bytes += sizeof(P) + P.capacity() * sizeof(LabelId);
  // Lookup maps: one node per entry (key storage counted above for
  // labels; path keys are shared with the arena copies, count them once
  // more as the map owns its own key copy).
  for (const auto &[Key, Id] : PathIds)
    Bytes += 3 * sizeof(void *) + sizeof(PathId) + sizeof(Key) +
             Key.capacity() * sizeof(LabelId);
  for (const auto &[Key, Id] : LabelIds)
    Bytes += 3 * sizeof(void *) + sizeof(LabelId) + sizeof(NodeLabel) +
             Key.Text.capacity();
  return Bytes;
}
