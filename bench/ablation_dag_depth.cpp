//===- bench/ablation_dag_depth.cpp - DAG depth bound ablation -------------===//
//
// Part of the DiffCode project, a reproduction of "Inferring Crypto API
// Rules from Code Changes" (PLDI'18).
//
//===----------------------------------------------------------------------===//
//
// Ablation A2 (DESIGN.md): Section 3.4 bounds usage DAGs at depth n = 5.
// Sweep n from 1 to 7 and measure, against ground truth:
//
//   * fix recall (fixes with a surviving usage change),
//   * refactor false positives,
//   * mean DAG size (cost proxy).
//
// Expected shape: depth 1 (root only) sees nothing; depth 2 misses
// argument-level fixes (algorithm strings live at depth 2, so they appear
// at depth >= 2); recall saturates by n = 3..5 while DAG size keeps
// growing — the paper's n = 5 is on the flat part of the curve.
//
//===----------------------------------------------------------------------===//

#include "bench_common.h"

#include "support/TablePrinter.h"

#include <iostream>

using namespace diffcode;
using namespace diffcode::core;

int main(int argc, char **argv) {
  std::printf("== Ablation A2: usage-DAG depth bound (paper: n = 5) ==\n\n");
  bench::MinedCorpus Mined = bench::mineStandardCorpus(argc, argv);
  const apimodel::CryptoApiModel &Api =
      apimodel::CryptoApiModel::javaCryptoApi();

  TablePrinter Table({"depth n", "fix recall", "refactor FP rate",
                      "mean DAG nodes"});
  for (unsigned Depth = 1; Depth <= 7; ++Depth) {
    PipelineConfig Opts;
    Opts.Limits.DagDepth = Depth;
    DiffCode System(Api, Opts);

    std::size_t FixTotal = 0, FixSurvive = 0, RefTotal = 0, RefSurvive = 0;
    std::size_t DagNodes = 0, DagCount = 0;
    for (const corpus::CodeChange *Change : Mined.Changes) {
      bool IsFix = Change->isGroundTruthFix();
      bool IsRefactor = Change->Kind == "refactor";
      if (!IsFix && !IsRefactor)
        continue;
      bool Survives = false;
      for (const std::string &Target : Api.targetClasses()) {
        analysis::AnalysisResult NewResult =
            System.analyzeSourceChecked(Change->NewCode).Result;
        for (const usage::UsageDag &Dag :
             System.dagsForClass(NewResult, Target)) {
          DagNodes += Dag.size();
          ++DagCount;
        }
        for (const usage::UsageChange &UC :
             System.usageChangesFor(*Change, Target))
          Survives = Survives || classifySolo(UC) == FilterStage::Kept;
      }
      if (IsFix) {
        ++FixTotal;
        FixSurvive += Survives;
      } else {
        ++RefTotal;
        RefSurvive += Survives;
      }
    }

    char Recall[64], FP[64], Mean[32];
    std::snprintf(Recall, sizeof(Recall), "%zu/%zu (%.1f%%)", FixSurvive,
                  FixTotal, FixTotal ? 100.0 * FixSurvive / FixTotal : 0.0);
    std::snprintf(FP, sizeof(FP), "%zu/%zu (%.2f%%)", RefSurvive, RefTotal,
                  RefTotal ? 100.0 * RefSurvive / RefTotal : 0.0);
    std::snprintf(Mean, sizeof(Mean), "%.2f",
                  DagCount ? static_cast<double>(DagNodes) / DagCount : 0.0);
    Table.addRow({std::to_string(Depth), Recall, FP, Mean});
  }
  Table.print(std::cout);
  std::printf("\nreading: recall should saturate well before n = 5 on this "
              "corpus while DAG size keeps growing.\n");
  return 0;
}
