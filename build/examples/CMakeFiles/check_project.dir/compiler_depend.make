# Empty compiler generated dependencies file for check_project.
# This may be replaced when dependencies are built.
