file(REMOVE_RECURSE
  "CMakeFiles/diffcode_apimodel.dir/CryptoApiModel.cpp.o"
  "CMakeFiles/diffcode_apimodel.dir/CryptoApiModel.cpp.o.d"
  "CMakeFiles/diffcode_apimodel.dir/TlsApiModel.cpp.o"
  "CMakeFiles/diffcode_apimodel.dir/TlsApiModel.cpp.o.d"
  "libdiffcode_apimodel.a"
  "libdiffcode_apimodel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/diffcode_apimodel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
