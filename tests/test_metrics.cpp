//===- tests/test_metrics.cpp - Observability layer unit tests -------------===//
//
// Part of the DiffCode project, a reproduction of "Inferring Crypto API
// Rules from Code Changes" (PLDI'18).
//
// Unit coverage for obs/: histogram bucket edges, counter saturation,
// registry semantics under an 8-thread race (mirroring
// test_interner.cpp's ConcurrentInterningIsStructural), span/tracer
// behaviour, and — through the real CLI binary — that --trace-out
// produces structurally valid Chrome trace_event JSON.
//
//===----------------------------------------------------------------------===//

#include "core/DiffCode.h"
#include "obs/Observer.h"

#include "gtest/gtest.h"

#include <cctype>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

using namespace diffcode;
using namespace diffcode::obs;

namespace {

//===----------------------------------------------------------------------===//
// Histogram buckets
//===----------------------------------------------------------------------===//

TEST(Histogram, BucketEdges) {
  // Bucket 0 is exactly {0}; bucket I >= 1 covers [2^(I-1), 2^I - 1].
  EXPECT_EQ(Histogram::bucketFor(0), 0u);
  EXPECT_EQ(Histogram::bucketFor(1), 1u);
  EXPECT_EQ(Histogram::bucketFor(2), 2u);
  EXPECT_EQ(Histogram::bucketFor(3), 2u);
  EXPECT_EQ(Histogram::bucketFor(4), 3u);

  for (unsigned I = 1; I < Histogram::NumBuckets; ++I) {
    EXPECT_EQ(Histogram::bucketFor(Histogram::bucketLo(I)), I) << I;
    EXPECT_EQ(Histogram::bucketFor(Histogram::bucketHi(I)), I) << I;
    if (I + 1 < Histogram::NumBuckets)
      EXPECT_EQ(Histogram::bucketHi(I) + 1, Histogram::bucketLo(I + 1)) << I;
  }
  EXPECT_EQ(Histogram::bucketLo(0), 0u);
  EXPECT_EQ(Histogram::bucketHi(0), 0u);
  EXPECT_EQ(Histogram::bucketHi(Histogram::NumBuckets - 1), ~std::uint64_t(0));
  EXPECT_EQ(Histogram::bucketFor(~std::uint64_t(0)),
            Histogram::NumBuckets - 1);
}

TEST(Histogram, RecordAggregates) {
  Histogram H;
  EXPECT_EQ(H.count(), 0u);
  EXPECT_EQ(H.min(), 0u); // empty histogram reports 0, not UINT64_MAX

  for (std::uint64_t V : {0ull, 1ull, 2ull, 3ull, 1024ull})
    H.record(V);
  EXPECT_EQ(H.count(), 5u);
  EXPECT_EQ(H.sum(), 1030u);
  EXPECT_EQ(H.min(), 0u);
  EXPECT_EQ(H.max(), 1024u);
  EXPECT_EQ(H.bucketCount(0), 1u); // 0
  EXPECT_EQ(H.bucketCount(1), 1u); // 1
  EXPECT_EQ(H.bucketCount(2), 2u); // 2, 3
  EXPECT_EQ(H.bucketCount(11), 1u); // 1024 = 2^10
}

TEST(Histogram, SumSaturates) {
  Histogram H;
  H.record(~std::uint64_t(0));
  H.record(~std::uint64_t(0));
  EXPECT_EQ(H.sum(), ~std::uint64_t(0)); // pinned, not wrapped
  EXPECT_EQ(H.count(), 2u);
}

//===----------------------------------------------------------------------===//
// Counter / Gauge
//===----------------------------------------------------------------------===//

TEST(Counter, AddAndSaturate) {
  Counter C;
  C.add();
  C.add(41);
  EXPECT_EQ(C.get(), 42u);
  C.add(~std::uint64_t(0) - 10);
  EXPECT_EQ(C.get(), ~std::uint64_t(0)); // saturated at the max
  C.add(7);
  EXPECT_EQ(C.get(), ~std::uint64_t(0)); // stays pinned
}

TEST(Gauge, SetAndMax) {
  Gauge G;
  G.set(10);
  EXPECT_EQ(G.get(), 10);
  G.max(5);
  EXPECT_EQ(G.get(), 10); // max() never lowers
  G.max(20);
  EXPECT_EQ(G.get(), 20);
  G.set(-3);
  EXPECT_EQ(G.get(), -3); // set() always wins
}

//===----------------------------------------------------------------------===//
// Registry
//===----------------------------------------------------------------------===//

TEST(Registry, GetOrCreateIsStable) {
  Registry R;
  Counter &A = R.counter("a");
  Counter &B = R.counter("a");
  EXPECT_EQ(&A, &B);
  EXPECT_EQ(R.size(), 1u);
  R.histogram("h").record(3);
  R.gauge("g").set(7);
  EXPECT_EQ(R.size(), 3u);
}

TEST(Registry, KindMismatchThrows) {
  Registry R;
  R.counter("x");
  EXPECT_THROW(R.gauge("x"), std::logic_error);
  EXPECT_THROW(R.histogram("x"), std::logic_error);
}

TEST(Registry, SnapshotIsNameSorted) {
  Registry R;
  R.counter("zeta").add(1);
  R.counter("alpha").add(2);
  R.histogram("mid").record(5);
  Snapshot S = R.snapshot();
  ASSERT_EQ(S.Values.size(), 3u);
  EXPECT_EQ(S.Values[0].Name, "alpha");
  EXPECT_EQ(S.Values[1].Name, "mid");
  EXPECT_EQ(S.Values[2].Name, "zeta");
}

TEST(Registry, DeterministicOnlyJsonDropsPerRun) {
  Registry R;
  R.counter("stable").add(1);
  R.counter("wall", Unit::Nanoseconds, Stability::PerRun).add(12345);
  std::string Full = R.snapshot().json(/*DeterministicOnly=*/false);
  std::string Det = R.snapshot().json(/*DeterministicOnly=*/true);
  EXPECT_NE(Full.find("\"wall\""), std::string::npos);
  EXPECT_EQ(Det.find("\"wall\""), std::string::npos);
  EXPECT_NE(Det.find("\"stable\""), std::string::npos);
}

// Mirrors test_interner.cpp's concurrent-interning race: 8 threads hammer
// an overlapping metric vocabulary; every get-or-create must resolve to
// the same object and the final counts must be exact.
TEST(Registry, EightThreadRace) {
  Registry R;
  constexpr unsigned NumThreads = 8;
  constexpr unsigned Rounds = 200;
  const std::vector<std::string> Names = {"alpha", "beta", "gamma", "delta",
                                          "epsilon"};
  std::vector<std::thread> Threads;
  for (unsigned T = 0; T < NumThreads; ++T)
    Threads.emplace_back([&, T] {
      for (unsigned I = 0; I < Rounds; ++I) {
        // Each thread touches every name each round, from a different
        // starting offset so creations genuinely race.
        for (std::size_t J = 0; J < Names.size(); ++J) {
          const std::string &Name = Names[(T + J) % Names.size()];
          R.counter("c." + Name).add(1);
          R.histogram("h." + Name).record(I);
        }
      }
    });
  for (std::thread &T : Threads)
    T.join();

  EXPECT_EQ(R.size(), 2 * Names.size());
  for (const std::string &Name : Names) {
    EXPECT_EQ(R.counter("c." + Name).get(), NumThreads * Rounds) << Name;
    EXPECT_EQ(R.histogram("h." + Name).count(), NumThreads * Rounds) << Name;
  }
}

//===----------------------------------------------------------------------===//
// Tracer / Span
//===----------------------------------------------------------------------===//

TEST(Tracer, SpansAggregate) {
  Tracer T;
  {
    Span A(&T, "outer");
    Span B(&T, "inner");
  }
  { Span C(&T, "inner"); }
  EXPECT_EQ(T.eventCount(), 3u);

  std::vector<Tracer::StageTotal> Stages = T.aggregate();
  ASSERT_EQ(Stages.size(), 2u);
  EXPECT_EQ(Stages[0].Name, "inner"); // name-sorted
  EXPECT_EQ(Stages[0].Spans, 2u);
  EXPECT_EQ(Stages[1].Name, "outer");
  EXPECT_EQ(Stages[1].Spans, 1u);
}

TEST(Tracer, NullTracerSpanIsNoOp) {
  // The off-by-default contract: a null tracer must be safe and free.
  Span S(nullptr, "nothing");
}

//===----------------------------------------------------------------------===//
// JSON validation (shared by the trace-schema and CLI tests)
//===----------------------------------------------------------------------===//

/// Minimal recursive-descent JSON syntax checker — enough to assert a
/// document is well-formed RFC 8259 JSON without depending on a parser
/// library.
class JsonChecker {
public:
  explicit JsonChecker(std::string_view Text) : S(Text) {}

  bool valid() {
    bool Ok = value();
    ws();
    return Ok && P == S.size();
  }

private:
  void ws() {
    while (P < S.size() && (S[P] == ' ' || S[P] == '\t' || S[P] == '\n' ||
                            S[P] == '\r'))
      ++P;
  }
  bool lit(std::string_view L) {
    if (S.substr(P, L.size()) != L)
      return false;
    P += L.size();
    return true;
  }
  bool string() {
    if (P >= S.size() || S[P] != '"')
      return false;
    ++P;
    while (P < S.size() && S[P] != '"') {
      if (S[P] == '\\') {
        ++P;
        if (P >= S.size())
          return false;
        if (S[P] == 'u') {
          for (int I = 0; I < 4; ++I)
            if (++P >= S.size() || !std::isxdigit(static_cast<unsigned char>(S[P])))
              return false;
        }
      }
      ++P;
    }
    if (P >= S.size())
      return false;
    ++P; // closing quote
    return true;
  }
  bool number() {
    std::size_t Start = P;
    if (P < S.size() && S[P] == '-')
      ++P;
    while (P < S.size() && std::isdigit(static_cast<unsigned char>(S[P])))
      ++P;
    if (P == Start || (S[Start] == '-' && P == Start + 1))
      return false;
    if (P < S.size() && S[P] == '.') {
      ++P;
      if (P >= S.size() || !std::isdigit(static_cast<unsigned char>(S[P])))
        return false;
      while (P < S.size() && std::isdigit(static_cast<unsigned char>(S[P])))
        ++P;
    }
    if (P < S.size() && (S[P] == 'e' || S[P] == 'E')) {
      ++P;
      if (P < S.size() && (S[P] == '+' || S[P] == '-'))
        ++P;
      if (P >= S.size() || !std::isdigit(static_cast<unsigned char>(S[P])))
        return false;
      while (P < S.size() && std::isdigit(static_cast<unsigned char>(S[P])))
        ++P;
    }
    return true;
  }
  bool value() {
    ws();
    if (P >= S.size())
      return false;
    switch (S[P]) {
    case '{': {
      ++P;
      ws();
      if (P < S.size() && S[P] == '}') {
        ++P;
        return true;
      }
      while (true) {
        ws();
        if (!string())
          return false;
        ws();
        if (P >= S.size() || S[P] != ':')
          return false;
        ++P;
        if (!value())
          return false;
        ws();
        if (P < S.size() && S[P] == ',') {
          ++P;
          continue;
        }
        break;
      }
      ws();
      if (P >= S.size() || S[P] != '}')
        return false;
      ++P;
      return true;
    }
    case '[': {
      ++P;
      ws();
      if (P < S.size() && S[P] == ']') {
        ++P;
        return true;
      }
      while (true) {
        if (!value())
          return false;
        ws();
        if (P < S.size() && S[P] == ',') {
          ++P;
          continue;
        }
        break;
      }
      ws();
      if (P >= S.size() || S[P] != ']')
        return false;
      ++P;
      return true;
    }
    case '"':
      return string();
    case 't':
      return lit("true");
    case 'f':
      return lit("false");
    case 'n':
      return lit("null");
    default:
      return number();
    }
  }

  std::string_view S;
  std::size_t P = 0;
};

std::size_t countOccurrences(const std::string &Haystack,
                             const std::string &Needle) {
  std::size_t N = 0;
  for (std::size_t P = Haystack.find(Needle); P != std::string::npos;
       P = Haystack.find(Needle, P + Needle.size()))
    ++N;
  return N;
}

/// Chrome trace_event structural checks: a document that
/// chrome://tracing / Perfetto would accept as complete "X" events.
void expectValidTraceEventJson(const std::string &Json) {
  EXPECT_TRUE(JsonChecker(Json).valid());
  EXPECT_EQ(Json.rfind("{\"traceEvents\":[", 0), 0u);
  EXPECT_NE(Json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);

  // Every event is a complete-phase event carrying the full field set.
  std::size_t Events = countOccurrences(Json, "\"ph\":\"X\"");
  EXPECT_GT(Events, 0u);
  EXPECT_EQ(countOccurrences(Json, "\"cat\":\"diffcode\""), Events);
  EXPECT_EQ(countOccurrences(Json, "\"name\":"), Events);
  EXPECT_EQ(countOccurrences(Json, "\"ts\":"), Events);
  EXPECT_EQ(countOccurrences(Json, "\"dur\":"), Events);
  EXPECT_EQ(countOccurrences(Json, "\"pid\":"), Events);
  EXPECT_EQ(countOccurrences(Json, "\"tid\":"), Events);
}

TEST(Tracer, TraceJsonSchema) {
  Tracer T;
  {
    Span A(&T, "alpha");
    Span B(&T, "beta");
  }
  expectValidTraceEventJson(T.traceJson());
}

TEST(Snapshot, JsonIsWellFormed) {
  Registry R;
  R.counter("c", Unit::Bytes).add(7);
  R.gauge("g").set(-2);
  Histogram &H = R.histogram("h", Unit::Nanoseconds, Stability::PerRun);
  H.record(0);
  H.record(300);
  EXPECT_TRUE(JsonChecker(R.snapshot().json(false)).valid());
  EXPECT_TRUE(JsonChecker(R.snapshot().json(true)).valid());
}

//===----------------------------------------------------------------------===//
// Worst-offender determinism (satellite: tie-breaking unit test)
//===----------------------------------------------------------------------===//

TEST(CorpusHealth, WorstOffenderTieBreaking) {
  core::CorpusReport Report;
  auto AddRecord = [&Report](const char *Origin, std::uint64_t Steps,
                             core::ChangeStatus Status) {
    core::ChangeRecord R;
    R.Origin = Origin;
    R.StepsUsed = Steps;
    R.Status = Status;
    Report.Changes.push_back(std::move(R));
  };
  // Equal step counts must order by origin ascending, regardless of the
  // record order they arrive in.
  AddRecord("proj-b/c0002", 100, core::ChangeStatus::Ok);
  AddRecord("proj-a/c0001", 100, core::ChangeStatus::Degraded);
  AddRecord("proj-c/c0003", 500, core::ChangeStatus::BudgetExceeded);
  AddRecord("proj-d/c0004", 0, core::ChangeStatus::Ok); // no steps: excluded

  core::computeCorpusHealth(Report);
  ASSERT_EQ(Report.Health.WorstOffenders.size(), 3u);
  EXPECT_EQ(Report.Health.WorstOffenders[0].Origin, "proj-c/c0003");
  EXPECT_EQ(Report.Health.WorstOffenders[0].Status,
            core::ChangeStatus::BudgetExceeded);
  EXPECT_EQ(Report.Health.WorstOffenders[1].Origin, "proj-a/c0001");
  EXPECT_EQ(Report.Health.WorstOffenders[1].Status,
            core::ChangeStatus::Degraded);
  EXPECT_EQ(Report.Health.WorstOffenders[2].Origin, "proj-b/c0002");

  // Shuffling the input records must not change the table.
  std::swap(Report.Changes[0], Report.Changes[2]);
  auto Before = Report.Health.WorstOffenders;
  core::computeCorpusHealth(Report);
  ASSERT_EQ(Report.Health.WorstOffenders.size(), Before.size());
  for (std::size_t I = 0; I < Before.size(); ++I) {
    EXPECT_EQ(Report.Health.WorstOffenders[I].Origin, Before[I].Origin);
    EXPECT_EQ(Report.Health.WorstOffenders[I].Steps, Before[I].Steps);
  }
}

//===----------------------------------------------------------------------===//
// CLI --trace-out smoke test (tier1)
//===----------------------------------------------------------------------===//

TEST(CliTrace, TraceOutSchema) {
  const std::string TracePath =
      testing::TempDir() + "diffcode_cli_trace_test.json";
  std::remove(TracePath.c_str());
  std::string Cmd = std::string(DIFFCODE_CLI_PATH) + " pipeline " +
                    DIFFCODE_SMOKE_CORPUS + " --metrics --trace-out=" +
                    TracePath + " > /dev/null 2>&1";
  ASSERT_EQ(std::system(Cmd.c_str()), 0) << Cmd;

  std::ifstream In(TracePath);
  ASSERT_TRUE(In.good()) << TracePath;
  std::ostringstream Buffer;
  Buffer << In.rdbuf();
  std::string Json = Buffer.str();
  while (!Json.empty() && (Json.back() == '\n' || Json.back() == '\r'))
    Json.pop_back();
  ASSERT_FALSE(Json.empty());
  expectValidTraceEventJson(Json);

  // The pipeline's stage spans must all be present.
  for (const char *Stage :
       {"pipeline", "analyzeChanges", "filterClass", "computeCorpusHealth",
        "processChange"})
    EXPECT_NE(Json.find(std::string("\"name\":\"") + Stage + "\""),
              std::string::npos)
        << Stage;
  std::remove(TracePath.c_str());
}

TEST(CliTrace, JsonReportCarriesMetricsBlock) {
  const std::string OutPath =
      testing::TempDir() + "diffcode_cli_metrics_report.json";
  std::string Cmd = std::string(DIFFCODE_CLI_PATH) + " pipeline " +
                    DIFFCODE_SMOKE_CORPUS + " --metrics --json > " + OutPath +
                    " 2>/dev/null";
  ASSERT_EQ(std::system(Cmd.c_str()), 0) << Cmd;

  std::ifstream In(OutPath);
  ASSERT_TRUE(In.good());
  std::ostringstream Buffer;
  Buffer << In.rdbuf();
  std::string Json = Buffer.str();
  while (!Json.empty() && (Json.back() == '\n' || Json.back() == '\r'))
    Json.pop_back();
  EXPECT_TRUE(JsonChecker(Json).valid());
  EXPECT_NE(Json.find("\"metrics\":{"), std::string::npos);
  EXPECT_NE(Json.find("\"stages\":["), std::string::npos);
  EXPECT_NE(Json.find("\"counters\":["), std::string::npos);
  std::remove(OutPath.c_str());
}

} // namespace
